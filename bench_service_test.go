// Service-boundary benchmarks: the out-of-process daemon measured from
// the client side at increasing fan-in. Each iteration runs one full
// write→kernel→read chain per client concurrently; reported metrics
// are aggregate launch throughput and the p99 chain latency (enqueue
// to read-back complete), the numbers CI's bench-service job records
// in BENCH_service.json at 1, 8 and 64 clients.
package repro

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/accelos"
	"repro/internal/opencl"
	"repro/internal/service"
)

func BenchmarkServiceLaunch(b *testing.B) {
	for _, nc := range []int{1, 8, 64} {
		// Named clients/N, not clients-N: benchjson strips a trailing
		// -<number> as the GOMAXPROCS suffix.
		b.Run(fmt.Sprintf("clients/%d", nc), func(b *testing.B) {
			benchServiceLaunch(b, nc)
		})
	}
}

func benchServiceLaunch(b *testing.B, clients int) {
	// Short MkdirTemp path: unix socket addresses cap out near 104 bytes.
	dir, err := os.MkdirTemp("", "svcb")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "d.sock")
	rt := accelos.NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	srv := service.NewServer(rt, service.Options{})
	if err := srv.Start(sock); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	const src = `
kernel void bump(global int* out, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) out[i] = out[i] + 1;
}
`
	const n = 256
	type client struct {
		c    *service.Client
		k    *service.RemoteKernel
		buf  *service.RemoteBuffer
		host []byte
		lats []time.Duration
	}
	cs := make([]*client, clients)
	for w := range cs {
		c, err := service.Dial(sock, fmt.Sprintf("bench-%d", w), "")
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		prog, err := c.CreateProgram(src)
		if err != nil {
			b.Fatal(err)
		}
		k, err := prog.CreateKernel("bump")
		if err != nil {
			b.Fatal(err)
		}
		buf, err := c.CreateBuffer(n * 4)
		if err != nil {
			b.Fatal(err)
		}
		if err := k.SetArgBuffer(0, buf); err != nil {
			b.Fatal(err)
		}
		if err := k.SetArgInt32(1, n); err != nil {
			b.Fatal(err)
		}
		cs[w] = &client{c: c, k: k, buf: buf, host: make([]byte, n*4)}
	}

	nd := opencl.ND1(n, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, cl := range cs {
			wg.Add(1)
			go func(cl *client) {
				defer wg.Done()
				t0 := time.Now()
				wev, err := cl.buf.WriteAsync(0, cl.host)
				if err != nil {
					b.Error(err)
					return
				}
				kev, err := cl.c.EnqueueKernelAsync(cl.k, nd, wev)
				if err != nil {
					b.Error(err)
					return
				}
				rev, err := cl.buf.ReadAsync(0, cl.host, kev)
				if err != nil {
					b.Error(err)
					return
				}
				if err := rev.Wait(); err != nil {
					b.Error(err)
					return
				}
				cl.lats = append(cl.lats, time.Since(t0))
			}(cl)
		}
		wg.Wait()
	}
	b.StopTimer()

	var all []time.Duration
	for _, cl := range cs {
		all = append(all, cl.lats...)
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p99 := all[(len(all)-1)*99/100]
	b.ReportMetric(float64(len(all))/b.Elapsed().Seconds(), "launches/sec")
	b.ReportMetric(float64(p99.Nanoseconds())/1e6, "p99-ms")
}
