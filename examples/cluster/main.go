// Cluster: fair sharing across a heterogeneous accelerator pool.
//
// The walkthrough has two halves. First it runs the cluster SIMULATION
// (sim.RunCluster) over a 3-device pool: a multi-tenant workload is
// placed by a pluggable policy, each device divides itself among its
// residents with the paper's §3 share plan weighted so per-tenant
// AGGREGATE shares — not per-device shares — are equalized, and when a
// device drains, queued requests and split virtual-group ranges migrate
// to it. Then it runs the LIVE runtime over a pool
// (accelos.NewClusterRuntime): the same ProxyCL applications as the
// multitenant example, with launches spread across pool members by the
// placement policy.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/accelos"
	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/opencl"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	simulation()
	live()
}

func simulation() {
	devs := device.PoolOf(3)
	fmt.Println("=== cluster simulation: 3 tenants x 4 requests over 3 devices ===")
	for i, d := range devs {
		fmt.Printf("  device %d: %s (%d CUs x %d threads)\n", i, d.Name, d.NumCUs, d.ThreadsPerCU)
	}

	execs := workload.Tenants(devs, 3, 4, 0xC10)
	for _, polName := range cluster.PolicyNames() {
		pol, err := cluster.PolicyByName(polName)
		if err != nil {
			log.Fatal(err)
		}
		sched := cluster.NewScheduler(pol, accelos.PlanWeighted)
		res := sim.RunCluster(devs, workloadCopy(execs), sched, sim.ClusterOptions{Rebalance: true})

		fmt.Printf("\n--- policy %s ---\n", polName)
		fmt.Printf("  makespan %d cycles, %d migrations (%d range splits)\n",
			res.Makespan, res.Migrations, len(res.Splits))
		for i, d := range res.Devices {
			fmt.Printf("  device %d: %3d executions, busy %d cycles, %d steals in, %d splits in\n",
				i, d.Executions, d.BusyCycles, d.StealsIn, d.SplitsIn)
		}
		shares := res.TenantShares()
		for _, t := range experiments.SortedTenants(shares) {
			fmt.Printf("  %s aggregate share: %.2f\n", t, shares[t])
		}
		for _, s := range res.Splits {
			fmt.Printf("  migrated kernel %d virtual groups [%d,%d) from device %d to device %d at cycle %d\n",
				s.KernelID, s.Range[0], s.Range[1], s.From, s.To, s.At)
		}
	}
}

func workloadCopy(execs []*sim.ClusterExec) []*sim.ClusterExec {
	out := make([]*sim.ClusterExec, len(execs))
	for i, e := range execs {
		k := *e.K
		out[i] = &sim.ClusterExec{K: &k, Tenant: e.Tenant, Arrival: e.Arrival}
	}
	return out
}

const src = `kernel void scale(global int* data, int n) {
	int i = (int)get_global_id(0);
	if (i < n) data[i] = data[i] * 3;
}`

func live() {
	fmt.Println("\n=== live pooled runtime: 4 apps over 2 platforms ===")
	rt := accelos.NewClusterRuntime(opencl.GetPlatforms(), cluster.RoundRobin())
	defer rt.Shutdown()

	const n = 1 << 12
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			app := rt.Connect(fmt.Sprintf("app-%d", id))
			defer app.Close()
			prog, err := app.CreateProgram(src)
			if err != nil {
				log.Fatalf("app %d: %v", id, err)
			}
			buf, err := app.CreateBuffer(n * 4)
			if err != nil {
				log.Fatalf("app %d: %v", id, err)
			}
			defer buf.Release()
			k, err := prog.CreateKernel("scale")
			if err != nil {
				log.Fatalf("app %d: %v", id, err)
			}
			_ = k.SetArgBuffer(0, buf)
			_ = k.SetArgInt32(1, n)
			nd := opencl.NDRange{Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1}}
			// Chain the iterations through wait-list edges and block only
			// once at the end: the cluster scheduler sees the whole chain
			// as this app's pending window. (A nil wait-list entry is
			// skipped, so the first iteration needs no special case.)
			var prev *opencl.Event
			for it := 0; it < 3; it++ {
				ev, err := app.EnqueueKernelAsync(k, nd, prev)
				if err != nil {
					log.Fatalf("app %d: launch: %v", id, err)
				}
				prev = ev
			}
			if err := prev.Wait(); err != nil {
				log.Fatalf("app %d: chain: %v", id, err)
			}
		}(id)
	}
	wg.Wait()

	st := rt.Stats()
	fmt.Printf("runtime: %d programs JITed, %d launches total\n", st.ProgramsJITed, st.KernelsLaunched)
	for i, c := range st.DeviceLaunches {
		fmt.Printf("  pool member %d (%s): %d launches\n", i, rt.Pool().Devices()[i].Name, c)
	}
}
