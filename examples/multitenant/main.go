// Multitenant: several applications share one accelerator through the
// accelOS runtime — the data-center scenario that motivates the paper.
//
// Each tenant connects over ProxyCL, builds its own program, allocates
// buffers and iterates its kernel. The runtime JITs each program once,
// plans every launch against the currently active set (shares grow as
// tenants leave), and the memory manager pauses tenants whose
// allocations would oversubscribe device memory until peers release
// theirs.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"repro/internal/accelos"
	"repro/internal/metrics"
	"repro/internal/opencl"
	"repro/internal/telemetry"
)

const (
	tenants = 6
	n       = 2048
	iters   = 4
)

var sources = []string{
	`kernel void scale(global int* data, int n) {
		int i = (int)get_global_id(0);
		if (i < n) data[i] = data[i] * 3;
	}`,
	`kernel void offset(global int* data, int n) {
		int i = (int)get_global_id(0);
		if (i < n) data[i] = data[i] + 7;
	}`,
	`kernel void squareish(global int* data, int n) {
		int i = (int)get_global_id(0);
		if (i < n) data[i] = data[i] * data[i] % 65537;
	}`,
}

var kernelNames = []string{"scale", "offset", "squareish"}

func tenant(rt *accelos.Runtime, id int, wg *sync.WaitGroup, report chan<- string) {
	defer wg.Done()
	app := rt.Connect(fmt.Sprintf("tenant-%d", id))
	defer app.Close()

	src := sources[id%len(sources)]
	prog, err := app.CreateProgram(src)
	if err != nil {
		log.Fatalf("tenant %d: %v", id, err)
	}
	// Each tenant allocates a sizeable buffer; combined they exceed
	// device memory, so some tenants get paused until others finish.
	big := rt.Ctx.GlobalMemBytes() / (tenants/2 + 1)
	ballast, err := app.CreateBuffer(big)
	if err != nil {
		log.Fatalf("tenant %d: ballast: %v", id, err)
	}
	defer ballast.Release()

	data, err := app.CreateBuffer(n * 4)
	if err != nil {
		log.Fatalf("tenant %d: %v", id, err)
	}
	defer data.Release()
	host := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(host[i*4:], uint32(i+id))
	}
	// Event-based submission: the write, the iteration chain and the
	// read-back are enqueued up front with wait-list edges; the tenant
	// blocks only on the final event while the daemon sees its whole
	// pending window.
	wev, err := data.WriteAsync(0, host)
	if err != nil {
		log.Fatal(err)
	}

	k, err := prog.CreateKernel(kernelNames[id%len(sources)])
	if err != nil {
		log.Fatalf("tenant %d: %v", id, err)
	}
	_ = k.SetArgBuffer(0, data)
	_ = k.SetArgInt32(1, n)
	nd := opencl.NDRange{Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1}}
	prev := wev
	for it := 0; it < iters; it++ {
		kev, err := app.EnqueueKernelAsync(k, nd, prev)
		if err != nil {
			log.Fatalf("tenant %d: launch: %v", id, err)
		}
		prev = kev
	}
	rev, err := data.ReadAsync(0, host, prev)
	if err != nil {
		log.Fatalf("tenant %d: read: %v", id, err)
	}
	if err := rev.Wait(); err != nil {
		log.Fatalf("tenant %d: pipeline: %v", id, err)
	}
	first := int32(binary.LittleEndian.Uint32(host[4:]))
	report <- fmt.Sprintf("tenant %d (%s): %d iterations done, data[1]=%d",
		id, kernelNames[id%len(sources)], iters, first)
}

func main() {
	rt := accelos.NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	// Live telemetry: every completed kernel contributes its measured
	// shared (enqueue→retire) and alone (summed slice) times, so the run
	// ends with the paper's §7.4 scorecard computed from real span data.
	reg := telemetry.NewRegistry()
	score := metrics.NewLiveScorecard()
	rt.SetTelemetry(nil, reg, score)

	fmt.Printf("starting %d tenants on %s (device memory %d MB)\n\n",
		tenants, rt.Plat.Dev.Name, rt.Plat.Dev.GlobalMemMB)

	report := make(chan string, tenants)
	var wg sync.WaitGroup
	for id := 0; id < tenants; id++ {
		wg.Add(1)
		go tenant(rt, id, &wg, report)
	}
	wg.Wait()
	close(report)
	for line := range report {
		fmt.Println(" ", line)
	}

	st := rt.Stats()
	fmt.Printf("\nruntime: %d programs JITed, %d kernel launches scheduled, %d passthrough calls\n",
		st.ProgramsJITed, st.KernelsLaunched, st.Passthroughs)
	fmt.Printf("memory manager: %d tenant pauses while the device was oversubscribed\n",
		rt.Memory().TotalPauses())

	// The sliced engine re-plans every launch on each arrival and
	// completion; the live scorecard below shows what the contention cost
	// each tenant, in the paper's §7.4 multi-tenancy metrics.
	fmt.Printf("scheduler: %d dynamic re-plans (%d scheduler re-entries)\n",
		st.Replans, rt.Monitor().Reschedules())

	fmt.Println("\nlive §7.4 scorecard (shared = enqueue→retire, alone = summed slice time):")
	fmt.Println(score.Compute().String())
}
