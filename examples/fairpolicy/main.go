// Fairpolicy: non-equal sharing ratios (paper §2.2). Equal sharing is
// accelOS's default, but "it may be deemed fairer to give more resources
// to one application over another, e.g. if it is longer running or more
// important; this can easily be achieved by changing the sharing ratio."
//
// Two tenants share the simulated K20m: a latency-sensitive service and
// a batch job. The example sweeps the service:batch weight ratio and
// shows the slowdown trade-off the operator controls.
package main

import (
	"fmt"

	"repro/internal/accelos"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/parboil"
	"repro/internal/sim"
)

func main() {
	dev := device.NVIDIAK20m()
	service, err := parboil.ByName("spmv/spmv_jds")
	if err != nil {
		panic(err)
	}
	batch, err := parboil.ByName("sgemm/mysgemmNT")
	if err != nil {
		panic(err)
	}

	iso := func(k *sim.KernelExec) int64 {
		c := *k
		return sim.RunBaseline(dev, []*sim.KernelExec{&c}).Timings[0].Duration()
	}

	fmt.Printf("two tenants on the %s:\n", dev.Name)
	fmt.Printf("  service = %s, batch = %s\n\n", service.FullName(), batch.FullName())
	fmt.Printf("%12s %16s %14s %12s\n", "ratio (s:b)", "service IS", "batch IS", "unfairness")

	for _, ratio := range []float64{1, 2, 4, 8} {
		execs := []*sim.KernelExec{service.Exec(0), batch.Exec(1)}
		weights := []float64{ratio, 1}
		plan := func(d *device.Platform, active []*sim.KernelExec, naive bool) []*sim.Launch {
			w := make([]float64, len(active))
			for i, k := range active {
				w[i] = weights[k.ID]
			}
			return accelos.PlanWeighted(d, active, w, naive)
		}
		r := sim.RunAccelOS(dev, execs, false, plan)
		is := []float64{
			metrics.IndividualSlowdown(r.ByID(0).Duration(), iso(service.Exec(0))),
			metrics.IndividualSlowdown(r.ByID(1).Duration(), iso(batch.Exec(1))),
		}
		fmt.Printf("%9.0f:1 %16.2f %14.2f %12.2f\n", ratio, is[0], is[1], metrics.Unfairness(is))
	}
	fmt.Println("\nhigher service weight shifts slowdown onto the batch job;")
	fmt.Println("ratio 1:1 is the paper's default equal-sharing policy.")
}
