// Quickstart: the paper's Fig. 1 story in one program.
//
// First an application runs a kernel through the accelOS runtime exactly
// as it would through vendor OpenCL — the JIT transformation and software
// scheduling are invisible, and the results are identical. Then four
// Parboil kernels are launched concurrently on the simulated NVIDIA
// K20m under the standard stack and under accelOS, and the per-kernel
// slowdowns show serialization turning into fair space sharing.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"repro/internal/accelos"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/opencl"
)

const kernelSrc = `
kernel void saxpy(global float* y, global const float* x, float a, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) y[i] = a * x[i] + y[i];
}
`

func main() {
	// --- Part 1: transparent execution through accelOS -----------------
	rt := accelos.NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()

	app := rt.Connect("quickstart")
	defer app.Close()

	prog, err := app.CreateProgram(kernelSrc) // intercepted: JIT transforms the kernel
	if err != nil {
		log.Fatal(err)
	}
	const n = 4096
	x, _ := app.CreateBuffer(n * 4)
	y, _ := app.CreateBuffer(n * 4)
	buf := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(float32(i)))
	}
	// The event-based host API: both uploads are in flight at once, the
	// kernel waits on them through its wait list, and the read-back waits
	// on the kernel — the host never blocks until the final Wait.
	wx, err := x.WriteAsync(0, buf)
	if err != nil {
		log.Fatal(err)
	}
	wy, err := y.WriteAsync(0, buf)
	if err != nil {
		log.Fatal(err)
	}

	k, err := prog.CreateKernel("saxpy")
	if err != nil {
		log.Fatal(err)
	}
	_ = k.SetArgBuffer(0, y)
	_ = k.SetArgBuffer(1, x)
	_ = k.SetArgFloat32(2, 2.0)
	_ = k.SetArgInt32(3, n)

	nd := opencl.NDRange{Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{128, 1, 1}}
	kev, err := app.EnqueueKernelAsync(k, nd, wx, wy) // intercepted: scheduled as virtual groups
	if err != nil {
		log.Fatal(err)
	}
	out := make([]byte, n*4)
	rev, err := y.ReadAsync(0, out, kev)
	if err != nil {
		log.Fatal(err)
	}
	if err := rev.Wait(); err != nil {
		log.Fatal(err)
	}
	ok := true
	for i := 0; i < n; i++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(out[i*4:]))
		if got != float32(3*i) {
			ok = false
			break
		}
	}
	ic, _ := prog.InstrCountOf("saxpy")
	chunk, _ := prog.AdaptiveChunkOf("saxpy")
	fmt.Printf("saxpy over %d elements through accelOS: correct=%v\n", n, ok)
	fmt.Printf("  (JIT: %d IR instructions -> %d virtual groups per scheduling op)\n\n", ic, chunk)

	// --- Part 2: four applications share the GPU -----------------------
	dev := device.NVIDIAK20m()
	fmt.Printf("four Parboil kernels launched concurrently on the %s:\n\n", dev.Name)
	e := experiments.NewEngine(dev)
	r := e.RunWorkload(experiments.Fig2Workload())

	fmt.Printf("%-28s %12s %12s\n", "kernel", "OpenCL IS", "accelOS IS")
	for i, name := range r.Kernels {
		fmt.Printf("%-28s %12.2f %12.2f\n", name,
			r.Slowdowns[experiments.Baseline][i], r.Slowdowns[experiments.AccelOS][i])
	}
	fmt.Printf("\nsystem unfairness: %.2f -> %.2f (%.1fx fairer)\n",
		r.Unfairness[experiments.Baseline], r.Unfairness[experiments.AccelOS],
		r.FairnessImprovement(experiments.AccelOS))
	fmt.Printf("system throughput: %.2fx over standard OpenCL\n", r.Speedup[experiments.AccelOS])
}
