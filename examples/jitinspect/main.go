// Jitinspect: a tour of the accelOS JIT transformation (paper §6) on a
// kernel with every interesting feature — local memory (hoisted into the
// scheduling kernel), barriers, a helper function using work-item
// builtins (interface extension), and atomics.
//
// The program prints the original IR, the transformed module, and then
// proves semantic equivalence by running both on the interpreter.
package main

import (
	"fmt"
	"log"

	"repro/internal/accelpass"
	"repro/internal/clc"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/rtlib"
)

const src = `
/* Per-group maximum with a final atomic merge. */
#define WG 64
int my_slot(int stride) { return (int)get_local_id(0) * stride; }

kernel void groupmax(global const int* in, global int* out, int n)
{
    local int tile[WG];
    int lid = (int)get_local_id(0);
    int gid = (int)get_global_id(0);
    tile[my_slot(1)] = (gid < n) ? in[gid] : -2147483647;
    barrier(1);
    int s;
    for (s = WG / 2; s > 0; s >>= 1) {
        if (lid < s) tile[lid] = max(tile[lid], tile[lid + s]);
        barrier(1);
    }
    if (lid == 0) atomic_max(&out[0], tile[0]);
}
`

func main() {
	mod, err := clc.Compile(src, "groupmax")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("==== original kernel IR ====")
	fmt.Print(mod.Lookup("groupmax").String())

	tm := ir.CloneModule(mod)
	res, err := accelpass.Transform(tm)
	if err != nil {
		log.Fatal(err)
	}
	info := res.Kernels["groupmax"]

	fmt.Println("\n==== computation function (demoted, builtins replaced, locals hoisted) ====")
	fmt.Print(tm.Lookup("groupmax__compute").String())
	fmt.Println("\n==== scheduling kernel (the paper's dyn_sched, Fig. 8b) ====")
	fmt.Print(tm.Lookup("groupmax").String())

	fmt.Printf("\nJIT metadata: %d IR instructions -> chunk %d; regs/thread %d; local %dB (hoisted %d arrays)\n",
		info.InstrCount, info.Chunk, info.Regs, info.LocalBytes, len(info.Hoisted))

	// Prove equivalence: 32 groups of work squeezed onto 2 physical
	// work-groups must compute the same maxima.
	const n, wg = 32 * 64, 64
	run := func(m *ir.Module, transformed bool) int32 {
		mach := interp.NewMachine(m)
		in := mach.NewRegion(n*4, ir.Global)
		vals := make([]int32, n)
		for i := range vals {
			vals[i] = int32((i*2654435761 + 12345) % 1000003)
		}
		in.WriteInt32s(0, vals)
		out := mach.NewRegion(4, ir.Global)
		out.WriteInt32s(0, []int32{-1 << 31})
		args := []interp.Value{
			{K: ir.Pointer, P: interp.Ptr{R: in}},
			{K: ir.Pointer, P: interp.Ptr{R: out}},
			interp.IntV(n),
		}
		nd := interp.ND1(n, wg)
		if transformed {
			rtr := mach.NewRegion(rtlib.RTWords*8, ir.Global)
			rtr.WriteInt64s(0, rtlib.BuildRT(1, nd.NumGroups(), nd.Local, info.Chunk))
			args = append(args, interp.Value{K: ir.Pointer, P: interp.Ptr{R: rtr}})
			nd = interp.ND1(2*wg, wg) // two physical work-groups
		}
		if err := mach.Launch("groupmax", args, nd); err != nil {
			log.Fatal(err)
		}
		return out.ReadInt32s(0, 1)[0]
	}
	native := run(mod, false)
	trans := run(tm, true)
	fmt.Printf("\nnative max = %d, transformed (32 virtual groups on 2 physical) = %d, equal = %v\n",
		native, trans, native == trans)
}
