// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its figure's rows on a reduced
// population (the accelsim command runs paper-scale populations) and
// reports the headline numbers as custom metrics, so `go test -bench`
// output carries the reproduced series alongside the timing.
package repro

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/accelos"
	"repro/internal/accelpass"
	"repro/internal/clc"
	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/elastic"
	"repro/internal/experiments"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/opencl"
	"repro/internal/parboil"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchSizes keeps -bench runtimes in seconds while preserving the
// population structure.
var benchSizes = experiments.Sizes{Pairs: 40, Fours: 24, Eights: 16}

func benchPops(b *testing.B, dev *device.Platform, overlap bool) []*experiments.Population {
	b.Helper()
	e := experiments.NewEngine(dev)
	e.WithOverlap = overlap
	return e.RunPopulations(benchSizes, 4)
}

// BenchmarkFig2 reproduces the motivating example: bfs, cutcp, stencil
// and tpacf concurrently on the K20m model (Fig. 2a-c).
func BenchmarkFig2(b *testing.B) {
	e := experiments.NewEngine(device.NVIDIAK20m())
	var r *experiments.WorkloadResult
	for i := 0; i < b.N; i++ {
		r = e.RunWorkload(experiments.Fig2Workload())
	}
	b.ReportMetric(r.Unfairness[experiments.Baseline], "unfairness-opencl")
	b.ReportMetric(r.Unfairness[experiments.AccelOS], "unfairness-accelos")
	b.ReportMetric(r.Speedup[experiments.AccelOS], "speedup-accelos")
}

// BenchmarkFig9 reproduces average system unfairness per request count
// (Fig. 9a); run with -benchtime=1x for one full population sweep.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pops := benchPops(b, device.NVIDIAK20m(), false)
		for _, p := range pops {
			b.ReportMetric(p.AvgUnfairness(experiments.Baseline), fmt.Sprintf("U-opencl-%dreq", p.K))
			b.ReportMetric(p.AvgUnfairness(experiments.AccelOS), fmt.Sprintf("U-accelos-%dreq", p.K))
		}
	}
}

// BenchmarkFig10 reproduces the fairness-improvement distribution.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pops := benchPops(b, device.NVIDIAK20m(), false)
		for _, p := range pops {
			xs := p.FairnessImprovements(experiments.AccelOS)
			b.ReportMetric(metrics.Percentile(xs, 50), fmt.Sprintf("FI-median-%dreq", p.K))
			b.ReportMetric(100*metrics.FractionBelow(xs, 1), fmt.Sprintf("FI-neg-pct-%dreq", p.K))
		}
	}
}

// BenchmarkFig11 reproduces the alphabetical-pair unfairness comparison.
func BenchmarkFig11(b *testing.B) {
	e := experiments.NewEngine(device.NVIDIAK20m())
	e.WithOverlap = false
	pairs := experiments.Fig11Pairs()
	var base, acc float64
	for i := 0; i < b.N; i++ {
		base, acc = 0, 0
		for _, p := range pairs {
			r := e.RunWorkload(p)
			base += r.Unfairness[experiments.Baseline]
			acc += r.Unfairness[experiments.AccelOS]
		}
	}
	b.ReportMetric(base/float64(len(pairs)), "U-opencl-mean")
	b.ReportMetric(acc/float64(len(pairs)), "U-accelos-mean")
}

// BenchmarkFig12 reproduces the kernel execution overlap averages.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pops := benchPops(b, device.NVIDIAK20m(), true)
		for _, p := range pops {
			b.ReportMetric(100*p.AvgOverlap(experiments.Baseline), fmt.Sprintf("overlap-opencl-pct-%dreq", p.K))
			b.ReportMetric(100*p.AvgOverlap(experiments.AccelOS), fmt.Sprintf("overlap-accelos-pct-%dreq", p.K))
		}
	}
}

// BenchmarkFig13 reproduces average throughput speedups.
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pops := benchPops(b, device.NVIDIAK20m(), false)
		for _, p := range pops {
			b.ReportMetric(p.AvgSpeedup(experiments.AccelOS), fmt.Sprintf("speedup-accelos-%dreq", p.K))
			b.ReportMetric(p.AvgSpeedup(experiments.EK), fmt.Sprintf("speedup-ek-%dreq", p.K))
		}
	}
}

// BenchmarkFig14 reproduces the speedup distribution.
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pops := benchPops(b, device.NVIDIAK20m(), false)
		for _, p := range pops {
			xs := p.Speedups(experiments.AccelOS)
			b.ReportMetric(metrics.Percentile(xs, 50), fmt.Sprintf("speedup-median-%dreq", p.K))
			b.ReportMetric(100*metrics.FractionBelow(xs, 1), fmt.Sprintf("slowdown-pct-%dreq", p.K))
		}
	}
}

// BenchmarkFig15 reproduces the single-kernel overhead study (naive vs
// optimized accelOS, geometric means over all 25 kernels).
func BenchmarkFig15(b *testing.B) {
	e := experiments.NewEngine(device.NVIDIAK20m())
	var rows []experiments.SingleKernelResult
	for i := 0; i < b.N; i++ {
		rows = e.Fig15()
	}
	var naive, opt []float64
	for _, r := range rows {
		naive = append(naive, r.Naive)
		opt = append(opt, r.Optimized)
	}
	b.ReportMetric(metrics.GeoMean(naive), "geomean-naive")
	b.ReportMetric(metrics.GeoMean(opt), "geomean-optimized")
}

// BenchmarkTable1 reproduces the STP/ANTT table on the NVIDIA model.
func BenchmarkTable1(b *testing.B) {
	benchTable(b, device.NVIDIAK20m())
}

// BenchmarkTable2 reproduces the STP/ANTT table on the AMD model.
func BenchmarkTable2(b *testing.B) {
	benchTable(b, device.AMDR9295X2())
}

func benchTable(b *testing.B, dev *device.Platform) {
	for i := 0; i < b.N; i++ {
		pops := benchPops(b, dev, false)
		for _, p := range pops {
			b.ReportMetric(p.AvgSTP(experiments.AccelOS), fmt.Sprintf("STP-accelos-%dreq", p.K))
			b.ReportMetric(p.AvgANTT(experiments.AccelOS), fmt.Sprintf("ANTT-accelos-%dreq", p.K))
			b.ReportMetric(p.AvgANTT(experiments.EK), fmt.Sprintf("ANTT-ek-%dreq", p.K))
		}
	}
}

// --- substrate micro-benchmarks -------------------------------------

// BenchmarkJITCompile measures the CLC front end on a Parboil kernel.
func BenchmarkJITCompile(b *testing.B) {
	k, err := parboil.ByName("mri-gridding/splitSort")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := clc.Compile(k.Source, k.Name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJITTransform measures the full accelOS transformation
// pipeline (demotion, builtin replacement, hoisting, wrapper generation,
// linking, cleanup passes).
func BenchmarkJITTransform(b *testing.B) {
	k, err := parboil.ByName("mri-gridding/splitSort")
	if err != nil {
		b.Fatal(err)
	}
	mod, err := clc.Compile(k.Source, k.Name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := accelpass.Transform(ir.CloneModule(mod)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngines names the interpreter variants of the perf record:
// "vm" is the bytecode engine behind the full O1 pipeline plus
// superinstruction fusion (the default compile), "vm-O0" the same
// engine on unoptimized bytecode (the PR 3 baseline), and "treewalk"
// the pre-VM tree-walking reference.
var benchEngines = []struct {
	name string
	eng  interp.Engine
	opts interp.CompileOpts
}{
	{"vm", interp.EngineVM, interp.DefaultCompileOpts},
	{"vm-O0", interp.EngineVM, interp.CompileOpts{Disable: []string{"fuse"}}},
	{"treewalk", interp.EngineTreeWalk, interp.CompileOpts{}},
}

// BenchmarkInterpLaunch measures functional kernel execution on the
// interpreter (one 4096-item sad launch), compiled once and launched
// per iteration, on every engine variant.
func BenchmarkInterpLaunch(b *testing.B) {
	k, err := parboil.ByName("sad/larger_sad_calc_8")
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			pl, err := k.PrepareNative(e.eng)
			if err != nil {
				b.Fatal(err)
			}
			pl.Mach.UseProgram(interp.CompileModuleOpts(pl.Mach.Mod, e.opts))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pl.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDispatch isolates interpreter dispatch: one work-item
// spinning a tight arithmetic loop, so ns/op is almost purely
// per-instruction overhead (map-environment tree walk vs register VM).
func BenchmarkDispatch(b *testing.B) {
	mod, err := clc.Compile(`
kernel void spin(global int* out)
{
    int acc = 0;
    int i;
    for (i = 0; i < 100000; ++i) acc += i & 7;
    out[0] = acc;
}
`, "spin")
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			m := interp.NewMachine(mod)
			m.Engine = e.eng
			m.UseProgram(interp.CompileModuleOpts(mod, e.opts))
			out := m.NewRegion(4, ir.Global)
			args := []interp.Value{{K: ir.Pointer, P: interp.Ptr{R: out}}}
			nd := interp.ND1(1, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Launch("spin", args, nd); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// vm-traced is the telemetry overhead guard: the same VM dispatch
	// with a live profiler at the default sampling rate. CI's
	// bench-telemetry job requires it within 3% of the untraced vm run
	// (the sampling check is the only hot-loop cost most launches pay).
	b.Run("vm-traced", func(b *testing.B) {
		m := interp.NewMachine(mod)
		m.Engine = interp.EngineVM
		m.UseProgram(interp.CompileModuleOpts(mod, interp.DefaultCompileOpts))
		m.Profiler = interp.NewProfiler(interp.ProfileOptions{PerOpcode: true, PerBlock: true})
		out := m.NewRegion(4, ir.Global)
		args := []interp.Value{{K: ir.Pointer, P: interp.Ptr{R: out}}}
		nd := interp.ND1(1, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Launch("spin", args, nd); err != nil {
				b.Fatal(err)
			}
		}
	})
	// vm-tiered is the steady-state tier-1 program: the same spin kernel
	// recompiled under the profile of one warm-up launch, which enables
	// the profile-gated superinstructions (bin+bin here) and hot-path
	// block layout on top of the static O1 pipeline. CI's bench-tiered
	// job requires it ≥1.05× faster than the static "vm" run.
	b.Run("vm-tiered", func(b *testing.B) {
		m := interp.NewMachine(mod)
		m.Engine = interp.EngineVM
		m.UseProgram(interp.CompileModuleOpts(mod, interp.Tier0CompileOpts))
		prof := interp.NewProfiler(interp.ProfileOptions{PerOpcode: true, PerBlock: true, SampleEvery: 1})
		m.Profiler = prof
		out := m.NewRegion(4, ir.Global)
		args := []interp.Value{{K: ir.Pointer, P: interp.Ptr{R: out}}}
		nd := interp.ND1(1, 1)
		if err := m.Launch("spin", args, nd); err != nil {
			b.Fatal(err)
		}
		m.Profiler = nil
		guide := interp.GuideFromSnapshots(prof.Snapshot())
		m.UseProgram(interp.CompileModuleOpts(mod, interp.CompileOpts{
			Opt: true, WarpWidth: interp.DefaultWarpWidth, Profile: guide,
		}))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Launch("spin", args, nd); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTieredLaunch measures first-launch latency — bytecode
// compile plus one small launch, the cost a tenant pays between program
// build and first result — at tier 0 (no O1 clone, no fusion, no warp
// tables) against the old eager O1 compile. The kernel is a long chain
// of small branches: branchy CFGs are where O1 spends its time (mem2reg
// phi placement, fusion scanning, block layout, warp tables), matching
// the Parboil kernels where tier 0 measures 2.7–5× cheaper. Execution
// is one work-item, so the gap is the optimization pipeline itself, not
// the (identical) front end or run time. CI's bench-tiered job requires
// tier 0 ≥2× faster.
func BenchmarkTieredLaunch(b *testing.B) {
	var src strings.Builder
	src.WriteString("kernel void first(global int* out, int n)\n{\n    int acc = n;\n")
	for i := 0; i < 160; i++ {
		fmt.Fprintf(&src, "    if (acc & %d) { acc = acc + %d; } else { acc = acc ^ %d; }\n", 1<<(i%8), i+1, i+3)
	}
	src.WriteString("    out[0] = acc;\n}\n")
	mod, err := clc.Compile(src.String(), "first")
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		opts interp.CompileOpts
	}{
		{"tier0", interp.Tier0CompileOpts},
		{"eager-O1", interp.DefaultCompileOpts},
	}
	for _, v := range variants {
		b.Run("first-launch/"+v.name, func(b *testing.B) {
			nd := interp.ND1(1, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := interp.CompileModuleOpts(mod, v.opts)
				m := interp.NewMachine(mod)
				m.UseProgram(p)
				out := m.NewRegion(4, ir.Global)
				args := []interp.Value{{K: ir.Pointer, P: interp.Ptr{R: out}}, interp.IntV(7)}
				if err := m.Launch("first", args, nd); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWarpDispatch measures warp-batched dispatch against per-item
// scalar dispatch on three divergence profiles: "uniform" spends the
// loop in warp-invariant code (one decode AND one execution per warp),
// "divergent" branches on the local id in the first iteration so the
// warp spills to the scalar path immediately (the ≤5% regression
// guard), and "mixed" re-forms at a barrier between a uniform and a
// lane-varying phase. CI guards uniform at ≥2× and divergent at ≤1.05×
// via benchjson -require-ratio.
func BenchmarkWarpDispatch(b *testing.B) {
	kernels := []struct{ name, src string }{
		{"uniform", `
kernel void k(global int* out)
{
    int acc = 0;
    int i;
    for (i = 0; i < 20000; ++i) acc += i & 7;
    out[get_local_id(0)] = acc;
}
`},
		{"divergent", `
kernel void k(global int* out)
{
    int lid = (int)get_local_id(0);
    int acc = 0;
    int i;
    for (i = 0; i < 20000; ++i) {
        if ((i + lid) & 1) acc += i & 7;
        else acc -= i & 3;
    }
    out[lid] = acc;
}
`},
		{"mixed", `
kernel void k(global int* out)
{
    int lid = (int)get_local_id(0);
    int acc = 0;
    int i;
    for (i = 0; i < 10000; ++i) acc += i & 7;
    barrier(1);
    for (i = 0; i < 10000; ++i) acc += (i + lid) & 3;
    out[lid] = acc;
}
`},
	}
	engines := []struct {
		name string
		opts interp.CompileOpts
	}{
		{"vm", interp.CompileOpts{Opt: true}}, // scalar: WarpWidth 0
		{"vm-warp", interp.DefaultCompileOpts},
	}
	for _, k := range kernels {
		mod, err := clc.Compile(k.src, k.name)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range engines {
			b.Run(k.name+"/"+e.name, func(b *testing.B) {
				m := interp.NewMachine(mod)
				m.Engine = interp.EngineVM
				m.UseProgram(interp.CompileModuleOpts(mod, e.opts))
				out := m.NewRegion(64*4, ir.Global)
				args := []interp.Value{{K: ir.Pointer, P: interp.Ptr{R: out}}}
				nd := interp.ND1(64, 64)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := m.Launch("k", args, nd); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSimBaseline measures the discrete-event simulator on an
// 8-kernel baseline workload.
func BenchmarkSimBaseline(b *testing.B) {
	dev := device.NVIDIAK20m()
	combo := workload.Random(7, 8, 1)[0]
	for i := 0; i < b.N; i++ {
		sim.RunBaseline(dev, workload.BuildSingle(dev, combo))
	}
}

// BenchmarkSimAccelOS measures the simulator under software scheduling.
func BenchmarkSimAccelOS(b *testing.B) {
	dev := device.NVIDIAK20m()
	combo := workload.Random(7, 8, 1)[0]
	for i := 0; i < b.N; i++ {
		sim.RunAccelOS(dev, workload.BuildSingle(dev, combo), false, accelos.PlanShares)
	}
}

// BenchmarkSimElastic measures the simulator under static merging.
func BenchmarkSimElastic(b *testing.B) {
	dev := device.NVIDIAK20m()
	combo := workload.Random(7, 8, 1)[0]
	for i := 0; i < b.N; i++ {
		sim.RunElastic(dev, workload.BuildSingle(dev, combo), elastic.Plan)
	}
}

// BenchmarkPlanShares measures the §3 resource-sharing algorithm.
func BenchmarkPlanShares(b *testing.B) {
	dev := device.NVIDIAK20m()
	execs := workload.BuildSingle(dev, workload.Random(11, 8, 1)[0])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		accelos.PlanShares(dev, execs, false)
	}
}

// BenchmarkPlanTenantShares measures the tenant-weighted §3 variant the
// cluster layer plans every admission and completion with.
func BenchmarkPlanTenantShares(b *testing.B) {
	dev := device.NVIDIAK20m()
	execs := workload.BuildSingle(dev, workload.Random(11, 8, 1)[0])
	tenants := make([]string, len(execs))
	for i := range tenants {
		tenants[i] = fmt.Sprintf("tenant%d", i%3)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		accelos.PlanTenantShares(dev, execs, tenants, nil, false)
	}
}

// BenchmarkClusterPlacement measures one placement decision per policy
// over an 8-device heterogeneous pool — the scheduler-latency hot path
// of the admission controller.
func BenchmarkClusterPlacement(b *testing.B) {
	devs := device.PoolOf(8)
	loads := make([]sim.DeviceLoad, len(devs))
	for i, d := range devs {
		loads[i] = sim.DeviceLoad{Dev: d, Index: i, PendingWork: int64(i) * 1e6}
	}
	e := &sim.ClusterExec{
		K:      &sim.KernelExec{ID: 1, WGSize: 128, NumWGs: 4096, BaseWGCost: 1000, RegsPerThread: 16},
		Tenant: "tenant1",
	}
	for _, name := range cluster.PolicyNames() {
		pol, err := cluster.PolicyByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pol.Pick(e, loads)
			}
		})
	}
}

// BenchmarkRunCluster measures a full multi-tenant cluster simulation
// (placement + admission + tenant-weighted planning + rebalancing) per
// policy, and reports the resulting makespan and migration count.
func BenchmarkRunCluster(b *testing.B) {
	devs := device.PoolOf(4)
	for _, name := range cluster.PolicyNames() {
		b.Run(name, func(b *testing.B) {
			var r *sim.ClusterResult
			for i := 0; i < b.N; i++ {
				pol, _ := cluster.PolicyByName(name)
				sched := cluster.NewScheduler(pol, accelos.PlanWeighted)
				execs := workload.Tenants(devs, 3, 4, 0xC10)
				r = sim.RunCluster(devs, execs, sched, sim.ClusterOptions{Rebalance: true})
			}
			b.ReportMetric(float64(r.Makespan), "makespan-cycles")
			b.ReportMetric(float64(r.Migrations), "migrations")
		})
	}
}

// --- ablation benchmarks ---------------------------------------------

// BenchmarkAblationChunk sweeps the dequeue chunk size on a small-kernel
// isolated execution, the design choice behind the §6.4 adaptive table:
// chunk 1 pays one atomic per virtual group; large chunks amortize it
// but coarsen load balance.
func BenchmarkAblationChunk(b *testing.B) {
	dev := device.NVIDIAK20m()
	k, err := parboil.ByName("histo/histo_final") // small kernel, chunk-sensitive
	if err != nil {
		b.Fatal(err)
	}
	base := k.Exec(0)
	base.Iters = 2
	alone := sim.RunBaseline(dev, workload.Clone([]*sim.KernelExec{base})).Timings[0].Duration()
	for i := 0; i < b.N; i++ {
		for _, chunk := range []int64{1, 2, 4, 8} {
			e := k.Exec(0)
			e.Iters = 2
			e.Chunk = chunk
			r := sim.RunAccelOS(dev, []*sim.KernelExec{e}, false, accelos.PlanShares)
			b.ReportMetric(float64(alone)/float64(r.Timings[0].Duration()),
				fmt.Sprintf("speedup-chunk%d", chunk))
		}
	}
}

// BenchmarkAblationGreedyGrowth compares the §3 allocation with and
// without the greedy post-pass that grows conservative Diophantine
// shares until resource saturation.
func BenchmarkAblationGreedyGrowth(b *testing.B) {
	dev := device.NVIDIAK20m()
	combo := workload.Random(3, 4, 1)[0]
	for i := 0; i < b.N; i++ {
		execs := workload.BuildSingle(dev, combo)
		launches := accelos.PlanShares(dev, execs, false)
		var grown, initial int64
		for _, l := range launches {
			grown += l.PhysWGs * dev.RoundWarp(l.FP.Threads)
			// The pre-growth share is T/(K·w) threads per kernel.
			w := dev.RoundWarp(l.FP.Threads)
			x := dev.TotalThreads() / (int64(len(execs)) * w)
			if x > l.K.NumWGs {
				x = l.K.NumWGs
			}
			initial += x * w
		}
		b.ReportMetric(float64(grown)/float64(dev.TotalThreads()), "thread-utilization-greedy")
		b.ReportMetric(float64(initial)/float64(dev.TotalThreads()), "thread-utilization-initial")
	}
}

// BenchmarkAblationExclusiveDriver quantifies the AMD driver's kernel
// serialization: the same workload with and without ExclusiveKernels.
func BenchmarkAblationExclusiveDriver(b *testing.B) {
	combo := workload.Random(5, 2, 1)[0]
	for i := 0; i < b.N; i++ {
		excl := device.AMDR9295X2()
		co := device.AMDR9295X2()
		co.ExclusiveKernels = false
		re := sim.RunBaseline(excl, workload.Build(excl, combo, 2))
		rc := sim.RunBaseline(co, workload.Build(co, combo, 2))
		b.ReportMetric(re.Overlap(), "overlap-exclusive")
		b.ReportMetric(rc.Overlap(), "overlap-coscheduled")
	}
}

// BenchmarkLaunchLargeBuffer measures a minimal launch over a 16 MB
// buffer. With zero-copy binding the per-launch cost is independent of
// buffer size — the old path copied every byte in and out per launch,
// so this benchmark regressing to O(bytes) means the binding broke.
func BenchmarkLaunchLargeBuffer(b *testing.B) {
	ctx := opencl.GetPlatforms()[0].CreateContext()
	q := ctx.CreateCommandQueue()
	p := ctx.CreateProgramWithSource(`
kernel void touch(global int* d) { d[get_global_id(0)] = (int)get_global_id(0); }
`)
	if err := p.Build(); err != nil {
		b.Fatal(err)
	}
	k, err := p.CreateKernel("touch")
	if err != nil {
		b.Fatal(err)
	}
	const size = 16 << 20
	buf, err := ctx.CreateBuffer(size)
	if err != nil {
		b.Fatal(err)
	}
	_ = k.SetArgBuffer(0, buf)
	nd := opencl.NDRange{Dims: 1, Global: [3]int64{64, 1, 1}, Local: [3]int64{64, 1, 1}}
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.EnqueueNDRangeKernel(k, nd); err != nil {
			b.Fatal(err)
		}
	}
}

// asyncPipelineFixture is the shared setup of the host-API benchmarks:
// one application with `chains` independent 4 MB buffers and strided
// kernels on a DMA-modeled context (transfers take bus wall time with
// the host CPU idle, as on real hardware).
type asyncPipelineFixture struct {
	rt  *accelos.Runtime
	app *accelos.App
	buf []*accelos.BufferHandle
	krn []*accelos.KernelHandle
	hst [][]byte
	nd  opencl.NDRange
}

const (
	apChains = 8
	apElems  = 2 << 20 // 8 MB per chain
	apN      = 128
	apIters  = 8
)

func newAsyncPipelineFixture(b *testing.B) *asyncPipelineFixture {
	b.Helper()
	rt := accelos.NewRuntime(opencl.GetPlatforms()[0])
	rt.Ctx.SetDMAModel(true)
	app := rt.Connect("bench-pipeline")
	prog, err := app.CreateProgram(`
kernel void strided(global float* d, int n, int stride, int iters)
{
    int i = (int)get_global_id(0);
    if (i < n) {
        float acc = d[i * stride];
        int it;
        for (it = 0; it < iters; ++it) acc = acc * 1.000001f + 0.5f;
        d[i * stride] = acc;
    }
}
`)
	if err != nil {
		b.Fatal(err)
	}
	f := &asyncPipelineFixture{rt: rt, app: app, nd: opencl.ND1(apN, 64)}
	for c := 0; c < apChains; c++ {
		buf, err := app.CreateBuffer(apElems * 4)
		if err != nil {
			b.Fatal(err)
		}
		k, err := prog.CreateKernel("strided")
		if err != nil {
			b.Fatal(err)
		}
		_ = k.SetArgBuffer(0, buf)
		_ = k.SetArgInt32(1, apN)
		_ = k.SetArgInt32(2, apElems/apN)
		_ = k.SetArgInt32(3, apIters)
		f.buf = append(f.buf, buf)
		f.krn = append(f.krn, k)
		f.hst = append(f.hst, make([]byte, apElems*4))
	}
	return f
}

// BenchmarkAsyncPipeline runs N independent write→kernel→read chains
// from ONE application two ways: "serial" submits each command through
// the blocking wrappers (the pre-event in-order model), "async" enqueues
// everything with wait-list edges and blocks once on Finish. The async
// form overlaps DMA transfers with in-flight kernel slices, so its ns/op
// should be well under the serial ns/op (the acceptance bar is 1.5×).
func BenchmarkAsyncPipeline(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		f := newAsyncPipelineFixture(b)
		defer f.rt.Shutdown()
		defer f.app.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for c := 0; c < apChains; c++ {
				if err := f.buf[c].Write(0, f.hst[c]); err != nil {
					b.Fatal(err)
				}
				if err := f.app.EnqueueKernel(f.krn[c], f.nd); err != nil {
					b.Fatal(err)
				}
				if err := f.buf[c].Read(0, f.hst[c]); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(apChains, "chains")
	})
	b.Run("async", func(b *testing.B) {
		f := newAsyncPipelineFixture(b)
		defer f.rt.Shutdown()
		defer f.app.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tails := make([]*opencl.Event, apChains)
			for c := 0; c < apChains; c++ {
				wev, err := f.buf[c].WriteAsync(0, f.hst[c])
				if err != nil {
					b.Fatal(err)
				}
				kev, err := f.app.EnqueueKernelAsync(f.krn[c], f.nd, wev)
				if err != nil {
					b.Fatal(err)
				}
				rev, err := f.buf[c].ReadAsync(0, f.hst[c], kev)
				if err != nil {
					b.Fatal(err)
				}
				tails[c] = rev
			}
			f.app.Finish()
			// The chain tail fails if any upstream command failed; a
			// silently broken async path must not record a bogus win.
			if err := opencl.WaitAll(tails...); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(apChains, "chains")
	})
}

// BenchmarkEventOverhead isolates the cost of the event machinery
// itself: enqueue + dependency resolution + completion + Wait for a
// no-op marker command, with no kernel or transfer work behind it.
func BenchmarkEventOverhead(b *testing.B) {
	ctx := opencl.GetPlatforms()[0].CreateContext()
	for _, mode := range []string{"in-order", "out-of-order"} {
		b.Run(mode, func(b *testing.B) {
			q := ctx.CreateCommandQueue()
			if mode == "out-of-order" {
				q = ctx.CreateOutOfOrderQueue()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev, err := q.EnqueueMarker()
				if err != nil {
					b.Fatal(err)
				}
				if err := ev.Wait(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSlicedLaunch measures the sliced engine end to end through
// the accelOS runtime (JIT-transformed kernel, RT descriptor slices,
// pooled machines) — the live hot path the dynamic re-planner drives.
func BenchmarkSlicedLaunch(b *testing.B) {
	rt := accelos.NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	app := rt.Connect("bench")
	defer app.Close()
	prog, err := app.CreateProgram(`
kernel void vadd(global const float* x, global const float* y, global float* z, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) z[i] = x[i] + y[i];
}
`)
	if err != nil {
		b.Fatal(err)
	}
	const n = 4096
	x, _ := app.CreateBuffer(n * 4)
	y, _ := app.CreateBuffer(n * 4)
	z, _ := app.CreateBuffer(n * 4)
	k, err := prog.CreateKernel("vadd")
	if err != nil {
		b.Fatal(err)
	}
	_ = k.SetArgBuffer(0, x)
	_ = k.SetArgBuffer(1, y)
	_ = k.SetArgBuffer(2, z)
	_ = k.SetArgInt32(3, n)
	nd := opencl.NDRange{Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := app.EnqueueKernel(k, nd); err != nil {
			b.Fatal(err)
		}
	}
}
