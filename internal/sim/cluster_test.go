package sim

import (
	"testing"

	"repro/internal/device"
)

// rrSched is a minimal scheduler for engine-level tests: round-robin
// placement, fixed equal allocations.
type rrSched struct{ n int }

func (s *rrSched) Place(e *ClusterExec, loads []DeviceLoad) int {
	s.n++
	return (s.n - 1) % len(loads)
}

func (s *rrSched) Plan(dev *device.Platform, active []*ClusterExec, global []*ClusterExec) []*Launch {
	out := make([]*Launch, len(active))
	for i, ce := range active {
		out[i] = &Launch{K: ce.K, PhysWGs: 4, Chunk: 2, FP: ce.K.TransFootprint()}
	}
	return out
}

func clusterExecs(n int, numWGs int64) []*ClusterExec {
	var out []*ClusterExec
	for i := 0; i < n; i++ {
		out = append(out, &ClusterExec{
			K: &KernelExec{
				ID: i, Name: "k", WGSize: 64, NumWGs: numWGs,
				BaseWGCost: 5000, RegsPerThread: 16, LocalBytes: 512,
			},
			Tenant:  "t",
			Arrival: int64(i) * 1000,
		})
	}
	return out
}

func TestRunClusterCompletesAll(t *testing.T) {
	devs := device.PoolOf(2)
	execs := clusterExecs(6, 1000)
	r := RunCluster(devs, execs, &rrSched{}, ClusterOptions{Rebalance: true})
	if r.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	for i, tm := range r.Timings {
		if tm.End <= 0 {
			t.Errorf("exec %d never completed", i)
		}
		if tm.Start < tm.Submit {
			t.Errorf("exec %d started at %d before submission %d", i, tm.Start, tm.Submit)
		}
		if tm.End < tm.Start {
			t.Errorf("exec %d ended at %d before start %d", i, tm.End, tm.Start)
		}
	}
	var execsSeen int
	for _, d := range r.Devices {
		execsSeen += d.Executions
	}
	if execsSeen < len(execs) {
		t.Errorf("device stats count %d executions, want >= %d", execsSeen, len(execs))
	}
}

func TestRunClusterDeterministic(t *testing.T) {
	devs := device.PoolOf(3)
	a := RunCluster(devs, clusterExecs(8, 2000), &rrSched{}, ClusterOptions{Rebalance: true})
	b := RunCluster(devs, clusterExecs(8, 2000), &rrSched{}, ClusterOptions{Rebalance: true})
	if a.Makespan != b.Makespan || a.Migrations != b.Migrations {
		t.Errorf("non-deterministic: makespan %d vs %d, migrations %d vs %d",
			a.Makespan, b.Makespan, a.Migrations, b.Migrations)
	}
	for i := range a.Timings {
		if a.Timings[i] != b.Timings[i] {
			t.Errorf("exec %d timing differs between identical runs", i)
		}
	}
}

func TestRunClusterAdmissionQueues(t *testing.T) {
	// One device, admission limit 1: requests serialize, so each later
	// request ends strictly after the previous one.
	devs := device.PoolOf(1)
	execs := clusterExecs(3, 500)
	for _, e := range execs {
		e.Arrival = 0
	}
	r := RunCluster(devs, execs, &rrSched{}, ClusterOptions{MaxResident: 1})
	for i := 1; i < len(r.Timings); i++ {
		if r.Timings[i].End <= r.Timings[i-1].End {
			t.Errorf("admission limit 1 should serialize: end[%d]=%d <= end[%d]=%d",
				i, r.Timings[i].End, i-1, r.Timings[i-1].End)
		}
	}
}

func TestRunClusterStealsQueuedWork(t *testing.T) {
	// All requests placed on device 0 with a tight admission limit;
	// device 1 starts idle. Rebalancing must migrate queued requests.
	devs := device.PoolOf(2)
	execs := clusterExecs(6, 1000)
	for _, e := range execs {
		e.Arrival = 0
	}
	r := RunCluster(devs, execs, stickySched{}, ClusterOptions{MaxResident: 2, Rebalance: true})
	if r.Devices[1].StealsIn == 0 {
		t.Error("idle device stole no queued work")
	}
	if r.Migrations == 0 {
		t.Error("no migrations recorded")
	}
}

// stickySched pins every request to device 0.
type stickySched struct{}

func (stickySched) Place(e *ClusterExec, loads []DeviceLoad) int { return 0 }

func (stickySched) Plan(dev *device.Platform, active []*ClusterExec, global []*ClusterExec) []*Launch {
	out := make([]*Launch, len(active))
	for i, ce := range active {
		out[i] = &Launch{K: ce.K, PhysWGs: 2, Chunk: 1, FP: ce.K.TransFootprint()}
	}
	return out
}

func TestRunClusterSplitsRanges(t *testing.T) {
	// One long-running kernel on device 0, nothing queued anywhere:
	// the only way to feed device 1 is to split the remaining
	// virtual-group range.
	devs := device.PoolOf(2)
	execs := clusterExecs(1, 20000)
	r := RunCluster(devs, execs, stickySched{}, ClusterOptions{Rebalance: true})
	if r.Devices[1].SplitsIn == 0 {
		t.Fatal("idle device received no range split")
	}
	if len(r.Splits) == 0 {
		t.Fatal("no split events recorded")
	}
	for _, s := range r.Splits {
		if s.Range[0] >= s.Range[1] || s.Range[1] > 20000 {
			t.Errorf("split range %v out of bounds", s.Range)
		}
	}
	// Splitting must help: the same run without rebalancing is slower.
	serial := RunCluster(devs, clusterExecs(1, 20000), stickySched{}, ClusterOptions{})
	if r.Makespan >= serial.Makespan {
		t.Errorf("range migration did not improve makespan: %d >= %d", r.Makespan, serial.Makespan)
	}
}

func TestRunClusterTenantLedger(t *testing.T) {
	devs := device.PoolOf(2)
	execs := clusterExecs(4, 1000)
	execs[0].Tenant, execs[1].Tenant = "a", "a"
	execs[2].Tenant, execs[3].Tenant = "b", "b"
	r := RunCluster(devs, execs, &rrSched{}, ClusterOptions{})
	shares := r.TenantShares()
	if len(shares) != 2 {
		t.Fatalf("tenant shares %v, want 2 tenants", shares)
	}
	sum := shares["a"] + shares["b"]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %f, want 1", sum)
	}
}

func TestRunClusterEmpty(t *testing.T) {
	r := RunCluster(nil, nil, &rrSched{}, ClusterOptions{})
	if r.Makespan != 0 || len(r.Timings) != 0 {
		t.Error("empty cluster run should be empty")
	}
	r = RunCluster(device.PoolOf(1), nil, &rrSched{}, ClusterOptions{})
	if r.Makespan != 0 {
		t.Error("no-request run should have zero makespan")
	}
}
