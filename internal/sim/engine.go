package sim

import (
	"container/heap"

	"repro/internal/device"
)

// event is a scheduled callback.
type event struct {
	t   int64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// cuState tracks the free resources of one compute unit.
type cuState struct {
	freeThreads int64
	freeLocal   int64
	freeRegs    int64
}

func (c *cuState) fits(fp device.Footprint, warp int64) bool {
	threads := roundUp(fp.Threads, warp)
	return c.freeThreads >= threads && c.freeLocal >= fp.LocalBytes && c.freeRegs >= fp.Regs
}

func (c *cuState) take(fp device.Footprint, warp int64) {
	c.freeThreads -= roundUp(fp.Threads, warp)
	c.freeLocal -= fp.LocalBytes
	c.freeRegs -= fp.Regs
}

func (c *cuState) release(fp device.Footprint, warp int64) {
	c.freeThreads += roundUp(fp.Threads, warp)
	c.freeLocal += fp.LocalBytes
	c.freeRegs += fp.Regs
}

func roundUp(v, unit int64) int64 {
	if unit <= 0 {
		return v
	}
	return (v + unit - 1) / unit * unit
}

// engine is the discrete-event core shared by all scheme runners.
type engine struct {
	dev *device.Platform
	now int64
	seq int64
	evq eventHeap
	cus []cuState

	// resident counts distinct kernels currently occupying each CU,
	// device-wide, for the contention model: residentWGs[kernelID] is
	// the number of resident work-groups of that kernel.
	residentWGs map[int]int64
	memIntens   map[int]float64
	roofs       map[int]int64

	// Co-execution accounting for the paper's overlap metric
	// O = T(c)/T(t): timeAll integrates periods when every application
	// has work resident; timeAny when at least one does.
	apps     int
	active   int
	lastMark int64
	timeAll  int64
	timeAny  int64
	finished map[int]bool // apps that completed all their launches
}

func newEngine(dev *device.Platform, apps int) *engine {
	e := &engine{
		dev:         dev,
		apps:        apps,
		cus:         make([]cuState, dev.NumCUs),
		residentWGs: make(map[int]int64),
		memIntens:   make(map[int]float64),
		roofs:       make(map[int]int64),
		finished:    make(map[int]bool),
	}
	for i := range e.cus {
		e.cus[i] = cuState{
			freeThreads: dev.ThreadsPerCU,
			freeLocal:   dev.LocalMemPerCU,
			freeRegs:    dev.RegsPerCU,
		}
	}
	return e
}

// mark integrates the co-execution clocks up to the current time. It must
// be called before any transition of the resident set.
func (e *engine) mark() {
	dt := e.now - e.lastMark
	if dt > 0 && e.active > 0 {
		e.timeAny += dt
		// T(c): all K kernels of the workload co-executing (§7.4).
		if e.active >= e.apps {
			e.timeAll += dt
		}
	}
	e.lastMark = e.now
}

// appFinished records that an application has completed all its work.
func (e *engine) appFinished(id int) {
	e.mark()
	e.finished[id] = true
}

func (e *engine) schedule(dt int64, fn func()) {
	if dt < 0 {
		dt = 0
	}
	e.seq++
	heap.Push(&e.evq, event{t: e.now + dt, seq: e.seq, fn: fn})
}

func (e *engine) at(t int64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.evq, event{t: t, seq: e.seq, fn: fn})
}

// run drains the event queue.
func (e *engine) run() {
	for e.evq.Len() > 0 {
		ev := heap.Pop(&e.evq).(event)
		e.now = ev.t
		ev.fn()
	}
}

// setRoof registers a kernel's scalability roof for the bandwidth model.
func (e *engine) setRoof(id int, roof int64) {
	e.roofs[id] = roof
}

// bandwidthDemand sums the resident kernels' pressure on the memory
// system. A kernel saturates its achievable memory traffic (MemIntensity
// of the device's bandwidth) at its roof; beyond the roof extra resident
// work-groups only queue, so demand clamps at the kernel's intensity.
func (e *engine) bandwidthDemand() float64 {
	var d float64
	for id, n := range e.residentWGs {
		if n <= 0 {
			continue
		}
		u := 1.0
		if r := e.roofs[id]; r > 0 {
			u = float64(n) / float64(r)
			if u > 1 {
				u = 1
			}
		}
		d += e.memIntens[id] * u
	}
	return d
}

// slowMult returns the execution-time multiplier for a work-group of
// kernel id running with nEff effective peers of its own kernel. Two
// factors compose: the kernel's own scalability roof (nEff/roof when
// oversubscribed — progress capped at the roof), and memory-system
// oversubscription (total demand D > 1 slows every memory-bound
// work-group by D). Kernels starved below their roof still pay the
// bandwidth factor but not the roof factor — the regime static
// misallocation (Elastic Kernels) puts victims in.
func (e *engine) slowMult(id int, nEff int64) float64 {
	roof := e.roofs[id]
	if roof <= 0 || nEff <= 0 {
		return 1
	}
	own := float64(nEff) / float64(roof)
	if own < 1 {
		own = 1
	}
	d := e.bandwidthDemand()
	if d < 1 {
		d = 1
	}
	return own * d
}

// foreignResident reports whether any other kernel currently occupies
// the device.
func (e *engine) foreignResident(id int) bool {
	for k, n := range e.residentWGs {
		if k != id && n > 0 {
			return true
		}
	}
	return false
}

func (e *engine) addResident(id int, mi float64) {
	if e.residentWGs[id] == 0 {
		e.mark()
		e.active++
	}
	e.residentWGs[id]++
	e.memIntens[id] = mi
}

func (e *engine) removeResident(id int) {
	e.residentWGs[id]--
	if e.residentWGs[id] == 0 {
		e.mark()
		e.active--
	}
}

// pickCU returns the index of the compute unit with the most free
// threads among those that fit fp, or -1.
func (e *engine) pickCU(fp device.Footprint) int {
	best := -1
	var bestFree int64 = -1
	for i := range e.cus {
		if e.cus[i].fits(fp, e.dev.WarpSize) && e.cus[i].freeThreads > bestFree {
			best = i
			bestFree = e.cus[i].freeThreads
		}
	}
	return best
}
