package sim

import "repro/internal/device"

// RunBaseline simulates the standard OpenCL stack. Each application
// launches its kernel Iters times back to back; every launch submits its
// full NDRange and the hardware scheduler statically partitions the grid
// across compute units (contiguous wave-granularity blocks per CU,
// drained greedily under the CU's occupancy limit). Per-CU queues are
// FIFO across launches — the kernel that arrives first effectively
// excludes the rest (§2.3 of the paper); tail overlap emerges when one
// CU drains its block before its peers. On platforms whose driver never
// co-schedules kernels (ExclusiveKernels), a later kernel's work-groups
// additionally wait until the device holds no foreign work.
func RunBaseline(dev *device.Platform, execs []*KernelExec) *Result {
	e := newEngine(dev, len(execs))
	res := &Result{Timings: make([]KernelTiming, len(execs))}

	type wgref struct {
		ki    int
		vg    int64
		avail int64
	}
	queues := make([][]wgref, dev.NumCUs)
	type kstate struct {
		iter     int64 // current iteration index
		doneWGs  int64 // completed WGs of the current iteration
		started  bool
		finished bool
	}
	states := make([]kstate, len(execs))
	roofs := make([]int64, len(execs))

	var tryAll func()

	submitIter := func(ki int) {
		k := execs[ki]
		avail := e.now + dev.LaunchOverhead
		per := (k.NumWGs + int64(dev.NumCUs) - 1) / int64(dev.NumCUs)
		for vg := int64(0); vg < k.NumWGs; vg++ {
			cu := int(vg / per)
			if cu >= dev.NumCUs {
				cu = dev.NumCUs - 1
			}
			queues[cu] = append(queues[cu], wgref{ki: ki, vg: vg, avail: avail})
		}
	}

	var tryDispatch func(cu int)
	tryDispatch = func(cu int) {
		for len(queues[cu]) > 0 {
			head := queues[cu][0]
			k := execs[head.ki]
			if head.avail > e.now {
				a := head.avail
				e.at(a, func() { tryDispatch(cu) })
				return
			}
			fp := k.Footprint()
			if !e.cus[cu].fits(fp, dev.WarpSize) {
				return // head-of-line blocking until a resident WG retires
			}
			if dev.ExclusiveKernels && e.foreignResident(k.ID) {
				return // driver serializes distinct kernels
			}
			queues[cu] = queues[cu][1:]
			e.cus[cu].take(fp, dev.WarpSize)
			e.addResident(k.ID, k.MemIntensity)
			if !states[head.ki].started {
				states[head.ki].started = true
				res.Timings[head.ki].Start = e.now
			}
			mult := e.slowMult(k.ID, e.residentWGs[k.ID])
			cost := int64(float64(k.VGCost(head.vg)) * mult)
			ki := head.ki
			e.schedule(cost, func() {
				e.cus[cu].release(fp, dev.WarpSize)
				e.removeResident(k.ID)
				st := &states[ki]
				st.doneWGs++
				if st.doneWGs == k.NumWGs {
					st.doneWGs = 0
					st.iter++
					if st.iter >= k.NumIters() {
						st.finished = true
						res.Timings[ki].End = e.now
						if e.now > res.Makespan {
							res.Makespan = e.now
						}
						e.appFinished(k.ID)
					} else {
						submitIter(ki)
					}
				}
				tryAll()
			})
		}
	}
	tryAll = func() {
		for cu := 0; cu < dev.NumCUs; cu++ {
			tryDispatch(cu)
		}
	}

	for i, k := range execs {
		roofs[i] = k.SatRoof(dev)
		e.setRoof(k.ID, roofs[i])
		submit := int64(i) * dev.LaunchOverhead
		res.Timings[i] = KernelTiming{ID: k.ID, Name: k.Name, Submit: submit, Start: -1}
		ki := i
		e.at(submit, func() {
			submitIter(ki)
			tryAll()
		})
	}
	e.run()
	res.TimeAll, res.TimeAny = e.timeAll, e.timeAny
	return res
}
