package sim

import "repro/internal/device"

// EKPlanFunc statically plans a merged co-schedule for a set of kernels
// (implemented by package elastic): per-kernel physical work-groups with
// fixed virtual-group ranges, plus the merged kernel's footprint.
type EKPlanFunc func(dev *device.Platform, execs []*KernelExec) ([]*Launch, device.Footprint)

// RunElastic simulates the Elastic Kernels regime. Static merging works
// in rounds: each round merges the next pending iteration of every still-
// running application into one launch; the merged kernel completes only
// when all its constituent ranges do, so every application waits for the
// slowest member before its next iteration starts — the global barrier
// inherent to static merging. Each physical work-group executes a fixed
// contiguous range of one kernel's virtual groups with no rebalancing,
// and pays the merged footprint (max work-group size, max registers, max
// local memory of the round), which erodes occupancy as the number of
// merged kernels grows.
func RunElastic(dev *device.Platform, execs []*KernelExec, plan EKPlanFunc) *Result {
	e := newEngine(dev, len(execs))
	res := &Result{Timings: make([]KernelTiming, len(execs))}

	type appState struct {
		iter     int64
		finished bool
		started  bool
	}
	apps := make([]appState, len(execs))
	roofs := make([]int64, len(execs))
	for i, k := range execs {
		roofs[i] = k.SatRoof(dev)
		e.setRoof(k.ID, roofs[i])
		res.Timings[i] = KernelTiming{ID: k.ID, Name: k.Name, Submit: 0, Start: -1}
	}

	idx := make(map[int]int, len(execs)) // kernel ID -> app index
	for i, k := range execs {
		idx[k.ID] = i
	}

	var startRound func()

	type worker struct {
		li    int // index into the round's launches
		r     [2]int64
		avail int64
	}

	startRound = func() {
		var members []*KernelExec
		for i, k := range execs {
			if !apps[i].finished {
				members = append(members, k)
			}
		}
		if len(members) == 0 {
			return
		}
		launches, merged := plan(dev, members)
		// One merged submission per round: a single driver launch plus
		// the static merge step.
		avail := e.now + dev.LaunchOverhead + dev.LaunchOverhead/2

		remaining := 0
		for _, l := range launches {
			remaining += len(l.Ranges)
		}
		outstanding := make([]int, len(launches))
		for li, l := range launches {
			outstanding[li] = len(l.Ranges)
		}
		roundLeft := remaining

		var pending []worker
		maxW := 0
		for _, l := range launches {
			if len(l.Ranges) > maxW {
				maxW = len(l.Ranges)
			}
		}
		for w := 0; w < maxW; w++ {
			for li, l := range launches {
				if w < len(l.Ranges) {
					pending = append(pending, worker{li: li, r: l.Ranges[w], avail: avail})
				}
			}
		}

		var tryPlace func()
		tryPlace = func() {
			for len(pending) > 0 {
				w := pending[0]
				l := launches[w.li]
				ai := idx[l.K.ID]
				if w.avail > e.now {
					a := w.avail
					e.at(a, func() { tryPlace() })
					return
				}
				cu := e.pickCU(merged)
				if cu < 0 {
					return
				}
				pending = pending[1:]
				e.cus[cu].take(merged, dev.WarpSize)
				e.addResident(l.K.ID, l.K.MemIntensity)
				if !apps[ai].started {
					apps[ai].started = true
					res.Timings[ai].Start = e.now
				}
				var cost int64
				for vg := w.r[0]; vg < w.r[1]; vg++ {
					cost += l.K.VGCost(vg)
				}
				mult := e.slowMult(l.K.ID, e.residentWGs[l.K.ID])
				cost = int64(float64(cost) * mult)
				li := w.li
				cuIdx := cu
				e.schedule(cost, func() {
					e.cus[cuIdx].release(merged, dev.WarpSize)
					e.removeResident(l.K.ID)
					outstanding[li]--
					if outstanding[li] == 0 {
						// This kernel's share of the round is complete.
						a := idx[launches[li].K.ID]
						apps[a].iter++
						if apps[a].iter >= launches[li].K.NumIters() {
							apps[a].finished = true
							res.Timings[a].End = e.now
							if e.now > res.Makespan {
								res.Makespan = e.now
							}
							e.appFinished(launches[li].K.ID)
						}
					}
					roundLeft--
					if roundLeft == 0 {
						// Global barrier: the next merged launch starts
						// only after the whole round retires.
						startRound()
						return
					}
					tryPlace()
				})
			}
		}
		e.at(avail, func() { tryPlace() })
	}

	e.at(0, startRound)
	e.run()
	res.TimeAll, res.TimeAny = e.timeAll, e.timeAny
	return res
}
