package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/device"
)

func TestEventOrdering(t *testing.T) {
	e := newEngine(device.NVIDIAK20m(), 1)
	var order []int
	e.schedule(30, func() { order = append(order, 3) })
	e.schedule(10, func() { order = append(order, 1) })
	e.schedule(20, func() { order = append(order, 2) })
	e.schedule(10, func() { order = append(order, 4) }) // same time: FIFO by seq
	e.run()
	want := []int{1, 4, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("event order = %v, want %v", order, want)
		}
	}
	if e.now != 30 {
		t.Errorf("clock = %d, want 30", e.now)
	}
}

func TestResourceAccounting(t *testing.T) {
	dev := device.NVIDIAK20m()
	e := newEngine(dev, 1)
	fp := device.Footprint{Threads: 100, LocalBytes: 1000, Regs: 2000}
	if !e.cus[0].fits(fp, dev.WarpSize) {
		t.Fatal("fresh CU rejects a small footprint")
	}
	e.cus[0].take(fp, dev.WarpSize)
	// Thread accounting rounds to warp granularity.
	if got := dev.ThreadsPerCU - e.cus[0].freeThreads; got != 128 {
		t.Errorf("threads taken = %d, want 128 (warp-rounded)", got)
	}
	e.cus[0].release(fp, dev.WarpSize)
	if e.cus[0].freeThreads != dev.ThreadsPerCU || e.cus[0].freeLocal != dev.LocalMemPerCU {
		t.Error("release did not restore the CU")
	}
}

func TestPickCUPrefersFree(t *testing.T) {
	dev := device.NVIDIAK20m()
	e := newEngine(dev, 1)
	fp := device.Footprint{Threads: 512}
	e.cus[0].take(fp, dev.WarpSize)
	e.cus[0].take(fp, dev.WarpSize)
	if cu := e.pickCU(fp); cu == 0 {
		t.Error("pickCU chose the most loaded CU")
	}
	// Fill everything; a too-large footprint must be rejected.
	if cu := e.pickCU(device.Footprint{Threads: dev.ThreadsPerCU + 1}); cu != -1 {
		t.Errorf("oversized footprint placed on CU %d", cu)
	}
}

func TestOverlapIntegration(t *testing.T) {
	e := newEngine(device.NVIDIAK20m(), 2)
	// App 0 resident [0, 100); app 1 resident [50, 150).
	e.schedule(0, func() { e.addResident(0, 0.5) })
	e.schedule(50, func() { e.addResident(1, 0.5) })
	e.schedule(100, func() { e.removeResident(0); e.appFinished(0) })
	e.schedule(150, func() { e.removeResident(1); e.appFinished(1) })
	e.run()
	e.mark()
	if e.timeAny != 150 {
		t.Errorf("timeAny = %d, want 150", e.timeAny)
	}
	if e.timeAll != 50 {
		t.Errorf("timeAll = %d, want 50 (the co-resident window)", e.timeAll)
	}
}

func TestSlowMultSolo(t *testing.T) {
	e := newEngine(device.NVIDIAK20m(), 1)
	e.setRoof(0, 50)
	e.residentWGs[0] = 100
	e.memIntens[0] = 0.9
	// Alone, over the roof: slowdown = n/roof (bandwidth demand clamps
	// at the kernel's own intensity, below 1).
	got := e.slowMult(0, 100)
	if got < 1.9 || got > 2.1 {
		t.Errorf("solo saturation mult = %v, want ~2", got)
	}
	// Below the roof: no slowdown.
	if m := e.slowMult(0, 25); m != 1 {
		t.Errorf("under-roof mult = %v, want 1", m)
	}
	// No roof: compute bound.
	e.setRoof(1, 0)
	e.residentWGs[1] = 1000
	if m := e.slowMult(1, 1000); m != 1 {
		t.Errorf("roofless mult = %v, want 1", m)
	}
}

func TestSlowMultSharing(t *testing.T) {
	e := newEngine(device.NVIDIAK20m(), 2)
	// Two saturated memory-bound kernels: total demand 2, each slowed
	// by own-roof x 2.
	e.setRoof(0, 50)
	e.setRoof(1, 50)
	e.residentWGs[0], e.memIntens[0] = 50, 1.0
	e.residentWGs[1], e.memIntens[1] = 50, 1.0
	m0 := e.slowMult(0, 50)
	if m0 < 1.9 || m0 > 2.1 {
		t.Errorf("shared mult = %v, want ~2", m0)
	}
	// A starved victim (below its roof) still pays the bandwidth factor.
	e.residentWGs[0] = 10
	mv := e.slowMult(0, 10)
	if mv < 1.1 {
		t.Errorf("starved victim mult = %v, want > 1.1", mv)
	}
}

// Property: VG costs are positive, deterministic and within the
// imbalance/skew envelope.
func TestVGCostEnvelope(t *testing.T) {
	f := func(id uint8, vg uint16, imb, skew uint8) bool {
		k := &KernelExec{
			ID: int(id), NumWGs: 4096, BaseWGCost: 10000,
			Imbalance: float64(imb%100) / 100,
			Skew:      float64(skew%100) / 100,
		}
		c := k.VGCost(int64(vg) % k.NumWGs)
		if c != k.VGCost(int64(vg)%k.NumWGs) {
			return false // non-deterministic
		}
		hi := float64(k.BaseWGCost) * (1 + k.Imbalance) * (1 + k.Skew/2) * 1.01
		return c >= 1 && float64(c) <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: total work is conserved — the sum over any chunking of the
// queue equals TotalWork.
func TestTotalWorkConserved(t *testing.T) {
	f := func(id uint8, n16, chunk8 uint8) bool {
		k := &KernelExec{ID: int(id), NumWGs: int64(n16%200) + 1, BaseWGCost: 5000, Imbalance: 0.4, Skew: 0.3}
		chunk := int64(chunk8%8) + 1
		var sum int64
		for base := int64(0); base < k.NumWGs; base += chunk {
			end := base + chunk
			if end > k.NumWGs {
				end = k.NumWGs
			}
			for vg := base; vg < end; vg++ {
				sum += k.VGCost(vg)
			}
		}
		return sum == k.TotalWork()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEstimateIsolatedCycles(t *testing.T) {
	dev := device.NVIDIAK20m()
	k := &KernelExec{ID: 0, WGSize: 128, NumWGs: 1000, BaseWGCost: 10000, SatFrac: 0.5, RegsPerThread: 16}
	est := k.EstimateIsolatedCycles(dev)
	r := RunBaseline(dev, []*KernelExec{k})
	actual := r.Timings[0].Duration()
	ratio := float64(est) / float64(actual)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("analytic estimate %d vs simulated %d (ratio %.2f) diverge", est, actual, ratio)
	}
}

func TestExclusiveKernelsNeverCoResident(t *testing.T) {
	dev := device.AMDR9295X2() // ExclusiveKernels
	execs := []*KernelExec{
		{ID: 0, WGSize: 64, NumWGs: 200, BaseWGCost: 10000, MemIntensity: 0.5, SatFrac: 0.4, RegsPerThread: 16},
		{ID: 1, WGSize: 64, NumWGs: 200, BaseWGCost: 10000, MemIntensity: 0.5, SatFrac: 0.4, RegsPerThread: 16},
	}
	r := RunBaseline(dev, execs)
	if r.TimeAll != 0 {
		t.Errorf("exclusive-kernel driver co-scheduled kernels for %d cycles", r.TimeAll)
	}
	if r.Overlap() != 0 {
		t.Errorf("overlap = %v, want 0", r.Overlap())
	}
}

func TestBaselineCompletesAllWork(t *testing.T) {
	dev := device.NVIDIAK20m()
	execs := []*KernelExec{
		{ID: 0, WGSize: 128, NumWGs: 500, BaseWGCost: 8000, Iters: 3, RegsPerThread: 20, SatFrac: 0.3, MemIntensity: 0.6},
		{ID: 1, WGSize: 64, NumWGs: 300, BaseWGCost: 12000, Iters: 2, RegsPerThread: 16, SatFrac: 0.4, MemIntensity: 0.5},
	}
	r := RunBaseline(dev, execs)
	for _, tm := range r.Timings {
		if tm.End <= tm.Start || tm.Start < 0 {
			t.Errorf("kernel %d timing not closed: %+v", tm.ID, tm)
		}
	}
	if r.Makespan <= 0 {
		t.Error("makespan not recorded")
	}
}
