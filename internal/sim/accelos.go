package sim

import "repro/internal/device"

// Launch is a planned kernel execution under software scheduling: the
// reduced number of physical work-groups chosen by the resource-sharing
// algorithm, the dequeue chunk size, and the effective per-work-group
// footprint.
type Launch struct {
	K *KernelExec
	// PhysWGs is the number of physical work-groups to launch.
	PhysWGs int64
	// Chunk is the number of virtual groups handed out per scheduling
	// operation (1 for the naive variant).
	Chunk int64
	// FP is the per-work-group resource footprint used for placement.
	FP device.Footprint
	// Ranges, for Elastic Kernels only, statically partitions the
	// virtual groups: Ranges[w] = [base, end) executed by worker w.
	Ranges [][2]int64
}

// PlanFunc plans physical work-group allocations for the currently
// active kernel execution requests (the §3 resource-sharing algorithm;
// implemented by package accelos). naive selects chunk size 1.
type PlanFunc func(dev *device.Platform, active []*KernelExec, naive bool) []*Launch

// RunAccelOS simulates the accelOS regime. Applications launch their
// kernels Iters times back to back; the kernel scheduler plans each
// arriving execution against the set of applications still running, so
// shares adapt as applications finish (the paper's dynamic advantage
// over static merging). Every physical work-group is a worker that
// repeatedly performs a scheduling operation (cost SchedOpCost) to
// dequeue Chunk virtual groups from the launch's Virtual NDRange and
// executes them (each with a small VGOverhead for runtime ID
// computation). Workers hold their resources until their queue drains —
// a kernel execution is bound to its initial allocation (§2.5).
func RunAccelOS(dev *device.Platform, execs []*KernelExec, naive bool, plan PlanFunc) *Result {
	e := newEngine(dev, len(execs))
	res := &Result{Timings: make([]KernelTiming, len(execs))}

	type appState struct {
		iter     int64
		running  bool // an iteration is in flight
		finished bool
		started  bool
	}
	apps := make([]appState, len(execs))
	roofs := make([]int64, len(execs))

	// launchRun is one planned iteration in flight.
	type launchRun struct {
		ai          int
		l           *Launch
		cursor      int64
		outstanding int64
		placed      int64
	}

	type worker struct {
		lr    *launchRun
		avail int64
	}
	var pending []worker

	var tryPlace func()
	var submitIter func(ai int)

	activeSet := func() []*KernelExec {
		var act []*KernelExec
		for i := range apps {
			if !apps[i].finished {
				act = append(act, execs[i])
			}
		}
		return act
	}

	finishIter := func(lr *launchRun) {
		ai := lr.ai
		apps[ai].running = false
		apps[ai].iter++
		if apps[ai].iter >= execs[ai].NumIters() {
			apps[ai].finished = true
			res.Timings[ai].End = e.now
			if e.now > res.Makespan {
				res.Makespan = e.now
			}
			e.appFinished(execs[ai].ID)
		} else {
			submitIter(ai)
		}
	}

	var workerStep func(lr *launchRun, cu int)
	workerStep = func(lr *launchRun, cu int) {
		k := lr.l.K
		if lr.cursor >= k.NumWGs {
			e.cus[cu].release(lr.l.FP, dev.WarpSize)
			e.removeResident(k.ID)
			lr.outstanding--
			if lr.outstanding == 0 {
				finishIter(lr)
			}
			tryPlace()
			return
		}
		base := lr.cursor
		remaining := k.NumWGs - base
		end := base + lr.l.Chunk
		if end > k.NumWGs {
			end = k.NumWGs
		}
		lr.cursor = end
		schedOp, vgOvh := dev.SchedOpCost, dev.VGOverhead
		if naive {
			// The untuned runtime library: no adaptive chunking and
			// unoptimized scheduling/ID-computation paths (§8.5).
			schedOp *= 2
			vgOvh *= 3
		}
		cost := schedOp
		for vg := base; vg < end; vg++ {
			cost += k.VGCost(vg) + vgOvh
		}
		// Effective concurrency for the bandwidth roof: workers past the
		// remaining queue depth will retire rather than compete.
		n := e.residentWGs[k.ID]
		if remaining < n {
			n = remaining
		}
		mult := e.slowMult(k.ID, n)
		cost = int64(float64(cost) * mult)
		e.schedule(cost, func() { workerStep(lr, cu) })
	}

	tryPlace = func() {
		for len(pending) > 0 {
			w := pending[0]
			lr := w.lr
			if lr.cursor >= lr.l.K.NumWGs && lr.placed > 0 {
				pending = pending[1:] // queue already drained
				continue
			}
			if w.avail > e.now {
				a := w.avail
				e.at(a, func() { tryPlace() })
				return
			}
			cu := e.pickCU(lr.l.FP)
			if cu < 0 {
				return // wait for a release
			}
			pending = pending[1:]
			e.cus[cu].take(lr.l.FP, dev.WarpSize)
			e.addResident(lr.l.K.ID, lr.l.K.MemIntensity)
			lr.placed++
			lr.outstanding++
			if !apps[lr.ai].started {
				apps[lr.ai].started = true
				res.Timings[lr.ai].Start = e.now
			}
			cuIdx := cu
			e.schedule(0, func() { workerStep(lr, cuIdx) })
		}
	}

	submitIter = func(ai int) {
		// The Kernel Scheduler plans this request against the
		// applications still active (§5): shares grow as others leave.
		act := activeSet()
		planned := plan(dev, act, naive)
		var l *Launch
		for _, p := range planned {
			if p.K.ID == execs[ai].ID {
				l = p
				break
			}
		}
		if l == nil { // should not happen; fall back to a minimal launch
			l = &Launch{K: execs[ai], PhysWGs: 1, Chunk: 1, FP: execs[ai].TransFootprint()}
		}
		apps[ai].running = true
		lr := &launchRun{ai: ai, l: l}
		// Launch overhead plus Virtual NDRange setup (the RT descriptor
		// copy) before the first worker may start.
		avail := e.now + dev.LaunchOverhead + dev.LaunchOverhead/8
		for w := int64(0); w < l.PhysWGs; w++ {
			pending = append(pending, worker{lr: lr, avail: avail})
		}
		e.at(avail, func() { tryPlace() })
	}

	for i, k := range execs {
		roofs[i] = k.SatRoof(dev)
		e.setRoof(k.ID, roofs[i])
		submit := int64(i) * dev.LaunchOverhead
		res.Timings[i] = KernelTiming{ID: k.ID, Name: k.Name, Submit: submit, Start: -1}
		ai := i
		e.at(submit, func() { submitIter(ai) })
	}
	e.run()
	res.TimeAll, res.TimeAny = e.timeAll, e.timeAny
	return res
}
