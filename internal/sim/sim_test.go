package sim_test

import (
	"testing"

	"repro/internal/accelos"
	"repro/internal/device"
	"repro/internal/elastic"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// synth builds a synthetic kernel execution request.
func synth(id int, wgs, numWGs, cost int64, imb, mem float64) *sim.KernelExec {
	return &sim.KernelExec{
		ID: id, Name: "synth",
		WGSize: wgs, NumWGs: numWGs,
		LocalBytes: 2048, RegsPerThread: 24,
		BaseWGCost: cost, Imbalance: imb, MemIntensity: mem,
		SatFrac: 0.55,
		Iters:   4,
		Chunk:   2,
	}
}

func isolated(dev *device.Platform, k *sim.KernelExec) int64 {
	kc := *k
	r := sim.RunBaseline(dev, []*sim.KernelExec{&kc})
	return r.Timings[0].Duration()
}

func slowdowns(dev *device.Platform, r *sim.Result, execs []*sim.KernelExec) []float64 {
	out := make([]float64, len(execs))
	for i, k := range execs {
		out[i] = metrics.IndividualSlowdown(r.ByID(k.ID).Duration(), isolated(dev, k))
	}
	return out
}

func cloneExecs(execs []*sim.KernelExec) []*sim.KernelExec {
	out := make([]*sim.KernelExec, len(execs))
	for i, k := range execs {
		c := *k
		out[i] = &c
	}
	return out
}

// parboilMix is a Parboil-like 4-request workload: mostly memory-bound
// kernels whose throughput saturates below full occupancy, plus one small
// grid, with iteration counts that give the applications comparable
// isolated durations.
func parboilMix() []*sim.KernelExec {
	execs := []*sim.KernelExec{
		synth(0, 128, 600, 20000, 0.2, 0.6),
		synth(1, 256, 400, 30000, 0.3, 0.7),
		synth(2, 64, 150, 15000, 0.2, 0.3),
		synth(3, 128, 500, 25000, 0.25, 0.6),
	}
	execs[0].SatFrac = 0.30
	execs[1].SatFrac = 0.35
	execs[2].SatFrac = 0 // small grid: a single wave regardless
	execs[3].SatFrac = 0.25
	return execs
}

func TestBaselineSerializesAccelOSShares(t *testing.T) {
	for _, dev := range device.Platforms() {
		execs := parboilMix()
		sim.EqualizeIters(dev, execs, 4)
		base := sim.RunBaseline(dev, cloneExecs(execs))
		acc := sim.RunAccelOS(dev, cloneExecs(execs), false, accelos.PlanShares)

		if bo, ao := base.Overlap(), acc.Overlap(); ao <= bo+0.2 {
			t.Errorf("%s: accelOS overlap %.2f should far exceed baseline %.2f", dev.Vendor, ao, bo)
		}

		baseIS := slowdowns(dev, base, execs)
		accIS := slowdowns(dev, acc, execs)
		bu := metrics.Unfairness(baseIS)
		au := metrics.Unfairness(accIS)
		if au >= bu {
			t.Errorf("%s: accelOS unfairness %.2f not below baseline %.2f", dev.Vendor, au, bu)
		}
		if au > 3.5 {
			t.Errorf("%s: accelOS unfairness %.2f too high for similar kernels", dev.Vendor, au)
		}
		sp := metrics.ThroughputSpeedup(base.Makespan, acc.Makespan)
		if sp < 1.0 {
			t.Errorf("%s: accelOS throughput speedup %.2f < 1 for balanced workload", dev.Vendor, sp)
		}
		t.Logf("%s: baseU=%.2f accU=%.2f speedup=%.2f overlap base=%.2f acc=%.2f",
			dev.Vendor, bu, au, sp, base.Overlap(), acc.Overlap())
	}
}

func TestElasticStaticAllocation(t *testing.T) {
	dev := device.NVIDIAK20m()
	// Strongly heterogeneous durations: EK's work-proportional static
	// split plus the round barrier leaves unfairness near the baseline's.
	execs := []*sim.KernelExec{
		synth(0, 128, 200, 8000, 0.2, 0.4),
		synth(1, 128, 800, 60000, 0.2, 0.4),
	}
	base := sim.RunBaseline(dev, cloneExecs(execs))
	ek := sim.RunElastic(dev, cloneExecs(execs), elastic.Plan)
	acc := sim.RunAccelOS(dev, cloneExecs(execs), false, accelos.PlanShares)

	baseU := metrics.Unfairness(slowdowns(dev, base, execs))
	ekU := metrics.Unfairness(slowdowns(dev, ek, execs))
	accU := metrics.Unfairness(slowdowns(dev, acc, execs))
	if accU >= ekU {
		t.Errorf("accelOS unfairness %.2f should beat EK %.2f", accU, ekU)
	}
	if metrics.FairnessImprovement(baseU, ekU) > metrics.FairnessImprovement(baseU, accU) {
		t.Errorf("EK fairness improvement exceeds accelOS (base=%.2f ek=%.2f acc=%.2f)", baseU, ekU, accU)
	}
	t.Logf("baseU=%.2f ekU=%.2f accU=%.2f", baseU, ekU, accU)
}

func TestElasticDegradesWithManyKernels(t *testing.T) {
	dev := device.NVIDIAK20m()
	var execs []*sim.KernelExec
	for i := 0; i < 8; i++ {
		k := synth(i, 64+int64(i%3)*96, 400+int64(i)*50, 15000+int64(i)*4000, 0.2, 0.4)
		k.RegsPerThread = 16 + int64(i)*4 // spread register demand: max hurts merged code
		k.SatFrac = 0.3
		execs = append(execs, k)
	}
	base := sim.RunBaseline(dev, cloneExecs(execs))
	ek := sim.RunElastic(dev, cloneExecs(execs), elastic.Plan)
	acc := sim.RunAccelOS(dev, cloneExecs(execs), false, accelos.PlanShares)

	ekSp := metrics.ThroughputSpeedup(base.Makespan, ek.Makespan)
	accSp := metrics.ThroughputSpeedup(base.Makespan, acc.Makespan)
	if accSp <= ekSp {
		t.Errorf("accelOS speedup %.2f should exceed EK %.2f at 8 requests", accSp, ekSp)
	}
	t.Logf("8 requests: EK speedup=%.2f accelOS speedup=%.2f", ekSp, accSp)
}

func TestSingleKernelOverhead(t *testing.T) {
	dev := device.NVIDIAK20m()
	// A small, skew-heavy kernel: the adaptive policy picks a large
	// chunk to amortize the dequeue cost, and dynamic balancing absorbs
	// the gradient that static dispatch turns into tail idle time
	// (§8.5, Fig. 15).
	k := synth(0, 128, 6000, 4500, 0.25, 0.4)
	k.Skew = 0.6
	k.SatFrac = 0 // compute-bound: full occupancy helps
	k.Iters = 2
	k.Chunk = 6
	alone := isolated(dev, k)

	opt := sim.RunAccelOS(dev, cloneExecs([]*sim.KernelExec{k}), false, accelos.PlanShares)
	naive := sim.RunAccelOS(dev, cloneExecs([]*sim.KernelExec{k}), true, accelos.PlanShares)

	optSpeed := float64(alone) / float64(opt.Timings[0].Duration())
	naiveSpeed := float64(alone) / float64(naive.Timings[0].Duration())
	if optSpeed < naiveSpeed {
		t.Errorf("optimized %.3f should be at least naive %.3f", optSpeed, naiveSpeed)
	}
	if optSpeed < 0.95 || optSpeed > 1.3 {
		t.Errorf("optimized single-kernel speedup %.3f outside plausible band", optSpeed)
	}
	if naiveSpeed < 0.85 {
		t.Errorf("naive single-kernel speedup %.3f implausibly low", naiveSpeed)
	}
	t.Logf("single-kernel: naive=%.3f optimized=%.3f", naiveSpeed, optSpeed)
}

func TestAdaptiveSharesWhenAppsFinish(t *testing.T) {
	// One app runs many iterations; the other finishes quickly. After
	// the second app leaves, the first should be re-planned with a
	// larger share, so its slowdown stays well under a static half.
	dev := device.NVIDIAK20m()
	long := synth(0, 128, 400, 20000, 0.2, 0.4)
	long.SatFrac = 0
	long.Iters = 12
	short := synth(1, 128, 400, 20000, 0.2, 0.4)
	short.SatFrac = 0
	short.Iters = 1

	r := sim.RunAccelOS(dev, cloneExecs([]*sim.KernelExec{long, short}), false, accelos.PlanShares)
	is := metrics.IndividualSlowdown(r.ByID(0).Duration(), isolated(dev, long))
	if is > 1.6 {
		t.Errorf("long app slowdown %.2f suggests shares are not re-planned after peer exit", is)
	}
	t.Logf("long-app slowdown with early peer exit: %.2f", is)
}

func TestResourceSharingAlgorithm(t *testing.T) {
	dev := device.NVIDIAK20m()
	execs := []*sim.KernelExec{
		synth(0, 256, 1000, 10000, 0.1, 0.3),
		synth(1, 64, 1000, 10000, 0.1, 0.3),
		synth(2, 128, 1000, 10000, 0.1, 0.3),
		synth(3, 128, 1000, 10000, 0.1, 0.3),
	}
	launches := accelos.PlanShares(dev, execs, false)
	var threads, local, regs int64
	for _, l := range launches {
		if l.PhysWGs < 1 {
			t.Fatalf("kernel %d received no work-groups", l.K.ID)
		}
		if l.PhysWGs > l.K.NumWGs {
			t.Errorf("kernel %d: %d physical WGs exceeds its %d virtual groups", l.K.ID, l.PhysWGs, l.K.NumWGs)
		}
		threads += l.PhysWGs * dev.RoundWarp(l.FP.Threads)
		local += l.PhysWGs * l.FP.LocalBytes
		regs += l.PhysWGs * l.FP.Regs
	}
	if threads > dev.TotalThreads() {
		t.Errorf("thread allocation %d exceeds device capacity %d", threads, dev.TotalThreads())
	}
	if local > dev.TotalLocalMem() {
		t.Errorf("local memory allocation %d exceeds device capacity %d", local, dev.TotalLocalMem())
	}
	if regs > dev.TotalRegs() {
		t.Errorf("register allocation %d exceeds device capacity %d", regs, dev.TotalRegs())
	}
	// Equal-share objective: thread allocations should be close.
	var mn, mx int64 = 1 << 62, 0
	for _, l := range launches {
		th := l.PhysWGs * dev.RoundWarp(l.FP.Threads)
		if th < mn {
			mn = th
		}
		if th > mx {
			mx = th
		}
	}
	if float64(mx-mn) > 0.25*float64(mx) {
		t.Errorf("thread shares spread too wide: min %d max %d", mn, mx)
	}
}

func TestPlanSharesNaiveChunk(t *testing.T) {
	dev := device.AMDR9295X2()
	// A large grid keeps the adaptive chunk un-capped.
	k := synth(0, 128, 200000, 5000, 0.1, 0.2)
	k.Chunk = 8
	if l := accelos.PlanSingle(dev, k, true); l.Chunk != 1 {
		t.Errorf("naive chunk = %d, want 1", l.Chunk)
	}
	if l := accelos.PlanSingle(dev, k, false); l.Chunk != 8 {
		t.Errorf("optimized chunk = %d, want 8", l.Chunk)
	}
	// A small grid caps the chunk so every worker still dequeues
	// repeatedly (tail granularity).
	small := synth(1, 128, 100, 5000, 0.1, 0.2)
	small.Chunk = 8
	if l := accelos.PlanSingle(dev, small, false); l.Chunk != 1 {
		t.Errorf("capped chunk = %d, want 1 for a 100-group grid", l.Chunk)
	}
}
