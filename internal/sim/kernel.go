// Package sim is a discrete-event simulator of work-group scheduling on
// an accelerator. It models the three execution regimes the paper
// evaluates:
//
//   - the standard hardware scheduler (per-CU round-robin FIFO queues with
//     head-of-line blocking, which serializes concurrent kernels),
//   - accelOS software scheduling (a reduced set of physical work-groups
//     per kernel, each dynamically dequeuing chunks of virtual groups),
//   - Elastic Kernels (static merged co-scheduling with fixed
//     virtual-group ranges per physical work-group).
//
// Time is in device cycles. The simulator is deterministic: per-group
// cost variation comes from a hash, not a random source.
package sim

import "repro/internal/device"

// KernelExec describes one kernel execution request: its NDRange, its
// resource footprint, and its calibrated cost model.
type KernelExec struct {
	// ID distinguishes requests within a workload (used for cost
	// hashing and result reporting).
	ID int
	// Name is the kernel name (diagnostics only).
	Name string

	// WGSize is work-items per work-group.
	WGSize int64
	// NumWGs is the original number of work-groups (= virtual groups
	// under accelOS).
	NumWGs int64
	// LocalBytes is per-work-group local memory of the original kernel.
	LocalBytes int64
	// RegsPerThread is the per-work-item register usage.
	RegsPerThread int64

	// BaseWGCost is the mean execution cost of one work-group in
	// cycles.
	BaseWGCost int64
	// Imbalance in [0,1] scales deterministic per-group cost variation.
	Imbalance float64
	// Skew in [-1,1] adds a systematic cost gradient across the
	// NDRange (positive: early work-groups are more expensive), the
	// pattern of triangular loops and sorted inputs. Static dispatch
	// turns skew into inter-CU load imbalance; dynamic dequeue absorbs
	// it.
	Skew float64
	// MemIntensity in [0,1] is the kernel's memory-bandwidth demand,
	// which drives co-residency contention.
	MemIntensity float64
	// SatFrac is the kernel's scalability roof as a fraction of its
	// occupancy limit on the device: beyond SatFrac·MaxConcurrentWGs
	// concurrently executing work-groups, added work-groups stop
	// improving throughput (the memory-bandwidth ceiling). Zero means
	// the kernel scales to full occupancy.
	SatFrac float64

	// Iters is the number of times the application launches this
	// kernel back to back (Parboil applications iterate their kernels);
	// zero means one launch.
	Iters int64

	// Chunk is the adaptive scheduling chunk (virtual groups per
	// dequeue) of the optimized transformed kernel; the naive variant
	// uses 1.
	Chunk int64
	// TransRegsPerThread is register usage after transformation
	// (§6.5: +0..1 after inlining).
	TransRegsPerThread int64
	// TransLocalBytes is per-work-group local memory after
	// transformation (original + the SD block).
	TransLocalBytes int64
}

// hash01 returns a deterministic value in [0,1) from the kernel ID and
// virtual group index (splitmix64-style mixing).
func hash01(kid int, vg int64) float64 {
	x := uint64(kid+1)*0x9E3779B97F4A7C15 ^ uint64(vg+1)*0xBF58476D1CE4E5B9
	x ^= x >> 31
	x *= 0x94D049BB133111EB
	x ^= x >> 29
	return float64(x>>11) / float64(1<<53)
}

// VGCost returns the cost in cycles of virtual group vg:
// base · (1 + imbalance·h) · (1 + skew·(0.5 - pos)) with h a
// deterministic hash in [-1, 1] and pos the group's relative position in
// the NDRange.
func (k *KernelExec) VGCost(vg int64) int64 {
	h := 2*hash01(k.ID, vg) - 1
	c := float64(k.BaseWGCost) * (1 + k.Imbalance*h)
	if k.Skew != 0 && k.NumWGs > 1 {
		pos := float64(vg) / float64(k.NumWGs-1)
		c *= 1 + k.Skew*(0.5-pos)
	}
	if c < 1 {
		c = 1
	}
	return int64(c)
}

// SatRoof returns the kernel's scalability roof in concurrent
// work-groups on the given device (0 = unlimited).
func (k *KernelExec) SatRoof(dev *device.Platform) int64 {
	if k.SatFrac <= 0 {
		return 0
	}
	roof := int64(k.SatFrac * float64(dev.MaxConcurrentWGs(k.Footprint())))
	if roof < 1 {
		roof = 1
	}
	return roof
}

// SelfSaturation returns the cost multiplier when n work-groups of this
// kernel execute concurrently against the given roof: past the roof,
// per-group progress slows proportionally (aggregate throughput stays at
// the roof).
func SelfSaturation(n, roof int64) float64 {
	if roof <= 0 || n <= roof {
		return 1
	}
	return float64(n) / float64(roof)
}

// TotalWork returns the exact summed cost of all virtual groups.
func (k *KernelExec) TotalWork() int64 {
	var sum int64
	for vg := int64(0); vg < k.NumWGs; vg++ {
		sum += k.VGCost(vg)
	}
	return sum
}

// Footprint returns the per-work-group resource demand of the original
// kernel.
func (k *KernelExec) Footprint() device.Footprint {
	return device.Footprint{
		Threads:    k.WGSize,
		LocalBytes: k.LocalBytes,
		Regs:       k.RegsPerThread * k.WGSize,
	}
}

// TransFootprint returns the footprint of the transformed kernel.
func (k *KernelExec) TransFootprint() device.Footprint {
	regs := k.TransRegsPerThread
	if regs == 0 {
		regs = k.RegsPerThread + 1
	}
	local := k.TransLocalBytes
	if local == 0 {
		local = k.LocalBytes + 32
	}
	return device.Footprint{
		Threads:    k.WGSize,
		LocalBytes: local,
		Regs:       regs * k.WGSize,
	}
}

// KernelTiming is the simulated lifetime of one kernel execution.
type KernelTiming struct {
	ID     int
	Name   string
	Submit int64 // cycles: when the launch was issued
	Start  int64 // first work dispatched
	End    int64 // last work completed
}

// Duration returns End-Submit: the turnaround the application observes.
func (t KernelTiming) Duration() int64 { return t.End - t.Submit }

// NumIters returns the launch count (at least 1).
func (k *KernelExec) NumIters() int64 {
	if k.Iters < 1 {
		return 1
	}
	return k.Iters
}

// Result is the outcome of simulating one workload under one scheme.
type Result struct {
	Timings  []KernelTiming
	Makespan int64 // completion time of the last kernel
	// TimeAll and TimeAny are device co-execution integrals: cycles
	// during which all remaining applications (resp. at least one) had
	// work resident.
	TimeAll int64
	TimeAny int64
}

// Overlap is the paper's kernel execution overlap O = T(c)/T(t).
func (r *Result) Overlap() float64 {
	if r.TimeAny <= 0 {
		return 0
	}
	return float64(r.TimeAll) / float64(r.TimeAny)
}

// ByID returns the timing for a kernel ID.
func (r *Result) ByID(id int) *KernelTiming {
	for i := range r.Timings {
		if r.Timings[i].ID == id {
			return &r.Timings[i]
		}
	}
	return nil
}

// EstimateIsolatedCycles analytically estimates one isolated launch's
// duration: total work divided by the kernel's effective parallelism
// (occupancy limit, scalability roof and grid size, whichever binds),
// plus launch overhead.
func (k *KernelExec) EstimateIsolatedCycles(dev *device.Platform) int64 {
	par := dev.MaxConcurrentWGs(k.Footprint())
	if roof := k.SatRoof(dev); roof > 0 && roof < par {
		par = roof
	}
	if k.NumWGs < par {
		par = k.NumWGs
	}
	if par < 1 {
		par = 1
	}
	return k.TotalWork()/par + dev.LaunchOverhead
}

// EqualizeIters sets each request's iteration count so that isolated
// application durations are comparable: the longest single launch runs
// baseIters times and shorter kernels iterate proportionally more, the
// way benchmark applications of similar wall-clock length would behave.
func EqualizeIters(dev *device.Platform, execs []*KernelExec, baseIters int64) {
	if len(execs) == 0 {
		return
	}
	var maxEst int64 = 1
	ests := make([]int64, len(execs))
	for i, k := range execs {
		ests[i] = k.EstimateIsolatedCycles(dev)
		if ests[i] > maxEst {
			maxEst = ests[i]
		}
	}
	target := maxEst * baseIters
	for i, k := range execs {
		n := (target + ests[i]/2) / ests[i]
		if n < 1 {
			n = 1
		}
		if n > 256 {
			n = 256
		}
		k.Iters = n
	}
}
