package sim

import (
	"math"
	"sort"

	"repro/internal/device"
)

// This file is the cluster-level simulation driver: N simulated devices
// behind one scheduler. Where the single-device engines (accelos.go,
// elastic.go, baseline.go) model individual work-group placement in
// device cycles, the cluster driver models each device as a fluid
// processor whose per-kernel progress rate is set by the §3 share plan —
// the right granularity for placement, admission and migration studies,
// and cheap enough to sweep policies over large pools.

// ClusterExec is one tenant-tagged kernel execution request submitted to
// the cluster scheduler.
type ClusterExec struct {
	K *KernelExec
	// Tenant identifies the application (or customer) for aggregate
	// fair-share accounting across devices.
	Tenant string
	// Arrival is the submission time in cycles.
	Arrival int64
}

// DeviceLoad is a placement-time snapshot of one pool member, handed to
// placement policies.
type DeviceLoad struct {
	Dev   *device.Platform
	Index int
	// Resident counts admitted (currently executing) requests.
	Resident int
	// Queued counts requests waiting in the device's run queue.
	Queued int
	// PendingWork is the remaining work (cost units) of resident plus
	// queued requests.
	PendingWork int64
}

// WeightedPlanFunc plans per-kernel physical allocations under explicit
// sharing weights — the signature of accelos.PlanWeighted, declared here
// so the cluster layer below accelos can consume it without a cycle.
type WeightedPlanFunc func(dev *device.Platform, execs []*KernelExec, weights []float64, naive bool) []*Launch

// ClusterScheduler makes the two policy decisions RunCluster needs:
// where an arriving request goes, and how a device's resident requests
// share it. Implemented by package cluster.
type ClusterScheduler interface {
	// Place returns the pool index of the device to enqueue the request
	// on. Out-of-range returns are clamped to device 0.
	Place(e *ClusterExec, loads []DeviceLoad) int
	// Plan allocates physical work-groups for one device's resident
	// requests (index-aligned with active). global is the cluster-wide
	// resident set, so per-tenant aggregate shares — not per-device
	// shares — can be equalized.
	Plan(dev *device.Platform, active []*ClusterExec, global []*ClusterExec) []*Launch
}

// ClusterOptions tunes admission and rebalancing.
type ClusterOptions struct {
	// MaxResident is the per-device admission limit: at most this many
	// requests execute concurrently on one device, the rest wait in its
	// run queue (0 means the default of 4). Bounding the resident set
	// keeps per-kernel shares — and the §3 fairness guarantee — from
	// eroding under deep queues.
	MaxResident int
	// Rebalance enables work migration to drained devices: first whole
	// queued requests, then split virtual-group ranges of running ones
	// (the paper's elastic range splitting, Launch.Ranges).
	Rebalance bool
	// MinSplitVGs is the smallest remaining virtual-group range worth
	// splitting across devices (0 means the default of 64); a migrated
	// half-range must amortize its own launch overhead.
	MinSplitVGs int64
}

func (o ClusterOptions) withDefaults() ClusterOptions {
	if o.MaxResident <= 0 {
		o.MaxResident = 4
	}
	if o.MinSplitVGs <= 0 {
		o.MinSplitVGs = 64
	}
	return o
}

// SplitEvent records one virtual-group range migration.
type SplitEvent struct {
	KernelID int
	From, To int      // pool indices
	Range    [2]int64 // migrated virtual groups [lo, hi)
	At       int64    // cycles
}

// DeviceStats aggregates one pool member's activity.
type DeviceStats struct {
	Name string
	// Executions counts completed requests and migrated shards.
	Executions int
	// BusyCycles integrates time with at least one resident request.
	BusyCycles int64
	// StealsIn counts whole queued requests migrated to this device.
	StealsIn int
	// SplitsIn counts virtual-group ranges migrated to this device.
	SplitsIn int
}

// ClusterResult is the outcome of one cluster simulation.
type ClusterResult struct {
	// Timings is index-aligned with the submitted requests. End is when
	// the last shard of the request (after any range migration)
	// completed.
	Timings  []KernelTiming
	Makespan int64
	Devices  []DeviceStats
	// TenantWork integrates each tenant's allocated thread-cycles across
	// all devices during CONTENDED cycles — periods when at least two
	// tenants hold resident work anywhere in the cluster. Uncontended
	// time is excluded: a sole tenant trivially holds everything, so
	// counting it would let completion-time differences mask allocation
	// unfairness (integrated allocation to completion just equals work
	// done). Empty when the workload never contends.
	TenantWork map[string]float64
	Splits     []SplitEvent
	// Migrations counts queue steals plus range splits.
	Migrations int
}

// TenantShares normalizes TenantWork to fractions summing to 1.
func (r *ClusterResult) TenantShares() map[string]float64 {
	var total float64
	for _, w := range r.TenantWork {
		total += w
	}
	out := make(map[string]float64, len(r.TenantWork))
	if total <= 0 {
		return out
	}
	for t, w := range r.TenantWork {
		out[t] = w / total
	}
	return out
}

// shard is a contiguous virtual-group range of one request resident on
// (or queued for) one device. A request starts as a single full-range
// shard; rebalancing may split off the tail half of its remaining range.
type shard struct {
	ceIdx  int
	ce     *ClusterExec
	vg     [2]int64 // remaining virtual groups [lo, hi)
	work   float64  // remaining cost units (incl. admission overhead)
	rate   float64  // cost units per cycle under the current plan
	thread float64  // allocated thread slots under the current plan
}

func (s *shard) vgLeft() int64 { return s.vg[1] - s.vg[0] }

type clusterDev struct {
	dev      *device.Platform
	resident []*shard
	queue    []*shard
	stats    DeviceStats
}

func (d *clusterDev) pendingWork() int64 {
	var w float64
	for _, s := range d.resident {
		w += s.work
	}
	for _, s := range d.queue {
		w += s.work
	}
	return int64(w)
}

// RunCluster simulates K tenant-tagged kernel execution requests over a
// heterogeneous pool of devices. The scheduler places each arriving
// request on a device run queue; an admission controller bounds each
// device's resident set; resident requests progress at the rate their
// planned physical work-group share sustains (capped by the kernel's
// scalability roof and slowed by co-resident memory pressure, the same
// model the single-device engines use). When a device drains and
// rebalancing is on, queued requests — and, failing that, split
// virtual-group ranges of running ones — migrate to it.
func RunCluster(devs []*device.Platform, execs []*ClusterExec, sched ClusterScheduler, opt ClusterOptions) *ClusterResult {
	opt = opt.withDefaults()
	res := &ClusterResult{
		Timings:    make([]KernelTiming, len(execs)),
		Devices:    make([]DeviceStats, len(devs)),
		TenantWork: make(map[string]float64),
	}
	if len(devs) == 0 || len(execs) == 0 {
		return res
	}

	pool := make([]*clusterDev, len(devs))
	for i, d := range devs {
		pool[i] = &clusterDev{dev: d}
		pool[i].stats.Name = d.Name
	}

	// Per-request bookkeeping: total work, average per-VG cost for range
	// splitting, and the number of live shards.
	avgVG := make([]float64, len(execs))
	outstanding := make([]int, len(execs))
	for i, ce := range execs {
		k := ce.K
		res.Timings[i] = KernelTiming{ID: k.ID, Name: k.Name, Submit: ce.Arrival, Start: -1}
		avgVG[i] = float64(k.TotalWork()) / float64(k.NumWGs)
	}

	// Arrivals in time order, stable by submission index.
	order := make([]int, len(execs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return execs[order[a]].Arrival < execs[order[b]].Arrival
	})
	nextArrival := 0

	now := 0.0
	const eps = 1e-9

	loads := func() []DeviceLoad {
		out := make([]DeviceLoad, len(pool))
		for i, d := range pool {
			out[i] = DeviceLoad{
				Dev:         d.dev,
				Index:       i,
				Resident:    len(d.resident),
				Queued:      len(d.queue),
				PendingWork: d.pendingWork(),
			}
		}
		return out
	}

	globalActive := func() []*ClusterExec {
		var out []*ClusterExec
		for _, d := range pool {
			for _, s := range d.resident {
				out = append(out, s.ce)
			}
		}
		return out
	}

	// replan recomputes rates and thread allocations for one device from
	// the scheduler's share plan.
	replan := func(di int) {
		d := pool[di]
		if len(d.resident) == 0 {
			return
		}
		active := make([]*ClusterExec, len(d.resident))
		kes := make([]*KernelExec, len(d.resident))
		for i, s := range d.resident {
			active[i] = s.ce
			kes[i] = s.ce.K
		}
		launches := sched.Plan(d.dev, active, globalActive())
		// Memory pressure: co-resident demand past the device's bandwidth
		// slows every kernel proportionally (the engine.bandwidthDemand
		// model at shard granularity).
		var demand float64
		for i, s := range d.resident {
			n := int64(1)
			if i < len(launches) && launches[i] != nil {
				n = launches[i].PhysWGs
			}
			u := 1.0
			if roof := s.ce.K.SatRoof(d.dev); roof > 0 && n < roof {
				u = float64(n) / float64(roof)
			}
			demand += s.ce.K.MemIntensity * u
		}
		if demand < 1 {
			demand = 1
		}
		for i, s := range d.resident {
			k := s.ce.K
			var l *Launch
			if i < len(launches) {
				l = launches[i]
			}
			if l == nil {
				l = &Launch{K: k, PhysWGs: 1, Chunk: 1, FP: k.TransFootprint()}
			}
			// Record the fixed range this shard covers — the elastic-
			// kernel representation migrated ranges reuse.
			l.Ranges = [][2]int64{s.vg}
			n := l.PhysWGs
			eff := float64(n)
			if roof := k.SatRoof(d.dev); roof > 0 && eff > float64(roof) {
				eff = float64(roof)
			}
			if left := s.vgLeft(); eff > float64(left) {
				eff = float64(left)
			}
			// Scheduling-operation and ID-computation overhead shaves the
			// per-VG rate exactly as in the discrete engine.
			chunk := l.Chunk
			if chunk < 1 {
				chunk = 1
			}
			ovh := float64(d.dev.VGOverhead) + float64(d.dev.SchedOpCost)/float64(chunk)
			effFactor := avgVG[s.ceIdx] / (avgVG[s.ceIdx] + ovh)
			s.rate = eff * effFactor / demand
			if s.rate < eps {
				s.rate = eps
			}
			s.thread = float64(n * d.dev.RoundWarp(l.FP.Threads))
		}
	}

	admit := func(di int, s *shard) {
		d := pool[di]
		d.resident = append(d.resident, s)
		// The driver launch cost is paid as extra work at admission.
		s.work += float64(d.dev.LaunchOverhead)
		if res.Timings[s.ceIdx].Start < 0 {
			res.Timings[s.ceIdx].Start = int64(math.Round(now))
		}
	}

	// fill admits queued shards while the device has free slots.
	fill := func(di int) bool {
		d := pool[di]
		changed := false
		for len(d.queue) > 0 && len(d.resident) < opt.MaxResident {
			s := d.queue[0]
			d.queue = d.queue[1:]
			admit(di, s)
			changed = true
		}
		return changed
	}

	// rebalance feeds drained devices: steal the head of the longest run
	// queue, else split the largest remaining resident range in the
	// cluster.
	rebalance := func(di int) bool {
		d := pool[di]
		if len(d.resident) > 0 || len(d.queue) > 0 {
			return false
		}
		// Whole-request migration from the most backlogged queue.
		donor := -1
		for j, o := range pool {
			if j == di || len(o.queue) == 0 {
				continue
			}
			if donor < 0 || len(o.queue) > len(pool[donor].queue) {
				donor = j
			}
		}
		if donor >= 0 {
			s := pool[donor].queue[0]
			pool[donor].queue = pool[donor].queue[1:]
			admit(di, s)
			d.stats.StealsIn++
			res.Migrations++
			return true
		}
		// Range split: take the tail half of the largest remaining
		// resident range anywhere in the pool.
		var victim *shard
		vDev := -1
		for j, o := range pool {
			if j == di {
				continue
			}
			for _, s := range o.resident {
				if s.vgLeft() < 2*opt.MinSplitVGs {
					continue
				}
				if victim == nil || s.vgLeft() > victim.vgLeft() {
					victim, vDev = s, j
				}
			}
		}
		if victim == nil {
			return false
		}
		half := victim.vgLeft() / 2
		lo := victim.vg[1] - half
		moved := &shard{
			ceIdx: victim.ceIdx,
			ce:    victim.ce,
			vg:    [2]int64{lo, victim.vg[1]},
			work:  victim.work * float64(half) / float64(victim.vgLeft()),
		}
		victim.work -= moved.work
		victim.vg[1] = lo
		outstanding[victim.ceIdx]++
		admit(di, moved)
		d.stats.SplitsIn++
		res.Migrations++
		res.Splits = append(res.Splits, SplitEvent{
			KernelID: victim.ce.K.ID, From: vDev, To: di,
			Range: moved.vg, At: int64(math.Round(now)),
		})
		return true
	}

	// place routes one arriving request; reports the chosen device and
	// whether it was admitted immediately (shares must then replan).
	place := func(idx int) (int, bool) {
		ce := execs[idx]
		k := ce.K
		s := &shard{
			ceIdx: idx,
			ce:    ce,
			vg:    [2]int64{0, k.NumWGs},
			work:  float64(k.TotalWork()) * float64(k.NumIters()),
		}
		outstanding[idx] = 1
		di := sched.Place(ce, loads())
		if di < 0 || di >= len(pool) {
			di = 0
		}
		pool[di].queue = append(pool[di].queue, s)
		return di, fill(di)
	}

	for {
		// Next event: the earliest arrival or shard completion.
		next := math.Inf(1)
		if nextArrival < len(order) {
			next = float64(execs[order[nextArrival]].Arrival)
		}
		for _, d := range pool {
			for _, s := range d.resident {
				if done := now + s.work/s.rate; done < next {
					next = done
				}
			}
		}
		if math.IsInf(next, 1) {
			break
		}
		if next < now {
			next = now
		}

		// Advance the fluid state and the accounting ledgers.
		dt := next - now
		if dt > 0 {
			tenants := make(map[string]bool)
			for _, d := range pool {
				for _, s := range d.resident {
					tenants[s.ce.Tenant] = true
				}
			}
			contended := len(tenants) >= 2
			for _, d := range pool {
				if len(d.resident) == 0 {
					continue
				}
				d.stats.BusyCycles += int64(math.Round(dt))
				for _, s := range d.resident {
					s.work -= s.rate * dt
					if contended {
						res.TenantWork[s.ce.Tenant] += s.thread * dt
					}
				}
			}
		}
		now = next

		changed := false
		// Arrivals due now.
		for nextArrival < len(order) && float64(execs[order[nextArrival]].Arrival) <= now+eps {
			if _, admitted := place(order[nextArrival]); admitted {
				changed = true
			}
			nextArrival++
		}
		// Completions. A shard also completes when its residual work can
		// no longer advance the clock (work/rate below the float ulp of
		// now) — without this, accumulated cancellation error in `work`
		// stalls the simulation on a shard that never quite reaches zero.
		slack := now*1e-12 + eps
		for _, d := range pool {
			kept := d.resident[:0]
			for _, s := range d.resident {
				if s.work > s.rate*slack && s.work > eps {
					kept = append(kept, s)
					continue
				}
				changed = true
				d.stats.Executions++
				outstanding[s.ceIdx]--
				if outstanding[s.ceIdx] == 0 {
					end := int64(math.Round(now))
					res.Timings[s.ceIdx].End = end
					if end > res.Makespan {
						res.Makespan = end
					}
				}
			}
			d.resident = kept
		}
		// Refill freed slots, then feed drained devices.
		for di := range pool {
			if fill(di) {
				changed = true
			}
		}
		if opt.Rebalance {
			for di := range pool {
				if rebalance(di) {
					changed = true
				}
			}
		}
		// Share plans shift whenever any resident set changed: freed (or
		// newly taken) capacity redistributes cluster-wide because the
		// per-tenant resident counts changed, so replan every occupied
		// device, not just the ones touched.
		if changed {
			for di := range pool {
				replan(di)
			}
		}
	}

	for i := range pool {
		res.Devices[i] = pool[i].stats
	}
	return res
}
