package accelos

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/interp"
	"repro/internal/metrics"
	"repro/internal/opencl"
	"repro/internal/telemetry"
)

// TestRuntimeTelemetryEndToEnd drives a kernel + transfers through a
// fully instrumented runtime and checks every telemetry surface saw it:
// the kernel lifecycle span tree, slice spans on a named machine, DMA
// metrics under the tenant's queue label, the live scorecard, the VM
// execution profile, and a loadable Chrome trace export.
func TestRuntimeTelemetryEndToEnd(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	tr := telemetry.New(0)
	reg := telemetry.NewRegistry()
	score := metrics.NewLiveScorecard()
	rt.SetTelemetry(tr, reg, score)
	prof := interp.NewProfiler(interp.ProfileOptions{PerOpcode: true, SampleEvery: 1})
	rt.SetProfiler(prof)

	app := rt.Connect("tenant-a")
	defer app.Close()
	const n = 64 * 32
	k, buf := setupIntKernel(t, app, peerSrc, "peer", n)
	defer buf.Release()
	if err := buf.Write(0, make([]byte, n*4)); err != nil {
		t.Fatal(err)
	}
	nd := opencl.NDRange{Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{32, 1, 1}}
	if err := app.EnqueueKernel(k, nd); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, n*4)
	if err := buf.Read(0, out); err != nil {
		t.Fatal(err)
	}
	app.Finish()

	spans := tr.Spans()
	var root *telemetry.Span
	byName := map[string]int{}
	for i := range spans {
		byName[spans[i].Name]++
		if spans[i].Cat == "kernel" && spans[i].Name == "peer" {
			root = &spans[i]
		}
	}
	if root == nil {
		t.Fatalf("no kernel root span; spans: %v", byName)
	}
	if root.Proc != "tenant-a" {
		t.Errorf("root span proc = %q, want tenant-a", root.Proc)
	}
	for _, child := range []string{"wait-list", "schedule", "execute"} {
		found := false
		for _, s := range spans {
			if s.Name == child && s.Parent == root.ID {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %q child of the kernel root span", child)
		}
	}
	sliceSpans := 0
	for _, s := range spans {
		if s.Cat == "slice" {
			sliceSpans++
			if s.Parent != root.ID {
				t.Errorf("slice span parented to %d, want root %d", s.Parent, root.ID)
			}
			if !strings.HasPrefix(s.Thread, "mach-") {
				t.Errorf("slice span thread = %q, want a mach-N machine name", s.Thread)
			}
		}
	}
	if sliceSpans == 0 {
		t.Error("no slice spans recorded")
	}
	// The app's write and read ran on its labeled transfer queue.
	if byName["write"] == 0 || byName["read"] == 0 {
		t.Errorf("missing transfer command spans: %v", byName)
	}

	var text bytes.Buffer
	if err := reg.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`kernels_total{dev="0",status="ok",tenant="tenant-a"} 1`,
		`dma_bytes_total{queue="tenant-a"}`,
		`enqueue_latency_ns`,
		`slice_ns`,
		`replans_total`,
		`warp_occupancy`,
		`divergence_fallbacks_total`,
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("metrics snapshot missing %q:\n%s", want, text.String())
		}
	}

	sc := score.Compute()
	if len(sc.Tenants) != 1 || sc.Tenants[0].Tenant != "tenant-a" || sc.Tenants[0].Kernels != 1 {
		t.Errorf("scorecard = %+v, want one kernel for tenant-a", sc)
	}
	if sc.Tenants[0].Slowdown < 1 {
		t.Errorf("individual slowdown %f < 1", sc.Tenants[0].Slowdown)
	}

	snaps := prof.Snapshot()
	if len(snaps) == 0 || snaps[0].Instrs == 0 {
		t.Fatalf("profiler saw nothing: %+v", snaps)
	}

	var jsonBuf bytes.Buffer
	if err := tr.WriteChromeTrace(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(spans) {
		t.Errorf("Chrome trace has %d events for %d spans", len(doc.TraceEvents), len(spans))
	}
}

// TestRuntimeAdmissionRejection checks the bounded cluster runtime's
// backpressure: with one resident slot and a one-deep run queue, a
// third concurrent execution is refused — its event fails with
// ErrAdmissionRejected, the rejection is counted per tenant, and the
// accepted executions still complete.
func TestRuntimeAdmissionRejection(t *testing.T) {
	rt := NewBoundedClusterRuntime(opencl.GetPlatforms()[:1], cluster.LeastLoaded(), 1)
	defer rt.Shutdown()
	rt.Pool().SetMaxQueued(1)
	rt.SetSliceRounds(1)
	reg := telemetry.NewRegistry()
	rt.SetTelemetry(nil, reg, nil)

	const longN, shortN = 256 * 32, 32 * 32
	app := rt.Connect("greedy")
	defer app.Close()
	kL, bufL := setupIntKernel(t, app, churnSrc, "churn", longN)
	defer bufL.Release()
	kQ, bufQ := setupIntKernel(t, app, peerSrc, "peer", shortN)
	defer bufQ.Release()

	ndL := opencl.NDRange{Dims: 1, Global: [3]int64{longN, 1, 1}, Local: [3]int64{32, 1, 1}}
	ndS := opencl.NDRange{Dims: 1, Global: [3]int64{shortN, 1, 1}, Local: [3]int64{32, 1, 1}}
	evL, err := app.EnqueueKernelAsync(kL, ndL)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the long kernel to hold the device slot, so the next two
	// submissions hit the queue and then the bound deterministically.
	deadline := time.Now().Add(5 * time.Second)
	for rt.Stats().KernelsLaunched == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first kernel never launched")
		}
		time.Sleep(time.Millisecond)
	}
	evQ, err := app.EnqueueKernelAsync(kQ, ndS)
	if err != nil {
		t.Fatal(err)
	}
	for rt.Stats().QueuedAdmissions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second kernel never queued")
		}
		time.Sleep(time.Millisecond)
	}
	evR, err := app.EnqueueKernelAsync(kQ, ndS)
	if err != nil {
		t.Fatal(err)
	}
	if werr := evR.Wait(); !errors.Is(werr, ErrAdmissionRejected) {
		t.Fatalf("rejected execution's event error = %v, want ErrAdmissionRejected", werr)
	}
	if err := evL.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := evQ.Wait(); err != nil {
		t.Fatal(err)
	}

	st := rt.Stats()
	if st.Rejected != 1 {
		t.Errorf("Stats.Rejected = %d, want 1", st.Rejected)
	}
	if st.KernelsLaunched != 2 {
		t.Errorf("KernelsLaunched = %d, want 2", st.KernelsLaunched)
	}
	if got := reg.Counter("admission_rejections_total", telemetry.L("tenant", "greedy")).Value(); got != 1 {
		t.Errorf("admission_rejections_total{tenant=greedy} = %d, want 1", got)
	}
	var text bytes.Buffer
	if err := reg.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), `kernels_total{dev="0",status="rejected",tenant="greedy"} 1`) {
		t.Errorf("metrics snapshot missing rejected kernel count:\n%s", text.String())
	}
}
