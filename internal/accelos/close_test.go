package accelos

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/opencl"
)

// TestAppCloseConcurrentInflight is the -race regression test for the
// track/Close race: hammer an app with concurrent enqueues from several
// goroutines while Close tears it down mid-flight. Every failure must
// be one of the typed sentinels (ErrAppClosed before registration,
// ErrBufferReleased after Close yanked the buffers), never a panic, a
// leaked registration, or a stuck Close.
func TestAppCloseConcurrentInflight(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	app := rt.Connect("churny")

	const n = 64 * 32
	// One buffer+kernel per goroutine: the launches themselves may
	// overlap freely without the workload racing on shared bytes — the
	// race under test is track/Close, not buffer content.
	const workers = 4
	kerns := make([]*KernelHandle, workers)
	bufs := make([]*BufferHandle, workers)
	for g := 0; g < workers; g++ {
		kerns[g], bufs[g] = setupIntKernel(t, app, churnSrc, "churn", n)
	}

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		k, buf := kerns[g], bufs[g]
		wg.Add(1)
		go func() {
			defer wg.Done()
			data := make([]byte, 4*n)
			for {
				wev, err := buf.WriteAsync(0, data)
				if err == nil {
					var kev *opencl.Event
					kev, err = app.EnqueueKernelAsync(k, opencl.NDRange{
						Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{32, 1, 1},
					}, wev)
					if err == nil {
						_ = kev.Wait()
						continue
					}
				}
				if !errors.Is(err, ErrAppClosed) && !errors.Is(err, opencl.ErrBufferReleased) {
					t.Errorf("enqueue during close: unexpected error %v", err)
				}
				return
			}
		}()
	}

	time.Sleep(20 * time.Millisecond) // let the enqueue storm get going
	app.Close()
	wg.Wait()
	app.Finish() // valid after Close: drains the cancelled tail

	deadline := time.Now().Add(5 * time.Second)
	for rt.Memory().Used() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("memory accounting not returned after Close: used=%d", rt.Memory().Used())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAppClosedTypedErrors checks satellite 2: every App entry point
// reports a closed app with the comparable ErrAppClosed sentinel (the
// wire layer maps it to a lossless error code), and a second Close is a
// no-op.
func TestAppClosedTypedErrors(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	app := rt.Connect("shortlived")

	const n = 64
	k, buf := setupIntKernel(t, app, peerSrc, "peer", n)
	app.Close()
	app.Close() // idempotent

	if err := app.Query(func() error { return nil }); !errors.Is(err, ErrAppClosed) {
		t.Errorf("Query after Close = %v, want ErrAppClosed", err)
	}
	if _, err := app.CreateProgram(peerSrc); !errors.Is(err, ErrAppClosed) {
		t.Errorf("CreateProgram after Close = %v, want ErrAppClosed", err)
	}
	if _, err := app.CreateBuffer(64); !errors.Is(err, ErrAppClosed) {
		t.Errorf("CreateBuffer after Close = %v, want ErrAppClosed", err)
	}
	if _, err := app.NewControlledEvent(); !errors.Is(err, ErrAppClosed) {
		t.Errorf("NewControlledEvent after Close = %v, want ErrAppClosed", err)
	}
	if _, err := app.EnqueueKernelAsync(k, opencl.ND1(n, 32)); !errors.Is(err, ErrAppClosed) {
		t.Errorf("EnqueueKernelAsync after Close = %v, want ErrAppClosed", err)
	}
	if _, err := buf.WriteAsync(0, make([]byte, 4)); !errors.Is(err, ErrAppClosed) {
		t.Errorf("WriteAsync after Close = %v, want ErrAppClosed", err)
	}
	if _, err := buf.ReadAsync(0, make([]byte, 4)); !errors.Is(err, ErrAppClosed) {
		t.Errorf("ReadAsync after Close = %v, want ErrAppClosed", err)
	}
	if got := rt.Memory().Used(); got != 0 {
		t.Fatalf("memory accounting after Close = %d, want 0", got)
	}
}

// TestAppCloseReleasesBuffers: Close must release what the app still
// holds (a disconnecting daemon client's buffers) while leaving
// explicitly released handles alone.
func TestAppCloseReleasesBuffers(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	app := rt.Connect("holder")
	a, err := app.CreateBuffer(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.CreateBuffer(1 << 12); err != nil {
		t.Fatal(err)
	}
	a.Release()
	if got := rt.Memory().Used(); got != 1<<12 {
		t.Fatalf("used after explicit release = %d, want %d", got, 1<<12)
	}
	app.Close()
	if got := rt.Memory().Used(); got != 0 {
		t.Fatalf("used after Close = %d, want 0", got)
	}
}
