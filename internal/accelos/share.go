// Package accelos implements the host runtime of the paper: the
// resource-sharing algorithm (§3), the Kernel Scheduler, the Application
// Monitor FSM, the ProxyCL interposition layer and device memory
// management (§5). The JIT half of accelOS lives in internal/accelpass.
package accelos

import (
	"repro/internal/device"
	"repro/internal/sim"
)

const inf = int64(1) << 62

// PlanShares runs the paper's resource-sharing algorithm (§3) for K
// concurrent kernel execution requests. For each kernel i with work-group
// size w_i, local memory m_i and register demand r_i it computes
//
//	x_i = T/(K·w_i), y_i = L/(K·m_i), z_i = R/(K·r_i)
//
// takes min(x_i, y_i, z_i) physical work-groups, then greedily grows the
// allocations round-robin until a device resource saturates (the
// Diophantine solutions are conservative). Allocations are additionally
// capped by the kernel's own virtual group count and by its occupancy
// limit — extra physical groups past either cap could never run or would
// find the queue empty.
//
// naive selects the untuned variant (one virtual group per scheduling
// operation); the optimized variant uses the adaptive chunk recorded in
// each KernelExec.
func PlanShares(dev *device.Platform, execs []*sim.KernelExec, naive bool) []*sim.Launch {
	k := int64(len(execs))
	if k == 0 {
		// No requests: nothing to plan. Returning before any device
		// access keeps PlanShares(nil, nil, naive) safe — callers probe
		// an empty schedule without holding a device.
		return nil
	}
	launches := make([]*sim.Launch, len(execs))
	caps := make([]int64, len(execs))
	fps := make([]device.Footprint, len(execs))

	for i, ke := range execs {
		fp := ke.TransFootprint()
		fps[i] = fp
		w := dev.RoundWarp(fp.Threads)

		x := dev.TotalThreads() / (k * w)
		y := inf
		if fp.LocalBytes > 0 {
			y = dev.TotalLocalMem() / (k * fp.LocalBytes)
		}
		z := inf
		if fp.Regs > 0 {
			z = dev.TotalRegs() / (k * fp.Regs)
		}
		n := min3(x, y, z)
		if n < 1 {
			n = 1
		}
		caps[i] = ke.NumWGs
		if occ := dev.MaxConcurrentWGs(fp); occ < caps[i] {
			caps[i] = occ
		}
		if caps[i] < 1 {
			caps[i] = 1
		}
		if n > caps[i] {
			n = caps[i]
		}
		chunk := ke.Chunk
		if naive || chunk < 1 {
			chunk = 1
		}
		// Keep several dequeues per worker so chunk-granularity tails
		// stay small: a chunk near the per-worker share would serialize
		// small grids.
		if cap := ke.NumWGs / (n * 8); chunk > cap {
			chunk = cap
			if chunk < 1 {
				chunk = 1
			}
		}
		launches[i] = &sim.Launch{K: ke, PhysWGs: n, Chunk: chunk, FP: fp}
	}

	// Greedy growth until saturation.
	fits := func() bool {
		var th, lm, rg int64
		for i, l := range launches {
			th += l.PhysWGs * dev.RoundWarp(fps[i].Threads)
			lm += l.PhysWGs * fps[i].LocalBytes
			rg += l.PhysWGs * fps[i].Regs
		}
		return th <= dev.TotalThreads() && lm <= dev.TotalLocalMem() && rg <= dev.TotalRegs()
	}
	// Grow the kernel with the smallest thread share first, keeping the
	// equal-share objective (min_i min_j |x_i·w_i − x_j·w_j|) while
	// filling leftover capacity.
	for {
		best := -1
		var bestThreads int64 = 1 << 62
		for i, l := range launches {
			if l.PhysWGs >= caps[i] {
				continue
			}
			th := l.PhysWGs * dev.RoundWarp(fps[i].Threads)
			if th < bestThreads {
				best, bestThreads = i, th
			}
		}
		if best < 0 {
			break
		}
		launches[best].PhysWGs++
		if !fits() {
			launches[best].PhysWGs--
			caps[best] = launches[best].PhysWGs // saturated: stop growing it
			continue
		}
	}
	return launches
}

func min3(a, b, c int64) int64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// PlanSingle plans an isolated kernel execution under accelOS (used for
// the overhead study of §8.5): with K=1 the allocation is the occupancy
// limit, so the transformed kernel spans the whole device.
func PlanSingle(dev *device.Platform, ke *sim.KernelExec, naive bool) *sim.Launch {
	return PlanShares(dev, []*sim.KernelExec{ke}, naive)[0]
}

// PlanWeighted generalizes PlanShares to non-equal sharing ratios
// (§2.2 of the paper: "this can easily be achieved by changing the
// sharing ratio", e.g. favouring a longer-running or more important
// application). weights[i] is kernel i's share of the device; the
// resource constraints become x_i = (w_i/Σw)·T/w_i etc.
func PlanWeighted(dev *device.Platform, execs []*sim.KernelExec, weights []float64, naive bool) []*sim.Launch {
	if len(weights) != len(execs) {
		panic("accelos: PlanWeighted needs one weight per kernel")
	}
	if len(execs) == 0 {
		return nil // nil-device safe, like PlanShares
	}
	var sum float64
	for _, w := range weights {
		if w <= 0 {
			panic("accelos: sharing weights must be positive")
		}
		sum += w
	}
	launches := make([]*sim.Launch, len(execs))
	caps := make([]int64, len(execs))
	fps := make([]device.Footprint, len(execs))
	for i, ke := range execs {
		fp := ke.TransFootprint()
		fps[i] = fp
		frac := weights[i] / sum
		w := dev.RoundWarp(fp.Threads)
		x := int64(frac * float64(dev.TotalThreads()) / float64(w))
		y := inf
		if fp.LocalBytes > 0 {
			y = int64(frac * float64(dev.TotalLocalMem()) / float64(fp.LocalBytes))
		}
		z := inf
		if fp.Regs > 0 {
			z = int64(frac * float64(dev.TotalRegs()) / float64(fp.Regs))
		}
		n := min3(x, y, z)
		if n < 1 {
			n = 1
		}
		caps[i] = ke.NumWGs
		if occ := dev.MaxConcurrentWGs(fp); occ < caps[i] {
			caps[i] = occ
		}
		if caps[i] < 1 {
			caps[i] = 1
		}
		if n > caps[i] {
			n = caps[i]
		}
		chunk := ke.Chunk
		if naive || chunk < 1 {
			chunk = 1
		}
		if cap := ke.NumWGs / (n * 8); chunk > cap {
			chunk = cap
			if chunk < 1 {
				chunk = 1
			}
		}
		launches[i] = &sim.Launch{K: ke, PhysWGs: n, Chunk: chunk, FP: fp}
	}
	// Greedy growth, preferring the kernel furthest below its weighted
	// thread share.
	fits := func() bool {
		var th, lm, rg int64
		for i, l := range launches {
			th += l.PhysWGs * dev.RoundWarp(fps[i].Threads)
			lm += l.PhysWGs * fps[i].LocalBytes
			rg += l.PhysWGs * fps[i].Regs
		}
		return th <= dev.TotalThreads() && lm <= dev.TotalLocalMem() && rg <= dev.TotalRegs()
	}
	for {
		best := -1
		bestGap := 0.0
		for i, l := range launches {
			if l.PhysWGs >= caps[i] {
				continue
			}
			want := weights[i] / sum * float64(dev.TotalThreads())
			got := float64(l.PhysWGs * dev.RoundWarp(fps[i].Threads))
			gap := want - got
			if best < 0 || gap > bestGap {
				best, bestGap = i, gap
			}
		}
		if best < 0 {
			break
		}
		launches[best].PhysWGs++
		if !fits() {
			launches[best].PhysWGs--
			caps[best] = launches[best].PhysWGs
		}
	}
	return launches
}

// PlanTenantShares extends PlanShares with per-tenant weights on one
// device: kernels are grouped by tenant, the device is divided between
// tenants in proportion to weights (absent tenants weigh 1), and each
// tenant's slice is split equally among its kernels. tenants[i] names
// kernel i's tenant. This is the per-device building block of the
// cluster layer's aggregate fair sharing (internal/cluster equalizes
// the same quantity across a pool).
func PlanTenantShares(dev *device.Platform, execs []*sim.KernelExec, tenants []string, weights map[string]float64, naive bool) []*sim.Launch {
	if len(tenants) != len(execs) {
		panic("accelos: PlanTenantShares needs one tenant per kernel")
	}
	if len(execs) == 0 {
		return nil
	}
	counts := make(map[string]int, len(tenants))
	for _, t := range tenants {
		counts[t]++
	}
	per := make([]float64, len(execs))
	for i, t := range tenants {
		w := 1.0
		if v, ok := weights[t]; ok {
			if v <= 0 {
				panic("accelos: tenant weights must be positive")
			}
			w = v
		}
		per[i] = w / float64(counts[t])
	}
	return PlanWeighted(dev, execs, per, naive)
}
