package accelos

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/opencl"
)

const vaddSrc = `
kernel void vadd(global const float* a, global const float* b, global float* c, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}
`

func float32ToBits(v float32) uint32 { return math.Float32bits(v) }

func bitsToFloat32(b uint32) float32 { return math.Float32frombits(b) }

func TestRuntimeEndToEnd(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()

	app := rt.Connect("quicktest")
	defer app.Close()

	prog, err := app.CreateProgram(vaddSrc)
	if err != nil {
		t.Fatalf("CreateProgram: %v", err)
	}
	if got := rt.Stats().ProgramsJITed; got != 1 {
		t.Errorf("ProgramsJITed = %d, want 1", got)
	}

	const n = 1024
	a, err := app.CreateBuffer(n * 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := app.CreateBuffer(n * 4)
	c, _ := app.CreateBuffer(n * 4)

	av := make([]byte, n*4)
	bv := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(av[i*4:], float32ToBits(float32(i)))
		binary.LittleEndian.PutUint32(bv[i*4:], float32ToBits(float32(3*i)))
	}
	if err := a.Write(0, av); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(0, bv); err != nil {
		t.Fatal(err)
	}

	k, err := prog.CreateKernel("vadd")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgBuffer(0, a); err != nil {
		t.Fatal(err)
	}
	_ = k.SetArgBuffer(1, b)
	_ = k.SetArgBuffer(2, c)
	_ = k.SetArgInt32(3, n)

	nd := opencl.NDRange{Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1}}
	if err := app.EnqueueKernel(k, nd); err != nil {
		t.Fatalf("EnqueueKernel: %v", err)
	}

	out := make([]byte, n*4)
	if err := c.Read(0, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := bitsToFloat32(binary.LittleEndian.Uint32(out[i*4:]))
		if got != float32(4*i) {
			t.Fatalf("c[%d] = %v, want %v", i, got, float32(4*i))
		}
	}
	if got := rt.Stats().KernelsLaunched; got != 1 {
		t.Errorf("KernelsLaunched = %d, want 1", got)
	}
}

func TestRuntimeConcurrentApps(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()

	const apps, n = 4, 512
	var wg sync.WaitGroup
	errs := make(chan error, apps)
	for ai := 0; ai < apps; ai++ {
		wg.Add(1)
		go func(ai int) {
			defer wg.Done()
			app := rt.Connect(fmt.Sprintf("app%d", ai))
			defer app.Close()
			prog, err := app.CreateProgram(vaddSrc)
			if err != nil {
				errs <- err
				return
			}
			a, _ := app.CreateBuffer(n * 4)
			b, _ := app.CreateBuffer(n * 4)
			c, _ := app.CreateBuffer(n * 4)
			buf := make([]byte, n*4)
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint32(buf[i*4:], float32ToBits(float32(i+ai)))
			}
			_ = a.Write(0, buf)
			_ = b.Write(0, buf)
			k, err := prog.CreateKernel("vadd")
			if err != nil {
				errs <- err
				return
			}
			_ = k.SetArgBuffer(0, a)
			_ = k.SetArgBuffer(1, b)
			_ = k.SetArgBuffer(2, c)
			_ = k.SetArgInt32(3, n)
			nd := opencl.NDRange{Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1}}
			for iter := 0; iter < 3; iter++ {
				if err := app.EnqueueKernel(k, nd); err != nil {
					errs <- err
					return
				}
			}
			out := make([]byte, n*4)
			_ = c.Read(0, out)
			for i := 0; i < n; i++ {
				got := bitsToFloat32(binary.LittleEndian.Uint32(out[i*4:]))
				if got != float32(2*(i+ai)) {
					errs <- fmt.Errorf("app %d: c[%d] = %v, want %v", ai, i, got, float32(2*(i+ai)))
					return
				}
			}
		}(ai)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := rt.Stats().KernelsLaunched; got != apps*3 {
		t.Errorf("KernelsLaunched = %d, want %d", got, apps*3)
	}
}

func TestMonitorFSM(t *testing.T) {
	var seq []MonState
	m := &Monitor{
		OnJIT:      func(*Request) error { seq = append(seq, StateJIT); return nil },
		OnSchedule: func(*Request) error { seq = append(seq, StateScheduler); return nil },
		OnPass:     func(*Request) error { seq = append(seq, StateMonitor); return nil },
	}
	reqs := []*Request{
		{Kind: ReqProgramCreate, reply: make(chan error, 1)},
		{Kind: ReqKernelExec, reply: make(chan error, 1)},
		{Kind: ReqOther, reply: make(chan error, 1)},
	}
	for _, r := range reqs {
		if err := m.Handle(r); err != nil {
			t.Fatal(err)
		}
		if m.State() != StateMonitor {
			t.Errorf("monitor did not return to idle after %v", r.Kind)
		}
	}
	want := []MonState{StateJIT, StateScheduler, StateMonitor}
	for i := range want {
		if seq[i] != want[i] {
			t.Errorf("request %d handled in state %v, want %v", i, seq[i], want[i])
		}
	}
	if m.Transitions() != 4 { // JIT in+out, Scheduler in+out; passthrough stays
		t.Errorf("transitions = %d, want 4", m.Transitions())
	}
}

func TestMemoryManagerPausesApps(t *testing.T) {
	m := NewMemoryManager(1000)
	if err := m.Alloc(1, 800); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Alloc(2, 500) }() // must pause

	time.Sleep(20 * time.Millisecond)
	if m.Paused() != 1 {
		t.Fatalf("Paused = %d, want 1", m.Paused())
	}
	m.Free(1, 800)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("paused application never resumed")
	}
	if m.Used() != 500 {
		t.Errorf("Used = %d, want 500", m.Used())
	}
	if m.TotalPauses() != 1 {
		t.Errorf("TotalPauses = %d, want 1", m.TotalPauses())
	}
	if err := m.Alloc(3, 5000); err == nil {
		t.Error("allocation beyond capacity should fail outright")
	}
}

func TestMemoryManagerOversubscription(t *testing.T) {
	m := NewMemoryManager(100)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := m.Alloc(id, 40); err != nil {
					t.Error(err)
					return
				}
				m.Free(id, 40)
			}
		}(i)
	}
	wg.Wait()
	if m.Used() != 0 {
		t.Errorf("Used = %d after all frees", m.Used())
	}
}

// TestClusterRuntimeSpreadsLaunches drives the pooled runtime: the
// round-robin policy must route launches across both platforms, and the
// cluster scheduling path must preserve functional results.
func TestClusterRuntimeSpreadsLaunches(t *testing.T) {
	rt := NewClusterRuntime(opencl.GetPlatforms(), cluster.RoundRobin())
	defer rt.Shutdown()

	const apps, n, iters = 2, 512, 3
	var wg sync.WaitGroup
	errs := make(chan error, apps)
	for ai := 0; ai < apps; ai++ {
		wg.Add(1)
		go func(ai int) {
			defer wg.Done()
			app := rt.Connect(fmt.Sprintf("cluster-app%d", ai))
			defer app.Close()
			prog, err := app.CreateProgram(vaddSrc)
			if err != nil {
				errs <- err
				return
			}
			a, _ := app.CreateBuffer(n * 4)
			b, _ := app.CreateBuffer(n * 4)
			c, _ := app.CreateBuffer(n * 4)
			buf := make([]byte, n*4)
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint32(buf[i*4:], float32ToBits(float32(i)))
			}
			_ = a.Write(0, buf)
			_ = b.Write(0, buf)
			k, err := prog.CreateKernel("vadd")
			if err != nil {
				errs <- err
				return
			}
			_ = k.SetArgBuffer(0, a)
			_ = k.SetArgBuffer(1, b)
			_ = k.SetArgBuffer(2, c)
			_ = k.SetArgInt32(3, n)
			nd := opencl.NDRange{Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1}}
			for it := 0; it < iters; it++ {
				if err := app.EnqueueKernel(k, nd); err != nil {
					errs <- err
					return
				}
			}
			out := make([]byte, n*4)
			_ = c.Read(0, out)
			for i := 0; i < n; i++ {
				if got := bitsToFloat32(binary.LittleEndian.Uint32(out[i*4:])); got != float32(2*i) {
					errs <- fmt.Errorf("app %d: c[%d] = %v, want %v", ai, i, got, float32(2*i))
					return
				}
			}
		}(ai)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := rt.Stats()
	if st.KernelsLaunched != apps*iters {
		t.Errorf("KernelsLaunched = %d, want %d", st.KernelsLaunched, apps*iters)
	}
	if len(st.DeviceLaunches) != 2 {
		t.Fatalf("DeviceLaunches %v, want per-device counters for 2 platforms", st.DeviceLaunches)
	}
	total := 0
	for i, cnt := range st.DeviceLaunches {
		if cnt == 0 {
			t.Errorf("pool member %d received no launches under round-robin", i)
		}
		total += cnt
	}
	if total != apps*iters {
		t.Errorf("per-device launches sum to %d, want %d", total, apps*iters)
	}
	if rt.Pool() == nil {
		t.Error("cluster runtime should expose its pool")
	}
}
