package accelos

import (
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/sim"
)

func execFor(id int, wgs, numWGs int64) *sim.KernelExec {
	return &sim.KernelExec{
		ID: id, WGSize: wgs, NumWGs: numWGs,
		LocalBytes: 1024, RegsPerThread: 20,
		BaseWGCost: 10000, MemIntensity: 0.5, SatFrac: 0.4, Chunk: 2,
	}
}

// Property: for any request mix, PlanShares never oversubscribes any
// device resource and never plans zero or more-than-grid workers.
func TestPlanSharesInvariants(t *testing.T) {
	dev := device.NVIDIAK20m()
	f := func(sizes []uint8) bool {
		if len(sizes) == 0 || len(sizes) > 12 {
			return true
		}
		var execs []*sim.KernelExec
		for i, s := range sizes {
			wgs := int64(32 + int(s%8)*32)
			numWGs := int64(1 + int(s)*50)
			execs = append(execs, execFor(i, wgs, numWGs))
		}
		launches := PlanShares(dev, execs, false)
		var th, lm, rg int64
		for i, l := range launches {
			if l.PhysWGs < 1 || l.PhysWGs > execs[i].NumWGs {
				return false
			}
			if l.Chunk < 1 {
				return false
			}
			th += l.PhysWGs * dev.RoundWarp(l.FP.Threads)
			lm += l.PhysWGs * l.FP.LocalBytes
			rg += l.PhysWGs * l.FP.Regs
		}
		return th <= dev.TotalThreads() && lm <= dev.TotalLocalMem() && rg <= dev.TotalRegs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPlanSharesScalesDownWithK(t *testing.T) {
	dev := device.NVIDIAK20m()
	for _, k := range []int{1, 2, 4, 8} {
		var execs []*sim.KernelExec
		for i := 0; i < k; i++ {
			execs = append(execs, execFor(i, 128, 100000))
		}
		launches := PlanShares(dev, execs, false)
		want := dev.TotalThreads() / int64(k)
		got := launches[0].PhysWGs * 128
		// Within one work-group of the equal share.
		if got > want || got < want-256 {
			t.Errorf("K=%d: share %d threads, want ~%d", k, got, want)
		}
	}
}

func TestPlanWeightedRatios(t *testing.T) {
	dev := device.NVIDIAK20m()
	execs := []*sim.KernelExec{execFor(0, 128, 100000), execFor(1, 128, 100000)}
	launches := PlanWeighted(dev, execs, []float64{3, 1}, false)
	r := float64(launches[0].PhysWGs) / float64(launches[1].PhysWGs)
	if r < 2.5 || r > 3.5 {
		t.Errorf("3:1 weights produced a %.2f:1 thread split", r)
	}
	// Equal weights must reproduce PlanShares.
	even := PlanWeighted(dev, execs, []float64{1, 1}, false)
	plain := PlanShares(dev, execs, false)
	for i := range even {
		diff := even[i].PhysWGs - plain[i].PhysWGs
		if diff < -2 || diff > 2 {
			t.Errorf("kernel %d: weighted(1,1)=%d vs PlanShares=%d", i, even[i].PhysWGs, plain[i].PhysWGs)
		}
	}
}

func TestPlanWeightedValidation(t *testing.T) {
	dev := device.NVIDIAK20m()
	execs := []*sim.KernelExec{execFor(0, 128, 100)}
	mustPanic := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { PlanWeighted(dev, execs, []float64{1, 2}, false) })
	mustPanic(func() { PlanWeighted(dev, execs, []float64{-1}, false) })
}

func TestLocalMemoryBoundShares(t *testing.T) {
	// Kernels demanding huge local memory must be limited by L, not T.
	dev := device.NVIDIAK20m()
	var execs []*sim.KernelExec
	for i := 0; i < 2; i++ {
		e := execFor(i, 64, 100000)
		e.TransLocalBytes = 24 * 1024 // half a CU's local memory per WG
		execs = append(execs, e)
	}
	launches := PlanShares(dev, execs, false)
	var lm int64
	for _, l := range launches {
		lm += l.PhysWGs * l.FP.LocalBytes
	}
	if lm > dev.TotalLocalMem() {
		t.Errorf("local memory oversubscribed: %d > %d", lm, dev.TotalLocalMem())
	}
	if launches[0].PhysWGs > 13 { // 26 CU-halves / 2 kernels
		t.Errorf("local-bound share %d too large", launches[0].PhysWGs)
	}
}

func TestPlanSharesEmptyAndNilDevice(t *testing.T) {
	// K=0 callers may not hold a device at all; planning must not touch
	// it (regression: the guard has to run before any dev access).
	if got := PlanShares(nil, nil, false); got != nil {
		t.Errorf("PlanShares(nil, nil) = %v, want nil", got)
	}
	if got := PlanShares(nil, []*sim.KernelExec{}, true); got != nil {
		t.Errorf("PlanShares(nil, []) = %v, want nil", got)
	}
	if got := PlanWeighted(nil, nil, nil, false); got != nil {
		t.Errorf("PlanWeighted(nil, nil, nil) = %v, want nil", got)
	}
	if got := PlanTenantShares(nil, nil, nil, nil, false); got != nil {
		t.Errorf("PlanTenantShares(nil, nil, nil, nil) = %v, want nil", got)
	}
}

func TestPlanSharesOversizedFootprintFloorsAtOne(t *testing.T) {
	// A kernel whose transformed footprint exceeds a whole compute unit
	// has occupancy limit 0; its allocation must floor at 1 physical
	// work-group (the worker that will serially drain the queue), never
	// 0 — a zero-worker launch would hang.
	dev := device.NVIDIAK20m()
	e := execFor(0, 64, 1000)
	e.TransLocalBytes = dev.LocalMemPerCU + 1 // no CU can hold one WG
	if occ := dev.MaxConcurrentWGs(e.TransFootprint()); occ != 0 {
		t.Fatalf("test premise: occupancy = %d, want 0", occ)
	}
	for _, naive := range []bool{false, true} {
		launches := PlanShares(dev, []*sim.KernelExec{e}, naive)
		if got := launches[0].PhysWGs; got != 1 {
			t.Errorf("naive=%v: oversized footprint got %d physical WGs, want 1", naive, got)
		}
		if launches[0].Chunk < 1 {
			t.Errorf("naive=%v: chunk %d < 1", naive, launches[0].Chunk)
		}
	}
	// Same floor when sharing with a normal kernel.
	launches := PlanShares(dev, []*sim.KernelExec{e, execFor(1, 64, 1000)}, false)
	if launches[0].PhysWGs != 1 {
		t.Errorf("shared: oversized kernel got %d physical WGs, want 1", launches[0].PhysWGs)
	}
}

// smallCU is a deliberately tiny device shape so saturation boundaries
// are easy to hit in tests.
func smallCU() *device.Platform {
	return &device.Platform{
		Name: "test-small", Vendor: "test",
		NumCUs: 2, ThreadsPerCU: 256, LocalMemPerCU: 4096, RegsPerCU: 8192,
		WarpSize: 32, LaunchOverhead: 100, SchedOpCost: 10, VGOverhead: 2,
	}
}

// TestPlanSharesGreedySaturation checks the greedy-growth post-pass on
// several device shapes: allocations never exceed per-kernel occupancy
// or grid caps, and growth stops only once a device resource is
// saturated (no kernel below its cap could take one more work-group).
func TestPlanSharesGreedySaturation(t *testing.T) {
	cases := []struct {
		name string
		dev  *device.Platform
		mk   func() []*sim.KernelExec
	}{
		{"k20m-thread-bound", device.NVIDIAK20m(), func() []*sim.KernelExec {
			return []*sim.KernelExec{execFor(0, 256, 100000), execFor(1, 256, 100000)}
		}},
		{"amd-thread-bound", device.AMDR9295X2(), func() []*sim.KernelExec {
			return []*sim.KernelExec{execFor(0, 256, 100000), execFor(1, 128, 100000), execFor(2, 64, 100000)}
		}},
		{"small-local-bound", smallCU(), func() []*sim.KernelExec {
			a := execFor(0, 32, 100000)
			a.TransLocalBytes = 1024 // 8 WGs fill all local memory
			b := execFor(1, 32, 100000)
			b.TransLocalBytes = 1024
			return []*sim.KernelExec{a, b}
		}},
		{"small-reg-bound", smallCU(), func() []*sim.KernelExec {
			a := execFor(0, 32, 100000)
			a.TransRegsPerThread = 64 // 2048 regs per WG: 8 WGs fill the file
			return []*sim.KernelExec{a, execFor(1, 32, 4)}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dev := tc.dev
			execs := tc.mk()
			launches := PlanShares(dev, execs, false)

			var th, lm, rg int64
			atCap := true
			for i, l := range launches {
				occ := dev.MaxConcurrentWGs(l.FP)
				cap := execs[i].NumWGs
				if occ > 0 && occ < cap {
					cap = occ
				}
				if cap < 1 {
					cap = 1
				}
				if l.PhysWGs > cap {
					t.Errorf("kernel %d: %d physical WGs exceeds cap %d", i, l.PhysWGs, cap)
				}
				if l.PhysWGs < cap {
					atCap = false
				}
				th += l.PhysWGs * dev.RoundWarp(l.FP.Threads)
				lm += l.PhysWGs * l.FP.LocalBytes
				rg += l.PhysWGs * l.FP.Regs
			}
			if th > dev.TotalThreads() || lm > dev.TotalLocalMem() || rg > dev.TotalRegs() {
				t.Fatalf("oversubscribed: threads %d/%d local %d/%d regs %d/%d",
					th, dev.TotalThreads(), lm, dev.TotalLocalMem(), rg, dev.TotalRegs())
			}
			if atCap {
				return // every kernel at its occupancy/grid cap: nothing left to grow
			}
			// Saturation: no kernel below cap can take one more WG.
			for i, l := range launches {
				fits := th+dev.RoundWarp(l.FP.Threads) <= dev.TotalThreads() &&
					lm+l.FP.LocalBytes <= dev.TotalLocalMem() &&
					rg+l.FP.Regs <= dev.TotalRegs()
				occ := dev.MaxConcurrentWGs(l.FP)
				below := l.PhysWGs < execs[i].NumWGs && (occ <= 0 || l.PhysWGs < occ)
				if fits && below {
					t.Errorf("kernel %d could still grow: greedy pass stopped early", i)
				}
			}
		})
	}
}

func TestPlanTenantSharesAggregates(t *testing.T) {
	// Tenant "big" runs 3 kernels, tenant "small" runs 1; with equal
	// tenant weights, each tenant's aggregate thread allocation must be
	// about half the device — not the 3:1 split per-kernel equal shares
	// would produce.
	dev := device.NVIDIAK20m()
	execs := []*sim.KernelExec{
		execFor(0, 128, 100000), execFor(1, 128, 100000), execFor(2, 128, 100000),
		execFor(3, 128, 100000),
	}
	tenants := []string{"big", "big", "big", "small"}
	launches := PlanTenantShares(dev, execs, tenants, nil, false)
	agg := map[string]int64{}
	for i, l := range launches {
		agg[tenants[i]] += l.PhysWGs * dev.RoundWarp(l.FP.Threads)
	}
	ratio := float64(agg["big"]) / float64(agg["small"])
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("equal-weight tenants got %d vs %d threads (ratio %.2f), want ~1",
			agg["big"], agg["small"], ratio)
	}

	// Explicit 3:1 weights skew the aggregate accordingly.
	weighted := PlanTenantShares(dev, execs, tenants, map[string]float64{"big": 3, "small": 1}, false)
	agg = map[string]int64{}
	for i, l := range weighted {
		agg[tenants[i]] += l.PhysWGs * dev.RoundWarp(l.FP.Threads)
	}
	ratio = float64(agg["big"]) / float64(agg["small"])
	if ratio < 2 || ratio > 4 {
		t.Errorf("3:1 tenant weights got aggregate ratio %.2f, want ~3", ratio)
	}
}

func TestPlanTenantSharesValidation(t *testing.T) {
	dev := device.NVIDIAK20m()
	execs := []*sim.KernelExec{execFor(0, 128, 100)}
	mustPanic := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { PlanTenantShares(dev, execs, []string{"a", "b"}, nil, false) })
	mustPanic(func() { PlanTenantShares(dev, execs, []string{"a"}, map[string]float64{"a": -1}, false) })
}
