package accelos

import (
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/sim"
)

func execFor(id int, wgs, numWGs int64) *sim.KernelExec {
	return &sim.KernelExec{
		ID: id, WGSize: wgs, NumWGs: numWGs,
		LocalBytes: 1024, RegsPerThread: 20,
		BaseWGCost: 10000, MemIntensity: 0.5, SatFrac: 0.4, Chunk: 2,
	}
}

// Property: for any request mix, PlanShares never oversubscribes any
// device resource and never plans zero or more-than-grid workers.
func TestPlanSharesInvariants(t *testing.T) {
	dev := device.NVIDIAK20m()
	f := func(sizes []uint8) bool {
		if len(sizes) == 0 || len(sizes) > 12 {
			return true
		}
		var execs []*sim.KernelExec
		for i, s := range sizes {
			wgs := int64(32 + int(s%8)*32)
			numWGs := int64(1 + int(s)*50)
			execs = append(execs, execFor(i, wgs, numWGs))
		}
		launches := PlanShares(dev, execs, false)
		var th, lm, rg int64
		for i, l := range launches {
			if l.PhysWGs < 1 || l.PhysWGs > execs[i].NumWGs {
				return false
			}
			if l.Chunk < 1 {
				return false
			}
			th += l.PhysWGs * dev.RoundWarp(l.FP.Threads)
			lm += l.PhysWGs * l.FP.LocalBytes
			rg += l.PhysWGs * l.FP.Regs
		}
		return th <= dev.TotalThreads() && lm <= dev.TotalLocalMem() && rg <= dev.TotalRegs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPlanSharesScalesDownWithK(t *testing.T) {
	dev := device.NVIDIAK20m()
	for _, k := range []int{1, 2, 4, 8} {
		var execs []*sim.KernelExec
		for i := 0; i < k; i++ {
			execs = append(execs, execFor(i, 128, 100000))
		}
		launches := PlanShares(dev, execs, false)
		want := dev.TotalThreads() / int64(k)
		got := launches[0].PhysWGs * 128
		// Within one work-group of the equal share.
		if got > want || got < want-256 {
			t.Errorf("K=%d: share %d threads, want ~%d", k, got, want)
		}
	}
}

func TestPlanWeightedRatios(t *testing.T) {
	dev := device.NVIDIAK20m()
	execs := []*sim.KernelExec{execFor(0, 128, 100000), execFor(1, 128, 100000)}
	launches := PlanWeighted(dev, execs, []float64{3, 1}, false)
	r := float64(launches[0].PhysWGs) / float64(launches[1].PhysWGs)
	if r < 2.5 || r > 3.5 {
		t.Errorf("3:1 weights produced a %.2f:1 thread split", r)
	}
	// Equal weights must reproduce PlanShares.
	even := PlanWeighted(dev, execs, []float64{1, 1}, false)
	plain := PlanShares(dev, execs, false)
	for i := range even {
		diff := even[i].PhysWGs - plain[i].PhysWGs
		if diff < -2 || diff > 2 {
			t.Errorf("kernel %d: weighted(1,1)=%d vs PlanShares=%d", i, even[i].PhysWGs, plain[i].PhysWGs)
		}
	}
}

func TestPlanWeightedValidation(t *testing.T) {
	dev := device.NVIDIAK20m()
	execs := []*sim.KernelExec{execFor(0, 128, 100)}
	mustPanic := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { PlanWeighted(dev, execs, []float64{1, 2}, false) })
	mustPanic(func() { PlanWeighted(dev, execs, []float64{-1}, false) })
}

func TestLocalMemoryBoundShares(t *testing.T) {
	// Kernels demanding huge local memory must be limited by L, not T.
	dev := device.NVIDIAK20m()
	var execs []*sim.KernelExec
	for i := 0; i < 2; i++ {
		e := execFor(i, 64, 100000)
		e.TransLocalBytes = 24 * 1024 // half a CU's local memory per WG
		execs = append(execs, e)
	}
	launches := PlanShares(dev, execs, false)
	var lm int64
	for _, l := range launches {
		lm += l.PhysWGs * l.FP.LocalBytes
	}
	if lm > dev.TotalLocalMem() {
		t.Errorf("local memory oversubscribed: %d > %d", lm, dev.TotalLocalMem())
	}
	if launches[0].PhysWGs > 13 { // 26 CU-halves / 2 kernels
		t.Errorf("local-bound share %d too large", launches[0].PhysWGs)
	}
}
