package accelos

// Application Monitor finite state machine (paper Fig. 6). Every OpenCL
// request an application makes through ProxyCL is classified and routed:
// program creation enters the JIT compiler, kernel execution enters the
// Kernel Scheduler, anything else passes straight through.

// ReqKind classifies an intercepted OpenCL request.
type ReqKind int

// Request kinds.
const (
	ReqProgramCreate ReqKind = iota // clCreateProgramWithSource + build
	ReqKernelExec                   // clEnqueueNDRangeKernel
	ReqOther                        // buffers, reads, writes, queries, ...
)

func (k ReqKind) String() string {
	switch k {
	case ReqProgramCreate:
		return "new clProgram"
	case ReqKernelExec:
		return "new kernel execution"
	default:
		return "other request"
	}
}

// MonState is a state of the Application Monitor FSM.
type MonState int

// FSM states (Fig. 6): the monitor idles, hands program creations to the
// JIT compiler and kernel executions to the Kernel Scheduler, then
// returns to idle.
const (
	StateMonitor MonState = iota
	StateJIT
	StateScheduler
)

func (s MonState) String() string {
	switch s {
	case StateMonitor:
		return "App Monitor"
	case StateJIT:
		return "JIT Compiler"
	case StateScheduler:
		return "Kernel Scheduler"
	}
	return "?"
}

// Monitor is the FSM driver. Hooks are invoked in the corresponding
// state; transitions are recorded for observability and tests.
type Monitor struct {
	state MonState

	// OnJIT handles a program creation (returns transformed codes).
	OnJIT func(req *Request) error
	// OnSchedule handles a kernel execution (alters the NDRange and
	// launches).
	OnSchedule func(req *Request) error
	// OnPass handles any other request unchanged.
	OnPass func(req *Request) error

	transitions int
}

// State returns the current FSM state.
func (m *Monitor) State() MonState { return m.state }

// Transitions returns how many state changes the monitor performed.
func (m *Monitor) Transitions() int { return m.transitions }

func (m *Monitor) to(s MonState) {
	if m.state != s {
		m.state = s
		m.transitions++
	}
}

// Handle routes one request through the FSM and back to the monitor
// state.
func (m *Monitor) Handle(req *Request) error {
	var err error
	switch req.Kind {
	case ReqProgramCreate:
		m.to(StateJIT)
		if m.OnJIT != nil {
			err = m.OnJIT(req)
		}
	case ReqKernelExec:
		m.to(StateScheduler)
		if m.OnSchedule != nil {
			err = m.OnSchedule(req)
		}
	default:
		// Scenario (c): the application continues instantly; accelOS
		// does not intervene.
		if m.OnPass != nil {
			err = m.OnPass(req)
		}
	}
	m.to(StateMonitor)
	return err
}
