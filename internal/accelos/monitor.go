package accelos

// Application Monitor finite state machine (paper Fig. 6). Every OpenCL
// request an application makes through ProxyCL is classified and routed:
// program creation enters the JIT compiler, kernel execution enters the
// Kernel Scheduler, anything else passes straight through.

import "sync"

// ReqKind classifies an intercepted OpenCL request.
type ReqKind int

// Request kinds.
const (
	ReqProgramCreate ReqKind = iota // clCreateProgramWithSource + build
	ReqKernelExec                   // clEnqueueNDRangeKernel
	ReqOther                        // buffers, reads, writes, queries, ...
)

func (k ReqKind) String() string {
	switch k {
	case ReqProgramCreate:
		return "new clProgram"
	case ReqKernelExec:
		return "new kernel execution"
	default:
		return "other request"
	}
}

// MonState is a state of the Application Monitor FSM.
type MonState int

// FSM states (Fig. 6): the monitor idles, hands program creations to the
// JIT compiler and kernel executions to the Kernel Scheduler, then
// returns to idle.
const (
	StateMonitor MonState = iota
	StateJIT
	StateScheduler
)

func (s MonState) String() string {
	switch s {
	case StateMonitor:
		return "App Monitor"
	case StateJIT:
		return "JIT Compiler"
	case StateScheduler:
		return "Kernel Scheduler"
	}
	return "?"
}

// Monitor is the FSM driver. Hooks are invoked in the corresponding
// state; transitions are recorded for observability and tests. The FSM
// is re-entered not only for application requests but also for the
// scheduler's own re-plan events (kernel completions), which arrive from
// launch-driving goroutines — hence the mutex.
type Monitor struct {
	mu    sync.Mutex
	state MonState

	// OnJIT handles a program creation (returns transformed codes).
	OnJIT func(req *Request) error
	// OnSchedule handles a kernel execution (alters the NDRange and
	// launches).
	OnSchedule func(req *Request) error
	// OnPass handles any other request unchanged.
	OnPass func(req *Request) error

	transitions int
	reschedules int

	// pending/running track the asynchronous submission window: a kernel
	// is pending from interception until its wait list and admission
	// release it to a device, and running from launch to retirement. The
	// scheduler plans against running kernels while seeing the pending
	// window coming.
	pending int
	running int
}

// State returns the current FSM state.
func (m *Monitor) State() MonState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// Transitions returns how many state changes the monitor performed.
func (m *Monitor) Transitions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.transitions
}

// Reschedules returns how many times the Kernel Scheduler state was
// re-entered for a dynamic re-plan (kernel arrival or completion)
// rather than for a fresh application request.
func (m *Monitor) Reschedules() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reschedules
}

// Reschedule records a scheduler re-entry: the event-driven re-plan
// passes through the Kernel Scheduler state and returns to monitoring.
// Re-plans arrive from launch goroutines while the FSM may be serving
// an application request, so the state words are only driven when the
// FSM is idle — a busy FSM just counts the re-entry, keeping the
// request-handling state trace meaningful.
func (m *Monitor) Reschedule() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reschedules++
	if m.state == StateMonitor {
		m.state = StateScheduler
		m.state = StateMonitor
		m.transitions += 2
	}
}

// KernelQueued records an intercepted kernel execution entering the
// pending window (wait list or admission not yet satisfied).
func (m *Monitor) KernelQueued() {
	m.mu.Lock()
	m.pending++
	m.mu.Unlock()
}

// KernelStarted moves a kernel from pending to running.
func (m *Monitor) KernelStarted() {
	m.mu.Lock()
	m.pending--
	m.running++
	m.mu.Unlock()
}

// KernelRetired removes a kernel from the accounting: from running if it
// launched, from pending if it was abandoned first (failed wait list,
// released buffer, launch error).
func (m *Monitor) KernelRetired(started bool) {
	m.mu.Lock()
	if started {
		m.running--
	} else {
		m.pending--
	}
	m.mu.Unlock()
}

// PendingKernels reports how many intercepted executions are waiting on
// dependencies or admission.
func (m *Monitor) PendingKernels() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pending
}

// RunningKernels reports how many executions are launched and in flight.
func (m *Monitor) RunningKernels() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.running
}

func (m *Monitor) to(s MonState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != s {
		m.state = s
		m.transitions++
	}
}

// Handle routes one request through the FSM and back to the monitor
// state.
func (m *Monitor) Handle(req *Request) error {
	var err error
	switch req.Kind {
	case ReqProgramCreate:
		m.to(StateJIT)
		if m.OnJIT != nil {
			err = m.OnJIT(req)
		}
	case ReqKernelExec:
		m.to(StateScheduler)
		if m.OnSchedule != nil {
			err = m.OnSchedule(req)
		}
	default:
		// Scenario (c): the application continues instantly; accelOS
		// does not intervene.
		if m.OnPass != nil {
			err = m.OnPass(req)
		}
	}
	m.to(StateMonitor)
	return err
}
