package accelos

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/opencl"
)

// churnSrc is a long-running kernel with a 4 KB local-memory footprint:
// on the K20m model the §3 plan is then capped by local memory far
// below the virtual group count, leaving the share room to grow when a
// co-resident kernel completes.
// The spin loop keeps the kernel long-running relative to the O1
// bytecode VM (the tests below need its slices to still be in flight
// while a peer arrives); `acc & 0` contributes nothing to the output
// but keeps the loop live through mem2reg + DCE.
const churnSrc = `
kernel void churn(global int* out, int n)
{
    local int scratch[1024];
    int l = (int)get_local_id(0);
    scratch[l] = l;
    barrier(1);
    int i = (int)get_global_id(0);
    int acc = 0;
    int t;
    for (t = 0; t < 300; ++t) acc += (i + t) & 7;
    if (i < n) out[i] = out[i] + scratch[l] + 1 + (acc & 0);
}
`

// peerSrc is a short-lived co-resident kernel with the same local
// footprint, so the two split the device's local memory while both run.
const peerSrc = `
kernel void peer(global int* out, int n)
{
    local int scratch[1024];
    int l = (int)get_local_id(0);
    scratch[l] = 2 * l;
    barrier(1);
    int i = (int)get_global_id(0);
    if (i < n) out[i] = scratch[l];
}
`

func setupIntKernel(t *testing.T, app *App, src, name string, n int64) (*KernelHandle, *BufferHandle) {
	t.Helper()
	prog, err := app.CreateProgram(src)
	if err != nil {
		t.Fatalf("CreateProgram(%s): %v", name, err)
	}
	buf, err := app.CreateBuffer(n * 4)
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgInt32(1, int32(n)); err != nil {
		t.Fatal(err)
	}
	return k, buf
}

// TestLiveDynamicResharing is the acceptance test for the sliced
// engine: with two apps on one device, the surviving kernel's planned
// PhysWGs must strictly increase after its peer completes — impossible
// under the old admission-time-only plan, which never revisited a
// running launch.
func TestLiveDynamicResharing(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	// Fine slices so re-plans land quickly.
	rt.SetSliceRounds(1)

	const longN, shortN = 512 * 32, 64 * 32
	appL := rt.Connect("long")
	defer appL.Close()
	appS := rt.Connect("short")
	defer appS.Close()

	kL, bufL := setupIntKernel(t, appL, churnSrc, "churn", longN)
	defer bufL.Release()
	kS, bufS := setupIntKernel(t, appS, peerSrc, "peer", shortN)
	defer bufS.Release()

	longDone := make(chan error, 1)
	go func() {
		longDone <- appL.EnqueueKernel(kL, opencl.NDRange{
			Dims: 1, Global: [3]int64{longN, 1, 1}, Local: [3]int64{32, 1, 1},
		})
	}()

	// Wait until the long kernel is in flight and has received its
	// solo plan.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if hist := rt.PlanHistory(); len(hist) > 0 && hist[0].App == "long" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("long kernel never received an initial plan")
		}
		time.Sleep(time.Millisecond)
	}

	// The peer arrives (shrinking the long kernel's share at its next
	// slice boundary) and completes (regrowing it) before returning:
	// the completion re-plan is pushed before the reply.
	if err := appS.EnqueueKernel(kS, opencl.NDRange{
		Dims: 1, Global: [3]int64{shortN, 1, 1}, Local: [3]int64{32, 1, 1},
	}); err != nil {
		t.Fatalf("peer EnqueueKernel: %v", err)
	}
	if err := <-longDone; err != nil {
		t.Fatalf("long EnqueueKernel: %v", err)
	}

	var longPlans []int64
	for _, s := range rt.PlanHistory() {
		if s.App == "long" {
			longPlans = append(longPlans, s.PhysWGs)
		}
	}
	if len(longPlans) < 3 {
		t.Fatalf("long kernel saw %d plans (%v), want >= 3 (solo, shrunk, regrown)", len(longPlans), longPlans)
	}
	solo := longPlans[0]
	minP, minIdx := solo, 0
	for i, p := range longPlans {
		if p < minP {
			minP, minIdx = p, i
		}
	}
	if minP >= solo {
		t.Fatalf("long kernel's share never shrank on peer arrival: plans %v", longPlans)
	}
	regrown := false
	for _, p := range longPlans[minIdx+1:] {
		if p > minP {
			regrown = true
		}
	}
	if !regrown {
		t.Fatalf("long kernel's PhysWGs did not strictly increase after peer completed: plans %v", longPlans)
	}
	if got := rt.Stats().Replans; got < 3 {
		t.Errorf("Replans = %d, want >= 3", got)
	}
	if got := rt.Monitor().Reschedules(); got < 3 {
		t.Errorf("Monitor reschedules = %d, want >= 3", got)
	}

	// Slicing and re-planning must not corrupt results: every virtual
	// group ran exactly once.
	out := make([]byte, longN*4)
	if err := bufL.Read(0, out); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < longN; i++ {
		want := int32(i%32) + 1
		if got := int32(binary.LittleEndian.Uint32(out[i*4:])); got != want {
			t.Fatalf("long out[%d] = %d, want %d", i, got, want)
		}
	}
}

// fillSrc writes a deterministic value to a caller-chosen window of a
// buffer, so two apps can target disjoint halves of one allocation.
const fillSrc = `
kernel void fill(global int* out, int base, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) out[base + i] = base + i + 1;
}
`

// TestSharedBufferConcurrentLaunches is the regression test for the
// copy-back lost-update race: before zero-copy binding, every launch
// copied the WHOLE buffer in and out, so two apps writing disjoint
// halves of a shared buffer clobbered each other's half on copy-back
// (and the full-buffer copies raced under -race). With buffers bound
// in place, concurrent disjoint writers compose.
func TestSharedBufferConcurrentLaunches(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()

	const half = 2048
	appA := rt.Connect("writer-a")
	defer appA.Close()
	appB := rt.Connect("writer-b")
	defer appB.Close()

	shared, err := appA.CreateBuffer(2 * half * 4)
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Release()

	mkKernel := func(app *App, base int32) *KernelHandle {
		prog, err := app.CreateProgram(fillSrc)
		if err != nil {
			t.Fatal(err)
		}
		k, err := prog.CreateKernel("fill")
		if err != nil {
			t.Fatal(err)
		}
		_ = k.SetArgBuffer(0, shared)
		_ = k.SetArgInt32(1, base)
		_ = k.SetArgInt32(2, half)
		return k
	}
	kA := mkKernel(appA, 0)
	kB := mkKernel(appB, half)

	nd := opencl.NDRange{Dims: 1, Global: [3]int64{half, 1, 1}, Local: [3]int64{64, 1, 1}}
	const iters = 4
	var wg sync.WaitGroup
	errs := make(chan error, 2*iters)
	run := func(app *App, k *KernelHandle) {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := app.EnqueueKernel(k, nd); err != nil {
				errs <- err
				return
			}
		}
	}
	wg.Add(2)
	go run(appA, kA)
	go run(appB, kB)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	out := make([]byte, 2*half*4)
	if err := shared.Read(0, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*half; i++ {
		if got := int32(binary.LittleEndian.Uint32(out[i*4:])); got != int32(i+1) {
			t.Fatalf("shared[%d] = %d, want %d (lost update across concurrent launches)", i, got, i+1)
		}
	}
}

// TestBoundedClusterAdmission exercises the event-driven admission
// path: with maxResident 1, the second app's execution waits in the run
// queue and is launched by the completion event that frees the slot.
func TestBoundedClusterAdmission(t *testing.T) {
	rt := NewBoundedClusterRuntime(opencl.GetPlatforms()[:1], cluster.LeastLoaded(), 1)
	defer rt.Shutdown()
	rt.SetSliceRounds(1)

	const longN, shortN = 256 * 32, 32 * 32
	appL := rt.Connect("resident")
	defer appL.Close()
	appQ := rt.Connect("queued")
	defer appQ.Close()

	kL, bufL := setupIntKernel(t, appL, churnSrc, "churn", longN)
	defer bufL.Release()
	kQ, bufQ := setupIntKernel(t, appQ, peerSrc, "peer", shortN)
	defer bufQ.Release()

	longDone := make(chan error, 1)
	go func() {
		longDone <- appL.EnqueueKernel(kL, opencl.NDRange{
			Dims: 1, Global: [3]int64{longN, 1, 1}, Local: [3]int64{32, 1, 1},
		})
	}()
	// Wait for the first kernel to hold the device slot.
	deadline := time.Now().Add(5 * time.Second)
	for rt.Stats().KernelsLaunched == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first kernel never launched")
		}
		time.Sleep(time.Millisecond)
	}

	// This blocks until the queued execution is admitted by the first
	// kernel's completion event, launched, and completed.
	if err := appQ.EnqueueKernel(kQ, opencl.NDRange{
		Dims: 1, Global: [3]int64{shortN, 1, 1}, Local: [3]int64{32, 1, 1},
	}); err != nil {
		t.Fatalf("queued EnqueueKernel: %v", err)
	}
	if err := <-longDone; err != nil {
		t.Fatal(err)
	}

	st := rt.Stats()
	if st.QueuedAdmissions != 1 {
		t.Errorf("QueuedAdmissions = %d, want 1", st.QueuedAdmissions)
	}
	if st.KernelsLaunched != 2 {
		t.Errorf("KernelsLaunched = %d, want 2", st.KernelsLaunched)
	}

	out := make([]byte, shortN*4)
	if err := bufQ.Read(0, out); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < shortN; i++ {
		want := int32(2 * (i % 32))
		if got := int32(binary.LittleEndian.Uint32(out[i*4:])); got != want {
			t.Fatalf("queued out[%d] = %d, want %d", i, got, want)
		}
	}
}
