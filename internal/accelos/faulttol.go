package accelos

// Fault tolerance: device-failure recovery, the runaway-kernel
// watchdog, and repeat-offender quarantine.
//
// Recovery rides on the sliced execution engine. A kernel runs as a
// sequence of virtual-group-range slices whose writes land in
// host-resident buffers, so when a device fails, everything a launch
// completed before the failure survives; the runtime relaunches only
// the *remaining* range on a healthy device (LaunchHandle.ResumeAt).
// The in-flight slice is host-simulated and runs to its boundary before
// the cancellation lands, so recovery is slice-atomic: every virtual
// group executes exactly once and the recovered result is byte-
// identical to a fault-free run — for every kernel, including those
// with non-idempotent writes. What is NOT preserved: a launch whose
// device fails more than MaxRelaunches times fails with ErrDeviceLost,
// and nothing survives a process (daemon) restart — buffers and
// launches are process-resident state.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/opencl"
	"repro/internal/telemetry"
)

// Typed failure causes. They cross the service boundary intact (the
// wire layer assigns them error codes), so remote clients can
// errors.Is against the same sentinels.
var (
	// ErrDeviceLost fails an execution's event when device failures
	// exhausted its relaunch budget (FaultPolicy.MaxRelaunches).
	ErrDeviceLost = errors.New("accelos: device lost: relaunch budget exhausted")
	// ErrKernelTimeout fails an execution's event when the runaway-
	// kernel watchdog killed it: the launch exceeded the per-launch
	// wall-clock deadline (FaultPolicy.LaunchDeadline).
	ErrKernelTimeout = errors.New("accelos: kernel exceeded launch deadline")
	// ErrKernelQuarantined rejects a submission at admission because the
	// (tenant, kernel) pair accumulated FaultPolicy.QuarantineAfter
	// watchdog kills — one tenant's infinite loop must not keep
	// re-entering the fleet.
	ErrKernelQuarantined = errors.New("accelos: kernel quarantined after repeated watchdog kills")
)

// errDeviceEvicted is the internal cancellation cause marking "the
// device under this launch failed": the drive loop turns it into a
// relaunch instead of a failure.
var errDeviceEvicted = errors.New("accelos: device failed under launch")

// DefaultMaxRelaunches is the per-launch device-failure relaunch budget
// when no FaultPolicy was installed or its MaxRelaunches is zero.
const DefaultMaxRelaunches = 3

// FaultPolicy configures the runtime's fault-tolerance behavior.
// Install with SetFaultPolicy before scheduling work.
type FaultPolicy struct {
	// MaxRelaunches bounds how many times one kernel execution may be
	// relaunched after device failures before its event fails with
	// ErrDeviceLost. 0 means DefaultMaxRelaunches; negative disables
	// relaunching (the first eviction is fatal).
	MaxRelaunches int
	// LaunchDeadline is the per-launch wall-clock watchdog: an
	// execution still running this long after its first slice started
	// is aborted (mid-slice if necessary) and its event fails with
	// ErrKernelTimeout. The deadline spans relaunches and parking.
	// 0 disables the watchdog.
	LaunchDeadline time.Duration
	// QuarantineAfter quarantines a (tenant, kernel) pair once it
	// accumulates this many watchdog kills: later submissions are
	// rejected at admission with ErrKernelQuarantined. 0 disables
	// quarantine.
	QuarantineAfter int
}

// SetFaultPolicy installs the fault-tolerance policy. Call before
// scheduling work; without a call the runtime uses the zero policy
// (DefaultMaxRelaunches, no watchdog, no quarantine).
func (rt *Runtime) SetFaultPolicy(fp FaultPolicy) {
	rt.faultMu.Lock()
	rt.fpol = &fp
	rt.faultMu.Unlock()
}

// faultPolicy returns the effective policy with defaults applied.
func (rt *Runtime) faultPolicy() FaultPolicy {
	rt.faultMu.Lock()
	defer rt.faultMu.Unlock()
	fp := FaultPolicy{}
	if rt.fpol != nil {
		fp = *rt.fpol
	}
	if fp.MaxRelaunches == 0 {
		fp.MaxRelaunches = DefaultMaxRelaunches
	}
	return fp
}

// quarantineKey joins tenant and kernel with a byte neither contains.
func quarantineKey(tenant, kern string) string { return tenant + "\x00" + kern }

// noteWatchdogKill records one watchdog kill for quarantine accounting
// and telemetry.
func (rt *Runtime) noteWatchdogKill(rec *launchRec) {
	rt.reg.Counter("watchdog_kills_total",
		telemetry.L("tenant", rec.app), telemetry.L("kernel", rec.kern)).Inc()
	rt.faultMu.Lock()
	if rt.quarKills == nil {
		rt.quarKills = make(map[string]int)
	}
	rt.quarKills[quarantineKey(rec.app, rec.kern)]++
	rt.faultMu.Unlock()
}

// isQuarantined reports whether the (tenant, kernel) pair is over the
// policy's watchdog-kill allowance.
func (rt *Runtime) isQuarantined(tenant, kern string) bool {
	fp := rt.faultPolicy()
	if fp.QuarantineAfter <= 0 {
		return false
	}
	rt.faultMu.Lock()
	defer rt.faultMu.Unlock()
	return rt.quarKills[quarantineKey(tenant, kern)] >= fp.QuarantineAfter
}

// WatchdogKills reports recorded watchdog kills for a (tenant, kernel)
// pair (tests and monitoring).
func (rt *Runtime) WatchdogKills(tenant, kern string) int {
	rt.faultMu.Lock()
	defer rt.faultMu.Unlock()
	return rt.quarKills[quarantineKey(tenant, kern)]
}

// armWatchdog starts the execution's wall-clock deadline at its first
// launch. The timer survives relaunches — the deadline bounds the
// execution, not one placement of it.
func (rt *Runtime) armWatchdog(rec *launchRec) {
	fp := rt.faultPolicy()
	if fp.LaunchDeadline <= 0 || rec.watchdog != nil {
		return
	}
	rec.watchdog = time.AfterFunc(fp.LaunchDeadline, func() {
		rec.timedOut.Store(true)
		// Abort the handle currently driving the execution (relaunches
		// swap handles; read under the registry lock). Abort interrupts
		// the machine, so even a kernel stuck inside one slice traps at
		// its next budget flush.
		rt.launchMu.Lock()
		h := rec.h
		rt.launchMu.Unlock()
		if h != nil {
			h.Abort(fmt.Errorf("accelos: kernel %q: %w", rec.kern, ErrKernelTimeout))
		}
	})
}

// stopWatchdog cancels the deadline timer once the execution reached a
// terminal state.
func (rec *launchRec) stopWatchdog() {
	if rec.watchdog != nil {
		rec.watchdog.Stop()
	}
}

// onEviction reacts to a device failure throwing an execution out of
// the pool. A still-pending (queued or never-launched) execution simply
// re-enters placement; an in-flight one is cancelled at its next slice
// boundary with errDeviceEvicted, and its drive goroutine performs the
// relaunch with the consumed prefix preserved.
func (rt *Runtime) onEviction(ev cluster.PoolEvent) {
	rt.launchMu.Lock()
	if rec := rt.pending[ev.Exec]; rec != nil {
		// Queued orphan: it stays parked in pending — the membership
		// event of the new placement claims it, exactly like admit.
		rt.launchMu.Unlock()
		rt.submitToPool(rec)
		return
	}
	var h *opencl.LaunchHandle
	for _, r := range rt.launches {
		if r.ce == ev.Exec {
			h = r.h
			break
		}
	}
	rt.launchMu.Unlock()
	if h != nil {
		h.Cancel(fmt.Errorf("%w (device %d)", errDeviceEvicted, ev.Dev))
	}
}

// tryRelaunch consumes one unit of the execution's relaunch budget and
// re-enters pool placement with the consumed prefix recorded, so the
// next startLaunch resumes where the failed device stopped. It reports
// false when the budget is exhausted (the caller fails the event with
// ErrDeviceLost). Runs on the execution's drive goroutine.
func (rt *Runtime) tryRelaunch(rec *launchRec, h *opencl.LaunchHandle) bool {
	fp := rt.faultPolicy()
	if fp.MaxRelaunches <= 0 || rec.relaunches >= fp.MaxRelaunches {
		return false
	}
	rec.relaunches++
	consumed, _ := h.Progress()
	rt.launchMu.Lock()
	rec.resumeAt = consumed
	rec.h = nil
	delete(rt.launches, rec.id)
	rt.pending[rec.ce] = rec
	rt.launchMu.Unlock()
	rt.reg.Counter("relaunches_total",
		telemetry.L("kernel", rec.kern), telemetry.L("reason", "device-failed")).Inc()
	rt.submitToPool(rec)
	return true
}
