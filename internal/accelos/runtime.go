package accelos

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/accelpass"
	"repro/internal/clc"
	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/opencl"
	"repro/internal/passes"
	"repro/internal/rtlib"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Runtime is the accelOS background system process (level 1 of Fig. 5):
// the Application Monitor, the JIT compiler front door, the Kernel
// Scheduler and the memory manager, sitting between ProxyCL applications
// and the standard OpenCL system interface.
type Runtime struct {
	Plat  *opencl.Platform
	Ctx   *opencl.Context
	Queue *opencl.CommandQueue

	// plats and pool are set when the runtime is constructed over a
	// device pool (NewClusterRuntime): kernel executions are then placed
	// per-device by the cluster policy and shares are planned against
	// the chosen device's resident set only.
	plats []*opencl.Platform
	pool  *cluster.Pool

	mon *Monitor
	mem *MemoryManager

	reqCh chan *Request
	quit  chan struct{}
	wg    sync.WaitGroup

	mu      sync.Mutex
	nextApp int

	activeMu sync.Mutex
	active   map[int]*sim.KernelExec // in-flight kernel executions, for share planning
	nextExec int

	// launchMu guards the sliced-execution bookkeeping: in-flight launch
	// handles, requests parked until pool admission, and the plan log.
	launchMu sync.Mutex
	launches map[int]*launchRec
	pending  map[*sim.ClusterExec]*launchRec
	planLog  []PlanSample

	// replanMu serializes plan computation + push so a stale plan can
	// never overwrite a newer one on the launch handles.
	replanMu sync.Mutex

	sliceRounds int64

	statsMu sync.Mutex
	stats   Stats

	// Telemetry sinks, installed once by SetTelemetry before any work is
	// scheduled and read without locks afterwards (every accessor is
	// nil-safe, so disabled telemetry costs a nil check per site).
	tracer *telemetry.Tracer
	reg    *telemetry.Registry
	score  *metrics.LiveScorecard

	// tier, when set (EnableTiering, before any work is scheduled), is
	// the tiered-execution controller shared by every machine pool: JIT
	// skips the eager O1 compile, first launches run the cheap tier-0
	// form, and hot kernels are recompiled in the background.
	tier *interp.TierController

	// Fault tolerance (faulttol.go): the installed policy and the
	// per-(tenant, kernel) watchdog-kill counts driving quarantine.
	faultMu   sync.Mutex
	fpol      *FaultPolicy
	quarKills map[string]int
}

// launchRec tracks one kernel execution from interception to
// completion: deferred while its wait list is incomplete, parked while
// awaiting pool admission, then bound to a LaunchHandle and driven slice
// by slice. Its event is the application's handle to the execution.
type launchRec struct {
	id      int
	app     string
	kern    string
	exec    *sim.KernelExec
	ce      *sim.ClusterExec // cluster path only
	devIdx  int
	mod     *ir.Module
	cl      *opencl.Kernel
	nd      opencl.NDRange
	rtWords []int64
	bufs    []*opencl.Buffer // argument buffers, pinned by the app until completion
	h       *opencl.LaunchHandle
	ev      *opencl.Event
	started bool // reached startLaunch (pending → running)

	// root pre-allocates the execution's trace-span ID at schedule time so
	// slice spans can parent to it before the root span itself is emitted
	// (at completion, from the event's profiling stamps). busy accumulates
	// slice wall time — the scorecard's "alone" estimate; only the slice
	// goroutine writes it.
	root int64
	busy time.Duration

	// Fault tolerance (faulttol.go): relaunch budget consumed after
	// device failures, the virtual-group prefix the next (re)launch
	// resumes from, the wall-clock watchdog (armed at first launch,
	// spans relaunches) and its verdict.
	relaunches int
	resumeAt   int64
	watchdog   *time.Timer
	timedOut   atomic.Bool
}

// PlanSample is one allocation pushed to an in-flight execution by the
// dynamic re-planner — the observable trace of the §5 adaptation (tests
// assert a surviving kernel's PhysWGs grows after a peer completes).
type PlanSample struct {
	App     string
	Kernel  string
	ExecID  int
	PhysWGs int64
	Chunk   int64
}

// Stats counts runtime activity for observability and tests.
type Stats struct {
	ProgramsJITed   int
	KernelsLaunched int
	Passthroughs    int
	// Replans counts dynamic re-plan events (every kernel arrival and
	// completion re-runs the §3 algorithm over the resident set).
	Replans int
	// QueuedAdmissions counts executions that waited in a device run
	// queue before the completion event that admitted them (bounded
	// cluster runtimes only).
	QueuedAdmissions int
	// WaitDeferred counts kernel executions that arrived with an
	// incomplete wait list: the scheduler saw them as its pending window
	// before their dependencies released them.
	WaitDeferred int
	// Rejected counts executions refused at admission because the target
	// device's run queue was at its bound (cluster runtimes with
	// SetMaxQueued only); their events fail with ErrAdmissionRejected.
	Rejected int
	// DeviceLaunches counts launches per pool member (cluster runtimes
	// only; nil for single-device runtimes).
	DeviceLaunches []int
}

// Request is one intercepted OpenCL call.
type Request struct {
	Kind ReqKind
	App  *App

	Prog  *Program
	Kern  *KernelHandle
	ND    opencl.NDRange
	Other func() error

	// Asynchronous kernel submissions carry their wait list, completion
	// event and pinned argument buffers instead of a reply channel.
	Waits []*opencl.Event
	Event *opencl.Event
	Bufs  []*opencl.Buffer

	reply chan error
}

// NewRuntime starts the accelOS daemon on a platform.
func NewRuntime(plat *opencl.Platform) *Runtime {
	rt := &Runtime{
		Plat:     plat,
		Ctx:      plat.CreateContext(),
		reqCh:    make(chan *Request, 64),
		quit:     make(chan struct{}),
		active:   make(map[int]*sim.KernelExec),
		launches: make(map[int]*launchRec),
		pending:  make(map[*sim.ClusterExec]*launchRec),
	}
	rt.Queue = rt.Ctx.CreateCommandQueue()
	rt.mem = NewMemoryManager(rt.Ctx.GlobalMemBytes())
	rt.mon = &Monitor{
		OnJIT:      rt.jitProgram,
		OnSchedule: rt.scheduleKernel,
		OnPass:     rt.passthrough,
	}
	rt.wg.Add(1)
	go rt.serve()
	return rt
}

// NewClusterRuntime starts the accelOS daemon over a pool of platforms.
// Kernel execution requests are placed on a pool member by the cluster
// placement policy (nil means least-loaded); the §3 share plan then
// divides only that device among its resident kernels, with each
// application acting as one tenant. Memory management and JIT
// compilation stay on the primary platform (plats[0]); this in-process
// reproduction shares one functional store, as buffers are plain host
// memory.
func NewClusterRuntime(plats []*opencl.Platform, pol cluster.Policy) *Runtime {
	return NewBoundedClusterRuntime(plats, pol, 0)
}

// NewBoundedClusterRuntime is NewClusterRuntime with an admission bound:
// each pool member runs at most maxResident kernels concurrently (0 =
// unbounded). Excess submissions wait in the device's run queue; the
// completion event that frees a slot admits and launches them — the
// pool's membership events drive the whole live scheduling loop.
func NewBoundedClusterRuntime(plats []*opencl.Platform, pol cluster.Policy, maxResident int) *Runtime {
	if len(plats) == 0 {
		panic("accelos: cluster runtime needs at least one platform")
	}
	rt := NewRuntime(plats[0])
	devs := make([]*device.Platform, len(plats))
	for i, p := range plats {
		devs[i] = p.Dev
	}
	rt.plats = plats
	rt.pool = cluster.NewPool(devs, pol, maxResident)
	rt.pool.SetObserver(rt.onPoolEvent)
	rt.stats.DeviceLaunches = make([]int, len(plats))
	return rt
}

// Pool exposes the device pool of a cluster runtime (nil otherwise).
func (rt *Runtime) Pool() *cluster.Pool { return rt.pool }

// ErrAdmissionRejected fails a kernel execution's event when the
// admission controller refused it outright: the placement policy's
// device had both a full resident set and a full run queue (see
// cluster.Pool.SetMaxQueued). The tenant's overflow is counted, not
// silently queued without bound.
var ErrAdmissionRejected = errors.New("accelos: admission rejected: device run queue full")

// SetTelemetry installs the runtime's observability sinks: tr receives
// kernel-lifecycle/slice/replan trace spans, reg the per-tenant and
// per-device metrics, and score one shared/alone sample per completed
// kernel for the live §7.4 scorecard. Any may be nil. The sinks also
// cover the runtime's OpenCL context, so application transfer queues
// report DMA spans and byte counts. Call once, before connecting
// applications — the fields are read without locks from then on.
func (rt *Runtime) SetTelemetry(tr *telemetry.Tracer, reg *telemetry.Registry, score *metrics.LiveScorecard) {
	rt.tracer = tr
	rt.reg = reg
	rt.score = score
	rt.Ctx.SetTracer(tr)
	rt.Ctx.SetMetrics(reg)
	// Warp execution stats flow from the VM through the machine pools
	// into per-kernel metrics: occupancy (percent of warp lanes filled)
	// and divergence fallbacks onto the scalar path.
	var sink interp.WarpStatsSink
	if reg != nil {
		sink = warpTelemetry{reg}
	}
	rt.Plat.Machines().SetWarpStats(sink)
	for _, plat := range rt.plats {
		if plat != rt.Plat {
			plat.Machines().SetWarpStats(sink)
		}
	}
	// Shared-program-cache hits and misses, labeled with the cached
	// program's tier, make tier promotions and cold compiles observable.
	if reg != nil {
		interp.SetCacheMetrics(cacheTelemetry{reg})
	} else {
		interp.SetCacheMetrics(nil)
	}
	rt.wireTierTelemetry()
}

// cacheTelemetry adapts interp shared-program-cache events onto the
// telemetry registry.
type cacheTelemetry struct{ reg *telemetry.Registry }

func (c cacheTelemetry) ProgramCacheHit(tier int) {
	c.reg.Counter("program_cache_hits_total", telemetry.L("tier", strconv.Itoa(tier))).Inc()
}

func (c cacheTelemetry) ProgramCacheMiss(tier int) {
	c.reg.Counter("program_cache_misses_total", telemetry.L("tier", strconv.Itoa(tier))).Inc()
}

// EnableTiering switches the runtime to tiered execution: JIT stops
// optimizing eagerly, first launches run a cheap tier-0 compile, and
// the returned controller recompiles hot kernels in the background
// (see interp.TierOptions for the knobs). Call once, before connecting
// applications, and Close the controller after Shutdown. Order with
// SetTelemetry is immaterial — whichever comes second wires the
// promotion metrics.
func (rt *Runtime) EnableTiering(opts interp.TierOptions) *interp.TierController {
	tc := interp.NewTierController(opts)
	rt.tier = tc
	rt.Plat.Machines().SetTierController(tc)
	for _, plat := range rt.plats {
		if plat != rt.Plat {
			plat.Machines().SetTierController(tc)
		}
	}
	rt.wireTierTelemetry()
	return tc
}

// Tiering returns the controller installed by EnableTiering (nil
// without one).
func (rt *Runtime) Tiering() *interp.TierController { return rt.tier }

// wireTierTelemetry connects the tier controller's promotion events to
// the metrics registry; a no-op until both exist.
func (rt *Runtime) wireTierTelemetry() {
	tc, reg := rt.tier, rt.reg
	if tc == nil || reg == nil {
		return
	}
	tc.SetEventSink(func(ev interp.TierEvent) {
		tier := strconv.Itoa(ev.Tier)
		for _, k := range ev.Kernels {
			reg.Counter("tier_promotions_total",
				telemetry.L("kernel", k), telemetry.L("tier", tier)).Inc()
		}
		reg.Histogram("tier_compile_ns", telemetry.L("tier", tier)).Observe(ev.CompileNs)
	})
}

// warpTelemetry adapts interp warp-launch stats onto the telemetry
// registry: a warp_occupancy histogram (percent, one observation per
// launch) and a divergence_fallbacks_total counter, labeled by kernel.
type warpTelemetry struct{ reg *telemetry.Registry }

func (w warpTelemetry) ObserveWarpLaunch(st interp.WarpLaunchStats) {
	if st.Warps > 0 && st.Width > 0 {
		pct := 100 * st.Lanes / (st.Warps * int64(st.Width))
		w.reg.Histogram("warp_occupancy", telemetry.L("kernel", st.Kernel)).Observe(pct)
	}
	w.reg.Counter("divergence_fallbacks_total", telemetry.L("kernel", st.Kernel)).Add(st.Spills)
}

// SetProfiler installs a VM execution profiler on every platform the
// runtime launches kernels on (nil removes it). Sampled per-opcode and
// per-block profiles then accumulate for each kernel the interpreter
// runs; see interp.NewProfiler for the sampling knobs.
func (rt *Runtime) SetProfiler(p *interp.Profiler) {
	rt.Plat.Machines().SetProfiler(p)
	for _, plat := range rt.plats {
		if plat != rt.Plat {
			plat.Machines().SetProfiler(p)
		}
	}
}

// Shutdown stops the daemon after draining pending requests.
func (rt *Runtime) Shutdown() {
	close(rt.quit)
	rt.wg.Wait()
}

// Stats returns a snapshot of runtime counters.
func (rt *Runtime) Stats() Stats {
	rt.statsMu.Lock()
	defer rt.statsMu.Unlock()
	s := rt.stats
	if rt.stats.DeviceLaunches != nil {
		s.DeviceLaunches = append([]int(nil), rt.stats.DeviceLaunches...)
	}
	return s
}

// Memory exposes the memory manager (for tests and monitoring).
func (rt *Runtime) Memory() *MemoryManager { return rt.mem }

// Monitor exposes the FSM (for tests and monitoring).
func (rt *Runtime) Monitor() *Monitor { return rt.mon }

func (rt *Runtime) serve() {
	defer rt.wg.Done()
	for {
		select {
		case req := <-rt.reqCh:
			err := rt.mon.Handle(req)
			if req.reply != nil && req.Kind != ReqKernelExec {
				req.reply <- err
			}
		case <-rt.quit:
			// Drain whatever is already queued, then stop.
			for {
				select {
				case req := <-rt.reqCh:
					err := rt.mon.Handle(req)
					if req.reply != nil && req.Kind != ReqKernelExec {
						req.reply <- err
					}
				default:
					return
				}
			}
		}
	}
}

func (rt *Runtime) submit(req *Request) error {
	req.reply = make(chan error, 1)
	rt.reqCh <- req
	return <-req.reply
}

// submitAsync hands a request to the daemon without waiting for a
// reply: the request's event carries the outcome. This is the
// non-blocking path that lets the Kernel Scheduler see an application's
// whole pending window while earlier submissions are still in flight.
func (rt *Runtime) submitAsync(req *Request) {
	rt.reqCh <- req
}

// jitProgram is scenario (a) of the FSM: compile the source, clone,
// transform, and keep both modules. The application keeps launching
// kernels under their original names; the transformed module provides
// them.
func (rt *Runtime) jitProgram(req *Request) error {
	p := req.Prog
	orig, err := clc.Compile(p.Source, fmt.Sprintf("app%d_prog", req.App.ID))
	if err != nil {
		return fmt.Errorf("accelos: program build failed: %w", err)
	}
	trans := ir.CloneModule(orig)
	res, err := accelpass.Transform(trans)
	if err != nil {
		return fmt.Errorf("accelos: JIT transformation failed: %w", err)
	}
	p.orig = orig
	p.trans = res.Module
	p.infos = res.Kernels
	// Run the O1 optimization pipeline (mem2reg + constfold + dce +
	// simplifycfg) over a clone of the transformed module and adopt it
	// on success: the scheduling wrapper's dequeue loop and the
	// computation function both shed their alloca traffic before any
	// slice executes. The clone matters — the pipeline mutates
	// pass-by-pass, so a mid-pipeline failure must not leave the app's
	// module half-transformed; on error the intact memory-form module
	// stays in service.
	if rt.tier != nil {
		// Tiered execution: defer all optimization. The first launch
		// resolves a cheap tier-0 compile through the controller, and the
		// O1+profile-guided recompile happens in the background once the
		// kernel proves hot.
	} else if opt := ir.CloneModule(p.trans); passes.RunO1(opt) == nil {
		p.trans = opt
		// Bytecode lowering would re-run the pipeline on a private
		// clone; the module is already in optimized form, so skip it —
		// but keep warp dispatch tables, which Opt does not imply.
		interp.ShareProgram(interp.CompileModuleOpts(p.trans,
			interp.CompileOpts{WarpWidth: interp.DefaultWarpWidth}))
	} else {
		interp.SharedProgram(p.trans)
	}
	rt.statsMu.Lock()
	rt.stats.ProgramsJITed++
	rt.statsMu.Unlock()
	return nil
}

// scheduleKernel is scenario (b): the Kernel Scheduler builds the
// Virtual NDRange and hands the execution to the sliced engine. The
// kernel runs as a sequence of work-group-range slices on a pooled
// interpreter machine with buffers bound zero-copy; on every arrival
// and completion the scheduler re-runs the §3 plan over the resident
// set and pushes the resized PhysWGs/Chunk to the in-flight handles at
// their next slice boundary — the paper's §5 dynamic adaptation, live.
//
// Submissions are asynchronous: the request's event reports the
// outcome. A submission with an incomplete wait list is registered as
// pending immediately — the scheduler sees the app's whole dependency
// window — and admitted to a device when the last dependency completes.
func (rt *Runtime) scheduleKernel(req *Request) error {
	k := req.Kern
	ev := req.Event
	info := k.prog.infos[k.name]
	if info == nil {
		err := fmt.Errorf("accelos: kernel %q has no JIT metadata", k.name)
		ev.Fail(err)
		return err
	}
	// Repeat watchdog offenders are refused before they consume a
	// scheduler slot: one tenant's runaway kernel must not keep
	// re-entering the fleet to burn its deadline over and over.
	if rt.isQuarantined(req.App.Name, k.name) {
		err := fmt.Errorf("accelos: kernel %q (tenant %q): %w", k.name, req.App.Name, ErrKernelQuarantined)
		rt.reg.Counter("admission_rejections_total", telemetry.L("tenant", req.App.Name)).Add(1)
		ev.Fail(err)
		return err
	}
	nd := req.ND
	if err := nd.Validate(); err != nil {
		ev.Fail(err)
		return err
	}
	cl, err := k.toCL()
	if err != nil {
		ev.Fail(err)
		return err
	}
	// Describe this execution for the resource-sharing algorithm.
	exec := &sim.KernelExec{
		WGSize:             nd.WGSize(),
		NumWGs:             nd.TotalGroups(),
		LocalBytes:         info.OrigLocalBytes,
		RegsPerThread:      int64(info.Regs),
		Chunk:              int64(info.Chunk),
		TransRegsPerThread: int64(info.Regs) + 1,
		TransLocalBytes:    info.LocalBytes,
	}

	rt.activeMu.Lock()
	id := rt.nextExec
	rt.nextExec++
	exec.ID = id
	rt.active[id] = exec
	rt.activeMu.Unlock()
	rt.mon.KernelQueued()

	rec := &launchRec{
		id:      id,
		app:     req.App.Name,
		kern:    k.name,
		exec:    exec,
		devIdx:  -1,
		mod:     k.prog.trans,
		cl:      cl,
		nd:      nd,
		rtWords: rtlib.BuildRT(nd.Dims, nd.NumGroups(), nd.Local, info.Chunk),
		bufs:    req.Bufs,
		ev:      ev,
		root:    rt.tracer.NewID(),
	}

	deferred := false
	for _, w := range req.Waits {
		if w != nil && !w.Status().Terminal() {
			deferred = true
			break
		}
	}
	if deferred {
		rt.statsMu.Lock()
		rt.stats.WaitDeferred++
		rt.statsMu.Unlock()
	}
	// Admission runs when the wait list drains (immediately for an empty
	// or already-complete one). A failed dependency abandons the
	// execution and propagates the cause to its event.
	opencl.WhenAll(req.Waits, func(depErr error) {
		if depErr != nil {
			rt.abandon(rec, fmt.Errorf("accelos: kernel %q: wait-list dependency failed: %w", rec.kern, depErr), "wait-failed")
			return
		}
		rt.admit(rec)
	})
	return nil
}

// abandon retires an execution that will not run (again) — failed wait
// list, refused admission, or a relaunch the pool rejected — and fails
// its event with the cause; status labels the kernel in the metrics
// registry. rec.started distinguishes the never-launched case from a
// relaunch cut short, so the monitor's running count stays balanced.
func (rt *Runtime) abandon(rec *launchRec, err error, status string) {
	rt.activeMu.Lock()
	delete(rt.active, rec.id)
	rt.activeMu.Unlock()
	rt.mon.KernelRetired(rec.started)
	rec.stopWatchdog()
	rec.ev.Fail(err)
	rt.recordKernel(rec, status)
}

// admit hands a wait-released execution to a device: on a cluster
// runtime through the placement policy and pool admission control, on a
// single device straight to the sliced launch path.
func (rt *Runtime) admit(rec *launchRec) {
	// The wait list just drained: the command leaves the pending window
	// for the scheduler proper (profiling's queued→submitted boundary).
	rec.ev.MarkSubmitted()
	if rt.pool != nil {
		// Cluster path: the placement policy routes the request to a
		// pool member. The record is parked BEFORE Submit so that every
		// admission — immediate, promoted from the run queue by a
		// completion, or migrated by a rebalance — reaches the launch
		// path the same way: as a pool membership event handled by
		// onPoolEvent. Parking first closes the window where a
		// concurrent completion could admit the request before the
		// scheduler has registered it.
		rec.ce = &sim.ClusterExec{K: rec.exec, Tenant: rec.app}
		rt.launchMu.Lock()
		rt.pending[rec.ce] = rec
		rt.launchMu.Unlock()
		rt.submitToPool(rec)
		return
	}
	rt.startLaunch(rec)
}

// submitToPool hands a parked record to pool placement. Used for the
// first admission, for queued orphans of a failed device, and for
// relaunches; in every case the record is already in pending, so the
// resulting membership event finds it.
func (rt *Runtime) submitToPool(rec *launchRec) {
	switch _, kind := rt.pool.Submit(rec.ce); kind {
	case cluster.EvQueued:
		rt.statsMu.Lock()
		rt.stats.QueuedAdmissions++
		rt.statsMu.Unlock()
		rt.reg.Counter("admission_queued_total", telemetry.L("tenant", rec.app)).Add(1)
	case cluster.EvParked:
		// No healthy device: the pool holds the request until a
		// HealDevice re-admits it; the record stays in pending.
		rt.reg.Counter("launches_parked_total", telemetry.L("tenant", rec.app)).Add(1)
	case cluster.EvRejected:
		// The request never joined the pool: un-park it here (the
		// synchronous return is the only signal; no membership event
		// will claim it) and fail the application's event.
		rt.launchMu.Lock()
		delete(rt.pending, rec.ce)
		rt.launchMu.Unlock()
		rt.statsMu.Lock()
		rt.stats.Rejected++
		rt.statsMu.Unlock()
		rt.reg.Counter("admission_rejections_total", telemetry.L("tenant", rec.app)).Add(1)
		rt.abandon(rec, fmt.Errorf("accelos: kernel %q: %w", rec.kern, ErrAdmissionRejected), "rejected")
	}
}

// onPoolEvent is the cluster runtime's scheduling loop: installed as the
// pool observer, it turns membership events into launches and re-plans.
func (rt *Runtime) onPoolEvent(ev cluster.PoolEvent) {
	switch ev.Kind {
	case cluster.EvAdmitted, cluster.EvMigrated:
		rt.launchMu.Lock()
		rec := rt.pending[ev.Exec]
		delete(rt.pending, ev.Exec)
		rt.launchMu.Unlock()
		if rec != nil {
			rec.devIdx = ev.Dev
			rt.startLaunch(rec)
		}
	case cluster.EvCompleted:
		// §5 dynamic adaptation on completion: regrow the survivors'
		// shares, then let an idle device steal queued work from its
		// peers (the resulting EvMigrated events re-enter this loop).
		// Unbounded pools never queue, so they skip the donor scan.
		rt.replan(ev.Dev)
		if rt.pool.Bounded() {
			rt.pool.Rebalance()
		}
	case cluster.EvQueued:
		// Nothing to do: the request waits for the admission event.
	case cluster.EvRejected:
		// Handled synchronously by admit on Submit's return value; the
		// event exists for external pool observers.
	case cluster.EvDeviceFailed:
		rt.reg.Counter("device_failures_total", telemetry.L("dev", strconv.Itoa(ev.Dev))).Inc()
	case cluster.EvEvicted:
		rt.onEviction(ev)
	case cluster.EvDeviceHealed, cluster.EvParked:
		// A heal re-admits the parked set as EvAdmitted/EvQueued events;
		// parking is counted by submitToPool on the synchronous return.
	}
}

// startLaunch binds the execution to a pooled interpreter machine on
// its device, re-plans the device (the arrival shrinks resident peers'
// shares at their next slice boundary), and drives the slices in the
// execution's own goroutine.
func (rt *Runtime) startLaunch(rec *launchRec) {
	// A buffer released while the execution waited on its dependencies
	// or in a device run queue fails the execution before it binds.
	if err := rec.releasedArg(); err != nil {
		rt.retire(rec)
		rec.ev.Fail(err)
		rt.recordKernel(rec, "failed")
		return
	}
	plat := rt.Plat
	if rt.pool != nil && rec.devIdx >= 0 {
		plat = rt.plats[rec.devIdx]
	}
	h, err := opencl.NewLaunchHandle(plat, rec.mod, rec.cl, rec.nd, rec.rtWords, 1, rec.rtWords[rtlib.RTChunk])
	if err != nil {
		rt.retire(rec)
		rec.ev.Fail(err)
		rt.recordKernel(rec, "failed")
		return
	}
	rt.mu.Lock()
	if rt.sliceRounds > 0 {
		h.SetSliceRounds(rt.sliceRounds)
	}
	rt.mu.Unlock()
	// Register handle and record together under the launch lock: the
	// eviction handler and the watchdog both resolve "the handle
	// currently driving this execution" through it, and relaunches swap
	// it. A relaunch also resumes the consumed prefix — the virtual
	// groups completed before the old device failed stay completed.
	rt.launchMu.Lock()
	rec.h = h
	resumeAt := rec.resumeAt
	rt.launches[rec.id] = rec
	rt.launchMu.Unlock()
	if resumeAt > 0 {
		h.ResumeAt(resumeAt)
	}
	if !rec.started {
		rec.started = true
		rt.mon.KernelStarted()
	}
	rt.armWatchdog(rec)

	rt.statsMu.Lock()
	rt.stats.KernelsLaunched++
	if rec.devIdx >= 0 {
		rt.stats.DeviceLaunches[rec.devIdx]++
	}
	rt.statsMu.Unlock()

	rec.ev.MarkRunning()
	rt.replan(rec.devIdx)
	go rt.drive(rec, h)
}

// drive executes the launch slice by slice on its own goroutine, then
// settles the outcome: relaunch after a device failure (budget
// permitting), a typed failure for exhausted relaunches and watchdog
// kills, or normal completion.
func (rt *Runtime) drive(rec *launchRec, h *opencl.LaunchHandle) {
	var lerr error
	traced := rt.tracer != nil || rt.reg != nil
	slice := 0
	for {
		// A buffer released mid-execution cancels the launch at the
		// next slice boundary instead of racing on the bytes; a
		// watchdog verdict that landed while the record was off a
		// device (parked, or between relaunches) lands here too.
		if rerr := rec.releasedArg(); rerr != nil {
			h.Cancel(rerr)
		}
		if rec.timedOut.Load() {
			h.Cancel(fmt.Errorf("accelos: kernel %q: %w", rec.kern, ErrKernelTimeout))
		}
		start := time.Now()
		done, serr := h.Step()
		// Slice wall time approximates the kernel's isolated machine
		// share: it accumulates into "alone" for the live scorecard.
		d := time.Since(start)
		rec.busy += d
		if traced {
			rt.recordSlice(rec, h.MachineName(), slice, start, d)
		}
		slice++
		if done {
			lerr = serr
			break
		}
	}
	if lerr != nil && errors.Is(lerr, errDeviceEvicted) && !rec.timedOut.Load() {
		// The device failed under the launch. The cancellation landed at
		// a slice boundary, so the consumed prefix is intact in the
		// host-resident buffers; relaunch the remaining range elsewhere.
		if rt.tryRelaunch(rec, h) {
			return // re-parked; the next admission starts a new drive
		}
		lerr = fmt.Errorf("accelos: kernel %q: %w (%d relaunches consumed): %v",
			rec.kern, ErrDeviceLost, rec.relaunches, lerr)
	}
	if lerr != nil && rec.timedOut.Load() {
		// The watchdog killed it — mid-slice (machine interrupt trap) or
		// at a boundary (cancel). Either way the typed cause wins.
		if !errors.Is(lerr, ErrKernelTimeout) {
			lerr = fmt.Errorf("accelos: kernel %q on dev %s: %w: %v",
				rec.kern, rec.devLabel(), ErrKernelTimeout, lerr)
		}
		rt.noteWatchdogKill(rec)
	}
	rec.stopWatchdog()
	rt.retire(rec)
	if lerr != nil {
		rec.ev.Fail(lerr)
		rt.recordKernel(rec, "failed")
	} else {
		rec.ev.Complete()
		rt.recordKernel(rec, "ok")
	}
}

// devLabel renders the execution's device index for metric labels
// (single-device runtimes launch everything on device 0).
func (rec *launchRec) devLabel() string {
	if rec.devIdx >= 0 {
		return strconv.Itoa(rec.devIdx)
	}
	return "0"
}

// recordSlice emits one slice-execution span on the machine's trace
// thread, parented to the kernel's root span, plus the slice-duration
// histogram sample.
func (rt *Runtime) recordSlice(rec *launchRec, mach string, slice int, start time.Time, d time.Duration) {
	if mach == "" {
		mach = "mach"
	}
	rt.tracer.Complete(rec.root, "devices", mach, "slice", rec.kern,
		start, start.Add(d),
		telemetry.Arg{Key: "tenant", Val: rec.app},
		telemetry.Arg{Key: "slice", Val: strconv.Itoa(slice)},
		telemetry.Arg{Key: "dev", Val: rec.devLabel()})
	rt.reg.Histogram("slice_ns",
		telemetry.L("tenant", rec.app), telemetry.L("dev", rec.devLabel())).Observe(int64(d))
}

// recordKernel emits the execution's lifecycle telemetry once its event
// is terminal: the root kernel span (enqueue→retire) with wait-list /
// schedule / execute children derived from the event's profiling
// stamps, the per-tenant latency histograms and kernel counter, and —
// for successful kernels — the shared/alone sample feeding the live
// §7.4 scorecard.
func (rt *Runtime) recordKernel(rec *launchRec, status string) {
	tr, reg, sc := rt.tracer, rt.reg, rt.score
	if tr == nil && reg == nil && sc == nil {
		return
	}
	p, err := rec.ev.ProfilingInfo()
	if err != nil {
		return // event not terminal: nothing trustworthy to record
	}
	dev := rec.devLabel()
	if tr != nil {
		thread := "exec-" + strconv.Itoa(rec.id)
		tr.CompleteAs(rec.root, 0, rec.app, thread, "kernel", rec.kern, p.Queued, p.Complete,
			telemetry.Arg{Key: "dev", Val: dev},
			telemetry.Arg{Key: "status", Val: status})
		// Children cover the phases the execution actually reached; an
		// abandoned kernel (failed wait list, rejected admission) has no
		// running stamp and gets only the phases before the cut.
		if !p.Submitted.IsZero() {
			tr.Complete(rec.root, rec.app, thread, "kernel", "wait-list", p.Queued, p.Submitted)
		}
		if !p.Running.IsZero() {
			tr.Complete(rec.root, rec.app, thread, "kernel", "schedule", p.Submitted, p.Running)
			tr.Complete(rec.root, rec.app, thread, "kernel", "execute", p.Running, p.Complete)
		}
	}
	if reg != nil {
		klabels := []telemetry.Label{
			telemetry.L("tenant", rec.app), telemetry.L("dev", dev), telemetry.L("status", status)}
		if rt.tier != nil {
			// Per-tier execution counts, only under tiered execution so
			// the label set stays stable for non-tiered deployments. The
			// handle is nil for kernels that never launched (failed wait
			// list, rejected admission): those count as tier 0.
			t := 0
			if rec.h != nil {
				t = rec.h.Tier()
			}
			klabels = append(klabels, telemetry.L("tier", strconv.Itoa(t)))
		}
		reg.Counter("kernels_total", klabels...).Inc()
		if !p.Running.IsZero() {
			reg.Histogram("enqueue_latency_ns", telemetry.L("tenant", rec.app)).
				Observe(int64(p.Running.Sub(p.Queued)))
			reg.Histogram("queue_delay_ns", telemetry.L("tenant", rec.app)).
				Observe(int64(p.LaunchDelay()))
		}
	}
	if sc != nil && status == "ok" {
		sc.AddKernel(rec.app, p.Total(), rec.busy)
	}
}

// releasedArg reports the first of the execution's argument buffers the
// application has released, if any.
func (rec *launchRec) releasedArg() error {
	for _, b := range rec.bufs {
		if b.Released() {
			return fmt.Errorf("accelos: kernel %q: %w", rec.kern, opencl.ErrBufferReleased)
		}
	}
	return nil
}

// retire removes a finished (or failed) execution from every registry
// and triggers the completion re-plan for its device's survivors.
func (rt *Runtime) retire(rec *launchRec) {
	rt.activeMu.Lock()
	delete(rt.active, rec.id)
	rt.activeMu.Unlock()
	rt.mon.KernelRetired(rec.started)
	rt.launchMu.Lock()
	delete(rt.launches, rec.id)
	rt.launchMu.Unlock()
	if rt.pool != nil && rec.ce != nil {
		// Complete emits EvCompleted; onPoolEvent re-plans from there.
		rt.pool.Complete(rec.devIdx, rec.ce)
		return
	}
	rt.replan(-1)
}

// replan re-runs the §3 resource-sharing algorithm over the current
// resident set (one device of the pool, or the whole platform) and
// pushes the result to every in-flight launch handle, which applies it
// at its next slice boundary.
func (rt *Runtime) replan(devIdx int) {
	rt.replanMu.Lock()
	defer rt.replanMu.Unlock()
	var launches []*sim.Launch
	if rt.pool != nil && devIdx >= 0 {
		resident := rt.pool.ResidentOn(devIdx)
		kes := make([]*sim.KernelExec, len(resident))
		tenants := make([]string, len(resident))
		for i, r := range resident {
			kes[i] = r.K
			tenants[i] = r.Tenant
		}
		launches = PlanTenantShares(rt.plats[devIdx].Dev, kes, tenants, nil, false)
	} else {
		// Plan over launched executions only: rt.active also holds the
		// pending window (wait-deferred kernels), and allocating device
		// share to kernels that cannot run yet would shrink the running
		// set's slices while that share sat idle.
		rt.launchMu.Lock()
		kes := make([]*sim.KernelExec, 0, len(rt.launches))
		for _, r := range rt.launches {
			kes = append(kes, r.exec)
		}
		rt.launchMu.Unlock()
		launches = PlanShares(rt.Plat.Dev, kes, false)
	}
	if len(launches) == 0 {
		return
	}
	rt.mon.Reschedule()
	rt.launchMu.Lock()
	for _, l := range launches {
		rec := rt.launches[l.K.ID]
		if rec == nil || rec.h == nil {
			continue
		}
		rec.h.UpdatePlan(l.PhysWGs, l.Chunk)
		rt.planLog = append(rt.planLog, PlanSample{
			App: rec.app, Kernel: rec.kern, ExecID: rec.id,
			PhysWGs: l.PhysWGs, Chunk: l.Chunk,
		})
	}
	rt.launchMu.Unlock()
	rt.statsMu.Lock()
	rt.stats.Replans++
	rt.statsMu.Unlock()
	rt.tracer.Instant(0, "runtime", "scheduler", "replan", "replan", time.Now(),
		telemetry.Arg{Key: "dev", Val: strconv.Itoa(devIdx)},
		telemetry.Arg{Key: "launches", Val: strconv.Itoa(len(launches))})
	rt.reg.Counter("replans_total").Inc()
}

// PlanHistory returns every allocation the dynamic re-planner pushed to
// an in-flight execution, in push order.
func (rt *Runtime) PlanHistory() []PlanSample {
	rt.launchMu.Lock()
	defer rt.launchMu.Unlock()
	return append([]PlanSample(nil), rt.planLog...)
}

// SetSliceRounds tunes the slice granularity of subsequently scheduled
// kernels: how many dequeue rounds per physical work-group one slice
// covers. Smaller values return control to the scheduler more often, so
// re-plans land faster; 0 keeps opencl.DefaultSliceRounds.
func (rt *Runtime) SetSliceRounds(n int64) {
	rt.mu.Lock()
	rt.sliceRounds = n
	rt.mu.Unlock()
}

// passthrough is scenario (c): accelOS does not intervene.
func (rt *Runtime) passthrough(req *Request) error {
	rt.statsMu.Lock()
	rt.stats.Passthroughs++
	rt.statsMu.Unlock()
	if req.Other != nil {
		return req.Other()
	}
	return nil
}

// ActiveExecutions returns how many kernel executions are currently
// in flight.
func (rt *Runtime) ActiveExecutions() int {
	rt.activeMu.Lock()
	defer rt.activeMu.Unlock()
	return len(rt.active)
}

// InstrCountOf reports the JIT instruction count of a built kernel (used
// by tooling).
func (p *Program) InstrCountOf(name string) (int, error) {
	info := p.infos[name]
	if info == nil {
		return 0, fmt.Errorf("accelos: no metadata for kernel %q", name)
	}
	return info.InstrCount, nil
}

// AdaptiveChunkOf reports the §6.4 chunk chosen for a kernel.
func (p *Program) AdaptiveChunkOf(name string) (int, error) {
	info := p.infos[name]
	if info == nil {
		return 0, fmt.Errorf("accelos: no metadata for kernel %q", name)
	}
	return info.Chunk, nil
}
