package accelos

import (
	"fmt"
	"sync"

	"repro/internal/accelpass"
	"repro/internal/clc"
	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/ir"
	"repro/internal/opencl"
	"repro/internal/rtlib"
	"repro/internal/sim"
)

// Runtime is the accelOS background system process (level 1 of Fig. 5):
// the Application Monitor, the JIT compiler front door, the Kernel
// Scheduler and the memory manager, sitting between ProxyCL applications
// and the standard OpenCL system interface.
type Runtime struct {
	Plat  *opencl.Platform
	Ctx   *opencl.Context
	Queue *opencl.CommandQueue

	// plats and pool are set when the runtime is constructed over a
	// device pool (NewClusterRuntime): kernel executions are then placed
	// per-device by the cluster policy and shares are planned against
	// the chosen device's resident set only.
	plats []*opencl.Platform
	pool  *cluster.Pool

	mon *Monitor
	mem *MemoryManager

	reqCh chan *Request
	quit  chan struct{}
	wg    sync.WaitGroup

	mu      sync.Mutex
	nextApp int

	activeMu sync.Mutex
	active   map[int]*sim.KernelExec // in-flight kernel executions, for share planning
	nextExec int

	statsMu sync.Mutex
	stats   Stats
}

// Stats counts runtime activity for observability and tests.
type Stats struct {
	ProgramsJITed   int
	KernelsLaunched int
	Passthroughs    int
	// DeviceLaunches counts launches per pool member (cluster runtimes
	// only; nil for single-device runtimes).
	DeviceLaunches []int
}

// Request is one intercepted OpenCL call.
type Request struct {
	Kind ReqKind
	App  *App

	Prog  *Program
	Kern  *KernelHandle
	ND    opencl.NDRange
	Other func() error

	reply chan error
}

// NewRuntime starts the accelOS daemon on a platform.
func NewRuntime(plat *opencl.Platform) *Runtime {
	rt := &Runtime{
		Plat:   plat,
		Ctx:    plat.CreateContext(),
		reqCh:  make(chan *Request, 64),
		quit:   make(chan struct{}),
		active: make(map[int]*sim.KernelExec),
	}
	rt.Queue = rt.Ctx.CreateCommandQueue()
	rt.mem = NewMemoryManager(rt.Ctx.GlobalMemBytes())
	rt.mon = &Monitor{
		OnJIT:      rt.jitProgram,
		OnSchedule: rt.scheduleKernel,
		OnPass:     rt.passthrough,
	}
	rt.wg.Add(1)
	go rt.serve()
	return rt
}

// NewClusterRuntime starts the accelOS daemon over a pool of platforms.
// Kernel execution requests are placed on a pool member by the cluster
// placement policy (nil means least-loaded); the §3 share plan then
// divides only that device among its resident kernels, with each
// application acting as one tenant. Memory management and JIT
// compilation stay on the primary platform (plats[0]); this in-process
// reproduction shares one functional store, as buffers are plain host
// memory.
func NewClusterRuntime(plats []*opencl.Platform, pol cluster.Policy) *Runtime {
	if len(plats) == 0 {
		panic("accelos: cluster runtime needs at least one platform")
	}
	rt := NewRuntime(plats[0])
	devs := make([]*device.Platform, len(plats))
	for i, p := range plats {
		devs[i] = p.Dev
	}
	rt.plats = plats
	rt.pool = cluster.NewPool(devs, pol, 0)
	rt.stats.DeviceLaunches = make([]int, len(plats))
	return rt
}

// Pool exposes the device pool of a cluster runtime (nil otherwise).
func (rt *Runtime) Pool() *cluster.Pool { return rt.pool }

// Shutdown stops the daemon after draining pending requests.
func (rt *Runtime) Shutdown() {
	close(rt.quit)
	rt.wg.Wait()
}

// Stats returns a snapshot of runtime counters.
func (rt *Runtime) Stats() Stats {
	rt.statsMu.Lock()
	defer rt.statsMu.Unlock()
	s := rt.stats
	if rt.stats.DeviceLaunches != nil {
		s.DeviceLaunches = append([]int(nil), rt.stats.DeviceLaunches...)
	}
	return s
}

// Memory exposes the memory manager (for tests and monitoring).
func (rt *Runtime) Memory() *MemoryManager { return rt.mem }

// Monitor exposes the FSM (for tests and monitoring).
func (rt *Runtime) Monitor() *Monitor { return rt.mon }

func (rt *Runtime) serve() {
	defer rt.wg.Done()
	for {
		select {
		case req := <-rt.reqCh:
			err := rt.mon.Handle(req)
			if req.reply != nil && req.Kind != ReqKernelExec {
				req.reply <- err
			}
		case <-rt.quit:
			// Drain whatever is already queued, then stop.
			for {
				select {
				case req := <-rt.reqCh:
					err := rt.mon.Handle(req)
					if req.reply != nil && req.Kind != ReqKernelExec {
						req.reply <- err
					}
				default:
					return
				}
			}
		}
	}
}

func (rt *Runtime) submit(req *Request) error {
	req.reply = make(chan error, 1)
	rt.reqCh <- req
	return <-req.reply
}

// jitProgram is scenario (a) of the FSM: compile the source, clone,
// transform, and keep both modules. The application keeps launching
// kernels under their original names; the transformed module provides
// them.
func (rt *Runtime) jitProgram(req *Request) error {
	p := req.Prog
	orig, err := clc.Compile(p.Source, fmt.Sprintf("app%d_prog", req.App.ID))
	if err != nil {
		return fmt.Errorf("accelos: program build failed: %w", err)
	}
	trans := ir.CloneModule(orig)
	res, err := accelpass.Transform(trans)
	if err != nil {
		return fmt.Errorf("accelos: JIT transformation failed: %w", err)
	}
	p.orig = orig
	p.trans = res.Module
	p.infos = res.Kernels
	rt.statsMu.Lock()
	rt.stats.ProgramsJITed++
	rt.statsMu.Unlock()
	return nil
}

// scheduleKernel is scenario (b): the Kernel Scheduler builds the
// Virtual NDRange, chooses the physical work-group allocation against
// the currently active executions (§3), alters the global size and
// launches the transformed kernel. The launch itself runs asynchronously
// so concurrent applications genuinely share the device.
func (rt *Runtime) scheduleKernel(req *Request) error {
	k := req.Kern
	info := k.prog.infos[k.name]
	if info == nil {
		err := fmt.Errorf("accelos: kernel %q has no JIT metadata", k.name)
		req.reply <- err
		return err
	}
	nd := req.ND
	if err := nd.Validate(); err != nil {
		req.reply <- err
		return err
	}
	// Describe this execution for the resource-sharing algorithm.
	exec := &sim.KernelExec{
		WGSize:             nd.WGSize(),
		NumWGs:             nd.TotalGroups(),
		LocalBytes:         info.OrigLocalBytes,
		RegsPerThread:      int64(info.Regs),
		Chunk:              int64(info.Chunk),
		TransRegsPerThread: int64(info.Regs) + 1,
		TransLocalBytes:    info.LocalBytes,
	}

	rt.activeMu.Lock()
	id := rt.nextExec
	rt.nextExec++
	exec.ID = id
	rt.active[id] = exec
	rt.activeMu.Unlock()

	var phys, chunk int64 = 1, 1
	var ce *sim.ClusterExec
	devIdx := -1
	if rt.pool != nil {
		// Cluster path: the placement policy routes the request to a
		// pool member; the §3 plan divides that device among its
		// residents, one tenant per application. The runtime's pool is
		// UNBOUNDED (NewClusterRuntime passes maxResident 0, so Submit
		// always admits): launches must not sit in a run queue here
		// because the caller blocks on completion — per-device share
		// shrinking under load is the §3 backpressure instead. Bounded
		// admission is exercised by the simulated driver (sim.RunCluster).
		ce = &sim.ClusterExec{K: exec, Tenant: req.App.Name}
		devIdx, _ = rt.pool.Submit(ce)
		resident := rt.pool.ResidentOn(devIdx)
		kes := make([]*sim.KernelExec, len(resident))
		tenants := make([]string, len(resident))
		for i, r := range resident {
			kes[i] = r.K
			tenants[i] = r.Tenant
		}
		launches := PlanTenantShares(rt.plats[devIdx].Dev, kes, tenants, nil, false)
		for _, l := range launches {
			if l.K.ID == id {
				phys, chunk = l.PhysWGs, l.Chunk
			}
		}
	} else {
		rt.activeMu.Lock()
		activeSet := make([]*sim.KernelExec, 0, len(rt.active))
		for _, e := range rt.active {
			activeSet = append(activeSet, e)
		}
		rt.activeMu.Unlock()
		launches := PlanShares(rt.Plat.Dev, activeSet, false)
		for _, l := range launches {
			if l.K.ID == id {
				phys, chunk = l.PhysWGs, l.Chunk
			}
		}
	}
	rtWords := rtlib.BuildRT(nd.Dims, nd.NumGroups(), nd.Local, int(chunk))

	rt.statsMu.Lock()
	rt.stats.KernelsLaunched++
	if devIdx >= 0 {
		rt.stats.DeviceLaunches[devIdx]++
	}
	rt.statsMu.Unlock()

	go func() {
		err := opencl.LaunchTransformed(k.prog.trans, k.toCL(), nd, rtWords, phys)
		rt.activeMu.Lock()
		delete(rt.active, id)
		rt.activeMu.Unlock()
		if rt.pool != nil {
			rt.pool.Complete(devIdx, ce)
		}
		req.reply <- err
	}()
	return nil
}

// passthrough is scenario (c): accelOS does not intervene.
func (rt *Runtime) passthrough(req *Request) error {
	rt.statsMu.Lock()
	rt.stats.Passthroughs++
	rt.statsMu.Unlock()
	if req.Other != nil {
		return req.Other()
	}
	return nil
}

// ActiveExecutions returns how many kernel executions are currently
// in flight.
func (rt *Runtime) ActiveExecutions() int {
	rt.activeMu.Lock()
	defer rt.activeMu.Unlock()
	return len(rt.active)
}

// InstrCountOf reports the JIT instruction count of a built kernel (used
// by tooling).
func (p *Program) InstrCountOf(name string) (int, error) {
	info := p.infos[name]
	if info == nil {
		return 0, fmt.Errorf("accelos: no metadata for kernel %q", name)
	}
	return info.InstrCount, nil
}

// AdaptiveChunkOf reports the §6.4 chunk chosen for a kernel.
func (p *Program) AdaptiveChunkOf(name string) (int, error) {
	info := p.infos[name]
	if info == nil {
		return 0, fmt.Errorf("accelos: no metadata for kernel %q", name)
	}
	return info.Chunk, nil
}
