package accelos

import (
	"encoding/binary"
	"errors"
	"strconv"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/opencl"
	"repro/internal/telemetry"
)

// runawaySrc is the runaway kernel for the watchdog tests: long enough to
// blow any reasonable wall-clock deadline, small enough to stay under
// the launch-global instruction budget (64 items x 300k iterations).
const runawaySrc = `
kernel void spin(global int* out, int n)
{
    int i = (int)get_global_id(0);
    int acc = 0;
    int t;
    for (t = 0; t < 300000; ++t) acc += (i + t) & 7;
    if (i < n) out[i] = acc;
}
`

func churnND(n int64) opencl.NDRange {
	return opencl.NDRange{Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{32, 1, 1}}
}

// residentDevice polls the pool for the device carrying the only
// in-flight execution.
func residentDevice(t *testing.T, rt *Runtime) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for d := range rt.Pool().Devices() {
			if len(rt.Pool().ResidentOn(d)) > 0 {
				return d
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no device ever held the launch")
		}
		time.Sleep(time.Millisecond)
	}
}

// verifyChurn checks the churn kernel's output — every virtual group
// ran exactly once iff every element holds its lane id plus one.
func verifyChurn(t *testing.T, buf *BufferHandle, n int64) {
	t.Helper()
	out := make([]byte, n*4)
	if err := buf.Read(0, out); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		want := int32(i%32) + 1
		if got := int32(binary.LittleEndian.Uint32(out[i*4:])); got != want {
			t.Fatalf("out[%d] = %d, want %d (slice lost or re-run across relaunch)", i, got, want)
		}
	}
}

// TestDeviceFailureRelaunchByteIdentical is the headline recovery test:
// a sliced kernel's device fails mid-flight, the remaining virtual-group
// range relaunches on the surviving device, and the result is
// byte-identical to a fault-free run. The failure window is raced, so
// the scenario retries until a relaunch actually happened.
func TestDeviceFailureRelaunchByteIdentical(t *testing.T) {
	plats := opencl.GetPlatforms()
	if len(plats) < 2 {
		t.Skip("needs two device models")
	}
	rt := NewBoundedClusterRuntime(plats, cluster.LeastLoaded(), 2)
	defer rt.Shutdown()
	reg := telemetry.NewRegistry()
	rt.SetTelemetry(nil, reg, nil)
	rt.SetSliceRounds(1) // fine slices: wide failure window, fast cancel

	app := rt.Connect("victim")
	defer app.Close()
	const n = 512 * 32
	k, buf := setupIntKernel(t, app, churnSrc, "churn", n)
	defer buf.Release()

	relaunches := func() int64 {
		return reg.Counter("relaunches_total",
			telemetry.L("kernel", "churn"), telemetry.L("reason", "device-failed")).Value()
	}
	for attempt := 0; attempt < 5; attempt++ {
		base := relaunches()
		done := make(chan error, 1)
		go func() { done <- app.EnqueueKernel(k, churnND(n)) }()
		dev := residentDevice(t, rt)
		rt.Pool().FailDevice(dev)
		if err := <-done; err != nil {
			t.Fatalf("kernel failed instead of relaunching: %v", err)
		}
		rt.Pool().HealDevice(dev)
		if relaunches() > base {
			verifyChurn(t, buf, n)
			if got := reg.Counter("device_failures_total",
				telemetry.L("dev", strconv.Itoa(dev))).Value(); got < 1 {
				t.Errorf("device_failures_total{dev=%d} = %d, want >= 1", dev, got)
			}
			return
		}
		// The kernel drained before the failure landed; clear the buffer
		// and try again.
		if err := buf.Write(0, make([]byte, n*4)); err != nil {
			t.Fatal(err)
		}
		t.Logf("attempt %d: kernel completed before the device failure, retrying", attempt)
	}
	t.Fatal("no attempt caught the kernel in flight")
}

// TestNoHealthyDeviceParksUntilHeal fails the only device before the
// submit: the execution must park (typed EvParked path, counted), wait,
// and complete byte-identically once the device heals.
func TestNoHealthyDeviceParksUntilHeal(t *testing.T) {
	rt := NewBoundedClusterRuntime(opencl.GetPlatforms()[:1], cluster.LeastLoaded(), 2)
	defer rt.Shutdown()
	reg := telemetry.NewRegistry()
	rt.SetTelemetry(nil, reg, nil)

	app := rt.Connect("parked")
	defer app.Close()
	const n = 64 * 32
	k, buf := setupIntKernel(t, app, churnSrc, "churn", n)
	defer buf.Release()

	rt.Pool().FailDevice(0)
	done := make(chan error, 1)
	go func() { done <- app.EnqueueKernel(k, churnND(n)) }()

	deadline := time.Now().Add(5 * time.Second)
	for rt.Pool().Parked() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("submit never parked")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("kernel finished with every device failed: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	rt.Pool().HealDevice(0)
	if err := <-done; err != nil {
		t.Fatalf("parked kernel failed after heal: %v", err)
	}
	verifyChurn(t, buf, n)
	if got := reg.Counter("launches_parked_total", telemetry.L("tenant", "parked")).Value(); got < 1 {
		t.Errorf("launches_parked_total = %d, want >= 1", got)
	}
}

// TestRelaunchBudgetExhaustedDeviceLost disables relaunching entirely
// (MaxRelaunches < 0): the first eviction must fail the execution with
// the typed ErrDeviceLost instead of recovering.
func TestRelaunchBudgetExhaustedDeviceLost(t *testing.T) {
	plats := opencl.GetPlatforms()
	if len(plats) < 2 {
		t.Skip("needs two device models")
	}
	rt := NewBoundedClusterRuntime(plats, cluster.LeastLoaded(), 2)
	defer rt.Shutdown()
	rt.SetSliceRounds(1)
	rt.SetFaultPolicy(FaultPolicy{MaxRelaunches: -1})

	app := rt.Connect("doomed")
	defer app.Close()
	const n = 512 * 32
	k, buf := setupIntKernel(t, app, churnSrc, "churn", n)
	defer buf.Release()

	for attempt := 0; attempt < 5; attempt++ {
		done := make(chan error, 1)
		go func() { done <- app.EnqueueKernel(k, churnND(n)) }()
		dev := residentDevice(t, rt)
		rt.Pool().FailDevice(dev)
		err := <-done
		rt.Pool().HealDevice(dev)
		switch {
		case errors.Is(err, ErrDeviceLost):
			return
		case err == nil:
			t.Logf("attempt %d: kernel completed before the device failure, retrying", attempt)
		default:
			t.Fatalf("err = %v, want ErrDeviceLost", err)
		}
	}
	t.Fatal("no attempt caught the kernel in flight")
}

// TestWatchdogTimeoutAndQuarantine runs a runaway kernel against a
// short wall-clock deadline twice: both launches must die with the
// typed ErrKernelTimeout (aborted mid-slice via the machine interrupt),
// after which the (tenant, kernel) pair is quarantined and the third
// submission is rejected at admission.
func TestWatchdogTimeoutAndQuarantine(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	reg := telemetry.NewRegistry()
	rt.SetTelemetry(nil, reg, nil)
	rt.SetFaultPolicy(FaultPolicy{LaunchDeadline: 50 * time.Millisecond, QuarantineAfter: 2})

	app := rt.Connect("looper")
	defer app.Close()
	const n = 64
	k, buf := setupIntKernel(t, app, runawaySrc, "spin", n)
	defer buf.Release()

	for i := 0; i < 2; i++ {
		start := time.Now()
		err := app.EnqueueKernel(k, churnND(n))
		if !errors.Is(err, ErrKernelTimeout) {
			t.Fatalf("launch %d: err = %v, want ErrKernelTimeout", i, err)
		}
		// The abort must land mid-slice (machine interrupt), not after
		// the kernel ran to completion on its own.
		if d := time.Since(start); d > 10*time.Second {
			t.Fatalf("launch %d took %v — watchdog did not interrupt the slice", i, d)
		}
	}
	if got := rt.WatchdogKills("looper", "spin"); got != 2 {
		t.Fatalf("WatchdogKills = %d, want 2", got)
	}
	if got := reg.Counter("watchdog_kills_total",
		telemetry.L("tenant", "looper"), telemetry.L("kernel", "spin")).Value(); got != 2 {
		t.Errorf("watchdog_kills_total = %d, want 2", got)
	}

	err := app.EnqueueKernel(k, churnND(n))
	if !errors.Is(err, ErrKernelQuarantined) {
		t.Fatalf("post-quarantine launch: err = %v, want ErrKernelQuarantined", err)
	}
	if got := reg.Counter("admission_rejections_total",
		telemetry.L("tenant", "looper")).Value(); got < 1 {
		t.Errorf("admission_rejections_total = %d, want >= 1", got)
	}

	// Quarantine is per (tenant, kernel): the same tenant's other
	// kernels still run. Lift the deadline first — under -race the
	// interpreter is slow enough that even an honest kernel can blow
	// 50ms — which also proves quarantine persists independent of the
	// watchdog that filled it.
	rt.SetFaultPolicy(FaultPolicy{QuarantineAfter: 2})
	if err := app.EnqueueKernel(k, churnND(n)); !errors.Is(err, ErrKernelQuarantined) {
		t.Fatalf("quarantine did not survive the policy change: err = %v", err)
	}
	k2, buf2 := setupIntKernel(t, app, churnSrc, "churn", 64*32)
	defer buf2.Release()
	if err := app.EnqueueKernel(k2, churnND(64*32)); err != nil {
		t.Fatalf("innocent kernel rejected alongside the quarantined one: %v", err)
	}
}
