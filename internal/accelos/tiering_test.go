package accelos

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"time"

	"repro/internal/interp"
	"repro/internal/opencl"
	"repro/internal/telemetry"
)

// spinSrc is a do-while loop so the whole body — two bins, the compare
// and the back-edge — lands in one block and both hot superinstructions
// (bin+bin, bin+cmp+jump) are eligible at tier 1.
const spinSrc = `
kernel void spin(global int* out, int n)
{
    int i = 0;
    int acc = 0;
    do {
        acc += i & 7;
        i = i + 1;
    } while (i < n);
    out[get_global_id(0)] = acc;
}
`

// TestRuntimeTieredTelemetry drives the full tiered lifecycle through
// the runtime: EnableTiering makes the JIT defer optimization, the
// first launch runs the tier-0 program, the background controller
// promotes the now-hot kernel, and a second launch runs the swapped
// tier-1 program — with every step visible in the metrics registry
// (per-tier kernel counts, promotion counter, compile-time histogram,
// and program-cache hit/miss counters labeled by tier).
func TestRuntimeTieredTelemetry(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	tc := rt.EnableTiering(interp.TierOptions{HotInstrs: 1, SampleEvery: 1})
	defer tc.Close()
	reg := telemetry.NewRegistry()
	rt.SetTelemetry(nil, reg, nil)
	defer interp.SetCacheMetrics(nil)

	app := rt.Connect("tenant-t")
	defer app.Close()
	const n = 64
	k, buf := setupIntKernel(t, app, spinSrc, "spin", n)
	defer buf.Release()
	nd := opencl.NDRange{Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{32, 1, 1}}

	want := int32(0) // sum of i&7 for i in [0, n)
	for i := int32(0); i < n; i++ {
		want += i & 7
	}
	launch := func(tag string) {
		t.Helper()
		if err := app.EnqueueKernel(k, nd); err != nil {
			t.Fatalf("%s: enqueue: %v", tag, err)
		}
		out := make([]byte, n*4)
		if err := buf.Read(0, out); err != nil {
			t.Fatalf("%s: read: %v", tag, err)
		}
		app.Finish()
		for i := 0; i < n; i++ {
			if got := int32(binary.LittleEndian.Uint32(out[i*4:])); got != want {
				t.Fatalf("%s: out[%d] = %d, want %d", tag, i, got, want)
			}
		}
	}

	launch("tier-0 launch")

	// HotInstrs 1 makes the single launch hot; the background worker
	// recompiles at tier 1 and hot-swaps.
	deadline := time.Now().Add(10 * time.Second)
	for tc.Promotions() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("tier controller never promoted the hot kernel")
		}
		time.Sleep(time.Millisecond)
	}

	launch("tier-1 launch")

	var text bytes.Buffer
	if err := reg.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, wantLine := range []string{
		// One execution per tier: first launch on the cheap compile,
		// second on the promoted program.
		`kernels_total{dev="0",status="ok",tenant="tenant-t",tier="0"} 1`,
		`kernels_total{dev="0",status="ok",tenant="tenant-t",tier="1"} 1`,
		// Exactly one promotion of this kernel, timed.
		`tier_promotions_total{kernel="spin",tier="1"} 1`,
		`tier_compile_ns_count{tier="1"} 1`,
		// The first resolution cold-compiled tier 0; the post-swap
		// resolution hit the cached tier-1 program.
		`program_cache_misses_total{tier="0"} 1`,
		`program_cache_hits_total{tier="1"}`,
	} {
		if !strings.Contains(text.String(), wantLine) {
			t.Errorf("metrics snapshot missing %q:\n%s", wantLine, text.String())
		}
	}
}
