package accelos

import (
	"fmt"

	"repro/internal/accelpass"
	"repro/internal/ir"
	"repro/internal/opencl"
)

// ProxyCL (level 2 of Fig. 5) is the library applications link instead
// of vendor OpenCL: the same call shapes, transparently routed to the
// accelOS daemon. The paper transports calls over interprocess shared
// memory (shown in the authors' prior work to have negligible overhead);
// this reproduction transports them over an in-process channel, which
// preserves the interposition boundary the paper relies on.

// App is one connected application.
type App struct {
	rt   *Runtime
	ID   int
	Name string
}

// Connect registers an application with the daemon.
func (rt *Runtime) Connect(name string) *App {
	rt.mu.Lock()
	rt.nextApp++
	id := rt.nextApp
	rt.mu.Unlock()
	return &App{rt: rt, ID: id, Name: name}
}

// Close releases everything the application holds.
func (a *App) Close() {
	a.rt.mem.ReleaseApp(a.ID)
}

// Program is the application's handle to a built OpenCL program. The
// runtime stores both the original and the JIT-transformed module; the
// application never sees the difference.
type Program struct {
	app    *App
	Source string

	orig  *ir.Module
	trans *ir.Module
	infos map[string]*accelpass.KernelInfo
}

// CreateProgram intercepts clCreateProgramWithSource+clBuildProgram:
// scenario (a) of the Application Monitor FSM — the JIT compiler
// analyzes and transforms the kernel code.
func (a *App) CreateProgram(src string) (*Program, error) {
	p := &Program{app: a, Source: src}
	err := a.rt.submit(&Request{Kind: ReqProgramCreate, App: a, Prog: p})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// BufferHandle is the application's device memory handle.
type BufferHandle struct {
	app *App
	buf *opencl.Buffer
	// Size in bytes.
	Size int64
}

// CreateBuffer allocates device memory. The accelOS memory manager may
// pause the application (block) until peers release memory (§5).
func (a *App) CreateBuffer(size int64) (*BufferHandle, error) {
	// Pausing happens in the application's own goroutine so the daemon
	// stays responsive.
	if err := a.rt.mem.Alloc(a.ID, size); err != nil {
		return nil, err
	}
	h := &BufferHandle{app: a, Size: size}
	err := a.rt.submit(&Request{Kind: ReqOther, App: a, Other: func() error {
		b, err := a.rt.Ctx.CreateBuffer(size)
		if err != nil {
			return err
		}
		h.buf = b
		return nil
	}})
	if err != nil {
		a.rt.mem.Free(a.ID, size)
		return nil, err
	}
	return h, nil
}

// Release frees the buffer.
func (h *BufferHandle) Release() {
	if h.buf == nil {
		return
	}
	h.buf.Release()
	h.buf = nil
	h.app.rt.mem.Free(h.app.ID, h.Size)
}

// Write copies host bytes into the buffer (shared-memory transport: no
// daemon round trip needed, as in the paper's IPC design).
func (h *BufferHandle) Write(off int64, data []byte) error {
	if h.buf == nil {
		return fmt.Errorf("accelos: buffer released")
	}
	return h.app.rt.Queue.EnqueueWriteBuffer(h.buf, off, data)
}

// Read copies buffer bytes back to the host.
func (h *BufferHandle) Read(off int64, out []byte) error {
	if h.buf == nil {
		return fmt.Errorf("accelos: buffer released")
	}
	return h.app.rt.Queue.EnqueueReadBuffer(h.buf, off, out)
}

// KernelHandle is the application's kernel object with bound arguments.
type KernelHandle struct {
	prog *Program
	name string
	args []kernArg
}

type kernArg struct {
	set bool
	buf *BufferHandle
	i32 *int32
	i64 *int64
	f32 *float32
}

// CreateKernel resolves a kernel by its original name (the JIT keeps
// the name on the scheduling wrapper, so this is transparent).
func (p *Program) CreateKernel(name string) (*KernelHandle, error) {
	f := p.orig.Lookup(name)
	if f == nil || !f.Kernel {
		return nil, fmt.Errorf("accelos: kernel %q not found", name)
	}
	return &KernelHandle{prog: p, name: name, args: make([]kernArg, len(f.Params))}, nil
}

// SetArgBuffer binds a buffer argument.
func (k *KernelHandle) SetArgBuffer(i int, b *BufferHandle) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("accelos: argument %d out of range", i)
	}
	k.args[i] = kernArg{set: true, buf: b}
	return nil
}

// SetArgInt32 binds an int scalar argument.
func (k *KernelHandle) SetArgInt32(i int, v int32) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("accelos: argument %d out of range", i)
	}
	k.args[i] = kernArg{set: true, i32: &v}
	return nil
}

// SetArgInt64 binds a long scalar argument.
func (k *KernelHandle) SetArgInt64(i int, v int64) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("accelos: argument %d out of range", i)
	}
	k.args[i] = kernArg{set: true, i64: &v}
	return nil
}

// SetArgFloat32 binds a float scalar argument.
func (k *KernelHandle) SetArgFloat32(i int, v float32) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("accelos: argument %d out of range", i)
	}
	k.args[i] = kernArg{set: true, f32: &v}
	return nil
}

// toCL materializes an opencl.Kernel with the bound arguments. The
// argument list is sized by the ORIGINAL kernel signature; the Kernel
// Scheduler appends the RT descriptor for the transformed wrapper.
func (k *KernelHandle) toCL() (*opencl.Kernel, error) {
	p := &opencl.Program{Module: k.prog.orig}
	cl, err := p.CreateKernel(k.name)
	if err != nil {
		return nil, fmt.Errorf("accelos: kernel %q: %w", k.name, err)
	}
	for i, a := range k.args {
		switch {
		case a.buf != nil:
			err = cl.SetArgBuffer(i, a.buf.clBuffer())
		case a.i32 != nil:
			err = cl.SetArgInt32(i, *a.i32)
		case a.i64 != nil:
			err = cl.SetArgInt64(i, *a.i64)
		case a.f32 != nil:
			err = cl.SetArgFloat32(i, *a.f32)
		}
		if err != nil {
			return nil, fmt.Errorf("accelos: kernel %q: %w", k.name, err)
		}
	}
	return cl, nil
}

func (h *BufferHandle) clBuffer() *opencl.Buffer { return h.buf }

// EnqueueKernel intercepts clEnqueueNDRangeKernel: scenario (b) — the
// Kernel Scheduler alters the grid and launches the transformed kernel.
// The call blocks until the execution completes (in-order queue
// semantics), but concurrent applications' launches overlap.
func (a *App) EnqueueKernel(k *KernelHandle, nd opencl.NDRange) error {
	for i, arg := range k.args {
		if !arg.set {
			return fmt.Errorf("accelos: kernel %q argument %d not set", k.name, i)
		}
	}
	return a.rt.submit(&Request{Kind: ReqKernelExec, App: a, Kern: k, ND: nd})
}

// Query is an example of scenario (c): a passthrough request that
// accelOS does not intervene in.
func (a *App) Query(fn func() error) error {
	return a.rt.submit(&Request{Kind: ReqOther, App: a, Other: fn})
}
