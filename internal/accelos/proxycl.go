package accelos

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/accelpass"
	"repro/internal/ir"
	"repro/internal/opencl"
)

// ErrAppClosed is returned (possibly wrapped) by every App entry point
// once Close has begun. It is a comparable sentinel so interposition
// layers — in particular the wire protocol — can map the condition to a
// typed code instead of string-matching.
var ErrAppClosed = errors.New("accelos: application closed")

// ProxyCL (level 2 of Fig. 5) is the library applications link instead
// of vendor OpenCL: the same call shapes, transparently routed to the
// accelOS daemon. The paper transports calls over interprocess shared
// memory (shown in the authors' prior work to have negligible overhead);
// this reproduction transports them over an in-process channel, which
// preserves the interposition boundary the paper relies on.
//
// Submissions are event-based: EnqueueKernelAsync and the buffer
// Read/WriteAsync calls return an *opencl.Event immediately, accept wait
// lists, and complete in the background — one application can pipeline
// transfers against in-flight kernels and express whole dependency
// graphs, which the Kernel Scheduler sees as its pending window. The
// event-free EnqueueKernel/Read/Write calls remain as thin blocking
// wrappers.

// App is one connected application.
type App struct {
	rt   *Runtime
	ID   int
	Name string

	// q carries the application's asynchronous buffer transfers: an
	// out-of-order queue, so only wait-list edges order commands.
	q *opencl.CommandQueue

	// group tracks the app's incomplete events for Finish.
	group opencl.EventGroup

	// mu guards the close state: Close may race with enqueues from
	// other goroutines (a daemon connection dropping mid-launch), so
	// every entry point holds an op ticket while it registers work, and
	// Close waits for tickets to drain before tearing down.
	mu      sync.Mutex
	cond    *sync.Cond
	closed  bool
	ops     int
	bufs    []*BufferHandle
	bufHigh int
}

// Connect registers an application with the daemon.
func (rt *Runtime) Connect(name string) *App {
	rt.mu.Lock()
	rt.nextApp++
	id := rt.nextApp
	rt.mu.Unlock()
	q := rt.Ctx.CreateOutOfOrderQueue()
	// The queue reports telemetry (DMA spans and byte counts) under the
	// tenant's name.
	q.SetLabel(name)
	return &App{rt: rt, ID: id, Name: name, q: q}
}

// begin takes an op ticket, failing with ErrAppClosed once Close has
// begun. Every successful begin is paired with end before the entry
// point returns; the work it registered (events, requests) is then
// drained by Close via the event group.
func (a *App) begin() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return ErrAppClosed
	}
	a.ops++
	return nil
}

func (a *App) end() {
	a.mu.Lock()
	a.ops--
	if a.ops == 0 && a.cond != nil {
		a.cond.Broadcast()
	}
	a.mu.Unlock()
}

// Closed reports whether Close has begun.
func (a *App) Closed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.closed
}

// addBuf records a buffer handle so Close can release whatever the
// application still holds. Released handles are compacted out once the
// list doubles past its last high-water mark, so long-lived apps that
// cycle buffers don't grow it without bound.
func (a *App) addBuf(h *BufferHandle) {
	a.mu.Lock()
	if len(a.bufs) >= 2*a.bufHigh+16 {
		live := a.bufs[:0]
		for _, b := range a.bufs {
			if b.handle() != nil {
				live = append(live, b)
			}
		}
		a.bufs = live
		a.bufHigh = len(live)
	}
	a.bufs = append(a.bufs, h)
	a.mu.Unlock()
}

// Close releases everything the application holds. It is safe against
// concurrent in-flight work: new entry points fail with ErrAppClosed,
// registrations already underway are waited out before teardown, and
// the app's remaining buffers are released — cancelling in-flight
// launches at their next slice boundary. Close does not block on the
// outstanding events themselves (they fail or complete asynchronously,
// exactly as a released buffer behaves); callers that need the drain
// call Finish, which remains valid after Close. A second Close is a
// no-op.
func (a *App) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	if a.cond == nil {
		a.cond = sync.NewCond(&a.mu)
	}
	for a.ops > 0 {
		a.cond.Wait()
	}
	bufs := a.bufs
	a.bufs = nil
	a.mu.Unlock()
	for _, h := range bufs {
		h.Release()
	}
	a.rt.mem.ReleaseApp(a.ID)
}

// track registers an event against the app's outstanding set (Finish
// waits for the set to drain).
func (a *App) track(ev *opencl.Event) {
	a.group.Add(ev)
}

// NewControlledEvent returns a tracked event the caller completes
// itself — the hook interposition layers (the wire service) use to
// splice host-side conditions into the app's dependency graph while
// Finish and Close still account for them.
func (a *App) NewControlledEvent(waits ...*opencl.Event) (*opencl.Event, error) {
	if err := a.begin(); err != nil {
		return nil, err
	}
	defer a.end()
	if err := opencl.CheckWaitList(waits...); err != nil {
		return nil, err
	}
	ev := opencl.NewControlledEvent(waits...)
	a.track(ev)
	return ev, nil
}

// Finish blocks until every event the application enqueued (kernels and
// transfers) has reached a terminal status. Per-command errors are
// reported on the commands' own events.
func (a *App) Finish() {
	a.group.Wait()
}

// Outstanding reports how many of the app's events are incomplete.
func (a *App) Outstanding() int {
	return a.group.Pending()
}

// Program is the application's handle to a built OpenCL program. The
// runtime stores both the original and the JIT-transformed module; the
// application never sees the difference.
type Program struct {
	app    *App
	Source string

	orig  *ir.Module
	trans *ir.Module
	infos map[string]*accelpass.KernelInfo
}

// CreateProgram intercepts clCreateProgramWithSource+clBuildProgram:
// scenario (a) of the Application Monitor FSM — the JIT compiler
// analyzes and transforms the kernel code.
func (a *App) CreateProgram(src string) (*Program, error) {
	if err := a.begin(); err != nil {
		return nil, err
	}
	defer a.end()
	p := &Program{app: a, Source: src}
	err := a.rt.submit(&Request{Kind: ReqProgramCreate, App: a, Prog: p})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// BufferHandle is the application's device memory handle.
type BufferHandle struct {
	app *App
	// Size in bytes.
	Size int64

	mu  sync.Mutex
	buf *opencl.Buffer

	// onFree, when set, runs after the memory-manager accounting is
	// returned (i.e. once the last pin is gone and the backing is dead).
	// The service layer hangs shared-memory segment teardown here.
	onFree func()
}

// handle returns the underlying buffer, or nil after Release. Commands
// resolve it once at enqueue time and pin it; a later Release then
// fails the command rather than yanking the bytes.
func (h *BufferHandle) handle() *opencl.Buffer {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.buf
}

// CreateBuffer allocates device memory. The accelOS memory manager may
// pause the application (block) until peers release memory (§5).
func (a *App) CreateBuffer(size int64) (*BufferHandle, error) {
	return a.createBuffer(size, func() (*opencl.Buffer, error) {
		return a.rt.Ctx.CreateBuffer(size)
	}, nil)
}

// CreateBufferBacked allocates a buffer whose device backing is the
// caller-provided byte slice — the zero-copy hook for the out-of-process
// service, which backs buffers with shared-memory segments mapped by
// both the daemon and the client. onFree (optional) runs once the
// backing is truly dead: after release, once the last in-flight command
// unpinned the buffer. On error the caller keeps ownership of bytes.
func (a *App) CreateBufferBacked(bytes []byte, onFree func()) (*BufferHandle, error) {
	return a.createBuffer(int64(len(bytes)), func() (*opencl.Buffer, error) {
		return a.rt.Ctx.CreateBufferBytes(bytes)
	}, onFree)
}

func (a *App) createBuffer(size int64, mk func() (*opencl.Buffer, error), onFree func()) (*BufferHandle, error) {
	if err := a.begin(); err != nil {
		return nil, err
	}
	// Don't hold the op ticket across the allocation: the memory
	// manager may pause the application indefinitely, and Close — which
	// waits for tickets to drain — may be the very thing whose buffer
	// releases would resume it.
	a.end()
	// Pausing happens in the application's own goroutine so the daemon
	// stays responsive.
	if err := a.rt.mem.Alloc(a.ID, size); err != nil {
		return nil, err
	}
	if err := a.begin(); err != nil {
		// Closed while paused. ReleaseApp may have run before the Alloc
		// landed, so this Free either returns the bytes or clamps to a
		// no-op — the accounting nets to zero either way.
		a.rt.mem.Free(a.ID, size)
		return nil, err
	}
	defer a.end()
	h := &BufferHandle{app: a, Size: size, onFree: onFree}
	err := a.rt.submit(&Request{Kind: ReqOther, App: a, Other: func() error {
		b, err := mk()
		if err != nil {
			return err
		}
		h.mu.Lock()
		h.buf = b
		h.mu.Unlock()
		return nil
	}})
	if err != nil {
		a.rt.mem.Free(a.ID, size)
		return nil, err
	}
	a.addBuf(h)
	return h, nil
}

// Release frees the buffer. The release is refcount-aware: with
// commands in flight the memory-manager accounting is returned only
// when the last command unpins the buffer, queued commands fail with a
// clear error instead of racing on the bytes, and a double Release is a
// no-op.
func (h *BufferHandle) Release() {
	h.mu.Lock()
	b := h.buf
	h.buf = nil
	h.mu.Unlock()
	if b == nil {
		return
	}
	app, size, onFree := h.app, h.Size, h.onFree
	b.ReleaseFunc(func() {
		app.rt.mem.Free(app.ID, size)
		if onFree != nil {
			onFree()
		}
	})
}

// WriteAsync schedules a host→device copy and returns its event
// immediately (shared-memory transport: no daemon round trip needed, as
// in the paper's IPC design). The data slice must stay untouched until
// the event completes.
func (h *BufferHandle) WriteAsync(off int64, data []byte, waits ...*opencl.Event) (*opencl.Event, error) {
	if err := h.app.begin(); err != nil {
		return nil, err
	}
	defer h.app.end()
	b := h.handle()
	if b == nil {
		return nil, fmt.Errorf("accelos: %w", opencl.ErrBufferReleased)
	}
	ev, err := h.app.q.EnqueueWrite(b, off, data, waits...)
	if err != nil {
		return nil, err
	}
	h.app.track(ev)
	return ev, nil
}

// ReadAsync schedules a device→host copy and returns its event
// immediately; out is filled when the event completes.
func (h *BufferHandle) ReadAsync(off int64, out []byte, waits ...*opencl.Event) (*opencl.Event, error) {
	if err := h.app.begin(); err != nil {
		return nil, err
	}
	defer h.app.end()
	b := h.handle()
	if b == nil {
		return nil, fmt.Errorf("accelos: %w", opencl.ErrBufferReleased)
	}
	ev, err := h.app.q.EnqueueRead(b, off, out, waits...)
	if err != nil {
		return nil, err
	}
	h.app.track(ev)
	return ev, nil
}

// Write copies host bytes into the buffer, blocking until the copy
// completes (thin wrapper over WriteAsync + Wait).
func (h *BufferHandle) Write(off int64, data []byte) error {
	ev, err := h.WriteAsync(off, data)
	if err != nil {
		return err
	}
	return ev.Wait()
}

// Read copies buffer bytes back to the host, blocking until the copy
// completes (thin wrapper over ReadAsync + Wait).
func (h *BufferHandle) Read(off int64, out []byte) error {
	ev, err := h.ReadAsync(off, out)
	if err != nil {
		return err
	}
	return ev.Wait()
}

// KernelHandle is the application's kernel object with bound arguments.
type KernelHandle struct {
	prog *Program
	name string
	args []kernArg
}

type kernArg struct {
	set bool
	buf *BufferHandle
	// clb is the underlying buffer resolved (and pinned) at enqueue
	// time; the daemon binds it instead of re-reading the handle, which
	// the application may Release concurrently.
	clb *opencl.Buffer
	loc int64 // > 0: local-memory argument of this byte size
	i32 *int32
	i64 *int64
	f32 *float32
}

// CreateKernel resolves a kernel by its original name (the JIT keeps
// the name on the scheduling wrapper, so this is transparent).
func (p *Program) CreateKernel(name string) (*KernelHandle, error) {
	f := p.orig.Lookup(name)
	if f == nil || !f.Kernel {
		return nil, fmt.Errorf("accelos: kernel %q not found", name)
	}
	return &KernelHandle{prog: p, name: name, args: make([]kernArg, len(f.Params))}, nil
}

// NumArgs reports the kernel's arity (its original signature, before
// the JIT appends the RT descriptor).
func (k *KernelHandle) NumArgs() int { return len(k.args) }

// SetArgBuffer binds a buffer argument.
func (k *KernelHandle) SetArgBuffer(i int, b *BufferHandle) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("accelos: argument %d out of range", i)
	}
	k.args[i] = kernArg{set: true, buf: b}
	return nil
}

// SetArgInt32 binds an int scalar argument.
func (k *KernelHandle) SetArgInt32(i int, v int32) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("accelos: argument %d out of range", i)
	}
	k.args[i] = kernArg{set: true, i32: &v}
	return nil
}

// SetArgInt64 binds a long scalar argument.
func (k *KernelHandle) SetArgInt64(i int, v int64) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("accelos: argument %d out of range", i)
	}
	k.args[i] = kernArg{set: true, i64: &v}
	return nil
}

// SetArgFloat32 binds a float scalar argument.
func (k *KernelHandle) SetArgFloat32(i int, v float32) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("accelos: argument %d out of range", i)
	}
	k.args[i] = kernArg{set: true, f32: &v}
	return nil
}

// SetArgLocal binds a local-memory argument of the given byte size for
// a __local pointer parameter: every work-group of the launch receives
// its own zeroed local region of that size.
func (k *KernelHandle) SetArgLocal(i int, size int64) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("accelos: argument %d out of range", i)
	}
	if size <= 0 {
		return fmt.Errorf("accelos: local argument %d has non-positive size %d", i, size)
	}
	k.args[i] = kernArg{set: true, loc: size}
	return nil
}

// toCL materializes an opencl.Kernel with the bound arguments. The
// argument list is sized by the ORIGINAL kernel signature; the Kernel
// Scheduler appends the RT descriptor for the transformed wrapper.
func (k *KernelHandle) toCL() (*opencl.Kernel, error) {
	p := &opencl.Program{Module: k.prog.orig}
	cl, err := p.CreateKernel(k.name)
	if err != nil {
		return nil, fmt.Errorf("accelos: kernel %q: %w", k.name, err)
	}
	for i, a := range k.args {
		switch {
		case a.clb != nil:
			err = cl.SetArgBuffer(i, a.clb)
		case a.buf != nil:
			b := a.buf.handle()
			if b == nil {
				return nil, fmt.Errorf("accelos: kernel %q argument %d: %w", k.name, i, opencl.ErrBufferReleased)
			}
			err = cl.SetArgBuffer(i, b)
		case a.loc > 0:
			err = cl.SetArgLocal(i, a.loc)
		case a.i32 != nil:
			err = cl.SetArgInt32(i, *a.i32)
		case a.i64 != nil:
			err = cl.SetArgInt64(i, *a.i64)
		case a.f32 != nil:
			err = cl.SetArgFloat32(i, *a.f32)
		}
		if err != nil {
			return nil, fmt.Errorf("accelos: kernel %q: %w", k.name, err)
		}
	}
	return cl, nil
}

// EnqueueKernelAsync intercepts clEnqueueNDRangeKernel: scenario (b) —
// the Kernel Scheduler alters the grid and launches the transformed
// kernel. The call returns the execution's event immediately; the
// kernel starts once every wait-list event completes (a failed
// dependency fails this event instead of launching). Arguments are
// snapshotted at enqueue, and the buffers they name stay pinned until
// the event completes.
func (a *App) EnqueueKernelAsync(k *KernelHandle, nd opencl.NDRange, waits ...*opencl.Event) (*opencl.Event, error) {
	if err := a.begin(); err != nil {
		return nil, err
	}
	defer a.end()
	if err := nd.Validate(); err != nil {
		return nil, err
	}
	if err := opencl.CheckWaitList(waits...); err != nil {
		return nil, fmt.Errorf("accelos: kernel %q: %w", k.name, err)
	}
	args := make([]kernArg, len(k.args))
	copy(args, k.args)
	var bufs []*opencl.Buffer
	for i, arg := range args {
		if !arg.set {
			return nil, fmt.Errorf("accelos: kernel %q argument %d not set", k.name, i)
		}
		if arg.buf != nil {
			b := arg.buf.handle()
			if b == nil {
				return nil, fmt.Errorf("accelos: kernel %q argument %d: %w", k.name, i, opencl.ErrBufferReleased)
			}
			args[i].clb = b
			bufs = append(bufs, b)
		}
	}
	for pi, b := range bufs {
		if err := b.Pin(); err != nil {
			for _, p := range bufs[:pi] {
				p.Unpin()
			}
			return nil, fmt.Errorf("accelos: kernel %q: %w", k.name, err)
		}
	}
	ev := opencl.NewControlledEvent(waits...)
	ev.OnComplete(func(*opencl.Event) {
		for _, b := range bufs {
			b.Unpin()
		}
	})
	a.track(ev)
	snap := &KernelHandle{prog: k.prog, name: k.name, args: args}
	a.rt.submitAsync(&Request{Kind: ReqKernelExec, App: a, Kern: snap, ND: nd, Waits: waits, Event: ev, Bufs: bufs})
	return ev, nil
}

// EnqueueKernel launches the kernel and blocks until the execution
// completes — the pre-event call shape, now a thin wrapper over
// EnqueueKernelAsync + Wait. Concurrent applications' launches overlap.
func (a *App) EnqueueKernel(k *KernelHandle, nd opencl.NDRange) error {
	ev, err := a.EnqueueKernelAsync(k, nd)
	if err != nil {
		return err
	}
	return ev.Wait()
}

// Query is an example of scenario (c): a passthrough request that
// accelOS does not intervene in. After Close it fails with the typed
// ErrAppClosed instead of reaching the daemon.
func (a *App) Query(fn func() error) error {
	if err := a.begin(); err != nil {
		return err
	}
	defer a.end()
	return a.rt.submit(&Request{Kind: ReqOther, App: a, Other: fn})
}
