package accelos

import (
	"fmt"
	"sync"
)

// MemoryManager tracks device memory allocations per application and
// implements the paper's pausing policy (§5): when the accelerator
// memory cannot serve all applications concurrently, an application's
// allocation blocks until peers release memory.
type MemoryManager struct {
	capacity int64

	mu      sync.Mutex
	cond    *sync.Cond
	used    int64
	perApp  map[int]int64
	paused  int
	pausedN int64 // cumulative pauses, for observability
}

// NewMemoryManager returns a manager for a device with the given
// capacity in bytes.
func NewMemoryManager(capacity int64) *MemoryManager {
	m := &MemoryManager{capacity: capacity, perApp: make(map[int]int64)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Alloc reserves size bytes for the application, blocking (pausing the
// application) while the device is oversubscribed. An allocation larger
// than the device fails outright.
func (m *MemoryManager) Alloc(appID int, size int64) error {
	if size <= 0 {
		return fmt.Errorf("accelos: invalid allocation of %d bytes", size)
	}
	if size > m.capacity {
		return fmt.Errorf("accelos: allocation of %d bytes exceeds device capacity %d", size, m.capacity)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.used+size > m.capacity {
		m.paused++
		m.pausedN++
		m.cond.Wait()
		m.paused--
	}
	m.used += size
	m.perApp[appID] += size
	return nil
}

// Free releases size bytes owned by the application and resumes paused
// applications. A buffer's deferred release (pinned by in-flight
// commands at Release time) may land after ReleaseApp already reclaimed
// the application's whole tally at process exit; the free is clamped to
// what the application still holds so the bytes are never subtracted
// twice.
func (m *MemoryManager) Free(appID int, size int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if held := m.perApp[appID]; size > held {
		size = held
	}
	m.used -= size
	m.perApp[appID] -= size
	if m.perApp[appID] <= 0 {
		delete(m.perApp, appID)
	}
	m.cond.Broadcast()
}

// ReleaseApp frees everything the application still holds (process
// exit).
func (m *MemoryManager) ReleaseApp(appID int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.used -= m.perApp[appID]
	delete(m.perApp, appID)
	m.cond.Broadcast()
}

// Used returns current device memory usage in bytes.
func (m *MemoryManager) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Paused returns how many applications are currently paused.
func (m *MemoryManager) Paused() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.paused
}

// TotalPauses returns the cumulative number of pause events.
func (m *MemoryManager) TotalPauses() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pausedN
}
