package accelos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/opencl"
)

// TestAsyncPipelineEndToEnd drives a full write→kernel→read dependency
// chain through the event API: every call returns immediately, the
// chain orders itself through wait-list edges, and the result is
// correct.
func TestAsyncPipelineEndToEnd(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	app := rt.Connect("async")
	defer app.Close()

	prog, err := app.CreateProgram(vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1024
	a, _ := app.CreateBuffer(n * 4)
	b, _ := app.CreateBuffer(n * 4)
	c, _ := app.CreateBuffer(n * 4)
	av := make([]byte, n*4)
	bv := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(av[i*4:], float32ToBits(float32(i)))
		binary.LittleEndian.PutUint32(bv[i*4:], float32ToBits(float32(2*i)))
	}
	wa, err := a.WriteAsync(0, av)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := b.WriteAsync(0, bv)
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("vadd")
	if err != nil {
		t.Fatal(err)
	}
	_ = k.SetArgBuffer(0, a)
	_ = k.SetArgBuffer(1, b)
	_ = k.SetArgBuffer(2, c)
	_ = k.SetArgInt32(3, n)
	kev, err := app.EnqueueKernelAsync(k, opencl.ND1(n, 64), wa, wb)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, n*4)
	rev, err := c.ReadAsync(0, out, kev)
	if err != nil {
		t.Fatal(err)
	}
	if err := rev.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := bitsToFloat32(binary.LittleEndian.Uint32(out[i*4:]))
		if got != float32(3*i) {
			t.Fatalf("c[%d] = %v, want %v", i, got, float32(3*i))
		}
	}
	app.Finish() // everything already terminal; must not hang
	if got := app.Outstanding(); got != 0 {
		t.Fatalf("outstanding after Finish = %d", got)
	}
}

// TestPendingWindowAccounting gates a kernel on a user event and checks
// the Kernel Scheduler sees it as pending (the scheduler's lookahead
// window) before the dependency releases it to running.
func TestPendingWindowAccounting(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	app := rt.Connect("window")
	defer app.Close()

	prog, err := app.CreateProgram(vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	const n = 256
	a, _ := app.CreateBuffer(n * 4)
	b, _ := app.CreateBuffer(n * 4)
	c, _ := app.CreateBuffer(n * 4)
	k, _ := prog.CreateKernel("vadd")
	_ = k.SetArgBuffer(0, a)
	_ = k.SetArgBuffer(1, b)
	_ = k.SetArgBuffer(2, c)
	_ = k.SetArgInt32(3, n)

	gate := opencl.NewUserEvent()
	ev, err := app.EnqueueKernelAsync(k, opencl.ND1(n, 64), gate)
	if err != nil {
		t.Fatal(err)
	}
	// The daemon registers the execution as pending even though its wait
	// list is incomplete.
	deadline := time.Now().Add(2 * time.Second)
	for rt.Monitor().PendingKernels() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("pending window never showed the gated kernel (pending=%d)", rt.Monitor().PendingKernels())
		}
		time.Sleep(time.Millisecond)
	}
	if got := ev.Status(); got.Terminal() {
		t.Fatalf("gated kernel already terminal: %v", got)
	}
	gate.Complete()
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Monitor().PendingKernels(); got != 0 {
		t.Errorf("pending after completion = %d", got)
	}
	if got := rt.Monitor().RunningKernels(); got != 0 {
		t.Errorf("running after completion = %d", got)
	}
	if got := rt.Stats().WaitDeferred; got != 1 {
		t.Errorf("WaitDeferred = %d, want 1", got)
	}
}

// TestAsyncFailurePropagation fails a dependency and checks the kernel
// never launches, its event carries the cause, and the accounting
// drains.
func TestAsyncFailurePropagation(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	app := rt.Connect("failprop")
	defer app.Close()

	prog, err := app.CreateProgram(vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	a, _ := app.CreateBuffer(n * 4)
	b, _ := app.CreateBuffer(n * 4)
	c, _ := app.CreateBuffer(n * 4)
	k, _ := prog.CreateKernel("vadd")
	_ = k.SetArgBuffer(0, a)
	_ = k.SetArgBuffer(1, b)
	_ = k.SetArgBuffer(2, c)
	_ = k.SetArgInt32(3, n)

	bad := opencl.NewUserEvent()
	ev, err := app.EnqueueKernelAsync(k, opencl.ND1(n, 64), bad)
	if err != nil {
		t.Fatal(err)
	}
	cause := fmt.Errorf("host-side staging failed")
	bad.Fail(cause)
	err = ev.Wait()
	if !errors.Is(err, cause) {
		t.Fatalf("event error = %v, want wrapped %v", err, cause)
	}
	if got := rt.Stats().KernelsLaunched; got != 0 {
		t.Errorf("failed-dependency kernel launched (KernelsLaunched=%d)", got)
	}
	if got := rt.Monitor().PendingKernels(); got != 0 {
		t.Errorf("pending after abandon = %d", got)
	}
	// The queue stays usable: the same kernel without the poisoned
	// dependency runs fine.
	if err := app.EnqueueKernel(k, opencl.ND1(n, 64)); err != nil {
		t.Fatalf("kernel after abandoned peer: %v", err)
	}
}

// TestCyclicWaitListRejectedProxyCL mirrors the opencl-level test at the
// interposition boundary.
func TestCyclicWaitListRejectedProxyCL(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	app := rt.Connect("cycle")
	defer app.Close()

	prog, err := app.CreateProgram(vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	a, _ := app.CreateBuffer(n * 4)
	b, _ := app.CreateBuffer(n * 4)
	c, _ := app.CreateBuffer(n * 4)
	k, _ := prog.CreateKernel("vadd")
	_ = k.SetArgBuffer(0, a)
	_ = k.SetArgBuffer(1, b)
	_ = k.SetArgBuffer(2, c)
	_ = k.SetArgInt32(3, n)

	u1, u2 := opencl.NewUserEvent(), opencl.NewUserEvent()
	u1.CompleteWhen(u2)
	u2.CompleteWhen(u1)
	if _, err := app.EnqueueKernelAsync(k, opencl.ND1(n, 64), u1); !errors.Is(err, opencl.ErrCyclicWaitList) {
		t.Fatalf("cyclic wait list: %v, want ErrCyclicWaitList", err)
	}
	if got := app.Outstanding(); got != 0 {
		t.Fatalf("rejected enqueue left %d outstanding events", got)
	}
}

// TestBufferReleaseFailsDeferredKernel releases a buffer while a kernel
// depending on it is still gated: the kernel must fail with
// ErrBufferReleased, and the memory-manager accounting must be returned
// only when the pins drain.
func TestBufferReleaseFailsDeferredKernel(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	app := rt.Connect("release")
	defer app.Close()

	prog, err := app.CreateProgram(vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	a, _ := app.CreateBuffer(n * 4)
	b, _ := app.CreateBuffer(n * 4)
	c, _ := app.CreateBuffer(n * 4)
	k, _ := prog.CreateKernel("vadd")
	_ = k.SetArgBuffer(0, a)
	_ = k.SetArgBuffer(1, b)
	_ = k.SetArgBuffer(2, c)
	_ = k.SetArgInt32(3, n)

	gate := opencl.NewUserEvent()
	ev, err := app.EnqueueKernelAsync(k, opencl.ND1(n, 64), gate)
	if err != nil {
		t.Fatal(err)
	}
	used := rt.Memory().Used()
	c.Release()
	c.Release() // double release is a no-op
	if got := rt.Memory().Used(); got != used {
		t.Fatalf("memory accounting freed with kernel pinned: %d -> %d", used, got)
	}
	gate.Complete()
	if err := ev.Wait(); !errors.Is(err, opencl.ErrBufferReleased) {
		t.Fatalf("kernel on released buffer: %v, want ErrBufferReleased", err)
	}
	// With the pin dropped the accounting returns.
	deadline := time.Now().Add(2 * time.Second)
	for rt.Memory().Used() != used-n*4 {
		if time.Now().After(deadline) {
			t.Fatalf("memory accounting not returned: used=%d", rt.Memory().Used())
		}
		time.Sleep(time.Millisecond)
	}
	// New submissions on the released handle are rejected outright.
	if _, err := app.EnqueueKernelAsync(k, opencl.ND1(n, 64)); err == nil {
		t.Fatal("enqueue with released buffer accepted")
	}
}

// TestDeferredFreeAfterAppClose pins a buffer with a gated kernel,
// releases the buffer AND closes the app, then lets the pin drain: the
// deferred free must not subtract the bytes a second time after
// ReleaseApp already reclaimed the app's tally.
func TestDeferredFreeAfterAppClose(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	app := rt.Connect("closer")

	prog, err := app.CreateProgram(vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	a, _ := app.CreateBuffer(n * 4)
	b, _ := app.CreateBuffer(n * 4)
	c, _ := app.CreateBuffer(n * 4)
	k, _ := prog.CreateKernel("vadd")
	_ = k.SetArgBuffer(0, a)
	_ = k.SetArgBuffer(1, b)
	_ = k.SetArgBuffer(2, c)
	_ = k.SetArgInt32(3, n)

	gate := opencl.NewUserEvent()
	ev, err := app.EnqueueKernelAsync(k, opencl.ND1(n, 64), gate)
	if err != nil {
		t.Fatal(err)
	}
	c.Release() // free deferred: the gated kernel pins c
	app.Close() // ReleaseApp reclaims the app's whole tally
	gate.Complete()
	_ = ev.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for rt.Memory().Used() != 0 {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := rt.Memory().Used(); got != 0 {
		t.Fatalf("memory accounting after close + deferred free = %d, want 0 (double-subtract?)", got)
	}
}

// TestSetArgLocalProxyCL runs a __local-pointer kernel through the full
// interposition stack: JIT transformation, sliced execution, and a
// host-sized local scratchpad per (physical) work-group.
func TestSetArgLocalProxyCL(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	app := rt.Connect("localarg")
	defer app.Close()

	prog, err := app.CreateProgram(`
kernel void revblk(global int* data, local int* scratch, int n)
{
    int l = (int)get_local_id(0);
    int ls = (int)get_local_size(0);
    int g = (int)get_global_id(0);
    if (g < n) scratch[l] = data[g];
    barrier(3);
    if (g < n) data[g] = scratch[ls - 1 - l];
}
`)
	if err != nil {
		t.Fatal(err)
	}
	const n, local = 512, 32
	d, err := app.CreateBuffer(n * 4)
	if err != nil {
		t.Fatal(err)
	}
	host := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(host[i*4:], uint32(i))
	}
	if err := d.Write(0, host); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("revblk")
	if err != nil {
		t.Fatal(err)
	}
	_ = k.SetArgBuffer(0, d)
	if err := k.SetArgLocal(1, 4*local); err != nil {
		t.Fatal(err)
	}
	_ = k.SetArgInt32(2, n)
	if err := app.EnqueueKernel(k, opencl.ND1(n, local)); err != nil {
		t.Fatalf("EnqueueKernel: %v", err)
	}
	out := make([]byte, n*4)
	if err := d.Read(0, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		blk := i / local
		want := uint32(blk*local + (local - 1 - i%local))
		if got := binary.LittleEndian.Uint32(out[i*4:]); got != want {
			t.Fatalf("data[%d] = %d, want %d", i, got, want)
		}
	}
}

// TestAppFinishDrainsPipelines launches several overlapping pipelines
// and checks Finish blocks until every event is terminal.
func TestAppFinishDrainsPipelines(t *testing.T) {
	rt := NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	app := rt.Connect("finish")
	defer app.Close()

	prog, err := app.CreateProgram(vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	const n, chains = 256, 6
	type chain struct {
		c   *BufferHandle
		out []byte
	}
	var chs []chain
	for ci := 0; ci < chains; ci++ {
		a, _ := app.CreateBuffer(n * 4)
		b, _ := app.CreateBuffer(n * 4)
		c, _ := app.CreateBuffer(n * 4)
		av := make([]byte, n*4)
		bv := make([]byte, n*4)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(av[i*4:], float32ToBits(float32(i)))
			binary.LittleEndian.PutUint32(bv[i*4:], float32ToBits(float32(ci)))
		}
		wa, err := a.WriteAsync(0, av)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := b.WriteAsync(0, bv)
		if err != nil {
			t.Fatal(err)
		}
		k, _ := prog.CreateKernel("vadd")
		_ = k.SetArgBuffer(0, a)
		_ = k.SetArgBuffer(1, b)
		_ = k.SetArgBuffer(2, c)
		_ = k.SetArgInt32(3, n)
		kev, err := app.EnqueueKernelAsync(k, opencl.ND1(n, 64), wa, wb)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]byte, n*4)
		if _, err := c.ReadAsync(0, out, kev); err != nil {
			t.Fatal(err)
		}
		chs = append(chs, chain{c: c, out: out})
	}
	app.Finish()
	if got := app.Outstanding(); got != 0 {
		t.Fatalf("outstanding after Finish = %d", got)
	}
	for ci, ch := range chs {
		for i := 0; i < n; i++ {
			got := bitsToFloat32(binary.LittleEndian.Uint32(ch.out[i*4:]))
			if got != float32(i+ci) {
				t.Fatalf("chain %d: c[%d] = %v, want %v", ci, i, got, float32(i+ci))
			}
		}
	}
}
