package device

import (
	"testing"
	"testing/quick"
)

func TestPlatformPresets(t *testing.T) {
	nv := NVIDIAK20m()
	if nv.NumCUs != 13 || nv.ThreadsPerCU != 2048 || nv.LocalMemPerCU != 48*1024 {
		t.Errorf("K20m topology wrong: %+v", nv)
	}
	if nv.TotalThreads() != 13*2048 {
		t.Errorf("TotalThreads = %d", nv.TotalThreads())
	}
	amd := AMDR9295X2()
	if amd.NumCUs != 44 || amd.WarpSize != 64 {
		t.Errorf("R9 topology wrong: %+v", amd)
	}
	if !amd.ExclusiveKernels || nv.ExclusiveKernels {
		t.Error("exclusive-kernel flags: AMD serializes, NVIDIA co-schedules")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"nvidia", "k20m", "NVIDIA", "amd", "r9", "AMD"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("intel"); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestRoundWarp(t *testing.T) {
	nv := NVIDIAK20m()
	cases := [][2]int64{{1, 32}, {32, 32}, {33, 64}, {256, 256}, {100, 128}}
	for _, c := range cases {
		if got := nv.RoundWarp(c[0]); got != c[1] {
			t.Errorf("RoundWarp(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestOccupancyLimits(t *testing.T) {
	nv := NVIDIAK20m()
	// Thread-limited: 2048/256 = 8 per SMX.
	if got := nv.WGsPerCU(Footprint{Threads: 256}); got != 8 {
		t.Errorf("thread-limited occupancy = %d, want 8", got)
	}
	// Local-memory limited: 48K/24K = 2.
	if got := nv.WGsPerCU(Footprint{Threads: 64, LocalBytes: 24 * 1024}); got != 2 {
		t.Errorf("local-limited occupancy = %d, want 2", got)
	}
	// Register limited: 65536/(64*256) = 4.
	if got := nv.WGsPerCU(Footprint{Threads: 256, Regs: 64 * 256}); got != 4 {
		t.Errorf("register-limited occupancy = %d, want 4", got)
	}
	if got := nv.MaxConcurrentWGs(Footprint{Threads: 256}); got != 8*13 {
		t.Errorf("device occupancy = %d, want 104", got)
	}
	if got := nv.WGsPerCU(Footprint{Threads: 0}); got != 0 {
		t.Errorf("zero-thread footprint occupancy = %d, want 0", got)
	}
}

func TestOccupancyRespectsEveryResource(t *testing.T) {
	f := func(thr, lmem, regs uint16) bool {
		nv := NVIDIAK20m()
		fp := Footprint{
			Threads:    1 + int64(thr%1024),
			LocalBytes: int64(lmem) % nv.LocalMemPerCU,
			Regs:       int64(regs) * 4,
		}
		n := nv.WGsPerCU(fp)
		if n < 0 {
			return false
		}
		// n resident groups must fit every per-CU budget.
		if n*nv.RoundWarp(fp.Threads) > nv.ThreadsPerCU {
			return false
		}
		if fp.LocalBytes > 0 && n*fp.LocalBytes > nv.LocalMemPerCU {
			return false
		}
		if fp.Regs > 0 && n*fp.Regs > nv.RegsPerCU {
			return false
		}
		// And n+1 must violate at least one budget (tightness).
		m := n + 1
		tight := m*nv.RoundWarp(fp.Threads) > nv.ThreadsPerCU ||
			(fp.LocalBytes > 0 && m*fp.LocalBytes > nv.LocalMemPerCU) ||
			(fp.Regs > 0 && m*fp.Regs > nv.RegsPerCU)
		return tight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
