// Package device models the resource topology of an OpenCL accelerator:
// compute units with per-CU limits on resident threads, local memory and
// registers. The paper's resource-sharing algebra (§3) and the
// discrete-event simulator (internal/sim) both consume these models.
package device

import "fmt"

// Platform describes an accelerator.
type Platform struct {
	Name   string
	Vendor string

	// Resource topology.
	NumCUs        int
	ThreadsPerCU  int64 // maximum resident work-items per compute unit
	LocalMemPerCU int64 // bytes of local memory (shared/LDS) per CU
	RegsPerCU     int64 // 32-bit registers per CU
	GlobalMemMB   int64 // device memory capacity
	WarpSize      int64 // SIMD granularity (warp / wavefront)

	// Timing model (cycles unless noted).
	ClockMHz float64
	// LaunchOverhead is the driver/runtime cost of a kernel launch.
	LaunchOverhead int64
	// SchedOpCost is the cost of one software scheduling operation
	// (the atomic dequeue in rt_sched_wgroup).
	SchedOpCost int64
	// VGOverhead is the extra per-virtual-group cost the transformed
	// kernel pays for runtime ID computation.
	VGOverhead int64
	// ExclusiveKernels models drivers that never co-schedule distinct
	// kernels (the AMD stack in the paper: 4%/0%/0% baseline overlap);
	// the hardware scheduler then admits a kernel's work-groups only
	// once no other kernel is resident.
	ExclusiveKernels bool

	// PCIeGBps is the effective host↔device DMA bandwidth in GB/s. The
	// live execution path can model transfer commands as wall-time DMA
	// (host CPU idle), which is what an asynchronous host API overlaps
	// with kernel execution.
	PCIeGBps float64
}

// NVIDIAK20m models the paper's first platform: a Tesla K20m
// (13 SMX, 2048 threads/SMX, 48 KB shared memory, 64K registers).
func NVIDIAK20m() *Platform {
	return &Platform{
		Name:   "NVIDIA Tesla K20m",
		Vendor: "NVIDIA",

		NumCUs:        13,
		ThreadsPerCU:  2048,
		LocalMemPerCU: 48 * 1024,
		RegsPerCU:     65536,
		GlobalMemMB:   5 * 1024,
		WarpSize:      32,

		ClockMHz:       706,
		LaunchOverhead: 9000,
		SchedOpCost:    150,
		VGOverhead:     26,
		PCIeGBps:       6.0, // PCIe 2.0 x16 effective
	}
}

// AMDR9295X2 models the paper's second platform: one GPU of an
// R9 295X2 (44 CUs, 2560 threads/CU, 32 KB LDS, 64K VGPRs ×4 banks).
func AMDR9295X2() *Platform {
	return &Platform{
		Name:   "AMD Radeon R9 295X2",
		Vendor: "AMD",

		NumCUs:        44,
		ThreadsPerCU:  2560,
		LocalMemPerCU: 32 * 1024,
		RegsPerCU:     65536 * 4,
		GlobalMemMB:   4 * 1024,
		WarpSize:      64,

		ClockMHz:         1018,
		LaunchOverhead:   14000,
		SchedOpCost:      190,
		VGOverhead:       30,
		ExclusiveKernels: true,
		PCIeGBps:         12.0, // PCIe 3.0 x16 effective
	}
}

// Platforms returns the two evaluation platforms in paper order.
func Platforms() []*Platform {
	return []*Platform{NVIDIAK20m(), AMDR9295X2()}
}

// ByName resolves a platform by vendor or name substring.
func ByName(name string) (*Platform, error) {
	for _, p := range Platforms() {
		if p.Vendor == name || p.Name == name {
			return p, nil
		}
	}
	switch name {
	case "nvidia", "k20m":
		return NVIDIAK20m(), nil
	case "amd", "r9":
		return AMDR9295X2(), nil
	}
	return nil, fmt.Errorf("device: unknown platform %q", name)
}

// PoolOf returns n simulated devices for cluster experiments,
// alternating the two evaluation platforms so pools of two or more are
// heterogeneous. Members get distinct names for per-device reporting.
func PoolOf(n int) []*Platform {
	pool := make([]*Platform, n)
	for i := range pool {
		var p *Platform
		if i%2 == 0 {
			p = NVIDIAK20m()
		} else {
			p = AMDR9295X2()
		}
		p.Name = fmt.Sprintf("%s #%d", p.Name, i)
		pool[i] = p
	}
	return pool
}

// TotalThreads returns the maximum concurrently resident work-items on
// the device (the T of §3).
func (p *Platform) TotalThreads() int64 {
	return int64(p.NumCUs) * p.ThreadsPerCU
}

// TotalLocalMem returns the device-wide local memory (the L of §3).
func (p *Platform) TotalLocalMem() int64 {
	return int64(p.NumCUs) * p.LocalMemPerCU
}

// TotalRegs returns the device-wide register count (the R of §3).
func (p *Platform) TotalRegs() int64 {
	return int64(p.NumCUs) * p.RegsPerCU
}

// Footprint is the per-work-group resource demand of a kernel execution.
type Footprint struct {
	Threads    int64 // work-group size
	LocalBytes int64 // local memory per work-group
	Regs       int64 // registers per work-group (regs/thread × threads)
}

// RoundWarp rounds a work-group size up to warp granularity, the way
// hardware allocates thread slots.
func (p *Platform) RoundWarp(threads int64) int64 {
	if p.WarpSize <= 0 {
		return threads
	}
	return (threads + p.WarpSize - 1) / p.WarpSize * p.WarpSize
}

// WGsPerCU returns the occupancy limit: how many work-groups with the
// given footprint can be resident on one compute unit simultaneously.
func (p *Platform) WGsPerCU(fp Footprint) int64 {
	threads := p.RoundWarp(fp.Threads)
	if threads <= 0 {
		return 0
	}
	n := p.ThreadsPerCU / threads
	if fp.LocalBytes > 0 {
		if m := p.LocalMemPerCU / fp.LocalBytes; m < n {
			n = m
		}
	}
	if fp.Regs > 0 {
		if m := p.RegsPerCU / fp.Regs; m < n {
			n = m
		}
	}
	return n
}

// MaxConcurrentWGs returns the device-wide occupancy limit for the
// footprint.
func (p *Platform) MaxConcurrentWGs(fp Footprint) int64 {
	return p.WGsPerCU(fp) * int64(p.NumCUs)
}
