package parboil

// Kernels of sad, sgemm, spmv, stencil and tpacf.

var sadCalc = register(&Kernel{
	Benchmark: "sad",
	Name:      "mb_sad_calc",
	Source: `
/* Sum of absolute differences between the current macroblock and a
   sliding reference window (H.264 motion estimation). */
kernel void mb_sad_calc(global const int* cur, global const int* ref,
                        global int* sad, int w, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) {
        int acc = 0;
        int j;
        for (j = 0; j < 16; ++j) {
            acc += abs(cur[(i + j) % n] - ref[(i + j * w) % n]);
        }
        sad[i] = acc;
    }
}
`,
	Setup: func() LaunchSpec {
		const w, n = 64, 2048
		r := newLCG(103)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "cur", I32: r.i32s(n, 256)},
				{Name: "ref", I32: r.i32s(n, 256)},
				{Name: "sad", I32: make([]int32, n), Out: true},
				ScalarArg("w", w),
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 64, NumWGs: 1584, LocalBytes: 3072, RegsPerThread: 20,
		BaseWGCost: 18000, Imbalance: 0.35, Skew: 0.25,
		MemIntensity: 0.5, SatFrac: 0.45, InstrCount: 200,
	},
})

var sadCalc8 = register(&Kernel{
	Benchmark: "sad",
	Name:      "larger_sad_calc_8",
	Source: `
/* Combine 4x4 SADs into 8x8 block SADs. */
kernel void larger_sad_calc_8(global const int* sad4, global int* sad8, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) {
        sad8[i] = sad4[2 * i] + sad4[2 * i + 1];
    }
}
`,
	Setup: func() LaunchSpec {
		const n = 2048
		r := newLCG(107)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "sad4", I32: r.i32s(2*n, 4096)},
				{Name: "sad8", I32: make([]int32, n), Out: true},
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 128, NumWGs: 14336, LocalBytes: 0, RegsPerThread: 14,
		BaseWGCost: 2300, Imbalance: 0.2, Skew: 0.1,
		MemIntensity: 0.6, SatFrac: 0.5, InstrCount: 14,
	},
})

var sadCalc16 = register(&Kernel{
	Benchmark: "sad",
	Name:      "larger_sad_calc_16",
	Source: `
/* Combine 8x8 SADs into 16x16 block SADs. */
kernel void larger_sad_calc_16(global const int* sad8, global int* sad16, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) {
        sad16[i] = sad8[4 * i] + sad8[4 * i + 1] + sad8[4 * i + 2] + sad8[4 * i + 3];
    }
}
`,
	Setup: func() LaunchSpec {
		const n = 1024
		r := newLCG(109)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "sad8", I32: r.i32s(4*n, 8192)},
				{Name: "sad16", I32: make([]int32, n), Out: true},
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 128, NumWGs: 4096, LocalBytes: 0, RegsPerThread: 14,
		BaseWGCost: 2300, Imbalance: 0.2, Skew: 0.1,
		MemIntensity: 0.6, SatFrac: 0.5, InstrCount: 16,
	},
})

var sgemmKernel = register(&Kernel{
	Benchmark: "sgemm",
	Name:      "mysgemmNT",
	Source: `
/* Tiled dense matrix multiply with local-memory tiles (2-D NDRange). */
#define TILE 8
kernel void mysgemmNT(global const float* A, global const float* B,
                      global float* C, int n)
{
    local float As[64];
    local float Bs[64];
    int tx = (int)get_local_id(0);
    int ty = (int)get_local_id(1);
    int col = (int)get_global_id(0);
    int row = (int)get_global_id(1);
    float acc = 0.0f;
    int t;
    int k;
    for (t = 0; t < n / TILE; ++t) {
        As[ty * TILE + tx] = A[row * n + t * TILE + tx];
        Bs[ty * TILE + tx] = B[(t * TILE + ty) * n + col];
        barrier(1);
        for (k = 0; k < TILE; ++k) {
            acc += As[ty * TILE + k] * Bs[k * TILE + tx];
        }
        barrier(1);
    }
    C[row * n + col] = acc;
}
`,
	Setup: func() LaunchSpec {
		const n = 64
		r := newLCG(113)
		return LaunchSpec{
			Dims: 2, Global: [3]int64{n, n, 1}, Local: [3]int64{8, 8, 1},
			Args: []Arg{
				{Name: "A", F32: r.f32s(n*n, -1, 1)},
				{Name: "B", F32: r.f32s(n*n, -1, 1)},
				{Name: "C", F32: make([]float32, n*n), Out: true},
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 128, NumWGs: 1024, LocalBytes: 4224, RegsPerThread: 44,
		BaseWGCost: 115000, Imbalance: 0.08, Skew: 0,
		MemIntensity: 0.3, SatFrac: 0.6, InstrCount: 90,
	},
})

var spmvKernel = register(&Kernel{
	Benchmark: "spmv",
	Name:      "spmv_jds",
	Source: `
/* Sparse matrix-vector multiply in JDS layout: column-major padded rows,
   irregular gather from the x vector. */
kernel void spmv_jds(global const float* vals, global const int* cols,
                     global const int* rowlen, global const float* x,
                     global float* y, int n)
{
    int row = (int)get_global_id(0);
    if (row < n) {
        float acc = 0.0f;
        int len = rowlen[row];
        int j;
        for (j = 0; j < len; ++j) {
            acc += vals[row + j * n] * x[cols[row + j * n]];
        }
        y[row] = acc;
    }
}
`,
	Setup: func() LaunchSpec {
		const n, maxlen = 2048, 12
		r := newLCG(127)
		rowlen := make([]int32, n)
		for i := range rowlen {
			rowlen[i] = int32(1 + r.intn(maxlen))
		}
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "vals", F32: r.f32s(n*maxlen, -1, 1)},
				{Name: "cols", I32: r.i32s(n*maxlen, n)},
				{Name: "rowlen", I32: rowlen},
				{Name: "x", F32: r.f32s(n, -1, 1)},
				{Name: "y", F32: make([]float32, n), Out: true},
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 192, NumWGs: 1216, LocalBytes: 0, RegsPerThread: 18,
		BaseWGCost: 14000, Imbalance: 0.45, Skew: 0.2,
		MemIntensity: 0.9, SatFrac: 0.2, InstrCount: 45,
	},
})

var stencilKernel = register(&Kernel{
	Benchmark: "stencil",
	Name:      "naive_kernel",
	Source: `
/* 7-point 3-D Jacobi stencil over a flattened grid. */
kernel void naive_kernel(global const float* in, global float* out,
                         int nx, int ny, int nz)
{
    int i = (int)get_global_id(0);
    int x = i % nx;
    int y = (i / nx) % ny;
    int z = i / (nx * ny);
    if (x > 0 && x < nx - 1 && y > 0 && y < ny - 1 && z > 0 && z < nz - 1) {
        out[i] = 0.5f * in[i] + 0.0833f * (in[i - 1] + in[i + 1]
               + in[i - nx] + in[i + nx]
               + in[i - nx * ny] + in[i + nx * ny]);
    }
}
`,
	Setup: func() LaunchSpec {
		const nx, ny, nz = 16, 16, 16
		const n = nx * ny * nz
		r := newLCG(131)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "in", F32: r.f32s(n, 0, 1)},
				{Name: "out", F32: make([]float32, n), Out: true},
				ScalarArg("nx", nx),
				ScalarArg("ny", ny),
				ScalarArg("nz", nz),
			},
		}
	},
	Profile: Profile{
		WGSize: 128, NumWGs: 1664, LocalBytes: 2640, RegsPerThread: 22,
		BaseWGCost: 17000, Imbalance: 0.1, Skew: 0,
		MemIntensity: 0.88, SatFrac: 0.2, InstrCount: 60,
	},
})

var tpacfKernel = register(&Kernel{
	Benchmark: "tpacf",
	Name:      "gen_hists",
	Source: `
/* Two-point angular correlation: histogram dot products of all point
   pairs (triangular loop, strongly front-loaded cost). */
kernel void gen_hists(global const float* ax, global const float* ay,
                      global int* hist, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) {
        int j;
        for (j = i + 1; j < n; ++j) {
            float d = ax[i] * ax[j] + ay[i] * ay[j];
            int bin = clamp((int)((d + 1.0f) * 8.0f), 0, 15);
            atomic_add(&hist[bin], 1);
        }
    }
}
`,
	Setup: func() LaunchSpec {
		const n = 320
		r := newLCG(137)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "ax", F32: r.f32s(n, -1, 1)},
				{Name: "ay", F32: r.f32s(n, -1, 1)},
				{Name: "hist", I32: make([]int32, 16), Out: true},
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 256, NumWGs: 201, LocalBytes: 8192, RegsPerThread: 28,
		BaseWGCost: 35000, Imbalance: 0.3, Skew: 0.35,
		MemIntensity: 0.45, SatFrac: 0.55, InstrCount: 250,
	},
})
