package parboil

// Kernels of mri-gridding (9) and mri-q (2).

var griddingBinning = register(&Kernel{
	Benchmark: "mri-gridding",
	Name:      "binning_kernel",
	Source: `
/* Count samples per uniform grid cell with atomic increments. */
kernel void binning_kernel(global const float* sx, global const float* sy,
                           global int* binCounts, int n, int grid)
{
    int i = (int)get_global_id(0);
    if (i < n) {
        int bx = clamp((int)(sx[i] * (float)grid), 0, grid - 1);
        int by = clamp((int)(sy[i] * (float)grid), 0, grid - 1);
        atomic_add(&binCounts[by * grid + bx], 1);
    }
}
`,
	Setup: func() LaunchSpec {
		const n, grid = 2048, 16
		r := newLCG(53)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "sx", F32: r.f32s(n, 0, 1)},
				{Name: "sy", F32: r.f32s(n, 0, 1)},
				{Name: "binCounts", I32: make([]int32, grid*grid), Out: true},
				ScalarArg("n", n),
				ScalarArg("grid", grid),
			},
		}
	},
	Profile: Profile{
		WGSize: 192, NumWGs: 12288, LocalBytes: 0, RegsPerThread: 16,
		BaseWGCost: 2300, Imbalance: 0.25, Skew: 0.1,
		MemIntensity: 0.8, SatFrac: 0.3, InstrCount: 18,
	},
})

var griddingReorder = register(&Kernel{
	Benchmark: "mri-gridding",
	Name:      "reorder_kernel",
	Source: `
/* Gather samples into bin order using a precomputed permutation. */
kernel void reorder_kernel(global const int* perm, global const float* in,
                           global float* out, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) {
        out[i] = in[perm[i]];
    }
}
`,
	Setup: func() LaunchSpec {
		const n = 2048
		r := newLCG(59)
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		for i := n - 1; i > 0; i-- {
			j := r.intn(int64(i + 1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "perm", I32: perm},
				{Name: "in", F32: r.f32s(n, -1, 1)},
				{Name: "out", F32: make([]float32, n), Out: true},
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 192, NumWGs: 12288, LocalBytes: 0, RegsPerThread: 14,
		BaseWGCost: 2100, Imbalance: 0.2, Skew: 0,
		MemIntensity: 0.85, SatFrac: 0.28, InstrCount: 10,
	},
})

var griddingGPU = register(&Kernel{
	Benchmark: "mri-gridding",
	Name:      "gridding_GPU",
	Source: `
/* Convolution gridding: each output cell accumulates Kaiser-Bessel-like
   weighted contributions of nearby samples. */
kernel void gridding_GPU(global const float* samples, global float* gridded,
                         int nsamp, int gridsz)
{
    int i = (int)get_global_id(0);
    if (i < gridsz) {
        float pos = (float)i;
        float acc = 0.0f;
        int s;
        for (s = 0; s < nsamp; ++s) {
            float d = samples[s * 2] * (float)gridsz - pos;
            if (fabs(d) < 2.0f) {
                acc += samples[s * 2 + 1] * exp(-0.5f * d * d);
            }
        }
        gridded[i] = acc;
    }
}
`,
	Setup: func() LaunchSpec {
		const nsamp, gridsz = 192, 1536
		r := newLCG(61)
		samples := make([]float32, nsamp*2)
		for s := 0; s < nsamp; s++ {
			samples[s*2] = r.f01()
			samples[s*2+1] = r.f01() - 0.5
		}
		return LaunchSpec{
			Dims: 1, Global: [3]int64{gridsz, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "samples", F32: samples},
				{Name: "gridded", F32: make([]float32, gridsz), Out: true},
				ScalarArg("nsamp", nsamp),
				ScalarArg("gridsz", gridsz),
			},
		}
	},
	Profile: Profile{
		WGSize: 64, NumWGs: 1400, LocalBytes: 0, RegsPerThread: 40,
		BaseWGCost: 105000, Imbalance: 0.45, Skew: 0.3,
		MemIntensity: 0.6, SatFrac: 0.35, InstrCount: 300,
	},
})

var griddingSplitSort = register(&Kernel{
	Benchmark: "mri-gridding",
	Name:      "splitSort",
	Source: `
/* Per-work-group bitonic sort of keys in local memory — the most
   imbalance-prone kernel of the gridding pipeline. */
#define SORT_WG 64
kernel void splitSort(global const int* keys, global int* okeys, int n)
{
    local int tile[SORT_WG];
    int lid = (int)get_local_id(0);
    int gid = (int)get_global_id(0);
    tile[lid] = (gid < n) ? keys[gid] : 2147483647;
    barrier(1);
    int k;
    int j;
    for (k = 2; k <= SORT_WG; k <<= 1) {
        for (j = k >> 1; j > 0; j >>= 1) {
            int ixj = lid ^ j;
            if (ixj > lid) {
                int a = tile[lid];
                int b = tile[ixj];
                int up = (lid & k) == 0;
                if ((up && a > b) || (!up && a < b)) {
                    tile[lid] = b;
                    tile[ixj] = a;
                }
            }
            barrier(1);
        }
    }
    if (gid < n) okeys[gid] = tile[lid];
}
`,
	Setup: func() LaunchSpec {
		const n = 2048
		r := newLCG(67)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "keys", I32: r.i32s(n, 1<<30)},
				{Name: "okeys", I32: make([]int32, n), Out: true},
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 128, NumWGs: 896, LocalBytes: 4096, RegsPerThread: 24,
		BaseWGCost: 24000, Imbalance: 0.5, Skew: 0.45,
		MemIntensity: 0.55, SatFrac: 0.4, InstrCount: 150,
	},
})

var griddingSplitRearrange = register(&Kernel{
	Benchmark: "mri-gridding",
	Name:      "splitRearrange",
	Source: `
/* Radix-split bookkeeping: per-group digit counts via local atomics. */
kernel void splitRearrange(global const int* keys, global int* out, int n)
{
    local int cnt[16];
    int lid = (int)get_local_id(0);
    int gid = (int)get_global_id(0);
    if (lid < 16) cnt[lid] = 0;
    barrier(1);
    if (gid < n) atomic_add(&cnt[keys[gid] & 15], 1);
    barrier(1);
    if (gid < n) out[gid] = cnt[keys[gid] & 15] * 256 + (keys[gid] & 15);
}
`,
	Setup: func() LaunchSpec {
		const n = 2048
		r := newLCG(71)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "keys", I32: r.i32s(n, 1<<30)},
				{Name: "out", I32: make([]int32, n), Out: true},
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 128, NumWGs: 896, LocalBytes: 2048, RegsPerThread: 16,
		BaseWGCost: 8000, Imbalance: 0.3, Skew: 0.2,
		MemIntensity: 0.8, SatFrac: 0.3, InstrCount: 38,
	},
})

var griddingScanL1 = register(&Kernel{
	Benchmark: "mri-gridding",
	Name:      "scan_L1",
	Source: `
/* First-level inclusive scan (Hillis-Steele) per work-group, emitting
   per-block sums for the second level. */
#define SCAN_WG 64
kernel void scan_L1(global const int* in, global int* out, global int* sums, int n)
{
    local int temp[SCAN_WG];
    int lid = (int)get_local_id(0);
    int gid = (int)get_global_id(0);
    temp[lid] = (gid < n) ? in[gid] : 0;
    barrier(1);
    int offset;
    for (offset = 1; offset < SCAN_WG; offset <<= 1) {
        int v = 0;
        if (lid >= offset) v = temp[lid - offset];
        barrier(1);
        temp[lid] += v;
        barrier(1);
    }
    if (gid < n) out[gid] = temp[lid];
    if (lid == SCAN_WG - 1) sums[get_group_id(0)] = temp[lid];
}
`,
	Setup: func() LaunchSpec {
		const n = 2048
		r := newLCG(73)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "in", I32: r.i32s(n, 100)},
				{Name: "out", I32: make([]int32, n), Out: true},
				{Name: "sums", I32: make([]int32, n/64), Out: true},
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 256, NumWGs: 3584, LocalBytes: 2048, RegsPerThread: 12,
		BaseWGCost: 6000, Imbalance: 0.05, Skew: 0,
		MemIntensity: 0.75, SatFrac: 0.35, InstrCount: 35,
	},
})

var griddingScanInter1 = register(&Kernel{
	Benchmark: "mri-gridding",
	Name:      "scan_inter1",
	Source: `
/* Second-level scan over the per-block sums (single work-group). */
#define IWG 64
kernel void scan_inter1(global int* sums, int n)
{
    local int temp[IWG];
    int lid = (int)get_local_id(0);
    temp[lid] = (lid < n) ? sums[lid] : 0;
    barrier(1);
    int offset;
    for (offset = 1; offset < IWG; offset <<= 1) {
        int v = 0;
        if (lid >= offset) v = temp[lid - offset];
        barrier(1);
        temp[lid] += v;
        barrier(1);
    }
    if (lid < n) sums[lid] = temp[lid];
}
`,
	Setup: func() LaunchSpec {
		const n = 32
		r := newLCG(79)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{64, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "sums", I32: r.i32s(n, 1000), Out: true},
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 256, NumWGs: 32, LocalBytes: 2048, RegsPerThread: 12,
		BaseWGCost: 60000, Imbalance: 0.05, Skew: 0,
		MemIntensity: 0.7, SatFrac: 0.5, InstrCount: 35,
	},
})

var griddingScanInter2 = register(&Kernel{
	Benchmark: "mri-gridding",
	Name:      "scan_inter2",
	Source: `
/* Convert the inclusive block-sum scan into exclusive offsets. */
kernel void scan_inter2(global const int* insums, global int* exc, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) {
        exc[i] = (i == 0) ? 0 : insums[i - 1];
    }
}
`,
	Setup: func() LaunchSpec {
		const n = 2048
		r := newLCG(83)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "insums", I32: r.i32s(n, 1<<16)},
				{Name: "exc", I32: make([]int32, n), Out: true},
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 256, NumWGs: 10240, LocalBytes: 0, RegsPerThread: 12,
		BaseWGCost: 2300, Imbalance: 0.05, Skew: 0,
		MemIntensity: 0.7, SatFrac: 0.5, InstrCount: 8,
	},
})

var griddingUniformAdd = register(&Kernel{
	Benchmark: "mri-gridding",
	Name:      "uniformAdd",
	Source: `
/* Add each block's scanned offset to its elements. */
kernel void uniformAdd(global int* data, global const int* blockOffsets, int n)
{
    int gid = (int)get_global_id(0);
    if (gid < n) {
        data[gid] += blockOffsets[get_group_id(0)];
    }
}
`,
	Setup: func() LaunchSpec {
		const n = 2048
		r := newLCG(89)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "data", I32: r.i32s(n, 100), Out: true},
				{Name: "blockOffsets", I32: r.i32s(n/64, 1<<16)},
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 256, NumWGs: 14336, LocalBytes: 0, RegsPerThread: 10,
		BaseWGCost: 2200, Imbalance: 0.05, Skew: 0,
		MemIntensity: 0.85, SatFrac: 0.3, InstrCount: 9,
	},
})

var mriqPhiMag = register(&Kernel{
	Benchmark: "mri-q",
	Name:      "ComputePhiMag_GPU",
	Source: `
/* Magnitude of the complex phi coefficients. */
kernel void ComputePhiMag_GPU(global const float* phiR, global const float* phiI,
                              global float* phiMag, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) {
        phiMag[i] = phiR[i] * phiR[i] + phiI[i] * phiI[i];
    }
}
`,
	Setup: func() LaunchSpec {
		const n = 2048
		r := newLCG(97)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "phiR", F32: r.f32s(n, -1, 1)},
				{Name: "phiI", F32: r.f32s(n, -1, 1)},
				{Name: "phiMag", F32: make([]float32, n), Out: true},
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 256, NumWGs: 10240, LocalBytes: 0, RegsPerThread: 12,
		BaseWGCost: 2200, Imbalance: 0.05, Skew: 0,
		MemIntensity: 0.6, SatFrac: 0.6, InstrCount: 10,
	},
})

var mriqComputeQ = register(&Kernel{
	Benchmark: "mri-q",
	Name:      "ComputeQ_GPU",
	Source: `
/* Non-Cartesian MRI Q matrix: per output point, accumulate sinusoids over
   all k-space samples — heavily compute bound. */
kernel void ComputeQ_GPU(global const float* x, global const float* kx,
                         global const float* phiMag,
                         global float* Qr, global float* Qi, int nk, int nx)
{
    int i = (int)get_global_id(0);
    if (i < nx) {
        float qr = 0.0f;
        float qi = 0.0f;
        int k;
        for (k = 0; k < nk; ++k) {
            float phase = 6.2831853f * kx[k] * x[i];
            qr += phiMag[k] * cos(phase);
            qi += phiMag[k] * sin(phase);
        }
        Qr[i] = qr;
        Qi[i] = qi;
    }
}
`,
	Setup: func() LaunchSpec {
		const nk, nx = 192, 768
		r := newLCG(101)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{nx, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "x", F32: r.f32s(nx, -1, 1)},
				{Name: "kx", F32: r.f32s(nk, -4, 4)},
				{Name: "phiMag", F32: r.f32s(nk, 0, 1)},
				{Name: "Qr", F32: make([]float32, nx), Out: true},
				{Name: "Qi", F32: make([]float32, nx), Out: true},
				ScalarArg("nk", nk),
				ScalarArg("nx", nx),
			},
		}
	},
	Profile: Profile{
		WGSize: 256, NumWGs: 2048, LocalBytes: 0, RegsPerThread: 30,
		BaseWGCost: 110000, Imbalance: 0.1, Skew: 0,
		MemIntensity: 0.25, SatFrac: 0.55, InstrCount: 80,
	},
})
