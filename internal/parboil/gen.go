package parboil

// Deterministic input generators for verification launches. A fixed LCG
// keeps every run (and every scheme) on identical data.

type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*6364136223846793005 + 1442695040888963407} }

func (r *lcg) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 17
}

// intn returns a value in [0, n).
func (r *lcg) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// f01 returns a float32 in [0, 1).
func (r *lcg) f01() float32 {
	return float32(r.next()%(1<<24)) / (1 << 24)
}

// f32s fills n floats in [lo, hi).
func (r *lcg) f32s(n int, lo, hi float32) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = lo + (hi-lo)*r.f01()
	}
	return out
}

// i32s fills n ints in [0, mod).
func (r *lcg) i32s(n int, mod int64) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.intn(mod))
	}
	return out
}

// csrGraph builds a deterministic CSR graph with n nodes and roughly
// deg edges per node. Returns (row, col).
func csrGraph(seed uint64, n, deg int) ([]int32, []int32) {
	r := newLCG(seed)
	row := make([]int32, n+1)
	var col []int32
	for v := 0; v < n; v++ {
		row[v] = int32(len(col))
		d := 1 + int(r.intn(int64(2*deg)))
		for e := 0; e < d; e++ {
			col = append(col, int32(r.intn(int64(n))))
		}
	}
	row[n] = int32(len(col))
	return row, col
}
