package parboil

import "testing"

// TestHostAPIEquivalence runs every Parboil kernel's verification
// launch through the event-based host API (async uploads → kernel →
// async read-backs on an out-of-order queue) and requires bit-identical
// buffers against the direct interpreter launch.
func TestHostAPIEquivalence(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.FullName(), func(t *testing.T) {
			t.Parallel()
			if err := k.VerifyHostAPI(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
