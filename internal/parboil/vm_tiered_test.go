package parboil

import (
	"bytes"
	"testing"

	"repro/internal/accelpass"
	"repro/internal/clc"
	"repro/internal/device"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opencl"
	"repro/internal/rtlib"
)

// TestVMParityTieredSliced is the vm-tiered parity axis: every kernel's
// JIT-transformed form starts its sliced execution on the cheap tier-0
// compile, a promotion to the profile-guided tier-1 program is forced
// after the first slice, and the in-flight handle picks the hot-swap up
// at the next slice boundary — the output buffers must still match the
// tree-walker's native run byte for byte. Run with -race this is also
// the concurrent-launch-during-recompile exercise: the controller's
// background workers race the forced promotion and the stepping.
func TestVMParityTieredSliced(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.FullName(), func(t *testing.T) {
			t.Parallel()
			ref, err := k.RunNativeEngine(interp.EngineTreeWalk)
			if err != nil {
				t.Fatalf("tree-walker: %v", err)
			}

			orig, err := clc.Compile(k.Source, k.Name)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			tm := ir.CloneModule(orig)
			res, err := accelpass.Transform(tm)
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			info := res.Kernels[k.Name]
			if info == nil {
				t.Fatal("transformation lost the kernel")
			}

			// A private platform (and so a private machine pool) keeps the
			// controller scoped to this subtest; HotInstrs 1 also lets the
			// background path race the forced promotion below.
			plat := &opencl.Platform{Dev: device.Platforms()[0]}
			tc := interp.NewTierController(interp.TierOptions{HotInstrs: 1, SampleEvery: 1})
			defer tc.Close()
			plat.Machines().SetTierController(tc)

			spec := k.Setup()
			cl, bufs, err := clKernelFromSpec(orig, k.Name, spec)
			if err != nil {
				t.Fatal(err)
			}
			nd := interp.NDRange{Dims: spec.Dims, Global: spec.Global, Local: spec.Local}
			rtWords := rtlib.BuildRT(nd.Dims, nd.NumGroups(), nd.Local, info.Chunk)
			h, err := opencl.NewLaunchHandle(plat, tm, cl, nd, rtWords, 2, rtWords[rtlib.RTChunk])
			if err != nil {
				t.Fatalf("handle: %v", err)
			}
			// No UseProgram: the handle stays unpinned, running whatever the
			// tier controller resolved (tier 0 now, tier 1 after the swap).
			if h.Tier() != 0 {
				t.Fatalf("first slice would run tier %d, want 0", h.Tier())
			}
			h.SetSliceRounds(1) // force many slices
			slices := 0
			for {
				done, err := h.Step()
				if err != nil {
					t.Fatalf("slice %d: %v", slices, err)
				}
				slices++
				if done {
					break
				}
				if slices == 1 {
					// Forced mid-run promotion: recompile at tier 1 with the
					// profile of the first slice and hot-swap.
					tc.PromoteSync(tm)
				}
			}
			if total := nd.TotalGroups(); total > 2 && slices < 2 {
				t.Fatalf("expected a multi-slice execution, got %d slice(s) for %d virtual groups", slices, total)
			}
			if slices >= 3 && h.Tier() != 1 {
				t.Errorf("handle never picked up the tier-1 hot-swap (%d slices, tier %d)", slices, h.Tier())
			}
			for i := range ref {
				if !bytes.Equal(ref[i], bufs[i]) {
					t.Errorf("buffer %d (%s) differs between tree-walker native and tiered VM sliced execution",
						i, spec.Args[i].Name)
				}
			}
		})
	}
}
