package parboil

import (
	"testing"

	"repro/internal/clc"
	"repro/internal/passes"
)

func TestTwentyFiveKernels(t *testing.T) {
	ks := Kernels()
	if len(ks) != 25 {
		t.Fatalf("registered %d kernels, want 25 (the full Parboil OpenCL set)", len(ks))
	}
	seen := map[string]bool{}
	for _, k := range ks {
		if seen[k.FullName()] {
			t.Errorf("duplicate kernel %s", k.FullName())
		}
		seen[k.FullName()] = true
	}
}

func TestAllKernelsCompile(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.FullName(), func(t *testing.T) {
			mod, err := clc.Compile(k.Source, k.Name)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			f := mod.Lookup(k.Name)
			if f == nil || !f.Kernel {
				t.Fatalf("source does not define kernel %q", k.Name)
			}
		})
	}
}

// TestTransformEquivalence is the flagship correctness test: every
// Parboil kernel must produce bit-identical output buffers when executed
// through the accelOS software scheduler with a handful of physical
// work-groups instead of its full NDRange.
func TestTransformEquivalence(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.FullName(), func(t *testing.T) {
			t.Parallel()
			if err := k.VerifyEquivalence(3); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTransformEquivalenceSingleWorker(t *testing.T) {
	// Degenerate allocation: one physical work-group must still compute
	// everything.
	for _, name := range []string{"bfs/BFS_kernel", "mri-gridding/splitSort", "sgemm/mysgemmNT"} {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.VerifyEquivalence(1); err != nil {
			t.Error(err)
		}
	}
}

func TestProfilesPlausible(t *testing.T) {
	for _, k := range Kernels() {
		p := k.Profile
		if p.WGSize < 32 || p.WGSize > 1024 {
			t.Errorf("%s: work-group size %d out of range", k.FullName(), p.WGSize)
		}
		if p.NumWGs < 16 {
			t.Errorf("%s: %d work-groups too few for a benchmark-scale grid", k.FullName(), p.NumWGs)
		}
		if p.BaseWGCost <= 0 {
			t.Errorf("%s: non-positive work-group cost", k.FullName())
		}
		if p.Imbalance < 0 || p.Imbalance > 1 || p.SatFrac < 0 || p.SatFrac > 1 ||
			p.MemIntensity < 0 || p.MemIntensity > 1 {
			t.Errorf("%s: profile fractions out of [0,1]", k.FullName())
		}
	}
}

func TestJITMetadata(t *testing.T) {
	small, err := ByName("histo/histo_final")
	if err != nil {
		t.Fatal(err)
	}
	big, err := ByName("mri-q/ComputeQ_GPU")
	if err != nil {
		t.Fatal(err)
	}
	sm := small.jitMeta()
	bm := big.jitMeta()
	if sm.InstrCount <= 0 || bm.InstrCount <= 0 {
		t.Fatalf("instruction counts not computed: %+v %+v", sm, bm)
	}
	if sm.InstrCount >= bm.InstrCount {
		t.Errorf("histo_final (%d instrs) should be smaller than ComputeQ (%d)", sm.InstrCount, bm.InstrCount)
	}
	if sm.Chunk < bm.Chunk {
		t.Errorf("adaptive chunk should not shrink for smaller kernels: %d vs %d", sm.Chunk, bm.Chunk)
	}
	if got := passes.AdaptiveChunk(sm.InstrCount); got != sm.Chunk {
		t.Errorf("chunk %d does not match the §6.4 table for %d instructions (want %d)", sm.Chunk, sm.InstrCount, got)
	}
}

func TestExecConversion(t *testing.T) {
	for _, k := range Kernels() {
		e := k.Exec(7)
		if e.ID != 7 || e.WGSize != k.Profile.WGSize || e.NumWGs != k.Profile.NumWGs {
			t.Errorf("%s: Exec conversion mismatch", k.FullName())
		}
		if e.Chunk < 1 || e.Chunk > 8 {
			t.Errorf("%s: chunk %d outside the adaptive table", k.FullName(), e.Chunk)
		}
		if e.TransLocalBytes < e.LocalBytes {
			t.Errorf("%s: transformed local memory shrank", k.FullName())
		}
	}
}

func TestGoldenBFS(t *testing.T) {
	k, err := ByName("bfs/BFS_kernel")
	if err != nil {
		t.Fatal(err)
	}
	bufs, err := k.RunNative()
	if err != nil {
		t.Fatal(err)
	}
	// Reference: one BFS level in Go over the same CSR graph.
	const n = 512
	row, col := csrGraph(11, n, 4)
	cost := make([]int32, n)
	for i := range cost {
		cost[i] = -1
	}
	cost[0] = 0
	changed := false
	for node := 0; node < n; node++ {
		if cost[node] != 0 {
			continue
		}
		for e := row[node]; e < row[node+1]; e++ {
			if cost[col[e]] < 0 {
				cost[col[e]] = 1
				changed = true
			}
		}
	}
	for i := 0; i < n; i++ {
		if got := Int32At(bufs[2], i); got != cost[i] {
			t.Fatalf("cost[%d] = %d, want %d", i, got, cost[i])
		}
	}
	if (Int32At(bufs[3], 0) == 1) != changed {
		t.Errorf("changed flag mismatch")
	}
}

func TestGoldenSgemm(t *testing.T) {
	k, err := ByName("sgemm/mysgemmNT")
	if err != nil {
		t.Fatal(err)
	}
	bufs, err := k.RunNative()
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	spec := k.Setup()
	a, b := spec.Args[0].F32, spec.Args[1].F32
	for row := 0; row < n; row += 17 { // spot-check rows
		for colI := 0; colI < n; colI += 13 {
			var want float32
			for kk := 0; kk < n; kk++ {
				want += a[row*n+kk] * b[kk*n+colI]
			}
			got := Float32At(bufs[2], row*n+colI)
			if diff := want - got; diff > 1e-2 || diff < -1e-2 {
				t.Fatalf("C[%d,%d] = %v, want %v", row, colI, got, want)
			}
		}
	}
}

func TestGoldenSplitSortSorts(t *testing.T) {
	k, err := ByName("mri-gridding/splitSort")
	if err != nil {
		t.Fatal(err)
	}
	bufs, err := k.RunNative()
	if err != nil {
		t.Fatal(err)
	}
	const n, wg = 2048, 64
	for g := 0; g < n/wg; g++ {
		prev := Int32At(bufs[1], g*wg)
		for i := 1; i < wg; i++ {
			cur := Int32At(bufs[1], g*wg+i)
			if cur < prev {
				t.Fatalf("group %d not sorted at %d: %d < %d", g, i, cur, prev)
			}
			prev = cur
		}
	}
}
