// Package parboil provides the 25 OpenCL kernels of the Parboil
// benchmark suite (Stratton et al., 2012) as used in the paper's
// evaluation (§7.2), rebuilt for this reproduction:
//
//   - each kernel is real CLC source that compiles through internal/clc,
//     runs on the interpreter, and goes through the accelOS JIT
//     transformation (a per-kernel launch spec with deterministic inputs
//     supports original-vs-transformed equivalence checking);
//   - each kernel carries a calibrated timing profile (work-group count
//     and size, per-group cost, imbalance, skew, memory intensity,
//     scalability roof, footprint) that drives the discrete-event
//     simulator for the paper's figures.
//
// The kernel bodies are faithful simplifications: they preserve each
// kernel's computational pattern (atomics for histogramming, local-memory
// tiles and barriers for scans/stencils/sgemm, irregular gather for
// spmv/bfs), while profiles carry the performance characteristics. All
// kernels produce deterministic outputs (no atomic-append compaction), so
// transformed execution must match natively bit for bit.
package parboil

import (
	"fmt"
	"sync"

	"repro/internal/accelpass"
	"repro/internal/clc"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/sim"
)

// Profile is the calibrated cost model of one kernel at benchmark scale.
type Profile struct {
	WGSize        int64
	NumWGs        int64
	LocalBytes    int64
	RegsPerThread int64

	BaseWGCost   int64
	Imbalance    float64
	Skew         float64
	MemIntensity float64
	SatFrac      float64

	// InstrCount is the IR instruction count of the benchmark-scale
	// kernel (the real Parboil kernel is larger than the simplified
	// source here); it selects the §6.4 adaptive chunk in simulation.
	InstrCount int
}

// Arg describes one kernel argument for the verification launch.
// Exactly one of the value fields is set.
type Arg struct {
	Name   string
	I32    []int32   // int buffer
	F32    []float32 // float buffer
	I64    []int64   // long buffer
	Scalar *int64    // int scalar
	Out    bool      // output buffer: compared between runs
}

// ScalarArg builds an int scalar argument.
func ScalarArg(name string, v int64) Arg {
	val := v
	return Arg{Name: name, Scalar: &val}
}

// LaunchSpec is a concrete, small-scale launch used for functional
// verification on the interpreter.
type LaunchSpec struct {
	Dims   int
	Global [3]int64
	Local  [3]int64
	Args   []Arg
}

// Kernel is one Parboil kernel: source, verification launch and timing
// profile.
type Kernel struct {
	Benchmark string
	Name      string
	Source    string
	// Setup builds a deterministic small-scale verification launch.
	Setup   func() LaunchSpec
	Profile Profile
}

// FullName returns "benchmark/kernel".
func (k *Kernel) FullName() string { return k.Benchmark + "/" + k.Name }

var (
	regMu    sync.Mutex
	registry []*Kernel
)

func register(k *Kernel) *Kernel {
	regMu.Lock()
	defer regMu.Unlock()
	registry = append(registry, k)
	return k
}

// Kernels returns all 25 Parboil kernels in registration (alphabetical
// benchmark) order.
func Kernels() []*Kernel {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Kernel, len(registry))
	copy(out, registry)
	return out
}

// ByName finds a kernel by "benchmark/kernel" or bare kernel name.
func ByName(name string) (*Kernel, error) {
	for _, k := range Kernels() {
		if k.FullName() == name || k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("parboil: unknown kernel %q", name)
}

// Exec converts the kernel's profile into a simulator execution request.
// The adaptive chunk follows the §6.4 table applied to the profile's
// benchmark-scale instruction count (the simplified sources in this
// repository under-count the real kernels); the transformed footprint
// deltas come from the JIT metadata.
func (k *Kernel) Exec(id int) *sim.KernelExec {
	p := k.Profile
	return &sim.KernelExec{
		ID:            id,
		Name:          k.FullName(),
		WGSize:        p.WGSize,
		NumWGs:        p.NumWGs,
		LocalBytes:    p.LocalBytes,
		RegsPerThread: p.RegsPerThread,

		BaseWGCost:   p.BaseWGCost,
		Imbalance:    p.Imbalance,
		Skew:         p.Skew,
		MemIntensity: p.MemIntensity,
		SatFrac:      p.SatFrac,

		Chunk:              int64(passes.AdaptiveChunk(p.InstrCount)),
		TransRegsPerThread: p.RegsPerThread + 1,
		TransLocalBytes:    p.LocalBytes + 32,
	}
}

// JITMeta is the transformation metadata extracted from the compiled
// kernel.
type JITMeta struct {
	InstrCount int
	Chunk      int
	SDBytes    int64
}

var (
	metaMu    sync.Mutex
	metaCache = map[string]JITMeta{}
)

// jitMeta compiles and transforms the kernel source once and caches the
// adaptive-scheduling metadata.
func (k *Kernel) jitMeta() JITMeta {
	metaMu.Lock()
	defer metaMu.Unlock()
	if m, ok := metaCache[k.FullName()]; ok {
		return m
	}
	m := JITMeta{Chunk: 1, SDBytes: 32}
	mod, err := clc.Compile(k.Source, k.Name)
	if err == nil {
		if res, terr := accelpass.Transform(mod); terr == nil {
			if info, ok := res.Kernels[k.Name]; ok {
				m.InstrCount = info.InstrCount
				m.Chunk = info.Chunk
				m.SDBytes = 32
			}
		}
	}
	metaCache[k.FullName()] = m
	return m
}

// Compile compiles the kernel's source to an IR module.
func (k *Kernel) Compile() (*ir.Module, error) {
	return clc.Compile(k.Source, k.Benchmark+"_"+k.Name)
}
