package parboil

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/accelpass"
	"repro/internal/clc"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/rtlib"
)

// VerifyEquivalence compiles the kernel, runs its verification launch
// natively and through the accelOS transformation with physGroups
// physical work-groups, and compares every output buffer byte for byte.
// It is the end-to-end correctness check of the JIT pipeline (the paper's
// claim that the transformation is semantics-preserving).
func (k *Kernel) VerifyEquivalence(physGroups int64) error {
	orig, err := clc.Compile(k.Source, k.Name)
	if err != nil {
		return fmt.Errorf("%s: compile: %w", k.FullName(), err)
	}
	tm := ir.CloneModule(orig)
	res, err := accelpass.Transform(tm)
	if err != nil {
		return fmt.Errorf("%s: transform: %w", k.FullName(), err)
	}
	info := res.Kernels[k.Name]
	if info == nil {
		return fmt.Errorf("%s: transformation lost the kernel", k.FullName())
	}
	spec := k.Setup()

	native, err := runSpec(orig, k.Name, spec, nil, 0)
	if err != nil {
		return fmt.Errorf("%s: native run: %w", k.FullName(), err)
	}
	trans, err := runSpec(tm, k.Name, spec, info, physGroups)
	if err != nil {
		return fmt.Errorf("%s: transformed run: %w", k.FullName(), err)
	}
	for i := range native {
		if !bytes.Equal(native[i], trans[i]) {
			return fmt.Errorf("%s: output buffer %d (%s) differs between native and transformed execution",
				k.FullName(), i, spec.Args[i].Name)
		}
	}
	return nil
}

// runSpec executes one launch of the kernel over the interpreter and
// returns the final bytes of every argument buffer (outputs and inputs
// alike; inputs must come back untouched unless marked Out).
func runSpec(mod *ir.Module, kernel string, spec LaunchSpec, info *accelpass.KernelInfo, physGroups int64) ([][]byte, error) {
	return runSpecEngine(mod, kernel, spec, info, physGroups, interp.EngineVM)
}

// runSpecEngine is runSpec on an explicit execution engine; the
// differential parity suite runs every kernel on both and compares.
func runSpecEngine(mod *ir.Module, kernel string, spec LaunchSpec, info *accelpass.KernelInfo, physGroups int64, eng interp.Engine) ([][]byte, error) {
	mach := interp.NewMachine(mod)
	mach.Engine = eng
	args, bufs, err := bindSpecArgs(mach, spec)
	if err != nil {
		return nil, err
	}
	nd := interp.NDRange{Dims: spec.Dims, Global: spec.Global, Local: spec.Local}
	if info != nil {
		// Transformed execution: append the RT descriptor and shrink the
		// physical grid (the Kernel Scheduler's job, §5).
		rtWords := rtlib.BuildRT(nd.Dims, nd.NumGroups(), nd.Local, info.Chunk)
		rtr := mach.NewRegion(rtlib.RTWords*8, ir.Global)
		rtr.WriteInt64s(0, rtWords)
		args = append(args, interp.Value{K: ir.Pointer, P: interp.Ptr{R: rtr}})
		if physGroups < 1 {
			physGroups = 1
		}
		nd = interp.NDRange{
			Dims:   nd.Dims,
			Global: [3]int64{physGroups * nd.Local[0], nd.Local[1], nd.Local[2]},
			Local:  nd.Local,
		}
	}
	if err := mach.Launch(kernel, args, nd); err != nil {
		return nil, err
	}
	return bufs, nil
}

// bindSpecArgs materializes the spec's arguments on the machine:
// scalars as values, arrays as freshly written global regions. The
// returned bufs parallel the args (nil entries for scalars) and alias
// the regions' backing bytes for output comparison.
func bindSpecArgs(mach *interp.Machine, spec LaunchSpec) ([]interp.Value, [][]byte, error) {
	var args []interp.Value
	var bufs [][]byte
	for _, a := range spec.Args {
		switch {
		case a.Scalar != nil:
			args = append(args, interp.IntV(*a.Scalar))
			bufs = append(bufs, nil)
		case a.I32 != nil:
			r := mach.NewRegion(int64(len(a.I32))*4, ir.Global)
			r.WriteInt32s(0, a.I32)
			args = append(args, interp.Value{K: ir.Pointer, P: interp.Ptr{R: r}})
			bufs = append(bufs, r.Bytes)
		case a.F32 != nil:
			r := mach.NewRegion(int64(len(a.F32))*4, ir.Global)
			r.WriteFloat32s(0, a.F32)
			args = append(args, interp.Value{K: ir.Pointer, P: interp.Ptr{R: r}})
			bufs = append(bufs, r.Bytes)
		case a.I64 != nil:
			r := mach.NewRegion(int64(len(a.I64))*8, ir.Global)
			r.WriteInt64s(0, a.I64)
			args = append(args, interp.Value{K: ir.Pointer, P: interp.Ptr{R: r}})
			bufs = append(bufs, r.Bytes)
		default:
			return nil, nil, fmt.Errorf("argument %q has no value", a.Name)
		}
	}
	return args, bufs, nil
}

// Reference helpers used by golden tests.

// Float32At reads a float32 from little-endian buffer bytes.
func Float32At(b []byte, i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
}

// Int32At reads an int32 from little-endian buffer bytes.
func Int32At(b []byte, i int) int32 {
	return int32(binary.LittleEndian.Uint32(b[i*4:]))
}

// RunNative executes the kernel's verification launch natively and
// returns the final contents of every argument buffer (nil entries for
// scalars). Used by golden-reference tests and examples.
func (k *Kernel) RunNative() ([][]byte, error) {
	return k.RunNativeEngine(interp.EngineVM)
}

// RunNativeEngine is RunNative on an explicit interpreter engine.
func (k *Kernel) RunNativeEngine(eng interp.Engine) ([][]byte, error) {
	mod, err := clc.Compile(k.Source, k.Name)
	if err != nil {
		return nil, err
	}
	return runSpecEngine(mod, k.Name, k.Setup(), nil, 0, eng)
}

// RunNativeVM runs the verification launch on the bytecode VM compiled
// with explicit optimization settings — the O0/O1 axes of the
// differential parity suite.
func (k *Kernel) RunNativeVM(opts interp.CompileOpts) ([][]byte, error) {
	mod, err := clc.Compile(k.Source, k.Name)
	if err != nil {
		return nil, err
	}
	mach := interp.NewMachine(mod)
	mach.UseProgram(interp.CompileModuleOpts(mod, opts))
	spec := k.Setup()
	args, bufs, err := bindSpecArgs(mach, spec)
	if err != nil {
		return nil, err
	}
	nd := interp.NDRange{Dims: spec.Dims, Global: spec.Global, Local: spec.Local}
	if err := mach.Launch(k.Name, args, nd); err != nil {
		return nil, err
	}
	return bufs, nil
}

// PreparedLaunch is a reusable native verification launch: a machine
// with the spec's buffers bound, ready to Launch repeatedly over the
// same memory. Benchmarks use it to time kernel execution in isolation
// from front-end compilation and buffer setup.
type PreparedLaunch struct {
	Mach   *interp.Machine
	Kernel string
	Args   []interp.Value
	ND     interp.NDRange
}

// PrepareNative compiles the kernel once and binds its verification
// launch onto a machine with the given engine.
func (k *Kernel) PrepareNative(eng interp.Engine) (*PreparedLaunch, error) {
	mod, err := clc.Compile(k.Source, k.Name)
	if err != nil {
		return nil, err
	}
	mach := interp.NewMachine(mod)
	mach.Engine = eng
	spec := k.Setup()
	args, _, err := bindSpecArgs(mach, spec)
	if err != nil {
		return nil, err
	}
	return &PreparedLaunch{
		Mach:   mach,
		Kernel: k.Name,
		Args:   args,
		ND:     interp.NDRange{Dims: spec.Dims, Global: spec.Global, Local: spec.Local},
	}, nil
}

// Run executes the prepared launch once.
func (pl *PreparedLaunch) Run() error {
	return pl.Mach.Launch(pl.Kernel, pl.Args, pl.ND)
}
