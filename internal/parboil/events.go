package parboil

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/clc"
	"repro/internal/opencl"
)

// VerifyHostAPI runs the kernel's verification launch through the
// event-based OpenCL host API — context buffers, an out-of-order
// command queue, and wait-list edges (uploads → kernel → read-backs) —
// and compares every argument buffer byte for byte against the
// machine-level native reference (RunNative). It is the end-to-end
// check that the asynchronous command path preserves the semantics of
// the direct interpreter launch.
func (k *Kernel) VerifyHostAPI() error {
	native, err := k.RunNative()
	if err != nil {
		return fmt.Errorf("%s: native run: %w", k.FullName(), err)
	}
	mod, err := clc.Compile(k.Source, k.Name)
	if err != nil {
		return fmt.Errorf("%s: compile: %w", k.FullName(), err)
	}
	ctx := opencl.GetPlatforms()[0].CreateContext()
	prog := &opencl.Program{Ctx: ctx, Module: mod}
	cl, err := prog.CreateKernel(k.Name)
	if err != nil {
		return fmt.Errorf("%s: %w", k.FullName(), err)
	}
	spec := k.Setup()
	q := ctx.CreateOutOfOrderQueue()

	// Upload every array argument asynchronously; the kernel waits on
	// all of the uploads through its wait list.
	var uploads []*opencl.Event
	bufs := make([]*opencl.Buffer, len(spec.Args))
	for i, a := range spec.Args {
		if a.Scalar != nil {
			if err := cl.SetArgInt32(i, int32(*a.Scalar)); err != nil {
				return err
			}
			continue
		}
		host := encodeArg(a)
		if host == nil {
			return fmt.Errorf("%s: argument %q has no value", k.FullName(), a.Name)
		}
		b, err := ctx.CreateBuffer(int64(len(host)))
		if err != nil {
			return fmt.Errorf("%s: buffer %q: %w", k.FullName(), a.Name, err)
		}
		bufs[i] = b
		ev, err := q.EnqueueWrite(b, 0, host)
		if err != nil {
			return fmt.Errorf("%s: write %q: %w", k.FullName(), a.Name, err)
		}
		uploads = append(uploads, ev)
		if err := cl.SetArgBuffer(i, b); err != nil {
			return err
		}
	}
	nd := opencl.NDRange{Dims: spec.Dims, Global: spec.Global, Local: spec.Local}
	kev, err := q.EnqueueKernel(cl, nd, uploads...)
	if err != nil {
		return fmt.Errorf("%s: enqueue: %w", k.FullName(), err)
	}
	// Read every buffer back behind the kernel and compare.
	outs := make([][]byte, len(spec.Args))
	var reads []*opencl.Event
	for i, b := range bufs {
		if b == nil {
			continue
		}
		outs[i] = make([]byte, b.Size)
		ev, err := q.EnqueueRead(b, 0, outs[i], kev)
		if err != nil {
			return fmt.Errorf("%s: read %q: %w", k.FullName(), spec.Args[i].Name, err)
		}
		reads = append(reads, ev)
	}
	if err := opencl.WaitAll(reads...); err != nil {
		return fmt.Errorf("%s: pipeline: %w", k.FullName(), err)
	}
	if err := q.Finish(); err != nil {
		return err
	}
	for i := range spec.Args {
		if outs[i] == nil {
			continue
		}
		if !bytes.Equal(native[i], outs[i]) {
			return fmt.Errorf("%s: buffer %d (%s) differs between native and host-API execution",
				k.FullName(), i, spec.Args[i].Name)
		}
	}
	return nil
}

// EncodeArg renders an array argument's initial contents as
// little-endian bytes (nil for scalar arguments). Exported for
// harnesses that replay verification launches through other transport
// boundaries (the out-of-process service).
func EncodeArg(a Arg) []byte { return encodeArg(a) }

// encodeArg renders an array argument's initial contents as little-
// endian bytes (nil for scalars).
func encodeArg(a Arg) []byte {
	switch {
	case a.I32 != nil:
		out := make([]byte, 4*len(a.I32))
		for i, v := range a.I32 {
			binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
		}
		return out
	case a.F32 != nil:
		out := make([]byte, 4*len(a.F32))
		for i, v := range a.F32 {
			binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
		}
		return out
	case a.I64 != nil:
		out := make([]byte, 8*len(a.I64))
		for i, v := range a.I64 {
			binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
		}
		return out
	}
	return nil
}
