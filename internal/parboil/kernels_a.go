package parboil

// Kernels of bfs, cutcp, histo and lbm.

var bfsKernel = register(&Kernel{
	Benchmark: "bfs",
	Name:      "BFS_kernel",
	Source: `
/* One level of breadth-first search over a CSR graph. Nodes at the
   current level relax their unvisited neighbours; the benign write race
   (all writers store level+1) keeps the result deterministic. */
kernel void BFS_kernel(global const int* row, global const int* col,
                       global int* cost, global int* changed,
                       int level, int n)
{
    int node = (int)get_global_id(0);
    if (node < n && cost[node] == level) {
        int e;
        for (e = row[node]; e < row[node + 1]; ++e) {
            int nb = col[e];
            if (cost[nb] < 0) {
                cost[nb] = level + 1;
                changed[0] = 1;
            }
        }
    }
}
`,
	Setup: func() LaunchSpec {
		const n = 512
		row, col := csrGraph(11, n, 4)
		cost := make([]int32, n)
		for i := range cost {
			cost[i] = -1
		}
		cost[0] = 0
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "row", I32: row},
				{Name: "col", I32: col},
				{Name: "cost", I32: cost, Out: true},
				{Name: "changed", I32: make([]int32, 1), Out: true},
				ScalarArg("level", 0),
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 64, NumWGs: 1536, LocalBytes: 0, RegsPerThread: 18,
		BaseWGCost: 9000, Imbalance: 0.35, Skew: 0.15,
		MemIntensity: 0.85, SatFrac: 0.22, InstrCount: 80,
	},
})

var cutcpKernel = register(&Kernel{
	Benchmark: "cutcp",
	Name:      "lattice6overlap",
	Source: `
/* Cutoff Coulombic potential: every lattice point accumulates the
   potential of atoms within the cutoff radius. */
kernel void lattice6overlap(global const float* atoms, global float* lattice,
                            int natoms, int npoints)
{
    int i = (int)get_global_id(0);
    if (i < npoints) {
        float x = (float)(i % 32);
        float y = (float)((i / 32) % 32);
        float z = (float)(i / 1024);
        float energy = 0.0f;
        int a;
        for (a = 0; a < natoms; ++a) {
            float dx = atoms[a * 4] - x;
            float dy = atoms[a * 4 + 1] - y;
            float dz = atoms[a * 4 + 2] - z;
            float r2 = dx * dx + dy * dy + dz * dz;
            if (r2 < 64.0f) {
                float s = 1.0f - r2 * 0.015625f;
                energy += atoms[a * 4 + 3] * rsqrt(r2 + 0.5f) * s * s;
            }
        }
        lattice[i] = energy;
    }
}
`,
	Setup: func() LaunchSpec {
		const natoms, npoints = 64, 2048
		r := newLCG(23)
		atoms := make([]float32, natoms*4)
		for a := 0; a < natoms; a++ {
			atoms[a*4] = 32 * r.f01()
			atoms[a*4+1] = 32 * r.f01()
			atoms[a*4+2] = 2 * r.f01()
			atoms[a*4+3] = 0.2 + r.f01()
		}
		return LaunchSpec{
			Dims: 1, Global: [3]int64{npoints, 1, 1}, Local: [3]int64{128, 1, 1},
			Args: []Arg{
				{Name: "atoms", F32: atoms},
				{Name: "lattice", F32: make([]float32, npoints), Out: true},
				ScalarArg("natoms", natoms),
				ScalarArg("npoints", npoints),
			},
		}
	},
	Profile: Profile{
		WGSize: 128, NumWGs: 768, LocalBytes: 2048, RegsPerThread: 32,
		BaseWGCost: 46000, Imbalance: 0.15, Skew: 0,
		MemIntensity: 0.35, SatFrac: 0.5, InstrCount: 120,
	},
})

var histoPrescan = register(&Kernel{
	Benchmark: "histo",
	Name:      "histo_prescan",
	Source: `
/* Input range prescan: local tree reduction of min/max, merged into a
   global result with atomics. */
#define PSWG 128
kernel void histo_prescan(global const int* data, int n, global int* minmax)
{
    local int lmin[PSWG];
    local int lmax[PSWG];
    int lid = (int)get_local_id(0);
    int gid = (int)get_global_id(0);
    int v = (gid < n) ? data[gid] : data[0];
    lmin[lid] = v;
    lmax[lid] = v;
    barrier(1);
    int s;
    for (s = PSWG / 2; s > 0; s >>= 1) {
        if (lid < s) {
            lmin[lid] = min(lmin[lid], lmin[lid + s]);
            lmax[lid] = max(lmax[lid], lmax[lid + s]);
        }
        barrier(1);
    }
    if (lid == 0) {
        atomic_min(&minmax[0], lmin[0]);
        atomic_max(&minmax[1], lmax[0]);
    }
}
`,
	Setup: func() LaunchSpec {
		const n = 2048
		r := newLCG(31)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{128, 1, 1},
			Args: []Arg{
				{Name: "data", I32: r.i32s(n, 1<<20)},
				ScalarArg("n", n),
				{Name: "minmax", I32: []int32{1 << 30, -(1 << 30)}, Out: true},
			},
		}
	},
	Profile: Profile{
		WGSize: 256, NumWGs: 1024, LocalBytes: 1024, RegsPerThread: 14,
		BaseWGCost: 3000, Imbalance: 0.1, Skew: 0,
		MemIntensity: 0.7, SatFrac: 0.3, InstrCount: 60,
	},
})

var histoIntermediates = register(&Kernel{
	Benchmark: "histo",
	Name:      "histo_intermediates",
	Source: `
/* Convert input samples into bin indices for the main histogramming
   pass. */
kernel void histo_intermediates(global const int* input, global int* bins, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) {
        int v = input[i];
        if (v < 0) v = -v;
        bins[i] = (v * 7 + (v >> 5)) % 1024;
    }
}
`,
	Setup: func() LaunchSpec {
		const n = 4096
		r := newLCG(37)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "input", I32: r.i32s(n, 1<<22)},
				{Name: "bins", I32: make([]int32, n), Out: true},
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 192, NumWGs: 12288, LocalBytes: 0, RegsPerThread: 16,
		BaseWGCost: 2200, Imbalance: 0.1, Skew: 0,
		MemIntensity: 0.75, SatFrac: 0.35, InstrCount: 18,
	},
})

var histoMain = register(&Kernel{
	Benchmark: "histo",
	Name:      "histo_main",
	Source: `
/* Main histogramming pass: scattered atomic increments over the bin
   array — the classic contention-heavy Parboil kernel. */
kernel void histo_main(global const int* indices, int n, global int* histo)
{
    int i = (int)get_global_id(0);
    if (i < n) {
        atomic_add(&histo[indices[i]], 1);
    }
}
`,
	Setup: func() LaunchSpec {
		const n, bins = 4096, 1024
		r := newLCG(41)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "indices", I32: r.i32s(n, bins)},
				ScalarArg("n", n),
				{Name: "histo", I32: make([]int32, bins), Out: true},
			},
		}
	},
	Profile: Profile{
		WGSize: 256, NumWGs: 512, LocalBytes: 4096, RegsPerThread: 22,
		BaseWGCost: 30000, Imbalance: 0.4, Skew: 0.2,
		MemIntensity: 0.85, SatFrac: 0.25, InstrCount: 90,
	},
})

var histoFinal = register(&Kernel{
	Benchmark: "histo",
	Name:      "histo_final",
	Source: `
/* Saturate bin counts to the 8-bit output format. */
kernel void histo_final(global const int* histo, global int* out, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) {
        out[i] = min(histo[i], 255);
    }
}
`,
	Setup: func() LaunchSpec {
		const n = 1024
		r := newLCG(43)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1},
			Args: []Arg{
				{Name: "histo", I32: r.i32s(n, 600)},
				{Name: "out", I32: make([]int32, n), Out: true},
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 256, NumWGs: 12288, LocalBytes: 0, RegsPerThread: 12,
		BaseWGCost: 2400, Imbalance: 0.1, Skew: 0,
		MemIntensity: 0.8, SatFrac: 0.4, InstrCount: 12,
	},
})

var lbmKernel = register(&Kernel{
	Benchmark: "lbm",
	Name:      "performStreamCollide",
	Source: `
/* Lattice-Boltzmann stream-and-collide step over a flattened grid with
   periodic boundaries (reduced neighbour set). */
kernel void performStreamCollide(global const float* src, global float* dst,
                                 int nx, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) {
        float c = src[i];
        float e = src[(i + 1) % n];
        float w = src[(i + n - 1) % n];
        float no = src[(i + nx) % n];
        float so = src[(i + n - nx) % n];
        float rho = c + e + w + no + so;
        float u = (e - w) * 0.1f + (no - so) * 0.05f;
        float eq = rho * 0.2f * (1.0f + 3.0f * u + 4.5f * u * u);
        dst[i] = c + 0.6f * (eq - c);
    }
}
`,
	Setup: func() LaunchSpec {
		const nx, n = 64, 4096
		r := newLCG(47)
		return LaunchSpec{
			Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{128, 1, 1},
			Args: []Arg{
				{Name: "src", F32: r.f32s(n, 0.5, 1.5)},
				{Name: "dst", F32: make([]float32, n), Out: true},
				ScalarArg("nx", nx),
				ScalarArg("n", n),
			},
		}
	},
	Profile: Profile{
		WGSize: 128, NumWGs: 2048, LocalBytes: 0, RegsPerThread: 38,
		BaseWGCost: 44000, Imbalance: 0.08, Skew: 0,
		MemIntensity: 0.9, SatFrac: 0.18, InstrCount: 600,
	},
})
