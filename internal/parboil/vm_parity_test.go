package parboil

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/accelpass"
	"repro/internal/clc"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opencl"
	"repro/internal/rtlib"
)

// vmParityO0 compiles the bytecode exactly as PR 3 shipped it: no O1
// pipeline, no superinstruction fusion (WarpWidth zero: scalar).
var vmParityO0 = interp.CompileOpts{Disable: []string{"fuse"}}

// vmParityO1 is the O1 pipeline plus fusion on the scalar per-item
// engine — DefaultCompileOpts minus warp execution.
var vmParityO1 = interp.CompileOpts{Opt: true}

// TestVMParityNative is the differential suite over the native path,
// now a four-axis comparison: every Parboil kernel runs its
// verification launch on (1) the tree-walking reference interpreter,
// (2) the bytecode VM without any optimization, (3) the scalar VM
// behind the full O1 pipeline plus fusion, and (4) the warp-batched
// engine (DefaultCompileOpts, 64-lane warps with divergence spill),
// with identical inputs — and every argument buffer must match byte
// for byte across all four.
func TestVMParityNative(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.FullName(), func(t *testing.T) {
			t.Parallel()
			ref, err := k.RunNativeEngine(interp.EngineTreeWalk)
			if err != nil {
				t.Fatalf("tree-walker: %v", err)
			}
			vm0, err := k.RunNativeVM(vmParityO0)
			if err != nil {
				t.Fatalf("vm O0: %v", err)
			}
			vm1, err := k.RunNativeVM(vmParityO1)
			if err != nil {
				t.Fatalf("vm O1: %v", err)
			}
			vmw, err := k.RunNativeVM(interp.DefaultCompileOpts)
			if err != nil {
				t.Fatalf("vm warp: %v", err)
			}
			spec := k.Setup()
			for i := range ref {
				if !bytes.Equal(ref[i], vm0[i]) {
					t.Errorf("buffer %d (%s) differs between tree-walker and unoptimized VM", i, spec.Args[i].Name)
				}
				if !bytes.Equal(ref[i], vm1[i]) {
					t.Errorf("buffer %d (%s) differs between tree-walker and O1 VM", i, spec.Args[i].Name)
				}
				if !bytes.Equal(ref[i], vmw[i]) {
					t.Errorf("buffer %d (%s) differs between tree-walker and warp VM", i, spec.Args[i].Name)
				}
			}
		})
	}
}

// TestVMParityTransformedSliced is the differential suite over the live
// execution path: every kernel's JIT-transformed form runs as a
// multi-slice LaunchHandle execution on the VM (one dequeue round per
// slice, a reduced physical grid) — once on unoptimized bytecode and
// once behind the O1 pipeline — and both must reproduce the
// tree-walker's native output buffers byte for byte.
func TestVMParityTransformedSliced(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.FullName(), func(t *testing.T) {
			t.Parallel()
			ref, err := k.RunNativeEngine(interp.EngineTreeWalk)
			if err != nil {
				t.Fatalf("tree-walker: %v", err)
			}

			orig, err := clc.Compile(k.Source, k.Name)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			tm := ir.CloneModule(orig)
			res, err := accelpass.Transform(tm)
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			info := res.Kernels[k.Name]
			if info == nil {
				t.Fatal("transformation lost the kernel")
			}

			spec := k.Setup()
			for _, variant := range []struct {
				name string
				prog *interp.Prog
			}{
				{"warp", interp.CompileModuleOpts(tm, interp.DefaultCompileOpts)},
				{"O1", interp.CompileModuleOpts(tm, vmParityO1)},
				{"O0", interp.CompileModuleOpts(tm, vmParityO0)},
			} {
				cl, bufs, err := clKernelFromSpec(orig, k.Name, spec)
				if err != nil {
					t.Fatal(err)
				}
				nd := interp.NDRange{Dims: spec.Dims, Global: spec.Global, Local: spec.Local}
				rtWords := rtlib.BuildRT(nd.Dims, nd.NumGroups(), nd.Local, info.Chunk)
				h, err := opencl.NewLaunchHandle(nil, tm, cl, nd, rtWords, 2, rtWords[rtlib.RTChunk])
				if err != nil {
					t.Fatalf("%s handle: %v", variant.name, err)
				}
				h.UseProgram(variant.prog)
				h.SetSliceRounds(1) // force many slices
				slices := 0
				for {
					done, err := h.Step()
					if err != nil {
						t.Fatalf("%s slice %d: %v", variant.name, slices, err)
					}
					slices++
					if done {
						break
					}
				}
				if total := nd.TotalGroups(); total > 2 && slices < 2 {
					t.Fatalf("%s: expected a multi-slice execution, got %d slice(s) for %d virtual groups",
						variant.name, slices, total)
				}
				for i := range ref {
					if !bytes.Equal(ref[i], bufs[i]) {
						t.Errorf("buffer %d (%s) differs between tree-walker native and %s VM sliced execution",
							i, spec.Args[i].Name, variant.name)
					}
				}
			}
		})
	}
}

// clKernelFromSpec materializes an opencl.Kernel over the module with
// the spec's arguments bound as device buffers, returning the backing
// bytes of each argument (nil for scalars) for output comparison.
func clKernelFromSpec(mod *ir.Module, name string, spec LaunchSpec) (*opencl.Kernel, [][]byte, error) {
	p := &opencl.Program{Module: mod}
	cl, err := p.CreateKernel(name)
	if err != nil {
		return nil, nil, err
	}
	var bufs [][]byte
	for i, a := range spec.Args {
		switch {
		case a.Scalar != nil:
			if err := cl.SetArgInt32(i, int32(*a.Scalar)); err != nil {
				return nil, nil, err
			}
			bufs = append(bufs, nil)
		case a.I32 != nil:
			b := make([]byte, 4*len(a.I32))
			for j, v := range a.I32 {
				binary.LittleEndian.PutUint32(b[4*j:], uint32(v))
			}
			if err := cl.SetArgBuffer(i, &opencl.Buffer{Size: int64(len(b)), Bytes: b}); err != nil {
				return nil, nil, err
			}
			bufs = append(bufs, b)
		case a.F32 != nil:
			b := make([]byte, 4*len(a.F32))
			for j, v := range a.F32 {
				binary.LittleEndian.PutUint32(b[4*j:], math.Float32bits(v))
			}
			if err := cl.SetArgBuffer(i, &opencl.Buffer{Size: int64(len(b)), Bytes: b}); err != nil {
				return nil, nil, err
			}
			bufs = append(bufs, b)
		case a.I64 != nil:
			b := make([]byte, 8*len(a.I64))
			for j, v := range a.I64 {
				binary.LittleEndian.PutUint64(b[8*j:], uint64(v))
			}
			if err := cl.SetArgBuffer(i, &opencl.Buffer{Size: int64(len(b)), Bytes: b}); err != nil {
				return nil, nil, err
			}
			bufs = append(bufs, b)
		}
	}
	return cl, bufs, nil
}
