package ir

import "testing"

func TestNumberFunction(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("f", I32T,
		&Param{Nam: "a", Ty: I32T, Idx: 0},
		&Param{Nam: "b", Ty: PointerTo(I32T, Global), Idx: 1})
	b := &Builder{Fn: f}
	entry := f.NewBlock("entry")
	b.SetInsert(entry)
	ld := b.Load(f.Params[1])
	sum := b.Bin(Add, ld, f.Params[0])
	st := b.Store(sum, f.Params[1]) // no result: must not be numbered
	b.Ret(sum)

	nb := NumberFunction(f)
	if nb.NumValues() != 4 { // 2 params + load + add
		t.Fatalf("NumValues = %d, want 4", nb.NumValues())
	}
	for i, v := range []Value{f.Params[0], f.Params[1], ld, sum} {
		idx, ok := nb.IndexOf(v)
		if !ok || idx != int32(i) {
			t.Errorf("IndexOf(%s) = %d,%v, want %d", v.Ident(), idx, ok, i)
		}
	}
	if _, ok := nb.IndexOf(st); ok {
		t.Error("store (no result) was numbered")
	}
	if _, ok := nb.IndexOf(CI(7)); ok {
		t.Error("constant was numbered")
	}
}
