package ir

// Numbering assigns a dense index to every value a function defines:
// parameters first (in signature order), then instruction results in
// block order. It is the hook the bytecode compiler (internal/interp)
// uses to map ir.Value operands onto flat register-file slots, so that
// execution never touches a map keyed by interface values.
//
// Constants are deliberately not numbered: they are not definitions, and
// consumers give them their own (deduplicated) slots.
type Numbering struct {
	idx map[Value]int32
	n   int32
}

// NumberFunction numbers all values defined by f. Instructions without a
// result (stores, barriers, terminators) are skipped, so the index space
// is exactly the set of referencable definitions.
func NumberFunction(f *Function) *Numbering {
	nb := &Numbering{idx: make(map[Value]int32, len(f.Params)+f.NumInstrs())}
	for _, p := range f.Params {
		nb.idx[p] = nb.n
		nb.n++
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.HasResult() {
				nb.idx[in] = nb.n
				nb.n++
			}
		}
	}
	return nb
}

// IndexOf returns the dense index of a numbered value. The second result
// is false for constants and for values defined outside the numbered
// function.
func (nb *Numbering) IndexOf(v Value) (int32, bool) {
	i, ok := nb.idx[v]
	return i, ok
}

// NumValues returns how many values were numbered (the required register
// count before constants).
func (nb *Numbering) NumValues() int { return int(nb.n) }
