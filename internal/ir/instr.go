package ir

// Opcode identifies the operation performed by an instruction.
type Opcode int

// Instruction opcodes.
const (
	OpAlloca  Opcode = iota // allocate AllocaCount elements of AllocaElem in AllocaSpace
	OpLoad                  // load Ty from Args[0]
	OpStore                 // store Args[0] to Args[1]
	OpGEP                   // Args[0] + Args[1]*sizeof(elem); result is pointer
	OpBin                   // binary arithmetic, BinK
	OpCmp                   // comparison, CmpK; result i1
	OpCast                  // conversion, CastK
	OpCall                  // call Callee(Args...)
	OpSelect                // Args[0] ? Args[1] : Args[2]
	OpAtomic                // atomic read-modify-write AtomK on Args[0] with Args[1]; yields old value
	OpBarrier               // work-group barrier; Args empty, Scope holds fence flags
	OpBr                    // unconditional branch to Then
	OpCondBr                // conditional branch on Args[0] to Then / Else
	OpRet                   // return Args[0] (or void if none)
	OpPhi                   // SSA phi: Args[i] flows in from Incoming[i]
)

// BinKind identifies a binary arithmetic operation.
type BinKind int

// Binary operation kinds.
const (
	Add BinKind = iota
	Sub
	Mul
	SDiv
	SRem
	And
	Or
	Xor
	Shl
	AShr
	FAdd
	FSub
	FMul
	FDiv
)

var binNames = [...]string{"add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "ashr", "fadd", "fsub", "fmul", "fdiv"}

func (k BinKind) String() string { return binNames[k] }

// IsFloatOp reports whether the kind is a floating-point operation.
func (k BinKind) IsFloatOp() bool { return k >= FAdd }

// CmpPred identifies a comparison predicate.
type CmpPred int

// Comparison predicates. The I-prefixed forms are signed integer
// comparisons; the F-prefixed forms are ordered float comparisons.
const (
	IEQ CmpPred = iota
	INE
	ILT
	ILE
	IGT
	IGE
	FEQ
	FNE
	FLT
	FLE
	FGT
	FGE
)

var cmpNames = [...]string{"eq", "ne", "slt", "sle", "sgt", "sge", "oeq", "one", "olt", "ole", "ogt", "oge"}

func (p CmpPred) String() string { return cmpNames[p] }

// IsFloatPred reports whether p compares floats.
func (p CmpPred) IsFloatPred() bool { return p >= FEQ }

// CastKind identifies a conversion.
type CastKind int

// Conversion kinds.
const (
	Trunc   CastKind = iota // integer truncation
	SExt                    // signed integer extension
	ZExt                    // zero extension (bool -> int)
	FPToSI                  // float -> signed int
	SIToFP                  // signed int -> float
	FPTrunc                 // double -> float
	FPExt                   // float -> double
	PtrCast                 // pointer bitcast (same address space)
)

var castNames = [...]string{"trunc", "sext", "zext", "fptosi", "sitofp", "fptrunc", "fpext", "bitcast"}

func (k CastKind) String() string { return castNames[k] }

// AtomicKind identifies an atomic read-modify-write operation.
type AtomicKind int

// Atomic operation kinds.
const (
	AtomAdd AtomicKind = iota
	AtomSub
	AtomMin
	AtomMax
	AtomAnd
	AtomOr
	AtomXchg
)

var atomNames = [...]string{"add", "sub", "min", "max", "and", "or", "xchg"}

func (k AtomicKind) String() string { return atomNames[k] }

// Instr is a single IR instruction. One concrete struct represents all
// opcodes; op-specific fields are valid only for their opcode (see the
// Opcode comments). An Instr is also a Value when it produces a result.
type Instr struct {
	Op   Opcode
	Ty   *Type   // result type; VoidT for instructions without results
	Args []Value // operands

	BinK  BinKind
	CmpK  CmpPred
	CastK CastKind
	AtomK AtomicKind

	Callee string // OpCall target, resolved by name at link/run time

	AllocaElem  *Type
	AllocaCount int64
	AllocaSpace AddrSpace

	Scope int // OpBarrier fence flags (FenceLocal|FenceGlobal)

	Then *Block // OpBr / OpCondBr true target
	Else *Block // OpCondBr false target

	// Incoming parallels Args for OpPhi: Args[i] is the value the phi
	// takes when control enters through an edge from Incoming[i]. Phis
	// appear only at the head of a block, one incoming per predecessor;
	// all of a block's phis read their sources simultaneously on edge
	// entry (parallel-copy semantics).
	Incoming []*Block

	name string // printable SSA name, assigned by the numbering pass
	blk  *Block
}

// Barrier fence flags.
const (
	FenceLocal  = 1
	FenceGlobal = 2
)

// Type implements Value.
func (in *Instr) Type() *Type { return in.Ty }

// Ident implements Value.
func (in *Instr) Ident() string {
	if in.name == "" {
		return "%<unnamed>"
	}
	return "%" + in.name
}

// SetName assigns the printable name of the instruction result.
func (in *Instr) SetName(n string) { in.name = n }

// Name returns the assigned printable name (may be empty before numbering).
func (in *Instr) Name() string { return in.name }

// Block returns the block containing the instruction, if it has been
// appended to one.
func (in *Instr) Block() *Block { return in.blk }

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	return in.Op == OpBr || in.Op == OpCondBr || in.Op == OpRet
}

// HasResult reports whether the instruction produces a value.
func (in *Instr) HasResult() bool {
	return in.Ty != nil && in.Ty.Kind != Void
}

// AddIncoming appends one (value, predecessor) pair to an OpPhi.
func (in *Instr) AddIncoming(v Value, from *Block) {
	in.Args = append(in.Args, v)
	in.Incoming = append(in.Incoming, from)
}

// IncomingFor returns the phi operand flowing in from pred, or nil if
// the phi has no entry for that block.
func (in *Instr) IncomingFor(pred *Block) Value {
	for i, b := range in.Incoming {
		if b == pred {
			return in.Args[i]
		}
	}
	return nil
}
