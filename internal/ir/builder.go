package ir

import "fmt"

// Builder incrementally constructs a function body. It tracks an insertion
// block; every emit method appends to that block.
type Builder struct {
	Fn  *Function
	Cur *Block
}

// NewBuilder returns a builder positioned at a fresh entry block of f.
func NewBuilder(f *Function) *Builder {
	b := &Builder{Fn: f}
	b.Cur = f.NewBlock("entry")
	return b
}

// SetInsert moves the insertion point to blk.
func (b *Builder) SetInsert(blk *Block) { b.Cur = blk }

// NewBlock creates a new block in the function without moving the
// insertion point.
func (b *Builder) NewBlock(hint string) *Block { return b.Fn.NewBlock(hint) }

func (b *Builder) emit(in *Instr) *Instr {
	if b.Cur == nil {
		panic("ir: builder has no insertion block")
	}
	if b.Cur.Terminated() {
		panic(fmt.Sprintf("ir: emitting %v after terminator in %s", in.Op, b.Cur.Name))
	}
	return b.Cur.Append(in)
}

// Alloca allocates count elements of elem in the given address space and
// returns the pointer.
func (b *Builder) Alloca(elem *Type, count int64, space AddrSpace) *Instr {
	return b.emit(&Instr{
		Op: OpAlloca, Ty: PointerTo(elem, space),
		AllocaElem: elem, AllocaCount: count, AllocaSpace: space,
	})
}

// Load reads a value of the pointee type through ptr.
func (b *Builder) Load(ptr Value) *Instr {
	pt := ptr.Type()
	if !pt.IsPointer() {
		panic("ir: load from non-pointer")
	}
	return b.emit(&Instr{Op: OpLoad, Ty: pt.Elem, Args: []Value{ptr}})
}

// Store writes val through ptr.
func (b *Builder) Store(val, ptr Value) *Instr {
	return b.emit(&Instr{Op: OpStore, Ty: VoidT, Args: []Value{val, ptr}})
}

// GEP computes ptr + idx*sizeof(elem), yielding a pointer of the same
// type.
func (b *Builder) GEP(ptr, idx Value) *Instr {
	return b.emit(&Instr{Op: OpGEP, Ty: ptr.Type(), Args: []Value{ptr, idx}})
}

// Bin emits a binary arithmetic operation; both operands must share the
// result type.
func (b *Builder) Bin(k BinKind, x, y Value) *Instr {
	return b.emit(&Instr{Op: OpBin, Ty: x.Type(), BinK: k, Args: []Value{x, y}})
}

// Cmp emits a comparison producing an i1.
func (b *Builder) Cmp(p CmpPred, x, y Value) *Instr {
	return b.emit(&Instr{Op: OpCmp, Ty: BoolT, CmpK: p, Args: []Value{x, y}})
}

// Cast emits a conversion of x to "to".
func (b *Builder) Cast(k CastKind, x Value, to *Type) *Instr {
	return b.emit(&Instr{Op: OpCast, Ty: to, CastK: k, Args: []Value{x}})
}

// Call emits a call to the named function.
func (b *Builder) Call(callee string, ret *Type, args ...Value) *Instr {
	return b.emit(&Instr{Op: OpCall, Ty: ret, Callee: callee, Args: args})
}

// Select emits cond ? x : y.
func (b *Builder) Select(cond, x, y Value) *Instr {
	return b.emit(&Instr{Op: OpSelect, Ty: x.Type(), Args: []Value{cond, x, y}})
}

// Atomic emits an atomic read-modify-write on ptr with operand val,
// returning the previous value.
func (b *Builder) Atomic(k AtomicKind, ptr, val Value) *Instr {
	return b.emit(&Instr{Op: OpAtomic, Ty: val.Type(), AtomK: k, Args: []Value{ptr, val}})
}

// Barrier emits a work-group barrier with the given fence flags.
func (b *Builder) Barrier(scope int) *Instr {
	return b.emit(&Instr{Op: OpBarrier, Ty: VoidT, Scope: scope})
}

// Phi emits an empty phi of the given type at the insertion point; arms
// are added with AddIncoming. Phis are only valid at a block's head,
// with exactly one arm per predecessor.
func (b *Builder) Phi(ty *Type) *Instr {
	return b.emit(&Instr{Op: OpPhi, Ty: ty})
}

// Br emits an unconditional branch.
func (b *Builder) Br(dst *Block) *Instr {
	return b.emit(&Instr{Op: OpBr, Ty: VoidT, Then: dst})
}

// CondBr emits a conditional branch.
func (b *Builder) CondBr(cond Value, t, f *Block) *Instr {
	return b.emit(&Instr{Op: OpCondBr, Ty: VoidT, Args: []Value{cond}, Then: t, Else: f})
}

// Ret emits a return; val may be nil for void functions.
func (b *Builder) Ret(val Value) *Instr {
	in := &Instr{Op: OpRet, Ty: VoidT}
	if val != nil {
		in.Args = []Value{val}
	}
	return b.emit(in)
}
