package ir

import "fmt"

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator.
type Block struct {
	Name   string
	Instrs []*Instr
	Fn     *Function
}

// Append adds an instruction to the end of the block.
func (b *Block) Append(in *Instr) *Instr {
	in.blk = b
	b.Instrs = append(b.Instrs, in)
	return in
}

// Terminator returns the block's final instruction if it is a terminator,
// or nil.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.IsTerminator() {
		return nil
	}
	return last
}

// Terminated reports whether the block ends in a terminator.
func (b *Block) Terminated() bool { return b.Terminator() != nil }

// Succs returns the block's unique successors in Then/Else order.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	var s []*Block
	if t.Then != nil {
		s = append(s, t.Then)
	}
	if t.Else != nil && t.Else != t.Then {
		s = append(s, t.Else)
	}
	return s
}

// Phis returns the block's leading run of OpPhi instructions.
func (b *Block) Phis() []*Instr {
	n := 0
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			break
		}
		n++
	}
	return b.Instrs[:n]
}

// Function is an IR function: a signature plus (for definitions) a list of
// basic blocks. A function with no blocks is an external declaration.
type Function struct {
	Name   string
	Params []*Param
	Ret    *Type
	Blocks []*Block

	// Kernel marks OpenCL kernel entry points (callable from the host
	// with an NDRange).
	Kernel bool

	// Builtin marks work-item/builtin functions provided by the
	// execution environment rather than IR definitions.
	Builtin bool

	Mod *Module

	nblk int // block name counter
}

// IsDecl reports whether the function is a declaration without a body.
func (f *Function) IsDecl() bool { return len(f.Blocks) == 0 }

// NewBlock appends a fresh basic block with a unique name derived from
// hint.
func (f *Function) NewBlock(hint string) *Block {
	if hint == "" {
		hint = "bb"
	}
	b := &Block{Name: fmt.Sprintf("%s%d", hint, f.nblk), Fn: f}
	f.nblk++
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the entry block of the function.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// Signature returns a printable signature string.
func (f *Function) Signature() string {
	s := f.Ret.String() + " @" + f.Name + "("
	for i, p := range f.Params {
		if i > 0 {
			s += ", "
		}
		s += p.Ty.String() + " %" + p.Nam
	}
	return s + ")"
}

// NumInstrs returns the number of instructions in the function body. This
// is the size measure used by the adaptive scheduling policy (§6.4 of the
// paper).
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Module is a compilation unit: an ordered set of functions.
type Module struct {
	Name  string
	Funcs []*Function

	index map[string]*Function
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, index: make(map[string]*Function)}
}

// NewFunction creates a function definition shell and registers it in the
// module. It replaces an existing declaration of the same name.
func (m *Module) NewFunction(name string, ret *Type, params ...*Param) *Function {
	f := &Function{Name: name, Ret: ret, Params: params, Mod: m}
	m.Add(f)
	return f
}

// Add registers a function, replacing any previous entry with the same
// name.
func (m *Module) Add(f *Function) {
	f.Mod = m
	if m.index == nil {
		m.index = make(map[string]*Function)
	}
	if old, ok := m.index[f.Name]; ok {
		for i, g := range m.Funcs {
			if g == old {
				m.Funcs[i] = f
				m.index[f.Name] = f
				return
			}
		}
	}
	m.index[f.Name] = f
	m.Funcs = append(m.Funcs, f)
}

// Remove deletes a function from the module by name.
func (m *Module) Remove(name string) {
	f, ok := m.index[name]
	if !ok {
		return
	}
	delete(m.index, name)
	for i, g := range m.Funcs {
		if g == f {
			m.Funcs = append(m.Funcs[:i], m.Funcs[i+1:]...)
			return
		}
	}
}

// Lookup returns the function with the given name, or nil.
func (m *Module) Lookup(name string) *Function {
	if m.index == nil {
		return nil
	}
	return m.index[name]
}

// Kernels returns all kernel entry points in declaration order.
func (m *Module) Kernels() []*Function {
	var ks []*Function
	for _, f := range m.Funcs {
		if f.Kernel && !f.IsDecl() {
			ks = append(ks, f)
		}
	}
	return ks
}
