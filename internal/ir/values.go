package ir

import (
	"fmt"
	"strconv"
)

// Value is anything that can appear as an instruction operand: constants,
// function parameters and instruction results.
type Value interface {
	// Type returns the IR type of the value.
	Type() *Type
	// Ident returns the printable identifier or literal for the value.
	Ident() string
}

// ConstInt is an integer constant (also used for booleans).
type ConstInt struct {
	Ty *Type
	V  int64
}

// CI returns an i32 constant.
func CI(v int64) *ConstInt { return &ConstInt{Ty: I32T, V: v} }

// CI64 returns an i64 constant.
func CI64(v int64) *ConstInt { return &ConstInt{Ty: I64T, V: v} }

// CBool returns an i1 constant.
func CBool(b bool) *ConstInt {
	v := int64(0)
	if b {
		v = 1
	}
	return &ConstInt{Ty: BoolT, V: v}
}

// Type implements Value.
func (c *ConstInt) Type() *Type { return c.Ty }

// Ident implements Value.
func (c *ConstInt) Ident() string { return strconv.FormatInt(c.V, 10) }

// ConstFloat is a floating-point constant.
type ConstFloat struct {
	Ty *Type
	V  float64
}

// CF32 returns a float constant.
func CF32(v float64) *ConstFloat { return &ConstFloat{Ty: F32T, V: v} }

// CF64 returns a double constant.
func CF64(v float64) *ConstFloat { return &ConstFloat{Ty: F64T, V: v} }

// Type implements Value.
func (c *ConstFloat) Type() *Type { return c.Ty }

// Ident implements Value.
func (c *ConstFloat) Ident() string { return strconv.FormatFloat(c.V, 'g', -1, 64) }

// ConstNull is a null pointer constant.
type ConstNull struct{ Ty *Type }

// Type implements Value.
func (c *ConstNull) Type() *Type { return c.Ty }

// Ident implements Value.
func (c *ConstNull) Ident() string { return "null" }

// Param is a function parameter.
type Param struct {
	Nam string
	Ty  *Type
	Idx int
}

// Type implements Value.
func (p *Param) Type() *Type { return p.Ty }

// Ident implements Value.
func (p *Param) Ident() string { return "%" + p.Nam }

// IsConst reports whether v is a constant value.
func IsConst(v Value) bool {
	switch v.(type) {
	case *ConstInt, *ConstFloat, *ConstNull:
		return true
	}
	return false
}

// ConstIntValue extracts the integer from a ConstInt operand.
func ConstIntValue(v Value) (int64, bool) {
	if c, ok := v.(*ConstInt); ok {
		return c.V, true
	}
	return 0, false
}

// ConstFloatValue extracts the float from a ConstFloat operand.
func ConstFloatValue(v Value) (float64, bool) {
	if c, ok := v.(*ConstFloat); ok {
		return c.V, true
	}
	return 0, false
}

func typedIdent(v Value) string {
	return fmt.Sprintf("%s %s", v.Type(), v.Ident())
}
