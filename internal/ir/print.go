package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Number assigns sequential SSA names (%0, %1, ...) to every
// result-producing instruction in the function. It must be called before
// printing; transformations may invalidate names, in which case calling it
// again renumbers.
func Number(f *Function) {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.HasResult() {
				in.SetName(strconv.Itoa(n))
				n++
			} else {
				in.SetName("")
			}
		}
	}
}

// String renders the module in an LLVM-like textual form.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; module %s\n", m.Name)
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// String renders the function in an LLVM-like textual form.
func (f *Function) String() string {
	var sb strings.Builder
	if f.IsDecl() {
		kw := "declare"
		if f.Builtin {
			kw = "declare builtin"
		}
		fmt.Fprintf(&sb, "%s %s\n", kw, f.Signature())
		return sb.String()
	}
	Number(f)
	kw := "define"
	if f.Kernel {
		kw = "define kernel"
	}
	fmt.Fprintf(&sb, "%s %s {\n", kw, f.Signature())
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(in.String())
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String renders one instruction. Instruction results must have been
// numbered (see Number).
func (in *Instr) String() string {
	res := ""
	if in.HasResult() {
		res = in.Ident() + " = "
	}
	switch in.Op {
	case OpAlloca:
		return fmt.Sprintf("%salloca %s, count %d, space %s", res, in.AllocaElem, in.AllocaCount, in.AllocaSpace)
	case OpLoad:
		return fmt.Sprintf("%sload %s, %s", res, in.Ty, typedIdent(in.Args[0]))
	case OpStore:
		return fmt.Sprintf("store %s, %s", typedIdent(in.Args[0]), typedIdent(in.Args[1]))
	case OpGEP:
		return fmt.Sprintf("%sgep %s, %s", res, typedIdent(in.Args[0]), typedIdent(in.Args[1]))
	case OpBin:
		return fmt.Sprintf("%s%s %s %s, %s", res, in.BinK, in.Ty, in.Args[0].Ident(), in.Args[1].Ident())
	case OpCmp:
		op := "icmp"
		if in.CmpK.IsFloatPred() {
			op = "fcmp"
		}
		return fmt.Sprintf("%s%s %s %s %s, %s", res, op, in.CmpK, in.Args[0].Type(), in.Args[0].Ident(), in.Args[1].Ident())
	case OpCast:
		return fmt.Sprintf("%s%s %s to %s", res, in.CastK, typedIdent(in.Args[0]), in.Ty)
	case OpCall:
		var args []string
		for _, a := range in.Args {
			args = append(args, typedIdent(a))
		}
		return fmt.Sprintf("%scall %s @%s(%s)", res, in.Ty, in.Callee, strings.Join(args, ", "))
	case OpSelect:
		return fmt.Sprintf("%sselect %s, %s, %s", res, typedIdent(in.Args[0]), typedIdent(in.Args[1]), typedIdent(in.Args[2]))
	case OpAtomic:
		return fmt.Sprintf("%satomicrmw %s %s, %s", res, in.AtomK, typedIdent(in.Args[0]), typedIdent(in.Args[1]))
	case OpBarrier:
		return fmt.Sprintf("barrier scope %d", in.Scope)
	case OpBr:
		return fmt.Sprintf("br label %%%s", in.Then.Name)
	case OpCondBr:
		return fmt.Sprintf("br %s, label %%%s, label %%%s", typedIdent(in.Args[0]), in.Then.Name, in.Else.Name)
	case OpRet:
		if len(in.Args) == 0 {
			return "ret void"
		}
		return fmt.Sprintf("ret %s", typedIdent(in.Args[0]))
	case OpPhi:
		var arms []string
		for i, a := range in.Args {
			arms = append(arms, fmt.Sprintf("[ %s, %%%s ]", a.Ident(), in.Incoming[i].Name))
		}
		return fmt.Sprintf("%sphi %s %s", res, in.Ty, strings.Join(arms, ", "))
	}
	return "<bad instr>"
}
