// Package ir defines a small typed intermediate representation modeled on
// LLVM IR in -O0 form: locals are allocas, expressions are unnamed
// temporaries, control flow is explicit basic blocks with terminators.
//
// The accelOS JIT transformation (package accelpass) operates on this IR,
// mirroring the paper's LLVM pass pipeline. The IR is deliberately
// memory-oriented (no phi nodes) so that the front end, the transformation
// and the interpreter stay simple and auditable.
package ir

import "fmt"

// Kind enumerates the primitive type kinds of the IR.
type Kind int

// Type kinds.
const (
	Void Kind = iota
	Bool
	I32
	I64
	F32
	F64
	Pointer
)

// AddrSpace identifies an OpenCL address space. Pointer types carry the
// address space of the memory they reference.
type AddrSpace int

// Address spaces, following OpenCL numbering conventions.
const (
	Private  AddrSpace = 0
	Global   AddrSpace = 1
	Local    AddrSpace = 3
	Constant AddrSpace = 2
)

func (s AddrSpace) String() string {
	switch s {
	case Private:
		return "private"
	case Global:
		return "global"
	case Local:
		return "local"
	case Constant:
		return "constant"
	}
	return fmt.Sprintf("addrspace(%d)", int(s))
}

// Type is an IR type. Types are compared structurally via Equal; the
// primitive singletons below should be used where possible.
type Type struct {
	Kind  Kind
	Elem  *Type     // Pointer element type
	Space AddrSpace // Pointer address space
}

// Primitive type singletons.
var (
	VoidT = &Type{Kind: Void}
	BoolT = &Type{Kind: Bool}
	I32T  = &Type{Kind: I32}
	I64T  = &Type{Kind: I64}
	F32T  = &Type{Kind: F32}
	F64T  = &Type{Kind: F64}
)

// PointerTo returns the type "elem* addrspace(space)".
func PointerTo(elem *Type, space AddrSpace) *Type {
	return &Type{Kind: Pointer, Elem: elem, Space: space}
}

// IsInt reports whether t is an integer type (bool included).
func (t *Type) IsInt() bool {
	return t.Kind == Bool || t.Kind == I32 || t.Kind == I64
}

// IsFloat reports whether t is a floating-point type.
func (t *Type) IsFloat() bool { return t.Kind == F32 || t.Kind == F64 }

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool { return t.Kind == Pointer }

// Size returns the in-memory size of the type in bytes. Pointers occupy 8
// bytes in the interpreter's memory model.
func (t *Type) Size() int64 {
	switch t.Kind {
	case Void:
		return 0
	case Bool:
		return 1
	case I32, F32:
		return 4
	case I64, F64, Pointer:
		return 8
	}
	panic("ir: unknown type kind")
}

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	if t.Kind == Pointer {
		return t.Space == o.Space && t.Elem.Equal(o.Elem)
	}
	return true
}

func (t *Type) String() string {
	switch t.Kind {
	case Void:
		return "void"
	case Bool:
		return "i1"
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "float"
	case F64:
		return "double"
	case Pointer:
		if t.Space == Private {
			return t.Elem.String() + "*"
		}
		return fmt.Sprintf("%s %s*", t.Space, t.Elem)
	}
	return "?"
}
