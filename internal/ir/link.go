package ir

import "fmt"

// Link merges the functions of src into dst, resolving declarations
// against definitions by name. A declaration in either module is satisfied
// by a definition in the other; two definitions of the same name are an
// error. Builtin declarations are deduplicated.
//
// This mirrors the paper's static linking of transformed kernels against
// the GPU scheduling runtime library (§6).
func Link(dst, src *Module) error {
	for _, sf := range src.Funcs {
		df := dst.Lookup(sf.Name)
		switch {
		case df == nil:
			dst.Add(sf)
		case df.IsDecl() && !sf.IsDecl():
			if err := checkSigMatch(df, sf); err != nil {
				return err
			}
			dst.Add(sf) // definition replaces declaration
		case !df.IsDecl() && sf.IsDecl():
			if err := checkSigMatch(df, sf); err != nil {
				return err
			}
			// keep existing definition
		case df.IsDecl() && sf.IsDecl():
			if err := checkSigMatch(df, sf); err != nil {
				return err
			}
		default:
			return fmt.Errorf("ir link: duplicate definition of %q", sf.Name)
		}
	}
	return nil
}

func checkSigMatch(a, b *Function) error {
	if len(a.Params) != len(b.Params) || !a.Ret.Equal(b.Ret) {
		return fmt.Errorf("ir link: signature mismatch for %q: %s vs %s", a.Name, a.Signature(), b.Signature())
	}
	for i := range a.Params {
		if !a.Params[i].Ty.Equal(b.Params[i].Ty) {
			return fmt.Errorf("ir link: signature mismatch for %q: param %d %s vs %s",
				a.Name, i, a.Params[i].Ty, b.Params[i].Ty)
		}
	}
	return nil
}
