package ir

// CloneModule returns a deep copy of the module: functions, blocks and
// instructions are all fresh objects, so the copy can be transformed or
// linked without affecting the original.
func CloneModule(m *Module) *Module {
	out := NewModule(m.Name)
	for _, f := range m.Funcs {
		out.Add(CloneFunction(f))
	}
	return out
}

// CloneFunction returns a deep copy of a function.
func CloneFunction(f *Function) *Function {
	nf := &Function{
		Name:    f.Name,
		Ret:     f.Ret,
		Kernel:  f.Kernel,
		Builtin: f.Builtin,
		nblk:    f.nblk,
	}
	paramMap := make(map[*Param]*Param, len(f.Params))
	for _, p := range f.Params {
		np := &Param{Nam: p.Nam, Ty: p.Ty, Idx: p.Idx}
		paramMap[p] = np
		nf.Params = append(nf.Params, np)
	}
	blockMap := make(map[*Block]*Block, len(f.Blocks))
	instrMap := make(map[*Instr]*Instr)
	for _, b := range f.Blocks {
		nb := &Block{Name: b.Name, Fn: nf}
		blockMap[b] = nb
		nf.Blocks = append(nf.Blocks, nb)
	}
	// First pass: clone instructions without operands resolved.
	for _, b := range f.Blocks {
		nb := blockMap[b]
		for _, in := range b.Instrs {
			ni := &Instr{
				Op: in.Op, Ty: in.Ty,
				BinK: in.BinK, CmpK: in.CmpK, CastK: in.CastK, AtomK: in.AtomK,
				Callee:     in.Callee,
				AllocaElem: in.AllocaElem, AllocaCount: in.AllocaCount, AllocaSpace: in.AllocaSpace,
				Scope: in.Scope,
			}
			instrMap[in] = ni
			nb.Append(ni)
		}
	}
	// Second pass: remap operands and branch targets.
	remap := func(v Value) Value {
		switch x := v.(type) {
		case *Instr:
			if ni, ok := instrMap[x]; ok {
				return ni
			}
			return x
		case *Param:
			if np, ok := paramMap[x]; ok {
				return np
			}
			return x
		}
		return v
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			ni := instrMap[in]
			if len(in.Args) > 0 {
				ni.Args = make([]Value, len(in.Args))
				for i, a := range in.Args {
					ni.Args[i] = remap(a)
				}
			}
			if in.Then != nil {
				ni.Then = blockMap[in.Then]
			}
			if in.Else != nil {
				ni.Else = blockMap[in.Else]
			}
			if len(in.Incoming) > 0 {
				ni.Incoming = make([]*Block, len(in.Incoming))
				for i, ib := range in.Incoming {
					ni.Incoming[i] = blockMap[ib]
				}
			}
		}
	}
	return nf
}
