package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeProperties(t *testing.T) {
	cases := []struct {
		ty   *Type
		size int64
		str  string
	}{
		{VoidT, 0, "void"},
		{BoolT, 1, "i1"},
		{I32T, 4, "i32"},
		{I64T, 8, "i64"},
		{F32T, 4, "float"},
		{F64T, 8, "double"},
		{PointerTo(F32T, Global), 8, "global float*"},
		{PointerTo(I32T, Local), 8, "local i32*"},
		{PointerTo(I64T, Private), 8, "i64*"},
		{PointerTo(F32T, Constant), 8, "constant float*"},
	}
	for _, c := range cases {
		if got := c.ty.Size(); got != c.size {
			t.Errorf("%s size = %d, want %d", c.str, got, c.size)
		}
		if got := c.ty.String(); got != c.str {
			t.Errorf("type string = %q, want %q", got, c.str)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !PointerTo(F32T, Global).Equal(PointerTo(F32T, Global)) {
		t.Error("structurally equal pointers reported unequal")
	}
	if PointerTo(F32T, Global).Equal(PointerTo(F32T, Local)) {
		t.Error("pointers in different address spaces reported equal")
	}
	if PointerTo(F32T, Global).Equal(PointerTo(I32T, Global)) {
		t.Error("pointers to different elements reported equal")
	}
	if I32T.Equal(I64T) {
		t.Error("i32 == i64")
	}
	var nilT *Type
	if I32T.Equal(nilT) {
		t.Error("type equal to nil")
	}
}

// buildAddOne builds: define i32 @addone(i32 %x) { ret x+1 }
func buildAddOne(m *Module) *Function {
	p := &Param{Nam: "x", Ty: I32T}
	f := m.NewFunction("addone", I32T, p)
	b := NewBuilder(f)
	sum := b.Bin(Add, p, CI(1))
	b.Ret(sum)
	return f
}

func TestBuilderAndVerify(t *testing.T) {
	m := NewModule("t")
	buildAddOne(m)
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	f := m.Lookup("addone")
	if f.NumInstrs() != 2 {
		t.Errorf("NumInstrs = %d, want 2", f.NumInstrs())
	}
	text := f.String()
	for _, want := range []string{"define i32 @addone(i32 %x)", "add i32 %x, 1", "ret i32"} {
		if !strings.Contains(text, want) {
			t.Errorf("printed function missing %q:\n%s", want, text)
		}
	}
}

func TestVerifyCatchesErrors(t *testing.T) {
	// Unterminated block.
	m := NewModule("bad")
	f := m.NewFunction("f", VoidT)
	f.NewBlock("entry")
	if err := Verify(m); err == nil {
		t.Error("unterminated block not caught")
	}

	// Type mismatch in binop.
	m2 := NewModule("bad2")
	f2 := m2.NewFunction("g", VoidT)
	b2 := NewBuilder(f2)
	b2.Cur.Append(&Instr{Op: OpBin, Ty: I32T, BinK: Add, Args: []Value{CI(1), CI64(2)}})
	b2.Ret(nil)
	if err := Verify(m2); err == nil {
		t.Error("mixed-width binop not caught")
	}

	// Call to unknown function.
	m3 := NewModule("bad3")
	f3 := m3.NewFunction("h", VoidT)
	b3 := NewBuilder(f3)
	b3.Call("nowhere", VoidT)
	b3.Ret(nil)
	if err := Verify(m3); err == nil {
		t.Error("call to unknown function not caught")
	}

	// Call with wrong arg count.
	m4 := NewModule("bad4")
	buildAddOne(m4)
	f4 := m4.NewFunction("caller", VoidT)
	b4 := NewBuilder(f4)
	b4.Call("addone", I32T)
	b4.Ret(nil)
	if err := Verify(m4); err == nil {
		t.Error("wrong call arity not caught")
	}

	// Store type mismatch.
	m5 := NewModule("bad5")
	f5 := m5.NewFunction("s", VoidT)
	b5 := NewBuilder(f5)
	slot := b5.Alloca(I32T, 1, Private)
	b5.Cur.Append(&Instr{Op: OpStore, Ty: VoidT, Args: []Value{CF32(1), slot}})
	b5.Ret(nil)
	if err := Verify(m5); err == nil {
		t.Error("store type mismatch not caught")
	}

	// Float predicate on ints.
	m6 := NewModule("bad6")
	f6 := m6.NewFunction("c", VoidT)
	b6 := NewBuilder(f6)
	b6.Cur.Append(&Instr{Op: OpCmp, Ty: BoolT, CmpK: FLT, Args: []Value{CI(1), CI(2)}})
	b6.Ret(nil)
	if err := Verify(m6); err == nil {
		t.Error("float predicate on integers not caught")
	}

	// Atomic on float.
	m7 := NewModule("bad7")
	f7 := m7.NewFunction("a", VoidT)
	b7 := NewBuilder(f7)
	fslot := b7.Alloca(F32T, 1, Global)
	b7.Cur.Append(&Instr{Op: OpAtomic, Ty: F32T, AtomK: AtomAdd, Args: []Value{fslot, CF32(1)}})
	b7.Ret(nil)
	if err := Verify(m7); err == nil {
		t.Error("atomic on float not caught")
	}
	_ = f3
	_ = f4
	_ = f5
	_ = f6
	_ = f7
}

func TestModuleAddReplaceRemove(t *testing.T) {
	m := NewModule("m")
	decl := m.NewFunction("f", VoidT)
	if !decl.IsDecl() {
		t.Fatal("bodyless function should be a declaration")
	}
	def := &Function{Name: "f", Ret: VoidT}
	b := NewBuilder(def)
	b.Ret(nil)
	m.Add(def)
	if m.Lookup("f") != def {
		t.Error("definition did not replace declaration")
	}
	if len(m.Funcs) != 1 {
		t.Errorf("module holds %d functions, want 1", len(m.Funcs))
	}
	m.Remove("f")
	if m.Lookup("f") != nil {
		t.Error("Remove left the function behind")
	}
}

func TestLink(t *testing.T) {
	// decl in dst satisfied by def in src.
	dst := NewModule("dst")
	dst.NewFunction("addone", I32T, &Param{Nam: "x", Ty: I32T})
	caller := dst.NewFunction("main", I32T)
	b := NewBuilder(caller)
	b.Ret(b.Call("addone", I32T, CI(41)))

	src := NewModule("src")
	buildAddOne(src)
	if err := Link(dst, src); err != nil {
		t.Fatalf("link: %v", err)
	}
	if dst.Lookup("addone").IsDecl() {
		t.Error("declaration not replaced by definition")
	}
	if err := Verify(dst); err != nil {
		t.Errorf("linked module invalid: %v", err)
	}

	// Duplicate definitions are an error.
	src2 := NewModule("src2")
	buildAddOne(src2)
	if err := Link(dst, src2); err == nil {
		t.Error("duplicate definition not rejected")
	}

	// Signature mismatch between decl and def.
	dst3 := NewModule("dst3")
	dst3.NewFunction("addone", I64T, &Param{Nam: "x", Ty: I64T})
	src3 := NewModule("src3")
	buildAddOne(src3)
	if err := Link(dst3, src3); err == nil {
		t.Error("signature mismatch not rejected")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewModule("orig")
	buildAddOne(m)
	c := CloneModule(m)

	// Mutating the clone must not affect the original.
	cf := c.Lookup("addone")
	cf.Name = "renamed"
	cf.Blocks[0].Instrs = nil
	of := m.Lookup("addone")
	if of == nil || len(of.Blocks[0].Instrs) != 2 {
		t.Fatal("clone mutation leaked into original")
	}
	// Clone operands must reference clone params, not originals.
	c2 := CloneModule(m)
	f2 := c2.Lookup("addone")
	bin := f2.Blocks[0].Instrs[0]
	if bin.Args[0] == of.Params[0] {
		t.Error("clone instruction still references original parameter")
	}
	if bin.Args[0] != f2.Params[0] {
		t.Error("clone instruction does not reference clone parameter")
	}
}

func TestCloneBranchTargets(t *testing.T) {
	m := NewModule("cf")
	f := m.NewFunction("loop", VoidT, &Param{Nam: "n", Ty: I32T})
	b := NewBuilder(f)
	head := b.NewBlock("head")
	exit := b.NewBlock("exit")
	b.Br(head)
	b.SetInsert(head)
	cond := b.Cmp(IGT, f.Params[0], CI(0))
	b.CondBr(cond, head, exit)
	b.SetInsert(exit)
	b.Ret(nil)
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	c := CloneModule(m)
	if err := Verify(c); err != nil {
		t.Fatalf("clone verify: %v (branch targets must be remapped)", err)
	}
	cf := c.Lookup("loop")
	for _, blk := range cf.Blocks {
		if term := blk.Terminator(); term != nil {
			if term.Then != nil && term.Then.Fn != cf {
				t.Error("clone branch target points into the original function")
			}
		}
	}
}

func TestConstConstructors(t *testing.T) {
	if CBool(true).V != 1 || CBool(false).V != 0 {
		t.Error("CBool broken")
	}
	if v, ok := ConstIntValue(CI(42)); !ok || v != 42 {
		t.Error("ConstIntValue broken")
	}
	if v, ok := ConstFloatValue(CF32(1.5)); !ok || v != 1.5 {
		t.Error("ConstFloatValue broken")
	}
	if _, ok := ConstIntValue(CF32(1)); ok {
		t.Error("ConstIntValue accepted a float")
	}
	if !IsConst(CI(1)) || !IsConst(&ConstNull{Ty: PointerTo(I32T, Global)}) {
		t.Error("IsConst broken")
	}
	if IsConst(&Param{Nam: "p", Ty: I32T}) {
		t.Error("param is not a constant")
	}
}

func TestNumbering(t *testing.T) {
	m := NewModule("n")
	f := buildAddOne(m)
	Number(f)
	bin := f.Blocks[0].Instrs[0]
	if bin.Ident() != "%0" {
		t.Errorf("first result named %s, want %%0", bin.Ident())
	}
	ret := f.Blocks[0].Instrs[1]
	if ret.HasResult() {
		t.Error("ret should not have a result")
	}
}

// Property: rounding to warp granularity is idempotent and monotone.
func TestCloneIsDeepProperty(t *testing.T) {
	// Build a function parameterized by a couple of constants and check
	// printing stability through clone (quick drives the constants).
	f := func(a, b int32) bool {
		m := NewModule("q")
		fn := m.NewFunction("f", I32T)
		bld := NewBuilder(fn)
		sum := bld.Bin(Add, CI(int64(a)), CI(int64(b)))
		bld.Ret(sum)
		orig := fn.String()
		clone := CloneModule(m).Lookup("f").String()
		return orig == clone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// buildDiamondPhi constructs entry -> (then|else) -> merge with a phi in
// merge selecting 1 or 2.
func buildDiamondPhi(m *Module) *Function {
	f := m.NewFunction("dia", I32T, &Param{Nam: "c", Ty: BoolT, Idx: 0})
	b := NewBuilder(f)
	thenB := b.NewBlock("then")
	elseB := b.NewBlock("else")
	merge := b.NewBlock("merge")
	b.CondBr(f.Params[0], thenB, elseB)
	b.SetInsert(thenB)
	b.Br(merge)
	b.SetInsert(elseB)
	b.Br(merge)
	b.SetInsert(merge)
	phi := b.Phi(I32T)
	phi.AddIncoming(CI(1), thenB)
	phi.AddIncoming(CI(2), elseB)
	b.Ret(phi)
	return f
}

func TestPhiVerifyPrintClone(t *testing.T) {
	m := NewModule("phi")
	f := buildDiamondPhi(m)
	if err := Verify(m); err != nil {
		t.Fatalf("valid phi rejected: %v", err)
	}
	s := f.String()
	if !strings.Contains(s, "phi i32 [ 1, %then1 ], [ 2, %else2 ]") {
		t.Errorf("phi printed as:\n%s", s)
	}
	// Clone must remap the incoming blocks into the cloned function.
	cm := CloneModule(m)
	cf := cm.Lookup("dia")
	var phi *Instr
	for _, b := range cf.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpPhi {
				phi = in
			}
		}
	}
	if phi == nil {
		t.Fatal("clone lost the phi")
	}
	for _, ib := range phi.Incoming {
		if ib.Fn != cf {
			t.Error("cloned phi incoming block points into the original function")
		}
	}
	if err := Verify(cm); err != nil {
		t.Errorf("cloned phi module fails verify: %v", err)
	}
}

func TestPhiVerifyRejects(t *testing.T) {
	// A phi arm naming a non-predecessor must fail verification.
	m := NewModule("bad")
	f := m.NewFunction("f", I32T, &Param{Nam: "c", Ty: BoolT, Idx: 0})
	b := NewBuilder(f)
	entry := b.Cur
	next := b.NewBlock("next")
	b.Br(next)
	b.SetInsert(next)
	phi := b.Phi(I32T)
	phi.AddIncoming(CI(1), next) // not a predecessor of itself
	b.Ret(phi)
	_ = entry
	if err := Verify(m); err == nil {
		t.Fatal("phi with non-predecessor incoming verified")
	}
	// A phi below a non-phi instruction must fail verification.
	m2 := NewModule("bad2")
	f2 := m2.NewFunction("f", I32T, &Param{Nam: "c", Ty: BoolT, Idx: 0})
	b2 := NewBuilder(f2)
	head := b2.Cur
	loop := b2.NewBlock("loop")
	b2.Br(loop)
	b2.SetInsert(loop)
	add := b2.Bin(Add, CI(1), CI(2))
	phi2 := b2.Phi(I32T)
	phi2.AddIncoming(CI(0), head)
	phi2.AddIncoming(add, loop)
	b2.Br(loop)
	if err := Verify(m2); err == nil {
		t.Fatal("mid-block phi verified")
	}
}

func TestBlockSuccsAndPhis(t *testing.T) {
	m := NewModule("s")
	f := buildDiamondPhi(m)
	entry := f.Entry()
	succs := entry.Succs()
	if len(succs) != 2 {
		t.Fatalf("entry has %d successors, want 2", len(succs))
	}
	merge := f.Blocks[3]
	if got := len(merge.Phis()); got != 1 {
		t.Errorf("merge has %d leading phis, want 1", got)
	}
	if got := len(entry.Phis()); got != 0 {
		t.Errorf("entry has %d leading phis, want 0", got)
	}
}
