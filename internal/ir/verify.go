package ir

import "fmt"

// VerifyError describes a verification failure.
type VerifyError struct {
	Fn  string
	Blk string
	Msg string
}

func (e *VerifyError) Error() string {
	if e.Blk != "" {
		return fmt.Sprintf("ir verify: %s/%s: %s", e.Fn, e.Blk, e.Msg)
	}
	return fmt.Sprintf("ir verify: %s: %s", e.Fn, e.Msg)
}

// Verify checks structural well-formedness of the module: every block is
// terminated, branch targets belong to the same function, operand types
// agree with opcode expectations, and calls match the signatures of their
// callees where the callee is known.
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		if err := verifyFunc(m, f); err != nil {
			return err
		}
	}
	return nil
}

func verifyFunc(m *Module, f *Function) error {
	blocks := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		blocks[b] = true
	}
	errf := func(b *Block, format string, args ...interface{}) error {
		name := ""
		if b != nil {
			name = b.Name
		}
		return &VerifyError{Fn: f.Name, Blk: name, Msg: fmt.Sprintf(format, args...)}
	}
	preds := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 || !b.Instrs[len(b.Instrs)-1].IsTerminator() {
			return errf(b, "block not terminated")
		}
		phiHead := true
		for i, in := range b.Instrs {
			if in.IsTerminator() && i != len(b.Instrs)-1 {
				return errf(b, "terminator %v in middle of block", in.Op)
			}
			if in.Op != OpPhi {
				phiHead = false
			}
			switch in.Op {
			case OpPhi:
				if !phiHead {
					return errf(b, "phi not at block head")
				}
				if err := verifyPhi(b, in, preds[b], errf); err != nil {
					return err
				}
			case OpLoad:
				pt := in.Args[0].Type()
				if !pt.IsPointer() || !pt.Elem.Equal(in.Ty) {
					return errf(b, "load type mismatch: %s from %s", in.Ty, pt)
				}
			case OpStore:
				pt := in.Args[1].Type()
				if !pt.IsPointer() || !pt.Elem.Equal(in.Args[0].Type()) {
					return errf(b, "store type mismatch: %s into %s", in.Args[0].Type(), pt)
				}
			case OpGEP:
				if !in.Args[0].Type().IsPointer() {
					return errf(b, "gep base is not a pointer")
				}
				if !in.Args[1].Type().IsInt() {
					return errf(b, "gep index is not an integer")
				}
				if !in.Ty.Equal(in.Args[0].Type()) {
					return errf(b, "gep result type mismatch")
				}
			case OpBin:
				x, y := in.Args[0].Type(), in.Args[1].Type()
				if !x.Equal(y) || !x.Equal(in.Ty) {
					return errf(b, "binop operand types differ: %s %s %s", x, in.BinK, y)
				}
				if in.BinK.IsFloatOp() != x.IsFloat() {
					return errf(b, "binop %s applied to %s", in.BinK, x)
				}
			case OpCmp:
				x, y := in.Args[0].Type(), in.Args[1].Type()
				if !x.Equal(y) {
					return errf(b, "cmp operand types differ: %s vs %s", x, y)
				}
				if in.CmpK.IsFloatPred() != x.IsFloat() && !x.IsPointer() {
					return errf(b, "cmp predicate %s applied to %s", in.CmpK, x)
				}
			case OpCall:
				callee := m.Lookup(in.Callee)
				if callee == nil {
					return errf(b, "call to unknown function %q", in.Callee)
				}
				if len(callee.Params) != len(in.Args) {
					return errf(b, "call %s: %d args, want %d", in.Callee, len(in.Args), len(callee.Params))
				}
				for i, p := range callee.Params {
					if !p.Ty.Equal(in.Args[i].Type()) {
						return errf(b, "call %s: arg %d has type %s, want %s", in.Callee, i, in.Args[i].Type(), p.Ty)
					}
				}
				if !callee.Ret.Equal(in.Ty) {
					return errf(b, "call %s: result type %s, want %s", in.Callee, in.Ty, callee.Ret)
				}
			case OpSelect:
				if in.Args[0].Type().Kind != Bool {
					return errf(b, "select condition is not i1")
				}
				if !in.Args[1].Type().Equal(in.Args[2].Type()) {
					return errf(b, "select arm types differ")
				}
			case OpAtomic:
				pt := in.Args[0].Type()
				if !pt.IsPointer() || !pt.Elem.Equal(in.Args[1].Type()) {
					return errf(b, "atomic operand/pointer mismatch")
				}
				if !pt.Elem.IsInt() {
					return errf(b, "atomic on non-integer type %s", pt.Elem)
				}
			case OpBr:
				if !blocks[in.Then] {
					return errf(b, "branch to foreign block")
				}
			case OpCondBr:
				if !blocks[in.Then] || !blocks[in.Else] {
					return errf(b, "branch to foreign block")
				}
				if in.Args[0].Type().Kind != Bool {
					return errf(b, "condbr condition is not i1")
				}
			case OpRet:
				if f.Ret.Kind == Void {
					if len(in.Args) != 0 {
						return errf(b, "ret with value in void function")
					}
				} else if len(in.Args) != 1 || !in.Args[0].Type().Equal(f.Ret) {
					return errf(b, "ret type mismatch")
				}
			}
		}
	}
	return nil
}

// verifyPhi checks one phi: parallel Args/Incoming lists with exactly one
// entry per predecessor edge, every arm typed like the result.
func verifyPhi(b *Block, in *Instr, preds []*Block, errf func(*Block, string, ...interface{}) error) error {
	if len(in.Args) != len(in.Incoming) || len(in.Args) == 0 {
		return errf(b, "phi with %d values for %d incoming blocks", len(in.Args), len(in.Incoming))
	}
	if len(preds) == 0 {
		return errf(b, "phi in block with no predecessors")
	}
	seen := make(map[*Block]bool, len(in.Incoming))
	for i, ib := range in.Incoming {
		if seen[ib] {
			return errf(b, "phi lists incoming block %s twice", ib.Name)
		}
		seen[ib] = true
		found := false
		for _, p := range preds {
			if p == ib {
				found = true
				break
			}
		}
		if !found {
			return errf(b, "phi incoming block %s is not a predecessor", ib.Name)
		}
		if !in.Args[i].Type().Equal(in.Ty) {
			return errf(b, "phi arm %d has type %s, want %s", i, in.Args[i].Type(), in.Ty)
		}
	}
	if len(in.Incoming) != len(preds) {
		return errf(b, "phi has %d incoming arms for %d predecessors", len(in.Incoming), len(preds))
	}
	return nil
}
