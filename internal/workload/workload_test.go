package workload

import (
	"testing"

	"repro/internal/device"
)

func TestPairsCoverGrid(t *testing.T) {
	pairs := Pairs()
	if len(pairs) != 625 {
		t.Fatalf("pairwise population = %d, want 625 (25x25, the paper's count)", len(pairs))
	}
	seen := make(map[[2]int]bool)
	for _, p := range pairs {
		if len(p) != 2 {
			t.Fatal("pair with wrong arity")
		}
		seen[[2]int{p[0], p[1]}] = true
	}
	if len(seen) != 625 {
		t.Errorf("pairs contain duplicates: %d unique", len(seen))
	}
}

func TestRandomDeterministicAndInRange(t *testing.T) {
	a := Random(42, 4, 100)
	b := Random(42, 4, 100)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed produced different combinations")
			}
			if a[i][j] < 0 || a[i][j] >= NumKernels() {
				t.Fatalf("kernel index %d out of range", a[i][j])
			}
		}
	}
	c := Random(43, 4, 100)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical populations")
	}
}

func TestBuildSingle(t *testing.T) {
	dev := device.NVIDIAK20m()
	execs := BuildSingle(dev, []int{0, 3, 7})
	if len(execs) != 3 {
		t.Fatal("wrong workload size")
	}
	for i, k := range execs {
		if k.ID != i {
			t.Errorf("request %d has ID %d", i, k.ID)
		}
		if k.NumIters() != 1 {
			t.Errorf("single-shot request has %d iterations", k.NumIters())
		}
	}
}

func TestBuildEqualizesDurations(t *testing.T) {
	dev := device.NVIDIAK20m()
	// Pick a long and a short kernel; after Build their isolated app
	// durations should be within ~2x.
	execs := Build(dev, []int{0, 6}, 3) // bfs and lbm
	d0 := execs[0].EstimateIsolatedCycles(dev) * execs[0].NumIters()
	d1 := execs[1].EstimateIsolatedCycles(dev) * execs[1].NumIters()
	ratio := float64(d0) / float64(d1)
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio > 2 {
		t.Errorf("equalized app durations still differ %.1fx", ratio)
	}
}

func TestCloneIsDeep(t *testing.T) {
	dev := device.NVIDIAK20m()
	execs := BuildSingle(dev, []int{1, 2})
	c := Clone(execs)
	c[0].NumWGs = 1
	if execs[0].NumWGs == 1 {
		t.Error("Clone shares memory with the original")
	}
}
