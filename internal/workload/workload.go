// Package workload generates the paper's multi-kernel workloads (§7.2):
// all 25×25 pairwise combinations of the Parboil kernels, and seeded
// random samples of the 25⁴ 4-kernel and 25⁸ 8-kernel combination
// spaces. Iteration counts equalize isolated application durations, the
// way the benchmark applications co-run for comparable wall-clock time.
package workload

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/parboil"
	"repro/internal/sim"
)

// NumKernels is the Parboil kernel count (25).
func NumKernels() int { return len(parboil.Kernels()) }

// Pairs enumerates all ordered pairwise combinations (25×25 = 625),
// matching the paper's pair population.
func Pairs() [][]int {
	n := NumKernels()
	out := make([][]int, 0, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out = append(out, []int{i, j})
		}
	}
	return out
}

// rng is the deterministic generator used for sampling combination
// spaces (splitmix64).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Random samples count random k-kernel combinations (ordered, with
// repetition — the paper's 25^k spaces) using the given seed.
func Random(seed uint64, k, count int) [][]int {
	r := &rng{s: seed}
	n := uint64(NumKernels())
	out := make([][]int, count)
	for w := 0; w < count; w++ {
		combo := make([]int, k)
		for i := range combo {
			combo[i] = int(r.next() % n)
		}
		out[w] = combo
	}
	return out
}

// BuildSingle converts kernel indices into one-shot concurrent execution
// requests (the paper's fairness and throughput workloads: K kernel
// execution requests arriving together, §7.2).
func BuildSingle(dev *device.Platform, idxs []int) []*sim.KernelExec {
	ks := parboil.Kernels()
	execs := make([]*sim.KernelExec, len(idxs))
	for i, idx := range idxs {
		execs[i] = ks[idx].Exec(i)
		execs[i].Iters = 1
	}
	return execs
}

// Build converts kernel indices into simulator execution requests with
// equalized application durations (the steady-state co-execution mode
// used for the overlap study, Fig. 12). baseIters is the iteration count
// of the longest-running member.
func Build(dev *device.Platform, idxs []int, baseIters int64) []*sim.KernelExec {
	ks := parboil.Kernels()
	execs := make([]*sim.KernelExec, len(idxs))
	for i, idx := range idxs {
		execs[i] = ks[idx].Exec(i)
	}
	sim.EqualizeIters(dev, execs, baseIters)
	return execs
}

// Tenants builds a multi-tenant cluster workload: `tenants`
// applications each submitting `perTenant` kernels sampled
// deterministically from the Parboil set, tagged for aggregate
// fair-share accounting. Arrivals stagger by one launch overhead of the
// pool's first device, the pattern of independent clients hitting a
// service together.
func Tenants(devs []*device.Platform, tenants, perTenant int, seed uint64) []*sim.ClusterExec {
	ks := parboil.Kernels()
	r := &rng{s: seed}
	var out []*sim.ClusterExec
	id := 0
	for t := 0; t < tenants; t++ {
		name := fmt.Sprintf("tenant%d", t)
		for j := 0; j < perTenant; j++ {
			k := ks[int(r.next()%uint64(len(ks)))].Exec(id)
			k.Iters = 1
			out = append(out, &sim.ClusterExec{
				K:       k,
				Tenant:  name,
				Arrival: int64(id) * devs[0].LaunchOverhead,
			})
			id++
		}
	}
	return out
}

// Clone deep-copies a workload so independent simulations cannot share
// mutable state.
func Clone(execs []*sim.KernelExec) []*sim.KernelExec {
	out := make([]*sim.KernelExec, len(execs))
	for i, k := range execs {
		c := *k
		out[i] = &c
	}
	return out
}
