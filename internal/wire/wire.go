// Package wire defines the accelOS service protocol: length-prefixed
// binary frames carried over a unix-domain socket between the ProxyCL
// client shim (service.Dial) and the accelOS daemon (cmd/acceld).
//
// Every frame is
//
//	[u32 length][u8 type][u64 request id][body]
//
// where length counts the type byte, the request id, and the body. The
// request id is chosen by the client and echoed on every reply, so the
// server is free to answer out of order: slow requests (program
// compilation, blocking buffer allocation) are answered when they
// finish, and enqueue requests are answered with a single MsgEventDone
// frame when the server-side event completes — the request id doubles
// as the event id for wait lists.
//
// Bodies are hand-rolled little-endian encodings (no reflection, no
// external codec): fixed-width integers, and strings/byte slices as a
// u32 length followed by raw bytes.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/fault"
)

// Version is the protocol version carried in the handshake. The server
// rejects clients with a different version rather than guessing at
// compatibility.
const Version = 1

// MaxFrame bounds a single frame's payload (type + request id + body).
// Frames above it are a protocol violation — a hostile or corrupt peer
// — and the connection is dropped rather than the length trusted.
const MaxFrame = 1 << 20

// MsgType identifies a frame's payload shape.
type MsgType uint8

const (
	// Client → server.
	MsgHello         MsgType = 1 // Hello: versioned handshake + tenant auth
	MsgProgramCreate MsgType = 2 // ProgramCreate → ProgramInfo | Error
	MsgKernelCreate  MsgType = 3 // KernelCreate → KernelInfo | Error
	MsgBufferCreate  MsgType = 4 // BufferCreate → BufferInfo | Error
	MsgBufferRelease MsgType = 5 // BufferRelease → Ack | Error
	MsgEnqueueKernel MsgType = 6 // EnqueueKernel → EventDone (no immediate ack)
	MsgEnqueueCopy   MsgType = 7 // EnqueueCopy → EventDone (no immediate ack)
	MsgCopyDone      MsgType = 8 // CopyDone: client signals a write's bytes landed

	// Server → client.
	MsgWelcome     MsgType = 16 // Welcome: handshake verdict
	MsgProgramInfo MsgType = 17
	MsgKernelInfo  MsgType = 18
	MsgBufferInfo  MsgType = 19
	MsgAck         MsgType = 20
	MsgEventDone   MsgType = 21 // Status body; terminal state of an enqueue
	MsgError       MsgType = 22 // Status body; request-level failure
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgProgramCreate:
		return "program-create"
	case MsgKernelCreate:
		return "kernel-create"
	case MsgBufferCreate:
		return "buffer-create"
	case MsgBufferRelease:
		return "buffer-release"
	case MsgEnqueueKernel:
		return "enqueue-kernel"
	case MsgEnqueueCopy:
		return "enqueue-copy"
	case MsgCopyDone:
		return "copy-done"
	case MsgWelcome:
		return "welcome"
	case MsgProgramInfo:
		return "program-info"
	case MsgKernelInfo:
		return "kernel-info"
	case MsgBufferInfo:
		return "buffer-info"
	case MsgAck:
		return "ack"
	case MsgEventDone:
		return "event-done"
	case MsgError:
		return "error"
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// Frame is one decoded protocol frame.
type Frame struct {
	Type MsgType
	Req  uint64
	Body []byte
}

// WriteFrame encodes and writes one frame. It issues a single Write so
// concurrent writers need only serialize at the io.Writer.
func WriteFrame(w io.Writer, t MsgType, req uint64, body []byte) error {
	if injector.Load().Should(fault.WireDropFrame) {
		// The transport "swallowed" the frame. Surfacing an error (rather
		// than silently dropping) is what a real peer observes eventually
		// — a request whose reply never comes is indistinguishable from a
		// dead connection, and the client's recovery is the same: tear
		// down and redial.
		return fault.Errf(fault.WireDropFrame, t.String())
	}
	n := 1 + 8 + len(body)
	if n > MaxFrame {
		return fmt.Errorf("wire: frame too large (%d bytes)", n)
	}
	buf := make([]byte, 4+n)
	binary.LittleEndian.PutUint32(buf[0:], uint32(n))
	buf[4] = byte(t)
	binary.LittleEndian.PutUint64(buf[5:], req)
	copy(buf[13:], body)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame, rejecting lengths above MaxFrame.
func ReadFrame(r io.Reader) (Frame, error) {
	if injector.Load().Should(fault.WireCloseConn) {
		return Frame{}, fault.Errf(fault.WireCloseConn, "")
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 9 || n > MaxFrame {
		return Frame{}, fmt.Errorf("wire: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, err
	}
	return Frame{
		Type: MsgType(buf[0]),
		Req:  binary.LittleEndian.Uint64(buf[1:9]),
		Body: buf[9:],
	}, nil
}

// Enc builds a frame body.
type Enc struct{ b []byte }

func (e *Enc) U8(v uint8)   { e.b = append(e.b, v) }
func (e *Enc) U16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *Enc) U32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *Enc) U64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *Enc) I64(v int64)  { e.U64(uint64(v)) }
func (e *Enc) F32(v float32) {
	e.U32(math.Float32bits(v))
}
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// Bytes returns the accumulated body.
func (e *Enc) Bytes() []byte { return e.b }

// Dec decodes a frame body. The first malformed field latches an error;
// callers check Err once at the end instead of after every field.
type Dec struct {
	b   []byte
	off int
	bad bool
}

// NewDec wraps a body for decoding.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

func (d *Dec) take(n int) []byte {
	if d.bad || d.off+n > len(d.b) {
		d.bad = true
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *Dec) U8() uint8 {
	v := d.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (d *Dec) U16() uint16 {
	v := d.take(2)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(v)
}

func (d *Dec) U32() uint32 {
	v := d.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

func (d *Dec) U64() uint64 {
	v := d.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

func (d *Dec) I64() int64   { return int64(d.U64()) }
func (d *Dec) F32() float32 { return math.Float32frombits(d.U32()) }
func (d *Dec) Str() string {
	n := int(d.U32())
	if d.bad || n > len(d.b)-d.off {
		d.bad = true
		return ""
	}
	return string(d.take(n))
}

// Err reports whether any field ran past the body.
func (d *Dec) Err() error {
	if d.bad {
		return fmt.Errorf("wire: truncated or malformed message body")
	}
	return nil
}

// Hello is the client's first frame: protocol version plus tenant
// identity and authentication token.
type Hello struct {
	Version uint32
	Tenant  string
	Token   string
}

func (m *Hello) Encode() []byte {
	var e Enc
	e.U32(m.Version)
	e.Str(m.Tenant)
	e.Str(m.Token)
	return e.Bytes()
}

func (m *Hello) Decode(b []byte) error {
	d := NewDec(b)
	m.Version = d.U32()
	m.Tenant = d.Str()
	m.Token = d.Str()
	return d.Err()
}

// Welcome is the server's handshake verdict. Code OK admits the
// connection; anything else explains the rejection and the server
// closes the socket.
type Welcome struct {
	Code    Code
	Msg     string
	Version uint32
}

func (m *Welcome) Encode() []byte {
	var e Enc
	e.U16(uint16(m.Code))
	e.Str(m.Msg)
	e.U32(m.Version)
	return e.Bytes()
}

func (m *Welcome) Decode(b []byte) error {
	d := NewDec(b)
	m.Code = Code(d.U16())
	m.Msg = d.Str()
	m.Version = d.U32()
	return d.Err()
}

// ProgramCreate carries CLC source to compile server-side.
type ProgramCreate struct {
	Source string
}

func (m *ProgramCreate) Encode() []byte {
	var e Enc
	e.Str(m.Source)
	return e.Bytes()
}

func (m *ProgramCreate) Decode(b []byte) error {
	d := NewDec(b)
	m.Source = d.Str()
	return d.Err()
}

// ProgramInfo replies with the server-assigned program id.
type ProgramInfo struct {
	Prog uint64
}

func (m *ProgramInfo) Encode() []byte {
	var e Enc
	e.U64(m.Prog)
	return e.Bytes()
}

func (m *ProgramInfo) Decode(b []byte) error {
	d := NewDec(b)
	m.Prog = d.U64()
	return d.Err()
}

// KernelCreate names a kernel inside a created program.
type KernelCreate struct {
	Prog uint64
	Name string
}

func (m *KernelCreate) Encode() []byte {
	var e Enc
	e.U64(m.Prog)
	e.Str(m.Name)
	return e.Bytes()
}

func (m *KernelCreate) Decode(b []byte) error {
	d := NewDec(b)
	m.Prog = d.U64()
	m.Name = d.Str()
	return d.Err()
}

// KernelInfo replies with the kernel id and its arity.
type KernelInfo struct {
	Kernel  uint64
	NumArgs uint32
}

func (m *KernelInfo) Encode() []byte {
	var e Enc
	e.U64(m.Kernel)
	e.U32(m.NumArgs)
	return e.Bytes()
}

func (m *KernelInfo) Decode(b []byte) error {
	d := NewDec(b)
	m.Kernel = d.U64()
	m.NumArgs = d.U32()
	return d.Err()
}

// BufferCreate asks for a device buffer of Size bytes backed by a
// shared-memory segment.
type BufferCreate struct {
	Size int64
}

func (m *BufferCreate) Encode() []byte {
	var e Enc
	e.I64(m.Size)
	return e.Bytes()
}

func (m *BufferCreate) Decode(b []byte) error {
	d := NewDec(b)
	m.Size = d.I64()
	return d.Err()
}

// BufferInfo replies with the buffer id and the filesystem path of the
// shared-memory segment the client mmaps. The segment IS the buffer's
// device backing (interp.Machine.BindRegion binds it zero-copy), so
// bytes written through the client's mapping are the bytes kernels
// read — no per-transfer copy crosses the process boundary.
type BufferInfo struct {
	Buffer uint64
	Path   string
	Size   int64
}

func (m *BufferInfo) Encode() []byte {
	var e Enc
	e.U64(m.Buffer)
	e.Str(m.Path)
	e.I64(m.Size)
	return e.Bytes()
}

func (m *BufferInfo) Decode(b []byte) error {
	d := NewDec(b)
	m.Buffer = d.U64()
	m.Path = d.Str()
	m.Size = d.I64()
	return d.Err()
}

// BufferRelease drops the server-side buffer (refcount-aware: in-flight
// launches cancel at their next slice boundary, then the backing is
// freed).
type BufferRelease struct {
	Buffer uint64
}

func (m *BufferRelease) Encode() []byte {
	var e Enc
	e.U64(m.Buffer)
	return e.Bytes()
}

func (m *BufferRelease) Decode(b []byte) error {
	d := NewDec(b)
	m.Buffer = d.U64()
	return d.Err()
}

// Kernel argument kinds carried inside EnqueueKernel.
const (
	ArgBuffer uint8 = 1
	ArgI32    uint8 = 2
	ArgI64    uint8 = 3
	ArgF32    uint8 = 4
	ArgLocal  uint8 = 5
)

// KernelArg is one argument binding for a launch. Exactly one field
// besides Kind is meaningful, selected by Kind.
type KernelArg struct {
	Kind   uint8
	Buffer uint64 // ArgBuffer: buffer id
	I64    int64  // ArgI32/ArgI64/ArgLocal: value or local byte size
	F32    float32
}

// EnqueueKernel launches a kernel. No immediate ack is sent: one
// MsgEventDone frame tagged with this request id arrives when the
// server-side event reaches a terminal state, and the request id names
// the event in later wait lists.
type EnqueueKernel struct {
	Kernel uint64
	Dims   uint8
	Global [3]int64
	Local  [3]int64
	Args   []KernelArg
	Waits  []uint64
}

func (m *EnqueueKernel) Encode() []byte {
	var e Enc
	e.U64(m.Kernel)
	e.U8(m.Dims)
	for _, v := range m.Global {
		e.I64(v)
	}
	for _, v := range m.Local {
		e.I64(v)
	}
	e.U32(uint32(len(m.Args)))
	for _, a := range m.Args {
		e.U8(a.Kind)
		e.U64(a.Buffer)
		e.I64(a.I64)
		e.F32(a.F32)
	}
	e.U32(uint32(len(m.Waits)))
	for _, w := range m.Waits {
		e.U64(w)
	}
	return e.Bytes()
}

func (m *EnqueueKernel) Decode(b []byte) error {
	d := NewDec(b)
	m.Kernel = d.U64()
	m.Dims = d.U8()
	for i := range m.Global {
		m.Global[i] = d.I64()
	}
	for i := range m.Local {
		m.Local[i] = d.I64()
	}
	na := int(d.U32())
	if na > len(b) { // arity bounded by body size: each arg takes >1 byte
		return fmt.Errorf("wire: absurd arg count %d", na)
	}
	m.Args = make([]KernelArg, 0, na)
	for i := 0; i < na; i++ {
		m.Args = append(m.Args, KernelArg{
			Kind:   d.U8(),
			Buffer: d.U64(),
			I64:    d.I64(),
			F32:    d.F32(),
		})
	}
	nw := int(d.U32())
	if nw > len(b) {
		return fmt.Errorf("wire: absurd wait count %d", nw)
	}
	m.Waits = make([]uint64, 0, nw)
	for i := 0; i < nw; i++ {
		m.Waits = append(m.Waits, d.U64())
	}
	return d.Err()
}

// Copy directions for EnqueueCopy.
const (
	CopyWrite uint8 = 1 // host → buffer: client copies into the mapping, then signals
	CopyRead  uint8 = 2 // buffer → host: server signals, client copies out of the mapping
)

// EnqueueCopy registers a transfer event. The bytes themselves never
// ride the socket — the client reads/writes the mmap'd segment — so a
// "transfer" is pure event signaling:
//
//   - CopyWrite: the server creates an event and waits for the client's
//     MsgCopyDone (sent after the client's dependencies resolved and its
//     bytes landed in the mapping).
//   - CopyRead: the server completes the event once Waits resolve; the
//     client copies out of the mapping when MsgEventDone arrives.
type EnqueueCopy struct {
	Dir    uint8
	Buffer uint64
	Off    int64
	N      int64
	Waits  []uint64
}

func (m *EnqueueCopy) Encode() []byte {
	var e Enc
	e.U8(m.Dir)
	e.U64(m.Buffer)
	e.I64(m.Off)
	e.I64(m.N)
	e.U32(uint32(len(m.Waits)))
	for _, w := range m.Waits {
		e.U64(w)
	}
	return e.Bytes()
}

func (m *EnqueueCopy) Decode(b []byte) error {
	d := NewDec(b)
	m.Dir = d.U8()
	m.Buffer = d.U64()
	m.Off = d.I64()
	m.N = d.I64()
	nw := int(d.U32())
	if nw > len(b) {
		return fmt.Errorf("wire: absurd wait count %d", nw)
	}
	m.Waits = make([]uint64, 0, nw)
	for i := 0; i < nw; i++ {
		m.Waits = append(m.Waits, d.U64())
	}
	return d.Err()
}

// Status is the shared body of MsgWelcome-free verdict frames:
// MsgEventDone, MsgError, and MsgCopyDone all carry a code plus a
// human-readable message.
type Status struct {
	Code Code
	Msg  string
}

func (m *Status) Encode() []byte {
	var e Enc
	e.U16(uint16(m.Code))
	e.Str(m.Msg)
	return e.Bytes()
}

func (m *Status) Decode(b []byte) error {
	d := NewDec(b)
	m.Code = Code(d.U16())
	m.Msg = d.Str()
	return d.Err()
}
