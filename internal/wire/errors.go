package wire

import (
	"errors"
	"fmt"

	"repro/internal/accelos"
	"repro/internal/opencl"
)

// Code is a typed error code carried in Status and Welcome bodies. The
// mapping is lossless for the runtime's sentinel errors: CodeOf turns a
// server-side error chain into a code, and Code.Err reconstructs an
// error on the client for which errors.Is against the original sentinel
// still holds — so a client can write
//
//	errors.Is(err, accelos.ErrAdmissionRejected)
//
// about a failure that happened in another process.
type Code uint16

const (
	CodeOK Code = 0

	// Runtime sentinels that round-trip across the boundary.
	CodeAdmissionRejected Code = 1 // accelos.ErrAdmissionRejected
	CodeBufferReleased    Code = 2 // opencl.ErrBufferReleased
	CodeAppClosed         Code = 3 // accelos.ErrAppClosed
	CodeOutOfMemory       Code = 4 // opencl.ErrOutOfMemory
	CodeDeviceLost        Code = 5 // accelos.ErrDeviceLost
	CodeKernelTimeout     Code = 6 // accelos.ErrKernelTimeout
	CodeQuarantined       Code = 7 // accelos.ErrKernelQuarantined

	// Service-layer verdicts.
	CodeBadHandshake  Code = 16 // malformed hello or version mismatch
	CodeUnknownTenant Code = 17 // tenant not in the auth table, or bad token
	CodeBackpressure  Code = 18 // per-connection in-flight window exceeded
	CodeRateLimited   Code = 19 // per-tenant rate limit exceeded
	CodeNotFound      Code = 20 // unknown program/kernel/buffer/event id
	CodeBadRequest    Code = 21 // structurally valid frame, invalid contents
	CodeInternal      Code = 22
)

// Service-layer sentinel errors; Code.Err wraps these so clients can
// errors.Is against them exactly like the runtime sentinels.
var (
	ErrBadHandshake  = errors.New("wire: bad handshake")
	ErrUnknownTenant = errors.New("wire: unknown tenant or bad token")
	ErrBackpressure  = errors.New("wire: too many requests in flight on connection")
	ErrRateLimited   = errors.New("wire: tenant rate limit exceeded")
	ErrNotFound      = errors.New("wire: unknown object id")
	ErrBadRequest    = errors.New("wire: bad request")
	ErrInternal      = errors.New("wire: internal server error")
)

// sentinel returns the canonical error a code stands for, or nil for
// CodeOK and unknown codes.
func (c Code) sentinel() error {
	switch c {
	case CodeAdmissionRejected:
		return accelos.ErrAdmissionRejected
	case CodeBufferReleased:
		return opencl.ErrBufferReleased
	case CodeAppClosed:
		return accelos.ErrAppClosed
	case CodeOutOfMemory:
		return opencl.ErrOutOfMemory
	case CodeDeviceLost:
		return accelos.ErrDeviceLost
	case CodeKernelTimeout:
		return accelos.ErrKernelTimeout
	case CodeQuarantined:
		return accelos.ErrKernelQuarantined
	case CodeBadHandshake:
		return ErrBadHandshake
	case CodeUnknownTenant:
		return ErrUnknownTenant
	case CodeBackpressure:
		return ErrBackpressure
	case CodeRateLimited:
		return ErrRateLimited
	case CodeNotFound:
		return ErrNotFound
	case CodeBadRequest:
		return ErrBadRequest
	case CodeInternal:
		return ErrInternal
	}
	return nil
}

func (c Code) String() string {
	if c == CodeOK {
		return "ok"
	}
	if s := c.sentinel(); s != nil {
		return s.Error()
	}
	return fmt.Sprintf("code(%d)", uint16(c))
}

// CodeOf maps an error chain to the code that survives the wire.
// Unrecognized errors collapse to CodeInternal (their message still
// travels in Status.Msg); nil maps to CodeOK.
func CodeOf(err error) Code {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, accelos.ErrAdmissionRejected):
		return CodeAdmissionRejected
	case errors.Is(err, opencl.ErrBufferReleased):
		return CodeBufferReleased
	case errors.Is(err, accelos.ErrAppClosed):
		return CodeAppClosed
	case errors.Is(err, opencl.ErrOutOfMemory):
		return CodeOutOfMemory
	case errors.Is(err, accelos.ErrDeviceLost):
		return CodeDeviceLost
	case errors.Is(err, accelos.ErrKernelTimeout):
		return CodeKernelTimeout
	case errors.Is(err, accelos.ErrKernelQuarantined):
		return CodeQuarantined
	case errors.Is(err, ErrBadHandshake):
		return CodeBadHandshake
	case errors.Is(err, ErrUnknownTenant):
		return CodeUnknownTenant
	case errors.Is(err, ErrBackpressure):
		return CodeBackpressure
	case errors.Is(err, ErrRateLimited):
		return CodeRateLimited
	case errors.Is(err, ErrNotFound):
		return CodeNotFound
	case errors.Is(err, ErrBadRequest):
		return CodeBadRequest
	}
	return CodeInternal
}

// remoteError is a reconstructed server-side failure: it carries the
// server's message and unwraps to the code's canonical sentinel.
type remoteError struct {
	code Code
	msg  string
}

func (e *remoteError) Error() string {
	if e.msg != "" {
		return e.msg
	}
	return e.code.String()
}

func (e *remoteError) Unwrap() error { return e.code.sentinel() }

// Err reconstructs an error from a code and the server's message.
// errors.Is(err, <sentinel>) holds for the code's canonical sentinel,
// so typed handling survives the process boundary. CodeOK returns nil.
func (c Code) Err(msg string) error {
	if c == CodeOK {
		return nil
	}
	return &remoteError{code: c, msg: msg}
}
