package wire

import (
	"sync/atomic"

	"repro/internal/fault"
)

// injector is the process-wide chaos injector for the transport's
// injection points (frame drop on write, connection close on read, shm
// map failure). The disabled-path cost is one atomic load per frame.
//
// The chaos harness installs it only in the client process and runs the
// daemon as a clean child, so injected transport faults model a flaky
// link or a crashed peer as seen from one side.
var injector atomic.Pointer[fault.Injector]

// SetFaultInjector installs (or, with nil, removes) the chaos injector
// for the wire transport.
func SetFaultInjector(in *fault.Injector) {
	if in == nil {
		injector.Store(nil)
		return
	}
	injector.Store(in)
}
