package wire

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/accelos"
	"repro/internal/opencl"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("payload")
	if err := WriteFrame(&buf, MsgEnqueueKernel, 42, body); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, MsgAck, 43, nil); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != MsgEnqueueKernel || f.Req != 42 || !bytes.Equal(f.Body, body) {
		t.Fatalf("frame 1 = %+v", f)
	}
	f, err = ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != MsgAck || f.Req != 43 || len(f.Body) != 0 {
		t.Fatalf("frame 2 = %+v", f)
	}
}

func TestFrameRejectsHostileLengths(t *testing.T) {
	// A length field above MaxFrame must be rejected before any
	// allocation of that size.
	hostile := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(hostile)); err == nil {
		t.Fatal("oversized frame length accepted")
	}
	// Undersized: length can't even hold type + request id.
	tiny := []byte{3, 0, 0, 0, 1, 2, 3}
	if _, err := ReadFrame(bytes.NewReader(tiny)); err == nil {
		t.Fatal("undersized frame length accepted")
	}
	if err := WriteFrame(&bytes.Buffer{}, MsgHello, 0, make([]byte, MaxFrame)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	hello := Hello{Version: Version, Tenant: "tenant-a", Token: "s3cret"}
	var h2 Hello
	if err := h2.Decode(hello.Encode()); err != nil || h2 != hello {
		t.Fatalf("hello: %+v err=%v", h2, err)
	}

	ek := EnqueueKernel{
		Kernel: 7,
		Dims:   2,
		Global: [3]int64{1024, 8, 1},
		Local:  [3]int64{64, 1, 1},
		Args: []KernelArg{
			{Kind: ArgBuffer, Buffer: 3},
			{Kind: ArgI32, I64: -9},
			{Kind: ArgF32, F32: 2.5},
			{Kind: ArgLocal, I64: 4096},
		},
		Waits: []uint64{11, 12},
	}
	var ek2 EnqueueKernel
	if err := ek2.Decode(ek.Encode()); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ek2) != fmt.Sprint(ek) {
		t.Fatalf("enqueue-kernel: %+v != %+v", ek2, ek)
	}

	ec := EnqueueCopy{Dir: CopyRead, Buffer: 3, Off: 16, N: 1024, Waits: []uint64{5}}
	var ec2 EnqueueCopy
	if err := ec2.Decode(ec.Encode()); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ec2) != fmt.Sprint(ec) {
		t.Fatalf("enqueue-copy: %+v != %+v", ec2, ec)
	}

	bi := BufferInfo{Buffer: 9, Path: "/tmp/accelos-shm-1", Size: 4096}
	var bi2 BufferInfo
	if err := bi2.Decode(bi.Encode()); err != nil || bi2 != bi {
		t.Fatalf("buffer-info: %+v err=%v", bi2, err)
	}

	// Truncated bodies must error, not decode garbage.
	enc := ek.Encode()
	var trunc EnqueueKernel
	if err := trunc.Decode(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated body decoded cleanly")
	}
}

// TestCodeRoundTrip is the satellite-2 acceptance check at the wire
// layer: runtime sentinels survive encode → decode such that errors.Is
// against the original sentinel holds on the client side.
func TestCodeRoundTrip(t *testing.T) {
	cases := []struct {
		err  error
		code Code
	}{
		{fmt.Errorf("admit: %w", accelos.ErrAdmissionRejected), CodeAdmissionRejected},
		{fmt.Errorf("kernel arg 2: %w", opencl.ErrBufferReleased), CodeBufferReleased},
		{accelos.ErrAppClosed, CodeAppClosed},
		{opencl.ErrOutOfMemory, CodeOutOfMemory},
		{ErrBackpressure, CodeBackpressure},
		{ErrRateLimited, CodeRateLimited},
		{ErrUnknownTenant, CodeUnknownTenant},
		{ErrNotFound, CodeNotFound},
	}
	for _, c := range cases {
		got := CodeOf(c.err)
		if got != c.code {
			t.Errorf("CodeOf(%v) = %v, want %v", c.err, got, c.code)
			continue
		}
		// Simulate the wire: only (code, message) crosses.
		st := Status{Code: got, Msg: c.err.Error()}
		var st2 Status
		if err := st2.Decode(st.Encode()); err != nil {
			t.Fatal(err)
		}
		back := st2.Code.Err(st2.Msg)
		if !errors.Is(back, errors.Unwrap(&remoteError{code: c.code})) {
			t.Errorf("reconstructed %v does not unwrap to its sentinel", back)
		}
		if back.Error() != c.err.Error() {
			t.Errorf("message lost: %q != %q", back.Error(), c.err.Error())
		}
	}
	// The headline round trips, spelled the way client code writes them.
	if !errors.Is(CodeAdmissionRejected.Err("busy"), accelos.ErrAdmissionRejected) {
		t.Error("ErrAdmissionRejected does not round-trip")
	}
	if !errors.Is(CodeBufferReleased.Err("gone"), opencl.ErrBufferReleased) {
		t.Error("ErrBufferReleased does not round-trip")
	}
	if !errors.Is(CodeAppClosed.Err("closed"), accelos.ErrAppClosed) {
		t.Error("ErrAppClosed does not round-trip")
	}
	if CodeOf(nil) != CodeOK || CodeOK.Err("") != nil {
		t.Error("CodeOK must map to nil and back")
	}
	if CodeOf(fmt.Errorf("novel failure")) != CodeInternal {
		t.Error("unrecognized errors must collapse to CodeInternal")
	}
}

func TestShmSharedVisibility(t *testing.T) {
	owner, err := CreateShm(t.TempDir(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	peer, err := OpenShm(owner.Path)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if len(peer.Bytes) != 4096 {
		t.Fatalf("peer mapping size = %d", len(peer.Bytes))
	}
	copy(owner.Bytes, "written by owner")
	if got := string(peer.Bytes[:16]); got != "written by owner" {
		t.Fatalf("peer sees %q", got)
	}
	peer.Bytes[0] = 'W'
	if owner.Bytes[0] != 'W' {
		t.Fatal("owner does not see peer's write")
	}
	// Owner close unlinks; peer's mapping must stay valid.
	if err := owner.Close(); err != nil {
		t.Fatal(err)
	}
	if peer.Bytes[1] != 'r' {
		t.Fatal("peer mapping died with the owner's unlink")
	}
	if err := peer.Close(); err != nil {
		t.Fatal(err)
	}
	if err := peer.Close(); err != nil {
		t.Fatal(err) // double close is safe
	}
}
