//go:build !unix

package wire

import "errors"

// Shm is unavailable off unix: the service layer's zero-copy buffers
// need MAP_SHARED file mappings. The daemon and client refuse to start
// rather than silently copying.
type Shm struct {
	Path  string
	Bytes []byte
}

var errNoShm = errors.New("wire: shared-memory buffers require a unix platform")

func CreateShm(dir string, size int64) (*Shm, error) { return nil, errNoShm }
func OpenShm(path string) (*Shm, error)              { return nil, errNoShm }
func (s *Shm) Close() error                          { return nil }
