//go:build unix

package wire

import (
	"fmt"
	"os"
	"syscall"

	"repro/internal/fault"
)

// Shm is one shared-memory segment backing a service buffer: a tmpfile
// mmap'd MAP_SHARED by both the daemon and the client. The daemon
// creates it (owner) and its mapping becomes the opencl.Buffer backing
// that interp.Machine.BindRegion binds into kernels zero-copy; the
// client opens the same path, so both processes address the same
// physical pages and "transfers" never copy across the boundary.
type Shm struct {
	Path  string
	Bytes []byte
	owner bool
}

// CreateShm makes a new segment of size bytes under dir (os.TempDir()
// when empty). The owner unlinks the file on Close; clients that have
// it mapped keep their pages until they close their own mapping.
func CreateShm(dir string, size int64) (*Shm, error) {
	if size <= 0 {
		return nil, fmt.Errorf("wire: shm size %d out of range", size)
	}
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "accelos-shm-*")
	if err != nil {
		return nil, fmt.Errorf("wire: create shm: %w", err)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, fmt.Errorf("wire: size shm: %w", err)
	}
	b, err := mmap(f, size)
	f.Close()
	if err != nil {
		os.Remove(f.Name())
		return nil, err
	}
	return &Shm{Path: f.Name(), Bytes: b, owner: true}, nil
}

// OpenShm maps an existing segment created by the peer.
func OpenShm(path string) (*Shm, error) {
	if injector.Load().Should(fault.ShmMapFail) {
		return nil, fault.Errf(fault.ShmMapFail, path)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("wire: open shm: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wire: stat shm: %w", err)
	}
	b, err := mmap(f, st.Size())
	f.Close()
	if err != nil {
		return nil, err
	}
	return &Shm{Path: path, Bytes: b}, nil
}

func mmap(f *os.File, size int64) ([]byte, error) {
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("wire: mmap shm: %w", err)
	}
	return b, nil
}

// Close unmaps the segment; the owner also unlinks the backing file.
// Safe to call twice.
func (s *Shm) Close() error {
	var err error
	if s.Bytes != nil {
		err = syscall.Munmap(s.Bytes)
		s.Bytes = nil
	}
	if s.owner {
		s.owner = false
		if rmErr := os.Remove(s.Path); err == nil && rmErr != nil && !os.IsNotExist(rmErr) {
			err = rmErr
		}
	}
	return err
}
