// Package fault is the chaos-injection layer: a seeded, probabilistic
// Injector consulted at named points hooked into the cluster pool
// (device failure), the opencl launch path (slice delay), and the wire
// transport (frame drop, connection close, shm map failure).
//
// Production builds compile the hooks in but install no injector: every
// hook site is one atomic load plus a nil check (the bench-fault CI job
// guards the overhead at <3%). The chaos harness installs one Injector
// process-wide, runs a seeded multi-tenant workload, and asserts the
// runtime's recovery invariants.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Point names one injection site. The constants below are the complete
// set of hooks wired into the runtime.
type Point string

const (
	// DeviceFail fires in cluster.Pool.Submit after placement: the
	// device the request landed on is failed (FailDevice), evicting its
	// resident set and exercising slice-boundary relaunch.
	DeviceFail Point = "device-fail"
	// SliceDelay fires in opencl.LaunchHandle.Step before each slice:
	// the slice is delayed by the injector's slice-delay duration,
	// widening the windows the chaos harness wants to race.
	SliceDelay Point = "slice-delay"
	// WireDropFrame fires in wire.WriteFrame: the frame is not written
	// and the caller gets an ErrInjected-wrapped error, as if the
	// transport swallowed the write.
	WireDropFrame Point = "wire-drop-frame"
	// WireCloseConn fires in wire.ReadFrame: the read fails with an
	// ErrInjected-wrapped error, as if the peer closed the connection.
	WireCloseConn Point = "wire-close-conn"
	// ShmMapFail fires in wire.OpenShm: the mapping fails, as if the
	// daemon's segment could not be mapped into the client.
	ShmMapFail Point = "shm-map-fail"
)

// ErrInjected marks every synthesized failure so tests can tell an
// injected fault from an organic one: errors.Is(err, fault.ErrInjected).
var ErrInjected = errors.New("fault: injected failure")

type pointState struct {
	prob  float64
	limit int64 // max fires; 0 = unlimited
	fired int64
}

// Injector decides, per named point, whether to inject a failure. All
// decisions draw from one seeded RNG, so a chaos run is reproducible
// from its seed (modulo goroutine interleaving of the call order). The
// zero probability for unconfigured points makes an installed-but-empty
// injector inert. All methods are safe for concurrent use and safe on a
// nil receiver (hooks call Should on whatever pointer they loaded).
type Injector struct {
	mu         sync.Mutex
	rng        *rand.Rand
	points     map[Point]*pointState
	sliceDelay time.Duration
}

// NewInjector returns an injector drawing from a RNG seeded with seed.
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		points: make(map[Point]*pointState),
	}
}

// Enable arms a point with an injection probability in [0, 1]. It
// returns the injector for chaining.
func (in *Injector) Enable(p Point, prob float64) *Injector {
	return in.EnableLimited(p, prob, 0)
}

// EnableLimited arms a point with a probability and a cap on the total
// number of fires (0 = unlimited). A capped point disarms itself once
// spent — the harness uses this to bound how many devices it kills.
func (in *Injector) EnableLimited(p Point, prob float64, limit int64) *Injector {
	in.mu.Lock()
	in.points[p] = &pointState{prob: prob, limit: limit}
	in.mu.Unlock()
	return in
}

// Disable disarms a point.
func (in *Injector) Disable(p Point) {
	in.mu.Lock()
	delete(in.points, p)
	in.mu.Unlock()
}

// SetSliceDelay sets the delay injected when SliceDelay fires.
func (in *Injector) SetSliceDelay(d time.Duration) {
	in.mu.Lock()
	in.sliceDelay = d
	in.mu.Unlock()
}

// SliceDelayDuration returns the configured slice delay (nil-safe).
func (in *Injector) SliceDelayDuration() time.Duration {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.sliceDelay
}

// Should reports whether the point fires this time. Nil injectors and
// unarmed points never fire.
func (in *Injector) Should(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.points[p]
	if st == nil || st.prob <= 0 {
		return false
	}
	if st.limit > 0 && st.fired >= st.limit {
		return false
	}
	if st.prob < 1 && in.rng.Float64() >= st.prob {
		return false
	}
	st.fired++
	return true
}

// Fired returns how many times the point has fired (nil-safe).
func (in *Injector) Fired(p Point) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st := in.points[p]; st != nil {
		return st.fired
	}
	return 0
}

// Counts snapshots fire counts for every armed point (nil-safe).
func (in *Injector) Counts() map[Point]int64 {
	out := make(map[Point]int64)
	if in == nil {
		return out
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for p, st := range in.points {
		out[p] = st.fired
	}
	return out
}

// Errf builds the ErrInjected-wrapped error a hook returns when a point
// fires, so errors.Is(err, ErrInjected) holds across the stack.
func Errf(p Point, detail string) error {
	if detail == "" {
		return fmt.Errorf("%w at %s", ErrInjected, p)
	}
	return fmt.Errorf("%w at %s: %s", ErrInjected, p, detail)
}
