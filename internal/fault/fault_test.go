package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Should(DeviceFail) {
		t.Fatal("nil injector fired")
	}
	if in.Fired(DeviceFail) != 0 {
		t.Fatal("nil injector counted a fire")
	}
	if in.SliceDelayDuration() != 0 {
		t.Fatal("nil injector has a slice delay")
	}
	if len(in.Counts()) != 0 {
		t.Fatal("nil injector has counts")
	}
}

func TestUnarmedPointNeverFires(t *testing.T) {
	in := NewInjector(1)
	for i := 0; i < 1000; i++ {
		if in.Should(WireDropFrame) {
			t.Fatal("unarmed point fired")
		}
	}
}

func TestProbabilityOneAlwaysFires(t *testing.T) {
	in := NewInjector(1).Enable(DeviceFail, 1)
	for i := 0; i < 10; i++ {
		if !in.Should(DeviceFail) {
			t.Fatal("prob=1 point did not fire")
		}
	}
	if got := in.Fired(DeviceFail); got != 10 {
		t.Fatalf("Fired = %d, want 10", got)
	}
}

func TestLimitDisarms(t *testing.T) {
	in := NewInjector(1).EnableLimited(DeviceFail, 1, 3)
	fires := 0
	for i := 0; i < 100; i++ {
		if in.Should(DeviceFail) {
			fires++
		}
	}
	if fires != 3 {
		t.Fatalf("capped point fired %d times, want 3", fires)
	}
}

func TestSeededDeterminism(t *testing.T) {
	run := func() []bool {
		in := NewInjector(42).Enable(SliceDelay, 0.3)
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Should(SliceDelay)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
	}
}

func TestProbabilityRoughlyHonored(t *testing.T) {
	in := NewInjector(7).Enable(WireCloseConn, 0.25)
	fires := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if in.Should(WireCloseConn) {
			fires++
		}
	}
	if fires < n/8 || fires > n/2 {
		t.Fatalf("prob=0.25 fired %d/%d times", fires, n)
	}
}

func TestDisable(t *testing.T) {
	in := NewInjector(1).Enable(ShmMapFail, 1)
	if !in.Should(ShmMapFail) {
		t.Fatal("armed point did not fire")
	}
	in.Disable(ShmMapFail)
	if in.Should(ShmMapFail) {
		t.Fatal("disabled point fired")
	}
}

func TestErrfWrapsSentinel(t *testing.T) {
	err := Errf(WireDropFrame, "frame type 5")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Errf result does not wrap ErrInjected: %v", err)
	}
	if err = Errf(ShmMapFail, ""); !errors.Is(err, ErrInjected) {
		t.Fatalf("Errf without detail does not wrap ErrInjected: %v", err)
	}
}

func TestConcurrentUse(t *testing.T) {
	in := NewInjector(9).Enable(DeviceFail, 0.5).Enable(SliceDelay, 0.5)
	in.SetSliceDelay(time.Microsecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				in.Should(DeviceFail)
				in.Should(SliceDelay)
				in.SliceDelayDuration()
				in.Counts()
			}
		}()
	}
	wg.Wait()
	if in.Fired(DeviceFail) == 0 || in.Fired(SliceDelay) == 0 {
		t.Fatal("concurrent hammering never fired")
	}
}
