// The external test package breaks the accelos -> cluster dependency
// direction so these tests can drive the cluster layer with the real
// §3 weighted planner.
package cluster_test

import (
	"testing"

	"repro/internal/accelos"
	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/sim"
)

// twoShapes returns a deliberately heterogeneous pool: the two
// evaluation platforms differ in CU count, threads/CU, local memory,
// warp size and launch overhead.
func twoShapes() []*device.Platform {
	return []*device.Platform{device.NVIDIAK20m(), device.AMDR9295X2()}
}

func exec(id int, tenant string, wgs, numWGs int64) *sim.ClusterExec {
	return &sim.ClusterExec{
		K: &sim.KernelExec{
			ID: id, Name: tenant, WGSize: wgs, NumWGs: numWGs,
			LocalBytes: 1024, RegsPerThread: 20,
			BaseWGCost: 8000, MemIntensity: 0.3, SatFrac: 0.5, Chunk: 2,
		},
		Tenant: tenant,
	}
}

func sched(pol cluster.Policy) *cluster.Scheduler {
	return cluster.NewScheduler(pol, accelos.PlanWeighted)
}

// TestPoliciesOverHeterogeneousPool exercises every placement policy
// over both device shapes: all requests must complete, deterministically,
// on every policy.
func TestPoliciesOverHeterogeneousPool(t *testing.T) {
	for _, name := range cluster.PolicyNames() {
		t.Run(name, func(t *testing.T) {
			pol, err := cluster.PolicyByName(name)
			if err != nil {
				t.Fatal(err)
			}
			var execs []*sim.ClusterExec
			for i := 0; i < 8; i++ {
				e := exec(i, []string{"a", "b"}[i%2], 64+int64(i%3)*64, 2000+int64(i)*500)
				e.Arrival = int64(i) * 5000
				execs = append(execs, e)
			}
			r := sim.RunCluster(twoShapes(), execs, sched(pol), sim.ClusterOptions{Rebalance: true})
			if r.Makespan <= 0 {
				t.Fatal("zero makespan")
			}
			for i, tm := range r.Timings {
				if tm.End <= 0 {
					t.Errorf("exec %d never completed under %s", i, name)
				}
			}
			// Both heterogeneous shapes must actually be used.
			busy := 0
			for _, d := range r.Devices {
				if d.BusyCycles > 0 {
					busy++
				}
			}
			if busy < 2 {
				t.Errorf("%s left a pool member idle for the whole run", name)
			}
		})
	}
}

func TestPolicyByNameUnknown(t *testing.T) {
	if _, err := cluster.PolicyByName("speculative"); err == nil {
		t.Error("unknown policy name should fail")
	}
	if len(cluster.PolicyNames()) < 4 {
		t.Errorf("want >= 4 registered policies, have %v", cluster.PolicyNames())
	}
}

func TestRoundRobinCycles(t *testing.T) {
	pol := cluster.RoundRobin()
	loads := poolLoads(3)
	seen := map[int]bool{}
	for i := 0; i < 6; i++ {
		seen[pol.Pick(exec(i, "t", 64, 100), loads)] = true
	}
	if len(seen) != 3 {
		t.Errorf("round-robin visited %d of 3 devices", len(seen))
	}
}

func TestLeastLoadedNormalizesByCapacity(t *testing.T) {
	pol := cluster.LeastLoaded()
	loads := poolLoads(2)
	// Same absolute backlog on both devices: the wider AMD device
	// (index 1: 44 CUs x 2560 threads vs 13 x 2048) is less loaded
	// per thread slot.
	loads[0].PendingWork = 1 << 20
	loads[1].PendingWork = 1 << 20
	if got := pol.Pick(exec(0, "t", 64, 100), loads); got != 1 {
		t.Errorf("least-loaded picked %d, want the wider device 1", got)
	}
}

func TestBestFitMatchesFootprintToShape(t *testing.T) {
	pol := cluster.BestFit()
	loads := poolLoads(2)
	// A small grid wastes the AMD device's width; best-fit should keep
	// it on the narrower NVIDIA shape.
	small := exec(0, "t", 64, 128)
	if got := pol.Pick(small, loads); got != 0 {
		t.Errorf("best-fit placed a small grid on device %d, want 0", got)
	}
	// A huge grid gets the width it can use.
	big := exec(1, "t", 64, 2_000_000)
	if got := pol.Pick(big, loads); got != 1 {
		t.Errorf("best-fit placed a huge grid on device %d, want 1", got)
	}
}

func TestTenantAffinityIsSticky(t *testing.T) {
	pol := cluster.TenantAffinity()
	loads := poolLoads(4)
	first := pol.Pick(exec(0, "tenant-x", 64, 100), loads)
	for i := 1; i < 5; i++ {
		if got := pol.Pick(exec(i, "tenant-x", 64, 100), loads); got != first {
			t.Errorf("tenant-x moved from %d to %d with no backlog", first, got)
		}
	}
	// Overload the home device: the tenant must spill.
	loads[first].PendingWork = 1 << 40
	for i := range loads {
		if i != first {
			loads[i].PendingWork = 1
		}
	}
	if got := pol.Pick(exec(9, "tenant-x", 64, 100), loads); got == first {
		t.Error("tenant-affinity did not spill off an overloaded home device")
	}
}

func poolLoads(n int) []sim.DeviceLoad {
	devs := device.PoolOf(n)
	loads := make([]sim.DeviceLoad, n)
	for i, d := range devs {
		loads[i] = sim.DeviceLoad{Dev: d, Index: i}
	}
	return loads
}

// TestAggregateTenantFairness is the acceptance bar for the cluster
// scheduler: three tenants with equal weights and symmetric demand over
// a heterogeneous pool end up with aggregate shares within 10% of
// equal, and the cluster beats single-device serial execution.
func TestAggregateTenantFairness(t *testing.T) {
	devs := device.PoolOf(3) // NVIDIA, AMD, NVIDIA: two shapes
	var execs []*sim.ClusterExec
	id := 0
	for _, tenant := range []string{"a", "b", "c"} {
		for j := 0; j < 3; j++ {
			execs = append(execs, exec(id, tenant, 128, 6000))
			id++
		}
	}
	// Round-robin over tenant-grouped submissions lands one kernel of
	// each tenant on every device, so the per-device §3 equal shares
	// compose into equal aggregates across the heterogeneous pool.
	r := sim.RunCluster(devs, execs, sched(cluster.RoundRobin()), sim.ClusterOptions{Rebalance: true})
	shares := r.TenantShares()
	want := 1.0 / 3
	for tenant, s := range shares {
		if s < want*0.9 || s > want*1.1 {
			t.Errorf("tenant %s aggregate share %.3f outside 10%% of %.3f (all: %v)",
				tenant, s, want, shares)
		}
	}

	// Single-device serial yardstick: every request back to back on the
	// pool's first device.
	var serial int64
	for _, e := range execs {
		serial += e.K.EstimateIsolatedCycles(devs[0]) * e.K.NumIters()
	}
	if r.Makespan >= serial {
		t.Errorf("cluster makespan %d did not beat single-device serial %d", r.Makespan, serial)
	}
}

// TestTenantWeightsSkewAggregates checks the weighted generalization: a
// weight-3 tenant receives about three times the aggregate capacity of
// a weight-1 tenant with identical demand.
func TestTenantWeightsSkewAggregates(t *testing.T) {
	// Both tenants contend on one device so the 3:1 weights are what
	// divides capacity.
	devs := device.PoolOf(1)
	execs := []*sim.ClusterExec{
		exec(0, "gold", 128, 8000),
		exec(1, "free", 128, 8000),
	}
	s := sched(cluster.RoundRobin())
	s.TenantWeights = map[string]float64{"gold": 3, "free": 1}
	r := sim.RunCluster(devs, execs, s, sim.ClusterOptions{})
	shares := r.TenantShares()
	ratio := shares["gold"] / shares["free"]
	if ratio < 2 {
		t.Errorf("3:1 tenant weights produced aggregate ratio %.2f, want >= 2 (shares %v)", ratio, shares)
	}
}

// TestSchedulerEqualizesAcrossDeviceCounts: a tenant whose kernels are
// spread over many devices must not out-collect a tenant confined to
// one; per-exec weights divide by the cluster-wide kernel count.
func TestSchedulerEqualizesAcrossDeviceCounts(t *testing.T) {
	// Homogeneous pool so the comparison isolates the weighting, not
	// device width.
	devs := []*device.Platform{device.NVIDIAK20m(), device.NVIDIAK20m()}
	// Tenant "many" submits 4 kernels, tenant "one" submits 1, all
	// identical and all arriving together.
	var execs []*sim.ClusterExec
	for i := 0; i < 4; i++ {
		execs = append(execs, exec(i, "many", 128, 4000))
	}
	execs = append(execs, exec(4, "one", 128, 4000))
	r := sim.RunCluster(devs, execs, sched(cluster.LeastLoaded()), sim.ClusterOptions{})
	shares := r.TenantShares()
	// "many" finishes its shards later (same total capacity spread over
	// 4 kernels), so exact equality is not expected — but it must not
	// collect multiples of "one"'s share the way per-kernel equal
	// division (4 kernels vs 1) would give it.
	if shares["many"] > 3*shares["one"] {
		t.Errorf("tenant with 4 kernels collected %.3f vs %.3f — per-tenant weighting not applied",
			shares["many"], shares["one"])
	}
}

func TestPoolAdmissionAndSteal(t *testing.T) {
	devs := twoShapes()
	p := cluster.NewPool(devs, cluster.RoundRobin(), 1)
	a := exec(0, "t", 64, 1000)
	b := exec(1, "t", 64, 1000)
	c := exec(2, "t", 64, 1000)
	if _, kind := p.Submit(a); kind != cluster.EvAdmitted {
		t.Fatal("first request on an empty device should be admitted")
	}
	if _, kind := p.Submit(b); kind != cluster.EvAdmitted {
		t.Fatal("second request lands on the other empty device")
	}
	di, kind := p.Submit(c)
	if kind != cluster.EvQueued {
		t.Fatal("third request should queue behind the admission limit")
	}
	loads := p.Loads()
	if loads[di].Queued != 1 {
		t.Errorf("device %d shows %d queued, want 1", di, loads[di].Queued)
	}
	// Completing the resident request admits the queued one.
	var done *sim.ClusterExec
	if di == 0 {
		done = p.Complete(0, a)
	} else {
		done = p.Complete(1, b)
	}
	if done != c {
		t.Errorf("Complete admitted %v, want the queued request", done)
	}
	if got := len(p.ResidentOn(di)); got != 1 {
		t.Errorf("%d resident on device %d after refill, want 1", got, di)
	}
}

func TestPoolRebalanceFeedsIdleDevice(t *testing.T) {
	devs := twoShapes()
	// Sticky policy: everything on device 0.
	p := cluster.NewPool(devs, stickyPolicy{}, 1)
	a := exec(0, "t", 64, 1000)
	b := exec(1, "t", 64, 1000)
	p.Submit(a)
	p.Submit(b) // queued behind a on device 0
	moves := p.Rebalance()
	if moves[b] != 1 {
		t.Errorf("rebalance moves %v, want request b on device 1", moves)
	}
	if got := len(p.ResidentOn(1)); got != 1 {
		t.Errorf("device 1 has %d resident after rebalance, want 1", got)
	}
}

type stickyPolicy struct{}

func (stickyPolicy) Name() string                                    { return "sticky" }
func (stickyPolicy) Pick(e *sim.ClusterExec, l []sim.DeviceLoad) int { return 0 }
