package cluster

import (
	"repro/internal/device"
	"repro/internal/sim"
)

// Scheduler implements sim.ClusterScheduler: placement via a pluggable
// Policy, and per-device share planning that equalizes per-tenant
// AGGREGATE shares across the pool. A tenant running four kernels
// spread over two devices gets the same total capacity as a tenant
// running one kernel on one device — each of its kernels is planned
// with weight w_t/n_t, where n_t counts the tenant's kernels resident
// anywhere in the cluster.
type Scheduler struct {
	// Policy places arriving requests (defaults to LeastLoaded).
	Policy Policy
	// TenantWeights are relative shares per tenant; absent tenants
	// weigh 1. This is the cluster-level generalization of the paper's
	// §2.2 non-equal sharing ratios.
	TenantWeights map[string]float64
	// PlanWeighted is the single-device weighted §3 planner
	// (accelos.PlanWeighted; injected to keep this package below
	// accelos in the dependency order).
	PlanWeighted sim.WeightedPlanFunc
	// Naive selects the untuned runtime-library variant.
	Naive bool
}

// NewScheduler builds a cluster scheduler over the given placement
// policy and weighted planner.
func NewScheduler(pol Policy, planWeighted sim.WeightedPlanFunc) *Scheduler {
	return &Scheduler{Policy: pol, PlanWeighted: planWeighted}
}

func (s *Scheduler) tenantWeight(t string) float64 {
	if w, ok := s.TenantWeights[t]; ok && w > 0 {
		return w
	}
	return 1
}

// Place routes one arriving request through the placement policy.
func (s *Scheduler) Place(e *sim.ClusterExec, loads []sim.DeviceLoad) int {
	pol := s.Policy
	if pol == nil {
		pol = LeastLoaded()
		s.Policy = pol
	}
	return pol.Pick(e, loads)
}

// Plan allocates one device's physical work-groups so that tenants'
// aggregate shares track their weights cluster-wide.
func (s *Scheduler) Plan(dev *device.Platform, active []*sim.ClusterExec, global []*sim.ClusterExec) []*sim.Launch {
	if len(active) == 0 {
		return nil
	}
	// Cluster-wide resident kernel count per tenant.
	counts := make(map[string]int, len(global))
	for _, ce := range global {
		counts[ce.Tenant]++
	}
	kes := make([]*sim.KernelExec, len(active))
	weights := make([]float64, len(active))
	for i, ce := range active {
		kes[i] = ce.K
		n := counts[ce.Tenant]
		if n < 1 {
			n = 1
		}
		weights[i] = s.tenantWeight(ce.Tenant) / float64(n)
	}
	return s.PlanWeighted(dev, kes, weights, s.Naive)
}
