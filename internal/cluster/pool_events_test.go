package cluster_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/device"
)

// TestPoolEventsAdmissionLifecycle checks the event stream the live
// runtime schedules from: admit, queue, complete-and-promote.
func TestPoolEventsAdmissionLifecycle(t *testing.T) {
	p := cluster.NewPool([]*device.Platform{device.NVIDIAK20m()}, cluster.RoundRobin(), 1)
	var evs []cluster.PoolEvent
	p.SetObserver(func(ev cluster.PoolEvent) { evs = append(evs, ev) })

	e1 := exec(1, "a", 64, 100)
	e2 := exec(2, "b", 64, 100)
	if _, kind := p.Submit(e1); kind != cluster.EvAdmitted {
		t.Fatal("first submit not admitted")
	}
	if _, kind := p.Submit(e2); kind != cluster.EvQueued {
		t.Fatal("second submit admitted past maxResident")
	}
	if next := p.Complete(0, e1); next != e2 {
		t.Fatalf("Complete promoted %v, want e2", next)
	}

	want := []struct {
		kind cluster.PoolEventKind
		exec interface{}
	}{
		{cluster.EvAdmitted, e1},
		{cluster.EvQueued, e2},
		{cluster.EvCompleted, e1},
		{cluster.EvAdmitted, e2},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(evs), len(want), evs)
	}
	for i, w := range want {
		if evs[i].Kind != w.kind || evs[i].Exec != w.exec {
			t.Errorf("event %d = kind %v exec %v, want kind %v exec %v",
				i, evs[i].Kind, evs[i].Exec, w.kind, w.exec)
		}
		if evs[i].Dev != 0 {
			t.Errorf("event %d on dev %d, want 0", i, evs[i].Dev)
		}
	}
}

// TestPoolEventsRejection checks the SetMaxQueued bound: a submit past
// both the resident and queue limits is refused with EvRejected, never
// joins the pool, and contributes nothing to the load snapshot.
func TestPoolEventsRejection(t *testing.T) {
	p := cluster.NewPool([]*device.Platform{device.NVIDIAK20m()}, cluster.RoundRobin(), 1)
	p.SetMaxQueued(1)
	var evs []cluster.PoolEvent
	p.SetObserver(func(ev cluster.PoolEvent) { evs = append(evs, ev) })

	e1 := exec(1, "a", 64, 100)
	e2 := exec(2, "b", 64, 100)
	e3 := exec(3, "c", 64, 100)
	if _, kind := p.Submit(e1); kind != cluster.EvAdmitted {
		t.Fatal("first submit not admitted")
	}
	if _, kind := p.Submit(e2); kind != cluster.EvQueued {
		t.Fatal("second submit not queued")
	}
	wantWork := p.Loads()[0].PendingWork
	if _, kind := p.Submit(e3); kind != cluster.EvRejected {
		t.Fatal("third submit not rejected past maxQueued")
	}
	last := evs[len(evs)-1]
	if last.Kind != cluster.EvRejected || last.Exec != e3 || last.Dev != 0 {
		t.Errorf("last event = %+v, want EvRejected e3 on dev 0", last)
	}
	loads := p.Loads()
	if loads[0].Resident != 1 || loads[0].Queued != 1 {
		t.Errorf("loads after rejection = %+v, want 1 resident / 1 queued", loads[0])
	}
	if loads[0].PendingWork != wantWork {
		t.Errorf("rejected request changed pending work: %d -> %d", wantWork, loads[0].PendingWork)
	}
	// The bound only refuses while the queue is full: a completion frees
	// a slot and the next submit queues again.
	p.Complete(0, e1)
	if _, kind := p.Submit(e3); kind != cluster.EvQueued {
		t.Error("submit after a completion should queue, not reject")
	}
}

// TestPoolEventsMigration checks Rebalance reports queue steals as
// EvMigrated on the receiving device.
func TestPoolEventsMigration(t *testing.T) {
	// Round-robin over two devices with maxResident 1: e1->dev0,
	// e2->dev1, e3->dev0's queue.
	p := cluster.NewPool(twoShapes(), cluster.RoundRobin(), 1)
	var evs []cluster.PoolEvent
	p.SetObserver(func(ev cluster.PoolEvent) { evs = append(evs, ev) })

	e1 := exec(1, "a", 64, 100)
	e2 := exec(2, "b", 64, 100)
	e3 := exec(3, "c", 64, 100)
	p.Submit(e1)
	p.Submit(e2)
	if _, kind := p.Submit(e3); kind != cluster.EvQueued {
		t.Fatal("e3 admitted past maxResident")
	}
	// dev1 drains; its queue is empty, so Rebalance steals e3 there.
	p.Complete(1, e2)
	moves := p.Rebalance()
	if di, ok := moves[e3]; !ok || di != 1 {
		t.Fatalf("Rebalance moves = %v, want e3 -> dev1", moves)
	}
	last := evs[len(evs)-1]
	if last.Kind != cluster.EvMigrated || last.Exec != e3 || last.Dev != 1 {
		t.Errorf("last event = %+v, want EvMigrated e3 on dev 1", last)
	}
}
