// Package cluster is the multi-device scheduling layer: a pool of
// simulated accelerators behind one admission controller, pluggable
// placement policies, and per-tenant fair-share accounting that
// equalizes an application's aggregate share across devices rather
// than its share of any single device. It sits below internal/accelos
// (which supplies the §3 share planner) and drives sim.RunCluster.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/sim"
)

// Policy decides which pool member an arriving request runs on.
type Policy interface {
	Name() string
	Pick(e *sim.ClusterExec, loads []sim.DeviceLoad) int
}

// RoundRobin cycles through the pool in submission order.
func RoundRobin() Policy { return &roundRobin{} }

type roundRobin struct{ next int }

func (p *roundRobin) Name() string { return "round-robin" }

func (p *roundRobin) Pick(e *sim.ClusterExec, loads []sim.DeviceLoad) int {
	if len(loads) == 0 {
		return 0
	}
	i := p.next % len(loads)
	p.next++
	return i
}

// LeastLoaded picks the device with the least pending work per thread
// slot, so a heterogeneous pool drains evenly: a device twice as wide
// absorbs twice the backlog before it stops being the least loaded.
func LeastLoaded() Policy { return leastLoaded{} }

type leastLoaded struct{}

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Pick(e *sim.ClusterExec, loads []sim.DeviceLoad) int {
	return argMinLoad(loads)
}

func argMinLoad(loads []sim.DeviceLoad) int {
	best, bestLoad := 0, -1.0
	for i, l := range loads {
		cap := float64(l.Dev.TotalThreads())
		if cap <= 0 {
			cap = 1
		}
		load := float64(l.PendingWork) / cap
		if bestLoad < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// BestFit matches the kernel's footprint to device capacity: it picks
// the device whose occupancy limit for the transformed footprint is
// closest to the kernel's grid, so small grids keep big devices free
// and big grids get the width they can actually use. Load breaks ties.
func BestFit() Policy { return bestFit{} }

type bestFit struct{}

func (bestFit) Name() string { return "best-fit" }

func (bestFit) Pick(e *sim.ClusterExec, loads []sim.DeviceLoad) int {
	fp := e.K.TransFootprint()
	best := -1
	var bestGap int64
	for i, l := range loads {
		occ := l.Dev.MaxConcurrentWGs(fp)
		if occ <= 0 {
			continue // footprint does not fit this device at all
		}
		gap := occ - e.K.NumWGs
		if gap < 0 {
			gap = -gap
		}
		if best < 0 || gap < bestGap ||
			(gap == bestGap && l.PendingWork < loads[best].PendingWork) {
			best, bestGap = i, gap
		}
	}
	if best < 0 {
		return argMinLoad(loads)
	}
	return best
}

// TenantAffinity hashes each tenant to a home device (warm JIT caches
// and resident buffers in a real deployment) and spills to the least
// loaded device only when the home backlog exceeds twice the pool
// average.
func TenantAffinity() Policy { return tenantAffinity{} }

type tenantAffinity struct{}

func (tenantAffinity) Name() string { return "tenant-affinity" }

func (tenantAffinity) Pick(e *sim.ClusterExec, loads []sim.DeviceLoad) int {
	if len(loads) == 0 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(e.Tenant))
	home := int(h.Sum32() % uint32(len(loads)))
	var total int64
	for _, l := range loads {
		total += l.PendingWork
	}
	avg := total / int64(len(loads))
	if loads[home].PendingWork > 2*avg && avg > 0 {
		return argMinLoad(loads)
	}
	return home
}

var policyFactories = map[string]func() Policy{
	"round-robin":     RoundRobin,
	"least-loaded":    LeastLoaded,
	"best-fit":        BestFit,
	"tenant-affinity": TenantAffinity,
}

// PolicyNames lists the registered placement policies, sorted.
func PolicyNames() []string {
	names := make([]string, 0, len(policyFactories))
	for n := range policyFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PolicyByName resolves a placement policy.
func PolicyByName(name string) (Policy, error) {
	if f, ok := policyFactories[name]; ok {
		return f(), nil
	}
	return nil, fmt.Errorf("cluster: unknown placement policy %q (have %v)", name, PolicyNames())
}
