package cluster_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/sim"
)

// TestPoolFailHealLifecycle pins the failure model's event stream
// deterministically: fail evicts residents and queue in order, a stale
// Complete is a membership-checked no-op, an all-failed pool parks, and
// heal re-admits the parked set.
func TestPoolFailHealLifecycle(t *testing.T) {
	p := cluster.NewPool(twoShapes(), cluster.RoundRobin(), 1)
	var evs []cluster.PoolEvent
	p.SetObserver(func(ev cluster.PoolEvent) { evs = append(evs, ev) })

	e1 := exec(1, "a", 64, 100)
	e2 := exec(2, "b", 64, 100)
	e3 := exec(3, "c", 64, 100)
	p.Submit(e1) // dev 0, resident
	p.Submit(e2) // dev 1, resident
	if _, kind := p.Submit(e3); kind != cluster.EvQueued {
		t.Fatal("e3 not queued")
	}
	qdev := evs[len(evs)-1].Dev // device holding e3's queue slot

	evicted := p.FailDevice(qdev)
	wantEvict := 2 // the resident plus queued e3
	if evicted != wantEvict {
		t.Fatalf("FailDevice evicted %d, want %d", evicted, wantEvict)
	}
	if !p.Failed(qdev) || p.Healthy() != 1 {
		t.Fatalf("after fail: Failed=%v Healthy=%d", p.Failed(qdev), p.Healthy())
	}
	// EvDeviceFailed first, then the evictions in residency order.
	tail := evs[len(evs)-3:]
	if tail[0].Kind != cluster.EvDeviceFailed || tail[0].Dev != qdev {
		t.Fatalf("first post-fail event = %+v, want EvDeviceFailed dev %d", tail[0], qdev)
	}
	if tail[1].Kind != cluster.EvEvicted || tail[2].Kind != cluster.EvEvicted || tail[2].Exec != e3 {
		t.Fatalf("eviction events = %+v %+v, want resident then queued e3", tail[1], tail[2])
	}

	// Completing an evicted request must be a no-op: no event, no
	// promotion, nil return.
	n := len(evs)
	if next := p.Complete(qdev, tail[1].Exec); next != nil || len(evs) != n {
		t.Fatalf("Complete after eviction: next=%v, %d new events", next, len(evs)-n)
	}

	// Failing the survivor leaves nowhere to place: submits park.
	p.FailDevice(1 - qdev)
	e4 := exec(4, "d", 64, 100)
	if di, kind := p.Submit(e4); kind != cluster.EvParked || di != -1 {
		t.Fatalf("submit with no healthy device = (%d, %v), want (-1, EvParked)", di, kind)
	}
	if p.Parked() != 1 || p.Healthy() != 0 {
		t.Fatalf("Parked=%d Healthy=%d, want 1/0", p.Parked(), p.Healthy())
	}

	// Heal re-admits the parked request on the healed device.
	p.HealDevice(qdev)
	if p.Parked() != 0 {
		t.Fatalf("Parked=%d after heal, want 0", p.Parked())
	}
	tail = evs[len(evs)-2:]
	if tail[0].Kind != cluster.EvDeviceHealed || tail[0].Dev != qdev {
		t.Fatalf("heal event = %+v, want EvDeviceHealed dev %d", tail[0], qdev)
	}
	if tail[1].Kind != cluster.EvAdmitted || tail[1].Exec != e4 || tail[1].Dev != qdev {
		t.Fatalf("re-admission event = %+v, want EvAdmitted e4 on dev %d", tail[1], qdev)
	}
}

// placement is the observer-side state machine for the stress test.
type placement int

const (
	plOut placement = iota
	plResident
	plQueued
	plParked
)

// TestPoolStressNoDoublePlacement hammers Submit, Complete, Rebalance,
// FailDevice and HealDevice from many goroutines under the race
// detector while an observer replays the ordered event stream through a
// per-request state machine. Any double placement — the race this
// ordering exists to prevent — shows up as an illegal transition
// (EvAdmitted/EvMigrated for a request that is already resident).
func TestPoolStressNoDoublePlacement(t *testing.T) {
	devs := []*device.Platform{
		device.NVIDIAK20m(), device.AMDR9295X2(),
		device.NVIDIAK20m(), device.AMDR9295X2(),
	}
	p := cluster.NewPool(devs, cluster.LeastLoaded(), 2)
	p.SetMaxQueued(8)

	const (
		nSubmitters = 4
		perSubmit   = 75
		total       = nSubmitters * perSubmit
	)
	type placed struct {
		e   *sim.ClusterExec
		dev int
	}
	var (
		smu        sync.Mutex
		state      = make(map[*sim.ClusterExec]placement)
		done       = make(map[*sim.ClusterExec]bool)
		doneN      int
		violations []string
		runCh      = make(chan placed, 8*total)
		evictCh    = make(chan *sim.ClusterExec, 8*total)
	)
	bad := func(ev cluster.PoolEvent, st placement) {
		violations = append(violations,
			fmt.Sprintf("event %v for exec %d in state %d", ev.Kind, ev.Exec.K.ID, st))
	}
	finish := func(e *sim.ClusterExec) {
		if !done[e] {
			done[e] = true
			doneN++
		}
	}
	p.SetObserver(func(ev cluster.PoolEvent) {
		if ev.Exec == nil {
			return // EvDeviceFailed / EvDeviceHealed
		}
		smu.Lock()
		st := state[ev.Exec]
		switch ev.Kind {
		case cluster.EvAdmitted, cluster.EvMigrated:
			if st == plResident {
				bad(ev, st) // double placement
			}
			state[ev.Exec] = plResident
			smu.Unlock()
			runCh <- placed{ev.Exec, ev.Dev}
			return
		case cluster.EvQueued:
			if st == plResident || st == plQueued {
				bad(ev, st)
			}
			state[ev.Exec] = plQueued
		case cluster.EvParked:
			if st != plOut {
				bad(ev, st)
			}
			state[ev.Exec] = plParked
		case cluster.EvCompleted:
			if st != plResident {
				bad(ev, st)
			}
			state[ev.Exec] = plOut
			finish(ev.Exec)
		case cluster.EvEvicted:
			if st != plResident && st != plQueued {
				bad(ev, st)
			}
			state[ev.Exec] = plOut
			smu.Unlock()
			evictCh <- ev.Exec
			return
		case cluster.EvRejected:
			if st != plOut {
				bad(ev, st)
			}
			finish(ev.Exec) // rejection is terminal: the owner gives up
		}
		smu.Unlock()
	})

	var wg sync.WaitGroup
	stopChaos := make(chan struct{})
	// quit stops the service goroutines without closing the channels: a
	// late observer callback may still be mid-send after SetObserver(nil)
	// returns, so the channels must stay open.
	quit := make(chan struct{})

	// Completers: retire whatever the event stream admits. The recorded
	// device may be stale (evicted after admission) — Complete must
	// absorb that as a no-op and the eviction path resubmits.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case pl := <-runCh:
					p.Complete(pl.dev, pl.e)
				case <-quit:
					return
				}
			}
		}()
	}
	// Resubmitter: the runtime's relaunch analogue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case e := <-evictCh:
				p.Submit(e)
			case <-quit:
				return
			}
		}
	}()
	// Chaos: fail/heal random devices and force migrations, concurrently
	// with placement traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stopChaos:
				return
			default:
			}
			d := rng.Intn(len(devs))
			switch rng.Intn(3) {
			case 0:
				p.FailDevice(d)
			case 1:
				p.HealDevice(d)
			case 2:
				p.Rebalance()
			}
		}
	}()
	// Submitters.
	for w := 0; w < nSubmitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perSubmit; i++ {
				p.Submit(exec(w*perSubmit+i, fmt.Sprintf("t%d", w), 64, 100))
			}
		}(w)
	}

	// Drain: stop the chaos, heal everything, and keep rebalancing until
	// every request has terminated (completed or rejected).
	deadline := time.Now().Add(30 * time.Second)
	for {
		smu.Lock()
		n := doneN
		smu.Unlock()
		if n >= total {
			break
		}
		if time.Now().After(deadline) {
			smu.Lock()
			t.Fatalf("drain stalled at %d/%d done (%d violations)", doneN, total, len(violations))
		}
		select {
		case <-stopChaos:
		default:
			close(stopChaos)
		}
		for d := range devs {
			p.HealDevice(d)
		}
		p.Rebalance()
		time.Sleep(time.Millisecond)
	}
	select {
	case <-stopChaos:
	default:
		close(stopChaos)
	}
	p.SetObserver(nil)
	close(quit)
	wg.Wait()

	smu.Lock()
	defer smu.Unlock()
	for _, v := range violations {
		t.Error(v)
	}
	if doneN != total {
		t.Errorf("doneN = %d, want %d", doneN, total)
	}
	if p.Parked() != 0 {
		t.Errorf("Parked = %d after drain, want 0", p.Parked())
	}
	for d := range devs {
		if n := len(p.ResidentOn(d)); n != 0 {
			t.Errorf("device %d still has %d residents after drain", d, n)
		}
	}
	for _, l := range p.Loads() {
		if l.Queued != 0 || l.PendingWork != 0 {
			t.Errorf("device %d loads after drain: %+v", l.Index, l)
		}
	}
}
