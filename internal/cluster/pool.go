package cluster

import (
	"sync"

	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/sim"
)

// Pool is the live device pool: per-device run queues behind one
// admission controller. The simulation driver (sim.RunCluster) keeps
// its own fluid bookkeeping; Pool is the concurrent-safe variant the
// accelOS runtime uses to route real (interpreter-backed) kernel
// launches across platforms and to plan shares against the right
// device's resident set.
type Pool struct {
	mu   sync.Mutex
	devs []*device.Platform
	pol  Policy
	// maxResident bounds each device's concurrently executing requests;
	// 0 means unbounded (the live runtime blocks callers instead of
	// queueing, so admission happens at placement time).
	maxResident int
	// maxQueued bounds each device's run queue; 0 means unbounded. A
	// Submit that would exceed it is rejected outright — the multi-tenant
	// backpressure signal, so an aggressive tenant's overflow is refused
	// (and counted) instead of growing queues without bound.
	maxQueued int

	resident [][]*sim.ClusterExec
	queued   [][]*sim.ClusterExec
	// work estimates pending cost units per device for load snapshots.
	work []int64

	// failed marks devices removed from placement by FailDevice; parked
	// holds requests that arrived while no healthy device existed,
	// re-admitted in order by the next HealDevice.
	failed []bool
	parked []*sim.ClusterExec

	observer func(PoolEvent)
	// evq and notifying serialize event delivery: every mutation appends
	// its events under mu, and exactly one goroutine at a time drains the
	// queue, so observers see events in the order the pool state actually
	// changed. (Firing from each mutating goroutine after unlock — the
	// previous scheme — let a racing FailDevice's eviction overtake the
	// admission it evicted, double-placing the request downstream.)
	evq       []PoolEvent
	notifying bool

	// inj, when set, is consulted after every placement: a DeviceFail
	// fire kills the device the request just landed on (chaos harness).
	inj *fault.Injector
}

// PoolEventKind classifies a pool membership change.
type PoolEventKind int

// Pool membership events.
const (
	// EvAdmitted: the request became resident on Dev (straight from
	// Submit, promoted from Dev's run queue by Complete, or re-admitted
	// from the parked set by HealDevice).
	EvAdmitted PoolEventKind = iota
	// EvQueued: the request is waiting in Dev's run queue.
	EvQueued
	// EvCompleted: the request retired from Dev.
	EvCompleted
	// EvMigrated: Rebalance moved the queued request to drained Dev and
	// admitted it there.
	EvMigrated
	// EvRejected: Submit refused the request because Dev's run queue was
	// at its MaxQueued bound. The request never joins the pool; the event
	// exists so telemetry can count rejections per tenant.
	EvRejected
	// EvDeviceFailed: FailDevice removed Dev from placement. Followed by
	// one EvEvicted per request that was resident or queued there.
	EvDeviceFailed
	// EvDeviceHealed: HealDevice returned Dev to placement; parked
	// requests re-enter the pool as EvAdmitted/EvQueued events on Dev.
	EvDeviceHealed
	// EvEvicted: the request was thrown off failed Dev. It is no longer
	// in the pool; the owner decides whether to resubmit it (the accelOS
	// runtime relaunches the remaining slice range elsewhere).
	EvEvicted
	// EvParked: Submit found no healthy device (Dev is -1). The request
	// is held in the pool's parked set and re-admitted by HealDevice.
	EvParked
)

// PoolEvent is one membership change: the event source for
// completion-driven re-planning on the live path (the runtime re-runs
// the §3 share plan for Dev's surviving residents whenever one retires,
// mirroring the simulated driver's per-event re-planning).
type PoolEvent struct {
	Kind PoolEventKind
	Dev  int
	Exec *sim.ClusterExec
}

// SetObserver installs a callback invoked (outside the pool lock, in
// pool-mutation order) for every membership change. At most one
// observer; nil removes it.
func (p *Pool) SetObserver(fn func(PoolEvent)) {
	p.mu.Lock()
	p.observer = fn
	p.mu.Unlock()
}

// SetFaultInjector installs (or, with nil, removes) the chaos injector
// consulted at the pool's DeviceFail point.
func (p *Pool) SetFaultInjector(in *fault.Injector) {
	p.mu.Lock()
	p.inj = in
	p.mu.Unlock()
}

// emitLocked appends events to the delivery queue in mutation order.
// The caller must hold mu and must call dispatch after releasing it.
func (p *Pool) emitLocked(evs ...PoolEvent) {
	p.evq = append(p.evq, evs...)
}

// dispatch drains the event queue through the observer. Exactly one
// goroutine drains at a time; a mutator that finds another goroutine
// already draining leaves its events for that drain to deliver, which
// keeps delivery single-threaded and ordered. Observers run outside the
// pool lock and may re-enter the pool.
func (p *Pool) dispatch() {
	p.mu.Lock()
	if p.notifying {
		p.mu.Unlock()
		return
	}
	p.notifying = true
	for len(p.evq) > 0 {
		ev := p.evq[0]
		p.evq = p.evq[1:]
		fn := p.observer
		p.mu.Unlock()
		if fn != nil {
			fn(ev)
		}
		p.mu.Lock()
	}
	p.notifying = false
	p.mu.Unlock()
}

// NewPool builds a pool over the devices with the placement policy.
func NewPool(devs []*device.Platform, pol Policy, maxResident int) *Pool {
	if pol == nil {
		pol = LeastLoaded()
	}
	return &Pool{
		devs:        devs,
		pol:         pol,
		maxResident: maxResident,
		resident:    make([][]*sim.ClusterExec, len(devs)),
		queued:      make([][]*sim.ClusterExec, len(devs)),
		work:        make([]int64, len(devs)),
		failed:      make([]bool, len(devs)),
	}
}

// Devices returns the pool members.
func (p *Pool) Devices() []*device.Platform { return p.devs }

// Bounded reports whether the pool enforces a per-device residency
// limit (and can therefore ever hold queued requests).
func (p *Pool) Bounded() bool { return p.maxResident > 0 }

// SetMaxQueued bounds each device's run queue to n waiting requests;
// 0 (the default) restores unbounded queueing. Only meaningful on a
// bounded pool — an unbounded pool admits everything immediately and
// never queues.
func (p *Pool) SetMaxQueued(n int) {
	p.mu.Lock()
	p.maxQueued = n
	p.mu.Unlock()
}

// Loads snapshots the pool for placement decisions.
func (p *Pool) Loads() []sim.DeviceLoad {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.loadsLocked()
}

func (p *Pool) loadsLocked() []sim.DeviceLoad {
	out := make([]sim.DeviceLoad, len(p.devs))
	for i, d := range p.devs {
		out[i] = sim.DeviceLoad{
			Dev:         d,
			Index:       i,
			Resident:    len(p.resident[i]),
			Queued:      len(p.queued[i]),
			PendingWork: p.work[i],
		}
	}
	return out
}

// healthyLoadsLocked is loadsLocked restricted to devices still in
// placement. Each load keeps its true Index so a policy's pick maps
// back to the real device.
func (p *Pool) healthyLoadsLocked() []sim.DeviceLoad {
	out := make([]sim.DeviceLoad, 0, len(p.devs))
	for i, d := range p.devs {
		if p.failed[i] {
			continue
		}
		out = append(out, sim.DeviceLoad{
			Dev:         d,
			Index:       i,
			Resident:    len(p.resident[i]),
			Queued:      len(p.queued[i]),
			PendingWork: p.work[i],
		})
	}
	return out
}

// Submit places a request on a healthy device. It returns the device
// index the policy picked and what happened there: EvAdmitted (resident
// now, launch it), EvQueued (waiting in that device's run queue until
// Complete frees a slot or Rebalance migrates it), EvRejected (the
// queue was at its SetMaxQueued bound; the request is NOT in the pool
// and must not be launched or Completed), or EvParked (no healthy
// device exists; devIdx is -1 and the request waits in the parked set
// until HealDevice re-admits it).
func (p *Pool) Submit(e *sim.ClusterExec) (devIdx int, kind PoolEventKind) {
	p.mu.Lock()
	loads := p.healthyLoadsLocked()
	if len(loads) == 0 {
		p.parked = append(p.parked, e)
		p.emitLocked(PoolEvent{Kind: EvParked, Dev: -1, Exec: e})
		p.mu.Unlock()
		p.dispatch()
		return -1, EvParked
	}
	di := p.pol.Pick(e, loads)
	if di < 0 || di >= len(loads) {
		di = 0
	}
	di = loads[di].Index
	if p.maxResident <= 0 || len(p.resident[di]) < p.maxResident {
		p.resident[di] = append(p.resident[di], e)
		kind = EvAdmitted
	} else if p.maxQueued > 0 && len(p.queued[di]) >= p.maxQueued {
		// Rejected requests contribute no work: load snapshots must not
		// count demand the pool refused to carry.
		p.emitLocked(PoolEvent{Kind: EvRejected, Dev: di, Exec: e})
		p.mu.Unlock()
		p.dispatch()
		return di, EvRejected
	} else {
		p.queued[di] = append(p.queued[di], e)
		kind = EvQueued
	}
	p.work[di] += e.K.TotalWork() * e.K.NumIters()
	p.emitLocked(PoolEvent{Kind: kind, Dev: di, Exec: e})
	inj := p.inj
	p.mu.Unlock()
	p.dispatch()
	if inj.Should(fault.DeviceFail) {
		p.FailDevice(di)
	}
	return di, kind
}

// FailDevice removes a device from placement and evicts everything on
// it: an EvDeviceFailed event, then one EvEvicted per request that was
// resident or queued there (in residency order). Evicted requests leave
// the pool entirely — the owner resubmits the ones it still wants run.
// It returns how many requests were evicted; failing an already-failed
// or out-of-range device is a no-op.
func (p *Pool) FailDevice(devIdx int) int {
	if devIdx < 0 || devIdx >= len(p.devs) {
		return 0
	}
	p.mu.Lock()
	if p.failed[devIdx] {
		p.mu.Unlock()
		return 0
	}
	p.failed[devIdx] = true
	orphans := make([]*sim.ClusterExec, 0, len(p.resident[devIdx])+len(p.queued[devIdx]))
	orphans = append(orphans, p.resident[devIdx]...)
	orphans = append(orphans, p.queued[devIdx]...)
	p.resident[devIdx] = nil
	p.queued[devIdx] = nil
	p.work[devIdx] = 0
	p.emitLocked(PoolEvent{Kind: EvDeviceFailed, Dev: devIdx})
	for _, e := range orphans {
		p.emitLocked(PoolEvent{Kind: EvEvicted, Dev: devIdx, Exec: e})
	}
	p.mu.Unlock()
	p.dispatch()
	return len(orphans)
}

// HealDevice returns a failed device to placement and re-admits the
// parked set through it: each parked request becomes resident on the
// healed device (EvAdmitted) while slots last, then queues there
// (EvQueued — heal re-admission bypasses MaxQueued, since the requests
// were already accepted by Submit). Healing a healthy or out-of-range
// device is a no-op.
func (p *Pool) HealDevice(devIdx int) {
	if devIdx < 0 || devIdx >= len(p.devs) {
		return
	}
	p.mu.Lock()
	if !p.failed[devIdx] {
		p.mu.Unlock()
		return
	}
	p.failed[devIdx] = false
	parked := p.parked
	p.parked = nil
	p.emitLocked(PoolEvent{Kind: EvDeviceHealed, Dev: devIdx})
	for _, e := range parked {
		kind := EvAdmitted
		if p.maxResident > 0 && len(p.resident[devIdx]) >= p.maxResident {
			kind = EvQueued
			p.queued[devIdx] = append(p.queued[devIdx], e)
		} else {
			p.resident[devIdx] = append(p.resident[devIdx], e)
		}
		p.work[devIdx] += e.K.TotalWork() * e.K.NumIters()
		p.emitLocked(PoolEvent{Kind: kind, Dev: devIdx, Exec: e})
	}
	p.mu.Unlock()
	p.dispatch()
}

// Failed reports whether the device is currently out of placement.
func (p *Pool) Failed(devIdx int) bool {
	if devIdx < 0 || devIdx >= len(p.devs) {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failed[devIdx]
}

// Healthy counts devices currently in placement.
func (p *Pool) Healthy() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, f := range p.failed {
		if !f {
			n++
		}
	}
	return n
}

// Parked counts requests waiting for any device to heal.
func (p *Pool) Parked() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.parked)
}

// Complete retires a request from a device and admits the head of its
// run queue, if any. The newly admitted request (nil if none) is
// returned so the caller can launch it. Completing a request that is no
// longer resident — it was evicted by FailDevice after the caller
// launched it — is a no-op: the eviction already released its slot and
// dropped its work.
func (p *Pool) Complete(devIdx int, e *sim.ClusterExec) *sim.ClusterExec {
	if devIdx < 0 || devIdx >= len(p.devs) {
		return nil
	}
	p.mu.Lock()
	found := false
	rs := p.resident[devIdx]
	for i, r := range rs {
		if r == e {
			p.resident[devIdx] = append(rs[:i], rs[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		p.mu.Unlock()
		return nil
	}
	if w := e.K.TotalWork() * e.K.NumIters(); p.work[devIdx] >= w {
		p.work[devIdx] -= w
	} else {
		p.work[devIdx] = 0
	}
	p.emitLocked(PoolEvent{Kind: EvCompleted, Dev: devIdx, Exec: e})
	var next *sim.ClusterExec
	if len(p.queued[devIdx]) > 0 && (p.maxResident <= 0 || len(p.resident[devIdx]) < p.maxResident) {
		next = p.queued[devIdx][0]
		p.queued[devIdx] = p.queued[devIdx][1:]
		p.resident[devIdx] = append(p.resident[devIdx], next)
		p.emitLocked(PoolEvent{Kind: EvAdmitted, Dev: devIdx, Exec: next})
	}
	p.mu.Unlock()
	p.dispatch()
	return next
}

// ResidentOn returns the requests currently resident on a device (the
// set the §3 planner divides the device among).
func (p *Pool) ResidentOn(devIdx int) []*sim.ClusterExec {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*sim.ClusterExec, len(p.resident[devIdx]))
	copy(out, p.resident[devIdx])
	return out
}

// Rebalance migrates queued requests to drained devices (idle, empty
// queue, healthy) and admits them there. It returns the migrations
// performed as (request, new device) pairs so the caller can launch
// them. Failed devices neither receive nor donate work.
func (p *Pool) Rebalance() map[*sim.ClusterExec]int {
	p.mu.Lock()
	moves := make(map[*sim.ClusterExec]int)
	for di := range p.devs {
		if p.failed[di] || len(p.resident[di]) > 0 || len(p.queued[di]) > 0 {
			continue
		}
		// Steal from the most backlogged queue.
		donor := -1
		for j := range p.devs {
			if j == di || p.failed[j] || len(p.queued[j]) == 0 {
				continue
			}
			if donor < 0 || len(p.queued[j]) > len(p.queued[donor]) {
				donor = j
			}
		}
		if donor < 0 {
			continue
		}
		e := p.queued[donor][0]
		p.queued[donor] = p.queued[donor][1:]
		w := e.K.TotalWork() * e.K.NumIters()
		if p.work[donor] >= w {
			p.work[donor] -= w
		}
		p.work[di] += w
		p.resident[di] = append(p.resident[di], e)
		moves[e] = di
		p.emitLocked(PoolEvent{Kind: EvMigrated, Dev: di, Exec: e})
	}
	p.mu.Unlock()
	p.dispatch()
	return moves
}
