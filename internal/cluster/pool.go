package cluster

import (
	"sync"

	"repro/internal/device"
	"repro/internal/sim"
)

// Pool is the live device pool: per-device run queues behind one
// admission controller. The simulation driver (sim.RunCluster) keeps
// its own fluid bookkeeping; Pool is the concurrent-safe variant the
// accelOS runtime uses to route real (interpreter-backed) kernel
// launches across platforms and to plan shares against the right
// device's resident set.
type Pool struct {
	mu   sync.Mutex
	devs []*device.Platform
	pol  Policy
	// maxResident bounds each device's concurrently executing requests;
	// 0 means unbounded (the live runtime blocks callers instead of
	// queueing, so admission happens at placement time).
	maxResident int
	// maxQueued bounds each device's run queue; 0 means unbounded. A
	// Submit that would exceed it is rejected outright — the multi-tenant
	// backpressure signal, so an aggressive tenant's overflow is refused
	// (and counted) instead of growing queues without bound.
	maxQueued int

	resident [][]*sim.ClusterExec
	queued   [][]*sim.ClusterExec
	// work estimates pending cost units per device for load snapshots.
	work []int64

	observer func(PoolEvent)
}

// PoolEventKind classifies a pool membership change.
type PoolEventKind int

// Pool membership events.
const (
	// EvAdmitted: the request became resident on Dev (straight from
	// Submit, or promoted from Dev's run queue by Complete).
	EvAdmitted PoolEventKind = iota
	// EvQueued: the request is waiting in Dev's run queue.
	EvQueued
	// EvCompleted: the request retired from Dev.
	EvCompleted
	// EvMigrated: Rebalance moved the queued request to drained Dev and
	// admitted it there.
	EvMigrated
	// EvRejected: Submit refused the request because Dev's run queue was
	// at its MaxQueued bound. The request never joins the pool; the event
	// exists so telemetry can count rejections per tenant.
	EvRejected
)

// PoolEvent is one membership change: the event source for
// completion-driven re-planning on the live path (the runtime re-runs
// the §3 share plan for Dev's surviving residents whenever one retires,
// mirroring the simulated driver's per-event re-planning).
type PoolEvent struct {
	Kind PoolEventKind
	Dev  int
	Exec *sim.ClusterExec
}

// SetObserver installs a callback invoked (outside the pool lock, in the
// mutating goroutine) for every membership change. At most one observer;
// nil removes it.
func (p *Pool) SetObserver(fn func(PoolEvent)) {
	p.mu.Lock()
	p.observer = fn
	p.mu.Unlock()
}

// notify fires the observer for each event after the lock is released.
func (p *Pool) notify(evs []PoolEvent) {
	p.mu.Lock()
	fn := p.observer
	p.mu.Unlock()
	if fn == nil {
		return
	}
	for _, ev := range evs {
		fn(ev)
	}
}

// NewPool builds a pool over the devices with the placement policy.
func NewPool(devs []*device.Platform, pol Policy, maxResident int) *Pool {
	if pol == nil {
		pol = LeastLoaded()
	}
	return &Pool{
		devs:        devs,
		pol:         pol,
		maxResident: maxResident,
		resident:    make([][]*sim.ClusterExec, len(devs)),
		queued:      make([][]*sim.ClusterExec, len(devs)),
		work:        make([]int64, len(devs)),
	}
}

// Devices returns the pool members.
func (p *Pool) Devices() []*device.Platform { return p.devs }

// Bounded reports whether the pool enforces a per-device residency
// limit (and can therefore ever hold queued requests).
func (p *Pool) Bounded() bool { return p.maxResident > 0 }

// SetMaxQueued bounds each device's run queue to n waiting requests;
// 0 (the default) restores unbounded queueing. Only meaningful on a
// bounded pool — an unbounded pool admits everything immediately and
// never queues.
func (p *Pool) SetMaxQueued(n int) {
	p.mu.Lock()
	p.maxQueued = n
	p.mu.Unlock()
}

// Loads snapshots the pool for placement decisions.
func (p *Pool) Loads() []sim.DeviceLoad {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.loadsLocked()
}

func (p *Pool) loadsLocked() []sim.DeviceLoad {
	out := make([]sim.DeviceLoad, len(p.devs))
	for i, d := range p.devs {
		out[i] = sim.DeviceLoad{
			Dev:         d,
			Index:       i,
			Resident:    len(p.resident[i]),
			Queued:      len(p.queued[i]),
			PendingWork: p.work[i],
		}
	}
	return out
}

// Submit places a request on a device. It returns the device index the
// policy picked and what happened there: EvAdmitted (resident now,
// launch it), EvQueued (waiting in that device's run queue until
// Complete frees a slot or Rebalance migrates it), or EvRejected (the
// queue was at its SetMaxQueued bound; the request is NOT in the pool
// and must not be launched or Completed).
func (p *Pool) Submit(e *sim.ClusterExec) (devIdx int, kind PoolEventKind) {
	p.mu.Lock()
	di := p.pol.Pick(e, p.loadsLocked())
	if di < 0 || di >= len(p.devs) {
		di = 0
	}
	if p.maxResident <= 0 || len(p.resident[di]) < p.maxResident {
		p.resident[di] = append(p.resident[di], e)
		kind = EvAdmitted
	} else if p.maxQueued > 0 && len(p.queued[di]) >= p.maxQueued {
		// Rejected requests contribute no work: load snapshots must not
		// count demand the pool refused to carry.
		p.mu.Unlock()
		p.notify([]PoolEvent{{Kind: EvRejected, Dev: di, Exec: e}})
		return di, EvRejected
	} else {
		p.queued[di] = append(p.queued[di], e)
		kind = EvQueued
	}
	p.work[di] += e.K.TotalWork() * e.K.NumIters()
	p.mu.Unlock()
	p.notify([]PoolEvent{{Kind: kind, Dev: di, Exec: e}})
	return di, kind
}

// Complete retires a request from a device and admits the head of its
// run queue, if any. The newly admitted request (nil if none) is
// returned so the caller can launch it.
func (p *Pool) Complete(devIdx int, e *sim.ClusterExec) *sim.ClusterExec {
	p.mu.Lock()
	rs := p.resident[devIdx]
	for i, r := range rs {
		if r == e {
			p.resident[devIdx] = append(rs[:i], rs[i+1:]...)
			break
		}
	}
	if w := e.K.TotalWork() * e.K.NumIters(); p.work[devIdx] >= w {
		p.work[devIdx] -= w
	} else {
		p.work[devIdx] = 0
	}
	evs := []PoolEvent{{Kind: EvCompleted, Dev: devIdx, Exec: e}}
	var next *sim.ClusterExec
	if len(p.queued[devIdx]) > 0 && (p.maxResident <= 0 || len(p.resident[devIdx]) < p.maxResident) {
		next = p.queued[devIdx][0]
		p.queued[devIdx] = p.queued[devIdx][1:]
		p.resident[devIdx] = append(p.resident[devIdx], next)
		evs = append(evs, PoolEvent{Kind: EvAdmitted, Dev: devIdx, Exec: next})
	}
	p.mu.Unlock()
	p.notify(evs)
	return next
}

// ResidentOn returns the requests currently resident on a device (the
// set the §3 planner divides the device among).
func (p *Pool) ResidentOn(devIdx int) []*sim.ClusterExec {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*sim.ClusterExec, len(p.resident[devIdx]))
	copy(out, p.resident[devIdx])
	return out
}

// Rebalance migrates queued requests to drained devices (idle, empty
// queue) and admits them there. It returns the migrations performed as
// (request, new device) pairs so the caller can launch them.
func (p *Pool) Rebalance() map[*sim.ClusterExec]int {
	p.mu.Lock()
	moves := make(map[*sim.ClusterExec]int)
	for di := range p.devs {
		if len(p.resident[di]) > 0 || len(p.queued[di]) > 0 {
			continue
		}
		// Steal from the most backlogged queue.
		donor := -1
		for j := range p.devs {
			if j == di || len(p.queued[j]) == 0 {
				continue
			}
			if donor < 0 || len(p.queued[j]) > len(p.queued[donor]) {
				donor = j
			}
		}
		if donor < 0 {
			continue
		}
		e := p.queued[donor][0]
		p.queued[donor] = p.queued[donor][1:]
		w := e.K.TotalWork() * e.K.NumIters()
		if p.work[donor] >= w {
			p.work[donor] -= w
		}
		p.work[di] += w
		p.resident[di] = append(p.resident[di], e)
		moves[e] = di
	}
	p.mu.Unlock()
	evs := make([]PoolEvent, 0, len(moves))
	for e, di := range moves {
		evs = append(evs, PoolEvent{Kind: EvMigrated, Dev: di, Exec: e})
	}
	p.notify(evs)
	return moves
}
