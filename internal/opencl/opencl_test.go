package opencl

import (
	"encoding/binary"
	"math"
	"testing"
)

const vadd = `
kernel void vadd(global const float* a, global const float* b, global float* c, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}
`

func TestPlatformsAndContext(t *testing.T) {
	ps := GetPlatforms()
	if len(ps) != 2 {
		t.Fatalf("%d platforms, want 2", len(ps))
	}
	ctx := ps[0].CreateContext()
	if ctx.GlobalMemBytes() != ps[0].Dev.GlobalMemMB*1024*1024 {
		t.Error("context capacity mismatch")
	}
}

func TestBufferLifecycle(t *testing.T) {
	ctx := GetPlatforms()[0].CreateContext()
	b, err := ctx.CreateBuffer(1024)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.AllocatedBytes() != 1024 {
		t.Errorf("allocated = %d", ctx.AllocatedBytes())
	}
	b.Release()
	if ctx.AllocatedBytes() != 0 {
		t.Errorf("allocated after release = %d", ctx.AllocatedBytes())
	}
	b.Release() // double release is a no-op
	if ctx.AllocatedBytes() != 0 {
		t.Error("double release corrupted accounting")
	}
	if _, err := ctx.CreateBuffer(-1); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := ctx.CreateBuffer(ctx.GlobalMemBytes() + 1); err == nil {
		t.Error("oversized allocation accepted")
	}
}

func TestOutOfMemory(t *testing.T) {
	ctx := GetPlatforms()[0].CreateContext()
	half := ctx.GlobalMemBytes()/2 + 1
	a, err := ctx.CreateBuffer(half)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateBuffer(half); err != ErrOutOfMemory {
		t.Errorf("second half-device allocation: %v, want ErrOutOfMemory", err)
	}
	a.Release()
	if _, err := ctx.CreateBuffer(half); err != nil {
		t.Errorf("allocation after release failed: %v", err)
	}
}

func TestProgramBuildErrors(t *testing.T) {
	ctx := GetPlatforms()[0].CreateContext()
	p := ctx.CreateProgramWithSource("kernel void broken( { }")
	if err := p.Build(); err == nil {
		t.Error("syntax error not reported")
	}
	p2 := ctx.CreateProgramWithSource(vadd)
	if err := p2.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.CreateKernel("missing"); err == nil {
		t.Error("unknown kernel accepted")
	}
	unbuilt := ctx.CreateProgramWithSource(vadd)
	if _, err := unbuilt.CreateKernel("vadd"); err == nil {
		t.Error("kernel from unbuilt program accepted")
	}
}

func TestEndToEndLaunch(t *testing.T) {
	ctx := GetPlatforms()[0].CreateContext()
	q := ctx.CreateCommandQueue()
	p := ctx.CreateProgramWithSource(vadd)
	if err := p.Build(); err != nil {
		t.Fatal(err)
	}
	k, err := p.CreateKernel("vadd")
	if err != nil {
		t.Fatal(err)
	}
	if k.NumArgs() != 4 {
		t.Fatalf("NumArgs = %d", k.NumArgs())
	}

	const n = 256
	mk := func() *Buffer {
		b, err := ctx.CreateBuffer(n * 4)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, bb, c := mk(), mk(), mk()
	host := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(host[i*4:], math.Float32bits(float32(i)))
	}
	if err := q.EnqueueWriteBuffer(a, 0, host); err != nil {
		t.Fatal(err)
	}
	if err := q.EnqueueWriteBuffer(bb, 0, host); err != nil {
		t.Fatal(err)
	}
	_ = k.SetArgBuffer(0, a)
	_ = k.SetArgBuffer(1, bb)
	_ = k.SetArgBuffer(2, c)
	_ = k.SetArgInt32(3, n)
	nd := NDRange{Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1}}
	if err := q.EnqueueNDRangeKernel(k, nd); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, n*4)
	if err := q.EnqueueReadBuffer(c, 0, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(out[i*4:]))
		if got != float32(2*i) {
			t.Fatalf("c[%d] = %v, want %v", i, got, float32(2*i))
		}
	}
}

func TestLaunchWithUnsetArg(t *testing.T) {
	ctx := GetPlatforms()[0].CreateContext()
	q := ctx.CreateCommandQueue()
	p := ctx.CreateProgramWithSource(vadd)
	_ = p.Build()
	k, _ := p.CreateKernel("vadd")
	nd := NDRange{Dims: 1, Global: [3]int64{64, 1, 1}, Local: [3]int64{64, 1, 1}}
	if err := q.EnqueueNDRangeKernel(k, nd); err == nil {
		t.Error("launch with unset arguments accepted")
	}
}

func TestBufferBounds(t *testing.T) {
	ctx := GetPlatforms()[0].CreateContext()
	q := ctx.CreateCommandQueue()
	b, _ := ctx.CreateBuffer(16)
	if err := q.EnqueueWriteBuffer(b, 8, make([]byte, 16)); err == nil {
		t.Error("out-of-bounds write accepted")
	}
	if err := q.EnqueueReadBuffer(b, -1, make([]byte, 4)); err == nil {
		t.Error("negative-offset read accepted")
	}
}

func TestSetArgIndexValidation(t *testing.T) {
	ctx := GetPlatforms()[0].CreateContext()
	p := ctx.CreateProgramWithSource(vadd)
	_ = p.Build()
	k, _ := p.CreateKernel("vadd")
	if err := k.SetArgInt32(9, 1); err == nil {
		t.Error("argument index out of range accepted")
	}
	if err := k.SetArgInt64(-1, 1); err == nil {
		t.Error("negative argument index accepted")
	}
	if err := k.SetArgFloat32(4, 1); err == nil {
		t.Error("argument index == NumArgs accepted")
	}
}
