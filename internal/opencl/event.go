package opencl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file is the event half of the asynchronous host API: every
// Enqueue* call returns an *Event immediately and the command completes
// in the background. Events carry a status, an error, completion
// callbacks and — while incomplete — their recorded wait-list edges, so
// the dispatcher can reject dependency cycles at enqueue time instead of
// letting Finish deadlock on them.

// EventStatus is the lifecycle state of a command (mirrors the OpenCL
// execution-status model, with an explicit failure state).
type EventStatus int32

const (
	// EventQueued: the command is in its queue with unsatisfied wait-list
	// dependencies.
	EventQueued EventStatus = iota
	// EventSubmitted: every dependency completed; the command has been
	// released to the runtime.
	EventSubmitted
	// EventRunning: the command body is executing.
	EventRunning
	// EventComplete: the command finished successfully.
	EventComplete
	// EventFailed: the command (or one of its dependencies) failed; Err
	// carries the cause.
	EventFailed
)

func (s EventStatus) String() string {
	switch s {
	case EventQueued:
		return "queued"
	case EventSubmitted:
		return "submitted"
	case EventRunning:
		return "running"
	case EventComplete:
		return "complete"
	case EventFailed:
		return "failed"
	}
	return "?"
}

// Terminal reports whether the status is final.
func (s EventStatus) Terminal() bool { return s == EventComplete || s == EventFailed }

// ErrCyclicWaitList marks a dependency cycle: no completion order
// exists, so waiting on it would block forever. Command events always
// depend on strictly older events, so cycles can only be closed by
// CompleteWhen — which fails the closing event with this error — and an
// Enqueue* whose wait list references a cycle-failed event is rejected
// with it at enqueue time.
var ErrCyclicWaitList = fmt.Errorf("opencl: wait list contains a dependency cycle")

// Event is one asynchronously completing command (or a user event). It
// is created by an Enqueue* call, NewUserEvent, or a runtime submission,
// and completes exactly once.
type Event struct {
	mu     sync.Mutex
	status EventStatus
	err    error
	done   chan struct{}
	cbs    []func(*Event)
	deps   []*Event // recorded wait-list edges; cleared on completion
	user   bool

	// times stamps each status transition (indexed by EventStatus;
	// terminal statuses share the EventComplete slot). The
	// clGetEventProfilingInfo analogue — see ProfilingInfo.
	times [4]time.Time
}

// newEvent returns a queued event with the given dependency edges
// recorded for cycle detection.
func newEvent(deps []*Event) *Event {
	e := &Event{done: make(chan struct{}), deps: deps}
	e.times[EventQueued] = time.Now()
	return e
}

// NewUserEvent returns an event completed by host code rather than by a
// command (clCreateUserEvent): pass it in wait lists to gate commands on
// host-side conditions, then call Complete or Fail exactly once.
func NewUserEvent() *Event {
	e := newEvent(nil)
	e.user = true
	return e
}

// NewControlledEvent returns an event that a runtime layer (e.g. the
// accelOS daemon) completes itself, with the wait list recorded for
// cycle detection. It is the producer-side constructor of the
// interposition boundary; applications use queue Enqueue* calls instead.
func NewControlledEvent(waits ...*Event) *Event {
	return newEvent(compactWaits(waits))
}

// compactWaits drops nil entries (callers may pass optional events).
func compactWaits(waits []*Event) []*Event {
	out := make([]*Event, 0, len(waits))
	for _, w := range waits {
		if w != nil {
			out = append(out, w)
		}
	}
	return out
}

// Status returns the event's current lifecycle state.
func (e *Event) Status() EventStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.status
}

// Err returns the failure cause, or nil while incomplete or on success.
func (e *Event) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Wait blocks until the event completes and returns its error.
func (e *Event) Wait() error {
	<-e.done
	return e.Err()
}

// WaitContext blocks until the event completes (returning its error,
// like Wait) or the context is done (returning the context's error).
// Wait has no escape hatch: if a runtime layer drops an event on an
// internal error path without completing it, every waiter blocks
// forever. Layers that own such paths — the service client bounds all
// blocking waits by its connection lifetime — wait through this
// instead; Wait stays the zero-dependency wrapper for callers whose
// events are guaranteed to complete.
func (e *Event) WaitContext(ctx context.Context) error {
	select {
	case <-e.done:
		return e.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WaitAll waits for every event and returns the first failure.
func WaitAll(events ...*Event) error {
	var first error
	for _, ev := range events {
		if ev == nil {
			continue
		}
		if err := ev.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// OnComplete registers a completion callback. It fires exactly once,
// after the event reaches a terminal status — immediately (on the
// caller's goroutine) if it already has. Callbacks observe the final
// status and error through the event itself.
func (e *Event) OnComplete(fn func(*Event)) {
	e.mu.Lock()
	if e.status.Terminal() {
		e.mu.Unlock()
		fn(e)
		return
	}
	e.cbs = append(e.cbs, fn)
	e.mu.Unlock()
}

// transition advances an incomplete event's status (Queued → Submitted →
// Running), stamping the transition time. Terminal events ignore it: a
// dependency failure may have finished the event while its command was
// being released.
func (e *Event) transition(s EventStatus) {
	e.mu.Lock()
	if !e.status.Terminal() && s > e.status && s < EventComplete {
		e.status = s
		e.times[s] = time.Now()
	}
	e.mu.Unlock()
}

// EventProfile carries the wall-clock timestamps of an event's status
// transitions — the clGetEventProfilingInfo analogue
// (CL_PROFILING_COMMAND_QUEUED / SUBMIT / START / END). A zero
// timestamp means the event skipped that state (user events complete
// without ever being submitted; failed dependencies finish commands
// that never ran).
type EventProfile struct {
	Queued    time.Time // enqueue time
	Submitted time.Time // wait list satisfied, released to the runtime
	Running   time.Time // command body started executing
	Complete  time.Time // terminal (success or failure)
}

func span(from, to time.Time) time.Duration {
	if from.IsZero() || to.IsZero() {
		return 0
	}
	return to.Sub(from)
}

// QueueDelay is the time spent waiting on the wait list.
func (p EventProfile) QueueDelay() time.Duration { return span(p.Queued, p.Submitted) }

// LaunchDelay is the gap between release and execution start.
func (p EventProfile) LaunchDelay() time.Duration { return span(p.Submitted, p.Running) }

// Duration is the command body's execution time.
func (p EventProfile) Duration() time.Duration { return span(p.Running, p.Complete) }

// Total is enqueue-to-terminal wall time.
func (p EventProfile) Total() time.Duration { return span(p.Queued, p.Complete) }

// ErrProfilingNotAvailable is returned by ProfilingInfo while the event
// has not reached a terminal status — the CL_PROFILING_INFO_NOT_AVAILABLE
// analogue. An in-flight event has not accumulated its full transition
// record, and handing out a partial profile made every consumer treat
// zero stamps as zero durations.
var ErrProfilingNotAvailable = errors.New("opencl: profiling info not available until the event completes")

// ProfilingInfo returns the event's status-transition timestamps.
// Pipelines tune overlap from these measured spans instead of host-side
// wall-clock deltas: summing Duration over a chain's events against the
// chain's Total shows exactly how much transfer and kernel time the
// wait-list edges managed to overlap.
//
// The contract mirrors clGetEventProfilingInfo: querying before the
// event completes returns ErrProfilingNotAvailable and a zero profile.
// After completion every transition the event went through is stamped;
// states it legitimately skipped (a user event is never submitted or
// run, a command whose dependency failed never ran) keep zero stamps,
// and the EventProfile span helpers report zero durations across them.
func (e *Event) ProfilingInfo() (EventProfile, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.status.Terminal() {
		return EventProfile{}, ErrProfilingNotAvailable
	}
	return EventProfile{
		Queued:    e.times[EventQueued],
		Submitted: e.times[EventSubmitted],
		Running:   e.times[EventRunning],
		Complete:  e.times[EventComplete],
	}, nil
}

// MarkSubmitted records that the command left its queue for the runtime.
// Producer-side API (queues and runtime layers); terminal events ignore it.
func (e *Event) MarkSubmitted() { e.transition(EventSubmitted) }

// MarkRunning records that the command body started executing.
// Producer-side API; terminal events ignore it.
func (e *Event) MarkRunning() { e.transition(EventRunning) }

// finish completes the event exactly once: later calls are no-ops, so a
// dependency-failure propagation and a command body racing to finish the
// same event resolve deterministically to whichever lands first.
func (e *Event) finish(err error) {
	e.mu.Lock()
	if e.status.Terminal() {
		e.mu.Unlock()
		return
	}
	if err != nil {
		e.status, e.err = EventFailed, err
	} else {
		e.status = EventComplete
	}
	e.times[EventComplete] = time.Now()
	cbs := e.cbs
	e.cbs = nil
	e.deps = nil // completed events cannot take part in cycles
	e.mu.Unlock()
	close(e.done)
	for _, fn := range cbs {
		fn(e)
	}
}

// Complete marks the event successful. Producer-side API: valid on user
// and controlled events (queue-owned events are completed by their
// command). No-op if already terminal.
func (e *Event) Complete() { e.finish(nil) }

// Fail marks the event failed with the given cause. Producer-side API;
// no-op if already terminal.
func (e *Event) Fail(err error) {
	if err == nil {
		err = fmt.Errorf("opencl: event failed")
	}
	e.finish(err)
}

// CompleteWhen chains this (user or controlled) event to a wait list: it
// completes when every listed event completes, or fails with the first
// failure. CompleteWhen is the only way dependency edges are added after
// an event's creation, so it is where cycles are caught: a chain that
// would make the event (transitively) wait on itself immediately fails
// it with ErrCyclicWaitList instead of recording a permanently
// uncompletable edge — dependents then fail rather than hang, and the
// dependency graph stays acyclic at all times.
func (e *Event) CompleteWhen(waits ...*Event) {
	ws := compactWaits(waits)
	// chainMu makes the cycle scan and the edge append atomic across
	// events: without it, two concurrent CompleteWhen calls could each
	// miss the other's half of a cycle and record it undetected.
	chainMu.Lock()
	if reaches(ws, e) {
		chainMu.Unlock()
		e.finish(ErrCyclicWaitList)
		return
	}
	e.mu.Lock()
	if !e.status.Terminal() {
		e.deps = append(e.deps, ws...)
	}
	e.mu.Unlock()
	chainMu.Unlock()
	WhenAll(ws, func(err error) { e.finish(err) })
}

// chainMu serializes CompleteWhen edge additions — the one way
// dependency edges appear after an event's creation. Command enqueues
// never contend for it: a freshly created event cannot close a cycle.
var chainMu sync.Mutex

// reaches reports whether target is reachable from any of the events
// over recorded dependency edges (incomplete events only; completed
// events drop their edges).
func reaches(from []*Event, target *Event) bool {
	seen := make(map[*Event]bool)
	var visit func(ev *Event) bool
	visit = func(ev *Event) bool {
		if ev == target {
			return true
		}
		if seen[ev] {
			return false
		}
		seen[ev] = true
		ev.mu.Lock()
		deps := append([]*Event(nil), ev.deps...)
		ev.mu.Unlock()
		for _, d := range deps {
			if visit(d) {
				return true
			}
		}
		return false
	}
	for _, w := range from {
		if w != nil && visit(w) {
			return true
		}
	}
	return false
}

// WhenAll invokes fn exactly once, after every listed event is terminal,
// with the first failure among them (nil if all succeeded). With an
// empty list it fires immediately on the caller's goroutine.
func WhenAll(waits []*Event, fn func(error)) {
	n := 0
	for _, w := range waits {
		if w != nil {
			n++
		}
	}
	if n == 0 {
		fn(nil)
		return
	}
	var (
		mu        sync.Mutex
		remaining = n
		firstErr  error
	)
	for _, w := range waits {
		if w == nil {
			continue
		}
		w.OnComplete(func(ev *Event) {
			mu.Lock()
			if err := ev.Err(); err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			ready := remaining == 0
			err := firstErr
			mu.Unlock()
			if ready {
				fn(err)
			}
		})
	}
}

// EventGroup tracks a set of in-flight events and blocks until all of
// them reach a terminal status — the machinery behind both
// CommandQueue.Finish and accelos App.Finish. The zero value is ready
// to use.
type EventGroup struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

// Add registers an event with the group; it leaves the group when it
// completes (with either outcome).
func (g *EventGroup) Add(ev *Event) {
	g.mu.Lock()
	if g.cond == nil {
		g.cond = sync.NewCond(&g.mu)
	}
	g.n++
	g.mu.Unlock()
	ev.OnComplete(func(*Event) {
		g.mu.Lock()
		g.n--
		if g.n == 0 {
			g.cond.Broadcast()
		}
		g.mu.Unlock()
	})
}

// Wait blocks until every registered event is terminal.
func (g *EventGroup) Wait() {
	g.mu.Lock()
	for g.n > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// Pending reports how many registered events are not yet terminal.
func (g *EventGroup) Pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// CheckWaitList rejects wait lists that could never complete because of
// a dependency cycle, returning ErrCyclicWaitList. The dependency graph
// is acyclic by construction — command events only ever point at
// strictly older events, and CompleteWhen (the one source of late
// edges) fails a cycle-closing event on the spot — so the check is a
// constant-time scan of the direct wait events for that cycle failure,
// not a closure walk: enqueueing an N-long dependency chain stays O(N)
// total.
func CheckWaitList(waits ...*Event) error {
	for _, w := range waits {
		if w == nil {
			continue
		}
		if err := w.Err(); err != nil && errors.Is(err, ErrCyclicWaitList) {
			return ErrCyclicWaitList
		}
	}
	return nil
}
