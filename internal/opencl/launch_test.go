package opencl

import (
	"encoding/binary"
	"sync"
	"testing"

	"repro/internal/accelpass"
	"repro/internal/clc"
	"repro/internal/ir"
	"repro/internal/rtlib"
)

const markSrc = `
kernel void mark(global int* out, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) out[i] = out[i] + i + 1;
}
`

// buildTransformed compiles and JIT-transforms markSrc, returning the
// original-signature kernel (with bound args) and the transformed
// module, the way the accelOS scheduler hands them to the launch path.
func buildTransformed(t testing.TB, buf *Buffer, n int64) (*Kernel, *ir.Module) {
	t.Helper()
	orig, err := clc.Compile(markSrc, "mark_prog")
	if err != nil {
		t.Fatal(err)
	}
	res, err := accelpass.Transform(ir.CloneModule(orig))
	if err != nil {
		t.Fatal(err)
	}
	p := &Program{Module: orig}
	k, err := p.CreateKernel("mark")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgInt32(1, int32(n)); err != nil {
		t.Fatal(err)
	}
	return k, res.Module
}

// TestLaunchHandleSlicesAndReplans drives a transformed kernel slice by
// slice, changing the plan mid-flight, and checks the result is exactly
// a single pass over every virtual group.
func TestLaunchHandleSlicesAndReplans(t *testing.T) {
	plat := GetPlatforms()[0]
	ctx := plat.CreateContext()
	const groups, local = 16, 64
	const n = groups * local
	buf, err := ctx.CreateBuffer(n * 4)
	if err != nil {
		t.Fatal(err)
	}
	k, trans := buildTransformed(t, buf, n)

	nd := NDRange{Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{local, 1, 1}}
	rtWords := rtlib.BuildRT(1, nd.NumGroups(), nd.Local, 1)
	h, err := NewLaunchHandle(plat, trans, k, nd, rtWords, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.SetSliceRounds(1)

	// First slice: 2 workers x chunk 1 x 1 round = 2 virtual groups.
	done, err := h.Step()
	if err != nil || done {
		t.Fatalf("after slice 1: done=%v err=%v", done, err)
	}
	if consumed, total := h.Progress(); consumed != 2 || total != groups {
		t.Fatalf("progress = %d/%d, want 2/%d", consumed, total, groups)
	}

	// Re-plan mid-flight: the next slice covers 4x2 = 8 groups.
	h.UpdatePlan(4, 2)
	if phys, chunk := h.Plan(); phys != 4 || chunk != 2 {
		t.Fatalf("plan = (%d,%d), want (4,2)", phys, chunk)
	}
	if done, err = h.Step(); err != nil || done {
		t.Fatalf("after slice 2: done=%v err=%v", done, err)
	}
	if consumed, _ := h.Progress(); consumed != 10 {
		t.Fatalf("consumed = %d, want 10", consumed)
	}

	if err := h.Run(); err != nil {
		t.Fatal(err)
	}
	if !h.Done() {
		t.Fatal("handle not done after Run")
	}
	if consumed, total := h.Progress(); consumed != total {
		t.Fatalf("consumed %d of %d after completion", consumed, total)
	}
	// UpdatePlan after completion is a no-op, not a crash.
	h.UpdatePlan(64, 4)

	for i := int64(0); i < n; i++ {
		want := int32(i + 1)
		if got := int32(binary.LittleEndian.Uint32(buf.Bytes[i*4:])); got != want {
			t.Fatalf("out[%d] = %d, want %d (virtual group ran zero or multiple times)", i, got, want)
		}
	}
	// The machine went back to the platform pool on completion.
	if idle := plat.Machines().Idle(); idle != 1 {
		t.Errorf("pool idle machines = %d, want 1", idle)
	}
}

// TestLaunchHandleZeroCopy verifies buffers are bound in place: the
// kernel's writes appear in Buffer.Bytes with no read-back step, and
// host writes between slices are visible to later slices.
func TestLaunchHandleZeroCopy(t *testing.T) {
	plat := GetPlatforms()[0]
	ctx := plat.CreateContext()
	const groups, local = 8, 32
	const n = groups * local
	buf, err := ctx.CreateBuffer(n * 4)
	if err != nil {
		t.Fatal(err)
	}
	k, trans := buildTransformed(t, buf, n)
	nd := NDRange{Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{local, 1, 1}}
	rtWords := rtlib.BuildRT(1, nd.NumGroups(), nd.Local, 1)
	h, err := NewLaunchHandle(plat, trans, k, nd, rtWords, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.SetSliceRounds(1)
	if done, err := h.Step(); done || err != nil {
		t.Fatalf("first slice: done=%v err=%v", done, err)
	}
	// Virtual group 0 already landed in the buffer — no copy-back.
	if got := int32(binary.LittleEndian.Uint32(buf.Bytes[0:])); got != 1 {
		t.Fatalf("out[0] = %d after first slice, want 1 (zero-copy write not visible)", got)
	}
	// Host mutation between slices is seen by the remaining slices
	// (out[i] += i+1 accumulates on top of it).
	last := int64(n - 1)
	binary.LittleEndian.PutUint32(buf.Bytes[last*4:], 100)
	if err := h.Run(); err != nil {
		t.Fatal(err)
	}
	if got := int32(binary.LittleEndian.Uint32(buf.Bytes[last*4:])); got != int32(100+last+1) {
		t.Fatalf("out[last] = %d, want %d (host write between slices lost)", got, 100+last+1)
	}
}

// TestMachinePoolReuse checks the hot path stops constructing machines:
// sequential launches on one platform share a pooled machine.
func TestMachinePoolReuse(t *testing.T) {
	pool := NewMachinePool()
	mod, err := clc.Compile(markSrc, "pool_prog")
	if err != nil {
		t.Fatal(err)
	}
	m1 := pool.Acquire(mod)
	pool.Release(m1)
	if idle := pool.Idle(); idle != 1 {
		t.Fatalf("idle = %d, want 1", idle)
	}
	m2 := pool.Acquire(mod)
	if m2 != m1 {
		t.Error("pool did not reuse the released machine")
	}
	if idle := pool.Idle(); idle != 0 {
		t.Fatalf("idle = %d after acquire, want 0", idle)
	}
	// Release resets the region registry so bound buffers are dropped.
	r := m2.BindRegion(make([]byte, 64), ir.Global)
	if r.ID <= 0 {
		t.Fatal("bound region got reserved ID")
	}
	pool.Release(m2)
	m3 := pool.Acquire(mod)
	r2 := m3.BindRegion(make([]byte, 64), ir.Global)
	if r2.ID != 1 {
		t.Errorf("region ID after pooled reset = %d, want 1", r2.ID)
	}
}

// TestConcurrentEnqueueSharedBuffer is the opencl-level half of the
// copy-back race regression: two queues launch kernels writing disjoint
// windows of one buffer concurrently; in-place binding means neither
// overwrites the other (run under -race).
func TestConcurrentEnqueueSharedBuffer(t *testing.T) {
	plat := GetPlatforms()[0]
	ctx := plat.CreateContext()
	const half = 1024
	buf, err := ctx.CreateBuffer(2 * half * 4)
	if err != nil {
		t.Fatal(err)
	}
	p := ctx.CreateProgramWithSource(`
kernel void fill(global int* out, int base, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) out[base + i] = base + i + 7;
}
`)
	if err := p.Build(); err != nil {
		t.Fatal(err)
	}
	mk := func(base int32) *Kernel {
		k, err := p.CreateKernel("fill")
		if err != nil {
			t.Fatal(err)
		}
		_ = k.SetArgBuffer(0, buf)
		_ = k.SetArgInt32(1, base)
		_ = k.SetArgInt32(2, half)
		return k
	}
	nd := NDRange{Dims: 1, Global: [3]int64{half, 1, 1}, Local: [3]int64{64, 1, 1}}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, base := range []int32{0, half} {
		q := ctx.CreateCommandQueue()
		k := mk(base)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if err := q.EnqueueNDRangeKernel(k, nd); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < 2*half; i++ {
		if got := int32(binary.LittleEndian.Uint32(buf.Bytes[i*4:])); got != int32(i+7) {
			t.Fatalf("out[%d] = %d, want %d", i, got, i+7)
		}
	}
}
