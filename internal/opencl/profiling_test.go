package opencl

import (
	"testing"
	"time"
)

// TestEventProfilingTimestamps: a command event must stamp each status
// transition in order, and the derived spans must be non-negative with
// the body's Duration covering the command's sleep.
func TestEventProfilingTimestamps(t *testing.T) {
	ctx := GetPlatforms()[0].CreateContext()
	ctx.SetDMAModel(true) // writes take modeled bus time: Duration > 0
	q := ctx.CreateCommandQueue()
	buf, err := ctx.CreateBuffer(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	gate := NewUserEvent()
	ev, err := q.EnqueueWrite(buf, 0, make([]byte, 1<<20), gate)
	if err != nil {
		t.Fatal(err)
	}
	// While gated, the event is not terminal: profiling data is withheld
	// behind the sentinel, mirroring CL_PROFILING_INFO_NOT_AVAILABLE.
	if _, perr := ev.ProfilingInfo(); perr != ErrProfilingNotAvailable {
		t.Fatalf("gated event ProfilingInfo error = %v, want ErrProfilingNotAvailable", perr)
	}
	time.Sleep(2 * time.Millisecond)
	gate.Complete()
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	p, perr := ev.ProfilingInfo()
	if perr != nil {
		t.Fatalf("ProfilingInfo after Wait: %v", perr)
	}
	if p.Queued.IsZero() {
		t.Fatal("no queued timestamp recorded at enqueue")
	}
	for name, ts := range map[string]time.Time{
		"submitted": p.Submitted, "running": p.Running, "complete": p.Complete,
	} {
		if ts.IsZero() {
			t.Errorf("missing %s timestamp: %+v", name, p)
		}
	}
	if p.Submitted.Before(p.Queued) || p.Running.Before(p.Submitted) || p.Complete.Before(p.Running) {
		t.Errorf("timestamps out of order: %+v", p)
	}
	// The gate held the command for >= 2ms before submission.
	if p.QueueDelay() < 2*time.Millisecond {
		t.Errorf("queue delay %v, want >= 2ms (the user-event gate)", p.QueueDelay())
	}
	if p.Duration() <= 0 {
		t.Errorf("zero Duration for a DMA-modeled 1MB write")
	}
	if p.Total() < p.QueueDelay()+p.Duration() {
		t.Errorf("Total %v < QueueDelay %v + Duration %v", p.Total(), p.QueueDelay(), p.Duration())
	}
}

// TestEventProfilingUserEvent: user events never pass through
// submitted/running; their derived spans must degrade to zero rather
// than go negative.
func TestEventProfilingUserEvent(t *testing.T) {
	u := NewUserEvent()
	if _, perr := u.ProfilingInfo(); perr != ErrProfilingNotAvailable {
		t.Fatalf("incomplete user event ProfilingInfo error = %v, want ErrProfilingNotAvailable", perr)
	}
	u.Complete()
	p, perr := u.ProfilingInfo()
	if perr != nil {
		t.Fatalf("ProfilingInfo after Complete: %v", perr)
	}
	if p.Queued.IsZero() || p.Complete.IsZero() {
		t.Fatalf("user event missing terminal stamps: %+v", p)
	}
	if !p.Submitted.IsZero() || !p.Running.IsZero() {
		t.Errorf("user event has submitted/running stamps: %+v", p)
	}
	if p.QueueDelay() != 0 || p.LaunchDelay() != 0 || p.Duration() != 0 {
		t.Errorf("skipped states must yield zero spans: %+v", p)
	}
	if p.Total() < 0 {
		t.Errorf("negative total: %v", p.Total())
	}
}
