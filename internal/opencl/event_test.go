package opencl

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildKernel compiles src and resolves kernel name on a fresh context.
func buildKernel(t *testing.T, src, name string) (*Context, *Kernel) {
	t.Helper()
	ctx := GetPlatforms()[0].CreateContext()
	p := ctx.CreateProgramWithSource(src)
	if err := p.Build(); err != nil {
		t.Fatal(err)
	}
	k, err := p.CreateKernel(name)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, k
}

const incSrc = `
kernel void inc(global int* d, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) d[i] = d[i] + 1;
}
`

func TestEventLifecycleAndCallbacks(t *testing.T) {
	ctx := GetPlatforms()[0].CreateContext()
	q := ctx.CreateCommandQueue()
	b, err := ctx.CreateBuffer(64)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := q.EnqueueWrite(b, 0, make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	if ev.Status() != EventComplete {
		t.Fatalf("status after Wait = %v", ev.Status())
	}
	// Callbacks registered after completion fire immediately.
	fired := false
	ev.OnComplete(func(e *Event) {
		fired = true
		if e.Status() != EventComplete {
			t.Errorf("callback saw status %v", e.Status())
		}
	})
	if !fired {
		t.Error("post-completion callback did not fire synchronously")
	}
}

func TestUserEventGatesCommand(t *testing.T) {
	ctx, k := buildKernel(t, incSrc, "inc")
	q := ctx.CreateOutOfOrderQueue()
	b, err := ctx.CreateBuffer(4 * 64)
	if err != nil {
		t.Fatal(err)
	}
	_ = k.SetArgBuffer(0, b)
	_ = k.SetArgInt32(1, 64)
	gate := NewUserEvent()
	ev, err := q.EnqueueKernel(k, ND1(64, 64), gate)
	if err != nil {
		t.Fatal(err)
	}
	// The command must hold in the queued state while its gate is open.
	time.Sleep(10 * time.Millisecond)
	if s := ev.Status(); s != EventQueued {
		t.Fatalf("gated command status = %v, want queued", s)
	}
	gate.Complete()
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4)
	if err := q.EnqueueReadBuffer(b, 0, out); err != nil {
		t.Fatal(err)
	}
	if got := int32(binary.LittleEndian.Uint32(out)); got != 1 {
		t.Fatalf("d[0] = %d, want 1", got)
	}
}

// TestWaitListOrderingProperty enqueues a randomized chain of +1 kernels
// on an out-of-order queue where ONLY wait-list edges order the
// commands, many times. If any edge is violated, increments race and
// the final count diverges.
func TestWaitListOrderingProperty(t *testing.T) {
	ctx, k := buildKernel(t, incSrc, "inc")
	rng := rand.New(rand.NewSource(0xE7E47))
	for round := 0; round < 20; round++ {
		q := ctx.CreateOutOfOrderQueue()
		b, err := ctx.CreateBuffer(4)
		if err != nil {
			t.Fatal(err)
		}
		_ = k.SetArgBuffer(0, b)
		_ = k.SetArgInt32(1, 1)
		depth := 2 + rng.Intn(6)
		width := 1 + rng.Intn(3)
		// Layered DAG: every command in layer i waits on a random
		// non-empty subset of layer i-1.
		prev := []*Event{}
		total := 0
		for layer := 0; layer < depth; layer++ {
			var cur []*Event
			for w := 0; w < width; w++ {
				var waits []*Event
				for _, p := range prev {
					if rng.Intn(2) == 0 {
						waits = append(waits, p)
					}
				}
				if len(prev) > 0 && len(waits) == 0 {
					waits = append(waits, prev[rng.Intn(len(prev))])
				}
				ev, err := q.EnqueueKernel(k, ND1(1, 1), waits...)
				if err != nil {
					t.Fatal(err)
				}
				cur = append(cur, ev)
				total++
			}
			prev = cur
		}
		if err := q.Finish(); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, 4)
		if err := q.EnqueueReadBuffer(b, 0, out); err != nil {
			t.Fatal(err)
		}
		if got := int32(binary.LittleEndian.Uint32(out)); got != int32(total) {
			t.Fatalf("round %d: count = %d, want %d (wait-list edges violated)", round, got, total)
		}
		b.Release()
	}
}

// TestInOrderQueueImplicitChain verifies the in-order mode is the
// special case of an implicit wait-list chain: no explicit events, yet
// commands observe strict ordering.
func TestInOrderQueueImplicitChain(t *testing.T) {
	ctx, k := buildKernel(t, incSrc, "inc")
	q := ctx.CreateCommandQueue()
	b, err := ctx.CreateBuffer(4)
	if err != nil {
		t.Fatal(err)
	}
	_ = k.SetArgBuffer(0, b)
	_ = k.SetArgInt32(1, 1)
	const n = 40
	var last *Event
	for i := 0; i < n; i++ {
		ev, err := q.EnqueueKernel(k, ND1(1, 1))
		if err != nil {
			t.Fatal(err)
		}
		last = ev
	}
	if err := last.Wait(); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4)
	if err := q.EnqueueReadBuffer(b, 0, out); err != nil {
		t.Fatal(err)
	}
	if got := int32(binary.LittleEndian.Uint32(out)); got != n {
		t.Fatalf("count = %d, want %d", got, n)
	}
}

// TestOutOfOrderStressSharedBuffer hammers one buffer from many
// dependency chains on an out-of-order queue (run under -race): chains
// are independent of each other but internally ordered, so each chain's
// cell must count its own links.
func TestOutOfOrderStressSharedBuffer(t *testing.T) {
	ctx, k := buildKernel(t, `
kernel void bump(global int* d, int cell)
{
    d[cell] = d[cell] + 1;
}
`, "bump")
	q := ctx.CreateOutOfOrderQueue()
	const chains, links = 16, 8
	b, err := ctx.CreateBuffer(4 * chains)
	if err != nil {
		t.Fatal(err)
	}
	events := make([]*Event, chains)
	for c := 0; c < chains; c++ {
		_ = k.SetArgBuffer(0, b)
		_ = k.SetArgInt32(1, int32(c))
		var prev *Event
		for l := 0; l < links; l++ {
			var waits []*Event
			if prev != nil {
				waits = append(waits, prev)
			}
			ev, err := q.EnqueueKernel(k, ND1(1, 1), waits...)
			if err != nil {
				t.Fatal(err)
			}
			prev = ev
		}
		events[c] = prev
	}
	if err := WaitAll(events...); err != nil {
		t.Fatal(err)
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4*chains)
	if err := q.EnqueueReadBuffer(b, 0, out); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < chains; c++ {
		if got := int32(binary.LittleEndian.Uint32(out[c*4:])); got != links {
			t.Errorf("chain %d count = %d, want %d", c, got, links)
		}
	}
}

// TestFailurePropagation checks the failure path end to end: a trapping
// kernel fails its event, dependent commands do not run and fail with
// the propagated cause, and completion callbacks observe the failure.
func TestFailurePropagation(t *testing.T) {
	ctx, k := buildKernel(t, `
kernel void oob(global int* d)
{
    d[1 << 20] = 1;
}
`, "oob")
	q := ctx.CreateOutOfOrderQueue()
	b, err := ctx.CreateBuffer(64)
	if err != nil {
		t.Fatal(err)
	}
	_ = k.SetArgBuffer(0, b)
	bad, err := q.EnqueueKernel(k, ND1(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	var cbStatus EventStatus
	var cbErr error
	var wg sync.WaitGroup
	wg.Add(1)
	bad.OnComplete(func(e *Event) {
		cbStatus, cbErr = e.Status(), e.Err()
		wg.Done()
	})
	dependent, err := q.EnqueueWrite(b, 0, make([]byte, 8), bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Wait(); err == nil {
		t.Fatal("trapping kernel reported success")
	}
	wg.Wait()
	if cbStatus != EventFailed || cbErr == nil {
		t.Fatalf("callback saw (%v, %v), want (failed, error)", cbStatus, cbErr)
	}
	err = dependent.Wait()
	if err == nil {
		t.Fatal("dependent of failed event reported success")
	}
	if dependent.Status() != EventFailed {
		t.Fatalf("dependent status = %v", dependent.Status())
	}
	if want := "wait-list dependency failed"; !strings.Contains(err.Error(), want) {
		t.Fatalf("dependent error %q does not mention %q", err, want)
	}
}

// TestCyclicWaitListRejected builds a user-event cycle with CompleteWhen
// and checks the enqueue whose wait list reaches it is rejected — so
// Finish can never be deadlocked by an uncompletable dependency graph.
func TestCyclicWaitListRejected(t *testing.T) {
	ctx := GetPlatforms()[0].CreateContext()
	q := ctx.CreateOutOfOrderQueue()
	b, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	u1, u2 := NewUserEvent(), NewUserEvent()
	u1.CompleteWhen(u2)
	u2.CompleteWhen(u1) // closes the cycle
	if _, err := q.EnqueueWrite(b, 0, make([]byte, 4), u1); !errors.Is(err, ErrCyclicWaitList) {
		t.Fatalf("cyclic wait list: err = %v, want ErrCyclicWaitList", err)
	}
	// The rejected enqueue left no command behind: Finish returns.
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	// A diamond (same event reachable twice) is NOT a cycle.
	d1, d2, d3 := NewUserEvent(), NewUserEvent(), NewUserEvent()
	d2.CompleteWhen(d1)
	d3.CompleteWhen(d1)
	ev, err := q.EnqueueWrite(b, 0, make([]byte, 4), d2, d3)
	if err != nil {
		t.Fatalf("diamond wait list rejected: %v", err)
	}
	d1.Complete()
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestCycleClosedAfterEnqueue closes a cycle AFTER a command was
// already gated on one of its members: the command must fail with the
// propagated cycle error rather than hang Finish forever.
func TestCycleClosedAfterEnqueue(t *testing.T) {
	ctx := GetPlatforms()[0].CreateContext()
	q := ctx.CreateOutOfOrderQueue()
	b, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	u1 := NewUserEvent()
	ev, err := q.EnqueueWrite(b, 0, make([]byte, 4), u1)
	if err != nil {
		t.Fatal(err)
	}
	u2 := NewUserEvent()
	u1.CompleteWhen(u2)
	u2.CompleteWhen(u1) // closes the cycle: u2 fails on the spot
	if werr := u2.Wait(); !errors.Is(werr, ErrCyclicWaitList) {
		t.Fatalf("cycle-closing event: %v, want ErrCyclicWaitList", werr)
	}
	if werr := ev.Wait(); !errors.Is(werr, ErrCyclicWaitList) {
		t.Fatalf("gated command: %v, want propagated ErrCyclicWaitList", werr)
	}
	if err := q.Finish(); err != nil { // must not hang
		t.Fatal(err)
	}
}

// TestConcurrentCompleteWhenCycle races two CompleteWhen calls that
// together close a cycle: exactly one must lose and fail with
// ErrCyclicWaitList (the other then fails by propagation), never
// recording an undetected cycle that would hang Finish.
func TestConcurrentCompleteWhenCycle(t *testing.T) {
	for round := 0; round < 100; round++ {
		u1, u2 := NewUserEvent(), NewUserEvent()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); u1.CompleteWhen(u2) }()
		go func() { defer wg.Done(); u2.CompleteWhen(u1) }()
		wg.Wait()
		done := make(chan error, 1)
		go func() { done <- WaitAll(u1, u2) }()
		select {
		case err := <-done:
			if !errors.Is(err, ErrCyclicWaitList) {
				t.Fatalf("round %d: cycle resolved with %v, want ErrCyclicWaitList", round, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: concurrent CompleteWhen recorded an undetected cycle (events never terminal)", round)
		}
	}
}

// TestEnqueueNonBlocking checks the core contract: Enqueue* returns
// while a previously enqueued kernel is still running.
func TestEnqueueNonBlocking(t *testing.T) {
	ctx, k := buildKernel(t, `
kernel void spink(global int* d, int iters)
{
    int acc = 0;
    int i;
    for (i = 0; i < iters; ++i) acc += i & 7;
    d[0] = acc;
}
`, "spink")
	q := ctx.CreateOutOfOrderQueue()
	b, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	_ = k.SetArgBuffer(0, b)
	_ = k.SetArgInt32(1, 2_000_000)
	slow, err := q.EnqueueKernel(k, ND1(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Enqueue more work behind it; each call must return immediately.
	start := time.Now()
	_ = k.SetArgInt32(1, 1)
	fast, err := q.EnqueueKernel(k, ND1(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("enqueue blocked %v while kernel in flight", d)
	}
	if slow.Status().Terminal() {
		t.Skip("slow kernel finished before the check; timing too tight to assert")
	}
	if err := WaitAll(slow, fast); err != nil {
		t.Fatal(err)
	}
}

// TestBufferReleaseSemantics: releasing a buffer with queued commands
// fails those commands with ErrBufferReleased, keeps the accounting
// alive until the last pin drops, rejects new enqueues, and tolerates
// double release.
func TestBufferReleaseSemantics(t *testing.T) {
	ctx := GetPlatforms()[0].CreateContext()
	q := ctx.CreateOutOfOrderQueue()
	b, err := ctx.CreateBuffer(1024)
	if err != nil {
		t.Fatal(err)
	}
	gate := NewUserEvent()
	ev, err := q.EnqueueWrite(b, 0, make([]byte, 8), gate)
	if err != nil {
		t.Fatal(err)
	}
	b.Release()
	if ctx.AllocatedBytes() != 1024 {
		t.Fatalf("memory freed with a command still pinned: %d", ctx.AllocatedBytes())
	}
	b.Release() // double release is a no-op
	if _, err := q.EnqueueWrite(b, 0, make([]byte, 8)); !errors.Is(err, ErrBufferReleased) {
		t.Fatalf("enqueue on released buffer: %v, want ErrBufferReleased", err)
	}
	gate.Complete()
	if err := ev.Wait(); !errors.Is(err, ErrBufferReleased) {
		t.Fatalf("queued command on released buffer: %v, want ErrBufferReleased", err)
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := ctx.AllocatedBytes(); got != 0 {
		t.Fatalf("memory not freed after last pin dropped: %d", got)
	}
	if b.Pinned() != 0 {
		t.Fatalf("pins leaked: %d", b.Pinned())
	}
}

// TestFinishDrainsQueue checks Finish waits for every command,
// including long dependency chains still releasing.
func TestFinishDrainsQueue(t *testing.T) {
	ctx, k := buildKernel(t, incSrc, "inc")
	q := ctx.CreateOutOfOrderQueue()
	b, err := ctx.CreateBuffer(4)
	if err != nil {
		t.Fatal(err)
	}
	_ = k.SetArgBuffer(0, b)
	_ = k.SetArgInt32(1, 1)
	gate := NewUserEvent()
	prev := gate
	const n = 25
	for i := 0; i < n; i++ {
		ev, err := q.EnqueueKernel(k, ND1(1, 1), prev)
		if err != nil {
			t.Fatal(err)
		}
		prev = ev
	}
	done := make(chan struct{})
	go func() {
		_ = q.Finish()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Finish returned while commands were gated")
	case <-time.After(20 * time.Millisecond):
	}
	gate.Complete()
	<-done
	out := make([]byte, 4)
	if err := q.EnqueueReadBuffer(b, 0, out); err != nil {
		t.Fatal(err)
	}
	if got := int32(binary.LittleEndian.Uint32(out)); got != n {
		t.Fatalf("count after Finish = %d, want %d", got, n)
	}
	if q.Pending() != 0 {
		t.Fatalf("pending after Finish = %d", q.Pending())
	}
}

// TestSetArgLocalQueue runs a kernel whose scratchpad is a host-sized
// __local pointer argument through the event API: each work-group
// reverses its block through local memory.
func TestSetArgLocalQueue(t *testing.T) {
	ctx, k := buildKernel(t, `
kernel void revblk(global int* data, local int* scratch, int n)
{
    int l = (int)get_local_id(0);
    int ls = (int)get_local_size(0);
    int g = (int)get_global_id(0);
    if (g < n) scratch[l] = data[g];
    barrier(3);
    if (g < n) data[g] = scratch[ls - 1 - l];
}
`, "revblk")
	q := ctx.CreateCommandQueue()
	const n, local = 128, 16
	b, err := ctx.CreateBuffer(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	host := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(host[i*4:], uint32(i))
	}
	wev, err := q.EnqueueWrite(b, 0, host)
	if err != nil {
		t.Fatal(err)
	}
	_ = k.SetArgBuffer(0, b)
	if err := k.SetArgLocal(1, 4*local); err != nil {
		t.Fatal(err)
	}
	_ = k.SetArgInt32(2, n)
	kev, err := q.EnqueueKernel(k, ND1(n, local), wev)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4*n)
	rev, err := q.EnqueueRead(b, 0, out, kev)
	if err != nil {
		t.Fatal(err)
	}
	if err := rev.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		blk := i / local
		want := uint32(blk*local + (local - 1 - i%local))
		if got := binary.LittleEndian.Uint32(out[i*4:]); got != want {
			t.Fatalf("data[%d] = %d, want %d", i, got, want)
		}
	}
	// Non-positive sizes and out-of-range indices are rejected.
	if err := k.SetArgLocal(1, 0); err == nil {
		t.Error("zero-size local argument accepted")
	}
	if err := k.SetArgLocal(9, 4); err == nil {
		t.Error("out-of-range local argument accepted")
	}
}

// TestMarkerJoin checks EnqueueMarker as a fan-in point.
func TestMarkerJoin(t *testing.T) {
	ctx := GetPlatforms()[0].CreateContext()
	q := ctx.CreateOutOfOrderQueue()
	b, err := ctx.CreateBuffer(64)
	if err != nil {
		t.Fatal(err)
	}
	var evs []*Event
	for i := 0; i < 8; i++ {
		data := make([]byte, 8)
		data[0] = byte(i + 1)
		ev, err := q.EnqueueWrite(b, int64(i*8), data)
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	m, err := q.EnqueueMarker(evs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if b.Bytes[i*8] != byte(i+1) {
			t.Fatalf("slot %d not written before marker completed", i)
		}
	}
}

// TestWhenAllEmptyAndStatusStrings covers the degenerate paths.
func TestWhenAllEmptyAndStatusStrings(t *testing.T) {
	fired := false
	WhenAll(nil, func(err error) {
		if err != nil {
			t.Errorf("empty WhenAll err = %v", err)
		}
		fired = true
	})
	if !fired {
		t.Fatal("empty WhenAll did not fire synchronously")
	}
	for s, want := range map[EventStatus]string{
		EventQueued: "queued", EventSubmitted: "submitted", EventRunning: "running",
		EventComplete: "complete", EventFailed: "failed",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	u := NewUserEvent()
	u.Fail(nil)
	if u.Status() != EventFailed || u.Err() == nil {
		t.Error("Fail(nil) did not synthesize an error")
	}
	u.Complete() // terminal events ignore further transitions
	if u.Status() != EventFailed {
		t.Error("terminal event re-transitioned")
	}
	_ = fmt.Sprintf("%v", u.Status())
}

// TestEventWaitContext covers the bounded wait: a completed event
// returns its terminal error regardless of context state, a pending
// event returns the context's error on cancellation or deadline, and a
// completion that races the cancel is surfaced if it wins.
func TestEventWaitContext(t *testing.T) {
	// Terminal success and failure return immediately.
	ok := NewUserEvent()
	ok.Complete()
	if err := ok.WaitContext(context.Background()); err != nil {
		t.Fatalf("WaitContext on complete event: %v", err)
	}
	boom := errors.New("boom")
	bad := NewUserEvent()
	bad.Fail(boom)
	if err := bad.WaitContext(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("WaitContext on failed event: %v, want boom", err)
	}

	// A pending event is released by cancellation with the context's
	// error — the hang this method exists to prevent.
	pending := NewUserEvent()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- pending.WaitContext(ctx) }()
	select {
	case err := <-done:
		t.Fatalf("WaitContext returned %v before cancel", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("WaitContext after cancel: %v, want context.Canceled", err)
	}
	pending.Complete() // leave no waiter behind

	// Deadline expiry behaves the same way.
	late := NewUserEvent()
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer dcancel()
	if err := late.WaitContext(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitContext past deadline: %v, want DeadlineExceeded", err)
	}
	late.Complete()
}
