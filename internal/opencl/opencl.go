// Package opencl is a miniature OpenCL host API over the in-process
// device substitute: platforms/contexts/programs/kernels/buffers/queues
// with the call shapes of the real API (level 0 of the paper's stack,
// Fig. 5). Functional execution runs on the IR interpreter; timing
// studies use internal/sim instead.
//
// The accelOS runtime (internal/accelos) interposes on this API through
// ProxyCL exactly as the paper's runtime interposes on vendor OpenCL.
package opencl

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/clc"
	"repro/internal/device"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/rtlib"
	"repro/internal/telemetry"
)

// Platform pairs the API with a modeled device.
type Platform struct {
	Dev *device.Platform

	machOnce sync.Once
	machines *MachinePool
}

// Machines returns the platform's persistent interpreter machine pool
// (created on first use). Launch handles draw their machines from here
// so the execution hot path reuses machines instead of constructing one
// per launch.
func (p *Platform) Machines() *MachinePool {
	p.machOnce.Do(func() { p.machines = NewMachinePool() })
	return p.machines
}

// GetPlatforms lists the available platforms (the paper's two
// evaluation machines).
func GetPlatforms() []*Platform {
	var ps []*Platform
	for _, d := range device.Platforms() {
		ps = append(ps, &Platform{Dev: d})
	}
	return ps
}

// Context owns device memory and programs.
type Context struct {
	Plat *Platform

	mu        sync.Mutex
	allocated int64
	modelDMA  bool
	tracer    *telemetry.Tracer
	metrics   *telemetry.Registry
}

// SetTracer installs a trace-span sink on the context: every command
// its queues complete then emits a span from the event's profiling
// stamps. Nil removes it; with no tracer the hot path pays one mutex
// peek per enqueue. Install before enqueuing work.
func (c *Context) SetTracer(t *telemetry.Tracer) {
	c.mu.Lock()
	c.tracer = t
	c.mu.Unlock()
}

// SetMetrics installs a metrics registry on the context: transfer
// commands then count DMA bytes and wall time per queue label. Nil
// removes it. Install before enqueuing work.
func (c *Context) SetMetrics(r *telemetry.Registry) {
	c.mu.Lock()
	c.metrics = r
	c.mu.Unlock()
}

// telemetrySinks snapshots the installed sinks for one enqueue.
func (c *Context) telemetrySinks() (*telemetry.Tracer, *telemetry.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tracer, c.metrics
}

// CreateContext returns a context on the platform.
func (p *Platform) CreateContext() *Context {
	return &Context{Plat: p}
}

// SetDMAModel enables (or disables) modeled DMA timing on this context's
// queues: transfer commands then take bytes/PCIeGBps of wall time, with
// the host CPU idle — as on real hardware, where a DMA engine moves the
// data. This is what the asynchronous API overlaps with kernel
// execution; it is off by default so functional tests pay nothing.
func (c *Context) SetDMAModel(on bool) {
	c.mu.Lock()
	c.modelDMA = on
	c.mu.Unlock()
}

// dmaDelay returns the modeled DMA wall time for a transfer of n bytes
// (zero when the model is disabled or the device has no modeled bus).
func (c *Context) dmaDelay(n int) time.Duration {
	c.mu.Lock()
	on := c.modelDMA
	c.mu.Unlock()
	if !on || c.Plat == nil || c.Plat.Dev.PCIeGBps <= 0 {
		return 0
	}
	return time.Duration(float64(n) / (c.Plat.Dev.PCIeGBps * 1e9) * float64(time.Second))
}

// GlobalMemBytes returns the device memory capacity.
func (c *Context) GlobalMemBytes() int64 {
	return c.Plat.Dev.GlobalMemMB * 1024 * 1024
}

// AllocatedBytes returns the current device memory usage.
func (c *Context) AllocatedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.allocated
}

// Buffer is a device memory allocation. Under the asynchronous API a
// buffer may have commands in flight at any moment, so its lifetime is
// refcount-aware: commands pin it while queued or running, Release marks
// it released immediately but defers the actual free until the last pin
// drops, and commands touching a released buffer fail with
// ErrBufferReleased instead of racing on Bytes.
type Buffer struct {
	ctx  *Context
	Size int64
	// Region is the backing store; the accelOS runtime binds it to the
	// interpreter machine at launch time.
	Bytes []byte

	mu       sync.Mutex
	pins     int
	released bool
	freed    bool
	onFree   func()
}

// CreateBuffer allocates device memory.
func (c *Context) CreateBuffer(size int64) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("opencl: invalid buffer size %d", size)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.allocated+size > c.GlobalMemBytes() {
		return nil, ErrOutOfMemory
	}
	c.allocated += size
	return &Buffer{ctx: c, Size: size, Bytes: make([]byte, size)}, nil
}

// CreateBufferBytes allocates a buffer whose device backing is the
// caller-provided slice (clCreateBuffer with CL_MEM_USE_HOST_PTR). The
// accelOS service layer uses it to back buffers with shared-memory
// segments mapped into both the daemon and its client, so kernel
// launches bind the client's own pages and transfers never copy. The
// caller must keep the slice valid until the buffer is freed.
func (c *Context) CreateBufferBytes(bytes []byte) (*Buffer, error) {
	size := int64(len(bytes))
	if size <= 0 {
		return nil, fmt.Errorf("opencl: invalid buffer size %d", size)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.allocated+size > c.GlobalMemBytes() {
		return nil, ErrOutOfMemory
	}
	c.allocated += size
	return &Buffer{ctx: c, Size: size, Bytes: bytes}, nil
}

// ErrOutOfMemory mirrors CL_MEM_OBJECT_ALLOCATION_FAILURE.
var ErrOutOfMemory = fmt.Errorf("opencl: device memory exhausted")

// ErrBufferReleased fails commands enqueued on — or still queued when
// the application released — a buffer.
var ErrBufferReleased = fmt.Errorf("opencl: buffer released with command in flight")

// Pin takes a command reference on the buffer: the memory stays alive
// until the matching Unpin even if the application releases the buffer
// meanwhile. Pinning a released buffer fails.
func (b *Buffer) Pin() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.released {
		return ErrBufferReleased
	}
	b.pins++
	return nil
}

// Unpin drops a command reference; the last Unpin after Release frees
// the device memory.
func (b *Buffer) Unpin() {
	b.mu.Lock()
	b.pins--
	free := b.released && b.pins == 0 && !b.freed
	if free {
		b.freed = true
	}
	b.mu.Unlock()
	if free {
		b.free()
	}
}

// Released reports whether the application has released the buffer.
func (b *Buffer) Released() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.released
}

// Pinned reports how many commands currently hold the buffer (tests and
// monitoring).
func (b *Buffer) Pinned() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pins
}

// Release marks the buffer released. With no commands in flight the
// device memory is freed immediately; otherwise the free is deferred to
// the last Unpin, queued commands fail with ErrBufferReleased when they
// would run, and new enqueues are rejected. Double release is a no-op.
// Buffers constructed outside a context (ctx == nil, e.g. host-side
// descriptor images) release to nothing instead of faulting.
func (b *Buffer) Release() { b.ReleaseFunc(nil) }

// ReleaseFunc is Release with a hook invoked exactly once when the
// device memory is actually freed (immediately, or at the last Unpin).
// Runtime layers use it to mirror their own memory accounting.
func (b *Buffer) ReleaseFunc(onFree func()) {
	b.mu.Lock()
	if b.released {
		b.mu.Unlock()
		return
	}
	b.released = true
	b.onFree = onFree
	free := b.pins == 0 && !b.freed
	if free {
		b.freed = true
	}
	b.mu.Unlock()
	if free {
		b.free()
	}
}

// free returns the memory to the context's accounting and fires the
// release hook. Called exactly once, guarded by b.freed.
func (b *Buffer) free() {
	if b.ctx != nil {
		b.ctx.mu.Lock()
		b.ctx.allocated -= b.Size
		b.ctx.mu.Unlock()
	}
	b.mu.Lock()
	hook := b.onFree
	b.onFree = nil
	b.mu.Unlock()
	if hook != nil {
		hook()
	}
}

// Program is kernel source plus its build products: the IR module and,
// once a kernel has launched, the interpreter's compiled bytecode.
type Program struct {
	Ctx    *Context
	Source string
	Module *ir.Module

	compMu   sync.Mutex
	compiled *interp.Prog
}

// CreateProgramWithSource registers kernel source.
func (c *Context) CreateProgramWithSource(src string) *Program {
	return &Program{Ctx: c, Source: src}
}

// Build compiles the program ("vendor compiler" path). The accelOS JIT
// intercepts this step and substitutes the transformed module.
func (p *Program) Build() error {
	if p.Module != nil {
		return nil
	}
	m, err := clc.Compile(p.Source, "program")
	if err != nil {
		return fmt.Errorf("opencl: build failed: %w", err)
	}
	p.Module = m
	return nil
}

// Compiled returns the program's bytecode, compiled on first use and
// cached for the program's lifetime so every launch — including fresh
// machines past the pool caps — reuses the compiled form.
func (p *Program) Compiled() *interp.Prog {
	if p.Module == nil {
		return nil
	}
	p.compMu.Lock()
	defer p.compMu.Unlock()
	if p.compiled == nil {
		p.compiled = interp.SharedProgram(p.Module)
	}
	return p.compiled
}

// Kernel is a program entry point with bound arguments.
type Kernel struct {
	Prog *Program
	Name string

	args []arg
}

type arg struct {
	set       bool
	buf       *Buffer
	localSize int64 // > 0: local-memory argument of this byte size
	val       interp.Value
}

// CreateKernel resolves a kernel by name.
func (p *Program) CreateKernel(name string) (*Kernel, error) {
	if p.Module == nil {
		return nil, fmt.Errorf("opencl: program not built")
	}
	f := p.Module.Lookup(name)
	if f == nil || !f.Kernel {
		return nil, fmt.Errorf("opencl: kernel %q not found", name)
	}
	return &Kernel{Prog: p, Name: name, args: make([]arg, len(f.Params))}, nil
}

// NumArgs returns the kernel's declared argument count.
func (k *Kernel) NumArgs() int { return len(k.args) }

// SetArgBuffer binds a buffer argument.
func (k *Kernel) SetArgBuffer(i int, b *Buffer) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("opencl: argument index %d out of range", i)
	}
	k.args[i] = arg{set: true, buf: b}
	return nil
}

// SetArgInt32 binds an int scalar.
func (k *Kernel) SetArgInt32(i int, v int32) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("opencl: argument index %d out of range", i)
	}
	k.args[i] = arg{set: true, val: interp.IntV(int64(v))}
	return nil
}

// SetArgInt64 binds a long scalar.
func (k *Kernel) SetArgInt64(i int, v int64) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("opencl: argument index %d out of range", i)
	}
	k.args[i] = arg{set: true, val: interp.LongV(v)}
	return nil
}

// SetArgFloat32 binds a float scalar.
func (k *Kernel) SetArgFloat32(i int, v float32) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("opencl: argument index %d out of range", i)
	}
	k.args[i] = arg{set: true, val: interp.FloatV(float64(v))}
	return nil
}

// SetArgLocal binds a local-memory argument of the given byte size (the
// clSetKernelArg(size, NULL) form for __local pointer parameters): at
// launch every work-group receives its own zeroed local region of that
// size.
func (k *Kernel) SetArgLocal(i int, size int64) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("opencl: argument index %d out of range", i)
	}
	if size <= 0 {
		return fmt.Errorf("opencl: local argument %d has non-positive size %d", i, size)
	}
	k.args[i] = arg{set: true, localSize: size}
	return nil
}

// NDRange is a launch geometry.
type NDRange = interp.NDRange

// ND1 builds a 1-D launch geometry.
func ND1(global, local int64) NDRange { return interp.ND1(global, local) }

// ND2 builds a 2-D launch geometry.
func ND2(gx, gy, lx, ly int64) NDRange { return interp.ND2(gx, gy, lx, ly) }

// LaunchTransformed launches kernel name from an arbitrary (transformed)
// module with the RT descriptor appended and a reduced physical grid,
// running every slice back to back. It is the one-shot convenience entry
// point over NewLaunchHandle; the accelOS Kernel Scheduler holds the
// handle itself so it can re-plan between slices.
func LaunchTransformed(mod *ir.Module, k *Kernel, nd NDRange, rtWords []int64, physGroups int64) error {
	h, err := NewLaunchHandle(nil, mod, k, nd, rtWords, physGroups, rtWords[rtlib.RTChunk])
	if err != nil {
		return err
	}
	return h.Run()
}
