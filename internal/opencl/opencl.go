// Package opencl is a miniature OpenCL host API over the in-process
// device substitute: platforms/contexts/programs/kernels/buffers/queues
// with the call shapes of the real API (level 0 of the paper's stack,
// Fig. 5). Functional execution runs on the IR interpreter; timing
// studies use internal/sim instead.
//
// The accelOS runtime (internal/accelos) interposes on this API through
// ProxyCL exactly as the paper's runtime interposes on vendor OpenCL.
package opencl

import (
	"fmt"
	"sync"

	"repro/internal/clc"
	"repro/internal/device"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/rtlib"
)

// Platform pairs the API with a modeled device.
type Platform struct {
	Dev *device.Platform

	machOnce sync.Once
	machines *MachinePool
}

// Machines returns the platform's persistent interpreter machine pool
// (created on first use). Launch handles draw their machines from here
// so the execution hot path reuses machines instead of constructing one
// per launch.
func (p *Platform) Machines() *MachinePool {
	p.machOnce.Do(func() { p.machines = NewMachinePool() })
	return p.machines
}

// GetPlatforms lists the available platforms (the paper's two
// evaluation machines).
func GetPlatforms() []*Platform {
	var ps []*Platform
	for _, d := range device.Platforms() {
		ps = append(ps, &Platform{Dev: d})
	}
	return ps
}

// Context owns device memory and programs.
type Context struct {
	Plat *Platform

	mu        sync.Mutex
	allocated int64
}

// CreateContext returns a context on the platform.
func (p *Platform) CreateContext() *Context {
	return &Context{Plat: p}
}

// GlobalMemBytes returns the device memory capacity.
func (c *Context) GlobalMemBytes() int64 {
	return c.Plat.Dev.GlobalMemMB * 1024 * 1024
}

// AllocatedBytes returns the current device memory usage.
func (c *Context) AllocatedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.allocated
}

// Buffer is a device memory allocation.
type Buffer struct {
	ctx  *Context
	Size int64
	// Region is the backing store; the accelOS runtime binds it to the
	// interpreter machine at launch time.
	Bytes []byte

	released bool
}

// CreateBuffer allocates device memory.
func (c *Context) CreateBuffer(size int64) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("opencl: invalid buffer size %d", size)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.allocated+size > c.GlobalMemBytes() {
		return nil, ErrOutOfMemory
	}
	c.allocated += size
	return &Buffer{ctx: c, Size: size, Bytes: make([]byte, size)}, nil
}

// ErrOutOfMemory mirrors CL_MEM_OBJECT_ALLOCATION_FAILURE.
var ErrOutOfMemory = fmt.Errorf("opencl: device memory exhausted")

// Release frees the buffer's device memory. Buffers constructed outside
// a context (ctx == nil, e.g. host-side descriptor images) release to
// nothing instead of faulting.
func (b *Buffer) Release() {
	if b.released {
		return
	}
	b.released = true
	if b.ctx == nil {
		return
	}
	b.ctx.mu.Lock()
	b.ctx.allocated -= b.Size
	b.ctx.mu.Unlock()
}

// Program is kernel source plus its build products: the IR module and,
// once a kernel has launched, the interpreter's compiled bytecode.
type Program struct {
	Ctx    *Context
	Source string
	Module *ir.Module

	compMu   sync.Mutex
	compiled *interp.Prog
}

// CreateProgramWithSource registers kernel source.
func (c *Context) CreateProgramWithSource(src string) *Program {
	return &Program{Ctx: c, Source: src}
}

// Build compiles the program ("vendor compiler" path). The accelOS JIT
// intercepts this step and substitutes the transformed module.
func (p *Program) Build() error {
	if p.Module != nil {
		return nil
	}
	m, err := clc.Compile(p.Source, "program")
	if err != nil {
		return fmt.Errorf("opencl: build failed: %w", err)
	}
	p.Module = m
	return nil
}

// Compiled returns the program's bytecode, compiled on first use and
// cached for the program's lifetime so every launch — including fresh
// machines past the pool caps — reuses the compiled form.
func (p *Program) Compiled() *interp.Prog {
	if p.Module == nil {
		return nil
	}
	p.compMu.Lock()
	defer p.compMu.Unlock()
	if p.compiled == nil {
		p.compiled = interp.SharedProgram(p.Module)
	}
	return p.compiled
}

// Kernel is a program entry point with bound arguments.
type Kernel struct {
	Prog *Program
	Name string

	args []arg
}

type arg struct {
	set bool
	buf *Buffer
	val interp.Value
}

// CreateKernel resolves a kernel by name.
func (p *Program) CreateKernel(name string) (*Kernel, error) {
	if p.Module == nil {
		return nil, fmt.Errorf("opencl: program not built")
	}
	f := p.Module.Lookup(name)
	if f == nil || !f.Kernel {
		return nil, fmt.Errorf("opencl: kernel %q not found", name)
	}
	return &Kernel{Prog: p, Name: name, args: make([]arg, len(f.Params))}, nil
}

// NumArgs returns the kernel's declared argument count.
func (k *Kernel) NumArgs() int { return len(k.args) }

// SetArgBuffer binds a buffer argument.
func (k *Kernel) SetArgBuffer(i int, b *Buffer) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("opencl: argument index %d out of range", i)
	}
	k.args[i] = arg{set: true, buf: b}
	return nil
}

// SetArgInt32 binds an int scalar.
func (k *Kernel) SetArgInt32(i int, v int32) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("opencl: argument index %d out of range", i)
	}
	k.args[i] = arg{set: true, val: interp.IntV(int64(v))}
	return nil
}

// SetArgInt64 binds a long scalar.
func (k *Kernel) SetArgInt64(i int, v int64) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("opencl: argument index %d out of range", i)
	}
	k.args[i] = arg{set: true, val: interp.LongV(v)}
	return nil
}

// SetArgFloat32 binds a float scalar.
func (k *Kernel) SetArgFloat32(i int, v float32) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("opencl: argument index %d out of range", i)
	}
	k.args[i] = arg{set: true, val: interp.FloatV(float64(v))}
	return nil
}

// NDRange is a launch geometry.
type NDRange = interp.NDRange

// CommandQueue executes launches in order.
type CommandQueue struct {
	Ctx *Context
	mu  sync.Mutex
}

// CreateCommandQueue returns an in-order queue.
func (c *Context) CreateCommandQueue() *CommandQueue {
	return &CommandQueue{Ctx: c}
}

// EnqueueWriteBuffer copies host bytes into a buffer.
func (q *CommandQueue) EnqueueWriteBuffer(b *Buffer, off int64, data []byte) error {
	if off < 0 || off+int64(len(data)) > b.Size {
		return fmt.Errorf("opencl: write outside buffer bounds")
	}
	copy(b.Bytes[off:], data)
	return nil
}

// EnqueueReadBuffer copies buffer bytes back to the host.
func (q *CommandQueue) EnqueueReadBuffer(b *Buffer, off int64, out []byte) error {
	if off < 0 || off+int64(len(out)) > b.Size {
		return fmt.Errorf("opencl: read outside buffer bounds")
	}
	copy(out, b.Bytes[off:])
	return nil
}

// EnqueueNDRangeKernel launches the kernel synchronously (the in-order
// queue model: Finish is implicit per launch). Buffers are bound into
// the machine zero-copy, so the launch does not pay per-byte copy-in or
// copy-out and concurrent launches sharing a buffer see each other's
// writes instead of overwriting them on copy-back.
func (q *CommandQueue) EnqueueNDRangeKernel(k *Kernel, nd NDRange) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	pool := fallbackPool
	if k.Prog.Ctx != nil {
		pool = k.Prog.Ctx.Plat.Machines()
	}
	mach := pool.Acquire(k.Prog.Module)
	defer pool.Release(mach)
	mach.UseProgram(k.Prog.Compiled())
	vals := make([]interp.Value, 0, len(k.args))
	for i, a := range k.args {
		if !a.set {
			return fmt.Errorf("opencl: kernel %q argument %d not set", k.Name, i)
		}
		if a.buf != nil {
			r := mach.BindRegion(a.buf.Bytes, ir.Global)
			vals = append(vals, interp.Value{K: ir.Pointer, P: interp.Ptr{R: r}})
			continue
		}
		vals = append(vals, a.val)
	}
	return mach.Launch(k.Name, vals, nd)
}

// LaunchTransformed launches kernel name from an arbitrary (transformed)
// module with the RT descriptor appended and a reduced physical grid,
// running every slice back to back. It is the one-shot convenience entry
// point over NewLaunchHandle; the accelOS Kernel Scheduler holds the
// handle itself so it can re-plan between slices.
func LaunchTransformed(mod *ir.Module, k *Kernel, nd NDRange, rtWords []int64, physGroups int64) error {
	h, err := NewLaunchHandle(nil, mod, k, nd, rtWords, physGroups, rtWords[rtlib.RTChunk])
	if err != nil {
		return err
	}
	return h.Run()
}
