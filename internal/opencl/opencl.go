// Package opencl is a miniature OpenCL host API over the in-process
// device substitute: platforms/contexts/programs/kernels/buffers/queues
// with the call shapes of the real API (level 0 of the paper's stack,
// Fig. 5). Functional execution runs on the IR interpreter; timing
// studies use internal/sim instead.
//
// The accelOS runtime (internal/accelos) interposes on this API through
// ProxyCL exactly as the paper's runtime interposes on vendor OpenCL.
package opencl

import (
	"fmt"
	"sync"

	"repro/internal/clc"
	"repro/internal/device"
	"repro/internal/interp"
	"repro/internal/ir"
)

// Platform pairs the API with a modeled device.
type Platform struct {
	Dev *device.Platform
}

// GetPlatforms lists the available platforms (the paper's two
// evaluation machines).
func GetPlatforms() []*Platform {
	var ps []*Platform
	for _, d := range device.Platforms() {
		ps = append(ps, &Platform{Dev: d})
	}
	return ps
}

// Context owns device memory and programs.
type Context struct {
	Plat *Platform

	mu        sync.Mutex
	allocated int64
}

// CreateContext returns a context on the platform.
func (p *Platform) CreateContext() *Context {
	return &Context{Plat: p}
}

// GlobalMemBytes returns the device memory capacity.
func (c *Context) GlobalMemBytes() int64 {
	return c.Plat.Dev.GlobalMemMB * 1024 * 1024
}

// AllocatedBytes returns the current device memory usage.
func (c *Context) AllocatedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.allocated
}

// Buffer is a device memory allocation.
type Buffer struct {
	ctx  *Context
	Size int64
	// Region is the backing store; the accelOS runtime binds it to the
	// interpreter machine at launch time.
	Bytes []byte

	released bool
}

// CreateBuffer allocates device memory.
func (c *Context) CreateBuffer(size int64) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("opencl: invalid buffer size %d", size)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.allocated+size > c.GlobalMemBytes() {
		return nil, ErrOutOfMemory
	}
	c.allocated += size
	return &Buffer{ctx: c, Size: size, Bytes: make([]byte, size)}, nil
}

// ErrOutOfMemory mirrors CL_MEM_OBJECT_ALLOCATION_FAILURE.
var ErrOutOfMemory = fmt.Errorf("opencl: device memory exhausted")

// Release frees the buffer's device memory.
func (b *Buffer) Release() {
	if b.released {
		return
	}
	b.released = true
	b.ctx.mu.Lock()
	b.ctx.allocated -= b.Size
	b.ctx.mu.Unlock()
}

// Program is kernel source plus its build product.
type Program struct {
	Ctx    *Context
	Source string
	Module *ir.Module
}

// CreateProgramWithSource registers kernel source.
func (c *Context) CreateProgramWithSource(src string) *Program {
	return &Program{Ctx: c, Source: src}
}

// Build compiles the program ("vendor compiler" path). The accelOS JIT
// intercepts this step and substitutes the transformed module.
func (p *Program) Build() error {
	if p.Module != nil {
		return nil
	}
	m, err := clc.Compile(p.Source, "program")
	if err != nil {
		return fmt.Errorf("opencl: build failed: %w", err)
	}
	p.Module = m
	return nil
}

// Kernel is a program entry point with bound arguments.
type Kernel struct {
	Prog *Program
	Name string

	args []arg
}

type arg struct {
	set bool
	buf *Buffer
	val interp.Value
}

// CreateKernel resolves a kernel by name.
func (p *Program) CreateKernel(name string) (*Kernel, error) {
	if p.Module == nil {
		return nil, fmt.Errorf("opencl: program not built")
	}
	f := p.Module.Lookup(name)
	if f == nil || !f.Kernel {
		return nil, fmt.Errorf("opencl: kernel %q not found", name)
	}
	return &Kernel{Prog: p, Name: name, args: make([]arg, len(f.Params))}, nil
}

// NumArgs returns the kernel's declared argument count.
func (k *Kernel) NumArgs() int { return len(k.args) }

// SetArgBuffer binds a buffer argument.
func (k *Kernel) SetArgBuffer(i int, b *Buffer) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("opencl: argument index %d out of range", i)
	}
	k.args[i] = arg{set: true, buf: b}
	return nil
}

// SetArgInt32 binds an int scalar.
func (k *Kernel) SetArgInt32(i int, v int32) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("opencl: argument index %d out of range", i)
	}
	k.args[i] = arg{set: true, val: interp.IntV(int64(v))}
	return nil
}

// SetArgInt64 binds a long scalar.
func (k *Kernel) SetArgInt64(i int, v int64) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("opencl: argument index %d out of range", i)
	}
	k.args[i] = arg{set: true, val: interp.LongV(v)}
	return nil
}

// SetArgFloat32 binds a float scalar.
func (k *Kernel) SetArgFloat32(i int, v float32) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("opencl: argument index %d out of range", i)
	}
	k.args[i] = arg{set: true, val: interp.FloatV(float64(v))}
	return nil
}

// NDRange is a launch geometry.
type NDRange = interp.NDRange

// CommandQueue executes launches in order.
type CommandQueue struct {
	Ctx *Context
	mu  sync.Mutex
}

// CreateCommandQueue returns an in-order queue.
func (c *Context) CreateCommandQueue() *CommandQueue {
	return &CommandQueue{Ctx: c}
}

// EnqueueWriteBuffer copies host bytes into a buffer.
func (q *CommandQueue) EnqueueWriteBuffer(b *Buffer, off int64, data []byte) error {
	if off < 0 || off+int64(len(data)) > b.Size {
		return fmt.Errorf("opencl: write outside buffer bounds")
	}
	copy(b.Bytes[off:], data)
	return nil
}

// EnqueueReadBuffer copies buffer bytes back to the host.
func (q *CommandQueue) EnqueueReadBuffer(b *Buffer, off int64, out []byte) error {
	if off < 0 || off+int64(len(out)) > b.Size {
		return fmt.Errorf("opencl: read outside buffer bounds")
	}
	copy(out, b.Bytes[off:])
	return nil
}

// EnqueueNDRangeKernel launches the kernel synchronously (the in-order
// queue model: Finish is implicit per launch).
func (q *CommandQueue) EnqueueNDRangeKernel(k *Kernel, nd NDRange) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return launchOnModule(k.Prog.Module, k, nd, nil)
}

// launchOnModule runs the kernel on the interpreter, binding buffers to
// machine regions and copying results back. extraArgs (used by the
// accelOS scheduler for the RT descriptor) are appended after the user
// arguments.
func launchOnModule(mod *ir.Module, k *Kernel, nd NDRange, extraArgs []interp.Value) error {
	mach := interp.NewMachine(mod)
	vals := make([]interp.Value, 0, len(k.args)+len(extraArgs))
	type binding struct {
		buf *Buffer
		r   *interp.Region
	}
	var binds []binding
	for i, a := range k.args {
		if !a.set {
			return fmt.Errorf("opencl: kernel %q argument %d not set", k.Name, i)
		}
		if a.buf != nil {
			r := mach.NewRegion(a.buf.Size, ir.Global)
			copy(r.Bytes, a.buf.Bytes)
			binds = append(binds, binding{buf: a.buf, r: r})
			vals = append(vals, interp.Value{K: ir.Pointer, P: interp.Ptr{R: r}})
			continue
		}
		vals = append(vals, a.val)
	}
	vals = append(vals, extraArgs...)
	if err := mach.Launch(k.Name, vals, nd); err != nil {
		return err
	}
	for _, b := range binds {
		copy(b.buf.Bytes, b.r.Bytes)
	}
	return nil
}

// LaunchTransformed is the hook the accelOS Kernel Scheduler uses: it
// launches kernel name from an arbitrary (transformed) module with the
// RT descriptor appended and a reduced physical grid.
func LaunchTransformed(mod *ir.Module, k *Kernel, nd NDRange, rtWords []int64, physGroups int64) error {
	rt := make([]byte, len(rtWords)*8)
	for i, w := range rtWords {
		for b := 0; b < 8; b++ {
			rt[i*8+b] = byte(uint64(w) >> (8 * b))
		}
	}
	rtBuf := &Buffer{Size: int64(len(rt)), Bytes: rt}
	k2 := &Kernel{Prog: &Program{Module: mod}, Name: k.Name, args: append(append([]arg{}, k.args...), arg{set: true, buf: rtBuf})}
	phys := NDRange{
		Dims:   nd.Dims,
		Global: [3]int64{physGroups * nd.Local[0], nd.Local[1], nd.Local[2]},
		Local:  nd.Local,
	}
	return launchOnModule(mod, k2, phys, nil)
}
