package opencl

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/rtlib"
)

// launchInjector is the process-wide chaos injector consulted at Step's
// SliceDelay point. The disabled-path cost is one atomic load per slice
// (guarded <3% by the bench-fault CI job).
var launchInjector atomic.Pointer[fault.Injector]

// SetFaultInjector installs (or, with nil, removes) the chaos injector
// for the launch path.
func SetFaultInjector(in *fault.Injector) {
	if in == nil {
		launchInjector.Store(nil)
		return
	}
	launchInjector.Store(in)
}

// MachinePool keeps interpreter machines alive across launches so the
// hot path stops paying per-launch machine construction, keyed by module
// (a machine executes exactly one module). Released machines are reset
// (their region registry dropped) before reuse so bound buffer bytes are
// not kept alive between launches.
type MachinePool struct {
	mu   sync.Mutex
	free map[*ir.Module][]*interp.Machine
	// prof, when set, is installed on every machine the pool hands out
	// (new or reused), so one SetProfiler call covers launches already
	// drawing on parked machines. nextMach names machines "mach-N" in
	// construction order for trace output.
	prof *interp.Profiler
	// warp, when set, receives per-launch warp execution stats from
	// every machine the pool hands out (see interp.WarpStatsSink).
	warp interp.WarpStatsSink
	// tier, when set, is the tiered-execution controller: machines the
	// pool hands out notify it after each launch, and launch handles
	// resolve their program through it (tier-0 first, hot-swap later).
	// With a tier controller and no explicit profiler, the controller's
	// own profiler is installed so hotness counts accumulate.
	tier     *interp.TierController
	nextMach int

	workersOnce sync.Once
	workers     *interp.WorkerPool
}

// maxPooledMachines bounds the idle machines retained per module; bursts
// beyond it allocate and discard. maxPooledModules bounds how many
// distinct modules keep idle machines at all: a long-lived daemon JITs a
// fresh module per application program, and without the cap every
// retired program would pin its module (and up to maxPooledMachines
// machines) in the pool forever.
const (
	maxPooledMachines = 8
	maxPooledModules  = 32
)

// NewMachinePool returns an empty pool.
func NewMachinePool() *MachinePool {
	return &MachinePool{free: make(map[*ir.Module][]*interp.Machine)}
}

// Workers returns the pool's persistent worker set (started on first
// use): a long-lived group of goroutines that all VM launches on this
// pool's machines borrow parallel group runners from, instead of
// spawning up to GOMAXPROCS goroutines per launch.
func (p *MachinePool) Workers() *interp.WorkerPool {
	p.workersOnce.Do(func() { p.workers = interp.NewWorkerPool(0) })
	return p.workers
}

// SetProfiler installs (or, with nil, removes) a VM execution profiler
// on every machine the pool subsequently hands out, including reused
// ones. The profiler itself is concurrency-safe, so all of the pool's
// machines share it.
func (p *MachinePool) SetProfiler(prof *interp.Profiler) {
	p.mu.Lock()
	p.prof = prof
	p.mu.Unlock()
}

// SetWarpStats installs (or, with nil, removes) a warp-statistics sink
// on every machine the pool subsequently hands out, including reused
// ones. The sink must be concurrency-safe.
func (p *MachinePool) SetWarpStats(s interp.WarpStatsSink) {
	p.mu.Lock()
	p.warp = s
	p.mu.Unlock()
}

// SetTierController installs (or, with nil, removes) the tiered-
// execution controller on the pool: subsequently acquired machines
// notify it after each launch, and NewLaunchHandle resolves programs
// through it (cheap tier-0 compile first, background tier-1 later).
func (p *MachinePool) SetTierController(tc *interp.TierController) {
	p.mu.Lock()
	p.tier = tc
	p.mu.Unlock()
}

// TierController returns the installed tiered-execution controller
// (nil without one).
func (p *MachinePool) TierController() *interp.TierController {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tier
}

// seedLocked installs the pool's shared sinks on a machine about to be
// handed out. With a tier controller and no explicit profiler, the
// controller's profiler is used so its hotness estimates have data.
func (p *MachinePool) seedLocked(m *interp.Machine) {
	m.Profiler = p.prof
	if m.Profiler == nil && p.tier != nil {
		m.Profiler = p.tier.Profiler()
	}
	m.WarpStats = p.warp
	m.Tier = p.tier
}

// Acquire returns a machine for the module, reusing an idle one when
// available. Machines are seeded with the pool's persistent worker set.
func (p *MachinePool) Acquire(mod *ir.Module) *interp.Machine {
	w := p.Workers()
	p.mu.Lock()
	defer p.mu.Unlock()
	ms := p.free[mod]
	if n := len(ms); n > 0 {
		m := ms[n-1]
		if n == 1 {
			// Drop emptied keys so dead modules do not accumulate.
			delete(p.free, mod)
		} else {
			p.free[mod] = ms[:n-1]
		}
		p.seedLocked(m)
		return m
	}
	m := interp.NewMachine(mod)
	m.Workers = w
	p.seedLocked(m)
	m.Name = fmt.Sprintf("mach-%d", p.nextMach)
	p.nextMach++
	return m
}

// Release resets the machine and returns it to the pool. Machines for
// modules beyond the retention caps are discarded instead of parked.
func (p *MachinePool) Release(m *interp.Machine) {
	m.Reset()
	p.mu.Lock()
	defer p.mu.Unlock()
	ms, known := p.free[m.Mod]
	if !known && len(p.free) >= maxPooledModules {
		return
	}
	if len(ms) < maxPooledMachines {
		p.free[m.Mod] = append(ms, m)
	}
}

// Idle reports how many machines are parked in the pool (tests and
// monitoring).
func (p *MachinePool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, ms := range p.free {
		n += len(ms)
	}
	return n
}

// fallbackPool serves launches that are not tied to a platform (the
// LaunchTransformed convenience entry point).
var fallbackPool = NewMachinePool()

// DefaultSliceRounds is how many dequeue rounds each physical work-group
// gets per slice: the slice budget is PhysWGs·Chunk·rounds virtual
// groups. Small enough that the host regains control frequently (so a
// re-plan lands quickly), large enough to amortize slice turnaround.
const DefaultSliceRounds = 8

// LaunchHandle is one in-flight transformed kernel execution, run as a
// sequence of virtual-group-range slices. Each slice rewrites the RT
// descriptor's dequeue cursor and horizon (rtlib.RTNext/RTTotal) and the
// chunk size, then executes the scheduling kernel with the currently
// planned number of physical work-groups; between slices the host (the
// accelOS Kernel Scheduler) may push a new plan with UpdatePlan — the
// paper's §5 dynamic adaptation, live. Buffers are bound zero-copy: the
// interpreter reads and writes opencl.Buffer.Bytes in place, so large
// buffers cost nothing per launch and concurrent launches sharing a
// buffer cannot lose each other's updates to whole-buffer copy-back.
type LaunchHandle struct {
	pool *MachinePool
	mach *interp.Machine
	// machName is kept past finishLocked (which drops mach) so trace
	// consumers can still name the machine the execution ran on.
	machName string
	name     string
	args     []interp.Value
	nd       NDRange // virtual (original) geometry
	rt       []byte  // RT descriptor image, bound as a machine region

	mu       sync.Mutex
	phys     int64
	chunk    int64
	rounds   int64
	total    int64
	consumed int64
	done     bool
	cancel   error // pending abort, applied at the next slice boundary
	err      error

	// Tiered execution: mod and progVer let Step re-resolve the shared
	// program at each slice boundary when a background promotion bumped
	// the hot-swap generation; pinned (an explicit UseProgram call)
	// opts the handle out, and tier mirrors the running program's tier.
	mod     *ir.Module
	progVer uint64
	pinned  bool
	tier    int
}

// NewLaunchHandle binds the kernel's arguments and the RT descriptor
// into a pooled machine for the platform (nil platform uses a shared
// pool) and returns a handle ready to Step. phys and chunk seed the
// plan; UpdatePlan changes both between slices.
func NewLaunchHandle(plat *Platform, mod *ir.Module, k *Kernel, nd NDRange, rtWords []int64, phys, chunk int64) (*LaunchHandle, error) {
	if err := nd.Validate(); err != nil {
		return nil, err
	}
	pool := fallbackPool
	if plat != nil {
		pool = plat.Machines()
	}
	mach := pool.Acquire(mod)
	// The handle's machine executes mod (usually the JIT-transformed
	// module, not k's build product); resolve its bytecode through the
	// shared cache so every slice — and every pooled machine that later
	// serves this module — runs the same compiled form. Under a tier
	// controller the first resolution is the cheap tier-0 compile.
	var prog *interp.Prog
	if tc := pool.TierController(); tc != nil {
		prog = tc.ProgramFor(mod)
	} else {
		prog = interp.SharedProgram(mod)
	}
	ver := interp.ProgramVersion()
	mach.UseProgram(prog)
	args := make([]interp.Value, 0, len(k.args)+1)
	for i, a := range k.args {
		if !a.set {
			pool.Release(mach)
			return nil, fmt.Errorf("opencl: kernel %q argument %d not set", k.Name, i)
		}
		switch {
		case a.buf != nil:
			r := mach.BindRegion(a.buf.Bytes, ir.Global)
			args = append(args, interp.Value{K: ir.Pointer, P: interp.Ptr{R: r}})
		case a.localSize > 0:
			args = append(args, interp.LocalArgV(a.localSize))
		default:
			args = append(args, a.val)
		}
	}
	img := rtlib.EncodeRT(rtWords)
	r := mach.BindRegion(img, ir.Global)
	args = append(args, interp.Value{K: ir.Pointer, P: interp.Ptr{R: r}})

	h := &LaunchHandle{
		pool:     pool,
		mach:     mach,
		machName: mach.Name,
		name:     k.Name,
		args:     args,
		nd:       nd,
		rt:       img,
		rounds:   DefaultSliceRounds,
		total:    rtWords[rtlib.RTTotal],
		mod:      mod,
		progVer:  ver,
		tier:     prog.Tier(),
	}
	h.setPlan(phys, chunk)
	return h, nil
}

func (h *LaunchHandle) setPlan(phys, chunk int64) {
	if phys < 1 {
		phys = 1
	}
	if chunk < 1 {
		chunk = 1
	}
	h.phys, h.chunk = phys, chunk
}

// UseProgram overrides the compiled bytecode the handle's machine
// executes (the parity suite pins O0/O1 compile variants of the same
// module with it). The handle is pinned afterwards: slice boundaries
// stop re-resolving the shared program, so a concurrent tier promotion
// cannot displace the explicit choice. No-op once the execution
// finished.
func (h *LaunchHandle) UseProgram(p *interp.Prog) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.done {
		h.mach.UseProgram(p)
		h.pinned = true
		h.tier = p.Tier()
	}
}

// Tier returns the optimization tier of the program the handle ran its
// most recent slice with (0 until a promotion is picked up).
func (h *LaunchHandle) Tier() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tier
}

// UpdatePlan installs a new physical work-group allocation and chunk
// size; it takes effect at the next slice boundary. Calls after the
// execution completed are no-ops.
func (h *LaunchHandle) UpdatePlan(phys, chunk int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		return
	}
	h.setPlan(phys, chunk)
}

// SetSliceRounds tunes how many dequeue rounds per worker one slice
// covers (DefaultSliceRounds if never called; values < 1 clamp to 1).
func (h *LaunchHandle) SetSliceRounds(n int64) {
	if n < 1 {
		n = 1
	}
	h.mu.Lock()
	h.rounds = n
	h.mu.Unlock()
}

// MachineName names the pooled interpreter machine serving (or, after
// completion, having served) this execution — the trace "thread" slice
// spans land on. Empty for machines constructed outside a pool.
func (h *LaunchHandle) MachineName() string { return h.machName }

// Plan returns the currently installed physical allocation.
func (h *LaunchHandle) Plan() (phys, chunk int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.phys, h.chunk
}

// Progress reports how many virtual groups have been executed out of the
// total.
func (h *LaunchHandle) Progress() (consumed, total int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.consumed, h.total
}

// Done reports whether the execution finished (successfully or not).
func (h *LaunchHandle) Done() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.done
}

// Err returns the execution fault, if any.
func (h *LaunchHandle) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// Cancel requests the execution abort with the given error (e.g. a
// buffer released out from under the launch). The abort lands at the
// next slice boundary — never mid-slice, so the machine is released only
// when idle. Already finished executions ignore it.
func (h *LaunchHandle) Cancel(err error) {
	if err == nil {
		err = fmt.Errorf("opencl: launch cancelled")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done || h.cancel != nil {
		return
	}
	h.cancel = err
}

// Abort cancels like Cancel and additionally interrupts the machine
// mid-slice: a kernel stuck inside one slice never reaches the slice
// boundary where Cancel lands, so the machine's next instruction-budget
// flush traps instead. The runtime's runaway-kernel watchdog uses this;
// the machine is still released only on the executing goroutine, at the
// trap's slice return.
func (h *LaunchHandle) Abort(err error) {
	if err == nil {
		err = fmt.Errorf("opencl: launch aborted")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		return
	}
	if h.cancel == nil {
		h.cancel = err
	}
	if h.mach != nil {
		h.mach.Interrupt(err.Error())
	}
}

// ResumeAt seeds the consumed prefix: the first Step dequeues from
// virtual group consumed instead of 0. The fault-tolerant runtime uses
// this to relaunch an execution evicted from a failed device on a
// healthy one — buffers are host-resident, so the completed slices'
// writes survive the device and only the remaining range re-executes.
// Clamped to [0, total]; a no-op once the handle has stepped or
// finished.
func (h *LaunchHandle) ResumeAt(consumed int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done || h.consumed != 0 {
		return
	}
	if consumed < 0 {
		consumed = 0
	}
	if consumed > h.total {
		consumed = h.total
	}
	h.consumed = consumed
}

// Step executes one slice: it advances the RT descriptor's dequeue
// cursor to the consumed prefix, sets the slice horizon and chunk, and
// runs the scheduling kernel with the planned physical work-groups. The
// kernel's work-groups atomically dequeue chunks until the horizon is
// reached, then terminate, returning control to the host. Step reports
// whether the execution is complete.
func (h *LaunchHandle) Step() (done bool, err error) {
	h.mu.Lock()
	if h.done {
		defer h.mu.Unlock()
		return true, h.err
	}
	if h.cancel != nil {
		defer h.mu.Unlock()
		h.err = h.cancel
		h.finishLocked()
		return true, h.err
	}
	// Slice boundary: pick up a background tier promotion. The version
	// check is one atomic load on the common (no-swap) path; in-flight
	// slices are never interrupted — the old program stays valid until
	// this point, and programs are immutable.
	if !h.pinned {
		if v := interp.ProgramVersion(); v != h.progVer {
			h.progVer = v
			if p := interp.SharedProgram(h.mod); p != nil {
				h.mach.UseProgram(p)
				h.tier = p.Tier()
			}
		}
	}
	phys, chunk, consumed := h.phys, h.chunk, h.consumed
	budget := phys * chunk * h.rounds
	if budget < 1 {
		budget = 1
	}
	if remaining := h.total - consumed; budget > remaining {
		budget = remaining
	}
	eff := consumed + budget
	// Extra workers past the slice budget would dequeue nothing; do not
	// spawn them.
	if budget < phys {
		phys = budget
	}
	if phys < 1 {
		phys = 1
	}
	h.mu.Unlock()

	if inj := launchInjector.Load(); inj.Should(fault.SliceDelay) {
		time.Sleep(inj.SliceDelayDuration())
	}

	rtlib.PutWord(h.rt, rtlib.RTNext, consumed)
	rtlib.PutWord(h.rt, rtlib.RTChunk, chunk)
	rtlib.PutWord(h.rt, rtlib.RTTotal, eff)
	physND := NDRange{
		Dims:   h.nd.Dims,
		Global: [3]int64{phys * h.nd.Local[0], h.nd.Local[1], h.nd.Local[2]},
		Local:  h.nd.Local,
	}
	lerr := h.mach.Launch(h.name, h.args, physND)

	h.mu.Lock()
	defer h.mu.Unlock()
	if lerr != nil {
		h.err = lerr
		h.finishLocked()
		return true, lerr
	}
	h.consumed = eff
	if h.consumed >= h.total {
		h.finishLocked()
		return true, nil
	}
	return false, nil
}

// finishLocked retires the handle and returns its machine to the pool.
func (h *LaunchHandle) finishLocked() {
	if h.done {
		return
	}
	h.done = true
	h.pool.Release(h.mach)
	h.mach = nil
	h.args = nil
}

// Run drives the handle to completion slice by slice.
func (h *LaunchHandle) Run() error {
	for {
		done, err := h.Step()
		if done {
			return err
		}
	}
}
