package opencl

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// CommandQueue is the command half of the asynchronous host API. Every
// Enqueue* call validates its arguments, snapshots them, and returns an
// *Event immediately; the command body executes in the background once
// its wait list completes.
//
// Two orderings are supported:
//
//   - in-order (CreateCommandQueue): every command implicitly waits on
//     the previously enqueued command — the classic OpenCL queue, now
//     just the special case of a wait-list chain;
//   - out-of-order (CreateOutOfOrderQueue): only explicit wait-list
//     edges order commands; independent commands run concurrently.
//
// Commands on a failed dependency do not run: their event fails with the
// propagated cause. On an in-order queue that poisons the rest of the
// chain, exactly like a real device rejecting commands after an error.
type CommandQueue struct {
	Ctx *Context

	outOfOrder bool

	mu    sync.Mutex
	label string // telemetry identity ("" renders as "queue")
	chain *Event // in-order queues: last enqueued command's event
	group EventGroup
}

// SetLabel names the queue in telemetry output: command spans carry it
// as their process and DMA metrics as their queue label. The accelOS
// runtime sets it to the owning tenant's name.
func (q *CommandQueue) SetLabel(name string) {
	q.mu.Lock()
	q.label = name
	q.mu.Unlock()
}

// Label returns the telemetry name ("queue" when never set).
func (q *CommandQueue) Label() string {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.label == "" {
		return "queue"
	}
	return q.label
}

// CreateCommandQueue returns an in-order queue.
func (c *Context) CreateCommandQueue() *CommandQueue {
	return &CommandQueue{Ctx: c}
}

// CreateOutOfOrderQueue returns a queue in out-of-order execution mode:
// commands are ordered only by their wait lists.
func (c *Context) CreateOutOfOrderQueue() *CommandQueue {
	q := c.CreateCommandQueue()
	q.outOfOrder = true
	return q
}

// OutOfOrder reports the queue's execution mode.
func (q *CommandQueue) OutOfOrder() bool { return q.outOfOrder }

// enqueue is the dispatcher: it records the command's dependency edges
// (wait list plus, on in-order queues, the implicit chain), rejects
// cyclic wait lists, pins the buffers the command touches, and releases
// the command body to a background goroutine once every dependency has
// completed. It returns the command's event without blocking.
//
// op and nbytes describe the command for telemetry: when the context
// carries a tracer/registry, completion emits a span from the event's
// profiling stamps, and transfer commands (nbytes > 0) count DMA bytes
// and wall time under the queue's label.
func (q *CommandQueue) enqueue(what, op string, nbytes int, bufs []*Buffer, waits []*Event, run func() error) (*Event, error) {
	deps := compactWaits(waits)
	q.mu.Lock()
	if !q.outOfOrder && q.chain != nil {
		deps = append(deps, q.chain)
	}
	if err := CheckWaitList(deps...); err != nil {
		q.mu.Unlock()
		return nil, fmt.Errorf("%s: %w", what, err)
	}
	pinned := make([]*Buffer, 0, len(bufs))
	for _, b := range bufs {
		if err := b.Pin(); err != nil {
			for _, p := range pinned {
				p.Unpin()
			}
			q.mu.Unlock()
			return nil, fmt.Errorf("%s: %w", what, err)
		}
		pinned = append(pinned, b)
	}
	ev := newEvent(deps)
	if !q.outOfOrder {
		q.chain = ev
	}
	q.group.Add(ev)
	q.mu.Unlock()

	ev.OnComplete(func(*Event) {
		for _, b := range pinned {
			b.Unpin()
		}
	})

	if tr, reg := q.Ctx.telemetrySinks(); tr != nil || reg != nil {
		label := q.Label()
		ev.OnComplete(func(e *Event) {
			p, perr := e.ProfilingInfo()
			if perr != nil {
				return
			}
			status := "ok"
			if e.Err() != nil {
				status = "failed"
			}
			if tr != nil {
				args := []telemetry.Arg{{Key: "status", Val: status}}
				if nbytes > 0 {
					args = append(args, telemetry.Arg{Key: "bytes", Val: strconv.Itoa(nbytes)})
				}
				// Command spans cover the running body; commands that
				// never ran (failed dependency) have no running stamp and
				// emit nothing.
				if !p.Running.IsZero() {
					tr.Complete(0, label, "commands", "command", op, p.Running, p.Complete, args...)
				}
			}
			if reg != nil && nbytes > 0 && status == "ok" {
				reg.Counter("dma_bytes_total", telemetry.L("queue", label)).Add(int64(nbytes))
				reg.Histogram("dma_ns", telemetry.L("queue", label)).Observe(int64(p.Duration()))
			}
		})
	}

	WhenAll(deps, func(depErr error) {
		if depErr != nil {
			ev.finish(fmt.Errorf("%s: wait-list dependency failed: %w", what, depErr))
			return
		}
		ev.transition(EventSubmitted)
		go func() {
			// A buffer released while the command sat in the queue fails
			// the command instead of touching freed memory.
			for _, b := range pinned {
				if b.Released() {
					ev.finish(fmt.Errorf("%s: %w", what, ErrBufferReleased))
					return
				}
			}
			ev.transition(EventRunning)
			err := run()
			if err != nil {
				err = fmt.Errorf("%s: %w", what, err)
			}
			ev.finish(err)
		}()
	})
	return ev, nil
}

// EnqueueWrite schedules a host→device copy and returns its event.
// The data slice must stay untouched until the event completes.
func (q *CommandQueue) EnqueueWrite(b *Buffer, off int64, data []byte, waits ...*Event) (*Event, error) {
	if off < 0 || off+int64(len(data)) > b.Size {
		return nil, fmt.Errorf("opencl: write outside buffer bounds")
	}
	return q.enqueue("opencl: write", "write", len(data), []*Buffer{b}, waits, func() error {
		if d := q.Ctx.dmaDelay(len(data)); d > 0 {
			time.Sleep(d)
		}
		copy(b.Bytes[off:], data)
		return nil
	})
}

// EnqueueRead schedules a device→host copy and returns its event. The
// out slice is filled when the event completes.
func (q *CommandQueue) EnqueueRead(b *Buffer, off int64, out []byte, waits ...*Event) (*Event, error) {
	if off < 0 || off+int64(len(out)) > b.Size {
		return nil, fmt.Errorf("opencl: read outside buffer bounds")
	}
	return q.enqueue("opencl: read", "read", len(out), []*Buffer{b}, waits, func() error {
		if d := q.Ctx.dmaDelay(len(out)); d > 0 {
			time.Sleep(d)
		}
		copy(out, b.Bytes[off:])
		return nil
	})
}

// EnqueueKernel schedules a kernel launch and returns its event. The
// kernel's argument bindings are snapshotted at enqueue time, so the
// caller may rebind them for the next launch immediately. Buffers are
// bound into the machine zero-copy when the command runs.
func (q *CommandQueue) EnqueueKernel(k *Kernel, nd NDRange, waits ...*Event) (*Event, error) {
	if err := nd.Validate(); err != nil {
		return nil, err
	}
	args := make([]arg, len(k.args))
	copy(args, k.args)
	var bufs []*Buffer
	for i, a := range args {
		if !a.set {
			return nil, fmt.Errorf("opencl: kernel %q argument %d not set", k.Name, i)
		}
		if a.buf != nil {
			bufs = append(bufs, a.buf)
		}
	}
	pool := fallbackPool
	if k.Prog.Ctx != nil {
		pool = k.Prog.Ctx.Plat.Machines()
	}
	mod, name, prog := k.Prog.Module, k.Name, k.Prog.Compiled()
	return q.enqueue(fmt.Sprintf("opencl: kernel %q", name), "kernel "+name, 0, bufs, waits, func() error {
		mach := pool.Acquire(mod)
		defer pool.Release(mach)
		mach.UseProgram(prog)
		vals := make([]interp.Value, 0, len(args))
		for _, a := range args {
			switch {
			case a.buf != nil:
				r := mach.BindRegion(a.buf.Bytes, ir.Global)
				vals = append(vals, interp.Value{K: ir.Pointer, P: interp.Ptr{R: r}})
			case a.localSize > 0:
				vals = append(vals, interp.LocalArgV(a.localSize))
			default:
				vals = append(vals, a.val)
			}
		}
		return mach.Launch(name, vals, nd)
	})
}

// EnqueueMarker returns an event that completes when every event in the
// wait list has completed (on an in-order queue, also every previously
// enqueued command) — a join point for fan-in dependency graphs.
func (q *CommandQueue) EnqueueMarker(waits ...*Event) (*Event, error) {
	return q.enqueue("opencl: marker", "marker", 0, nil, waits, func() error { return nil })
}

// Flush returns once every enqueued command has been issued to the
// dispatcher. Commands are dispatched eagerly at enqueue time, so Flush
// is complete by construction; it exists for call-shape compatibility.
func (q *CommandQueue) Flush() {}

// Finish blocks until every command enqueued so far has reached a
// terminal status and returns nil; per-command errors are reported on
// the commands' own events. A wait list referencing a user event that is
// never completed blocks Finish — cyclic wait lists, which could never
// complete, are rejected at enqueue time instead.
func (q *CommandQueue) Finish() error {
	q.group.Wait()
	return nil
}

// Pending reports how many enqueued commands have not yet completed.
func (q *CommandQueue) Pending() int {
	return q.group.Pending()
}

// --- blocking wrappers (the pre-event API call shapes) ----------------

// EnqueueWriteBuffer copies host bytes into a buffer, blocking until the
// copy completes (thin wrapper over EnqueueWrite + Wait).
func (q *CommandQueue) EnqueueWriteBuffer(b *Buffer, off int64, data []byte) error {
	ev, err := q.EnqueueWrite(b, off, data)
	if err != nil {
		return err
	}
	return ev.Wait()
}

// EnqueueReadBuffer copies buffer bytes back to the host, blocking until
// the copy completes (thin wrapper over EnqueueRead + Wait).
func (q *CommandQueue) EnqueueReadBuffer(b *Buffer, off int64, out []byte) error {
	ev, err := q.EnqueueRead(b, off, out)
	if err != nil {
		return err
	}
	return ev.Wait()
}

// EnqueueNDRangeKernel launches the kernel and blocks until it completes
// (thin wrapper over EnqueueKernel + Wait).
func (q *CommandQueue) EnqueueNDRangeKernel(k *Kernel, nd NDRange) error {
	ev, err := q.EnqueueKernel(k, nd)
	if err != nil {
		return err
	}
	return ev.Wait()
}
