package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestConcurrentSpanEmission hammers one tracer from parallel emitters —
// the shape of parallel work-group workers all completing slice spans —
// and checks nothing is lost below the cap and IDs stay unique. Run
// under -race this is the data-race gate for the span path.
func TestConcurrentSpanEmission(t *testing.T) {
	const (
		workers = 8
		each    = 500
	)
	tr := New(workers * each * 2)
	base := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			proc := fmt.Sprintf("proc%d", w%2)
			for i := 0; i < each; i++ {
				start := base.Add(time.Duration(i) * time.Microsecond)
				id := tr.Complete(0, proc, "worker", "test", "span", start, start.Add(time.Microsecond),
					Arg{"i", fmt.Sprint(i)})
				if id == 0 {
					t.Errorf("span dropped below cap")
					return
				}
				tr.Instant(id, proc, "worker", "test", "marker", start)
			}
		}(w)
	}
	wg.Wait()

	spans := tr.Spans()
	if got, want := len(spans), workers*each*2; got != want {
		t.Fatalf("got %d spans, want %d", got, want)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d spans below the cap", tr.Dropped())
	}
	seen := make(map[int64]bool)
	for _, s := range spans {
		if s.ID == 0 || seen[s.ID] {
			t.Fatalf("duplicate or zero span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
}

// TestTracerBounded checks the buffer cap drops (and counts) overflow
// instead of growing.
func TestTracerBounded(t *testing.T) {
	tr := New(4)
	at := time.Now()
	for i := 0; i < 10; i++ {
		tr.Complete(0, "p", "t", "c", "n", at, at)
	}
	if tr.Len() != 4 {
		t.Fatalf("buffer holds %d spans, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

// TestNilTracer checks the disabled path is inert on every method.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	at := time.Now()
	if id := tr.Complete(0, "p", "t", "c", "n", at, at); id != 0 {
		t.Fatalf("nil tracer returned span ID %d", id)
	}
	tr.CompleteAs(1, 0, "p", "t", "c", "n", at, at)
	tr.Instant(0, "p", "t", "c", "n", at)
	if tr.NewID() != 0 || tr.Len() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer not inert")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil tracer export: %v", err)
	}
}

// TestChromeTraceGolden pins the exported JSON byte-for-byte against
// testdata/chrome_trace.json (regenerate with -update) and validates it
// parses as a trace_event document.
func TestChromeTraceGolden(t *testing.T) {
	tr := New(0)
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	ms := func(n int) time.Time { return base.Add(time.Duration(n) * time.Millisecond) }

	kern := tr.Complete(0, "tenant0", "exec-1", "kernel", "scale", ms(0), ms(10),
		Arg{"dev", "0"}, Arg{"status", "complete"})
	tr.Complete(kern, "tenant0", "exec-1", "kernel", "wait-list", ms(0), ms(2))
	tr.Complete(kern, "tenant0", "exec-1", "kernel", "execute", ms(2), ms(10))
	tr.Complete(kern, "devices", "mach-0", "slice", "scale", ms(2), ms(6),
		Arg{"progress", "32/64"})
	tr.Complete(kern, "devices", "mach-0", "slice", "scale", ms(6), ms(10),
		Arg{"progress", "64/64"})
	tr.Instant(0, "accelos", "scheduler", "sched", "replan", ms(6), Arg{"dev", "0"})
	tr.Complete(0, "tenant1", "queue", "command", "opencl: write", ms(1), ms(3),
		Arg{"bytes", "4096"})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export differs from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// Independent of the golden bytes, the document must be a valid
	// trace_event JSON object with the expected event population.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var xEvents, iEvents, mEvents int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			xEvents++
		case "i":
			iEvents++
		case "M":
			mEvents++
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event missing integer pid: %v", ev)
		}
	}
	if xEvents != 6 || iEvents != 1 {
		t.Fatalf("got %d X and %d i events, want 6 and 1", xEvents, iEvents)
	}
	if mEvents == 0 {
		t.Fatal("no metadata (track name) events emitted")
	}
}
