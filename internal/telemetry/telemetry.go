// Package telemetry is the runtime-wide instrumentation subsystem: trace
// spans with parent/child links (exportable as Chrome trace_event JSON,
// see trace_json.go) and a metrics registry of atomic counters, gauges
// and lock-free bounded histograms (registry.go).
//
// Every entry point is safe on a nil receiver and returns immediately,
// so instrumented hot paths pay one predictable branch when telemetry is
// disabled — callers hold a possibly-nil *Tracer/*Registry and call
// through it unconditionally. The package depends only on the standard
// library; every layer of the runtime (interp, opencl, cluster, accelos)
// can import it without cycles.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Arg is one key/value annotation on a span (rendered under "args" in
// the Chrome trace export).
type Arg struct {
	Key string
	Val string
}

// Span is one recorded interval (or instant) of runtime activity. Proc
// and Thread name the track the span renders on — Chrome groups spans by
// process, then by thread — and Parent links a child span to the ID of
// its enclosing one (0: a root span).
type Span struct {
	ID     int64
	Parent int64
	Proc   string // track group: tenant, device, subsystem
	Thread string // track within the group: execution, machine, queue
	Cat    string // Chrome event category (filterable in the viewer)
	Name   string
	Start  time.Time
	End    time.Time // == Start for instant events
	Args   []Arg

	// Instant marks a zero-duration marker event (Chrome "i" phase)
	// rather than a complete interval.
	Instant bool
}

// Duration is the span's wall-clock extent (zero for instants).
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// DefaultMaxSpans bounds the span buffer when New is given no explicit
// capacity. At ~130 spans per kernel-free command and a handful per
// kernel, 64k spans cover minutes of a busy multi-tenant run.
const DefaultMaxSpans = 1 << 16

// Tracer records spans into a bounded in-memory buffer. All methods are
// safe for concurrent use and for nil receivers (a nil *Tracer records
// nothing and costs one branch).
type Tracer struct {
	maxSpans int
	nextID   atomic.Int64
	dropped  atomic.Int64

	mu    sync.Mutex
	spans []Span
}

// New returns a tracer retaining at most maxSpans spans (<= 0 uses
// DefaultMaxSpans). Spans past the cap are counted in Dropped and
// discarded, so a runaway run degrades to a truncated trace instead of
// unbounded memory.
func New(maxSpans int) *Tracer {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Tracer{maxSpans: maxSpans}
}

// NewID pre-allocates a span ID so children recorded earlier can point
// at a parent recorded later (the runtime completes a kernel's root span
// after its slice spans). Returns 0 on a nil tracer.
func (t *Tracer) NewID() int64 {
	if t == nil {
		return 0
	}
	return t.nextID.Add(1)
}

// Complete records a finished interval and returns its span ID (0 when
// the tracer is nil or the buffer is full).
func (t *Tracer) Complete(parent int64, proc, thread, cat, name string, start, end time.Time, args ...Arg) int64 {
	if t == nil {
		return 0
	}
	return t.record(Span{
		ID: t.nextID.Add(1), Parent: parent,
		Proc: proc, Thread: thread, Cat: cat, Name: name,
		Start: start, End: end, Args: args,
	})
}

// CompleteAs is Complete with a caller-allocated ID (see NewID).
func (t *Tracer) CompleteAs(id, parent int64, proc, thread, cat, name string, start, end time.Time, args ...Arg) {
	if t == nil {
		return
	}
	t.record(Span{
		ID: id, Parent: parent,
		Proc: proc, Thread: thread, Cat: cat, Name: name,
		Start: start, End: end, Args: args,
	})
}

// Instant records a zero-duration marker event (e.g. a re-plan) and
// returns its span ID.
func (t *Tracer) Instant(parent int64, proc, thread, cat, name string, at time.Time, args ...Arg) int64 {
	if t == nil {
		return 0
	}
	return t.record(Span{
		ID: t.nextID.Add(1), Parent: parent,
		Proc: proc, Thread: thread, Cat: cat, Name: name,
		Start: at, End: at, Args: args, Instant: true,
	})
}

func (t *Tracer) record(s Span) int64 {
	t.mu.Lock()
	if len(t.spans) >= t.maxSpans {
		t.mu.Unlock()
		t.dropped.Add(1)
		return 0
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s.ID
}

// Spans returns a snapshot of the recorded spans in record order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Len reports how many spans are buffered.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped reports how many spans were discarded at the buffer cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}
