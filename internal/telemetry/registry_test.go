package telemetry

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestHistogramQuantilesAgainstSortedReference checks the bucketed
// estimator against exact quantiles from the sorted sample: estimates
// must land within the power-of-two bucket of the true value (a factor
// of two), and exactly on it for the extremes.
func TestHistogramQuantilesAgainstSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := newHistogram()
	n := 10000
	xs := make([]int64, n)
	for i := range xs {
		// Log-uniform over ~6 decades, like latency samples.
		xs[i] = int64(1 << uint(rng.Intn(20)))
		xs[i] += rng.Int63n(xs[i] + 1)
		h.Observe(xs[i])
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })

	exact := func(q float64) int64 {
		rank := int(q*float64(n)) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= n {
			rank = n - 1
		}
		return xs[rank]
	}
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		got := h.Quantile(q)
		want := float64(exact(q))
		if got < want/2 || got > want*2 {
			t.Errorf("q=%g: estimate %g outside factor-2 band of exact %g", q, got, want)
		}
	}
	if got, want := h.Quantile(0), float64(xs[0]); got != want {
		t.Errorf("q=0: got %g, want observed min %g", got, want)
	}
	if got, want := h.Quantile(1), float64(xs[n-1]); got != want {
		t.Errorf("q=1: got %g, want observed max %g", got, want)
	}
	if h.Count() != int64(n) {
		t.Errorf("count = %d, want %d", h.Count(), n)
	}
	var sum int64
	for _, x := range xs {
		sum += x
	}
	if h.Sum() != sum {
		t.Errorf("sum = %d, want %d", h.Sum(), sum)
	}
}

// TestHistogramSingleValue checks a degenerate distribution reports
// exact quantiles through the min/max clamp.
func TestHistogramSingleValue(t *testing.T) {
	h := newHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1000 {
			t.Fatalf("q=%g: got %g, want 1000", q, got)
		}
	}
	if h.Min() != 1000 || h.Max() != 1000 || h.Mean() != 1000 {
		t.Fatalf("min/max/mean = %d/%d/%g, want 1000", h.Min(), h.Max(), h.Mean())
	}
}

// TestHistogramConcurrent exercises the lock-free observe path from
// parallel writers (the -race gate for the metrics path).
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.Histogram("lat_ns", L("tenant", "t0"))
			c := r.Counter("ops_total", L("tenant", "t0"))
			for i := 1; i <= 1000; i++ {
				h.Observe(int64(i * (w + 1)))
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Histogram("lat_ns", L("tenant", "t0")).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Counter("ops_total", L("tenant", "t0")).Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

// TestRegistryWriteText checks the exposition: TYPE headers, label
// ordering, histogram expansion, determinism.
func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("dma_bytes_total", L("queue", "app1")).Add(4096)
	r.Counter("dma_bytes_total", L("queue", "app0")).Add(1024)
	r.Gauge("resident", L("dev", "0")).Set(3)
	h := r.Histogram("slice_ns", L("tenant", "app0"), L("dev", "0"))
	h.Observe(100)
	h.Observe(200)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dma_bytes_total counter",
		`dma_bytes_total{queue="app0"} 1024`,
		`dma_bytes_total{queue="app1"} 4096`,
		"# TYPE resident gauge",
		`resident{dev="0"} 3`,
		"# TYPE slice_ns histogram",
		`slice_ns_count{dev="0",tenant="app0"} 2`,
		`slice_ns_sum{dev="0",tenant="app0"} 300`,
		`quantile="0.99"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}

	var b2 strings.Builder
	if err := r.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if out != b2.String() {
		t.Error("WriteText output not deterministic across calls")
	}

	// Nil registry and collectors must be inert.
	var nr *Registry
	nr.Counter("x").Inc()
	nr.Gauge("x").Set(1)
	nr.Histogram("x").Observe(1)
	if err := nr.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
}
