package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// This file exports the tracer's span buffer in the Chrome trace_event
// JSON format (the "Trace Event Format" consumed by chrome://tracing and
// Perfetto): one "X" complete event per span, "i" instant events for
// markers, and "M" metadata events naming the process/thread tracks.
// Span Proc/Thread strings are interned to integer pid/tid as the format
// requires; the export is deterministic for a given span set (spans sort
// by start time then ID, track numbering follows that order).

// traceEvent is one trace_event record. Field order here is the field
// order in the output.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// usSince returns microseconds (the format's time unit) since epoch.
func usSince(epoch, t time.Time) float64 {
	return float64(t.Sub(epoch).Nanoseconds()) / 1e3
}

// WriteChromeTrace writes the buffered spans as a Chrome trace_event
// JSON document. Timestamps are microseconds relative to the earliest
// span start, so the trace opens at t=0 regardless of wall-clock time.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return writeChromeTrace(w, t.Spans())
}

// WriteChromeTraceSpans is the span-slice form of WriteChromeTrace, for
// callers that filter or merge span sets before export.
func WriteChromeTraceSpans(w io.Writer, spans []Span) error {
	return writeChromeTrace(w, append([]Span(nil), spans...))
}

func writeChromeTrace(w io.Writer, spans []Span) error {
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].ID < spans[j].ID
	})

	var epoch time.Time
	if len(spans) > 0 {
		epoch = spans[0].Start
	}

	// Intern process and thread names in sorted-span order.
	type track struct{ pid, tid int }
	pids := map[string]int{}
	tids := map[[2]string]track{}
	nextTid := map[int]int{}
	var events []traceEvent
	for _, s := range spans {
		pid, ok := pids[s.Proc]
		if !ok {
			pid = len(pids) + 1
			pids[s.Proc] = pid
			events = append(events, traceEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]string{"name": s.Proc},
			})
		}
		key := [2]string{s.Proc, s.Thread}
		tk, ok := tids[key]
		if !ok {
			nextTid[pid]++
			tk = track{pid: pid, tid: nextTid[pid]}
			tids[key] = tk
			events = append(events, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tk.tid,
				Args: map[string]string{"name": s.Thread},
			})
		}

		args := make(map[string]string, len(s.Args)+2)
		for _, a := range s.Args {
			args[a.Key] = a.Val
		}
		args["span_id"] = strconv.FormatInt(s.ID, 10)
		if s.Parent != 0 {
			args["parent"] = strconv.FormatInt(s.Parent, 10)
		}
		ev := traceEvent{
			Name: s.Name, Cat: s.Cat, TS: usSince(epoch, s.Start),
			Pid: tk.pid, Tid: tk.tid, Args: args,
		}
		if s.Instant {
			ev.Ph, ev.S = "i", "t"
		} else {
			d := usSince(s.Start, s.End)
			ev.Ph, ev.Dur = "X", &d
		}
		events = append(events, ev)
	}

	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", b, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "],\"displayTimeUnit\":\"ms\"}\n")
	return err
}
