package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the metrics half of the subsystem: a registry of named,
// labeled collectors. Counters and gauges are single atomics; histograms
// are lock-free fixed-size exponential bucket arrays, so the observe
// path never blocks a worker. Collector lookups take the registry lock,
// so hot paths should resolve their collectors once and hold them.

// Label is one dimension of a metric series (e.g. tenant="app3",
// dev="1").
type Label struct {
	Key string
	Val string
}

// L is shorthand for constructing a Label.
func L(key, val string) Label { return Label{Key: key, Val: val} }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (nil-safe).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one (nil-safe).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable atomic value.
type Gauge struct{ v atomic.Int64 }

// Set stores v (nil-safe).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by n (nil-safe).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of a Histogram: bucket 0 holds
// non-positive observations and bucket b >= 1 holds [2^(b-1), 2^b), so
// 64 buckets cover the whole non-negative int64 range (nanosecond
// durations, byte counts) with bounded memory and no resizing — the
// observe path is three atomic adds.
const histBuckets = 64

// Histogram is a lock-free bounded histogram over non-negative int64
// observations with power-of-two buckets. Quantiles are estimated by
// bucket scan with linear interpolation inside the located bucket, then
// clamped to the observed min/max.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid once count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value (negative values clamp to zero; nil-safe).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution: the bucket holding the target rank is located by
// cumulative scan, the value interpolated linearly inside its
// [2^(b-1), 2^b) range, and the estimate clamped to the observed
// min/max. The error is bounded by the bucket width (a factor of two).
// Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return float64(h.min.Load())
	}
	if q >= 1 {
		return float64(h.max.Load())
	}
	// Target rank in [1, total], matching the nearest-rank definition.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		n := h.buckets[b].Load()
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		var lo, hi float64
		if b == 0 {
			lo, hi = 0, 1
		} else {
			lo = float64(int64(1) << (b - 1))
			hi = lo * 2
		}
		// Position of the target rank inside this bucket, in (0, 1].
		frac := float64(rank-cum) / float64(n)
		est := lo + (hi-lo)*frac
		if mn := float64(h.min.Load()); est < mn {
			est = mn
		}
		if mx := float64(h.max.Load()); est > mx {
			est = mx
		}
		return est
	}
	return float64(h.max.Load())
}

// Registry is a process-wide store of named collectors. Series are keyed
// by metric name plus the sorted label set; the getter methods create on
// first use. All methods are nil-safe: a nil *Registry hands out nil
// collectors, whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	kinds    map[string]string // metric name -> "counter"|"gauge"|"histogram"
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    make(map[string]string),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// seriesKey renders name{k1="v1",k2="v2"} with labels sorted by key.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Val)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating on first use) the counter series for the
// name and label set.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[key]
	if c == nil {
		c = &Counter{}
		r.counters[key] = c
		r.kinds[name] = "counter"
	}
	return c
}

// Gauge returns (creating on first use) the gauge series for the name
// and label set.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[key]
	if g == nil {
		g = &Gauge{}
		r.gauges[key] = g
		r.kinds[name] = "gauge"
	}
	return g
}

// Histogram returns (creating on first use) the histogram series for the
// name and label set.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[key]
	if h == nil {
		h = newHistogram()
		r.hists[key] = h
		r.kinds[name] = "histogram"
	}
	return h
}

// CounterTotal sums a counter family's value across every label set.
// Nil-safe (returns 0). The chaos harness uses this to tally e.g.
// relaunches_total without enumerating kernels.
func (r *Registry) CounterTotal(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for key, c := range r.counters {
		if baseName(key) == name {
			total += c.Value()
		}
	}
	return total
}

// quantiles exported per histogram series by WriteText.
var textQuantiles = []float64{0.5, 0.9, 0.99}

// WriteText writes a Prometheus-style text snapshot of every series:
// "# TYPE" headers per metric family, one line per series (histograms
// expand to quantile/_count/_sum lines), sorted so output is
// deterministic. Nil-safe (writes nothing).
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	families := make(map[string][]string)
	addLine := func(name, text string) {
		families[name] = append(families[name], text)
	}
	for key, c := range r.counters {
		addLine(baseName(key), fmt.Sprintf("%s %d", key, c.Value()))
	}
	for key, g := range r.gauges {
		addLine(baseName(key), fmt.Sprintf("%s %d", key, g.Value()))
	}
	for key, h := range r.hists {
		name := baseName(key)
		for _, q := range textQuantiles {
			addLine(name, fmt.Sprintf("%s %g", withLabel(key, "quantile", fmt.Sprintf("%g", q)), h.Quantile(q)))
		}
		addLine(name, fmt.Sprintf("%s %d", suffixed(key, "_count"), h.Count()))
		addLine(name, fmt.Sprintf("%s %d", suffixed(key, "_sum"), h.Sum()))
	}
	kinds := make(map[string]string, len(r.kinds))
	for k, v := range r.kinds {
		kinds[k] = v
	}
	r.mu.Unlock()

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, kinds[n]); err != nil {
			return err
		}
		ls := families[n]
		sort.Strings(ls)
		for _, l := range ls {
			if _, err := fmt.Fprintln(w, l); err != nil {
				return err
			}
		}
	}
	return nil
}

// baseName strips the label set from a series key.
func baseName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// withLabel appends one label to a series key's label set.
func withLabel(key, k, v string) string {
	if strings.IndexByte(key, '{') >= 0 {
		return fmt.Sprintf("%s,%s=%q}", key[:len(key)-1], k, v)
	}
	return fmt.Sprintf("%s{%s=%q}", key, k, v)
}

// suffixed appends a name suffix before the label set.
func suffixed(key, suffix string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i] + suffix + key[i:]
	}
	return key + suffix
}
