package accelpass

import (
	"strings"
	"testing"

	"repro/internal/clc"
	"repro/internal/ir"
	"repro/internal/rtlib"
)

func transform(t *testing.T, src string) *Result {
	t.Helper()
	m, err := clc.Compile(src, "t")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := Transform(m)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	return res
}

func TestWrapperStructure(t *testing.T) {
	res := transform(t, `
kernel void k(global float* out, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) out[i] = 1.0f;
}
`)
	w := res.Module.Lookup("k")
	if w == nil || !w.Kernel {
		t.Fatal("scheduling wrapper missing")
	}
	// Signature: original params plus the RT descriptor.
	if len(w.Params) != 3 {
		t.Fatalf("wrapper has %d params, want 3 (out, n, __rt)", len(w.Params))
	}
	last := w.Params[len(w.Params)-1]
	want := ir.PointerTo(ir.I64T, ir.Global)
	if !last.Ty.Equal(want) {
		t.Errorf("last wrapper param is %s, want %s", last.Ty, want)
	}
	// The wrapper must contain the scheduling protocol: rt_env_init,
	// rt_sched_wgroup, barriers and a call to the compute function.
	text := w.String()
	for _, wantCall := range []string{"rt_env_init", "rt_sched_wgroup", "rt_is_master_workitem", "k__compute", "barrier"} {
		if !strings.Contains(text, wantCall) {
			t.Errorf("wrapper missing %s:\n%s", wantCall, text)
		}
	}
	// The SD block lives in local memory inside the wrapper.
	if !strings.Contains(text, "space local") {
		t.Errorf("wrapper has no local SD allocation:\n%s", text)
	}
}

func TestComputeFunctionInterface(t *testing.T) {
	res := transform(t, `
kernel void k(global const int* in, global int* out)
{
    out[get_global_id(0)] = in[get_group_id(0)];
}
`)
	cf := res.Module.Lookup("k__compute")
	if cf == nil {
		t.Fatal("compute function missing")
	}
	if cf.Kernel {
		t.Error("compute function still marked kernel")
	}
	// orig 2 params + rt, sd, hdlr.
	if len(cf.Params) != 5 {
		t.Fatalf("compute has %d params, want 5", len(cf.Params))
	}
	names := []string{"__rt", "__sd", "__hdlr"}
	for i, n := range names {
		if cf.Params[2+i].Nam != n {
			t.Errorf("param %d named %q, want %q", 2+i, cf.Params[2+i].Nam, n)
		}
	}
	// Builtins replaced with runtime equivalents carrying the handle.
	text := cf.String()
	if !strings.Contains(text, "rt_global_id") || !strings.Contains(text, "rt_group_id") {
		t.Errorf("builtins not replaced:\n%s", text)
	}
	if strings.Contains(text, "@get_global_id") {
		t.Errorf("raw builtin call left behind:\n%s", text)
	}
}

func TestMultiKernelModule(t *testing.T) {
	res := transform(t, `
kernel void a(global int* out) { out[get_global_id(0)] = 1; }
kernel void b(global int* out) { out[get_global_id(0)] = 2; }
`)
	if len(res.Kernels) != 2 {
		t.Fatalf("transformed %d kernels, want 2", len(res.Kernels))
	}
	for _, name := range []string{"a", "b"} {
		if f := res.Module.Lookup(name); f == nil || !f.Kernel {
			t.Errorf("kernel %s missing after transform", name)
		}
		if f := res.Module.Lookup(name + "__compute"); f == nil || f.Kernel {
			t.Errorf("compute function for %s wrong", name)
		}
	}
	// The runtime library is linked exactly once.
	count := 0
	for _, f := range res.Module.Funcs {
		if f.Name == "rt_sched_wgroup" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("rt_sched_wgroup defined %d times", count)
	}
}

func TestSharedHelperBetweenKernels(t *testing.T) {
	// A helper using builtins shared by two kernels must be extended
	// once and both call sites fixed.
	res := transform(t, `
int where() { return (int)get_global_id(0); }
kernel void a(global int* out) { out[where()] = 1; }
kernel void b(global int* out) { out[where()] = 2; }
`)
	h := res.Module.Lookup("where")
	if h == nil {
		t.Fatal("helper missing")
	}
	if len(h.Params) != 3 {
		t.Fatalf("helper has %d params, want 3 (rt, sd, hdlr)", len(h.Params))
	}
	for _, kn := range []string{"a__compute", "b__compute"} {
		text := res.Module.Lookup(kn).String()
		if !strings.Contains(text, "@where(global i64*") {
			t.Errorf("%s call site not extended:\n%s", kn, text)
		}
	}
}

func TestHelperWithoutBuiltinsUntouched(t *testing.T) {
	res := transform(t, `
int plain(int a, int b) { return a + b; }
kernel void k(global int* out) { out[get_global_id(0)] = plain(1, 2); }
`)
	h := res.Module.Lookup("plain")
	if h == nil {
		t.Fatal("helper missing")
	}
	if len(h.Params) != 2 {
		t.Errorf("builtin-free helper was extended to %d params", len(h.Params))
	}
}

func TestTransformRejectsKernelFreeModule(t *testing.T) {
	m, err := clc.Compile(`int f(int a) { return a; }`, "nok")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Transform(m); err == nil {
		t.Error("module without kernels accepted")
	}
}

func TestSchedulingKernelSourceMentionsHoists(t *testing.T) {
	m, err := clc.Compile(`
kernel void k(global float* out)
{
    local float t1[32];
    local int t2[8];
    int lid = (int)get_local_id(0);
    t1[lid % 32] = 1.0f;
    t2[lid % 8] = 2;
    barrier(1);
    out[get_global_id(0)] = t1[lid % 32] + (float)t2[lid % 8];
}
`, "h")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Transform(m)
	if err != nil {
		t.Fatal(err)
	}
	info := res.Kernels["k"]
	if len(info.Hoisted) != 2 {
		t.Fatalf("hoisted %d arrays, want 2", len(info.Hoisted))
	}
	if info.OrigLocalBytes != 32*4+8*4 {
		t.Errorf("OrigLocalBytes = %d", info.OrigLocalBytes)
	}
	if info.LocalBytes != info.OrigLocalBytes+rtlib.SDWords*8 {
		t.Errorf("LocalBytes = %d, want orig + SD block", info.LocalBytes)
	}
	// The compute function gained one pointer param per hoisted array.
	cf := res.Module.Lookup("k__compute")
	if len(cf.Params) != 1+3+2 {
		t.Errorf("compute has %d params, want 6", len(cf.Params))
	}
}

func TestTypeCLCRendering(t *testing.T) {
	cases := map[string]*ir.Type{
		"int":           ir.I32T,
		"long":          ir.I64T,
		"float":         ir.F32T,
		"double":        ir.F64T,
		"global float*": ir.PointerTo(ir.F32T, ir.Global),
		"local long*":   ir.PointerTo(ir.I64T, ir.Local),
		"constant int*": ir.PointerTo(ir.I32T, ir.Constant),
		"int*":          ir.PointerTo(ir.I32T, ir.Private),
	}
	for want, ty := range cases {
		if got := typeCLC(ty); got != want {
			t.Errorf("typeCLC(%s) = %q, want %q", ty, got, want)
		}
	}
}
