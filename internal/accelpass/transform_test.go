package accelpass

import (
	"strings"
	"testing"

	"repro/internal/clc"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/rtlib"
)

// runEquiv compiles src, runs the named kernel both natively and through
// the accelOS transformation with a reduced number of physical
// work-groups, and compares every output buffer byte for byte.
//
// bufs maps argument index -> byte size for buffers; ints maps argument
// index -> scalar int32 value. seed fills buffers deterministically.
func runEquiv(t *testing.T, src, kernel string, nd interp.NDRange, physGroups int64,
	bufSizes map[int]int64, intArgs map[int]int64) {
	t.Helper()

	orig, err := clc.Compile(src, "orig")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tm := ir.CloneModule(orig)
	res, err := Transform(tm)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	info := res.Kernels[kernel]
	if info == nil {
		t.Fatalf("no info for kernel %q", kernel)
	}

	nArgs := len(orig.Lookup(kernel).Params)
	run := func(m *ir.Module, transformed bool) map[int][]byte {
		mach := interp.NewMachine(m)
		args := make([]interp.Value, 0, nArgs+1)
		out := make(map[int][]byte)
		for i := 0; i < nArgs; i++ {
			if size, ok := bufSizes[i]; ok {
				r := mach.NewRegion(size, ir.Global)
				// Deterministic fill so both runs see identical inputs.
				for j := range r.Bytes {
					r.Bytes[j] = byte((j*31 + i*7) % 251)
				}
				args = append(args, interp.Value{K: ir.Pointer, P: interp.Ptr{R: r}})
				out[i] = r.Bytes
			} else if v, ok := intArgs[i]; ok {
				args = append(args, interp.IntV(v))
			} else {
				t.Fatalf("argument %d has no binding", i)
			}
		}
		launchND := nd
		if transformed {
			rtWords := rtlib.BuildRT(nd.Dims, nd.NumGroups(), nd.Local, info.Chunk)
			rtr := mach.NewRegion(rtlib.RTWords*8, ir.Global)
			rtr.WriteInt64s(0, rtWords)
			args = append(args, interp.Value{K: ir.Pointer, P: interp.Ptr{R: rtr}})
			launchND = interp.NDRange{
				Dims:   nd.Dims,
				Global: [3]int64{physGroups * nd.Local[0], nd.Local[1], nd.Local[2]},
				Local:  nd.Local,
			}
		}
		if err := mach.Launch(kernel, args, launchND); err != nil {
			t.Fatalf("launch (transformed=%v): %v", transformed, err)
		}
		return out
	}

	want := run(orig, false)
	got := run(tm, true)
	for i := range want {
		if string(want[i]) != string(got[i]) {
			t.Errorf("kernel %s: buffer arg %d differs between native and transformed execution", kernel, i)
		}
	}
}

func TestTransformMopEquivalence(t *testing.T) {
	src := `
kernel void mop(global const float* ina, global const float* inb, global float* out)
{
    size_t gid = get_global_id(0);
    size_t grid = get_group_id(0);
    if (grid < 6)
        out[gid] = ina[gid] + inb[gid];
    else
        out[gid] = ina[gid] - inb[gid];
}
`
	// 12 virtual groups of 64 squeezed onto 2 physical groups.
	runEquiv(t, src, "mop", interp.ND1(12*64, 64), 2,
		map[int]int64{0: 12 * 64 * 4, 1: 12 * 64 * 4, 2: 12 * 64 * 4}, nil)
}

func TestTransformBarrierReduction(t *testing.T) {
	src := `
#define WG 32
kernel void reduce(global const int* in, global int* out)
{
    local int scratch[WG];
    int lid = (int)get_local_id(0);
    scratch[lid] = in[get_global_id(0)];
    barrier(1);
    int s;
    for (s = WG / 2; s > 0; s >>= 1) {
        if (lid < s) scratch[lid] += scratch[lid + s];
        barrier(1);
    }
    if (lid == 0) out[get_group_id(0)] = scratch[0];
}
`
	runEquiv(t, src, "reduce", interp.ND1(16*32, 32), 3,
		map[int]int64{0: 16 * 32 * 4, 1: 16 * 4}, nil)
}

func TestTransformAtomics(t *testing.T) {
	src := `
kernel void histo(global const int* data, global int* bins, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) {
        int v = data[i];
        if (v < 0) v = -v;
        atomic_add(&bins[v % 64], 1);
    }
}
`
	runEquiv(t, src, "histo", interp.ND1(8*64, 64), 2,
		map[int]int64{0: 8 * 64 * 4, 1: 64 * 4}, map[int]int64{2: 8 * 64})
}

func TestTransformHelperWithBuiltins(t *testing.T) {
	src := `
long my_index(int stride) { return get_global_id(0) * stride + get_group_id(0); }
kernel void k(global long* out, int stride)
{
    out[get_global_id(0)] = my_index(stride) + get_num_groups(0) * 1000 + get_global_size(0);
}
`
	runEquiv(t, src, "k", interp.ND1(10*16, 16), 2,
		map[int]int64{0: 10 * 16 * 8}, map[int]int64{1: 3})
}

func TestTransform2D(t *testing.T) {
	src := `
kernel void t2d(global float* out, int width)
{
    long x = get_global_id(0);
    long y = get_global_id(1);
    long gx = get_group_id(0);
    long gy = get_group_id(1);
    out[y * width + x] = (float)(gx * 100 + gy * 10) + (float)(x + y);
}
`
	nd := interp.ND2(32, 16, 8, 4)
	runEquiv(t, src, "t2d", nd, 2, map[int]int64{0: 32 * 16 * 4}, map[int]int64{1: 32})
}

func TestTransformMetadata(t *testing.T) {
	src := `
kernel void tiny(global int* out) { out[get_global_id(0)] = 1; }
kernel void big(global float* a, global float* b, global float* c, int n)
{
    int i = (int)get_global_id(0);
    float acc = 0.0f;
    int j;
    for (j = 0; j < n; ++j)
        acc += a[i] * b[j] + sqrt(fabs(a[j])) * c[i] - (float)j * 0.5f;
    c[i] = acc * 2.0f + a[i];
}
`
	m, err := clc.Compile(src, "meta")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := Transform(m)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	tiny := res.Kernels["tiny"]
	big := res.Kernels["big"]
	if tiny.Chunk <= big.Chunk {
		t.Errorf("adaptive chunks: tiny=%d (instrs %d) should exceed big=%d (instrs %d)",
			tiny.Chunk, tiny.InstrCount, big.Chunk, big.InstrCount)
	}
	if big.Regs <= 4 {
		t.Errorf("register estimate for big = %d, want > thread overhead", big.Regs)
	}
	// Transformed module must still expose kernels under original names.
	for _, name := range []string{"tiny", "big"} {
		f := res.Module.Lookup(name)
		if f == nil || !f.Kernel {
			t.Errorf("transformed module lost kernel %q", name)
		}
		cf := res.Module.Lookup(name + "__compute")
		if cf == nil || cf.Kernel {
			t.Errorf("compute function for %q missing or still a kernel", name)
		}
	}
	// No work-item builtins may remain in compute functions.
	for _, name := range []string{"tiny__compute", "big__compute"} {
		f := res.Module.Lookup(name)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && strings.HasPrefix(in.Callee, "get_") {
					t.Errorf("%s still calls %s", name, in.Callee)
				}
			}
		}
	}
}

func TestTransformLocalHoisting(t *testing.T) {
	src := `
kernel void stencil(global const float* in, global float* out)
{
    local float tile[66];
    int lid = (int)get_local_id(0);
    int gid = (int)get_global_id(0);
    tile[lid + 1] = in[gid];
    if (lid == 0) tile[0] = (gid > 0) ? in[gid - 1] : 0.0f;
    if (lid == 63) tile[65] = in[gid + 1];
    barrier(1);
    out[gid] = 0.25f * tile[lid] + 0.5f * tile[lid + 1] + 0.25f * tile[lid + 2];
}
`
	m, err := clc.Compile(src, "hoist")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := Transform(m)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	info := res.Kernels["stencil"]
	if len(info.Hoisted) != 1 || info.Hoisted[0].Count != 66 {
		t.Fatalf("hoisted = %+v, want one array of 66", info.Hoisted)
	}
	if info.OrigLocalBytes != 66*4 {
		t.Errorf("OrigLocalBytes = %d, want %d", info.OrigLocalBytes, 66*4)
	}
	// The compute function must have no local allocas left.
	cf := res.Module.Lookup("stencil__compute")
	for _, b := range cf.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca && in.AllocaSpace == ir.Local {
				t.Error("local alloca left in compute function after hoisting")
			}
		}
	}
	// And the behaviour must be preserved. Note gid+1 on the last
	// work-item reads one element past; size the buffer accordingly.
	runEquiv(t, src, "stencil", interp.ND1(8*64, 64), 2,
		map[int]int64{0: (8*64 + 1) * 4, 1: 8 * 64 * 4}, nil)
}
