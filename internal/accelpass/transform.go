// Package accelpass implements the accelOS JIT kernel transformation
// (§6 of the paper). For every OpenCL kernel in a module it:
//
//  1. converts the kernel function into a regular computation function,
//  2. extends its interface with pointers to the runtime data structures
//     (the RT descriptor in global memory, the SD scheduling block in
//     local memory, and the virtual-group handle),
//  3. replaces OpenCL work-item builtins with runtime equivalents,
//     transitively through helper functions,
//  4. hoists local-memory declarations out of the computation function,
//  5. generates a scheduling kernel (dyn_sched in the paper's Fig. 8)
//     that atomically dequeues virtual groups from the Virtual NDRange
//     and invokes the computation function for each, and
//  6. statically links the result against the GPU scheduling runtime
//     library (package rtlib).
//
// The transformed module still exposes a kernel under each original
// kernel's name, so the host runtime's interposition stays transparent to
// applications.
package accelpass

import (
	"fmt"
	"strings"

	"repro/internal/clc"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/rtlib"
)

// KernelInfo describes one transformed kernel.
type KernelInfo struct {
	// Name is the original kernel name; the scheduling kernel is
	// registered under this name in the transformed module.
	Name string
	// ComputeName is the demoted computation function.
	ComputeName string
	// InstrCount is the IR instruction count of the computation
	// function, the size metric for adaptive scheduling.
	InstrCount int
	// Chunk is the number of virtual groups dequeued per scheduling
	// operation (§6.4).
	Chunk int
	// Regs is the estimated register usage per work-item.
	Regs int
	// LocalBytes is the per-work-group local memory footprint of the
	// transformed kernel: hoisted arrays plus the SD block.
	LocalBytes int64
	// OrigLocalBytes is the local memory the original kernel used.
	OrigLocalBytes int64
	// Hoisted lists the hoisted local arrays (for diagnostics).
	Hoisted []HoistedArray
}

// HoistedArray describes a local array moved from the kernel body into
// the scheduling kernel.
type HoistedArray struct {
	Elem  *ir.Type
	Count int64
}

// Result is the output of Transform.
type Result struct {
	// Module is the transformed, linked module.
	Module *ir.Module
	// Kernels maps original kernel names to their transformation info.
	Kernels map[string]*KernelInfo
}

var (
	rtPtrT = ir.PointerTo(ir.I64T, ir.Global)
	sdPtrT = ir.PointerTo(ir.I64T, ir.Local)
)

// Transform rewrites the module in place (it becomes the transformed
// module) and returns per-kernel metadata. The caller should clone the
// module first if the original is still needed (the host runtime keeps
// the original for baseline execution).
func Transform(m *ir.Module) (*Result, error) {
	kernels := m.Kernels()
	if len(kernels) == 0 {
		return nil, fmt.Errorf("accelpass: module %s has no kernels", m.Name)
	}
	res := &Result{Module: m, Kernels: make(map[string]*KernelInfo)}

	// Step 1+2: demote kernels and extend interfaces.
	extend := extensionSet(m, kernels)
	for _, f := range extend {
		appendRuntimeParams(f)
	}
	var infos []*KernelInfo
	for _, k := range kernels {
		info := &KernelInfo{Name: k.Name, ComputeName: k.Name + "__compute"}
		m.Remove(k.Name)
		k.Name = info.ComputeName
		k.Kernel = false
		m.Add(k)
		infos = append(infos, info)
		res.Kernels[info.Name] = info
	}

	// Step 3: replace work-item builtins and fix calls into extended
	// functions.
	extended := make(map[string]bool)
	for _, f := range extend {
		extended[f.Name] = true
	}
	for _, f := range extend {
		if err := replaceBuiltins(f, extended); err != nil {
			return nil, err
		}
	}

	// Step 4: hoist local declarations out of the computation functions.
	for _, info := range infos {
		cf := m.Lookup(info.ComputeName)
		hoisted, origLocal := hoistLocals(cf)
		info.Hoisted = hoisted
		info.OrigLocalBytes = origLocal
		info.LocalBytes = origLocal + rtlib.SDWords*8
	}

	// Step 5: generate and link the scheduling kernels.
	for _, info := range infos {
		cf := m.Lookup(info.ComputeName)
		src := schedulingKernelSource(info, cf)
		wm, err := clc.Compile(src, info.Name+"__sched")
		if err != nil {
			return nil, fmt.Errorf("accelpass: generated scheduling kernel for %s does not compile: %w\nsource:\n%s", info.Name, err, src)
		}
		if err := ir.Link(m, wm); err != nil {
			return nil, fmt.Errorf("accelpass: linking scheduling kernel for %s: %w", info.Name, err)
		}
	}

	// Step 6: link the runtime library.
	rtm, err := rtlib.Module()
	if err != nil {
		return nil, err
	}
	if err := ir.Link(m, rtm); err != nil {
		return nil, fmt.Errorf("accelpass: linking runtime library: %w", err)
	}

	// Cleanup passes, then record size metrics.
	pm := passes.NewManager(passes.ConstFold{}, passes.DCE{})
	if err := pm.Run(m); err != nil {
		return nil, fmt.Errorf("accelpass: %w", err)
	}
	for _, info := range infos {
		cf := m.Lookup(info.ComputeName)
		info.InstrCount = passes.InstrCount(cf)
		info.Chunk = passes.AdaptiveChunk(info.InstrCount)
		info.Regs = passes.ModuleRegisterEstimate(m, info.ComputeName)
	}
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("accelpass: transformed module is invalid: %w", err)
	}
	return res, nil
}

// extensionSet returns the definitions whose interfaces must carry the
// runtime pointers: all kernels, plus every function that (transitively)
// calls a work-item builtin.
func extensionSet(m *ir.Module, kernels []*ir.Function) []*ir.Function {
	need := make(map[*ir.Function]bool)
	for _, k := range kernels {
		need[k] = true
	}
	// Direct users of work-item builtins.
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					if _, ok := rtlib.Replacement[in.Callee]; ok {
						need[f] = true
					}
				}
			}
		}
	}
	// Propagate up the call graph to a fixed point.
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			if f.IsDecl() || need[f] {
				continue
			}
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op != ir.OpCall {
						continue
					}
					callee := m.Lookup(in.Callee)
					if callee != nil && need[callee] {
						need[f] = true
						changed = true
					}
				}
			}
		}
	}
	var out []*ir.Function
	for _, f := range m.Funcs { // deterministic order
		if need[f] {
			out = append(out, f)
		}
	}
	return out
}

// appendRuntimeParams appends (__rt, __sd, __hdlr) to the function
// signature.
func appendRuntimeParams(f *ir.Function) {
	n := len(f.Params)
	f.Params = append(f.Params,
		&ir.Param{Nam: "__rt", Ty: rtPtrT, Idx: n},
		&ir.Param{Nam: "__sd", Ty: sdPtrT, Idx: n + 1},
		&ir.Param{Nam: "__hdlr", Ty: ir.I64T, Idx: n + 2},
	)
}

// runtimeArgs returns the values of the appended runtime parameters of f.
func runtimeArgs(f *ir.Function) (rt, sd, hdlr ir.Value) {
	n := len(f.Params)
	return f.Params[n-3], f.Params[n-2], f.Params[n-1]
}

// replaceBuiltins rewrites work-item builtin calls into runtime library
// calls and threads the runtime parameters through calls to other
// extended functions.
func replaceBuiltins(f *ir.Function, extended map[string]bool) error {
	rt, sd, hdlr := runtimeArgs(f)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpCall {
				continue
			}
			if repl, ok := rtlib.Replacement[in.Callee]; ok {
				args := []ir.Value{rt, sd, hdlr}
				if in.Callee != "get_work_dim" {
					if len(in.Args) != 1 {
						return fmt.Errorf("accelpass: %s: builtin %s with %d args", f.Name, in.Callee, len(in.Args))
					}
					args = append(args, in.Args[0])
				}
				in.Callee = repl
				in.Args = args
				continue
			}
			if extended[in.Callee] {
				in.Args = append(in.Args, rt, sd, hdlr)
			}
		}
	}
	return nil
}

// hoistLocals removes local-space allocas from the computation function,
// appending a pointer parameter for each; the scheduling kernel declares
// the arrays and passes them in (§6.2 "Local Data Hoisting"). It returns
// the hoist descriptors and the total local bytes.
func hoistLocals(f *ir.Function) ([]HoistedArray, int64) {
	var hoisted []HoistedArray
	var bytes int64
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca && in.AllocaSpace == ir.Local {
				idx := len(f.Params)
				p := &ir.Param{
					Nam: fmt.Sprintf("__hoist%d", len(hoisted)),
					Ty:  ir.PointerTo(in.AllocaElem, ir.Local),
					Idx: idx,
				}
				f.Params = append(f.Params, p)
				replaceUsesInFunc(f, in, p)
				hoisted = append(hoisted, HoistedArray{Elem: in.AllocaElem, Count: in.AllocaCount})
				bytes += in.AllocaElem.Size() * in.AllocaCount
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return hoisted, bytes
}

func replaceUsesInFunc(f *ir.Function, old, new ir.Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
				}
			}
		}
	}
}

// typeCLC renders an IR type as CLC source for the generated scheduling
// kernel.
func typeCLC(t *ir.Type) string {
	switch t.Kind {
	case ir.Void:
		return "void"
	case ir.Bool, ir.I32:
		return "int"
	case ir.I64:
		return "long"
	case ir.F32:
		return "float"
	case ir.F64:
		return "double"
	case ir.Pointer:
		prefix := ""
		switch t.Space {
		case ir.Global:
			prefix = "global "
		case ir.Local:
			prefix = "local "
		case ir.Constant:
			prefix = "constant "
		}
		return prefix + typeCLC(t.Elem) + "*"
	}
	panic(fmt.Sprintf("accelpass: cannot render type %s in CLC", t))
}

// schedulingKernelSource generates the dyn_sched wrapper (Fig. 8b) for a
// computation function. The wrapper keeps the original kernel's name so
// the interposition layer can launch it transparently; its signature is
// the original parameter list plus the RT descriptor pointer appended by
// the kernel scheduler.
//
// Compared to the paper's figure, an extra barrier closes each iteration
// so the master's next dequeue cannot overwrite the SD block while slower
// work-items are still reading the current chunk bounds.
func schedulingKernelSource(info *KernelInfo, compute *ir.Function) string {
	// The compute signature is: originals..., __rt, __sd, __hdlr,
	// hoists...
	nOrig := len(compute.Params) - 3 - len(info.Hoisted)
	var sb strings.Builder

	// Prototypes.
	sb.WriteString("extern void ")
	sb.WriteString(info.ComputeName)
	sb.WriteString("(")
	for i, p := range compute.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %s", typeCLC(p.Ty), p.Nam)
	}
	sb.WriteString(");\n")
	sb.WriteString("extern void rt_env_init(global long* rt, local long* sd);\n")
	sb.WriteString("extern void rt_sched_wgroup(global long* rt, local long* sd);\n")
	sb.WriteString("extern int rt_is_master_workitem();\n\n")

	// Scheduling kernel.
	fmt.Fprintf(&sb, "kernel void %s(", info.Name)
	for i := 0; i < nOrig; i++ {
		p := compute.Params[i]
		fmt.Fprintf(&sb, "%s %s, ", typeCLC(p.Ty), p.Nam)
	}
	sb.WriteString("global long* __rt)\n{\n")
	fmt.Fprintf(&sb, "    local long __sd[%d];\n", rtlib.SDWords)
	for i, h := range info.Hoisted {
		fmt.Fprintf(&sb, "    local %s __h%d[%d];\n", typeCLC(h.Elem), i, h.Count)
	}
	sb.WriteString(`    if (rt_is_master_workitem())
        rt_env_init(__rt, __sd);
    for (;;) {
        if (rt_is_master_workitem())
            rt_sched_wgroup(__rt, __sd);
        barrier(3);
        if (__sd[0] == 1)
            break;
        long __ind;
        for (__ind = __sd[1]; __ind < __sd[2]; __ind = __ind + 1)
`)
	sb.WriteString("            ")
	sb.WriteString(info.ComputeName)
	sb.WriteString("(")
	for i := 0; i < nOrig; i++ {
		fmt.Fprintf(&sb, "%s, ", compute.Params[i].Nam)
	}
	sb.WriteString("__rt, __sd, __ind")
	for i := range info.Hoisted {
		fmt.Fprintf(&sb, ", __h%d", i)
	}
	sb.WriteString(");\n")
	sb.WriteString("        barrier(3);\n    }\n}\n")
	return sb.String()
}
