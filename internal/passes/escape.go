package passes

import "repro/internal/ir"

// AllocaUse summarizes how the address of one private-space alloca is
// used within its function. It is the single definition of "the address
// never escapes" shared by mem2reg (promotion candidates) and DCE
// (write-only allocas), so the two passes can never disagree about what
// memory is private to straight load/store access.
type AllocaUse struct {
	Alloca *ir.Instr
	Loads  []*ir.Instr // OpLoad reading directly through the alloca
	Stores []*ir.Instr // OpStore writing directly through the alloca

	// Escapes is set when the address is used any other way: stored as a
	// value, offset by a GEP, passed to a call, compared, selected,
	// atomically updated or cast. Such an alloca may be read or written
	// through derived pointers the analysis cannot see.
	Escapes bool
}

// AnalyzeAllocas inspects every private-space alloca of f and classifies
// all uses of its address.
func AnalyzeAllocas(f *ir.Function) map[*ir.Instr]*AllocaUse {
	uses := make(map[*ir.Instr]*AllocaUse)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca && in.AllocaSpace == ir.Private {
				uses[in] = &AllocaUse{Alloca: in}
			}
		}
	}
	if len(uses) == 0 {
		return uses
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				al, ok := a.(*ir.Instr)
				if !ok {
					continue
				}
				u, tracked := uses[al]
				if !tracked {
					continue
				}
				switch {
				case in.Op == ir.OpLoad:
					u.Loads = append(u.Loads, in)
				case in.Op == ir.OpStore && i == 1:
					u.Stores = append(u.Stores, in)
				default:
					u.Escapes = true
				}
			}
		}
	}
	return uses
}

// Promotable reports whether the alloca can be rewritten into SSA
// values: a single scalar element whose address is only ever loaded
// from or stored to.
func (u *AllocaUse) Promotable() bool {
	return !u.Escapes && u.Alloca.AllocaCount == 1 && u.Alloca.AllocaElem.Kind != ir.Void
}

// WriteOnly reports whether the alloca is only ever written: no loads,
// no escaping uses. Its stores are dead.
func (u *AllocaUse) WriteOnly() bool {
	return !u.Escapes && len(u.Loads) == 0
}
