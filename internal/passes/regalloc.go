package passes

import "repro/internal/ir"

// RegisterEstimate computes an approximation of the per-work-item register
// pressure of a function: the maximum number of simultaneously live SSA
// values (plus a fixed overhead for the work-item state the hardware keeps
// per thread). The host runtime feeds this into the occupancy model, the
// same role -cl-nv-maxrregcount metadata plays on real drivers.
//
// The estimate uses standard iterative backward liveness over basic
// blocks.
func RegisterEstimate(f *ir.Function) int {
	if f.IsDecl() {
		return 0
	}
	// use/def per block.
	type bbinfo struct {
		use, def map[ir.Value]bool
		in, out  map[ir.Value]bool
	}
	info := make(map[*ir.Block]*bbinfo, len(f.Blocks))
	interesting := func(v ir.Value) bool {
		switch v.(type) {
		case *ir.Instr, *ir.Param:
			return true
		}
		return false
	}
	for _, b := range f.Blocks {
		bi := &bbinfo{use: map[ir.Value]bool{}, def: map[ir.Value]bool{}, in: map[ir.Value]bool{}, out: map[ir.Value]bool{}}
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if interesting(a) && !bi.def[a] {
					bi.use[a] = true
				}
			}
			if in.HasResult() {
				bi.def[in] = true
			}
		}
		info[b] = bi
	}
	succs := func(b *ir.Block) []*ir.Block {
		t := b.Terminator()
		if t == nil {
			return nil
		}
		var s []*ir.Block
		if t.Then != nil {
			s = append(s, t.Then)
		}
		if t.Else != nil && t.Else != t.Then {
			s = append(s, t.Else)
		}
		return s
	}
	// Iterate to fixed point.
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			bi := info[b]
			for _, s := range succs(b) {
				for v := range info[s].in {
					if !bi.out[v] {
						bi.out[v] = true
						changed = true
					}
				}
			}
			for v := range bi.out {
				if !bi.def[v] && !bi.in[v] {
					bi.in[v] = true
					changed = true
				}
			}
			for v := range bi.use {
				if !bi.in[v] {
					bi.in[v] = true
					changed = true
				}
			}
		}
	}
	// Walk each block backwards tracking the live set size.
	maxLive := 0
	for _, b := range f.Blocks {
		live := make(map[ir.Value]bool)
		for v := range info[b].out {
			live[v] = true
		}
		if len(live) > maxLive {
			maxLive = len(live)
		}
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if in.HasResult() {
				delete(live, in)
			}
			for _, a := range in.Args {
				if interesting(a) {
					live[a] = true
				}
			}
			if len(live) > maxLive {
				maxLive = len(live)
			}
		}
	}
	// Hardware baseline per thread: program counter / thread IDs /
	// stack pointer equivalents.
	const threadOverhead = 4
	return maxLive + threadOverhead
}

// ModuleRegisterEstimate returns the register estimate of the given kernel
// including all user functions it (transitively) calls, approximated by
// the maximum over the call graph — GPU compilers fully inline, so the
// caller's pressure subsumes the callee's temporaries at their call sites.
func ModuleRegisterEstimate(m *ir.Module, kernel string) int {
	seen := make(map[string]bool)
	var walk func(name string) int
	walk = func(name string) int {
		if seen[name] {
			return 0
		}
		seen[name] = true
		f := m.Lookup(name)
		if f == nil || f.IsDecl() {
			return 0
		}
		est := RegisterEstimate(f)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					if c := walk(in.Callee); c > est {
						est = c
					}
				}
			}
		}
		return est
	}
	return walk(kernel)
}

// InstrCount counts the IR instructions of a function body, the size
// metric used by the adaptive scheduling table (§6.4): fewer than 10
// instructions → chunks of 8 virtual groups per dequeue, and so on.
func InstrCount(f *ir.Function) int {
	if f == nil {
		return 0
	}
	return f.NumInstrs()
}

// AdaptiveChunk returns the number of virtual groups a work-group dequeues
// per scheduling operation, per the paper's table (§6.4).
func AdaptiveChunk(instrCount int) int {
	switch {
	case instrCount < 10:
		return 8
	case instrCount < 20:
		return 6
	case instrCount < 30:
		return 4
	case instrCount < 40:
		return 2
	default:
		return 1
	}
}
