package passes

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/clc"
	"repro/internal/ir"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := clc.Compile(src, "t")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func runPasses(t *testing.T, m *ir.Module, ps ...Pass) {
	t.Helper()
	if err := NewManager(ps...).Run(m); err != nil {
		t.Fatalf("passes: %v", err)
	}
}

func TestConstFoldArithmetic(t *testing.T) {
	m := compile(t, `
kernel void k(global int* out, global float* fout)
{
    out[0] = (3 + 4) * 5 - 100 / 4;    /* 10 */
    out[1] = (1 << 10) | 15 & 7;       /* 1031 */
    out[2] = 255 % 16 ^ 2;             /* 13 */
    fout[0] = 2.0f * 3.5f + 1.0f;      /* 8 */
    out[3] = (7 > 3) ? 11 : 22;        /* folded select */
}
`)
	runPasses(t, m, ConstFold{}, DCE{})
	text := m.String()
	for _, want := range []string{"store i32 10,", "store i32 1031,", "store i32 13,", "store float 8,", "store i32 11,"} {
		if !strings.Contains(text, want) {
			t.Errorf("fold missing %q in:\n%s", want, text)
		}
	}
	for _, bad := range []string{"mul i32", "sdiv", "shl", "fadd"} {
		if strings.Contains(text, bad) {
			t.Errorf("unfolded %s remains:\n%s", bad, text)
		}
	}
}

func TestConstFoldPreservesTraps(t *testing.T) {
	m := compile(t, `
kernel void k(global int* out) { out[0] = 1 / (out[1] - out[1]); }
`)
	// out[1]-out[1] is not folded (loads), but even with constant zero
	// divisors the fold must keep the trapping division.
	m2 := compile(t, `
#define Z 0
kernel void k2(global int* out) { out[0] = 1 / Z; }
`)
	runPasses(t, m, ConstFold{})
	runPasses(t, m2, ConstFold{})
	if !strings.Contains(m2.String(), "sdiv") {
		t.Error("division by constant zero was folded away; the runtime trap must be preserved")
	}
}

func TestConstFoldCasts(t *testing.T) {
	m := compile(t, `
kernel void k(global long* out, global int* iout, global float* fout)
{
    out[0] = (long)(3 * 7);
    iout[0] = (int)2.9f;
    fout[0] = (float)12;
}
`)
	runPasses(t, m, ConstFold{}, DCE{})
	text := m.String()
	for _, want := range []string{"store i64 21,", "store i32 2,", "store float 12,"} {
		if !strings.Contains(text, want) {
			t.Errorf("cast fold missing %q:\n%s", want, text)
		}
	}
}

func TestDCERemovesDeadCode(t *testing.T) {
	m := compile(t, `
kernel void k(global int* out)
{
    int dead1 = 10 * 3;
    float dead2 = 1.5f * 2.0f;
    out[0] = 7;
}
`)
	before := m.Lookup("k").NumInstrs()
	runPasses(t, m, ConstFold{}, DCE{})
	after := m.Lookup("k").NumInstrs()
	if after >= before {
		t.Errorf("DCE removed nothing: %d -> %d instrs", before, after)
	}
	text := m.String()
	if strings.Contains(text, "store i32 30") || strings.Contains(text, "store float 3") {
		t.Errorf("dead stores to dead allocas should survive only if their alloca survives; got:\n%s", text)
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	m := compile(t, `
kernel void k(global int* out)
{
    atomic_add(&out[0], 1);  /* result unused but must stay */
    barrier(1);
    out[1] = 5;
}
`)
	runPasses(t, m, DCE{})
	text := m.String()
	if !strings.Contains(text, "atomicrmw") {
		t.Error("DCE removed an atomic with unused result")
	}
	if !strings.Contains(text, "barrier") {
		t.Error("DCE removed a barrier")
	}
}

func TestDCERemovesUnreachableBlocks(t *testing.T) {
	m := compile(t, `
kernel void k(global int* out)
{
    out[0] = 1;
    return;
}
`)
	f := m.Lookup("k")
	// Append an unreachable block by hand.
	dead := f.NewBlock("orphan")
	dead.Append(&ir.Instr{Op: ir.OpRet, Ty: ir.VoidT})
	n := len(f.Blocks)
	runPasses(t, m, DCE{})
	if len(f.Blocks) >= n {
		t.Errorf("unreachable block not removed: %d -> %d blocks", n, len(f.Blocks))
	}
}

func TestRegisterEstimateOrdering(t *testing.T) {
	small := compile(t, `
kernel void k(global int* out) { out[0] = 1; }
`)
	big := compile(t, `
kernel void k(global float* a, global float* b, global float* out, int n)
{
    int i = (int)get_global_id(0);
    float x0 = a[i]; float x1 = b[i]; float x2 = x0 * x1;
    float x3 = x0 + x1; float x4 = x2 - x3; float x5 = x2 * x3;
    float x6 = x4 / (x5 + 1.0f); float x7 = x6 * x0;
    out[i] = x0 + x1 + x2 + x3 + x4 + x5 + x6 + x7;
}
`)
	s := RegisterEstimate(small.Lookup("k"))
	bg := RegisterEstimate(big.Lookup("k"))
	if s <= 0 || bg <= 0 {
		t.Fatalf("estimates must be positive: %d %d", s, bg)
	}
	if bg <= s {
		t.Errorf("many-temporaries kernel estimated %d regs, small kernel %d", bg, s)
	}
	if RegisterEstimate(&ir.Function{Name: "decl", Ret: ir.VoidT}) != 0 {
		t.Error("declaration should estimate 0 registers")
	}
}

func TestModuleRegisterEstimateFollowsCalls(t *testing.T) {
	m := compile(t, `
float heavy(float a, float b)
{
    float x0 = a * b; float x1 = a + b; float x2 = x0 - x1;
    float x3 = x0 / (x1 + 1.0f); float x4 = x2 * x3; float x5 = x4 + x0;
    return x0 + x1 + x2 + x3 + x4 + x5;
}
kernel void k(global float* out) { out[0] = heavy(1.0f, 2.0f); }
`)
	whole := ModuleRegisterEstimate(m, "k")
	callee := RegisterEstimate(m.Lookup("heavy"))
	if whole < callee {
		t.Errorf("call-graph estimate %d below callee's own %d", whole, callee)
	}
}

func TestAdaptiveChunkTable(t *testing.T) {
	// The exact table from §6.4.
	cases := []struct{ instrs, chunk int }{
		{0, 8}, {9, 8}, {10, 6}, {19, 6}, {20, 4}, {29, 4}, {30, 2}, {39, 2}, {40, 1}, {1000, 1},
	}
	for _, c := range cases {
		if got := AdaptiveChunk(c.instrs); got != c.chunk {
			t.Errorf("AdaptiveChunk(%d) = %d, want %d", c.instrs, got, c.chunk)
		}
	}
}

func TestAdaptiveChunkMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return AdaptiveChunk(x) >= AdaptiveChunk(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: constant folding must not change program meaning — fold a
// generated constant expression and compare against Go's own arithmetic.
func TestConstFoldSoundProperty(t *testing.T) {
	f := func(a, b int16, pick uint8) bool {
		x, y := int32(a), int32(b)
		var op string
		var want int32
		switch pick % 5 {
		case 0:
			op, want = "+", x+y
		case 1:
			op, want = "-", x-y
		case 2:
			op, want = "*", x*y
		case 3:
			op, want = "&", x&y
		default:
			op, want = "^", x^y
		}
		src := "kernel void k(global int* out) { out[0] = (" +
			itoa(int64(x)) + ") " + op + " (" + itoa(int64(y)) + "); }"
		m, err := clc.Compile(src, "q")
		if err != nil {
			return false
		}
		if err := NewManager(ConstFold{}, DCE{}).Run(m); err != nil {
			return false
		}
		return strings.Contains(m.String(), "store i32 "+itoa(int64(want))+",")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

func TestPassManagerVerifies(t *testing.T) {
	// A pass that corrupts the module must be caught by the manager.
	m := compile(t, `kernel void k(global int* out) { out[0] = 1; }`)
	bad := passFunc{name: "corrupt", fn: func(m *ir.Module) error {
		f := m.Lookup("k")
		f.Blocks[0].Instrs = f.Blocks[0].Instrs[:len(f.Blocks[0].Instrs)-1] // drop the terminator
		return nil
	}}
	if err := NewManager(bad).Run(m); err == nil {
		t.Error("pass manager did not verify after a corrupting pass")
	}
}

type passFunc struct {
	name string
	fn   func(*ir.Module) error
}

func (p passFunc) Name() string           { return p.name }
func (p passFunc) Run(m *ir.Module) error { return p.fn(m) }
