package passes

import "repro/internal/ir"

// DCE removes result-producing instructions whose values are never used
// and which have no side effects, plus unreachable basic blocks. It runs
// to a fixed point within each function.
type DCE struct{}

// Name implements Pass.
func (DCE) Name() string { return "dce" }

// Run implements Pass.
func (DCE) Run(m *ir.Module) error {
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		removeUnreachable(f)
		for {
			changed := dceFunc(f)
			if removeDeadAllocaStores(f) {
				changed = true
			}
			if !changed {
				break
			}
		}
	}
	return nil
}

// removeDeadAllocaStores deletes private allocas that are only ever
// written (never loaded, never escaping as a value), together with the
// stores into them.
func removeDeadAllocaStores(f *ir.Function) bool {
	// escape: any use that is not "store ... INTO this alloca".
	onlyStoredInto := make(map[*ir.Instr]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca && in.AllocaSpace == ir.Private {
				onlyStoredInto[in] = true
			}
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				al, ok := a.(*ir.Instr)
				if !ok || !onlyStoredInto[al] {
					continue
				}
				if !(in.Op == ir.OpStore && i == 1) {
					delete(onlyStoredInto, al)
				}
			}
		}
	}
	if len(onlyStoredInto) == 0 {
		return false
	}
	changed := false
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca && onlyStoredInto[in] {
				changed = true
				continue
			}
			if in.Op == ir.OpStore {
				if al, ok := in.Args[1].(*ir.Instr); ok && onlyStoredInto[al] {
					changed = true
					continue
				}
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return changed
}

// sideEffecting reports whether removing the instruction could change
// observable behaviour. Calls are conservatively treated as effecting.
func sideEffecting(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpStore, ir.OpCall, ir.OpAtomic, ir.OpBarrier, ir.OpBr, ir.OpCondBr, ir.OpRet:
		return true
	case ir.OpBin:
		// Division can trap; keep it even if unused.
		return in.BinK == ir.SDiv || in.BinK == ir.SRem
	case ir.OpLoad:
		// Loads can trap on bad pointers; an unused load of a
		// well-formed alloca is safe, but keep it simple and only drop
		// loads of allocas.
		src, ok := in.Args[0].(*ir.Instr)
		return !(ok && src.Op == ir.OpAlloca)
	}
	return false
}

func dceFunc(f *ir.Function) bool {
	used := make(map[ir.Value]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				used[a] = true
			}
		}
	}
	changed := false
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.HasResult() && !used[in] && !sideEffecting(in) {
				changed = true
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return changed
}

func removeUnreachable(f *ir.Function) {
	if len(f.Blocks) == 0 {
		return
	}
	reach := make(map[*ir.Block]bool)
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		if t := b.Terminator(); t != nil {
			if t.Then != nil {
				visit(t.Then)
			}
			if t.Else != nil {
				visit(t.Else)
			}
		}
	}
	visit(f.Blocks[0])
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
}
