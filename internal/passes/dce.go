package passes

import "repro/internal/ir"

// DCE removes result-producing instructions whose values are never used
// and which have no side effects, plus unreachable basic blocks. It runs
// to a fixed point within each function.
type DCE struct{}

// Name implements Pass.
func (DCE) Name() string { return "dce" }

// Run implements Pass.
func (DCE) Run(m *ir.Module) error {
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		removeUnreachable(f)
		for {
			changed := dceFunc(f)
			if removeDeadAllocaStores(f) {
				changed = true
			}
			if !changed {
				break
			}
		}
	}
	return nil
}

// removeDeadAllocaStores deletes private allocas that are only ever
// written (never loaded, never escaping as a value), together with the
// stores into them. "Never escaping" is the shared AnalyzeAllocas
// definition, the same one mem2reg promotes by, so the two passes agree
// on which memory is private to straight load/store access.
func removeDeadAllocaStores(f *ir.Function) bool {
	onlyStoredInto := make(map[*ir.Instr]bool)
	for al, u := range AnalyzeAllocas(f) {
		if u.WriteOnly() {
			onlyStoredInto[al] = true
		}
	}
	if len(onlyStoredInto) == 0 {
		return false
	}
	changed := false
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca && onlyStoredInto[in] {
				changed = true
				continue
			}
			if in.Op == ir.OpStore {
				if al, ok := in.Args[1].(*ir.Instr); ok && onlyStoredInto[al] {
					changed = true
					continue
				}
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return changed
}

// sideEffecting reports whether removing the instruction could change
// observable behaviour. Calls are conservatively treated as effecting.
func sideEffecting(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpStore, ir.OpCall, ir.OpAtomic, ir.OpBarrier, ir.OpBr, ir.OpCondBr, ir.OpRet:
		return true
	case ir.OpBin:
		// Division can trap; keep it even if unused.
		return in.BinK == ir.SDiv || in.BinK == ir.SRem
	case ir.OpLoad:
		// Loads can trap on bad pointers; an unused load of a
		// well-formed alloca is safe, but keep it simple and only drop
		// loads of allocas.
		src, ok := in.Args[0].(*ir.Instr)
		return !(ok && src.Op == ir.OpAlloca)
	}
	return false
}

// dceFunc removes result-producing, effect-free instructions that no
// live instruction uses. Liveness is seeded from side-effecting
// instructions and propagated through operands (mark and sweep), so a
// cycle of phis feeding only each other is dead and removed — the
// one-pass "is it an operand anywhere" test would keep it forever.
func dceFunc(f *ir.Function) bool {
	live := make(map[*ir.Instr]bool)
	var work []*ir.Instr
	markArgs := func(in *ir.Instr) {
		for _, a := range in.Args {
			if d, ok := a.(*ir.Instr); ok && !live[d] {
				live[d] = true
				work = append(work, d)
			}
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if sideEffecting(in) {
				live[in] = true
				markArgs(in)
			}
		}
	}
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		markArgs(in)
	}
	changed := false
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.HasResult() && !live[in] && !sideEffecting(in) {
				changed = true
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return changed
}

func removeUnreachable(f *ir.Function) {
	if len(f.Blocks) == 0 {
		return
	}
	reach := make(map[*ir.Block]bool)
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		if t := b.Terminator(); t != nil {
			if t.Then != nil {
				visit(t.Then)
			}
			if t.Else != nil {
				visit(t.Else)
			}
		}
	}
	visit(f.Blocks[0])
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	prunePhiIncomings(f, reach)
}

// prunePhiIncomings drops phi arms flowing in from blocks outside the
// keep set, collapsing phis left with a single arm onto that value.
func prunePhiIncomings(f *ir.Function, reach map[*ir.Block]bool) {
	for _, b := range f.Blocks {
		for _, in := range b.Phis() {
			args := in.Args[:0]
			inc := in.Incoming[:0]
			for i, ib := range in.Incoming {
				if reach[ib] {
					args = append(args, in.Args[i])
					inc = append(inc, ib)
				}
			}
			in.Args, in.Incoming = args, inc
		}
	}
	collapseTrivialPhis(f)
}
