package passes

import "repro/internal/ir"

// SimplifyCFG merges straight-line block pairs: a block ending in an
// unconditional branch to a block with no other predecessor (and no
// phis) absorbs it. The clc front end emits a separate for.post block
// per loop and mem2reg's store elimination leaves such pairs pure
// straight-line code, so merging them removes one dispatched jump per
// loop iteration in the bytecode VM.
type SimplifyCFG struct{}

// Name implements Pass.
func (SimplifyCFG) Name() string { return "simplifycfg" }

// Run implements Pass.
func (SimplifyCFG) Run(m *ir.Module) error {
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		removeUnreachable(f)
		for mergeOnce(f) {
		}
	}
	return nil
}

func mergeOnce(f *ir.Function) bool {
	npreds := make(map[*ir.Block]int)
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			npreds[s]++
		}
	}
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		c := t.Then
		if c == b || c == f.Entry() || npreds[c] != 1 || len(c.Phis()) > 0 {
			continue
		}
		// Absorb c: drop b's branch, re-append c's instructions (keeping
		// their block back-pointers consistent), and retarget any phi in
		// c's successors that named c as the incoming edge.
		b.Instrs = b.Instrs[:len(b.Instrs)-1]
		for _, in := range c.Instrs {
			b.Append(in)
		}
		for _, s := range c.Succs() {
			for _, phi := range s.Phis() {
				for i, ib := range phi.Incoming {
					if ib == c {
						phi.Incoming[i] = b
					}
				}
			}
		}
		for i, blk := range f.Blocks {
			if blk == c {
				f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
				break
			}
		}
		return true
	}
	return false
}
