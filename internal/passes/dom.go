package passes

import "repro/internal/ir"

// domInfo is the control-flow and dominance view of one function that
// SSA construction works over: predecessor lists, a reverse-postorder
// numbering of the reachable blocks, immediate dominators and dominance
// frontiers (Cooper/Harvey/Kennedy's iterative formulation).
type domInfo struct {
	rpo    []*ir.Block       // reachable blocks in reverse postorder; rpo[0] is the entry
	num    map[*ir.Block]int // block -> index in rpo
	preds  map[*ir.Block][]*ir.Block
	idom   map[*ir.Block]*ir.Block   // entry maps to itself
	front  map[*ir.Block][]*ir.Block // dominance frontier
	domkid map[*ir.Block][]*ir.Block // dominator-tree children, rpo order
}

// computeDom builds the dominance view. Unreachable blocks are absent
// from every table; callers should drop them first (removeUnreachable).
func computeDom(f *ir.Function) *domInfo {
	d := &domInfo{
		num:    make(map[*ir.Block]int),
		preds:  make(map[*ir.Block][]*ir.Block),
		idom:   make(map[*ir.Block]*ir.Block),
		front:  make(map[*ir.Block][]*ir.Block),
		domkid: make(map[*ir.Block][]*ir.Block),
	}
	entry := f.Entry()
	if entry == nil {
		return d
	}
	// Depth-first postorder, reversed.
	seen := make(map[*ir.Block]bool)
	var post []*ir.Block
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs() {
			d.preds[s] = append(d.preds[s], b)
			visit(s)
		}
		post = append(post, b)
	}
	visit(entry)
	d.rpo = make([]*ir.Block, len(post))
	for i, b := range post {
		d.rpo[len(post)-1-i] = b
	}
	for i, b := range d.rpo {
		d.num[b] = i
	}

	// Iterative idom computation over reverse postorder.
	d.idom[entry] = entry
	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for d.num[a] > d.num[b] {
				a = d.idom[a]
			}
			for d.num[b] > d.num[a] {
				b = d.idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range d.rpo[1:] {
			var ni *ir.Block
			for _, p := range d.preds[b] {
				if d.idom[p] == nil {
					continue // not yet processed
				}
				if ni == nil {
					ni = p
				} else {
					ni = intersect(ni, p)
				}
			}
			if ni != nil && d.idom[b] != ni {
				d.idom[b] = ni
				changed = true
			}
		}
	}

	// Dominance frontiers: walk each join point's predecessors up to the
	// join's idom, adding the join to every block passed on the way.
	for _, b := range d.rpo {
		if len(d.preds[b]) < 2 {
			continue
		}
		for _, p := range d.preds[b] {
			for r := p; r != d.idom[b]; r = d.idom[r] {
				d.front[r] = append(d.front[r], b)
			}
		}
	}

	// Dominator-tree children (entry is its own idom, not its own child).
	for _, b := range d.rpo[1:] {
		d.domkid[d.idom[b]] = append(d.domkid[d.idom[b]], b)
	}
	return d
}
