package passes

import "repro/internal/ir"

// Mem2Reg promotes private-space scalar allocas whose address never
// escapes (see AnalyzeAllocas) into SSA values: loads become uses of the
// reaching definition, stores become definitions, and join points get
// OpPhi nodes placed on the iterated dominance frontier of the
// definition blocks (pruned by block-level liveness, so no phi is
// created where the variable is dead). This is the classic
// Cytron-et-al. construction; it removes the load/store + bounds-check
// pair the bytecode VM pays for every scalar local in clc's -O0 output.
//
// An alloca instruction itself counts as a definition carrying the zero
// value of its element type: a fresh private region arrives zeroed, and
// re-executing an alloca (one declared inside a loop) yields a fresh
// zeroed region, so "reset to zero at the alloca's program point" is the
// exact register equivalent.
type Mem2Reg struct{}

// Name implements Pass.
func (Mem2Reg) Name() string { return "mem2reg" }

// Run implements Pass.
func (Mem2Reg) Run(m *ir.Module) error {
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		// Promotion walks the dominator tree, which only covers blocks
		// reachable from the entry; drop the rest so no stale load in an
		// unreachable block keeps referencing a deleted alloca.
		removeUnreachable(f)
		promoteFunc(f)
	}
	return nil
}

// zeroValue returns the constant a promoted variable holds before any
// store: private regions arrive zeroed, so it is always the zero of the
// element type.
func zeroValue(t *ir.Type) ir.Value {
	switch {
	case t.IsFloat():
		return &ir.ConstFloat{Ty: t, V: 0}
	case t.IsPointer():
		return &ir.ConstNull{Ty: t}
	default:
		return &ir.ConstInt{Ty: t, V: 0}
	}
}

func promoteFunc(f *ir.Function) {
	uses := AnalyzeAllocas(f)
	var vars []*AllocaUse
	varOf := make(map[*ir.Instr]int) // alloca -> index in vars
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if u := uses[in]; u != nil && u.Promotable() {
				varOf[in] = len(vars)
				vars = append(vars, u)
			}
		}
	}
	if len(vars) == 0 {
		return
	}
	d := computeDom(f)
	if len(d.rpo) == 0 {
		return
	}

	live := liveInBlocks(f, vars, varOf, d)

	// Phi placement: iterated dominance frontier of the definition
	// blocks, pruned to blocks where the variable is live on entry.
	phiVar := make(map[*ir.Instr]int) // inserted phi -> var index
	for vi, u := range vars {
		defBlocks := map[*ir.Block]bool{u.Alloca.Block(): true}
		for _, st := range u.Stores {
			defBlocks[st.Block()] = true
		}
		work := make([]*ir.Block, 0, len(defBlocks))
		for b := range defBlocks {
			work = append(work, b)
		}
		hasPhi := make(map[*ir.Block]bool)
		for len(work) > 0 {
			x := work[len(work)-1]
			work = work[:len(work)-1]
			for _, y := range d.front[x] {
				if hasPhi[y] || !live[vi][y] {
					continue
				}
				hasPhi[y] = true
				phi := &ir.Instr{Op: ir.OpPhi, Ty: u.Alloca.AllocaElem}
				prependInstr(y, phi)
				phiVar[phi] = vi
				if !defBlocks[y] {
					defBlocks[y] = true
					work = append(work, y)
				}
			}
		}
	}

	rn := &renamer{
		d:       d,
		varOf:   varOf,
		phiVar:  phiVar,
		stacks:  make([][]ir.Value, len(vars)),
		zeros:   make([]ir.Value, len(vars)),
		loadVal: make(map[*ir.Instr]ir.Value),
		dead:    make(map[*ir.Instr]bool),
	}
	for vi, u := range vars {
		rn.zeros[vi] = zeroValue(u.Alloca.AllocaElem)
	}
	rn.block(d.rpo[0])

	// Sweep: drop the promoted allocas, loads and stores, and rewrite
	// every remaining operand that referenced a deleted load.
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if rn.dead[in] {
				continue
			}
			for i, a := range in.Args {
				in.Args[i] = rn.resolve(a)
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}

	collapseTrivialPhis(f)
}

// prependInstr inserts an instruction at the head of the block, where
// phis must live. Append first so the block back-pointer is set, then
// rotate it to the front.
func prependInstr(b *ir.Block, in *ir.Instr) {
	b.Append(in)
	copy(b.Instrs[1:], b.Instrs[:len(b.Instrs)-1])
	b.Instrs[0] = in
}

// liveInBlocks computes, per promoted variable, the set of blocks where
// the variable is live on entry: a load is reachable without an
// intervening definition (store or the alloca itself). Block-granular
// backward dataflow, the standard pruning that keeps phis out of blocks
// where the value is dead.
func liveInBlocks(f *ir.Function, vars []*AllocaUse, varOf map[*ir.Instr]int, d *domInfo) []map[*ir.Block]bool {
	nv := len(vars)
	upExposed := make([]map[*ir.Block]bool, nv)
	defIn := make([]map[*ir.Block]bool, nv)
	liveIn := make([]map[*ir.Block]bool, nv)
	for i := range vars {
		upExposed[i] = make(map[*ir.Block]bool)
		defIn[i] = make(map[*ir.Block]bool)
		liveIn[i] = make(map[*ir.Block]bool)
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch {
			case in.Op == ir.OpAlloca:
				if vi, ok := varOf[in]; ok {
					defIn[vi][b] = true
				}
			case in.Op == ir.OpLoad:
				if al, ok := in.Args[0].(*ir.Instr); ok {
					if vi, ok := varOf[al]; ok && !defIn[vi][b] {
						upExposed[vi][b] = true
					}
				}
			case in.Op == ir.OpStore:
				if al, ok := in.Args[1].(*ir.Instr); ok {
					if vi, ok := varOf[al]; ok {
						defIn[vi][b] = true
					}
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i := len(d.rpo) - 1; i >= 0; i-- {
			b := d.rpo[i]
			for vi := 0; vi < nv; vi++ {
				if liveIn[vi][b] {
					continue
				}
				in := upExposed[vi][b]
				if !in && !defIn[vi][b] {
					for _, s := range b.Succs() {
						if liveIn[vi][s] {
							in = true
							break
						}
					}
				}
				if in {
					liveIn[vi][b] = true
					changed = true
				}
			}
		}
	}
	return liveIn
}

// renamer is the dominator-tree walk of the classic SSA construction:
// one definition stack per promoted variable.
type renamer struct {
	d       *domInfo
	varOf   map[*ir.Instr]int
	phiVar  map[*ir.Instr]int
	stacks  [][]ir.Value
	zeros   []ir.Value
	loadVal map[*ir.Instr]ir.Value // deleted load -> reaching definition
	dead    map[*ir.Instr]bool
}

func (r *renamer) top(vi int) ir.Value {
	s := r.stacks[vi]
	if len(s) == 0 {
		return r.zeros[vi]
	}
	return s[len(s)-1]
}

// resolve chases a value through deleted loads to the definition that
// reaches them.
func (r *renamer) resolve(v ir.Value) ir.Value {
	for {
		ld, ok := v.(*ir.Instr)
		if !ok {
			return v
		}
		repl, ok := r.loadVal[ld]
		if !ok {
			return v
		}
		v = repl
	}
}

func (r *renamer) block(b *ir.Block) {
	pushed := make([]int, len(r.stacks))
	for _, in := range b.Instrs {
		switch in.Op {
		case ir.OpPhi:
			if vi, ok := r.phiVar[in]; ok {
				r.stacks[vi] = append(r.stacks[vi], in)
				pushed[vi]++
			}
		case ir.OpAlloca:
			if vi, ok := r.varOf[in]; ok {
				r.stacks[vi] = append(r.stacks[vi], r.zeros[vi])
				pushed[vi]++
				r.dead[in] = true
			}
		case ir.OpLoad:
			if al, ok := in.Args[0].(*ir.Instr); ok {
				if vi, ok := r.varOf[al]; ok {
					r.loadVal[in] = r.top(vi)
					r.dead[in] = true
				}
			}
		case ir.OpStore:
			if al, ok := in.Args[1].(*ir.Instr); ok {
				if vi, ok := r.varOf[al]; ok {
					r.stacks[vi] = append(r.stacks[vi], r.resolve(in.Args[0]))
					pushed[vi]++
					r.dead[in] = true
				}
			}
		}
	}
	for _, s := range b.Succs() {
		for _, phi := range s.Phis() {
			if vi, ok := r.phiVar[phi]; ok {
				phi.AddIncoming(r.top(vi), b)
			}
		}
	}
	for _, c := range r.d.domkid[b] {
		r.block(c)
	}
	for vi, n := range pushed {
		if n > 0 {
			r.stacks[vi] = r.stacks[vi][:len(r.stacks[vi])-n]
		}
	}
}

// collapseTrivialPhis removes phis whose arms all carry the same value
// (or the phi itself), iterating because a collapse can make another
// phi trivial.
func collapseTrivialPhis(f *ir.Function) {
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if in.Op == ir.OpPhi {
					var only ir.Value
					trivial := true
					for _, a := range in.Args {
						if a == ir.Value(in) {
							continue
						}
						if only == nil {
							only = a
						} else if only != a {
							trivial = false
							break
						}
					}
					if trivial && only != nil {
						replaceAllUses(f, in, only)
						changed = true
						continue
					}
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
	}
}
