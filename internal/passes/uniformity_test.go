package passes

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// analyzeKernel compiles, optimizes and analyzes one kernel.
func analyzeKernel(t *testing.T, src, name string) (*ir.Function, *Uniformity) {
	t.Helper()
	mod := compileAndPromote(t, src, name)
	f := mod.Lookup(name)
	if f == nil {
		t.Fatalf("kernel %s lost", name)
	}
	return f, AnalyzeUniformity(f)
}

// blockByPrefix returns the unique block whose name starts with prefix.
func blockByPrefix(t *testing.T, f *ir.Function, prefix string) *ir.Block {
	t.Helper()
	var hit *ir.Block
	for _, b := range f.Blocks {
		if strings.HasPrefix(b.Name, prefix) {
			if hit != nil {
				t.Fatalf("multiple blocks match %q:\n%s", prefix, f)
			}
			hit = b
		}
	}
	if hit == nil {
		t.Fatalf("no block matches %q:\n%s", prefix, f)
	}
	return hit
}

// TestUniformityDiamondUniform: branching on a kernel argument keeps
// every block control-uniform and the join phi uniform.
func TestUniformityDiamondUniform(t *testing.T) {
	f, u := analyzeKernel(t, `
kernel void dia(global int* out, int c)
{
    int x;
    if (c > 0) x = 1; else x = 2;
    out[get_global_id(0)] = x;
}
`, "dia")
	for _, b := range f.Blocks {
		if !u.BlockUniform(b) {
			t.Errorf("block %s divergent, want uniform (branch condition is a kernel arg):\n%s", b.Name, f)
		}
	}
	join := blockByPrefix(t, f, "if.end")
	phis := join.Phis()
	if len(phis) != 1 {
		t.Fatalf("join has %d phis, want 1:\n%s", len(phis), f)
	}
	if !u.ValueUniform(phis[0]) {
		t.Errorf("join phi divergent, want uniform (both incomings are constants over a uniform branch)")
	}
}

// TestUniformityDiamondDivergent: branching on get_local_id makes the
// arms divergent, while the join — the branch block's postdominator —
// stays control-uniform; the join phi still turns divergent because
// lanes arrive over different edges.
func TestUniformityDiamondDivergent(t *testing.T) {
	f, u := analyzeKernel(t, `
kernel void ddia(global int* out)
{
    int x;
    if ((int)get_local_id(0) > 3) x = 1; else x = 2;
    out[get_global_id(0)] = x;
}
`, "ddia")
	for _, prefix := range []string{"if.then", "if.else"} {
		if b := blockByPrefix(t, f, prefix); u.BlockUniform(b) {
			t.Errorf("block %s uniform, want divergent (guarded by a local-id branch):\n%s", b.Name, f)
		}
	}
	join := blockByPrefix(t, f, "if.end")
	if !u.BlockUniform(join) {
		t.Errorf("join %s divergent, want uniform (it postdominates the branch):\n%s", join.Name, f)
	}
	phis := join.Phis()
	if len(phis) != 1 {
		t.Fatalf("join has %d phis, want 1:\n%s", len(phis), f)
	}
	if u.ValueUniform(phis[0]) {
		t.Errorf("join phi uniform, want divergent (its predecessors are divergent)")
	}
}

// TestUniformityLoop: a loop with an argument-bounded trip count is
// fully control-uniform and its induction phi is uniform; a value
// loaded from memory inside the loop is divergent.
func TestUniformityLoop(t *testing.T) {
	f, u := analyzeKernel(t, `
kernel void loop(global int* out, global const int* in, int n)
{
    int acc = 0;
    int i;
    for (i = 0; i < n; ++i) acc += in[i];
    out[get_global_id(0)] = acc;
}
`, "loop")
	for _, b := range f.Blocks {
		if !u.BlockUniform(b) {
			t.Errorf("block %s divergent, want uniform (trip count is a kernel arg):\n%s", b.Name, f)
		}
	}
	var sawInduction, sawLoad bool
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpPhi:
				// Both loop-carried phis: i is uniform; acc accumulates
				// loaded values, hence divergent.
				if len(b.Phis()) > 0 && u.ValueUniform(in) {
					sawInduction = true
				}
			case ir.OpLoad:
				sawLoad = true
				if u.ValueUniform(in) {
					t.Errorf("loaded value uniform, want divergent (loads are divergence seeds)")
				}
			}
		}
	}
	if !sawInduction {
		t.Errorf("no uniform loop-carried phi found, want the induction variable:\n%s", f)
	}
	if !sawLoad {
		t.Fatalf("fixture lost its load:\n%s", f)
	}
}

// TestUniformityNestedDivergence: an argument-conditioned branch NESTED
// inside a local-id-conditioned region is still divergent — control
// dependence widens through the enclosing divergent branch — and so is
// everything it guards.
func TestUniformityNestedDivergence(t *testing.T) {
	f, u := analyzeKernel(t, `
kernel void nest(global int* out, int c)
{
    int x = 0;
    if ((int)get_local_id(0) > 3) {
        if (c > 0) x = 1; else x = 2;
        x += 5;
    }
    out[get_global_id(0)] = x;
}
`, "nest")
	divergent := 0
	for _, b := range f.Blocks {
		if !u.BlockUniform(b) {
			divergent++
		}
	}
	// The outer then-region holds the inner diamond (then/else/join)
	// plus its own continuation: at least 4 divergent blocks.
	if divergent < 4 {
		t.Errorf("%d divergent blocks, want the whole nested region (>= 4):\n%s", divergent, f)
	}
	entry := f.Entry()
	if !u.BlockUniform(entry) {
		t.Errorf("entry divergent, want uniform:\n%s", f)
	}
	// The outer join postdominates the local-id branch: uniform again.
	last := f.Blocks[len(f.Blocks)-1]
	if t2 := last.Terminator(); t2 != nil && t2.Op == ir.OpRet && !u.BlockUniform(last) {
		t.Errorf("exit block divergent, want uniform (postdominates the divergence):\n%s", f)
	}
}

// TestUniformityGroupBuiltins: group-level builtins are uniform,
// item-level ones divergent.
func TestUniformityGroupBuiltins(t *testing.T) {
	f, u := analyzeKernel(t, `
kernel void ids(global long* out)
{
    long g = get_group_id(0) * get_local_size(0) + get_num_groups(0);
    long l = get_local_id(0) + get_global_id(0);
    out[l] = g + l;
}
`, "ids")
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpCall || !in.HasResult() {
				continue
			}
			switch in.Callee {
			case "get_group_id", "get_local_size", "get_num_groups":
				if !u.ValueUniform(in) {
					t.Errorf("%s divergent, want uniform (group-level builtin)", in.Callee)
				}
			case "get_local_id", "get_global_id":
				if u.ValueUniform(in) {
					t.Errorf("%s uniform, want divergent (item-level builtin)", in.Callee)
				}
			}
		}
	}
}
