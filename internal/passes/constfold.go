package passes

import "repro/internal/ir"

// ConstFold folds binary operations, comparisons, casts and selects whose
// operands are all constants, then rewrites uses. It iterates to a fixed
// point within each function.
type ConstFold struct{}

// Name implements Pass.
func (ConstFold) Name() string { return "constfold" }

// Run implements Pass.
func (ConstFold) Run(m *ir.Module) error {
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		for foldFunc(f) {
		}
	}
	return nil
}

func foldFunc(f *ir.Function) bool {
	changed := false
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if c := foldInstr(in); c != nil {
				replaceAllUses(f, in, c)
				changed = true
				continue // drop the folded instruction
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return changed
}

func foldInstr(in *ir.Instr) ir.Value {
	switch in.Op {
	case ir.OpBin:
		return foldBin(in)
	case ir.OpCmp:
		return foldCmp(in)
	case ir.OpCast:
		return foldCast(in)
	case ir.OpSelect:
		c, ok := ir.ConstIntValue(in.Args[0])
		if !ok {
			return nil
		}
		if c != 0 {
			return in.Args[1]
		}
		return in.Args[2]
	}
	return nil
}

func foldBin(in *ir.Instr) ir.Value {
	if in.BinK.IsFloatOp() {
		x, ok1 := ir.ConstFloatValue(in.Args[0])
		y, ok2 := ir.ConstFloatValue(in.Args[1])
		if !ok1 || !ok2 {
			return nil
		}
		var r float64
		switch in.BinK {
		case ir.FAdd:
			r = x + y
		case ir.FSub:
			r = x - y
		case ir.FMul:
			r = x * y
		case ir.FDiv:
			r = x / y
		default:
			return nil
		}
		if in.Ty.Kind == ir.F32 {
			r = float64(float32(r))
		}
		return &ir.ConstFloat{Ty: in.Ty, V: r}
	}
	x, ok1 := ir.ConstIntValue(in.Args[0])
	y, ok2 := ir.ConstIntValue(in.Args[1])
	if !ok1 || !ok2 {
		return nil
	}
	var r int64
	switch in.BinK {
	case ir.Add:
		r = x + y
	case ir.Sub:
		r = x - y
	case ir.Mul:
		r = x * y
	case ir.SDiv:
		if y == 0 {
			return nil // preserve the runtime trap
		}
		r = x / y
	case ir.SRem:
		if y == 0 {
			return nil
		}
		r = x % y
	case ir.And:
		r = x & y
	case ir.Or:
		r = x | y
	case ir.Xor:
		r = x ^ y
	case ir.Shl:
		r = x << uint64(y&63)
	case ir.AShr:
		r = x >> uint64(y&63)
	default:
		return nil
	}
	if in.Ty.Kind == ir.I32 {
		r = int64(int32(r))
	}
	if in.Ty.Kind == ir.Bool {
		r &= 1
	}
	return &ir.ConstInt{Ty: in.Ty, V: r}
}

func foldCmp(in *ir.Instr) ir.Value {
	if in.CmpK.IsFloatPred() {
		x, ok1 := ir.ConstFloatValue(in.Args[0])
		y, ok2 := ir.ConstFloatValue(in.Args[1])
		if !ok1 || !ok2 {
			return nil
		}
		var b bool
		switch in.CmpK {
		case ir.FEQ:
			b = x == y
		case ir.FNE:
			b = x != y
		case ir.FLT:
			b = x < y
		case ir.FLE:
			b = x <= y
		case ir.FGT:
			b = x > y
		case ir.FGE:
			b = x >= y
		}
		return ir.CBool(b)
	}
	x, ok1 := ir.ConstIntValue(in.Args[0])
	y, ok2 := ir.ConstIntValue(in.Args[1])
	if !ok1 || !ok2 {
		return nil
	}
	var b bool
	switch in.CmpK {
	case ir.IEQ:
		b = x == y
	case ir.INE:
		b = x != y
	case ir.ILT:
		b = x < y
	case ir.ILE:
		b = x <= y
	case ir.IGT:
		b = x > y
	case ir.IGE:
		b = x >= y
	}
	return ir.CBool(b)
}

func foldCast(in *ir.Instr) ir.Value {
	switch in.CastK {
	case ir.Trunc, ir.SExt, ir.ZExt:
		x, ok := ir.ConstIntValue(in.Args[0])
		if !ok {
			return nil
		}
		r := x
		if in.Ty.Kind == ir.I32 {
			r = int64(int32(r))
		}
		if in.Ty.Kind == ir.Bool {
			r &= 1
		}
		return &ir.ConstInt{Ty: in.Ty, V: r}
	case ir.SIToFP:
		x, ok := ir.ConstIntValue(in.Args[0])
		if !ok {
			return nil
		}
		r := float64(x)
		if in.Ty.Kind == ir.F32 {
			r = float64(float32(r))
		}
		return &ir.ConstFloat{Ty: in.Ty, V: r}
	case ir.FPToSI:
		x, ok := ir.ConstFloatValue(in.Args[0])
		if !ok {
			return nil
		}
		r := int64(x)
		if in.Ty.Kind == ir.I32 {
			r = int64(int32(r))
		}
		return &ir.ConstInt{Ty: in.Ty, V: r}
	case ir.FPTrunc:
		x, ok := ir.ConstFloatValue(in.Args[0])
		if !ok {
			return nil
		}
		return &ir.ConstFloat{Ty: in.Ty, V: float64(float32(x))}
	case ir.FPExt:
		x, ok := ir.ConstFloatValue(in.Args[0])
		if !ok {
			return nil
		}
		return &ir.ConstFloat{Ty: in.Ty, V: x}
	}
	return nil
}
