package passes

import "repro/internal/ir"

// Uniformity analysis: classifies every SSA value and every basic block
// of a kernel by whether it is the same across the work-items of one
// work-group ("uniform") or may differ per item ("divergent"). The
// bytecode compiler (internal/interp) uses the verdicts to build the
// warp execution stream: uniform instructions execute once per warp on
// a shared register file, divergent ones loop over the live lanes, and
// branches on divergent conditions force the warp back onto the scalar
// per-item path.
//
// A value is divergent if it (transitively) depends on a per-item
// source: get_local_id / get_global_id, any memory load, an atomic
// result (each lane observes a different old value), a private alloca
// (a distinct region per lane), or a call into IR code (not analyzed
// across calls — the VM spills at calls anyway). Kernel arguments,
// constants and group-level builtins (get_group_id, get_local_size,
// get_num_groups, ...) are uniform.
//
// A block is control-uniform when all work-items of a warp enter it
// together: it is not control-dependent on any branch with a divergent
// condition. Control dependence is approximated region-wise: every
// block reachable from a divergent branch's successors without passing
// the branch block's immediate postdominator is marked divergent (if
// the branch block has no postdominator — it cannot reach function
// exit — everything reachable from its successors is marked).
//
// A phi is uniform only if all incoming values are uniform AND its
// block and all predecessors are control-uniform: if lanes may arrive
// over different edges, the phi selects different incomings per lane
// even when each incoming is itself uniform.

// Uniformity holds the per-function analysis result.
type Uniformity struct {
	vals map[ir.Value]bool // defined values: true = uniform
	blks map[*ir.Block]bool
}

// ValueUniform reports whether v is uniform across the work-items of a
// group. Constants and kernel parameters are always uniform.
func (u *Uniformity) ValueUniform(v ir.Value) bool {
	switch v.(type) {
	case *ir.ConstInt, *ir.ConstFloat, *ir.ConstNull, *ir.Param:
		return true
	}
	return u.vals[v]
}

// BlockUniform reports whether all work-items of a warp enter b
// together (b is not control-dependent on a divergent branch).
func (u *Uniformity) BlockUniform(b *ir.Block) bool { return u.blks[b] }

// divergentSeed reports whether the instruction is a divergence source
// regardless of its operands.
func divergentSeed(in *ir.Instr, mod *ir.Module) bool {
	switch in.Op {
	case ir.OpLoad, ir.OpAtomic:
		return true
	case ir.OpAlloca:
		// A private alloca is a distinct region per work-item; local
		// allocas are one region per group, hence uniform.
		return in.AllocaSpace != ir.Local
	case ir.OpCall:
		switch in.Callee {
		case "get_local_id", "get_global_id":
			return true
		}
		if mod != nil {
			if f := mod.Lookup(in.Callee); f != nil && !f.IsDecl() {
				// Calls into IR code are not analyzed across the call.
				return true
			}
		}
		return false
	}
	return false
}

// AnalyzeUniformity computes the uniformity verdicts for f. The
// analysis is a monotone fixpoint: everything starts uniform, seeds
// and control dependence knock values and blocks over to divergent
// until nothing changes.
func AnalyzeUniformity(f *ir.Function) *Uniformity {
	u := &Uniformity{vals: make(map[ir.Value]bool), blks: make(map[*ir.Block]bool)}
	if f.Entry() == nil {
		return u
	}
	ipdom := computePostDom(f)
	for _, b := range f.Blocks {
		u.blks[b] = true
	}
	preds := make(map[*ir.Block][]*ir.Block)
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
		for _, in := range b.Instrs {
			if in.HasResult() {
				u.vals[in] = true
			}
		}
	}
	mod := f.Mod

	uniformArgs := func(in *ir.Instr) bool {
		for _, a := range in.Args {
			if !u.ValueUniform(a) {
				return false
			}
		}
		return true
	}

	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.HasResult() || !u.vals[in] {
					continue
				}
				div := false
				switch {
				case in.Op == ir.OpPhi:
					div = !u.blks[b] || !uniformArgs(in)
					if !div {
						for _, p := range in.Incoming {
							if !u.blks[p] {
								div = true
								break
							}
						}
					}
				case divergentSeed(in, mod):
					div = true
				default:
					div = !uniformArgs(in)
				}
				if div {
					u.vals[in] = false
					changed = true
				}
			}
			// Control dependence: a branch on a divergent condition
			// makes everything up to its postdominator divergent. A
			// branch inside an already-divergent block still
			// propagates — nested divergence widens the region.
			t := b.Terminator()
			if t != nil && t.Op == ir.OpCondBr && !u.ValueUniform(t.Args[0]) {
				stop := ipdom[b] // nil: cannot reach exit, mark all reachable
				seen := map[*ir.Block]bool{}
				var mark func(x *ir.Block)
				mark = func(x *ir.Block) {
					if x == stop || seen[x] {
						return
					}
					seen[x] = true
					if u.blks[x] {
						u.blks[x] = false
						changed = true
					}
					for _, s := range x.Succs() {
						mark(s)
					}
				}
				for _, s := range b.Succs() {
					mark(s)
				}
			}
		}
	}
	return u
}

// computePostDom returns each block's immediate postdominator over the
// reversed CFG, with a virtual exit joining all return blocks. A nil
// entry (or absent block) means the virtual exit itself is the
// immediate postdominator, or the block cannot reach function exit.
func computePostDom(f *ir.Function) map[*ir.Block]*ir.Block {
	blocks := f.Blocks
	n := len(blocks)
	idx := make(map[*ir.Block]int, n)
	for i, b := range blocks {
		idx[b] = i
	}
	// Reverse adjacency: radj[i] lists the predecessors of block i in
	// the reversed graph, i.e. its CFG successors; exit is node n.
	radj := make([][]int, n+1)
	for i, b := range blocks {
		t := b.Terminator()
		if t != nil && t.Op == ir.OpRet {
			radj[i] = append(radj[i], n)
		}
		for _, s := range b.Succs() {
			radj[i] = append(radj[i], idx[s])
		}
	}
	// Forward edges of the reversed graph (CFG predecessors + virtual
	// exit edges), for the DFS from the exit.
	fwd := make([][]int, n+1)
	for i, outs := range radj {
		for _, o := range outs {
			fwd[o] = append(fwd[o], i)
		}
	}
	// Postorder of the reversed graph from the exit; unreachable nodes
	// (blocks that never reach a return) stay unnumbered.
	post := make([]int, 0, n+1)
	num := make([]int, n+1)
	for i := range num {
		num[i] = -1
	}
	seen := make([]bool, n+1)
	var visit func(x int)
	visit = func(x int) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, y := range fwd[x] {
			visit(y)
		}
		num[x] = len(post)
		post = append(post, x)
	}
	visit(n)

	// Cooper/Harvey/Kennedy over the reversed graph: higher postorder
	// number = closer to the exit root.
	ip := make([]int, n+1)
	for i := range ip {
		ip[i] = -1
	}
	ip[n] = n
	intersect := func(a, b int) int {
		for a != b {
			for num[a] < num[b] {
				a = ip[a]
			}
			for num[b] < num[a] {
				b = ip[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for i := len(post) - 2; i >= 0; i-- { // skip the exit root
			x := post[i]
			ni := -1
			for _, p := range radj[x] {
				if ip[p] < 0 {
					continue
				}
				if ni < 0 {
					ni = p
				} else {
					ni = intersect(ni, p)
				}
			}
			if ni >= 0 && ip[x] != ni {
				ip[x] = ni
				changed = true
			}
		}
	}
	out := make(map[*ir.Block]*ir.Block, n)
	for i, b := range blocks {
		if ip[i] >= 0 && ip[i] < n {
			out[b] = blocks[ip[i]]
		}
	}
	return out
}
