package passes

import (
	"strings"
	"testing"

	"repro/internal/clc"
	"repro/internal/ir"
)

// compileAndPromote runs the front end and the full O1 pipeline.
func compileAndPromote(t *testing.T, src, name string) *ir.Module {
	t.Helper()
	mod, err := clc.Compile(src, name)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := RunO1(mod); err != nil {
		t.Fatalf("O1: %v", err)
	}
	return mod
}

func countOps(f *ir.Function, op ir.Opcode) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

// phisByBlock maps block-name prefixes to their phi counts.
func phisByBlock(f *ir.Function) map[string]int {
	m := make(map[string]int)
	for _, b := range f.Blocks {
		if n := len(b.Phis()); n > 0 {
			m[b.Name] = n
		}
	}
	return m
}

// TestMem2RegDiamond: an if/else assigning one variable must promote to
// exactly one phi at the join, with no allocas left.
func TestMem2RegDiamond(t *testing.T) {
	mod := compileAndPromote(t, `
kernel void dia(global int* out, int c)
{
    int x;
    if (c > 0) x = 1; else x = 2;
    out[0] = x;
}
`, "dia")
	f := mod.Lookup("dia")
	if n := countOps(f, ir.OpAlloca); n != 0 {
		t.Errorf("%d allocas survive promotion, want 0:\n%s", n, f)
	}
	if n := countOps(f, ir.OpPhi); n != 1 {
		t.Errorf("%d phis, want exactly 1 (the diamond join):\n%s", n, f)
	}
	for blk, n := range phisByBlock(f) {
		if !strings.HasPrefix(blk, "if.end") {
			t.Errorf("phi placed in %s (%d), want the if.end join:\n%s", blk, n, f)
		}
	}
}

// TestMem2RegLoop: a counted accumulation loop carries two variables
// (induction + accumulator) around the back edge: two phis, all in the
// loop header, zero allocas and zero loads/stores of locals.
func TestMem2RegLoop(t *testing.T) {
	mod := compileAndPromote(t, `
kernel void loop(global int* out, int n)
{
    int acc = 0;
    int i;
    for (i = 0; i < n; ++i) acc += i;
    out[0] = acc;
}
`, "loop")
	f := mod.Lookup("loop")
	if n := countOps(f, ir.OpAlloca); n != 0 {
		t.Errorf("%d allocas survive promotion, want 0:\n%s", n, f)
	}
	if n := countOps(f, ir.OpPhi); n != 2 {
		t.Errorf("%d phis, want 2 (i and acc at the header):\n%s", n, f)
	}
	for blk := range phisByBlock(f) {
		if !strings.HasPrefix(blk, "for.cond") {
			t.Errorf("phi placed in %s, want the loop header:\n%s", blk, f)
		}
	}
	// The loop body must be pure register code: its only memory access
	// is the final out[0] store after the loop.
	if n := countOps(f, ir.OpLoad); n != 0 {
		t.Errorf("%d loads survive, want 0:\n%s", n, f)
	}
	if n := countOps(f, ir.OpStore); n != 1 {
		t.Errorf("%d stores survive, want only the out[0] store:\n%s", n, f)
	}
}

// TestMem2RegNestedLoop: both headers get phis for the variables live
// around their back edges.
func TestMem2RegNestedLoop(t *testing.T) {
	mod := compileAndPromote(t, `
kernel void nest(global int* out, int n)
{
    int acc = 0;
    int i;
    int j;
    for (i = 0; i < n; ++i)
        for (j = 0; j < i; ++j)
            acc += i * j;
    out[0] = acc;
}
`, "nest")
	f := mod.Lookup("nest")
	if n := countOps(f, ir.OpAlloca); n != 0 {
		t.Errorf("%d allocas survive promotion, want 0:\n%s", n, f)
	}
	byBlk := phisByBlock(f)
	var outer, inner int
	for blk, n := range byBlk {
		switch {
		case strings.HasPrefix(blk, "for.cond1"):
			outer = n
		case strings.HasPrefix(blk, "for.cond"):
			inner = n
		default:
			t.Errorf("phi placed outside loop headers, in %s:\n%s", blk, f)
		}
	}
	// Outer header: i and acc (j is re-initialized each outer trip, so
	// it is not live around the outer back edge... but its alloca-reset
	// definition may still demand a phi depending on liveness). At
	// minimum i and acc must be there.
	if outer < 2 {
		t.Errorf("outer header has %d phis, want >= 2 (i, acc):\n%s", outer, f)
	}
	// Inner header: j and acc.
	if inner != 2 {
		t.Errorf("inner header has %d phis, want 2 (j, acc):\n%s", inner, f)
	}
}

// TestMem2RegEscape: an alloca whose address is stored (escapes) must
// not be promoted, while its neighbours are.
func TestMem2RegEscape(t *testing.T) {
	m := ir.NewModule("esc")
	f := m.NewFunction("esc", ir.VoidT,
		&ir.Param{Nam: "out", Ty: ir.PointerTo(ir.PointerTo(ir.I32T, ir.Private), ir.Global), Idx: 0})
	f.Kernel = true
	b := ir.NewBuilder(f)
	escaping := b.Alloca(ir.I32T, 1, ir.Private)
	promoted := b.Alloca(ir.I32T, 1, ir.Private)
	b.Store(ir.CI(7), promoted)
	ld := b.Load(promoted)
	b.Store(ld, escaping)
	b.Store(escaping, f.Params[0]) // address escapes to memory
	b.Ret(nil)
	if err := RunO1(m); err != nil {
		t.Fatalf("O1: %v", err)
	}
	nf := m.Lookup("esc")
	if n := countOps(nf, ir.OpAlloca); n != 1 {
		t.Errorf("%d allocas remain, want exactly the escaping one:\n%s", n, nf)
	}
	remaining := ""
	for _, blk := range nf.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpAlloca {
				remaining = in.Ident()
			}
		}
	}
	_ = remaining // identity is positional; the count assertion is the contract
}

// TestMem2RegUninitializedLoad: a load with no dominating store reads
// the zero a fresh private region holds — promotion must preserve that.
func TestMem2RegUninitializedLoad(t *testing.T) {
	m := ir.NewModule("uninit")
	f := m.NewFunction("u", ir.I32T)
	b := ir.NewBuilder(f)
	x := b.Alloca(ir.I32T, 1, ir.Private)
	v := b.Load(x)
	b.Ret(v)
	if err := RunO1(m); err != nil {
		t.Fatalf("O1: %v", err)
	}
	nf := m.Lookup("u")
	ret := nf.Entry().Terminator()
	cv, ok := ir.ConstIntValue(ret.Args[0])
	if !ok || cv != 0 {
		t.Errorf("uninitialized load promoted to %v, want constant 0:\n%s", ret.Args[0], nf)
	}
}

// TestDCEEscapeAware: the rewritten removeDeadAllocaStores must keep an
// alloca whose address escapes even though it is never loaded, and
// still delete genuinely write-only allocas.
func TestDCEEscapeAware(t *testing.T) {
	m := ir.NewModule("dce")
	f := m.NewFunction("f", ir.VoidT,
		&ir.Param{Nam: "sink", Ty: ir.PointerTo(ir.PointerTo(ir.I32T, ir.Private), ir.Global), Idx: 0})
	b := ir.NewBuilder(f)
	escaped := b.Alloca(ir.I32T, 1, ir.Private)
	deadOnly := b.Alloca(ir.I32T, 1, ir.Private)
	b.Store(ir.CI(1), escaped)
	b.Store(ir.CI(2), deadOnly)
	b.Store(escaped, f.Params[0]) // address observable: stores into it are not dead
	b.Ret(nil)
	if err := (DCE{}).Run(m); err != nil {
		t.Fatal(err)
	}
	nf := m.Lookup("f")
	if n := countOps(nf, ir.OpAlloca); n != 1 {
		t.Fatalf("%d allocas after DCE, want 1 (the escaping one):\n%s", n, nf)
	}
	if nf.Entry().Instrs[0] != escaped {
		t.Errorf("DCE removed the escaping alloca instead of the write-only one:\n%s", nf)
	}
}

// TestSimplifyCFGMerge: straight-line pairs merge, and phi incomings in
// successors are retargeted to the surviving block.
func TestSimplifyCFGMerge(t *testing.T) {
	mod := compileAndPromote(t, `
kernel void m(global int* out, int n)
{
    int i;
    int acc = 0;
    for (i = 0; i < n; ++i) acc += i;
    out[0] = acc;
}
`, "m")
	f := mod.Lookup("m")
	// The front end emits for.cond/for.body/for.post/for.end; after
	// promotion the body and post are straight-line and must merge.
	for _, b := range f.Blocks {
		if strings.HasPrefix(b.Name, "for.post") {
			t.Errorf("for.post survived simplifycfg:\n%s", f)
		}
	}
	if err := ir.Verify(mod); err != nil {
		t.Errorf("merged module fails verify: %v", err)
	}
}
