// Package passes provides the middle-end passes run by the accelOS JIT
// pipeline: constant folding, dead code elimination, a liveness-based
// register usage estimator (feeding the occupancy model) and instruction
// counting (feeding the adaptive scheduling policy).
package passes

import (
	"fmt"

	"repro/internal/ir"
)

// Pass transforms or analyzes a module.
type Pass interface {
	Name() string
	Run(m *ir.Module) error
}

// Manager runs a pass pipeline, verifying the module after each pass.
type Manager struct {
	Passes []Pass
	// Verify controls whether the IR verifier runs after every pass.
	Verify bool
}

// NewManager returns a manager with verification enabled.
func NewManager(ps ...Pass) *Manager {
	return &Manager{Passes: ps, Verify: true}
}

// O1 returns the optimization pipeline the bytecode VM compiles behind:
// mem2reg (allocas to SSA values with phis), constant folding, dead
// code elimination, and straight-line block merging, in that order.
// Passes named in disable are skipped — the per-pass knob the parity
// suite and the accelsim -dump-ir tool use to isolate one pass.
func O1(disable ...string) *Manager {
	skip := make(map[string]bool, len(disable))
	for _, n := range disable {
		skip[n] = true
	}
	all := []Pass{Mem2Reg{}, ConstFold{}, DCE{}, SimplifyCFG{}}
	var ps []Pass
	for _, p := range all {
		if !skip[p.Name()] {
			ps = append(ps, p)
		}
	}
	return NewManager(ps...)
}

// RunO1 runs the O1 pipeline over the module in place.
func RunO1(m *ir.Module, disable ...string) error {
	return O1(disable...).Run(m)
}

// Run executes the pipeline.
func (pm *Manager) Run(m *ir.Module) error {
	for _, p := range pm.Passes {
		if err := p.Run(m); err != nil {
			return fmt.Errorf("pass %s: %w", p.Name(), err)
		}
		if pm.Verify {
			if err := ir.Verify(m); err != nil {
				return fmt.Errorf("after pass %s: %w", p.Name(), err)
			}
		}
	}
	return nil
}

// replaceAllUses rewrites every operand equal to old with new within f.
func replaceAllUses(f *ir.Function, old, new ir.Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
				}
			}
		}
	}
}

// hasUses reports whether v is used as an operand anywhere in f.
func hasUses(f *ir.Function, v ir.Value) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a == v {
					return true
				}
			}
		}
	}
	return false
}
