// Package passes provides the middle-end passes run by the accelOS JIT
// pipeline: constant folding, dead code elimination, a liveness-based
// register usage estimator (feeding the occupancy model) and instruction
// counting (feeding the adaptive scheduling policy).
package passes

import (
	"fmt"

	"repro/internal/ir"
)

// Pass transforms or analyzes a module.
type Pass interface {
	Name() string
	Run(m *ir.Module) error
}

// Manager runs a pass pipeline, verifying the module after each pass.
type Manager struct {
	Passes []Pass
	// Verify controls whether the IR verifier runs after every pass.
	Verify bool
}

// NewManager returns a manager with verification enabled.
func NewManager(ps ...Pass) *Manager {
	return &Manager{Passes: ps, Verify: true}
}

// Run executes the pipeline.
func (pm *Manager) Run(m *ir.Module) error {
	for _, p := range pm.Passes {
		if err := p.Run(m); err != nil {
			return fmt.Errorf("pass %s: %w", p.Name(), err)
		}
		if pm.Verify {
			if err := ir.Verify(m); err != nil {
				return fmt.Errorf("after pass %s: %w", p.Name(), err)
			}
		}
	}
	return nil
}

// replaceAllUses rewrites every operand equal to old with new within f.
func replaceAllUses(f *ir.Function, old, new ir.Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
				}
			}
		}
	}
}

// hasUses reports whether v is used as an operand anywhere in f.
func hasUses(f *ir.Function, v ir.Value) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a == v {
					return true
				}
			}
		}
	}
	return false
}
