package clc

import (
	"fmt"

	"repro/internal/ir"
)

// Compile parses, analyzes and lowers CLC source to an IR module.
func Compile(src, name string) (*ir.Module, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Analyze(file); err != nil {
		return nil, err
	}
	return Generate(file, name)
}

// Generate lowers an analyzed file to IR.
func Generate(file *File, name string) (*ir.Module, error) {
	g := &gen{m: ir.NewModule(name)}
	for _, fd := range file.Funcs {
		g.declare(fd)
	}
	for _, fd := range file.Funcs {
		if fd.Body != nil {
			g.genFunc(fd)
		}
	}
	if g.err != nil {
		return nil, g.err
	}
	if err := ir.Verify(g.m); err != nil {
		return nil, fmt.Errorf("clc: internal error: generated invalid IR: %w", err)
	}
	return g.m, nil
}

type loopCtx struct {
	brk, cont *ir.Block
}

type gen struct {
	m     *ir.Module
	b     *ir.Builder
	fd    *FuncDecl
	irFn  *ir.Function
	loops []loopCtx
	err   error
}

func (g *gen) errorf(pos Pos, format string, args ...interface{}) {
	if g.err == nil {
		g.err = fmt.Errorf("clc: %s: %s", pos, fmt.Sprintf(format, args...))
	}
}

func (g *gen) declare(fd *FuncDecl) {
	if g.m.Lookup(fd.Name) != nil && fd.Body == nil {
		return
	}
	var params []*ir.Param
	for i, p := range fd.Params {
		ty := p.Sym.Ty
		nm := p.Name
		if nm == "" {
			nm = fmt.Sprintf("arg%d", i)
		}
		params = append(params, &ir.Param{Nam: nm, Ty: ty.IR(), Idx: i})
	}
	f := g.m.NewFunction(fd.Name, fd.RetType.IR(), params...)
	f.Kernel = fd.IsKernel
}

func (g *gen) genFunc(fd *FuncDecl) {
	g.fd = fd
	g.irFn = g.m.Lookup(fd.Name)
	g.b = ir.NewBuilder(g.irFn)
	// -O0 style: spill parameters to allocas so that every variable has a
	// memory home.
	for i, p := range fd.Params {
		slot := g.b.Alloca(g.irFn.Params[i].Ty, 1, ir.Private)
		g.b.Store(g.irFn.Params[i], slot)
		p.Sym.IRValue = slot
	}
	g.genBlockStmt(fd.Body)
	if !g.b.Cur.Terminated() {
		if fd.RetType.K == CVoid {
			g.b.Ret(nil)
		} else {
			g.b.Ret(g.zero(fd.RetType))
		}
	}
	// Remove unterminated trailing blocks created by branches out of
	// loops (e.g. a dead "after" block): give them explicit returns.
	for _, blk := range g.irFn.Blocks {
		if !blk.Terminated() {
			save := g.b.Cur
			g.b.SetInsert(blk)
			if fd.RetType.K == CVoid {
				g.b.Ret(nil)
			} else {
				g.b.Ret(g.zero(fd.RetType))
			}
			g.b.SetInsert(save)
		}
	}
}

func (g *gen) zero(t *CType) ir.Value {
	switch t.IR().Kind {
	case ir.I32:
		return ir.CI(0)
	case ir.I64:
		return ir.CI64(0)
	case ir.F32:
		return ir.CF32(0)
	case ir.F64:
		return ir.CF64(0)
	case ir.Pointer:
		return &ir.ConstNull{Ty: t.IR()}
	}
	return ir.CI(0)
}

func (g *gen) genBlockStmt(b *BlockStmt) {
	for _, st := range b.List {
		g.genStmt(st)
		if g.b.Cur.Terminated() {
			// Dead code after return/break/continue: skip to keep IR
			// well-formed.
			return
		}
	}
}

func (g *gen) genStmt(st Stmt) {
	switch x := st.(type) {
	case *BlockStmt:
		g.genBlockStmt(x)
	case *EmptyStmt:
	case *DeclStmt:
		ty := x.Sym.Ty
		var slot *ir.Instr
		if ty.K == CArray {
			slot = g.b.Alloca(ty.Elem.IR(), ty.Len, ty.Space)
		} else {
			slot = g.b.Alloca(ty.IR(), 1, ir.Private)
		}
		x.Sym.IRValue = slot
		if x.Init != nil {
			v := g.genExpr(x.Init)
			v = g.convert(v, TypeOf(x.Init), ty)
			g.b.Store(v, slot)
		}
	case *ExprStmt:
		g.genExpr(x.X)
	case *IfStmt:
		cond := g.genCond(x.Cond)
		thenB := g.b.NewBlock("if.then")
		afterB := g.b.NewBlock("if.end")
		elseB := afterB
		if x.Else != nil {
			elseB = g.b.NewBlock("if.else")
		}
		g.b.CondBr(cond, thenB, elseB)
		g.b.SetInsert(thenB)
		g.genStmt(x.Then)
		if !g.b.Cur.Terminated() {
			g.b.Br(afterB)
		}
		if x.Else != nil {
			g.b.SetInsert(elseB)
			g.genStmt(x.Else)
			if !g.b.Cur.Terminated() {
				g.b.Br(afterB)
			}
		}
		g.b.SetInsert(afterB)
	case *ForStmt:
		if x.Init != nil {
			g.genStmt(x.Init)
		}
		condB := g.b.NewBlock("for.cond")
		bodyB := g.b.NewBlock("for.body")
		postB := g.b.NewBlock("for.post")
		afterB := g.b.NewBlock("for.end")
		g.b.Br(condB)
		g.b.SetInsert(condB)
		if x.Cond != nil {
			g.b.CondBr(g.genCond(x.Cond), bodyB, afterB)
		} else {
			g.b.Br(bodyB)
		}
		g.b.SetInsert(bodyB)
		g.loops = append(g.loops, loopCtx{brk: afterB, cont: postB})
		g.genStmt(x.Body)
		g.loops = g.loops[:len(g.loops)-1]
		if !g.b.Cur.Terminated() {
			g.b.Br(postB)
		}
		g.b.SetInsert(postB)
		if x.Post != nil {
			g.genExpr(x.Post)
		}
		g.b.Br(condB)
		g.b.SetInsert(afterB)
	case *WhileStmt:
		condB := g.b.NewBlock("while.cond")
		bodyB := g.b.NewBlock("while.body")
		afterB := g.b.NewBlock("while.end")
		if x.DoWhile {
			g.b.Br(bodyB)
		} else {
			g.b.Br(condB)
		}
		g.b.SetInsert(condB)
		g.b.CondBr(g.genCond(x.Cond), bodyB, afterB)
		g.b.SetInsert(bodyB)
		g.loops = append(g.loops, loopCtx{brk: afterB, cont: condB})
		g.genStmt(x.Body)
		g.loops = g.loops[:len(g.loops)-1]
		if !g.b.Cur.Terminated() {
			g.b.Br(condB)
		}
		g.b.SetInsert(afterB)
	case *ReturnStmt:
		if x.X == nil {
			g.b.Ret(nil)
			return
		}
		v := g.genExpr(x.X)
		v = g.convert(v, TypeOf(x.X), g.fd.RetType)
		g.b.Ret(v)
	case *BranchStmt:
		if len(g.loops) == 0 {
			g.errorf(x.P, "break/continue outside a loop")
			return
		}
		lc := g.loops[len(g.loops)-1]
		if x.IsBreak {
			g.b.Br(lc.brk)
		} else {
			g.b.Br(lc.cont)
		}
		// Continue emitting any dead code into a fresh block.
		g.b.SetInsert(g.b.NewBlock("dead"))
	default:
		panic(fmt.Sprintf("clc: unknown statement %T", st))
	}
}

// convert emits the implicit conversion of v from type "from" to "to".
func (g *gen) convert(v ir.Value, from, to *CType) ir.Value {
	if from == nil || to == nil || from.Equal(to) {
		return v
	}
	if from.K == CArray && to.K == CPtr {
		return v // arrays are already pointers in IR
	}
	fi, ti := from.IR(), to.IR()
	if fi.Equal(ti) {
		return v
	}
	switch {
	case fi.IsInt() && ti.IsInt():
		if ti.Size() > fi.Size() {
			return g.b.Cast(ir.SExt, v, ti)
		}
		return g.b.Cast(ir.Trunc, v, ti)
	case fi.IsInt() && ti.IsFloat():
		return g.b.Cast(ir.SIToFP, v, ti)
	case fi.IsFloat() && ti.IsInt():
		return g.b.Cast(ir.FPToSI, v, ti)
	case fi.IsFloat() && ti.IsFloat():
		if ti.Size() > fi.Size() {
			return g.b.Cast(ir.FPExt, v, ti)
		}
		return g.b.Cast(ir.FPTrunc, v, ti)
	case fi.IsPointer() && ti.IsPointer():
		return g.b.Cast(ir.PtrCast, v, ti)
	}
	g.errorf(Pos{}, "unsupported conversion from %s to %s", from, to)
	return v
}

// genCond evaluates e as an i1 condition with short-circuiting.
func (g *gen) genCond(e Expr) ir.Value {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case "&&", "||":
			// Short-circuit via a result slot.
			slot := g.b.Alloca(ir.BoolT, 1, ir.Private)
			lhs := g.genCond(x.X)
			rhsB := g.b.NewBlock("sc.rhs")
			endB := g.b.NewBlock("sc.end")
			g.b.Store(lhs, slot)
			if x.Op == "&&" {
				g.b.CondBr(lhs, rhsB, endB)
			} else {
				g.b.CondBr(lhs, endB, rhsB)
			}
			g.b.SetInsert(rhsB)
			rhs := g.genCond(x.Y)
			g.b.Store(rhs, slot)
			g.b.Br(endB)
			g.b.SetInsert(endB)
			return g.b.Load(slot)
		case "==", "!=", "<", ">", "<=", ">=":
			tx, ty := TypeOf(x.X), TypeOf(x.Y)
			if tx.K == CPtr && ty.K == CPtr {
				vx := g.genExpr(x.X)
				vy := g.genExpr(x.Y)
				pred := map[string]ir.CmpPred{"==": ir.IEQ, "!=": ir.INE, "<": ir.ILT, ">": ir.IGT, "<=": ir.ILE, ">=": ir.IGE}[x.Op]
				return g.b.Cmp(pred, vx, vy)
			}
			ct := commonArith(tx, ty)
			vx := g.convert(g.genExpr(x.X), tx, ct)
			vy := g.convert(g.genExpr(x.Y), ty, ct)
			var pred ir.CmpPred
			if ct.IsFloat() {
				pred = map[string]ir.CmpPred{"==": ir.FEQ, "!=": ir.FNE, "<": ir.FLT, ">": ir.FGT, "<=": ir.FLE, ">=": ir.FGE}[x.Op]
			} else {
				pred = map[string]ir.CmpPred{"==": ir.IEQ, "!=": ir.INE, "<": ir.ILT, ">": ir.IGT, "<=": ir.ILE, ">=": ir.IGE}[x.Op]
			}
			return g.b.Cmp(pred, vx, vy)
		}
	case *Unary:
		if x.Op == "!" {
			c := g.genCond(x.X)
			return g.b.Bin(ir.Xor, c, ir.CBool(true))
		}
	}
	// Fallback: value != 0.
	v := g.genExpr(e)
	t := TypeOf(e)
	switch {
	case t.K == CPtr:
		return g.b.Cmp(ir.INE, v, &ir.ConstNull{Ty: t.IR()})
	case t.IsFloat():
		zero := ir.Value(ir.CF32(0))
		if t.K == CDouble {
			zero = ir.CF64(0)
		}
		return g.b.Cmp(ir.FNE, v, zero)
	default:
		zero := ir.Value(ir.CI(0))
		if t.IR().Kind == ir.I64 {
			zero = ir.CI64(0)
		}
		return g.b.Cmp(ir.INE, v, zero)
	}
}

// genLValue returns a pointer to the storage designated by e.
func (g *gen) genLValue(e Expr) ir.Value {
	switch x := e.(type) {
	case *Ident:
		if x.Sym == nil || x.Sym.IRValue == nil {
			g.errorf(x.P, "unresolved identifier %q", x.Name)
			return g.b.Alloca(ir.I32T, 1, ir.Private)
		}
		return x.Sym.IRValue
	case *Unary:
		if x.Op == "*" {
			return g.genExpr(x.X)
		}
	case *Index:
		base := g.genExpr(x.X)
		idx := g.genExpr(x.I)
		idx = g.convert(idx, TypeOf(x.I), TypeLong)
		return g.b.GEP(base, idx)
	}
	g.errorf(e.Pos(), "expression is not an lvalue")
	return g.b.Alloca(ir.I32T, 1, ir.Private)
}

// genExpr evaluates e as an rvalue.
func (g *gen) genExpr(e Expr) ir.Value {
	switch x := e.(type) {
	case *IntLit:
		if TypeOf(x).K == CLong {
			return ir.CI64(x.V)
		}
		return ir.CI(x.V)
	case *FloatLit:
		return ir.CF32(x.V)
	case *Ident:
		if x.Sym != nil && x.Sym.Ty.K == CArray {
			return x.Sym.IRValue // decay
		}
		return g.b.Load(g.genLValue(x))
	case *Unary:
		switch x.Op {
		case "-":
			t := TypeOf(x)
			v := g.convert(g.genExpr(x.X), TypeOf(x.X), t)
			if t.IsFloat() {
				return g.b.Bin(ir.FSub, g.zero(t), v)
			}
			return g.b.Bin(ir.Sub, g.zero(t), v)
		case "~":
			v := g.genExpr(x.X)
			t := TypeOf(x.X)
			allOnes := ir.Value(ir.CI(-1))
			if t.IR().Kind == ir.I64 {
				allOnes = ir.CI64(-1)
			}
			return g.b.Bin(ir.Xor, v, allOnes)
		case "!":
			c := g.genCond(x)
			return g.b.Cast(ir.ZExt, c, ir.I32T)
		case "*":
			return g.b.Load(g.genExpr(x.X))
		case "&":
			return g.genLValue(x.X)
		}
	case *IncDec:
		ptr := g.genLValue(x.X)
		old := g.b.Load(ptr)
		t := TypeOf(x.X)
		var next ir.Value
		switch {
		case t.K == CPtr:
			step := int64(1)
			if x.Op == "--" {
				step = -1
			}
			next = g.b.GEP(old, ir.CI64(step))
		case t.IsFloat():
			one := ir.Value(ir.CF32(1))
			if t.K == CDouble {
				one = ir.CF64(1)
			}
			k := ir.FAdd
			if x.Op == "--" {
				k = ir.FSub
			}
			next = g.b.Bin(k, old, one)
		default:
			one := ir.Value(ir.CI(1))
			if t.IR().Kind == ir.I64 {
				one = ir.CI64(1)
			}
			k := ir.Add
			if x.Op == "--" {
				k = ir.Sub
			}
			next = g.b.Bin(k, old, one)
		}
		g.b.Store(next, ptr)
		if x.Post {
			return old
		}
		return next
	case *Binary:
		return g.genBinary(x)
	case *Assign:
		return g.genAssign(x)
	case *Cond:
		t := TypeOf(x)
		slot := g.b.Alloca(t.IR(), 1, ir.Private)
		c := g.genCond(x.C)
		thenB := g.b.NewBlock("cond.then")
		elseB := g.b.NewBlock("cond.else")
		endB := g.b.NewBlock("cond.end")
		g.b.CondBr(c, thenB, elseB)
		g.b.SetInsert(thenB)
		tv := g.convert(g.genExpr(x.Then), TypeOf(x.Then), t)
		g.b.Store(tv, slot)
		g.b.Br(endB)
		g.b.SetInsert(elseB)
		ev := g.convert(g.genExpr(x.Else), TypeOf(x.Else), t)
		g.b.Store(ev, slot)
		g.b.Br(endB)
		g.b.SetInsert(endB)
		return g.b.Load(slot)
	case *Index:
		return g.b.Load(g.genLValue(x))
	case *CastExpr:
		v := g.genExpr(x.X)
		return g.convert(v, TypeOf(x.X), TypeOf(x))
	case *Call:
		return g.genCall(x)
	}
	panic(fmt.Sprintf("clc: unknown expression %T", e))
}

var intBinOps = map[string]ir.BinKind{
	"+": ir.Add, "-": ir.Sub, "*": ir.Mul, "/": ir.SDiv, "%": ir.SRem,
	"&": ir.And, "|": ir.Or, "^": ir.Xor, "<<": ir.Shl, ">>": ir.AShr,
}

var floatBinOps = map[string]ir.BinKind{
	"+": ir.FAdd, "-": ir.FSub, "*": ir.FMul, "/": ir.FDiv,
}

func (g *gen) genBinary(x *Binary) ir.Value {
	switch x.Op {
	case "&&", "||", "==", "!=", "<", ">", "<=", ">=":
		c := g.genCond(x)
		return g.b.Cast(ir.ZExt, c, ir.I32T)
	}
	tx, ty := TypeOf(x.X), TypeOf(x.Y)
	// Pointer arithmetic.
	if (tx.K == CPtr || tx.K == CArray) && ty.IsInt() {
		base := g.genExpr(x.X)
		idx := g.convert(g.genExpr(x.Y), ty, TypeLong)
		if x.Op == "-" {
			idx = g.b.Bin(ir.Sub, ir.CI64(0), idx)
		}
		return g.b.GEP(base, idx)
	}
	if x.Op == "+" && ty.K == CPtr && tx.IsInt() {
		base := g.genExpr(x.Y)
		idx := g.convert(g.genExpr(x.X), tx, TypeLong)
		return g.b.GEP(base, idx)
	}
	if tx.K == CPtr && ty.K == CPtr && x.Op == "-" {
		g.errorf(x.P, "pointer difference is not supported")
		return ir.CI64(0)
	}
	t := TypeOf(x)
	vx := g.convert(g.genExpr(x.X), tx, t)
	vy := g.convert(g.genExpr(x.Y), ty, t)
	if t.IsFloat() {
		k, ok := floatBinOps[x.Op]
		if !ok {
			g.errorf(x.P, "invalid float operation %q", x.Op)
			return vx
		}
		return g.b.Bin(k, vx, vy)
	}
	k, ok := intBinOps[x.Op]
	if !ok {
		g.errorf(x.P, "invalid integer operation %q", x.Op)
		return vx
	}
	// Shift counts keep the left operand's type.
	if x.Op == "<<" || x.Op == ">>" {
		vx = g.convert(g.genExpr(x.X), tx, t)
	}
	return g.b.Bin(k, vx, vy)
}

func (g *gen) genAssign(x *Assign) ir.Value {
	tl := TypeOf(x.L)
	ptr := g.genLValue(x.L)
	if x.Op == "=" {
		v := g.convert(g.genExpr(x.R), TypeOf(x.R), tl)
		g.b.Store(v, ptr)
		return v
	}
	op := x.Op[:len(x.Op)-1]
	old := g.b.Load(ptr)
	tr := TypeOf(x.R)
	if tl.K == CPtr {
		idx := g.convert(g.genExpr(x.R), tr, TypeLong)
		if op == "-" {
			idx = g.b.Bin(ir.Sub, ir.CI64(0), idx)
		}
		next := g.b.GEP(old, idx)
		g.b.Store(next, ptr)
		return next
	}
	ct := commonArith(tl, tr)
	a := g.convert(old, tl, ct)
	bv := g.convert(g.genExpr(x.R), tr, ct)
	var res ir.Value
	if ct.IsFloat() {
		k, ok := floatBinOps[op]
		if !ok {
			g.errorf(x.P, "invalid float operation %q", x.Op)
			return old
		}
		res = g.b.Bin(k, a, bv)
	} else {
		k, ok := intBinOps[op]
		if !ok {
			g.errorf(x.P, "invalid integer operation %q", x.Op)
			return old
		}
		res = g.b.Bin(k, a, bv)
	}
	res = g.convert(res, ct, tl)
	g.b.Store(res, ptr)
	return res
}

func (g *gen) genCall(x *Call) ir.Value {
	if x.Fn != nil {
		var args []ir.Value
		callee := g.m.Lookup(x.Name)
		for i, a := range x.Args {
			v := g.genExpr(a)
			at := TypeOf(a)
			if i < len(x.Fn.Params) && x.Fn.Params[i].Sym != nil {
				v = g.convert(v, at, x.Fn.Params[i].Sym.Ty)
			}
			args = append(args, v)
		}
		return g.b.Call(x.Name, callee.Ret, args...)
	}
	bi := x.Builtin
	if bi == nil {
		g.errorf(x.P, "unresolved call %q", x.Name)
		return ir.CI(0)
	}
	switch bi.Kind {
	case BWorkItem:
		return g.genWorkItem(x, bi)
	case BBarrier:
		scope := ir.FenceLocal | ir.FenceGlobal
		if v, ok := constOf(x.Args[0]); ok {
			scope = int(v)
			if scope == 0 {
				scope = ir.FenceLocal
			}
		}
		g.b.Barrier(scope)
		return ir.CI(0)
	case BAtomic:
		ptr := g.genExpr(x.Args[0])
		elem := TypeOf(x.Args[0]).Elem
		var operand ir.Value
		if bi.Inc {
			if elem.IR().Kind == ir.I64 {
				operand = ir.CI64(1)
			} else {
				operand = ir.CI(1)
			}
		} else {
			operand = g.convert(g.genExpr(x.Args[1]), TypeOf(x.Args[1]), elem)
		}
		return g.b.Atomic(bi.Atom, ptr, operand)
	case BMinMax:
		return g.genMinMax(x, bi)
	case BMath:
		t := TypeOf(x)
		irT := t.IR()
		var args []ir.Value
		for _, a := range x.Args {
			args = append(args, g.convert(g.genExpr(a), TypeOf(a), t))
		}
		name := fmt.Sprintf("__clc_%s_%s", bi.Name, irT)
		g.ensureMathDecl(name, irT, len(args))
		return g.b.Call(name, irT, args...)
	}
	g.errorf(x.P, "unsupported builtin %q", x.Name)
	return ir.CI(0)
}

func constOf(e Expr) (int64, bool) {
	if lit, ok := e.(*IntLit); ok {
		return lit.V, true
	}
	return 0, false
}

func (g *gen) ensureMathDecl(name string, t *ir.Type, nargs int) {
	if g.m.Lookup(name) != nil {
		return
	}
	var params []*ir.Param
	for i := 0; i < nargs; i++ {
		params = append(params, &ir.Param{Nam: fmt.Sprintf("x%d", i), Ty: t, Idx: i})
	}
	f := g.m.NewFunction(name, t, params...)
	f.Builtin = true
}

func (g *gen) ensureWorkItemDecl(name string) {
	if g.m.Lookup(name) != nil {
		return
	}
	var params []*ir.Param
	ret := ir.I64T
	if name == "get_work_dim" {
		ret = ir.I32T
	} else {
		params = []*ir.Param{{Nam: "dim", Ty: ir.I32T, Idx: 0}}
	}
	f := g.m.NewFunction(name, ret, params...)
	f.Builtin = true
}

func (g *gen) genWorkItem(x *Call, bi *BuiltinInfo) ir.Value {
	g.ensureWorkItemDecl(bi.Name)
	if bi.Name == "get_work_dim" {
		return g.b.Call(bi.Name, ir.I32T)
	}
	dim := g.convert(g.genExpr(x.Args[0]), TypeOf(x.Args[0]), TypeInt)
	return g.b.Call(bi.Name, ir.I64T, dim)
}

func (g *gen) genMinMax(x *Call, bi *BuiltinInfo) ir.Value {
	t := TypeOf(x)
	conv := func(i int) ir.Value {
		return g.convert(g.genExpr(x.Args[i]), TypeOf(x.Args[i]), t)
	}
	lt := ir.ILT
	if t.IsFloat() {
		lt = ir.FLT
	}
	switch bi.Name {
	case "min":
		a, b := conv(0), conv(1)
		c := g.b.Cmp(lt, a, b)
		return g.b.Select(c, a, b)
	case "max":
		a, b := conv(0), conv(1)
		c := g.b.Cmp(lt, a, b)
		return g.b.Select(c, b, a)
	case "abs":
		a := conv(0)
		var neg ir.Value
		if t.IsFloat() {
			neg = g.b.Bin(ir.FSub, g.zero(t), a)
		} else {
			neg = g.b.Bin(ir.Sub, g.zero(t), a)
		}
		c := g.b.Cmp(lt, a, g.zero(t))
		return g.b.Select(c, neg, a)
	case "mad":
		a, b, c := conv(0), conv(1), conv(2)
		if t.IsFloat() {
			return g.b.Bin(ir.FAdd, g.b.Bin(ir.FMul, a, b), c)
		}
		return g.b.Bin(ir.Add, g.b.Bin(ir.Mul, a, b), c)
	case "clamp":
		v, lo, hi := conv(0), conv(1), conv(2)
		c1 := g.b.Cmp(lt, v, lo)
		v2 := g.b.Select(c1, lo, v)
		c2 := g.b.Cmp(lt, hi, v2)
		return g.b.Select(c2, hi, v2)
	}
	g.errorf(x.P, "unsupported builtin %q", x.Name)
	return ir.CI(0)
}
