package clc

import (
	"fmt"

	"repro/internal/ir"
)

// Parser builds an AST from CLC source.
type Parser struct {
	lx   *Lexer
	tok  Token
	next Token
	errs []error
}

// Parse parses a translation unit.
func Parse(src string) (*File, error) {
	p := &Parser{lx: NewLexer(src)}
	p.tok = p.lx.Next()
	p.next = p.lx.Next()
	f := p.parseFile()
	if err := p.lx.Err(); err != nil {
		return nil, err
	}
	if len(p.errs) > 0 {
		return nil, p.errs[0]
	}
	return f, nil
}

func (p *Parser) errorf(pos Pos, format string, args ...interface{}) {
	if len(p.errs) < 20 {
		p.errs = append(p.errs, fmt.Errorf("clc: %s: %s", pos, fmt.Sprintf(format, args...)))
	}
}

func (p *Parser) advance() Token {
	t := p.tok
	p.tok = p.next
	p.next = p.lx.Next()
	return t
}

func (p *Parser) at(text string) bool {
	return (p.tok.Kind == TokPunct || p.tok.Kind == TokKeyword) && p.tok.Text == text
}

func (p *Parser) accept(text string) bool {
	if p.at(text) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(text string) Token {
	if !p.at(text) {
		p.errorf(p.tok.Pos, "expected %q, found %s", text, p.tok)
		return p.tok
	}
	return p.advance()
}

func (p *Parser) expectIdent() Token {
	if p.tok.Kind != TokIdent {
		p.errorf(p.tok.Pos, "expected identifier, found %s", p.tok)
		return p.advance()
	}
	return p.advance()
}

var typeNames = map[string]bool{
	"void": true, "bool": true, "char": true, "int": true, "uint": true,
	"long": true, "ulong": true, "size_t": true, "float": true,
	"double": true, "unsigned": true,
}

var spaceQuals = map[string]ir.AddrSpace{
	"global": ir.Global, "__global": ir.Global,
	"local": ir.Local, "__local": ir.Local,
	"constant": ir.Constant, "__constant": ir.Constant,
	"private": ir.Private, "__private": ir.Private,
}

// atTypeStart reports whether the current token can begin a type.
func (p *Parser) atTypeStart() bool {
	if p.tok.Kind != TokKeyword {
		return false
	}
	if typeNames[p.tok.Text] || p.tok.Text == "const" || p.tok.Text == "volatile" {
		return true
	}
	_, isSpace := spaceQuals[p.tok.Text]
	return isSpace
}

func (p *Parser) parseFile() *File {
	f := &File{}
	for p.tok.Kind != TokEOF && len(p.errs) == 0 {
		fd := p.parseFuncDecl()
		if fd != nil {
			f.Funcs = append(f.Funcs, fd)
		}
	}
	return f
}

// parseTypePrefix parses qualifiers, a base type name and pointer stars.
func (p *Parser) parseTypePrefix() *TypeExpr {
	te := &TypeExpr{P: p.tok.Pos, Space: ir.Private}
	seenBase := false
	for {
		if p.tok.Kind != TokKeyword {
			break
		}
		if sp, ok := spaceQuals[p.tok.Text]; ok {
			te.Space = sp
			p.advance()
			continue
		}
		switch p.tok.Text {
		case "const":
			te.Const = true
			p.advance()
			continue
		case "volatile", "restrict":
			p.advance()
			continue
		}
		if typeNames[p.tok.Text] && !seenBase {
			te.Base = p.tok.Text
			if p.tok.Text == "unsigned" {
				te.Base = "uint"
				p.advance()
				// optional int/long/char after unsigned
				if p.tok.Kind == TokKeyword && (p.tok.Text == "int" || p.tok.Text == "char") {
					p.advance()
				} else if p.tok.Kind == TokKeyword && p.tok.Text == "long" {
					te.Base = "ulong"
					p.advance()
				}
			} else {
				p.advance()
			}
			seenBase = true
			continue
		}
		break
	}
	if !seenBase {
		p.errorf(te.P, "expected type, found %s", p.tok)
		te.Base = "int"
	}
	for {
		if p.accept("*") {
			te.PtrDep++
			continue
		}
		// trailing const/restrict after '*'
		if p.tok.Kind == TokKeyword && (p.tok.Text == "const" || p.tok.Text == "restrict" || p.tok.Text == "volatile") {
			p.advance()
			continue
		}
		break
	}
	return te
}

func (p *Parser) parseFuncDecl() *FuncDecl {
	p.accept("extern")
	isKernel := false
	if p.at("kernel") || p.at("__kernel") {
		p.advance()
		isKernel = true
	}
	ret := p.parseTypePrefix()
	name := p.expectIdent()
	fd := &FuncDecl{P: name.Pos, Name: name.Text, Ret: ret, IsKernel: isKernel}
	p.expect("(")
	if !p.at(")") {
		for {
			if p.at("void") && p.next.Kind == TokPunct && p.next.Text == ")" {
				p.advance()
				break
			}
			pt := p.parseTypePrefix()
			var pname Token
			if p.tok.Kind == TokIdent {
				pname = p.advance()
			}
			if p.accept("[") { // array parameter decays to pointer
				if !p.at("]") {
					p.parseExpr()
				}
				p.expect("]")
				pt.PtrDep++
			}
			fd.Params = append(fd.Params, &ParamDecl{P: pt.P, Name: pname.Text, Ty: pt})
			if !p.accept(",") {
				break
			}
		}
	}
	p.expect(")")
	if p.accept(";") {
		return fd // prototype
	}
	fd.Body = p.parseBlock()
	return fd
}

func (p *Parser) parseBlock() *BlockStmt {
	b := &BlockStmt{stmtBase: stmtBase{P: p.tok.Pos}}
	p.expect("{")
	for !p.at("}") && p.tok.Kind != TokEOF && len(p.errs) == 0 {
		b.List = append(b.List, p.parseStmt())
	}
	p.expect("}")
	return b
}

func (p *Parser) parseStmt() Stmt {
	pos := p.tok.Pos
	switch {
	case p.at("{"):
		return p.parseBlock()
	case p.at(";"):
		p.advance()
		return &EmptyStmt{stmtBase{pos}}
	case p.at("if"):
		p.advance()
		p.expect("(")
		cond := p.parseExpr()
		p.expect(")")
		then := p.parseStmt()
		var els Stmt
		if p.accept("else") {
			els = p.parseStmt()
		}
		return &IfStmt{stmtBase{pos}, cond, then, els}
	case p.at("for"):
		p.advance()
		p.expect("(")
		var init Stmt
		if !p.at(";") {
			if p.atTypeStart() {
				init = p.parseDeclStmt()
			} else {
				init = &ExprStmt{stmtBase{p.tok.Pos}, p.parseExpr()}
				p.expect(";")
			}
		} else {
			p.advance()
		}
		var cond Expr
		if !p.at(";") {
			cond = p.parseExpr()
		}
		p.expect(";")
		var post Expr
		if !p.at(")") {
			post = p.parseExpr()
		}
		p.expect(")")
		body := p.parseStmt()
		return &ForStmt{stmtBase{pos}, init, cond, post, body}
	case p.at("while"):
		p.advance()
		p.expect("(")
		cond := p.parseExpr()
		p.expect(")")
		body := p.parseStmt()
		return &WhileStmt{stmtBase{pos}, cond, body, false}
	case p.at("do"):
		p.advance()
		body := p.parseStmt()
		p.expect("while")
		p.expect("(")
		cond := p.parseExpr()
		p.expect(")")
		p.expect(";")
		return &WhileStmt{stmtBase{pos}, cond, body, true}
	case p.at("return"):
		p.advance()
		var x Expr
		if !p.at(";") {
			x = p.parseExpr()
		}
		p.expect(";")
		return &ReturnStmt{stmtBase{pos}, x}
	case p.at("break"):
		p.advance()
		p.expect(";")
		return &BranchStmt{stmtBase{pos}, true}
	case p.at("continue"):
		p.advance()
		p.expect(";")
		return &BranchStmt{stmtBase{pos}, false}
	case p.atTypeStart():
		return p.parseDeclStmt()
	default:
		x := p.parseExpr()
		p.expect(";")
		return &ExprStmt{stmtBase{pos}, x}
	}
}

// parseDeclStmt parses "type name [= init];" or "type name[len];",
// consuming the trailing semicolon.
func (p *Parser) parseDeclStmt() Stmt {
	pos := p.tok.Pos
	te := p.parseTypePrefix()
	name := p.expectIdent()
	ds := &DeclStmt{stmtBase: stmtBase{pos}, Name: name.Text, Ty: te}
	if p.accept("[") {
		te.ArrLen = p.parseExpr()
		p.expect("]")
	}
	if p.accept("=") {
		ds.Init = p.parseAssign()
	}
	if p.accept(",") {
		p.errorf(p.tok.Pos, "multiple declarators in one statement are not supported; split the declaration")
	}
	p.expect(";")
	return ds
}

// Expression parsing: precedence climbing.

func (p *Parser) parseExpr() Expr { return p.parseComma() }

func (p *Parser) parseComma() Expr {
	// The comma operator is not supported; parseExpr == parseAssign.
	return p.parseAssign()
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *Parser) parseAssign() Expr {
	lhs := p.parseCond()
	if p.tok.Kind == TokPunct && assignOps[p.tok.Text] {
		op := p.advance()
		rhs := p.parseAssign()
		return &Assign{exprBase{P: op.Pos}, op.Text, lhs, rhs}
	}
	return lhs
}

func (p *Parser) parseCond() Expr {
	c := p.parseBinary(0)
	if p.at("?") {
		pos := p.advance().Pos
		t := p.parseAssign()
		p.expect(":")
		e := p.parseCond()
		return &Cond{exprBase{P: pos}, c, t, e}
	}
	return c
}

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *Parser) parseBinary(minPrec int) Expr {
	lhs := p.parseUnary()
	for {
		if p.tok.Kind != TokPunct {
			return lhs
		}
		prec, ok := binPrec[p.tok.Text]
		if !ok || prec < minPrec {
			return lhs
		}
		op := p.advance()
		rhs := p.parseBinary(prec + 1)
		lhs = &Binary{exprBase{P: op.Pos}, op.Text, lhs, rhs}
	}
}

func (p *Parser) parseUnary() Expr {
	pos := p.tok.Pos
	switch {
	case p.at("-"), p.at("!"), p.at("~"), p.at("*"), p.at("&"), p.at("+"):
		op := p.advance()
		x := p.parseUnary()
		if op.Text == "+" {
			return x
		}
		return &Unary{exprBase{P: pos}, op.Text, x}
	case p.at("++"), p.at("--"):
		op := p.advance()
		x := p.parseUnary()
		return &IncDec{exprBase{P: pos}, op.Text, false, x}
	case p.at("("):
		// Either a cast or a parenthesized expression.
		if p.isCastStart() {
			p.expect("(")
			te := p.parseTypePrefix()
			p.expect(")")
			x := p.parseUnary()
			return &CastExpr{exprBase{P: pos}, te, x}
		}
	}
	return p.parsePostfix()
}

// isCastStart reports whether "(" begins a cast expression.
func (p *Parser) isCastStart() bool {
	if !p.at("(") {
		return false
	}
	if p.next.Kind != TokKeyword {
		return false
	}
	if typeNames[p.next.Text] {
		return true
	}
	_, isSpace := spaceQuals[p.next.Text]
	return isSpace || p.next.Text == "const"
}

func (p *Parser) parsePostfix() Expr {
	x := p.parsePrimary()
	for {
		switch {
		case p.at("["):
			pos := p.advance().Pos
			idx := p.parseExpr()
			p.expect("]")
			x = &Index{exprBase{P: pos}, x, idx}
		case p.at("++"), p.at("--"):
			op := p.advance()
			x = &IncDec{exprBase{P: op.Pos}, op.Text, true, x}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimary() Expr {
	pos := p.tok.Pos
	switch {
	case p.tok.Kind == TokIntLit:
		t := p.advance()
		return &IntLit{exprBase{P: pos}, t.IntVal}
	case p.tok.Kind == TokFloatLit:
		t := p.advance()
		return &FloatLit{exprBase{P: pos}, t.FloatVal}
	case p.at("true"):
		p.advance()
		return &IntLit{exprBase{P: pos}, 1}
	case p.at("false"):
		p.advance()
		return &IntLit{exprBase{P: pos}, 0}
	case p.tok.Kind == TokIdent:
		name := p.advance()
		if p.accept("(") {
			call := &Call{exprBase: exprBase{P: pos}, Name: name.Text}
			if !p.at(")") {
				for {
					call.Args = append(call.Args, p.parseAssign())
					if !p.accept(",") {
						break
					}
				}
			}
			p.expect(")")
			return call
		}
		return &Ident{exprBase: exprBase{P: pos}, Name: name.Text}
	case p.at("("):
		p.advance()
		x := p.parseExpr()
		p.expect(")")
		return x
	}
	p.errorf(pos, "unexpected token %s in expression", p.tok)
	p.advance()
	return &IntLit{exprBase{P: pos}, 0}
}
