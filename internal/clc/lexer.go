package clc

import (
	"fmt"
	"strconv"
	"strings"
)

// Lexer tokenizes CLC source. It implements a minimal preprocessor
// handling object-like "#define NAME replacement" macros and line
// comments; macro bodies are substituted as token sequences (one level of
// recursion per expansion step, bounded).
type Lexer struct {
	src  string
	pos  int
	line int
	col  int

	defines map[string][]Token
	pending []Token // substituted tokens not yet consumed
	err     error
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, defines: make(map[string][]Token)}
}

// Err returns the first lexical error encountered, if any.
func (lx *Lexer) Err() error { return lx.err }

func (lx *Lexer) errorf(p Pos, format string, args ...interface{}) {
	if lx.err == nil {
		lx.err = fmt.Errorf("clc: %s: %s", p, fmt.Sprintf(format, args...))
	}
}

func (lx *Lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekAt(1) == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekAt(1) == '*':
			start := Pos{lx.line, lx.col}
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.errorf(start, "unterminated block comment")
				return
			}
		case c == '#':
			lx.directive()
		default:
			return
		}
	}
}

// directive handles "#define NAME tokens..." (and ignores other
// directives such as #pragma until end of line).
func (lx *Lexer) directive() {
	p := Pos{lx.line, lx.col}
	startLine := lx.line
	lx.advance() // '#'
	word := lx.scanWord()
	rest := strings.TrimSpace(lx.restOfLine(startLine))
	if word != "define" {
		return // #pragma etc. skipped
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		lx.errorf(p, "#define without a name")
		return
	}
	name := fields[0]
	if strings.Contains(name, "(") {
		lx.errorf(p, "function-like macros are not supported")
		return
	}
	body := strings.TrimSpace(strings.TrimPrefix(rest, name))
	sub := NewLexer(body)
	sub.defines = lx.defines
	var toks []Token
	for {
		t := sub.rawNext()
		if t.Kind == TokEOF {
			break
		}
		toks = append(toks, t)
	}
	if sub.err != nil {
		lx.errorf(p, "in #define %s: %v", name, sub.err)
		return
	}
	lx.defines[name] = toks
}

func (lx *Lexer) scanWord() string {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentChar(lx.peekByte()) {
		lx.advance()
	}
	return lx.src[start:lx.pos]
}

func (lx *Lexer) restOfLine(line int) string {
	start := lx.pos
	for lx.pos < len(lx.src) && lx.line == line {
		lx.advance()
	}
	return strings.TrimSuffix(lx.src[start:lx.pos], "\n")
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, applying macro substitution.
func (lx *Lexer) Next() Token {
	const maxExpand = 64
	for i := 0; i < maxExpand; i++ {
		var t Token
		if len(lx.pending) > 0 {
			t = lx.pending[0]
			lx.pending = lx.pending[1:]
		} else {
			t = lx.rawNext()
		}
		if t.Kind == TokIdent {
			if body, ok := lx.defines[t.Text]; ok {
				expanded := make([]Token, len(body))
				for j, bt := range body {
					bt.Pos = t.Pos
					expanded[j] = bt
				}
				lx.pending = append(expanded, lx.pending...)
				continue
			}
		}
		return t
	}
	lx.errorf(Pos{lx.line, lx.col}, "macro expansion too deep")
	return Token{Kind: TokEOF, Pos: Pos{lx.line, lx.col}}
}

// rawNext returns the next token without macro substitution.
func (lx *Lexer) rawNext() Token {
	lx.skipSpaceAndComments()
	p := Pos{lx.line, lx.col}
	if lx.pos >= len(lx.src) || lx.err != nil {
		return Token{Kind: TokEOF, Pos: p}
	}
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		word := lx.scanWord()
		kind := TokIdent
		if keywords[word] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: word, Pos: p}
	case isDigit(c) || (c == '.' && isDigit(lx.peekAt(1))):
		return lx.number(p)
	}
	for _, pn := range puncts {
		if strings.HasPrefix(lx.src[lx.pos:], pn) {
			for range pn {
				lx.advance()
			}
			return Token{Kind: TokPunct, Text: pn, Pos: p}
		}
	}
	lx.errorf(p, "unexpected character %q", string(c))
	return Token{Kind: TokEOF, Pos: p}
}

func (lx *Lexer) number(p Pos) Token {
	start := lx.pos
	isFloat := false
	if lx.peekByte() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		lx.advance()
		lx.advance()
		for isHexDigit(lx.peekByte()) {
			lx.advance()
		}
	} else {
		for isDigit(lx.peekByte()) {
			lx.advance()
		}
		if lx.peekByte() == '.' {
			isFloat = true
			lx.advance()
			for isDigit(lx.peekByte()) {
				lx.advance()
			}
		}
		if e := lx.peekByte(); e == 'e' || e == 'E' {
			next := lx.peekAt(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(lx.peekAt(2))) {
				isFloat = true
				lx.advance()
				if s := lx.peekByte(); s == '+' || s == '-' {
					lx.advance()
				}
				for isDigit(lx.peekByte()) {
					lx.advance()
				}
			}
		}
	}
	text := lx.src[start:lx.pos]
	// Suffixes: f/F (float), u/U, l/L in any combination.
	for {
		s := lx.peekByte()
		if s == 'f' || s == 'F' {
			isFloat = true
			lx.advance()
			continue
		}
		if s == 'u' || s == 'U' || s == 'l' || s == 'L' {
			lx.advance()
			continue
		}
		break
	}
	if isFloat {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			lx.errorf(p, "bad float literal %q", text)
		}
		return Token{Kind: TokFloatLit, Text: text, Pos: p, FloatVal: v}
	}
	v, err := strconv.ParseInt(text, 0, 64)
	if err != nil {
		// Very large unsigned literals: parse as uint64 bit pattern.
		u, uerr := strconv.ParseUint(text, 0, 64)
		if uerr != nil {
			lx.errorf(p, "bad integer literal %q", text)
		}
		v = int64(u)
	}
	return Token{Kind: TokIntLit, Text: text, Pos: p, IntVal: v}
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
