package clc

import (
	"strings"
	"testing"
)

const mopSrc = `
kernel void mop(global const float* ina, global const float* inb, global float* out)
{
    size_t gid = get_global_id(0);
    size_t grid = get_group_id(0);
    if (grid < 4)
        out[gid] = ina[gid] + inb[gid];
    else
        out[gid] = ina[gid] - inb[gid];
}
`

func TestCompileMop(t *testing.T) {
	m, err := Compile(mopSrc, "mop")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	f := m.Lookup("mop")
	if f == nil || !f.Kernel {
		t.Fatalf("mop kernel not found or not marked kernel")
	}
	if len(f.Params) != 3 {
		t.Fatalf("mop has %d params, want 3", len(f.Params))
	}
	text := m.String()
	for _, want := range []string{"get_global_id", "get_group_id", "fadd", "fsub", "gep"} {
		if !strings.Contains(text, want) {
			t.Errorf("printed IR missing %q:\n%s", want, text)
		}
	}
}

func TestCompileControlFlowAndBuiltins(t *testing.T) {
	src := `
#define TILE 16
int helper(int a, int b) { return a > b ? a - b : b - a; }
kernel void k(global int* out, global const float* in, int n, local float* scratch)
{
    local float tile[TILE];
    int lid = (int)get_local_id(0);
    int i;
    float acc = 0.0f;
    for (i = lid; i < n; i += TILE) {
        tile[lid] = in[i];
        barrier(1);
        acc += sqrt(fabs(tile[lid])) + fmax(tile[lid], 0.5f);
        barrier(1);
    }
    while (lid > 0) { lid >>= 1; acc *= 2.0f; }
    do { acc += 1.0f; } while (acc < 0.0f);
    atomic_add(&out[0], helper((int)acc, n));
    out[get_global_id(0) + 1] = min(max((int)acc, 0), 255);
}
`
	m, err := Compile(src, "cf")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if m.Lookup("helper") == nil {
		t.Fatal("helper function missing")
	}
	text := m.String()
	for _, want := range []string{"atomicrmw add", "barrier", "alloca float, count 16, space local", "__clc_sqrt_float", "select"} {
		if !strings.Contains(text, want) {
			t.Errorf("printed IR missing %q:\n%s", want, text)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`kernel int k() { return 1; }`,                         // kernel returning non-void
		`kernel void k(global int* p) { q[0] = 1; }`,           // undeclared identifier
		`kernel void k(global int* p) { p[0] = "str"; }`,       // bad token
		`void f() { local float x[4]; }`,                       // local outside kernel
		`kernel void k(global int* p) { break; }`,              // break outside loop
		`kernel void k(global float* p) { atomic_add(p, 1); }`, // atomic on float
	}
	for _, src := range cases {
		if _, err := Compile(src, "bad"); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestDefineSubstitution(t *testing.T) {
	src := `
#define N 8
#define DOUBLE_N (N * 2)
kernel void k(global int* out) {
    out[0] = DOUBLE_N;
}
`
	m, err := Compile(src, "def")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !strings.Contains(m.String(), "mul i32 8, 2") {
		t.Errorf("macro body not substituted; IR:\n%s", m.String())
	}
}
