package clc

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// CType is a semantic CLC type.
type CType struct {
	K     CKind
	Elem  *CType       // pointer element / array element
	Space ir.AddrSpace // for pointers and arrays: address space of pointee
	Len   int64        // for arrays: element count
	Const bool
}

// CKind enumerates CLC type kinds.
type CKind int

// CLC type kinds. Unsigned integer types are folded onto their signed
// counterparts: the kernels in this repository do not rely on wrap-around
// or unsigned-division semantics.
const (
	CVoid CKind = iota
	CBool
	CInt    // int, uint, char (32-bit)
	CLong   // long, ulong, size_t (64-bit)
	CFloat  // float
	CDouble // double
	CPtr
	CArray
)

// Convenience singleton types.
var (
	TypeVoid   = &CType{K: CVoid}
	TypeBool   = &CType{K: CBool}
	TypeInt    = &CType{K: CInt}
	TypeLong   = &CType{K: CLong}
	TypeFloat  = &CType{K: CFloat}
	TypeDouble = &CType{K: CDouble}
)

// PtrTo returns a pointer type to elem in the given address space.
func PtrTo(elem *CType, space ir.AddrSpace) *CType {
	return &CType{K: CPtr, Elem: elem, Space: space}
}

// ArrayOf returns an array type.
func ArrayOf(elem *CType, n int64, space ir.AddrSpace) *CType {
	return &CType{K: CArray, Elem: elem, Len: n, Space: space}
}

// IsArith reports whether t participates in arithmetic.
func (t *CType) IsArith() bool {
	switch t.K {
	case CBool, CInt, CLong, CFloat, CDouble:
		return true
	}
	return false
}

// IsInt reports whether t is an integer type.
func (t *CType) IsInt() bool { return t.K == CBool || t.K == CInt || t.K == CLong }

// IsFloat reports whether t is float or double.
func (t *CType) IsFloat() bool { return t.K == CFloat || t.K == CDouble }

// Equal reports structural equality ignoring const.
func (t *CType) Equal(o *CType) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.K != o.K {
		return false
	}
	switch t.K {
	case CPtr:
		return t.Space == o.Space && t.Elem.Equal(o.Elem)
	case CArray:
		return t.Space == o.Space && t.Len == o.Len && t.Elem.Equal(o.Elem)
	}
	return true
}

// IR lowers the CLC type to its IR representation. Bools are lowered as
// i32 in memory.
func (t *CType) IR() *ir.Type {
	switch t.K {
	case CVoid:
		return ir.VoidT
	case CBool, CInt:
		return ir.I32T
	case CLong:
		return ir.I64T
	case CFloat:
		return ir.F32T
	case CDouble:
		return ir.F64T
	case CPtr:
		return ir.PointerTo(t.Elem.IR(), t.Space)
	case CArray:
		return ir.PointerTo(t.Elem.IR(), t.Space)
	}
	panic("clc: bad type")
}

func (t *CType) String() string {
	var sb strings.Builder
	switch t.K {
	case CVoid:
		return "void"
	case CBool:
		return "bool"
	case CInt:
		return "int"
	case CLong:
		return "long"
	case CFloat:
		return "float"
	case CDouble:
		return "double"
	case CPtr:
		if t.Space != ir.Private {
			fmt.Fprintf(&sb, "%s ", t.Space)
		}
		fmt.Fprintf(&sb, "%s*", t.Elem)
		return sb.String()
	case CArray:
		if t.Space != ir.Private {
			fmt.Fprintf(&sb, "%s ", t.Space)
		}
		fmt.Fprintf(&sb, "%s[%d]", t.Elem, t.Len)
		return sb.String()
	}
	return "?"
}

// Expr is an expression node. Sema fills T (the expression's type) and
// LV (whether it designates an lvalue).
type Expr interface {
	Pos() Pos
	ctype() *CType
	setType(*CType)
	lvalue() bool
	setLValue(bool)
}

type exprBase struct {
	P  Pos
	T  *CType
	LV bool
}

// Pos implements Expr.
func (e *exprBase) Pos() Pos          { return e.P }
func (e *exprBase) ctype() *CType     { return e.T }
func (e *exprBase) setType(t *CType)  { e.T = t }
func (e *exprBase) lvalue() bool      { return e.LV }
func (e *exprBase) setLValue(lv bool) { e.LV = lv }

// TypeOf returns the semantic type assigned to an expression by Sema.
func TypeOf(e Expr) *CType { return e.ctype() }

// Ident is a name reference. Sema resolves Sym.
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol
}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	V int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	exprBase
	V float64
}

// Unary is a prefix operator: - ! ~ * (deref) & (address-of).
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// IncDec is ++/-- in prefix or postfix position.
type IncDec struct {
	exprBase
	Op   string // "++" or "--"
	Post bool
	X    Expr
}

// Binary is an infix arithmetic/relational/logical operator.
type Binary struct {
	exprBase
	Op   string
	X, Y Expr
}

// Assign is "=" or a compound assignment.
type Assign struct {
	exprBase
	Op   string // "=", "+=", ...
	L, R Expr
}

// Cond is the ?: operator.
type Cond struct {
	exprBase
	C, Then, Else Expr
}

// Call is a function or builtin call. Sema fills Builtin (when the callee
// is an OpenCL builtin) and Fn (when it is a user function).
type Call struct {
	exprBase
	Name    string
	Args    []Expr
	Builtin *BuiltinInfo
	Fn      *FuncDecl
}

// Index is the subscript operator X[I].
type Index struct {
	exprBase
	X, I Expr
}

// CastExpr is an explicit cast "(type)x".
type CastExpr struct {
	exprBase
	To *TypeExpr
	X  Expr
}

// TypeExpr is a syntactic type as written in source.
type TypeExpr struct {
	P       Pos
	Base    string // "int", "float", ...
	Space   ir.AddrSpace
	Const   bool
	PtrDep  int   // pointer depth
	ArrLen  Expr  // non-nil for array declarators
	arrSize int64 // resolved by sema
}

// Stmt is a statement node.
type Stmt interface{ Pos() Pos }

type stmtBase struct{ P Pos }

// Pos implements Stmt.
func (s *stmtBase) Pos() Pos { return s.P }

// DeclStmt declares a local variable.
type DeclStmt struct {
	stmtBase
	Name string
	Ty   *TypeExpr
	Init Expr
	Sym  *Symbol
}

// ExprStmt evaluates an expression for side effects.
type ExprStmt struct {
	stmtBase
	X Expr
}

// BlockStmt is a braced statement list with its own scope.
type BlockStmt struct {
	stmtBase
	List []Stmt
}

// IfStmt is if/else.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// ForStmt is a C for loop; any of Init/Cond/Post may be nil.
type ForStmt struct {
	stmtBase
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// WhileStmt is while or do-while.
type WhileStmt struct {
	stmtBase
	Cond    Expr
	Body    Stmt
	DoWhile bool
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	stmtBase
	X Expr // may be nil
}

// BranchStmt is break or continue.
type BranchStmt struct {
	stmtBase
	IsBreak bool
}

// EmptyStmt is a bare semicolon.
type EmptyStmt struct{ stmtBase }

// ParamDecl is a function parameter.
type ParamDecl struct {
	P    Pos
	Name string
	Ty   *TypeExpr
	Sym  *Symbol
}

// FuncDecl is a function definition or prototype.
type FuncDecl struct {
	P        Pos
	Name     string
	Ret      *TypeExpr
	Params   []*ParamDecl
	Body     *BlockStmt // nil for prototypes
	IsKernel bool

	RetType *CType // resolved by sema
}

// Pos returns the declaration position.
func (f *FuncDecl) Pos() Pos { return f.P }

// File is a parsed translation unit.
type File struct {
	Funcs []*FuncDecl
}

// Symbol is a resolved variable.
type Symbol struct {
	Name  string
	Ty    *CType
	Param bool

	// IRValue is the alloca (or parameter) holding the variable; set by
	// the IR generator.
	IRValue ir.Value
}
