package clc

import (
	"strings"
	"testing"
	"testing/quick"
)

// --- lexer ----------------------------------------------------------

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	lx := NewLexer(src)
	var toks []Token
	for {
		tok := lx.Next()
		if tok.Kind == TokEOF {
			break
		}
		toks = append(toks, tok)
	}
	if err := lx.Err(); err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks
}

func TestLexerNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind TokKind
		ival int64
		fval float64
	}{
		{"42", TokIntLit, 42, 0},
		{"0x1F", TokIntLit, 31, 0},
		{"7u", TokIntLit, 7, 0},
		{"9L", TokIntLit, 9, 0},
		{"1.5", TokFloatLit, 0, 1.5},
		{"2.0f", TokFloatLit, 0, 2},
		{"3f", TokFloatLit, 0, 3},
		{"1e3", TokFloatLit, 0, 1000},
		{"2.5e-1", TokFloatLit, 0, 0.25},
		{".5", TokFloatLit, 0, 0.5},
	}
	for _, c := range cases {
		toks := lexAll(t, c.src)
		if len(toks) != 1 {
			t.Errorf("%q lexed to %d tokens", c.src, len(toks))
			continue
		}
		tok := toks[0]
		if tok.Kind != c.kind {
			t.Errorf("%q kind = %v", c.src, tok.Kind)
		}
		if c.kind == TokIntLit && tok.IntVal != c.ival {
			t.Errorf("%q = %d, want %d", c.src, tok.IntVal, c.ival)
		}
		if c.kind == TokFloatLit && tok.FloatVal != c.fval {
			t.Errorf("%q = %v, want %v", c.src, tok.FloatVal, c.fval)
		}
	}
}

func TestLexerComments(t *testing.T) {
	toks := lexAll(t, `
// line comment with * and /* inside
a /* block
   spanning lines */ b
`)
	if len(toks) != 2 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Errorf("comments not skipped: %v", toks)
	}
	lx := NewLexer("/* unterminated")
	lx.Next()
	if lx.Err() == nil {
		t.Error("unterminated block comment not reported")
	}
}

func TestLexerMultiCharOperators(t *testing.T) {
	toks := lexAll(t, "a <<= b >>= c == d != e <= f >= g && h || i << j >> k ++ --")
	var ops []string
	for _, tok := range toks {
		if tok.Kind == TokPunct {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks := lexAll(t, "a\n  b")
	if toks[0].Pos.Line != 1 || toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("positions wrong: %+v", toks)
	}
}

func TestMacroErrors(t *testing.T) {
	lx := NewLexer("#define F(x) x\nF(1)")
	for lx.Next().Kind != TokEOF {
	}
	if lx.Err() == nil {
		t.Error("function-like macro not rejected")
	}
	lx2 := NewLexer("#define\nint x;")
	for lx2.Next().Kind != TokEOF {
	}
	if lx2.Err() == nil {
		t.Error("nameless #define not rejected")
	}
	// Self-referential macro must be caught, not loop forever.
	lx3 := NewLexer("#define A A\nA")
	for lx3.Next().Kind != TokEOF {
	}
	if lx3.Err() == nil {
		t.Error("recursive macro expansion not bounded")
	}
}

func TestPragmaIgnored(t *testing.T) {
	if _, err := Compile(`
#pragma OPENCL EXTENSION cl_khr_fp64 : enable
kernel void k(global int* out) { out[0] = 1; }
`, "p"); err != nil {
		t.Errorf("pragma not ignored: %v", err)
	}
}

// --- parser/sema error coverage --------------------------------------

func TestFrontEndErrors(t *testing.T) {
	cases := map[string]string{
		"missing semicolon":    `kernel void k(global int* p) { p[0] = 1 }`,
		"unbalanced paren":     `kernel void k(global int* p) { p[0] = (1 + 2; }`,
		"bad type":             `kernel void k(global wibble* p) { }`,
		"assign to rvalue":     `kernel void k(global int* p) { 1 = 2; }`,
		"call wrong arity":     `int f(int a) { return a; } kernel void k(global int* p) { p[0] = f(1, 2); }`,
		"undeclared call":      `kernel void k(global int* p) { p[0] = nosuchfn(1); }`,
		"redeclare variable":   `kernel void k(global int* p) { int a; int a; }`,
		"redefine function":    `int f() { return 1; } int f() { return 2; } kernel void k(global int* p) { }`,
		"void variable":        `kernel void k(global int* p) { void v; }`,
		"non-const array len":  `kernel void k(global int* p, int n) { local int t[n]; barrier(1); }`,
		"deref non-pointer":    `kernel void k(global int* p) { int a; p[0] = *a; }`,
		"subscript scalar":     `kernel void k(global int* p) { int a; p[0] = a[1]; }`,
		"continue outside":     `kernel void k(global int* p) { continue; }`,
		"return value in void": `kernel void k(global int* p) { return 3; }`,
		"missing return value": `int f() { return; } kernel void k(global int* p) { p[0] = f(); }`,
		"pointer mismatch":     `kernel void k(global int* p, global float* q) { p = q; }`,
		"barrier arity":        `kernel void k(global int* p) { barrier(); }`,
		"atomic local scalar":  `kernel void k(global int* p) { int a; atomic_add(&a, 1); }`,
		"multi declarator":     `kernel void k(global int* p) { int a = 1, b = 2; }`,
	}
	for name, src := range cases {
		if _, err := Compile(src, "bad"); err == nil {
			t.Errorf("%s: no error for %q", name, src)
		}
	}
}

func TestShadowingAllowed(t *testing.T) {
	if _, err := Compile(`
kernel void k(global int* out)
{
    int a = 1;
    { int a = 2; out[1] = a; }
    out[0] = a;
}
`, "shadow"); err != nil {
		t.Errorf("block shadowing rejected: %v", err)
	}
}

func TestUnsignedAliases(t *testing.T) {
	m, err := Compile(`
kernel void k(global uint* out, unsigned int a, unsigned long b, ulong c, size_t d)
{
    out[0] = a + (uint)b + (uint)c + (uint)d;
}
`, "uns")
	if err != nil {
		t.Fatalf("unsigned aliases rejected: %v", err)
	}
	f := m.Lookup("k")
	if len(f.Params) != 5 {
		t.Fatalf("params = %d", len(f.Params))
	}
}

func TestPrototypeThenDefinition(t *testing.T) {
	if _, err := Compile(`
int helper(int x);
kernel void k(global int* out) { out[0] = helper(4); }
int helper(int x) { return x * x; }
`, "proto"); err != nil {
		t.Errorf("prototype-then-definition rejected: %v", err)
	}
}

func TestArrayParamDecays(t *testing.T) {
	if _, err := Compile(`
kernel void k(global int out[], int n) { if (n > 0) out[0] = 1; }
`, "decay"); err != nil {
		t.Errorf("array parameter rejected: %v", err)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	m, err := Compile(`
kernel void k(global int* out)
{
    out[0] = 2 + 3 * 4;        /* 14 */
    out[1] = (2 + 3) * 4;      /* 20 */
    out[2] = 1 << 2 + 1;       /* 8: + binds tighter than << */
    out[3] = 10 - 4 - 3;       /* 3: left assoc */
    out[4] = 7 & 3 | 4;        /* 7 */
}
`, "prec")
	if err != nil {
		t.Fatal(err)
	}
	// Fold and inspect.
	text := m.String()
	_ = text // values checked by the passes package; here parsing shape only
}

// Property: the lexer round-trips any identifier made of valid chars.
func TestLexerIdentifierProperty(t *testing.T) {
	f := func(raw []byte) bool {
		var sb strings.Builder
		sb.WriteByte('_')
		for _, b := range raw {
			c := byte('a') + b%26
			sb.WriteByte(c)
		}
		id := sb.String()
		lx := NewLexer(id)
		tok := lx.Next()
		return tok.Kind == TokIdent && tok.Text == id && lx.Next().Kind == TokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: integer literal lexing matches the value.
func TestLexerIntLiteralProperty(t *testing.T) {
	f := func(v uint32) bool {
		src := itoa(int64(v))
		lx := NewLexer(src)
		tok := lx.Next()
		return tok.Kind == TokIntLit && tok.IntVal == int64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
