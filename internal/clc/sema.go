package clc

import (
	"fmt"

	"repro/internal/ir"
)

// BuiltinKind classifies an OpenCL builtin.
type BuiltinKind int

// Builtin classes.
const (
	BWorkItem BuiltinKind = iota // get_global_id and friends
	BBarrier                     // barrier / mem_fence
	BAtomic                      // atomic_* / atom_*
	BMath                        // sqrt, exp, ...
	BMinMax                      // min/max/abs lowered inline
)

// BuiltinInfo describes an OpenCL builtin function.
type BuiltinInfo struct {
	Name  string
	Kind  BuiltinKind
	NArgs int
	Atom  ir.AtomicKind // for BAtomic
	Inc   bool          // atomic_inc/dec: implicit operand 1
}

// workItemBuiltins are the work-item functions the accelOS transformation
// replaces with runtime equivalents (§6.2 step 3).
var workItemBuiltins = map[string]bool{
	"get_global_id": true, "get_local_id": true, "get_group_id": true,
	"get_num_groups": true, "get_local_size": true, "get_global_size": true,
	"get_global_offset": true, "get_work_dim": true,
}

var builtins = map[string]*BuiltinInfo{
	"get_global_id":     {Name: "get_global_id", Kind: BWorkItem, NArgs: 1},
	"get_local_id":      {Name: "get_local_id", Kind: BWorkItem, NArgs: 1},
	"get_group_id":      {Name: "get_group_id", Kind: BWorkItem, NArgs: 1},
	"get_num_groups":    {Name: "get_num_groups", Kind: BWorkItem, NArgs: 1},
	"get_local_size":    {Name: "get_local_size", Kind: BWorkItem, NArgs: 1},
	"get_global_size":   {Name: "get_global_size", Kind: BWorkItem, NArgs: 1},
	"get_global_offset": {Name: "get_global_offset", Kind: BWorkItem, NArgs: 1},
	"get_work_dim":      {Name: "get_work_dim", Kind: BWorkItem, NArgs: 0},

	"barrier":   {Name: "barrier", Kind: BBarrier, NArgs: 1},
	"mem_fence": {Name: "mem_fence", Kind: BBarrier, NArgs: 1},

	"atomic_add":  {Name: "atomic_add", Kind: BAtomic, NArgs: 2, Atom: ir.AtomAdd},
	"atomic_sub":  {Name: "atomic_sub", Kind: BAtomic, NArgs: 2, Atom: ir.AtomSub},
	"atomic_min":  {Name: "atomic_min", Kind: BAtomic, NArgs: 2, Atom: ir.AtomMin},
	"atomic_max":  {Name: "atomic_max", Kind: BAtomic, NArgs: 2, Atom: ir.AtomMax},
	"atomic_and":  {Name: "atomic_and", Kind: BAtomic, NArgs: 2, Atom: ir.AtomAnd},
	"atomic_or":   {Name: "atomic_or", Kind: BAtomic, NArgs: 2, Atom: ir.AtomOr},
	"atomic_xchg": {Name: "atomic_xchg", Kind: BAtomic, NArgs: 2, Atom: ir.AtomXchg},
	"atomic_inc":  {Name: "atomic_inc", Kind: BAtomic, NArgs: 1, Atom: ir.AtomAdd, Inc: true},
	"atomic_dec":  {Name: "atomic_dec", Kind: BAtomic, NArgs: 1, Atom: ir.AtomSub, Inc: true},
	"atom_add":    {Name: "atom_add", Kind: BAtomic, NArgs: 2, Atom: ir.AtomAdd},
	"atom_sub":    {Name: "atom_sub", Kind: BAtomic, NArgs: 2, Atom: ir.AtomSub},
	"atom_min":    {Name: "atom_min", Kind: BAtomic, NArgs: 2, Atom: ir.AtomMin},
	"atom_max":    {Name: "atom_max", Kind: BAtomic, NArgs: 2, Atom: ir.AtomMax},
	"atom_xchg":   {Name: "atom_xchg", Kind: BAtomic, NArgs: 2, Atom: ir.AtomXchg},
	"atom_inc":    {Name: "atom_inc", Kind: BAtomic, NArgs: 1, Atom: ir.AtomAdd, Inc: true},

	"min":   {Name: "min", Kind: BMinMax, NArgs: 2},
	"max":   {Name: "max", Kind: BMinMax, NArgs: 2},
	"abs":   {Name: "abs", Kind: BMinMax, NArgs: 1},
	"mad":   {Name: "mad", Kind: BMinMax, NArgs: 3},
	"clamp": {Name: "clamp", Kind: BMinMax, NArgs: 3},

	"sqrt": {Name: "sqrt", Kind: BMath, NArgs: 1}, "rsqrt": {Name: "rsqrt", Kind: BMath, NArgs: 1},
	"fabs": {Name: "fabs", Kind: BMath, NArgs: 1}, "exp": {Name: "exp", Kind: BMath, NArgs: 1},
	"exp2": {Name: "exp2", Kind: BMath, NArgs: 1}, "log": {Name: "log", Kind: BMath, NArgs: 1},
	"log2": {Name: "log2", Kind: BMath, NArgs: 1}, "sin": {Name: "sin", Kind: BMath, NArgs: 1},
	"cos": {Name: "cos", Kind: BMath, NArgs: 1}, "tan": {Name: "tan", Kind: BMath, NArgs: 1},
	"atan2": {Name: "atan2", Kind: BMath, NArgs: 2},
	"floor": {Name: "floor", Kind: BMath, NArgs: 1}, "ceil": {Name: "ceil", Kind: BMath, NArgs: 1},
	"pow": {Name: "pow", Kind: BMath, NArgs: 2}, "fmod": {Name: "fmod", Kind: BMath, NArgs: 2},
	"fmin": {Name: "fmin", Kind: BMath, NArgs: 2}, "fmax": {Name: "fmax", Kind: BMath, NArgs: 2},
	"native_exp": {Name: "exp", Kind: BMath, NArgs: 1}, "native_log": {Name: "log", Kind: BMath, NArgs: 1},
	"native_sqrt": {Name: "sqrt", Kind: BMath, NArgs: 1}, "native_rsqrt": {Name: "rsqrt", Kind: BMath, NArgs: 1},
	"native_sin": {Name: "sin", Kind: BMath, NArgs: 1}, "native_cos": {Name: "cos", Kind: BMath, NArgs: 1},
	"native_divide": {Name: "native_divide", Kind: BMath, NArgs: 2},
}

// Sema performs symbol resolution and type checking, annotating the AST in
// place.
type Sema struct {
	file   *File
	funcs  map[string]*FuncDecl
	scopes []map[string]*Symbol
	errs   []error
	curFn  *FuncDecl
	loops  int
}

// Analyze type-checks the file, annotating expressions with types and
// resolving symbols. It returns the first error found.
func Analyze(f *File) error {
	s := &Sema{file: f, funcs: make(map[string]*FuncDecl)}
	for _, fd := range f.Funcs {
		if prev, ok := s.funcs[fd.Name]; ok && prev.Body != nil && fd.Body != nil {
			s.errorf(fd.P, "redefinition of function %q", fd.Name)
		}
		if prev, ok := s.funcs[fd.Name]; !ok || prev.Body == nil {
			s.funcs[fd.Name] = fd
		}
	}
	for _, fd := range f.Funcs {
		s.checkFunc(fd)
	}
	if len(s.errs) > 0 {
		return s.errs[0]
	}
	return nil
}

func (s *Sema) errorf(pos Pos, format string, args ...interface{}) {
	if len(s.errs) < 20 {
		s.errs = append(s.errs, fmt.Errorf("clc: %s: %s", pos, fmt.Sprintf(format, args...)))
	}
}

func (s *Sema) push() { s.scopes = append(s.scopes, make(map[string]*Symbol)) }
func (s *Sema) pop()  { s.scopes = s.scopes[:len(s.scopes)-1] }

func (s *Sema) define(pos Pos, name string, ty *CType, param bool) *Symbol {
	top := s.scopes[len(s.scopes)-1]
	if _, ok := top[name]; ok {
		s.errorf(pos, "redeclaration of %q", name)
	}
	sym := &Symbol{Name: name, Ty: ty, Param: param}
	top[name] = sym
	return sym
}

func (s *Sema) lookup(name string) *Symbol {
	for i := len(s.scopes) - 1; i >= 0; i-- {
		if sym, ok := s.scopes[i][name]; ok {
			return sym
		}
	}
	return nil
}

// resolveType converts a syntactic TypeExpr into a semantic CType.
func (s *Sema) resolveType(te *TypeExpr) *CType {
	var base *CType
	switch te.Base {
	case "void":
		base = TypeVoid
	case "bool":
		base = TypeBool
	case "char", "int", "uint":
		base = TypeInt
	case "long", "ulong", "size_t":
		base = TypeLong
	case "float":
		base = TypeFloat
	case "double":
		base = TypeDouble
	default:
		s.errorf(te.P, "unknown type %q", te.Base)
		base = TypeInt
	}
	t := base
	for i := 0; i < te.PtrDep; i++ {
		sp := te.Space
		if i < te.PtrDep-1 {
			sp = ir.Private
		}
		t = PtrTo(t, sp)
	}
	if te.PtrDep > 0 {
		t = &CType{K: CPtr, Elem: t.Elem, Space: te.Space, Const: te.Const}
	}
	if te.ArrLen != nil {
		n, ok := s.evalConstInt(te.ArrLen)
		if !ok || n <= 0 {
			s.errorf(te.P, "array length must be a positive integer constant")
			n = 1
		}
		te.arrSize = n
		t = ArrayOf(t, n, te.Space)
	} else if te.PtrDep == 0 && te.Space != ir.Private && base.K != CVoid {
		// "local float x;" — a scalar in local memory: model as a
		// one-element local array.
		te.arrSize = 1
		t = ArrayOf(t, 1, te.Space)
	}
	return t
}

// evalConstInt evaluates a compile-time constant integer expression.
func (s *Sema) evalConstInt(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *IntLit:
		return x.V, true
	case *Unary:
		v, ok := s.evalConstInt(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case "-":
			return -v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *Binary:
		a, ok1 := s.evalConstInt(x.X)
		b, ok2 := s.evalConstInt(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case "+":
			return a + b, true
		case "-":
			return a - b, true
		case "*":
			return a * b, true
		case "/":
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case "%":
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case "<<":
			return a << uint(b), true
		case ">>":
			return a >> uint(b), true
		case "&":
			return a & b, true
		case "|":
			return a | b, true
		case "^":
			return a ^ b, true
		}
	}
	return 0, false
}

func (s *Sema) checkFunc(fd *FuncDecl) {
	fd.RetType = s.resolveType(fd.Ret)
	if fd.IsKernel && fd.RetType.K != CVoid {
		s.errorf(fd.P, "kernel %q must return void", fd.Name)
	}
	if fd.Body == nil {
		for _, p := range fd.Params {
			p.Sym = &Symbol{Name: p.Name, Ty: s.resolveType(p.Ty), Param: true}
		}
		return
	}
	s.curFn = fd
	s.push()
	for _, p := range fd.Params {
		ty := s.resolveType(p.Ty)
		if ty.K == CArray {
			ty = PtrTo(ty.Elem, ty.Space)
		}
		if p.Name == "" {
			s.errorf(p.P, "parameter missing a name in definition of %q", fd.Name)
			p.Name = "_unnamed"
		}
		p.Sym = s.define(p.P, p.Name, ty, true)
	}
	s.checkBlock(fd.Body)
	s.pop()
	s.curFn = nil
}

func (s *Sema) checkBlock(b *BlockStmt) {
	s.push()
	for _, st := range b.List {
		s.checkStmt(st)
	}
	s.pop()
}

func (s *Sema) checkStmt(st Stmt) {
	switch x := st.(type) {
	case *BlockStmt:
		s.checkBlock(x)
	case *EmptyStmt:
	case *DeclStmt:
		ty := s.resolveType(x.Ty)
		if ty.K == CVoid {
			s.errorf(x.P, "cannot declare variable of type void")
			ty = TypeInt
		}
		if ty.K == CArray && ty.Space == ir.Local && !s.curFn.IsKernel {
			// The OpenCL standard permits local declarations only in
			// kernel bodies (§6.2 "Local Data Hoisting" relies on this).
			s.errorf(x.P, "local-memory declaration outside a kernel function")
		}
		if x.Init != nil {
			it := s.checkExpr(x.Init)
			if ty.K == CArray {
				s.errorf(x.P, "array initializers are not supported")
			} else if !s.assignable(ty, it) {
				s.errorf(x.P, "cannot initialize %s with %s", ty, it)
			}
		}
		x.Sym = s.define(x.P, x.Name, ty, false)
	case *ExprStmt:
		s.checkExpr(x.X)
	case *IfStmt:
		s.condition(x.Cond)
		s.checkStmt(x.Then)
		if x.Else != nil {
			s.checkStmt(x.Else)
		}
	case *ForStmt:
		s.push()
		if x.Init != nil {
			s.checkStmt(x.Init)
		}
		if x.Cond != nil {
			s.condition(x.Cond)
		}
		if x.Post != nil {
			s.checkExpr(x.Post)
		}
		s.loops++
		s.checkStmt(x.Body)
		s.loops--
		s.pop()
	case *WhileStmt:
		s.condition(x.Cond)
		s.loops++
		s.checkStmt(x.Body)
		s.loops--
	case *ReturnStmt:
		rt := s.curFn.RetType
		if x.X == nil {
			if rt.K != CVoid {
				s.errorf(x.P, "missing return value in %q", s.curFn.Name)
			}
			return
		}
		if rt.K == CVoid {
			s.errorf(x.P, "return with value in void function %q", s.curFn.Name)
			return
		}
		t := s.checkExpr(x.X)
		if !s.assignable(rt, t) {
			s.errorf(x.P, "cannot return %s from function returning %s", t, rt)
		}
	case *BranchStmt:
		if s.loops == 0 {
			s.errorf(x.P, "break/continue outside a loop")
		}
	default:
		panic(fmt.Sprintf("clc: unknown statement %T", st))
	}
}

// condition checks a boolean context expression.
func (s *Sema) condition(e Expr) {
	t := s.checkExpr(e)
	if t != nil && !t.IsArith() && t.K != CPtr {
		s.errorf(e.Pos(), "condition has non-scalar type %s", t)
	}
}

// assignable reports whether a value of type from may be assigned to a
// location of type to (with implicit conversion).
func (s *Sema) assignable(to, from *CType) bool {
	if to == nil || from == nil {
		return false
	}
	if to.IsArith() && from.IsArith() {
		return true
	}
	if to.K == CPtr && from.K == CPtr {
		return to.Space == from.Space && (to.Elem.Equal(from.Elem) || to.Elem.K == CVoid || from.Elem.K == CVoid)
	}
	return false
}

// commonArith returns the usual-arithmetic-conversion result type.
func commonArith(a, b *CType) *CType {
	rank := func(t *CType) int {
		switch t.K {
		case CBool:
			return 0
		case CInt:
			return 1
		case CLong:
			return 2
		case CFloat:
			return 3
		case CDouble:
			return 4
		}
		return 1
	}
	if rank(a) >= rank(b) {
		if a.K == CBool {
			return TypeInt
		}
		return a
	}
	if b.K == CBool {
		return TypeInt
	}
	return b
}

func (s *Sema) checkExpr(e Expr) *CType {
	t := s.exprType(e)
	if t == nil {
		t = TypeInt
	}
	e.setType(t)
	return t
}

func (s *Sema) exprType(e Expr) *CType {
	switch x := e.(type) {
	case *IntLit:
		if x.V > int64(int32(x.V)) || x.V < int64(int32(x.V)) {
			return TypeLong
		}
		return TypeInt
	case *FloatLit:
		return TypeFloat
	case *Ident:
		sym := s.lookup(x.Name)
		if sym == nil {
			s.errorf(x.P, "undeclared identifier %q", x.Name)
			return TypeInt
		}
		x.Sym = sym
		if sym.Ty.K == CArray {
			// Arrays decay to pointers when used as values; indexing
			// handles them directly.
			x.setLValue(false)
			return sym.Ty
		}
		x.setLValue(true)
		return sym.Ty
	case *Unary:
		t := s.checkExpr(x.X)
		switch x.Op {
		case "-":
			if !t.IsArith() {
				s.errorf(x.P, "unary - on non-arithmetic type %s", t)
			}
			if t.K == CBool {
				return TypeInt
			}
			return t
		case "~":
			if !t.IsInt() {
				s.errorf(x.P, "~ on non-integer type %s", t)
			}
			return t
		case "!":
			if !t.IsArith() && t.K != CPtr {
				s.errorf(x.P, "! on non-scalar type %s", t)
			}
			return TypeInt
		case "*":
			if t.K != CPtr {
				s.errorf(x.P, "dereference of non-pointer type %s", t)
				return TypeInt
			}
			x.setLValue(true)
			return t.Elem
		case "&":
			if !x.X.lvalue() {
				s.errorf(x.P, "address-of requires an lvalue")
				return PtrTo(t, ir.Private)
			}
			return PtrTo(t, s.lvalueSpace(x.X))
		}
	case *IncDec:
		t := s.checkExpr(x.X)
		if !x.X.lvalue() {
			s.errorf(x.P, "%s requires an lvalue", x.Op)
		}
		if !t.IsArith() && t.K != CPtr {
			s.errorf(x.P, "%s on non-scalar type %s", x.Op, t)
		}
		return t
	case *Binary:
		tx := s.checkExpr(x.X)
		ty := s.checkExpr(x.Y)
		switch x.Op {
		case "&&", "||":
			return TypeInt
		case "==", "!=", "<", ">", "<=", ">=":
			if tx.K == CPtr && ty.K == CPtr {
				return TypeInt
			}
			if !tx.IsArith() || !ty.IsArith() {
				s.errorf(x.P, "invalid comparison between %s and %s", tx, ty)
			}
			return TypeInt
		case "+", "-":
			if tx.K == CPtr && ty.IsInt() {
				return tx
			}
			if tx.K == CArray && ty.IsInt() {
				return PtrTo(tx.Elem, tx.Space)
			}
			if x.Op == "+" && ty.K == CPtr && tx.IsInt() {
				return ty
			}
			if x.Op == "-" && tx.K == CPtr && ty.K == CPtr {
				return TypeLong
			}
			fallthrough
		case "*", "/":
			if !tx.IsArith() || !ty.IsArith() {
				s.errorf(x.P, "invalid operands to %q: %s and %s", x.Op, tx, ty)
				return TypeInt
			}
			return commonArith(tx, ty)
		case "%", "&", "|", "^", "<<", ">>":
			if !tx.IsInt() || !ty.IsInt() {
				s.errorf(x.P, "invalid operands to %q: %s and %s", x.Op, tx, ty)
				return TypeInt
			}
			if x.Op == "<<" || x.Op == ">>" {
				if tx.K == CBool {
					return TypeInt
				}
				return tx
			}
			return commonArith(tx, ty)
		}
	case *Assign:
		tl := s.checkExpr(x.L)
		tr := s.checkExpr(x.R)
		if !x.L.lvalue() {
			s.errorf(x.P, "assignment target is not an lvalue")
		}
		if x.Op == "=" {
			if !s.assignable(tl, tr) {
				s.errorf(x.P, "cannot assign %s to %s", tr, tl)
			}
		} else {
			op := x.Op[:len(x.Op)-1]
			switch op {
			case "%", "&", "|", "^", "<<", ">>":
				if !tl.IsInt() || !tr.IsInt() {
					s.errorf(x.P, "invalid operands to %q", x.Op)
				}
			default:
				if tl.K == CPtr && tr.IsInt() && (op == "+" || op == "-") {
					break
				}
				if !tl.IsArith() || !tr.IsArith() {
					s.errorf(x.P, "invalid operands to %q", x.Op)
				}
			}
		}
		return tl
	case *Cond:
		s.condition(x.C)
		tt := s.checkExpr(x.Then)
		te := s.checkExpr(x.Else)
		if tt.IsArith() && te.IsArith() {
			return commonArith(tt, te)
		}
		if tt.Equal(te) {
			return tt
		}
		s.errorf(x.P, "mismatched ?: arms: %s and %s", tt, te)
		return tt
	case *Index:
		tx := s.checkExpr(x.X)
		ti := s.checkExpr(x.I)
		if !ti.IsInt() {
			s.errorf(x.P, "array index has non-integer type %s", ti)
		}
		x.setLValue(true)
		switch tx.K {
		case CPtr, CArray:
			return tx.Elem
		}
		s.errorf(x.P, "subscript of non-pointer type %s", tx)
		return TypeInt
	case *CastExpr:
		to := s.resolveType(x.To)
		from := s.checkExpr(x.X)
		okScalar := (to.IsArith() && from.IsArith()) ||
			(to.K == CPtr && (from.K == CPtr || from.K == CArray)) ||
			(to.IsInt() && from.K == CPtr)
		if !okScalar {
			s.errorf(x.P, "invalid cast from %s to %s", from, to)
		}
		return to
	case *Call:
		return s.checkCall(x)
	}
	panic(fmt.Sprintf("clc: unknown expression %T", e))
}

// lvalueSpace returns the address space of the storage behind an lvalue.
func (s *Sema) lvalueSpace(e Expr) ir.AddrSpace {
	switch x := e.(type) {
	case *Ident:
		if x.Sym != nil && x.Sym.Ty.K == CArray {
			return x.Sym.Ty.Space
		}
		return ir.Private
	case *Unary:
		if x.Op == "*" {
			if t := TypeOf(x.X); t != nil && t.K == CPtr {
				return t.Space
			}
		}
	case *Index:
		if t := TypeOf(x.X); t != nil && (t.K == CPtr || t.K == CArray) {
			return t.Space
		}
	}
	return ir.Private
}

func (s *Sema) checkCall(c *Call) *CType {
	if fd, ok := s.funcs[c.Name]; ok {
		c.Fn = fd
		if len(c.Args) != len(fd.Params) {
			s.errorf(c.P, "call to %q with %d args, want %d", c.Name, len(c.Args), len(fd.Params))
		}
		for i, a := range c.Args {
			at := s.checkExpr(a)
			if i < len(fd.Params) {
				pt := fd.Params[i].Sym
				var want *CType
				if pt != nil {
					want = pt.Ty
				} else {
					want = s.resolveType(fd.Params[i].Ty)
				}
				if at.K == CArray {
					at = PtrTo(at.Elem, at.Space)
				}
				if !s.assignable(want, at) {
					s.errorf(a.Pos(), "call to %q: argument %d has type %s, want %s", c.Name, i+1, at, want)
				}
			}
		}
		if fd.RetType == nil {
			fd.RetType = s.resolveType(fd.Ret)
		}
		return fd.RetType
	}
	bi, ok := builtins[c.Name]
	if !ok {
		s.errorf(c.P, "call to undeclared function %q", c.Name)
		for _, a := range c.Args {
			s.checkExpr(a)
		}
		return TypeInt
	}
	c.Builtin = bi
	if len(c.Args) != bi.NArgs {
		s.errorf(c.P, "builtin %q takes %d args, got %d", c.Name, bi.NArgs, len(c.Args))
	}
	var argTypes []*CType
	for _, a := range c.Args {
		argTypes = append(argTypes, s.checkExpr(a))
	}
	switch bi.Kind {
	case BWorkItem:
		if bi.NArgs == 1 && len(argTypes) == 1 && !argTypes[0].IsInt() {
			s.errorf(c.P, "%s dimension must be an integer", c.Name)
		}
		if c.Name == "get_work_dim" {
			return TypeInt
		}
		return TypeLong
	case BBarrier:
		return TypeVoid
	case BAtomic:
		if len(argTypes) == 0 {
			return TypeInt
		}
		pt := argTypes[0]
		if pt.K != CPtr || !pt.Elem.IsInt() || pt.Elem.K == CBool {
			s.errorf(c.P, "%s requires a pointer to int or long, got %s", c.Name, pt)
			return TypeInt
		}
		if pt.Space != ir.Global && pt.Space != ir.Local {
			s.errorf(c.P, "%s requires a global or local pointer", c.Name)
		}
		if !bi.Inc && len(argTypes) > 1 && !argTypes[1].IsInt() {
			s.errorf(c.P, "%s operand must be an integer", c.Name)
		}
		return pt.Elem
	case BMinMax:
		t := argTypes[0]
		for _, at := range argTypes[1:] {
			t = commonArith(t, at)
		}
		if !t.IsArith() {
			s.errorf(c.P, "%s requires arithmetic operands", c.Name)
			t = TypeInt
		}
		return t
	case BMath:
		// Math builtins operate on float (double when any arg is
		// double).
		t := TypeFloat
		for _, at := range argTypes {
			if !at.IsArith() {
				s.errorf(c.P, "%s requires arithmetic operands", c.Name)
			}
			if at.K == CDouble {
				t = TypeDouble
			}
		}
		return t
	}
	return TypeInt
}
