// Package clc implements a front end for the subset of OpenCL C used by
// the Parboil-style kernels in this repository: a lexer, a recursive
// descent parser, a semantic analyzer and an IR generator targeting
// internal/ir.
//
// Supported language: the scalar types void/bool/int/uint/long/ulong/
// size_t/float/double, pointers with OpenCL address-space qualifiers
// (global, local, constant, private), one-dimensional local/private
// arrays, the usual C expressions and statements (if/else, for, while,
// do-while, break, continue, return), object-like #define macros, OpenCL
// work-item builtins, barriers and atomics.
package clc

import "fmt"

// TokKind classifies a token.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokKeyword
	TokPunct
)

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos

	IntVal   int64   // valid for TokIntLit
	FloatVal float64 // valid for TokFloatLit
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"void": true, "bool": true, "char": true, "int": true, "uint": true,
	"long": true, "ulong": true, "size_t": true, "float": true,
	"double": true, "unsigned": true,
	"kernel": true, "__kernel": true,
	"global": true, "__global": true,
	"local": true, "__local": true,
	"constant": true, "__constant": true,
	"private": true, "__private": true,
	"const": true, "restrict": true, "volatile": true,
	"if": true, "else": true, "for": true, "while": true, "do": true,
	"return": true, "break": true, "continue": true,
	"true": true, "false": true,
	"extern": true,
}

var puncts = []string{
	// three-char first, then two-char, then one-char: the lexer matches
	// greedily in slice order.
	"<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
	"(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~", ".",
}
