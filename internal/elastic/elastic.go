// Package elastic reimplements the Elastic Kernels comparator (Pai et
// al., ASPLOS'13) the way the paper evaluates it (§7.3): kernels are made
// grid-elastic and statically merged into a single co-scheduled launch.
// Resource allocation is decided once, at merge time, proportional to
// each kernel's total work; every physical work-group receives a fixed
// contiguous range of virtual groups. There is no dynamic rebalancing and
// no notion of fairness — the properties the paper shows cause EK to fall
// behind accelOS as the number of concurrent requests grows.
package elastic

import (
	"repro/internal/device"
	"repro/internal/sim"
)

// Plan computes the static EK allocation for a set of concurrent
// requests. It returns the per-kernel launches (with static ranges) and
// the merged kernel's per-work-group footprint: merged code pays the
// maximum work-group size (smaller kernels pad with idle work-items),
// the maximum register demand and the maximum local memory of the set —
// the occupancy cost of static merging.
func Plan(dev *device.Platform, execs []*sim.KernelExec) ([]*sim.Launch, device.Footprint) {
	if len(execs) == 0 {
		return nil, device.Footprint{}
	}
	var merged device.Footprint
	var maxRegsPT int64
	for _, k := range execs {
		if k.WGSize > merged.Threads {
			merged.Threads = k.WGSize
		}
		if k.LocalBytes > merged.LocalBytes {
			merged.LocalBytes = k.LocalBytes
		}
		if k.RegsPerThread > maxRegsPT {
			maxRegsPT = k.RegsPerThread
		}
	}
	merged.Regs = maxRegsPT * merged.Threads

	slots := dev.MaxConcurrentWGs(merged)
	if slots < int64(len(execs)) {
		slots = int64(len(execs))
	}

	// Static split of the physical slots proportional to grid size —
	// EK slices kernels by their NDRanges with no knowledge of per-
	// work-group cost, so kernels with expensive groups are starved and
	// cheap-group kernels over-provisioned (the root of EK's fairness
	// problem in the paper's comparison).
	weights := make([]int64, len(execs))
	var total int64
	for i, k := range execs {
		weights[i] = k.NumWGs * k.WGSize
		if weights[i] < 1 {
			weights[i] = 1
		}
		total += weights[i]
	}
	launches := make([]*sim.Launch, len(execs))
	// Every member receives at least half an equal share: EK's slicer
	// bounds how small a co-scheduled kernel's slice can get.
	floor := slots / (2 * int64(len(execs)))
	if floor < 1 {
		floor = 1
	}
	for i, k := range execs {
		n := slots * weights[i] / total
		if n < floor {
			n = floor
		}
		if n > k.NumWGs {
			n = k.NumWGs
		}
		launches[i] = &sim.Launch{
			K:       k,
			PhysWGs: n,
			FP:      merged,
			Ranges:  splitRanges(k.NumWGs, n),
		}
	}
	return launches, merged
}

// splitRanges partitions [0, total) into n contiguous ranges whose sizes
// differ by at most one.
func splitRanges(total, n int64) [][2]int64 {
	if n > total {
		n = total
	}
	ranges := make([][2]int64, 0, n)
	base := total / n
	rem := total % n
	var cur int64
	for i := int64(0); i < n; i++ {
		sz := base
		if i < rem {
			sz++
		}
		ranges = append(ranges, [2]int64{cur, cur + sz})
		cur += sz
	}
	return ranges
}
