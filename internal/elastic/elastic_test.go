package elastic

import (
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/sim"
)

func mk(id int, wgs, numWGs, cost, regs int64) *sim.KernelExec {
	return &sim.KernelExec{
		ID: id, WGSize: wgs, NumWGs: numWGs, BaseWGCost: cost,
		RegsPerThread: regs, LocalBytes: 1024, MemIntensity: 0.5, SatFrac: 0.4,
	}
}

func TestMergedFootprintIsUnionOfMaxima(t *testing.T) {
	dev := device.NVIDIAK20m()
	execs := []*sim.KernelExec{
		mk(0, 64, 100, 1000, 40),
		mk(1, 256, 200, 2000, 16),
	}
	execs[1].LocalBytes = 8192
	_, merged := Plan(dev, execs)
	if merged.Threads != 256 {
		t.Errorf("merged threads = %d, want the max 256", merged.Threads)
	}
	if merged.LocalBytes != 8192 {
		t.Errorf("merged local = %d, want 8192", merged.LocalBytes)
	}
	if merged.Regs != 40*256 {
		t.Errorf("merged regs = %d, want maxRegsPerThread*maxThreads = %d", merged.Regs, 40*256)
	}
}

func TestPlanCoversEveryVirtualGroup(t *testing.T) {
	dev := device.NVIDIAK20m()
	execs := []*sim.KernelExec{
		mk(0, 128, 777, 1500, 20),
		mk(1, 64, 13, 9000, 24),
		mk(2, 256, 4096, 800, 12),
	}
	launches, _ := Plan(dev, execs)
	for i, l := range launches {
		var covered int64
		prevEnd := int64(0)
		for _, r := range l.Ranges {
			if r[0] != prevEnd {
				t.Errorf("kernel %d: range starts at %d, want %d (contiguous)", i, r[0], prevEnd)
			}
			if r[1] <= r[0] {
				t.Errorf("kernel %d: empty or inverted range %v", i, r)
			}
			covered += r[1] - r[0]
			prevEnd = r[1]
		}
		if covered != execs[i].NumWGs {
			t.Errorf("kernel %d: ranges cover %d of %d virtual groups", i, covered, execs[i].NumWGs)
		}
		if int64(len(l.Ranges)) != l.PhysWGs {
			t.Errorf("kernel %d: %d ranges for %d physical WGs", i, len(l.Ranges), l.PhysWGs)
		}
	}
}

func TestGridProportionalStarvation(t *testing.T) {
	dev := device.NVIDIAK20m()
	// A tiny grid of expensive groups merged with a huge grid of cheap
	// ones: EK starves the former.
	small := mk(0, 128, 64, 100000, 20)
	big := mk(1, 128, 8192, 1000, 20)
	launches, _ := Plan(dev, []*sim.KernelExec{small, big})
	if launches[0].PhysWGs >= launches[1].PhysWGs {
		t.Errorf("grid-proportional split gave the small grid %d >= %d workers",
			launches[0].PhysWGs, launches[1].PhysWGs)
	}
	if launches[0].PhysWGs < 1 {
		t.Error("slice floor violated")
	}
}

func TestSplitRangesProperty(t *testing.T) {
	f := func(total16, n16 uint16) bool {
		total := int64(total16%5000) + 1
		n := int64(n16%64) + 1
		rs := splitRanges(total, n)
		var covered int64
		prev := int64(0)
		for _, r := range rs {
			if r[0] != prev || r[1] <= r[0] {
				return false
			}
			sz := r[1] - r[0]
			// Sizes differ by at most one.
			if sz < total/min64(n, total) || sz > total/min64(n, total)+1 {
				return false
			}
			covered += sz
			prev = r[1]
		}
		return covered == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestPlanEmpty(t *testing.T) {
	launches, merged := Plan(device.NVIDIAK20m(), nil)
	if launches != nil || merged.Threads != 0 {
		t.Error("empty plan should be empty")
	}
}
