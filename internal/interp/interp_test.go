package interp

import (
	"math"
	"testing"

	"repro/internal/clc"
	"repro/internal/ir"
)

func compile(t *testing.T, src string) *Machine {
	t.Helper()
	m, err := clc.Compile(src, "test")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return NewMachine(m)
}

func TestVectorAdd(t *testing.T) {
	m := compile(t, `
kernel void vadd(global const float* a, global const float* b, global float* c, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}
`)
	const n = 256
	a := m.NewRegion(n*4, ir.Global)
	b := m.NewRegion(n*4, ir.Global)
	c := m.NewRegion(n*4, ir.Global)
	av := make([]float32, n)
	bv := make([]float32, n)
	for i := range av {
		av[i] = float32(i)
		bv[i] = float32(2 * i)
	}
	a.WriteFloat32s(0, av)
	b.WriteFloat32s(0, bv)
	args := []Value{
		{K: ir.Pointer, P: Ptr{R: a}},
		{K: ir.Pointer, P: Ptr{R: b}},
		{K: ir.Pointer, P: Ptr{R: c}},
		IntV(n),
	}
	if err := m.Launch("vadd", args, ND1(n, 64)); err != nil {
		t.Fatalf("launch: %v", err)
	}
	got := c.ReadFloat32s(0, n)
	for i, v := range got {
		if v != float32(3*i) {
			t.Fatalf("c[%d] = %v, want %v", i, v, float32(3*i))
		}
	}
}

func TestGroupIDBranch(t *testing.T) {
	// The paper's running example (Fig. 8a): add for low group IDs,
	// subtract for high ones.
	m := compile(t, `
#define NConstant 2
kernel void mop(global const float* ina, global const float* inb, global float* out)
{
    size_t gid = get_global_id(0);
    size_t grid = get_group_id(0);
    if (grid < NConstant)
        out[gid] = ina[gid] + inb[gid];
    else
        out[gid] = ina[gid] - inb[gid];
}
`)
	const n, wg = 128, 32
	a := m.NewRegion(n*4, ir.Global)
	b := m.NewRegion(n*4, ir.Global)
	c := m.NewRegion(n*4, ir.Global)
	av := make([]float32, n)
	bv := make([]float32, n)
	for i := range av {
		av[i] = float32(i) + 1
		bv[i] = 3
	}
	a.WriteFloat32s(0, av)
	b.WriteFloat32s(0, bv)
	args := []Value{{K: ir.Pointer, P: Ptr{R: a}}, {K: ir.Pointer, P: Ptr{R: b}}, {K: ir.Pointer, P: Ptr{R: c}}}
	if err := m.Launch("mop", args, ND1(n, wg)); err != nil {
		t.Fatalf("launch: %v", err)
	}
	got := c.ReadFloat32s(0, n)
	for i := range got {
		want := av[i] + 3
		if i >= 2*wg {
			want = av[i] - 3
		}
		if got[i] != want {
			t.Fatalf("out[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestBarrierReduction(t *testing.T) {
	// Tree reduction in local memory: exercises barriers and local
	// arrays.
	m := compile(t, `
#define WG 64
kernel void reduce(global const int* in, global int* out)
{
    local int scratch[WG];
    int lid = (int)get_local_id(0);
    int gid = (int)get_global_id(0);
    scratch[lid] = in[gid];
    barrier(1);
    int s;
    for (s = WG / 2; s > 0; s >>= 1) {
        if (lid < s) scratch[lid] += scratch[lid + s];
        barrier(1);
    }
    if (lid == 0) out[get_group_id(0)] = scratch[0];
}
`)
	const n, wg = 256, 64
	in := m.NewRegion(n*4, ir.Global)
	out := m.NewRegion((n/wg)*4, ir.Global)
	iv := make([]int32, n)
	for i := range iv {
		iv[i] = int32(i)
	}
	in.WriteInt32s(0, iv)
	args := []Value{{K: ir.Pointer, P: Ptr{R: in}}, {K: ir.Pointer, P: Ptr{R: out}}}
	if err := m.Launch("reduce", args, ND1(n, wg)); err != nil {
		t.Fatalf("launch: %v", err)
	}
	got := out.ReadInt32s(0, n/wg)
	for g := 0; g < n/wg; g++ {
		want := int32(0)
		for i := g * wg; i < (g+1)*wg; i++ {
			want += int32(i)
		}
		if got[g] != want {
			t.Fatalf("group %d sum = %d, want %d", g, got[g], want)
		}
	}
}

func TestAtomicHistogram(t *testing.T) {
	m := compile(t, `
kernel void histo(global const int* data, global int* bins, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) atomic_add(&bins[data[i] % 16], 1);
}
`)
	const n = 512
	data := m.NewRegion(n*4, ir.Global)
	bins := m.NewRegion(16*4, ir.Global)
	dv := make([]int32, n)
	for i := range dv {
		dv[i] = int32(i * 7)
	}
	data.WriteInt32s(0, dv)
	args := []Value{{K: ir.Pointer, P: Ptr{R: data}}, {K: ir.Pointer, P: Ptr{R: bins}}, IntV(n)}
	if err := m.Launch("histo", args, ND1(n, 64)); err != nil {
		t.Fatalf("launch: %v", err)
	}
	got := bins.ReadInt32s(0, 16)
	want := make([]int32, 16)
	for _, v := range dv {
		want[v%16]++
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bin %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMathBuiltins(t *testing.T) {
	m := compile(t, `
kernel void mathk(global float* out)
{
    int i = (int)get_global_id(0);
    float x = (float)(i + 1);
    if (i == 0) out[i] = sqrt(x * 4.0f);
    if (i == 1) out[i] = exp(0.0f) + log(1.0f);
    if (i == 2) out[i] = fmax(sin(0.0f), cos(0.0f));
    if (i == 3) out[i] = pow(2.0f, 10.0f);
    if (i == 4) out[i] = rsqrt(4.0f);
    if (i == 5) out[i] = fabs(-3.5f);
}
`)
	out := m.NewRegion(6*4, ir.Global)
	args := []Value{{K: ir.Pointer, P: Ptr{R: out}}}
	if err := m.Launch("mathk", args, ND1(6, 6)); err != nil {
		t.Fatalf("launch: %v", err)
	}
	got := out.ReadFloat32s(0, 6)
	want := []float32{2, 1, 1, 1024, 0.5, 3.5}
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-5 {
			t.Fatalf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTwoDimensionalLaunch(t *testing.T) {
	m := compile(t, `
kernel void idx2d(global long* out, int width)
{
    long x = get_global_id(0);
    long y = get_global_id(1);
    out[y * width + x] = get_group_id(0) * 1000 + get_group_id(1) * 100 + get_local_id(0) * 10 + get_local_id(1);
}
`)
	const w, h, lx, ly = 8, 4, 4, 2
	out := m.NewRegion(w*h*8, ir.Global)
	args := []Value{{K: ir.Pointer, P: Ptr{R: out}}, IntV(w)}
	if err := m.Launch("idx2d", args, ND2(w, h, lx, ly)); err != nil {
		t.Fatalf("launch: %v", err)
	}
	got := out.ReadInt64s(0, w*h)
	for y := int64(0); y < h; y++ {
		for x := int64(0); x < w; x++ {
			want := (x/lx)*1000 + (y/ly)*100 + (x%lx)*10 + y%ly
			if got[y*w+x] != want {
				t.Fatalf("out[%d,%d] = %d, want %d", y, x, got[y*w+x], want)
			}
		}
	}
}

func TestOutOfBoundsTraps(t *testing.T) {
	m := compile(t, `
kernel void oob(global int* out) { out[1000000] = 1; }
`)
	out := m.NewRegion(16, ir.Global)
	args := []Value{{K: ir.Pointer, P: Ptr{R: out}}}
	if err := m.Launch("oob", args, ND1(1, 1)); err == nil {
		t.Fatal("expected out-of-bounds trap")
	}
}

func TestDivByZeroTraps(t *testing.T) {
	m := compile(t, `
kernel void dz(global int* out, int d) { out[0] = 7 / d; }
`)
	out := m.NewRegion(16, ir.Global)
	args := []Value{{K: ir.Pointer, P: Ptr{R: out}}, IntV(0)}
	if err := m.Launch("dz", args, ND1(1, 1)); err == nil {
		t.Fatal("expected division-by-zero trap")
	}
}

func TestHelperFunctionCall(t *testing.T) {
	m := compile(t, `
float square(float x) { return x * x; }
int clampi(int v, int lo, int hi) { if (v < lo) return lo; if (v > hi) return hi; return v; }
kernel void k(global float* out, global int* iout)
{
    int i = (int)get_global_id(0);
    out[i] = square((float)i);
    iout[i] = clampi(i - 2, 0, 3);
}
`)
	out := m.NewRegion(8*4, ir.Global)
	iout := m.NewRegion(8*4, ir.Global)
	args := []Value{{K: ir.Pointer, P: Ptr{R: out}}, {K: ir.Pointer, P: Ptr{R: iout}}}
	if err := m.Launch("k", args, ND1(8, 4)); err != nil {
		t.Fatalf("launch: %v", err)
	}
	f := out.ReadFloat32s(0, 8)
	iv := iout.ReadInt32s(0, 8)
	for i := 0; i < 8; i++ {
		if f[i] != float32(i*i) {
			t.Fatalf("square(%d) = %v", i, f[i])
		}
		want := int32(i - 2)
		if want < 0 {
			want = 0
		}
		if want > 3 {
			want = 3
		}
		if iv[i] != want {
			t.Fatalf("clampi(%d) = %d, want %d", i-2, iv[i], want)
		}
	}
}

func compileOrDie(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := clc.Compile(src, "t")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func TestRecursionDepthTrap(t *testing.T) {
	m := compile(t, `
int loop(int x) { return loop(x + 1); }
kernel void k(global int* out) { out[0] = loop(0); }
`)
	out := m.NewRegion(8, ir.Global)
	if err := m.Launch("k", []Value{{K: ir.Pointer, P: Ptr{R: out}}}, ND1(1, 1)); err == nil {
		t.Fatal("runaway recursion not trapped")
	}
}

func TestAtomicKindsAll(t *testing.T) {
	m := compile(t, `
kernel void k(global int* v)
{
    atomic_add(&v[0], 5);
    atomic_sub(&v[1], 3);
    atomic_min(&v[2], -7);
    atomic_max(&v[3], 9);
    atomic_and(&v[4], 12);
    atomic_or(&v[5], 3);
    int old = atomic_xchg(&v[6], 42);
    atomic_inc(&v[7]);
    atomic_dec(&v[8]);
    v[9] = old;
}
`)
	v := m.NewRegion(10*4, ir.Global)
	v.WriteInt32s(0, []int32{1, 10, 0, 0, 13, 8, 17, 100, 100, 0})
	if err := m.Launch("k", []Value{{K: ir.Pointer, P: Ptr{R: v}}}, ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	got := v.ReadInt32s(0, 10)
	want := []int32{6, 7, -7, 9, 12, 11, 42, 101, 99, 17}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("v[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	// The right operand of && / || must not evaluate when short-circuited;
	// here evaluation would trap (division by zero).
	m := compile(t, `
kernel void k(global int* out, int zero)
{
    int a = 0;
    if (a != 0 && 1 / zero > 0) out[0] = 1; else out[0] = 2;
    if (a == 0 || 1 / zero > 0) out[1] = 3; else out[1] = 4;
}
`)
	out := m.NewRegion(8, ir.Global)
	args := []Value{{K: ir.Pointer, P: Ptr{R: out}}, IntV(0)}
	if err := m.Launch("k", args, ND1(1, 1)); err != nil {
		t.Fatalf("short-circuit evaluated the trapping side: %v", err)
	}
	got := out.ReadInt32s(0, 2)
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("short-circuit results = %v", got)
	}
}

func TestDoWhileAndContinueBreak(t *testing.T) {
	m := compile(t, `
kernel void k(global int* out)
{
    int sum = 0;
    int i = 0;
    do { sum += i; ++i; } while (i < 5);       /* 0+1+2+3+4 = 10 */
    int j;
    for (j = 0; j < 10; ++j) {
        if (j % 2 == 0) continue;
        if (j > 6) break;
        sum += j;                               /* 1+3+5 = 9 */
    }
    out[0] = sum;
}
`)
	out := m.NewRegion(4, ir.Global)
	if err := m.Launch("k", []Value{{K: ir.Pointer, P: Ptr{R: out}}}, ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := out.ReadInt32s(0, 1)[0]; got != 19 {
		t.Errorf("sum = %d, want 19", got)
	}
}

func TestIncDecSemantics(t *testing.T) {
	m := compile(t, `
kernel void k(global int* out)
{
    int a = 5;
    out[0] = a++;  /* 5, a=6 */
    out[1] = ++a;  /* 7 */
    out[2] = a--;  /* 7, a=6 */
    out[3] = --a;  /* 5 */
    float f = 1.5f;
    f++;
    out[4] = (int)(f * 2.0f); /* 5 */
}
`)
	out := m.NewRegion(5*4, ir.Global)
	if err := m.Launch("k", []Value{{K: ir.Pointer, P: Ptr{R: out}}}, ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	got := out.ReadInt32s(0, 5)
	want := []int32{5, 7, 7, 5, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCompoundAssignMixedTypes(t *testing.T) {
	m := compile(t, `
kernel void k(global float* fout, global int* iout)
{
    float f = 10.0f;
    f /= 4;          /* int converted to float: 2.5 */
    fout[0] = f;
    int i = 7;
    i += 2.9f;       /* float converted back: 9 */
    iout[0] = i;
    i <<= 2;         /* 36 */
    iout[1] = i;
    i %= 7;          /* 1 */
    iout[2] = i;
}
`)
	fout := m.NewRegion(4, ir.Global)
	iout := m.NewRegion(12, ir.Global)
	args := []Value{{K: ir.Pointer, P: Ptr{R: fout}}, {K: ir.Pointer, P: Ptr{R: iout}}}
	if err := m.Launch("k", args, ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := fout.ReadFloat32s(0, 1)[0]; got != 2.5 {
		t.Errorf("f = %v, want 2.5", got)
	}
	got := iout.ReadInt32s(0, 3)
	if got[0] != 9 || got[1] != 36 || got[2] != 1 {
		t.Errorf("ints = %v, want [9 36 1]", got)
	}
}

func TestPointerArithmetic(t *testing.T) {
	m := compile(t, `
kernel void k(global int* data, int n)
{
    global int* p = data + 2;
    p[0] = 10;          /* data[2] */
    *(p + 1) = 20;      /* data[3] */
    p += 2;
    *p = 30;            /* data[4] */
    global int* q = data;
    q++;
    *q = 40;            /* data[1] */
}
`)
	data := m.NewRegion(5*4, ir.Global)
	args := []Value{{K: ir.Pointer, P: Ptr{R: data}}, IntV(5)}
	if err := m.Launch("k", args, ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	got := data.ReadInt32s(0, 5)
	want := []int32{0, 40, 10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("data[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
