package interp

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func TestRegionReadWriteRoundTrip(t *testing.T) {
	m := NewMachine(nil)
	r := m.NewRegion(64, ir.Global)

	i32s := []int32{1, -2, 1 << 30, -(1 << 30)}
	r.WriteInt32s(0, i32s)
	if got := r.ReadInt32s(0, 4); got[1] != -2 || got[2] != 1<<30 {
		t.Errorf("int32 roundtrip: %v", got)
	}
	i64s := []int64{-(1 << 60), 1 << 60}
	r.WriteInt64s(16, i64s)
	if got := r.ReadInt64s(16, 2); got[0] != -(1<<60) || got[1] != 1<<60 {
		t.Errorf("int64 roundtrip: %v", got)
	}
	f32s := []float32{1.5, -0.25, 3e10}
	r.WriteFloat32s(32, f32s)
	if got := r.ReadFloat32s(32, 3); got[0] != 1.5 || got[2] != 3e10 {
		t.Errorf("float32 roundtrip: %v", got)
	}
}

func TestTypedLoadStoreProperty(t *testing.T) {
	m := NewMachine(nil)
	r := m.NewRegion(16, ir.Global)
	p := Ptr{R: r}
	f := func(i int64, fl float64) bool {
		m.store(ir.I64T, Value{K: ir.I64, I: i}, p)
		if m.load(ir.I64T, p).I != i {
			return false
		}
		m.store(ir.F64T, Value{K: ir.F64, F: fl}, p)
		if m.load(ir.F64T, p).F != fl {
			return false
		}
		i32 := int64(int32(i))
		m.store(ir.I32T, Value{K: ir.I32, I: i32}, p)
		return m.load(ir.I32T, p).I == i32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPointerEncodingRoundTrip(t *testing.T) {
	m := NewMachine(nil)
	r := m.NewRegion(128, ir.Global)
	slot := m.NewRegion(8, ir.Private)
	p := Ptr{R: r, Off: 40}
	m.store(ir.PointerTo(ir.F32T, ir.Global), Value{K: ir.Pointer, P: p}, Ptr{R: slot})
	got := m.load(ir.PointerTo(ir.F32T, ir.Global), Ptr{R: slot})
	if got.P.R != r || got.P.Off != 40 {
		t.Errorf("pointer roundtrip: %+v", got.P)
	}
	// Null pointer stores as zero and loads back as null.
	m.store(ir.PointerTo(ir.F32T, ir.Global), Value{K: ir.Pointer}, Ptr{R: slot})
	if !m.load(ir.PointerTo(ir.F32T, ir.Global), Ptr{R: slot}).P.IsNull() {
		t.Error("null pointer did not round-trip")
	}
}

func TestBoundsChecks(t *testing.T) {
	m := NewMachine(nil)
	r := m.NewRegion(8, ir.Global)
	mustTrap := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected a trap")
			}
		}()
		fn()
	}
	mustTrap(func() { m.load(ir.I64T, Ptr{R: r, Off: 1}) })
	mustTrap(func() { m.load(ir.I32T, Ptr{R: r, Off: -4}) })
	mustTrap(func() { m.store(ir.I32T, IntV(0), Ptr{}) })
}

func TestBarrierPoison(t *testing.T) {
	b := newBarrier(2)
	done := make(chan bool, 1)
	go func() {
		defer func() { done <- recover() != nil }()
		b.await() // waits for a partner that traps instead
	}()
	b.poison()
	if !<-done {
		t.Error("poisoned barrier did not unwind the waiter")
	}
	// New arrivals must also unwind.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("await on a dead barrier did not panic")
			}
		}()
		b.await()
	}()
}

func TestValueConstructors(t *testing.T) {
	if !BoolV(true).Bool() || BoolV(false).Bool() {
		t.Error("BoolV broken")
	}
	if IntV(5).K != ir.I32 || LongV(5).K != ir.I64 {
		t.Error("int constructors have wrong kinds")
	}
	if FloatV(1.5).F != 1.5 || DoubleV(2.5).K != ir.F64 {
		t.Error("float constructors broken")
	}
}

func TestNDRangeValidation(t *testing.T) {
	bad := []NDRange{
		{Dims: 0},
		{Dims: 4},
		{Dims: 1, Global: [3]int64{0, 1, 1}, Local: [3]int64{1, 1, 1}},
		{Dims: 1, Global: [3]int64{10, 1, 1}, Local: [3]int64{3, 1, 1}},
		{Dims: 2, Global: [3]int64{8, 7, 1}, Local: [3]int64{4, 2, 1}},
	}
	for _, nd := range bad {
		if err := nd.Validate(); err == nil {
			t.Errorf("invalid NDRange accepted: %+v", nd)
		}
	}
	good := ND2(8, 4, 4, 2)
	if err := good.Validate(); err != nil {
		t.Errorf("valid NDRange rejected: %v", err)
	}
	if good.TotalGroups() != 4 || good.WGSize() != 8 {
		t.Errorf("NDRange math wrong: %d groups, wg %d", good.TotalGroups(), good.WGSize())
	}
}

func TestLaunchArgValidation(t *testing.T) {
	src := `kernel void k(global int* out, int n) { out[0] = n; }`
	mod := compileOrDie(t, src)
	m := NewMachine(mod)
	out := m.NewRegion(8, ir.Global)
	args := []Value{{K: ir.Pointer, P: Ptr{R: out}}}
	if err := m.Launch("k", args, ND1(1, 1)); err == nil {
		t.Error("wrong arg count accepted")
	}
	if err := m.Launch("missing", nil, ND1(1, 1)); err == nil {
		t.Error("unknown kernel accepted")
	}
	if err := m.Launch("k", append(args, IntV(1)), NDRange{Dims: 1, Global: [3]int64{3, 1, 1}, Local: [3]int64{2, 1, 1}}); err == nil {
		t.Error("invalid geometry accepted")
	}
	m.MaxWorkItems = 4
	if err := m.Launch("k", append(args, IntV(1)), ND1(8, 4)); err == nil {
		t.Error("work-item limit not enforced")
	}
}
