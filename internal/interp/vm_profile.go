package interp

import (
	"repro/internal/ir"
)

// execProf is the profiled twin of exec (vm.go): the identical dispatch
// loop plus counting hooks — per-instruction opcode counts, block-entry
// counts at every control transfer, and barrier totals. It exists as a
// separate loop so the unprofiled hot path carries no per-instruction
// branch: runGroupVM selects the loop once per group (sampling), and the
// profiled-vs-unprofiled parity test holds the two loops semantically
// byte-identical. When editing exec, mirror the change here.
func (g *vmGroup) execProf(wi *wiState) {
	gp := g.prof
	l := g.l
	m := l.m
	top := len(wi.frames) - 1
	cf := wi.frames[top].cf
	code := cf.code
	regs := *wi.frames[top].regp
	pc := wi.frames[top].pc
	steps := wi.steps

	if pc == 0 && gp.perBlock {
		// Fresh kernel-frame entry (barrier resumes restart mid-block and
		// are not block entries).
		gp.enterBlock(cf, 0)
	}

	for {
		in := &code[pc]
		pc++
		steps++
		gp.instrs++
		if gp.perOp {
			gp.opcodes[in.op]++
		}
		if steps >= stepBatch {
			l.addSteps(steps)
			steps = 0
		}
		switch in.op {
		case opAlloca:
			r := g.ar.alloc(in.imm, ir.AddrSpace(in.sub))
			regs[in.dst] = Value{K: ir.Pointer, P: Ptr{R: r}}
		case opAllocaLocal:
			r := g.locals[in.a]
			if r == nil {
				r = g.ar.alloc(in.imm, ir.Local)
				g.locals[in.a] = r
			}
			regs[in.dst] = Value{K: ir.Pointer, P: Ptr{R: r}}
		case opLoad:
			regs[in.dst] = m.load(kindTypes[in.kind], regs[in.a].P)
		case opStore:
			m.store(kindTypes[in.kind], regs[in.a], regs[in.b].P)
		case opGEP:
			base := regs[in.a].P
			if base.IsNull() {
				panic(trap{"gep on null pointer"})
			}
			regs[in.dst] = Value{K: ir.Pointer, P: Ptr{R: base.R, Off: base.Off + regs[in.b].I*in.imm}}
		case opGEPConst:
			base := regs[in.a].P
			if base.IsNull() {
				panic(trap{"gep on null pointer"})
			}
			regs[in.dst] = Value{K: ir.Pointer, P: Ptr{R: base.R, Off: base.Off + in.imm}}
		case opBin:
			regs[in.dst] = fastBin(ir.BinKind(in.sub), in.kind, &regs[in.a], &regs[in.b])
		case opCmp:
			regs[in.dst] = BoolV(fastCmp(ir.CmpPred(in.sub), &regs[in.a], &regs[in.b]))
		case opMove:
			regs[in.dst] = regs[in.a]
		case opAddI32:
			regs[in.dst] = Value{K: ir.I32, I: int64(int32(regs[in.a].I + regs[in.b].I))}
		case opSubI32:
			regs[in.dst] = Value{K: ir.I32, I: int64(int32(regs[in.a].I - regs[in.b].I))}
		case opMulI32:
			regs[in.dst] = Value{K: ir.I32, I: int64(int32(regs[in.a].I * regs[in.b].I))}
		case opAndI32:
			regs[in.dst] = Value{K: ir.I32, I: int64(int32(regs[in.a].I & regs[in.b].I))}
		case opOrI32:
			regs[in.dst] = Value{K: ir.I32, I: int64(int32(regs[in.a].I | regs[in.b].I))}
		case opXorI32:
			regs[in.dst] = Value{K: ir.I32, I: int64(int32(regs[in.a].I ^ regs[in.b].I))}
		case opAddI64:
			regs[in.dst] = Value{K: ir.I64, I: regs[in.a].I + regs[in.b].I}
		case opAddF32:
			regs[in.dst] = Value{K: ir.F32, F: float64(float32(regs[in.a].F + regs[in.b].F))}
		case opSubF32:
			regs[in.dst] = Value{K: ir.F32, F: float64(float32(regs[in.a].F - regs[in.b].F))}
		case opMulF32:
			regs[in.dst] = Value{K: ir.F32, F: float64(float32(regs[in.a].F * regs[in.b].F))}
		case opDivF32:
			regs[in.dst] = Value{K: ir.F32, F: float64(float32(regs[in.a].F / regs[in.b].F))}
		case opCmpJump:
			if fastCmp(ir.CmpPred(in.sub), &regs[in.a], &regs[in.b]) {
				pc = in.c
			} else {
				pc = int32(in.imm)
			}
			if gp.perBlock {
				gp.enterBlock(cf, pc)
			}
		case opBinBin:
			t := i32Bin(ir.BinKind(in.sub), regs[in.a].I, regs[in.b].I)
			var r int64
			if in.imm&bbSwapped != 0 {
				r = i32Bin(ir.BinKind(in.imm&0xff), regs[in.c].I, t)
			} else {
				r = i32Bin(ir.BinKind(in.imm&0xff), t, regs[in.c].I)
			}
			regs[in.dst] = Value{K: ir.I32, I: r}
		case opBinCmpJump:
			v := i32Bin(ir.BinKind(in.sub), regs[in.a].I, regs[in.b].I)
			regs[in.dst] = Value{K: ir.I32, I: v}
			x, y := v, regs[in.args[1]].I
			if in.args[0]&bcjSwapped != 0 {
				x, y = y, x
			}
			if i32Cmp(ir.CmpPred(in.args[0]&0xffff), x, y) {
				pc = in.c
			} else {
				pc = int32(in.imm)
			}
			if gp.perBlock {
				gp.enterBlock(cf, pc)
			}
		case opBinStore:
			m.store(kindTypes[in.kind], binOp(ir.BinKind(in.sub), kindTypes[in.kind], regs[in.a], regs[in.b]), regs[in.c].P)
		case opLoadBinStore:
			t := kindTypes[in.kind]
			v := m.load(t, regs[in.a].P)
			x := regs[in.b]
			if in.sub&lbsSwapped != 0 {
				v, x = x, v
			}
			m.store(t, binOp(ir.BinKind(in.sub&^lbsSwapped), t, v, x), regs[in.c].P)
		case opLoadIdx:
			base := regs[in.a].P
			if base.IsNull() {
				panic(trap{"gep on null pointer"})
			}
			regs[in.dst] = m.load(kindTypes[in.kind], Ptr{R: base.R, Off: base.Off + regs[in.b].I*in.imm})
		case opLoadOff:
			base := regs[in.a].P
			if base.IsNull() {
				panic(trap{"gep on null pointer"})
			}
			regs[in.dst] = m.load(kindTypes[in.kind], Ptr{R: base.R, Off: base.Off + in.imm})
		case opCast:
			regs[in.dst] = castOp(ir.CastKind(in.sub), kindTypes[in.kind], regs[in.a])
		case opSelect:
			if regs[in.a].Bool() {
				regs[in.dst] = regs[in.b]
			} else {
				regs[in.dst] = regs[in.c]
			}
		case opAtomic:
			regs[in.dst] = m.atomicRMW(ir.AtomicKind(in.sub), kindTypes[in.kind], regs[in.a].P, regs[in.b])
		case opBarrier:
			gp.barriers++
			wi.frames[top].pc = pc
			wi.status = wiBarrier
			wi.steps = steps
			return
		case opCall:
			if top+1 > maxCallDepth {
				panic(trap{"call depth exceeded (runaway recursion?)"})
			}
			wi.frames[top].pc = pc
			callee := in.fn
			cregp := callee.getRegs()
			cregs := *cregp
			for ai, ar := range in.args {
				cregs[ai] = regs[ar]
			}
			wi.frames = append(wi.frames, vmFrame{cf: callee, regp: cregp, pc: 0, dst: in.dst})
			top++
			cf, code, regs, pc = callee, callee.code, cregs, 0
			if gp.perBlock {
				gp.enterBlock(cf, 0)
			}
		case opWI:
			dim := in.imm
			if in.a >= 0 {
				dim = regs[in.a].I
				if dim < 0 || dim > 2 {
					dim = 0
				}
			}
			var v Value
			switch in.sub {
			case wiGlobalID:
				v = LongV(g.group[dim]*l.nd.Local[dim] + wi.lid[dim])
			case wiLocalID:
				v = LongV(wi.lid[dim])
			case wiGroupID:
				v = LongV(g.group[dim])
			case wiNumGroups:
				v = LongV(l.ng[dim])
			case wiLocalSize:
				v = LongV(l.nd.Local[dim])
			case wiGlobalSize:
				v = LongV(l.nd.Global[dim])
			case wiGlobalOffset:
				v = LongV(0)
			case wiWorkDim:
				v = IntV(int64(l.nd.Dims))
			}
			regs[in.dst] = v
		case opMath:
			x := regs[in.a].F
			var y float64
			if in.b >= 0 {
				y = regs[in.b].F
			}
			regs[in.dst] = evalMath(in.sub, in.kind, x, y)
		case opJump:
			pc = int32(in.imm)
			if gp.perBlock {
				gp.enterBlock(cf, pc)
			}
		case opCondJump:
			if regs[in.a].Bool() {
				pc = in.b
			} else {
				pc = in.c
			}
			if gp.perBlock {
				gp.enterBlock(cf, pc)
			}
		case opRet:
			var rv Value
			if in.a >= 0 {
				rv = regs[in.a]
			}
			cf.putRegs(wi.frames[top].regp)
			dst := wi.frames[top].dst
			wi.frames[top] = vmFrame{}
			wi.frames = wi.frames[:top]
			top--
			if top < 0 {
				wi.status = wiDone
				wi.steps = steps
				return
			}
			fr := &wi.frames[top]
			cf, code, regs, pc = fr.cf, fr.cf.code, *fr.regp, fr.pc
			if dst >= 0 {
				regs[dst] = rv
			}
		case opTrap:
			panic(trap{in.msg})
		}
	}
}
