package interp

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clc"
	"repro/internal/ir"
)

// tierLoopSrc is the canonical hot-kernel shape for the tier tests: a
// do-while loop whose body ends bin;bin;bin;cmp;condbr — the profile-
// guided compile fuses the arithmetic pair into opBinBin and the
// increment+test+branch into opBinCmpJump (the increment stays
// multi-use: the back edge's phi reads it).
const tierLoopSrc = `
kernel void f(global int* out)
{
    int acc = 0;
    int i = 0;
    do { acc += i & 7; i = i + 1; } while (i < 100);
    out[0] = acc;
}
`

// profileTier0 runs the kernel once at tier 0 under an exact-sampling
// profiler and returns the profiler plus the run's output.
func profileTier0(t *testing.T, mod *ir.Module, kernel string) (*Profiler, []int32) {
	t.Helper()
	p0 := CompileModuleOpts(mod, Tier0CompileOpts)
	if p0.Tier() != 0 {
		t.Fatalf("Tier0CompileOpts produced tier %d", p0.Tier())
	}
	prof := NewProfiler(ProfileOptions{PerOpcode: true, PerBlock: true, SampleEvery: 1})
	m := NewMachine(mod)
	m.UseProgram(p0)
	m.Profiler = prof
	out := m.NewRegion(4, ir.Global)
	if err := m.Launch(kernel, []Value{{K: ir.Pointer, P: Ptr{R: out}}}, ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	return prof, out.ReadInt32s(0, 1)
}

func TestGuideFromSnapshots(t *testing.T) {
	snaps := []KernelProfileSnapshot{
		{Kernel: "k1", SampleEvery: 4, Blocks: []BlockCount{
			{Fn: "f", Block: "body", Hits: 10},
			{Fn: "f", Block: "exit", Hits: 1},
		}},
		{Kernel: "k2", SampleEvery: 1, Blocks: []BlockCount{
			{Fn: "f", Block: "body", Hits: 5},
		}},
	}
	g := GuideFromSnapshots(snaps)
	if w := g.Weight("f", "body"); w != 45 {
		t.Errorf("body weight %d, want 45 (10*4 + 5*1)", w)
	}
	if w := g.Weight("f", "exit"); w != 4 {
		t.Errorf("exit weight %d, want 4", w)
	}
	if w := g.Weight("f", "cold"); w != 0 {
		t.Errorf("unseen block weight %d, want 0", w)
	}
	if w := (*ProfileGuide)(nil).Weight("f", "body"); w != 0 {
		t.Errorf("nil guide weight %d, want 0", w)
	}
}

// TestTieredSuperinstructions: a profile-guided recompile of a hot loop
// emits the two profile-gated superinstructions, records its decisions,
// and computes byte-identical results to the tier-0 form.
func TestTieredSuperinstructions(t *testing.T) {
	mod, err := clc.Compile(tierLoopSrc, "tier")
	if err != nil {
		t.Fatal(err)
	}
	prof, want := profileTier0(t, mod, "f")

	guide := GuideFromSnapshots(prof.Snapshot())
	p1 := CompileModuleOpts(mod, CompileOpts{Opt: true, WarpWidth: DefaultWarpWidth, Profile: guide})
	if p1.Tier() != 1 {
		t.Fatalf("guided compile produced tier %d", p1.Tier())
	}
	cf := p1.fns["f"]
	if countVMOps(cf, opBinBin) == 0 {
		t.Error("no opBinBin emitted for the hot acc += i & 7 pair")
	}
	if countVMOps(cf, opBinCmpJump) == 0 {
		t.Error("no opBinCmpJump emitted for the hot increment+test+branch")
	}

	decs := p1.Decisions()
	if len(decs) == 0 {
		t.Fatal("guided compile recorded no decisions")
	}
	var supers int
	for _, d := range decs {
		if len(d.BlockOrder) == 0 {
			t.Errorf("decision for %s has no block order", d.Fn)
		}
		for _, s := range d.Super {
			if !s.Gated {
				if s.Weight <= 0 {
					t.Errorf("emitted superinstruction %s in %s/%s has weight %d", s.Name, s.Fn, s.Block, s.Weight)
				}
				supers++
			}
		}
	}
	if supers == 0 {
		t.Error("no emitted superinstruction recorded in the decisions")
	}

	m := NewMachine(mod)
	m.UseProgram(p1)
	out := m.NewRegion(4, ir.Global)
	if err := m.Launch("f", []Value{{K: ir.Pointer, P: Ptr{R: out}}}, ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := out.ReadInt32s(0, 1); got[0] != want[0] {
		t.Errorf("tier-1 result %d, tier-0 result %d", got[0], want[0])
	}
}

// TestTieredLayoutParity: a loop with a strongly biased branch keeps
// byte-identical results after hot-path block layout moves the cold arm
// out of line, and the guided compile needs no more jumps than the
// static one.
func TestTieredLayoutParity(t *testing.T) {
	src := `
kernel void g(global int* out)
{
    int acc = 0;
    int i = 0;
    do {
        if ((i & 1023) == 0) { acc += 1000; } else { acc += i & 3; }
        i = i + 1;
    } while (i < 4096);
    out[0] = acc;
}
`
	mod, err := clc.Compile(src, "layout")
	if err != nil {
		t.Fatal(err)
	}
	prof, want := profileTier0(t, mod, "g")

	guide := GuideFromSnapshots(prof.Snapshot())
	p1 := CompileModuleOpts(mod, CompileOpts{Opt: true, WarpWidth: DefaultWarpWidth, Profile: guide})
	pStatic := CompileModuleOpts(mod, DefaultCompileOpts)
	if a, b := countVMOps(p1.fns["g"], opJump), countVMOps(pStatic.fns["g"], opJump); a > b {
		t.Errorf("guided layout emits %d opJumps, static %d — fallthrough elision regressed", a, b)
	}

	m := NewMachine(mod)
	m.UseProgram(p1)
	out := m.NewRegion(4, ir.Global)
	if err := m.Launch("g", []Value{{K: ir.Pointer, P: Ptr{R: out}}}, ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := out.ReadInt32s(0, 1); got[0] != want[0] {
		t.Errorf("guided layout result %d, tier-0 result %d", got[0], want[0])
	}
}

// TestTierControllerPromotes: end to end through the controller — the
// first program is tier 0; launches feed its profiler; crossing the
// threshold promotes in the background, bumps the hot-swap generation,
// resets the kernel's profile, and the recompiled program computes the
// same bytes.
func TestTierControllerPromotes(t *testing.T) {
	mod, err := clc.Compile(tierLoopSrc, "tierctl")
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTierController(TierOptions{HotInstrs: 1, SampleEvery: 1})
	defer tc.Close()

	p0 := tc.ProgramFor(mod)
	if p0.Tier() != 0 {
		t.Fatalf("first program is tier %d, want 0", p0.Tier())
	}
	verBefore := ProgramVersion()

	run := func(p *Prog) int32 {
		m := NewMachine(mod)
		m.UseProgram(p)
		m.Profiler = tc.Profiler()
		m.Tier = tc
		out := m.NewRegion(4, ir.Global)
		if err := m.Launch("f", []Value{{K: ir.Pointer, P: Ptr{R: out}}}, ND1(1, 1)); err != nil {
			t.Fatal(err)
		}
		return out.ReadInt32s(0, 1)[0]
	}
	want := run(p0)

	deadline := time.Now().Add(10 * time.Second)
	for tc.Promotions() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if tc.Promotions() == 0 {
		t.Fatal("kernel crossed the hotness threshold but was never promoted")
	}
	if v := ProgramVersion(); v == verBefore {
		t.Error("promotion did not bump the hot-swap generation")
	}
	p1 := tc.ProgramFor(mod)
	if p1.Tier() != 1 {
		t.Fatalf("post-promotion program is tier %d, want 1", p1.Tier())
	}
	if got := run(p1); got != want {
		t.Errorf("tier-1 result %d, tier-0 result %d", got, want)
	}
	if n := tc.Profiler().KernelInstrEstimate("f"); n == 0 {
		// The post-promotion run above re-profiled the kernel; the reset
		// is observable as the estimate restarting from that single run.
		t.Log("profile reset left no counts (single re-run below threshold)")
	}
	// A second promotion must not trigger: the module is already tier 1.
	before := tc.Promotions()
	run(p1)
	time.Sleep(10 * time.Millisecond)
	if tc.Promotions() != before {
		t.Error("already-promoted module was promoted again")
	}
}

// TestTierControllerConcurrentSwap is the -race exercise: launches keep
// running (re-resolving the shared program each time) while promotions
// hot-swap the cache underneath them; every result must match.
func TestTierControllerConcurrentSwap(t *testing.T) {
	mod, err := clc.Compile(tierLoopSrc, "tierrace")
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTierController(TierOptions{HotInstrs: 1, SampleEvery: 1})
	defer tc.Close()

	want := int32(0)
	for i := int32(0); i < 100; i++ {
		want += i & 7
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				p := tc.ProgramFor(mod)
				m := NewMachine(mod)
				m.UseProgram(p)
				m.Profiler = tc.Profiler()
				m.Tier = tc
				out := m.NewRegion(4, ir.Global)
				if err := m.Launch("f", []Value{{K: ir.Pointer, P: Ptr{R: out}}}, ND1(1, 1)); err != nil {
					errc <- err
					return
				}
				if got := out.ReadInt32s(0, 1)[0]; got != want {
					t.Errorf("launch during swap computed %d, want %d", got, want)
					return
				}
			}
		}()
	}
	// Force promotions from a separate goroutine while launches run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			tc.PromoteSync(mod)
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestTieredFaultAttribution: a fault on one specific work-item is
// attributed to the same global id with the same error text whether the
// kernel runs the tier-0 or the profile-guided tier-1 program.
func TestTieredFaultAttribution(t *testing.T) {
	const src = `
kernel void k(global int* out, int n)
{
    int lid = (int)get_local_id(0);
    int acc = 0;
    int i = 0;
    do { acc += i & 7; i = i + 1; } while (i < 64);
    out[lid] = acc / (lid - n);
}
`
	mod, err := clc.Compile(src, "tierfault")
	if err != nil {
		t.Fatal(err)
	}
	p0 := CompileModuleOpts(mod, Tier0CompileOpts)

	launch := func(p *Prog, prof *Profiler, n int64) error {
		m := NewMachine(mod)
		m.UseProgram(p)
		m.Profiler = prof
		out := m.NewRegion(64*4, ir.Global)
		return m.Launch("k", []Value{{K: ir.Pointer, P: Ptr{R: out}}, IntV(n)}, ND1(64, 64))
	}

	// Profile a non-faulting run (n = -1: no lane divides by zero), then
	// build the guided tier-1 program from it.
	prof := NewProfiler(ProfileOptions{PerOpcode: true, PerBlock: true, SampleEvery: 1})
	if err := launch(p0, prof, -1); err != nil {
		t.Fatal(err)
	}
	p1 := CompileModuleOpts(mod, CompileOpts{Opt: true, WarpWidth: DefaultWarpWidth, Profile: GuideFromSnapshots(prof.Snapshot())})

	err0 := launch(p0, nil, 5)
	err1 := launch(p1, nil, 5)
	if err0 == nil || err1 == nil {
		t.Fatalf("faulting launch did not fault (tier0=%v, tier1=%v)", err0, err1)
	}
	if err0.Error() != err1.Error() {
		t.Errorf("fault attribution differs across tiers:\n  tier0: %s\n  tier1: %s", err0, err1)
	}
	if !strings.Contains(err1.Error(), "(5,0,0)") {
		t.Errorf("tier-1 fault not attributed to lane 5: %s", err1)
	}
}

// fakeCacheMetrics counts SharedProgram events per tier.
type fakeCacheMetrics struct {
	mu     sync.Mutex
	hits   map[int]int
	misses map[int]int
}

func (f *fakeCacheMetrics) ProgramCacheHit(tier int) {
	f.mu.Lock()
	f.hits[tier]++
	f.mu.Unlock()
}

func (f *fakeCacheMetrics) ProgramCacheMiss(tier int) {
	f.mu.Lock()
	f.misses[tier]++
	f.mu.Unlock()
}

// TestProgramCacheMetrics: SharedProgram reports a tier-labeled miss on
// the cold compile and a hit on the warm lookup.
func TestProgramCacheMetrics(t *testing.T) {
	mod, err := clc.Compile(tierLoopSrc, "cachemetrics")
	if err != nil {
		t.Fatal(err)
	}
	fm := &fakeCacheMetrics{hits: make(map[int]int), misses: make(map[int]int)}
	SetCacheMetrics(fm)
	defer SetCacheMetrics(nil)

	SharedProgram(mod)
	SharedProgram(mod)
	fm.mu.Lock()
	defer fm.mu.Unlock()
	if fm.misses[1] != 1 {
		t.Errorf("tier-1 misses %v, want map[1:1]", fm.misses)
	}
	if fm.hits[1] != 1 {
		t.Errorf("tier-1 hits %v, want map[1:1]", fm.hits)
	}
}
