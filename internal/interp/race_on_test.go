//go:build race

package interp

// raceEnabled reports whether the race detector is active; alloc-count
// assertions are skipped under -race, where sync.Pool fast paths are
// instrumented away.
const raceEnabled = true
