package interp

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/ir"
)

// NDRange describes a kernel launch geometry. Sizes are in work-items;
// Local must evenly divide Global in every used dimension.
type NDRange struct {
	Dims   int
	Global [3]int64
	Local  [3]int64
}

// ND1 builds a 1-D NDRange.
func ND1(global, local int64) NDRange {
	return NDRange{Dims: 1, Global: [3]int64{global, 1, 1}, Local: [3]int64{local, 1, 1}}
}

// ND2 builds a 2-D NDRange.
func ND2(gx, gy, lx, ly int64) NDRange {
	return NDRange{Dims: 2, Global: [3]int64{gx, gy, 1}, Local: [3]int64{lx, ly, 1}}
}

// NumGroups returns the work-group grid dimensions.
func (n NDRange) NumGroups() [3]int64 {
	var g [3]int64
	for i := 0; i < 3; i++ {
		if n.Local[i] == 0 {
			g[i] = 1
			continue
		}
		g[i] = n.Global[i] / n.Local[i]
	}
	return g
}

// TotalGroups returns the total number of work-groups.
func (n NDRange) TotalGroups() int64 {
	g := n.NumGroups()
	return g[0] * g[1] * g[2]
}

// WGSize returns work-items per work-group.
func (n NDRange) WGSize() int64 { return n.Local[0] * n.Local[1] * n.Local[2] }

// Validate checks the launch geometry.
func (n NDRange) Validate() error {
	if n.Dims < 1 || n.Dims > 3 {
		return fmt.Errorf("interp: NDRange dims %d out of range", n.Dims)
	}
	for i := 0; i < n.Dims; i++ {
		if n.Global[i] <= 0 || n.Local[i] <= 0 {
			return fmt.Errorf("interp: non-positive NDRange sizes in dim %d", i)
		}
		if n.Global[i]%n.Local[i] != 0 {
			return fmt.Errorf("interp: global size %d not divisible by local size %d in dim %d", n.Global[i], n.Local[i], i)
		}
	}
	return nil
}

type launchCtx struct {
	m    *Machine
	fn   *ir.Function
	args []Value
	nd   NDRange
	ng   [3]int64
}

type wgCtx struct {
	l     *launchCtx
	group [3]int64
	bar   *barrier

	mu     sync.Mutex
	locals map[*ir.Instr]*Region
}

type wiCtx struct {
	wg  *wgCtx
	lid [3]int64
}

// Launch runs a kernel to completion: all work-groups of the NDRange are
// executed (sequentially across groups, concurrently within a group, as a
// single compute unit would time-slice them). The error reports the first
// fault.
func (m *Machine) Launch(kernel string, args []Value, nd NDRange) error {
	fn := m.Mod.Lookup(kernel)
	if fn == nil {
		return fmt.Errorf("interp: kernel %q not found", kernel)
	}
	if !fn.Kernel {
		return fmt.Errorf("interp: function %q is not a kernel", kernel)
	}
	if fn.IsDecl() {
		return fmt.Errorf("interp: kernel %q has no body", kernel)
	}
	if err := nd.Validate(); err != nil {
		return err
	}
	if len(args) != len(fn.Params) {
		return fmt.Errorf("interp: kernel %q takes %d args, got %d", kernel, len(fn.Params), len(args))
	}
	if m.MaxWorkItems > 0 {
		total := nd.Global[0] * nd.Global[1] * nd.Global[2]
		if total > m.MaxWorkItems {
			return fmt.Errorf("interp: launch of %d work-items exceeds limit %d", total, m.MaxWorkItems)
		}
	}
	l := &launchCtx{m: m, fn: fn, args: args, nd: nd, ng: nd.NumGroups()}
	for gz := int64(0); gz < l.ng[2]; gz++ {
		for gy := int64(0); gy < l.ng[1]; gy++ {
			for gx := int64(0); gx < l.ng[0]; gx++ {
				if err := l.runGroup([3]int64{gx, gy, gz}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (l *launchCtx) runGroup(group [3]int64) error {
	nd := l.nd
	size := int(nd.WGSize())
	wg := &wgCtx{l: l, group: group, bar: newBarrier(size), locals: make(map[*ir.Instr]*Region)}
	errc := make(chan error, size)
	var wgrp sync.WaitGroup
	for lz := int64(0); lz < nd.Local[2]; lz++ {
		for ly := int64(0); ly < nd.Local[1]; ly++ {
			for lx := int64(0); lx < nd.Local[0]; lx++ {
				wi := &wiCtx{wg: wg, lid: [3]int64{lx, ly, lz}}
				wgrp.Add(1)
				go func() {
					defer wgrp.Done()
					defer func() {
						if r := recover(); r != nil {
							wg.bar.poison()
							if t, ok := r.(trap); ok {
								errc <- t
								return
							}
							errc <- fmt.Errorf("interp: panic: %v", r)
						}
					}()
					fr := &frame{wi: wi, env: make(map[ir.Value]Value)}
					fr.call(l.fn, l.args)
				}()
			}
		}
	}
	wgrp.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// frame is one function activation for one work-item.
type frame struct {
	wi  *wiCtx
	env map[ir.Value]Value
}

const maxCallDepth = 64

// call executes fn with args and returns its result value.
func (fr *frame) call(fn *ir.Function, args []Value) Value {
	return fr.callDepth(fn, args, 0)
}

func (fr *frame) callDepth(fn *ir.Function, args []Value, depth int) Value {
	if depth > maxCallDepth {
		panic(trap{"call depth exceeded (runaway recursion?)"})
	}
	callee := &frame{wi: fr.wi, env: make(map[ir.Value]Value)}
	for i, p := range fn.Params {
		callee.env[p] = args[i]
	}
	return callee.run(fn, depth)
}

// run executes the body of fn in this frame.
func (fr *frame) run(fn *ir.Function, depth int) Value {
	blk := fn.Entry()
	steps := 0
	const maxSteps = 200_000_000
	for {
		for _, in := range blk.Instrs {
			steps++
			if steps > maxSteps {
				panic(trap{fmt.Sprintf("instruction budget exceeded in %s", fn.Name)})
			}
			switch in.Op {
			case ir.OpBr:
				blk = in.Then
			case ir.OpCondBr:
				if fr.eval(in.Args[0]).Bool() {
					blk = in.Then
				} else {
					blk = in.Else
				}
			case ir.OpRet:
				if len(in.Args) == 0 {
					return Value{}
				}
				return fr.eval(in.Args[0])
			default:
				fr.exec(in, depth)
			}
		}
		if !blk.Terminated() {
			panic(trap{fmt.Sprintf("fell off unterminated block in %s", fn.Name)})
		}
	}
}

func (fr *frame) eval(v ir.Value) Value {
	switch c := v.(type) {
	case *ir.ConstInt:
		return Value{K: c.Ty.Kind, I: c.V}
	case *ir.ConstFloat:
		return Value{K: c.Ty.Kind, F: c.V}
	case *ir.ConstNull:
		return Value{K: ir.Pointer}
	}
	val, ok := fr.env[v]
	if !ok {
		panic(trap{fmt.Sprintf("use of undefined value %s", v.Ident())})
	}
	return val
}

func (fr *frame) exec(in *ir.Instr, depth int) {
	m := fr.wi.wg.l.m
	switch in.Op {
	case ir.OpAlloca:
		size := in.AllocaElem.Size() * in.AllocaCount
		var r *Region
		if in.AllocaSpace == ir.Local {
			// One region per work-group, shared by all work-items.
			wg := fr.wi.wg
			wg.mu.Lock()
			r = wg.locals[in]
			if r == nil {
				r = m.NewRegion(size, ir.Local)
				wg.locals[in] = r
			}
			wg.mu.Unlock()
		} else {
			r = m.NewRegion(size, in.AllocaSpace)
		}
		fr.env[in] = Value{K: ir.Pointer, P: Ptr{R: r}}
	case ir.OpLoad:
		p := fr.eval(in.Args[0]).P
		fr.env[in] = m.load(in.Ty, p)
	case ir.OpStore:
		v := fr.eval(in.Args[0])
		p := fr.eval(in.Args[1]).P
		m.store(in.Args[0].Type(), v, p)
	case ir.OpGEP:
		base := fr.eval(in.Args[0])
		idx := fr.eval(in.Args[1]).I
		elem := in.Ty.Elem
		if base.P.IsNull() {
			panic(trap{"gep on null pointer"})
		}
		fr.env[in] = Value{K: ir.Pointer, P: Ptr{R: base.P.R, Off: base.P.Off + idx*elem.Size()}}
	case ir.OpBin:
		fr.env[in] = binOp(in.BinK, in.Ty, fr.eval(in.Args[0]), fr.eval(in.Args[1]))
	case ir.OpCmp:
		fr.env[in] = cmpOp(in.CmpK, fr.eval(in.Args[0]), fr.eval(in.Args[1]))
	case ir.OpCast:
		fr.env[in] = castOp(in.CastK, in.Ty, fr.eval(in.Args[0]))
	case ir.OpSelect:
		if fr.eval(in.Args[0]).Bool() {
			fr.env[in] = fr.eval(in.Args[1])
		} else {
			fr.env[in] = fr.eval(in.Args[2])
		}
	case ir.OpAtomic:
		p := fr.eval(in.Args[0]).P
		v := fr.eval(in.Args[1])
		t := in.Args[1].Type()
		// Deferred unlock so a trapping access (out of bounds, null)
		// cannot leave the stripe locked: machines are pooled and the
		// stripes are shared, so a poisoned lock would outlive the
		// faulting launch.
		fr.env[in] = func() Value {
			mu := atomicLock(p)
			mu.Lock()
			defer mu.Unlock()
			old := m.load(t, p)
			var next Value
			switch in.AtomK {
			case ir.AtomAdd:
				next = Value{K: old.K, I: old.I + v.I}
			case ir.AtomSub:
				next = Value{K: old.K, I: old.I - v.I}
			case ir.AtomMin:
				next = old
				if v.I < old.I {
					next = v
				}
			case ir.AtomMax:
				next = old
				if v.I > old.I {
					next = v
				}
			case ir.AtomAnd:
				next = Value{K: old.K, I: old.I & v.I}
			case ir.AtomOr:
				next = Value{K: old.K, I: old.I | v.I}
			case ir.AtomXchg:
				next = v
			}
			m.store(t, next, p)
			return old
		}()
	case ir.OpBarrier:
		fr.wi.wg.bar.await()
	case ir.OpCall:
		fr.env[in] = fr.execCall(in, depth)
	default:
		panic(trap{fmt.Sprintf("unsupported opcode %d", in.Op)})
	}
}

func (fr *frame) execCall(in *ir.Instr, depth int) Value {
	m := fr.wi.wg.l.m
	fn := m.Mod.Lookup(in.Callee)
	if fn == nil {
		panic(trap{fmt.Sprintf("call to unknown function %q", in.Callee)})
	}
	args := make([]Value, len(in.Args))
	for i, a := range in.Args {
		args[i] = fr.eval(a)
	}
	if fn.IsDecl() {
		return fr.execBuiltin(in.Callee, args)
	}
	return fr.callDepth(fn, args, depth+1)
}

// execBuiltin evaluates work-item and math builtins.
func (fr *frame) execBuiltin(name string, args []Value) Value {
	wi := fr.wi
	l := wi.wg.l
	dim := 0
	if len(args) == 1 && args[0].K != ir.Pointer && !strings.HasPrefix(name, "__clc_") {
		dim = int(args[0].I)
	}
	if dim < 0 || dim > 2 {
		dim = 0
	}
	switch name {
	case "get_global_id":
		return LongV(wi.wg.group[dim]*l.nd.Local[dim] + wi.lid[dim])
	case "get_local_id":
		return LongV(wi.lid[dim])
	case "get_group_id":
		return LongV(wi.wg.group[dim])
	case "get_num_groups":
		return LongV(l.ng[dim])
	case "get_local_size":
		return LongV(l.nd.Local[dim])
	case "get_global_size":
		return LongV(l.nd.Global[dim])
	case "get_global_offset":
		return LongV(0)
	case "get_work_dim":
		return IntV(int64(l.nd.Dims))
	}
	if strings.HasPrefix(name, "__clc_") {
		return execMath(name, args)
	}
	panic(trap{fmt.Sprintf("unknown builtin %q", name)})
}

// execMath evaluates a math builtin named "__clc_<op>_<type>".
func execMath(name string, args []Value) Value {
	body := strings.TrimPrefix(name, "__clc_")
	idx := strings.LastIndex(body, "_")
	if idx < 0 {
		panic(trap{fmt.Sprintf("malformed math builtin %q", name)})
	}
	op := body[:idx]
	kind := ir.F32
	if body[idx+1:] == "double" {
		kind = ir.F64
	}
	x := args[0].F
	var y float64
	if len(args) > 1 {
		y = args[1].F
	}
	var r float64
	switch op {
	case "sqrt":
		r = math.Sqrt(x)
	case "rsqrt":
		r = 1 / math.Sqrt(x)
	case "fabs":
		r = math.Abs(x)
	case "exp":
		r = math.Exp(x)
	case "exp2":
		r = math.Exp2(x)
	case "log":
		r = math.Log(x)
	case "log2":
		r = math.Log2(x)
	case "sin":
		r = math.Sin(x)
	case "cos":
		r = math.Cos(x)
	case "tan":
		r = math.Tan(x)
	case "atan2":
		r = math.Atan2(x, y)
	case "floor":
		r = math.Floor(x)
	case "ceil":
		r = math.Ceil(x)
	case "pow":
		r = math.Pow(x, y)
	case "fmod":
		r = math.Mod(x, y)
	case "fmin":
		r = math.Min(x, y)
	case "fmax":
		r = math.Max(x, y)
	case "native_divide":
		r = x / y
	default:
		panic(trap{fmt.Sprintf("unknown math builtin %q", op)})
	}
	if kind == ir.F32 {
		return Value{K: ir.F32, F: float64(float32(r))}
	}
	return Value{K: ir.F64, F: r}
}

func binOp(k ir.BinKind, t *ir.Type, x, y Value) Value {
	if k.IsFloatOp() {
		var r float64
		switch k {
		case ir.FAdd:
			r = x.F + y.F
		case ir.FSub:
			r = x.F - y.F
		case ir.FMul:
			r = x.F * y.F
		case ir.FDiv:
			r = x.F / y.F
		}
		if t.Kind == ir.F32 {
			r = float64(float32(r))
		}
		return Value{K: t.Kind, F: r}
	}
	var r int64
	switch k {
	case ir.Add:
		r = x.I + y.I
	case ir.Sub:
		r = x.I - y.I
	case ir.Mul:
		r = x.I * y.I
	case ir.SDiv:
		if y.I == 0 {
			panic(trap{"integer division by zero"})
		}
		r = x.I / y.I
	case ir.SRem:
		if y.I == 0 {
			panic(trap{"integer remainder by zero"})
		}
		r = x.I % y.I
	case ir.And:
		r = x.I & y.I
	case ir.Or:
		r = x.I | y.I
	case ir.Xor:
		r = x.I ^ y.I
	case ir.Shl:
		r = x.I << uint64(y.I&63)
	case ir.AShr:
		r = x.I >> uint64(y.I&63)
	}
	return truncInt(t.Kind, r)
}

func truncInt(k ir.Kind, v int64) Value {
	switch k {
	case ir.Bool:
		return Value{K: k, I: v & 1}
	case ir.I32:
		return Value{K: k, I: int64(int32(v))}
	default:
		return Value{K: k, I: v}
	}
}

func cmpOp(p ir.CmpPred, x, y Value) Value {
	var b bool
	if p.IsFloatPred() {
		switch p {
		case ir.FEQ:
			b = x.F == y.F
		case ir.FNE:
			b = x.F != y.F
		case ir.FLT:
			b = x.F < y.F
		case ir.FLE:
			b = x.F <= y.F
		case ir.FGT:
			b = x.F > y.F
		case ir.FGE:
			b = x.F >= y.F
		}
		return BoolV(b)
	}
	xi, yi := x.I, y.I
	if x.K == ir.Pointer {
		xi, yi = int64(encodePtr(x.P)), int64(encodePtr(y.P))
	}
	switch p {
	case ir.IEQ:
		b = xi == yi
	case ir.INE:
		b = xi != yi
	case ir.ILT:
		b = xi < yi
	case ir.ILE:
		b = xi <= yi
	case ir.IGT:
		b = xi > yi
	case ir.IGE:
		b = xi >= yi
	}
	return BoolV(b)
}

func castOp(k ir.CastKind, to *ir.Type, x Value) Value {
	switch k {
	case ir.Trunc:
		return truncInt(to.Kind, x.I)
	case ir.SExt, ir.ZExt:
		return Value{K: to.Kind, I: x.I}
	case ir.FPToSI:
		return truncInt(to.Kind, int64(x.F))
	case ir.SIToFP:
		r := float64(x.I)
		if to.Kind == ir.F32 {
			r = float64(float32(r))
		}
		return Value{K: to.Kind, F: r}
	case ir.FPTrunc:
		return Value{K: to.Kind, F: float64(float32(x.F))}
	case ir.FPExt:
		return Value{K: to.Kind, F: x.F}
	case ir.PtrCast:
		return Value{K: ir.Pointer, P: x.P}
	}
	panic(trap{fmt.Sprintf("unsupported cast %v", k)})
}
