package interp

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ir"
)

// NDRange describes a kernel launch geometry. Sizes are in work-items;
// Local must evenly divide Global in every used dimension.
type NDRange struct {
	Dims   int
	Global [3]int64
	Local  [3]int64
}

// ND1 builds a 1-D NDRange.
func ND1(global, local int64) NDRange {
	return NDRange{Dims: 1, Global: [3]int64{global, 1, 1}, Local: [3]int64{local, 1, 1}}
}

// ND2 builds a 2-D NDRange.
func ND2(gx, gy, lx, ly int64) NDRange {
	return NDRange{Dims: 2, Global: [3]int64{gx, gy, 1}, Local: [3]int64{lx, ly, 1}}
}

// NumGroups returns the work-group grid dimensions.
func (n NDRange) NumGroups() [3]int64 {
	var g [3]int64
	for i := 0; i < 3; i++ {
		if n.Local[i] == 0 {
			g[i] = 1
			continue
		}
		g[i] = n.Global[i] / n.Local[i]
	}
	return g
}

// TotalGroups returns the total number of work-groups.
func (n NDRange) TotalGroups() int64 {
	g := n.NumGroups()
	return g[0] * g[1] * g[2]
}

// WGSize returns work-items per work-group.
func (n NDRange) WGSize() int64 { return n.Local[0] * n.Local[1] * n.Local[2] }

// Validate checks the launch geometry.
func (n NDRange) Validate() error {
	if n.Dims < 1 || n.Dims > 3 {
		return fmt.Errorf("interp: NDRange dims %d out of range", n.Dims)
	}
	for i := 0; i < n.Dims; i++ {
		if n.Global[i] <= 0 || n.Local[i] <= 0 {
			return fmt.Errorf("interp: non-positive NDRange sizes in dim %d", i)
		}
		if n.Global[i]%n.Local[i] != 0 {
			return fmt.Errorf("interp: global size %d not divisible by local size %d in dim %d", n.Global[i], n.Local[i], i)
		}
	}
	return nil
}

// Engine selects the execution engine of a machine.
type Engine int

const (
	// EngineVM is the default: compiled bytecode over flat register
	// files, work-groups in parallel on a bounded worker pool,
	// cooperative work-items (vm.go).
	EngineVM Engine = iota
	// EngineTreeWalk is the original tree-walking interpreter — one
	// goroutine per work-item, sequential groups. It is kept as the
	// semantic reference for the differential parity suite.
	EngineTreeWalk
)

// defaultMaxSteps is the launch-global instruction budget when
// Machine.MaxSteps is zero. The budget is shared by every work-item and
// call frame of one Launch (nested frames no longer reset it), so a
// runaway kernel traps no matter where it loops.
const defaultMaxSteps = 200_000_000

// localArg is one LocalArgV placeholder in a launch's argument list:
// argument index plus the per-work-group region size to materialize.
type localArg struct {
	idx  int
	size int64
}

type launchCtx struct {
	m      *Machine
	fn     *ir.Function
	args   []Value
	locals []localArg // LocalArgV placeholders, materialized per group
	nd     NDRange
	ng     [3]int64

	// VM engine state (nil/zero under the tree-walker except the step
	// budget, which both engines share).
	prog *Prog
	kcf  *compiledFn

	// Execution profiling (VM engine only): the machine's profiler and
	// this kernel's aggregate, resolved once per launch. profPhase
	// offsets group sampling so identical launches rotate which group of
	// the grid gets profiled.
	prof      *Profiler
	kp        *KernelProfile
	profPhase int64

	// Warp execution stats (VM engine with WarpWidth > 0): warps formed,
	// lanes across them (occupancy numerator), divergence spills to the
	// scalar path, and barrier re-formations.
	warps       atomic.Int64
	warpLanes   atomic.Int64
	warpSpills  atomic.Int64
	warpReforms atomic.Int64

	steps    atomic.Int64
	maxSteps int64
}

// addSteps charges n executed instructions against the launch budget
// and observes pending machine interrupts — the two launch-abort
// mechanisms that must fire even when a kernel never reaches a slice
// boundary.
func (l *launchCtx) addSteps(n int64) {
	if l.steps.Add(n) > l.maxSteps {
		panic(trap{fmt.Sprintf("instruction budget exceeded in %s", l.fn.Name)})
	}
	l.m.checkInterrupt()
}

type wgCtx struct {
	l     *launchCtx
	group [3]int64
	bar   *barrier

	mu     sync.Mutex
	locals map[*ir.Instr]*Region
}

type wiCtx struct {
	wg    *wgCtx
	lid   [3]int64
	steps int64 // batched count not yet flushed to the launch budget
}

// step charges one instruction, flushing to the shared budget in
// batches so the hot loop stays off the atomic.
func (wi *wiCtx) step() {
	wi.steps++
	if wi.steps >= stepBatch {
		wi.wg.l.addSteps(wi.steps)
		wi.steps = 0
	}
}

// gid returns the work-item's global id.
func (wi *wiCtx) gid() [3]int64 {
	l := wi.wg.l
	return [3]int64{
		wi.wg.group[0]*l.nd.Local[0] + wi.lid[0],
		wi.wg.group[1]*l.nd.Local[1] + wi.lid[1],
		wi.wg.group[2]*l.nd.Local[2] + wi.lid[2],
	}
}

// Launch runs a kernel to completion: all work-groups of the NDRange
// are executed and the error reports the first fault (by work-group
// linear order, tagged with the faulting work-item's global id).
//
// Under the default VM engine the kernel is executed from its compiled
// bytecode with work-groups running in parallel; under EngineTreeWalk
// the original tree-walking reference engine runs groups sequentially
// with one goroutine per work-item.
func (m *Machine) Launch(kernel string, args []Value, nd NDRange) error {
	fn := m.Mod.Lookup(kernel)
	if fn == nil {
		return fmt.Errorf("interp: kernel %q not found", kernel)
	}
	if !fn.Kernel {
		return fmt.Errorf("interp: function %q is not a kernel", kernel)
	}
	if fn.IsDecl() {
		return fmt.Errorf("interp: kernel %q has no body", kernel)
	}
	if err := nd.Validate(); err != nil {
		return err
	}
	if len(args) != len(fn.Params) {
		return fmt.Errorf("interp: kernel %q takes %d args, got %d", kernel, len(fn.Params), len(args))
	}
	var locals []localArg
	for i, a := range args {
		size, ok := localArgSize(a)
		if !ok {
			continue
		}
		if size <= 0 {
			return fmt.Errorf("interp: kernel %q local argument %d has non-positive size %d", kernel, i, size)
		}
		if fn.Params[i].Ty.Kind != ir.Pointer {
			return fmt.Errorf("interp: kernel %q argument %d is not a pointer parameter; cannot bind local memory", kernel, i)
		}
		locals = append(locals, localArg{idx: i, size: size})
	}
	if m.MaxWorkItems > 0 {
		total := nd.Global[0] * nd.Global[1] * nd.Global[2]
		if total > m.MaxWorkItems {
			return fmt.Errorf("interp: launch of %d work-items exceeds limit %d", total, m.MaxWorkItems)
		}
	}
	if m.Engine == EngineTreeWalk {
		return m.launchTreeWalk(fn, args, locals, nd)
	}
	if m.Tier != nil {
		// After the launch (including its profile flush) the tier
		// controller re-applies its hotness test; crossing the threshold
		// queues a background recompile — never a compile on this path.
		defer m.Tier.Observe(m.Mod, kernel)
	}
	return m.launchVM(fn, args, locals, nd)
}

func (m *Machine) maxSteps() int64 {
	if m.MaxSteps > 0 {
		return m.MaxSteps
	}
	return defaultMaxSteps
}

// --- reference engine: tree-walking interpreter ---------------------

func (m *Machine) launchTreeWalk(fn *ir.Function, args []Value, locals []localArg, nd NDRange) error {
	l := &launchCtx{m: m, fn: fn, args: args, locals: locals, nd: nd, ng: nd.NumGroups(), maxSteps: m.maxSteps()}
	for gz := int64(0); gz < l.ng[2]; gz++ {
		for gy := int64(0); gy < l.ng[1]; gy++ {
			for gx := int64(0); gx < l.ng[0]; gx++ {
				if err := l.runGroup([3]int64{gx, gy, gz}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// wiFault is one work-item's failure, tagged for deterministic
// selection.
type wiFault struct {
	lin int64 // linearized local id
	gid [3]int64
	err error
}

func (l *launchCtx) runGroup(group [3]int64) error {
	nd := l.nd
	size := int(nd.WGSize())
	wg := &wgCtx{l: l, group: group, bar: getBarrier(size), locals: make(map[*ir.Instr]*Region)}
	// Materialize host-declared local arguments: one fresh region per
	// work-group, shared by its work-items, in place of the placeholder.
	gargs := l.args
	if len(l.locals) > 0 {
		gargs = append([]Value(nil), l.args...)
		for _, la := range l.locals {
			r := l.m.NewRegion(la.size, ir.Local)
			gargs[la.idx] = Value{K: ir.Pointer, P: Ptr{R: r}}
		}
	}
	errc := make(chan wiFault, size)
	var wgrp sync.WaitGroup
	for lz := int64(0); lz < nd.Local[2]; lz++ {
		for ly := int64(0); ly < nd.Local[1]; ly++ {
			for lx := int64(0); lx < nd.Local[0]; lx++ {
				wi := &wiCtx{wg: wg, lid: [3]int64{lx, ly, lz}}
				lin := (lz*nd.Local[1]+ly)*nd.Local[0] + lx
				wgrp.Add(1)
				go func() {
					defer wgrp.Done()
					defer func() {
						if r := recover(); r != nil {
							wg.bar.poison()
							f := wiFault{lin: lin, gid: wi.gid()}
							if t, ok := r.(trap); ok {
								f.err = t
							} else {
								f.err = fmt.Errorf("interp: panic: %v", r)
							}
							errc <- f
						}
					}()
					fr := &frame{wi: wi, env: make(map[ir.Value]Value)}
					fr.call(l.fn, gargs)
				}()
			}
		}
	}
	wgrp.Wait()
	putBarrier(wg.bar)
	close(errc)
	// Drain every buffered fault. Siblings unwound by barrier poisoning
	// are collateral of the real fault, so a genuine trap wins over
	// them; among peers, the lowest local id wins for determinism.
	var best *wiFault
	for f := range errc {
		f := f
		switch {
		case best == nil:
			best = &f
		case isPoison(best.err) && !isPoison(f.err):
			best = &f
		case isPoison(best.err) == isPoison(f.err) && f.lin < best.lin:
			best = &f
		}
	}
	if best == nil {
		return nil
	}
	return fmt.Errorf("interp: work-item global id (%d,%d,%d): %w", best.gid[0], best.gid[1], best.gid[2], best.err)
}

// frame is one function activation for one work-item.
type frame struct {
	wi  *wiCtx
	env map[ir.Value]Value
}

const maxCallDepth = 64

// call executes fn with args and returns its result value.
func (fr *frame) call(fn *ir.Function, args []Value) Value {
	return fr.callDepth(fn, args, 0)
}

func (fr *frame) callDepth(fn *ir.Function, args []Value, depth int) Value {
	if depth > maxCallDepth {
		panic(trap{"call depth exceeded (runaway recursion?)"})
	}
	callee := &frame{wi: fr.wi, env: make(map[ir.Value]Value)}
	for i, p := range fn.Params {
		callee.env[p] = args[i]
	}
	return callee.run(fn, depth)
}

// run executes the body of fn in this frame. The instruction budget is
// the launch-global one carried by the work-item context, so nested
// frames cannot reset it.
//
// Phis at a block head read their incoming values in parallel before
// any of them is assigned (classic phi semantics: a swap of two phis
// must not see a half-updated state), selected by the edge the control
// transfer arrived on.
func (fr *frame) run(fn *ir.Function, depth int) Value {
	blk := fn.Entry()
	var prev *ir.Block
	for {
		phis := blk.Phis()
		if n := len(phis); n > 0 {
			var buf [8]Value
			vals := buf[:0]
			for _, phi := range phis {
				fr.wi.step()
				src := phi.IncomingFor(prev)
				if src == nil {
					panic(trap{fmt.Sprintf("phi in %s has no incoming for the edge taken", blk.Name)})
				}
				vals = append(vals, fr.eval(src))
			}
			for i, phi := range phis {
				fr.env[phi] = vals[i]
			}
		}
		for _, in := range blk.Instrs[len(phis):] {
			fr.wi.step()
			switch in.Op {
			case ir.OpBr:
				prev, blk = blk, in.Then
			case ir.OpCondBr:
				if fr.eval(in.Args[0]).Bool() {
					prev, blk = blk, in.Then
				} else {
					prev, blk = blk, in.Else
				}
			case ir.OpRet:
				if len(in.Args) == 0 {
					return Value{}
				}
				return fr.eval(in.Args[0])
			default:
				fr.exec(in, depth)
			}
		}
		if !blk.Terminated() {
			panic(trap{fmt.Sprintf("fell off unterminated block in %s", fn.Name)})
		}
	}
}

func (fr *frame) eval(v ir.Value) Value {
	switch c := v.(type) {
	case *ir.ConstInt:
		return Value{K: c.Ty.Kind, I: c.V}
	case *ir.ConstFloat:
		return Value{K: c.Ty.Kind, F: c.V}
	case *ir.ConstNull:
		return Value{K: ir.Pointer}
	}
	val, ok := fr.env[v]
	if !ok {
		panic(trap{fmt.Sprintf("use of undefined value %s", v.Ident())})
	}
	return val
}

func (fr *frame) exec(in *ir.Instr, depth int) {
	m := fr.wi.wg.l.m
	switch in.Op {
	case ir.OpAlloca:
		size := in.AllocaElem.Size() * in.AllocaCount
		var r *Region
		if in.AllocaSpace == ir.Local {
			// One region per work-group, shared by all work-items.
			wg := fr.wi.wg
			wg.mu.Lock()
			r = wg.locals[in]
			if r == nil {
				r = m.NewRegion(size, ir.Local)
				wg.locals[in] = r
			}
			wg.mu.Unlock()
		} else {
			r = m.NewRegion(size, in.AllocaSpace)
		}
		fr.env[in] = Value{K: ir.Pointer, P: Ptr{R: r}}
	case ir.OpLoad:
		p := fr.eval(in.Args[0]).P
		fr.env[in] = m.load(in.Ty, p)
	case ir.OpStore:
		v := fr.eval(in.Args[0])
		p := fr.eval(in.Args[1]).P
		m.store(in.Args[0].Type(), v, p)
	case ir.OpGEP:
		base := fr.eval(in.Args[0])
		idx := fr.eval(in.Args[1]).I
		elem := in.Ty.Elem
		if base.P.IsNull() {
			panic(trap{"gep on null pointer"})
		}
		fr.env[in] = Value{K: ir.Pointer, P: Ptr{R: base.P.R, Off: base.P.Off + idx*elem.Size()}}
	case ir.OpBin:
		fr.env[in] = binOp(in.BinK, in.Ty, fr.eval(in.Args[0]), fr.eval(in.Args[1]))
	case ir.OpCmp:
		fr.env[in] = cmpOp(in.CmpK, fr.eval(in.Args[0]), fr.eval(in.Args[1]))
	case ir.OpCast:
		fr.env[in] = castOp(in.CastK, in.Ty, fr.eval(in.Args[0]))
	case ir.OpSelect:
		if fr.eval(in.Args[0]).Bool() {
			fr.env[in] = fr.eval(in.Args[1])
		} else {
			fr.env[in] = fr.eval(in.Args[2])
		}
	case ir.OpAtomic:
		p := fr.eval(in.Args[0]).P
		v := fr.eval(in.Args[1])
		fr.env[in] = m.atomicRMW(in.AtomK, in.Args[1].Type(), p, v)
	case ir.OpBarrier:
		fr.wi.wg.bar.await()
	case ir.OpCall:
		fr.env[in] = fr.execCall(in, depth)
	default:
		panic(trap{fmt.Sprintf("unsupported opcode %d", in.Op)})
	}
}

func (fr *frame) execCall(in *ir.Instr, depth int) Value {
	m := fr.wi.wg.l.m
	fn := m.Mod.Lookup(in.Callee)
	if fn == nil {
		panic(trap{fmt.Sprintf("call to unknown function %q", in.Callee)})
	}
	args := make([]Value, len(in.Args))
	for i, a := range in.Args {
		args[i] = fr.eval(a)
	}
	if fn.IsDecl() {
		return fr.execBuiltin(in.Callee, args)
	}
	return fr.callDepth(fn, args, depth+1)
}

// execBuiltin evaluates work-item and math builtins.
func (fr *frame) execBuiltin(name string, args []Value) Value {
	wi := fr.wi
	l := wi.wg.l
	dim := 0
	if len(args) == 1 && args[0].K != ir.Pointer && !strings.HasPrefix(name, "__clc_") {
		dim = int(args[0].I)
	}
	if dim < 0 || dim > 2 {
		dim = 0
	}
	switch name {
	case "get_global_id":
		return LongV(wi.wg.group[dim]*l.nd.Local[dim] + wi.lid[dim])
	case "get_local_id":
		return LongV(wi.lid[dim])
	case "get_group_id":
		return LongV(wi.wg.group[dim])
	case "get_num_groups":
		return LongV(l.ng[dim])
	case "get_local_size":
		return LongV(l.nd.Local[dim])
	case "get_global_size":
		return LongV(l.nd.Global[dim])
	case "get_global_offset":
		return LongV(0)
	case "get_work_dim":
		return IntV(int64(l.nd.Dims))
	}
	if strings.HasPrefix(name, "__clc_") {
		op, kind, errMsg := parseMathBuiltin(name)
		if errMsg != "" {
			panic(trap{errMsg})
		}
		x := args[0].F
		var y float64
		if len(args) > 1 {
			y = args[1].F
		}
		return evalMath(op, kind, x, y)
	}
	panic(trap{fmt.Sprintf("unknown builtin %q", name)})
}

// --- semantics shared by both engines --------------------------------

// atomicRMW performs an atomic read-modify-write on p. A deferred
// unlock so a trapping access (out of bounds, null) cannot leave the
// stripe locked: machines are pooled and the stripes are shared, so a
// poisoned lock would outlive the faulting launch.
func (m *Machine) atomicRMW(k ir.AtomicKind, t *ir.Type, p Ptr, v Value) Value {
	mu := atomicLock(p)
	mu.Lock()
	defer mu.Unlock()
	old := m.load(t, p)
	var next Value
	switch k {
	case ir.AtomAdd:
		next = Value{K: old.K, I: old.I + v.I}
	case ir.AtomSub:
		next = Value{K: old.K, I: old.I - v.I}
	case ir.AtomMin:
		next = old
		if v.I < old.I {
			next = v
		}
	case ir.AtomMax:
		next = old
		if v.I > old.I {
			next = v
		}
	case ir.AtomAnd:
		next = Value{K: old.K, I: old.I & v.I}
	case ir.AtomOr:
		next = Value{K: old.K, I: old.I | v.I}
	case ir.AtomXchg:
		next = v
	}
	m.store(t, next, p)
	return old
}

// Math builtin codes, pre-parsed from "__clc_<op>_<type>" names by the
// bytecode compiler and on demand by the reference engine.
const (
	mathSqrt uint8 = iota
	mathRsqrt
	mathFabs
	mathExp
	mathExp2
	mathLog
	mathLog2
	mathSin
	mathCos
	mathTan
	mathAtan2
	mathFloor
	mathCeil
	mathPow
	mathFmod
	mathFmin
	mathFmax
	mathNativeDivide
)

var mathOps = map[string]uint8{
	"sqrt": mathSqrt, "rsqrt": mathRsqrt, "fabs": mathFabs,
	"exp": mathExp, "exp2": mathExp2, "log": mathLog, "log2": mathLog2,
	"sin": mathSin, "cos": mathCos, "tan": mathTan, "atan2": mathAtan2,
	"floor": mathFloor, "ceil": mathCeil, "pow": mathPow, "fmod": mathFmod,
	"fmin": mathFmin, "fmax": mathFmax, "native_divide": mathNativeDivide,
}

// parseMathBuiltin splits a "__clc_<op>_<type>" name. A non-empty errMsg
// carries the exact trap message the reference engine raises.
func parseMathBuiltin(name string) (op uint8, kind ir.Kind, errMsg string) {
	body := strings.TrimPrefix(name, "__clc_")
	idx := strings.LastIndex(body, "_")
	if idx < 0 {
		return 0, 0, fmt.Sprintf("malformed math builtin %q", name)
	}
	kind = ir.F32
	if body[idx+1:] == "double" {
		kind = ir.F64
	}
	op, ok := mathOps[body[:idx]]
	if !ok {
		return 0, 0, fmt.Sprintf("unknown math builtin %q", body[:idx])
	}
	return op, kind, ""
}

// evalMath evaluates a pre-parsed math builtin.
func evalMath(op uint8, kind ir.Kind, x, y float64) Value {
	var r float64
	switch op {
	case mathSqrt:
		r = math.Sqrt(x)
	case mathRsqrt:
		r = 1 / math.Sqrt(x)
	case mathFabs:
		r = math.Abs(x)
	case mathExp:
		r = math.Exp(x)
	case mathExp2:
		r = math.Exp2(x)
	case mathLog:
		r = math.Log(x)
	case mathLog2:
		r = math.Log2(x)
	case mathSin:
		r = math.Sin(x)
	case mathCos:
		r = math.Cos(x)
	case mathTan:
		r = math.Tan(x)
	case mathAtan2:
		r = math.Atan2(x, y)
	case mathFloor:
		r = math.Floor(x)
	case mathCeil:
		r = math.Ceil(x)
	case mathPow:
		r = math.Pow(x, y)
	case mathFmod:
		r = math.Mod(x, y)
	case mathFmin:
		r = math.Min(x, y)
	case mathFmax:
		r = math.Max(x, y)
	case mathNativeDivide:
		r = x / y
	}
	if kind == ir.F32 {
		return Value{K: ir.F32, F: float64(float32(r))}
	}
	return Value{K: ir.F64, F: r}
}

func binOp(k ir.BinKind, t *ir.Type, x, y Value) Value {
	if k.IsFloatOp() {
		var r float64
		switch k {
		case ir.FAdd:
			r = x.F + y.F
		case ir.FSub:
			r = x.F - y.F
		case ir.FMul:
			r = x.F * y.F
		case ir.FDiv:
			r = x.F / y.F
		}
		if t.Kind == ir.F32 {
			r = float64(float32(r))
		}
		return Value{K: t.Kind, F: r}
	}
	var r int64
	switch k {
	case ir.Add:
		r = x.I + y.I
	case ir.Sub:
		r = x.I - y.I
	case ir.Mul:
		r = x.I * y.I
	case ir.SDiv:
		if y.I == 0 {
			panic(trap{"integer division by zero"})
		}
		r = x.I / y.I
	case ir.SRem:
		if y.I == 0 {
			panic(trap{"integer remainder by zero"})
		}
		r = x.I % y.I
	case ir.And:
		r = x.I & y.I
	case ir.Or:
		r = x.I | y.I
	case ir.Xor:
		r = x.I ^ y.I
	case ir.Shl:
		r = x.I << uint64(y.I&63)
	case ir.AShr:
		r = x.I >> uint64(y.I&63)
	}
	return truncInt(t.Kind, r)
}

func truncInt(k ir.Kind, v int64) Value {
	switch k {
	case ir.Bool:
		return Value{K: k, I: v & 1}
	case ir.I32:
		return Value{K: k, I: int64(int32(v))}
	default:
		return Value{K: k, I: v}
	}
}

// ptrOrd orders a pointer for relational comparison: region ID (order
// of registration) then offset. Pointers into regions that were never
// encoded to memory order as ID 0; cross-region pointer order is
// unspecified, as on a real device.
func ptrOrd(p Ptr) int64 {
	if p.R == nil {
		return 0
	}
	return int64(uint64(p.R.ID)<<ptrOffBits | uint64(p.Off))
}

func cmpOp(p ir.CmpPred, x, y Value) Value {
	var b bool
	if p.IsFloatPred() {
		switch p {
		case ir.FEQ:
			b = x.F == y.F
		case ir.FNE:
			b = x.F != y.F
		case ir.FLT:
			b = x.F < y.F
		case ir.FLE:
			b = x.F <= y.F
		case ir.FGT:
			b = x.F > y.F
		case ir.FGE:
			b = x.F >= y.F
		}
		return BoolV(b)
	}
	xi, yi := x.I, y.I
	if x.K == ir.Pointer {
		// Equality is region identity plus offset (null == null); this
		// never forces region registration.
		switch p {
		case ir.IEQ:
			return BoolV(x.P == y.P)
		case ir.INE:
			return BoolV(x.P != y.P)
		}
		if x.P.R == y.P.R {
			xi, yi = x.P.Off, y.P.Off
		} else {
			xi, yi = ptrOrd(x.P), ptrOrd(y.P)
		}
	}
	switch p {
	case ir.IEQ:
		b = xi == yi
	case ir.INE:
		b = xi != yi
	case ir.ILT:
		b = xi < yi
	case ir.ILE:
		b = xi <= yi
	case ir.IGT:
		b = xi > yi
	case ir.IGE:
		b = xi >= yi
	}
	return BoolV(b)
}

func castOp(k ir.CastKind, to *ir.Type, x Value) Value {
	switch k {
	case ir.Trunc:
		return truncInt(to.Kind, x.I)
	case ir.SExt, ir.ZExt:
		return Value{K: to.Kind, I: x.I}
	case ir.FPToSI:
		return truncInt(to.Kind, int64(x.F))
	case ir.SIToFP:
		r := float64(x.I)
		if to.Kind == ir.F32 {
			r = float64(float32(r))
		}
		return Value{K: to.Kind, F: r}
	case ir.FPTrunc:
		return Value{K: to.Kind, F: float64(float32(x.F))}
	case ir.FPExt:
		return Value{K: to.Kind, F: x.F}
	case ir.PtrCast:
		return Value{K: ir.Pointer, P: x.P}
	}
	panic(trap{fmt.Sprintf("unsupported cast %v", k)})
}
