package interp

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ir"
)

// This file is the tiered-execution controller. Tier 0 compiles a
// module cheaply (no O1, no fusion, no warp tables) so the first launch
// pays almost nothing between source and dispatch; the controller then
// watches the profiler's per-kernel instruction estimates and, once a
// kernel crosses the hotness threshold, recompiles its module on a
// background worker at tier 1 — full O1 plus profile-guided
// superinstruction selection and hot-path block layout — and hot-swaps
// the result into the shared program cache. In-flight LaunchHandles
// re-resolve at their next slice boundary (see opencl.LaunchHandle.Step
// and ProgramVersion), so a promotion never interrupts a running slice.

// ProfileGuide carries measured per-block dynamic weights into a
// tier-1+ compile: layoutBlocks chains hot successors into fallthrough
// runs, and tryFuse emits the profile-gated superinstructions only in
// blocks with nonzero weight.
type ProfileGuide struct {
	blocks map[string]map[string]int64 // fn -> block -> scaled entry count
}

// GuideFromSnapshots builds a guide from profiler snapshots, scaling
// sampled block counts by each snapshot's sampling period so guides
// built at different sampling rates rank blocks identically.
func GuideFromSnapshots(snaps []KernelProfileSnapshot) *ProfileGuide {
	g := &ProfileGuide{blocks: make(map[string]map[string]int64)}
	for _, s := range snaps {
		scale := s.SampleEvery
		if scale <= 0 {
			scale = 1
		}
		for _, bc := range s.Blocks {
			fb := g.blocks[bc.Fn]
			if fb == nil {
				fb = make(map[string]int64)
				g.blocks[bc.Fn] = fb
			}
			fb[bc.Block] += bc.Hits * scale
		}
	}
	return g
}

// Weight returns the measured dynamic entry count of one block (0 for
// blocks the profile never saw — cold by definition).
func (g *ProfileGuide) Weight(fn, block string) int64 {
	if g == nil {
		return 0
	}
	return g.blocks[fn][block]
}

// TierOptions configures a TierController.
type TierOptions struct {
	// HotInstrs is the estimated dynamic instruction count at which a
	// kernel's module is promoted to tier 1 (0: defaultHotInstrs).
	HotInstrs int64
	// Workers is the number of background recompile workers (0: 1).
	Workers int
	// WarpWidth is the lane width tier-1 programs are compiled with
	// (0: DefaultWarpWidth; negative: warp execution disabled).
	WarpWidth int
	// SampleEvery is the controller profiler's sampling period
	// (0: the profiler default).
	SampleEvery int64
}

// defaultHotInstrs keeps one-shot kernels at tier 0 (a single launch of
// a small kernel stays well under a million sampled-scaled instructions)
// while a steady hot loop crosses it within a few launches.
const defaultHotInstrs = 1 << 20

// TierEvent describes one completed tier promotion, for telemetry.
type TierEvent struct {
	Kernels   []string // kernels of the promoted module
	Tier      int      // tier the module was promoted to
	CompileNs int64    // background recompile wall time
}

// tierState is the controller's per-module record.
type tierState struct {
	mod      *ir.Module
	kernels  []string
	tier     atomic.Int32
	inflight atomic.Bool // a recompile is queued or running
}

// TierController owns tiered execution for the modules routed through
// it: ProgramFor serves the cheap tier-0 compile, Observe (called by
// Machine.Launch) applies the hotness test, and background workers run
// the tier-1 recompile + hot-swap. All methods are safe for concurrent
// use; a nil controller is inert.
type TierController struct {
	opts TierOptions
	prof *Profiler

	mu     sync.Mutex
	states map[*ir.Module]*tierState
	closed bool

	jobs chan *tierState
	wg   sync.WaitGroup

	sink       func(TierEvent) // guarded by mu
	promotions atomic.Int64
}

// NewTierController starts a controller and its background workers.
// Close releases them.
func NewTierController(opts TierOptions) *TierController {
	if opts.HotInstrs <= 0 {
		opts.HotInstrs = defaultHotInstrs
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.WarpWidth == 0 {
		opts.WarpWidth = DefaultWarpWidth
	} else if opts.WarpWidth < 0 {
		opts.WarpWidth = 0
	}
	tc := &TierController{
		opts: opts,
		prof: NewProfiler(ProfileOptions{
			PerOpcode:   true,
			PerBlock:    true,
			SampleEvery: opts.SampleEvery,
		}),
		states: make(map[*ir.Module]*tierState),
		jobs:   make(chan *tierState, 64),
	}
	for i := 0; i < opts.Workers; i++ {
		tc.wg.Add(1)
		go func() {
			defer tc.wg.Done()
			for st := range tc.jobs {
				tc.promote(st)
			}
		}()
	}
	return tc
}

// Profiler returns the controller's profiler; install it on the
// machines executing the controller's modules (the opencl.MachinePool
// does this when a controller is set) so Observe has counts to read.
func (tc *TierController) Profiler() *Profiler {
	if tc == nil {
		return nil
	}
	return tc.prof
}

// Promotions returns the number of completed tier promotions.
func (tc *TierController) Promotions() int64 {
	if tc == nil {
		return 0
	}
	return tc.promotions.Load()
}

// SetEventSink installs a callback invoked after each promotion (from
// the worker goroutine; keep it cheap).
func (tc *TierController) SetEventSink(fn func(TierEvent)) {
	if tc == nil {
		return
	}
	tc.mu.Lock()
	tc.sink = fn
	tc.mu.Unlock()
}

// ProgramFor returns the program to launch mod with right now: the
// cached program when one exists (never downgrade a module some other
// path already compiled, and keep serving a promoted tier-1), else a
// fresh tier-0 compile installed in the shared cache.
func (tc *TierController) ProgramFor(mod *ir.Module) *Prog {
	if tc == nil {
		return SharedProgram(mod)
	}
	tc.state(mod)
	if p := cachedProgram(mod); p != nil {
		recordCacheEvent(true, p.tier)
		return p
	}
	// Racing first launches may compile tier 0 twice; the cache keeps
	// one winner and the loser is garbage — cheap by construction.
	p := CompileModuleOpts(mod, Tier0CompileOpts)
	ShareProgram(p)
	recordCacheEvent(false, p.tier)
	return p
}

// state returns (creating on first use) the per-module record.
func (tc *TierController) state(mod *ir.Module) *tierState {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	st := tc.states[mod]
	if st == nil {
		st = &tierState{mod: mod}
		for _, f := range mod.Funcs {
			if f.Kernel && !f.IsDecl() {
				st.kernels = append(st.kernels, f.Name)
			}
		}
		tc.states[mod] = st
	}
	return st
}

// Observe applies the hotness test after a launch of kernel from mod;
// Machine.Launch calls it on the way out. Crossing the threshold
// enqueues a background promotion; the call itself never compiles.
func (tc *TierController) Observe(mod *ir.Module, kernel string) {
	if tc == nil {
		return
	}
	tc.mu.Lock()
	st := tc.states[mod]
	tc.mu.Unlock()
	if st == nil || st.tier.Load() > 0 || st.inflight.Load() {
		return
	}
	if tc.prof.KernelInstrEstimate(kernel) < tc.opts.HotInstrs {
		return
	}
	if !st.inflight.CompareAndSwap(false, true) {
		return
	}
	tc.mu.Lock()
	if tc.closed {
		tc.mu.Unlock()
		st.inflight.Store(false)
		return
	}
	select {
	case tc.jobs <- st:
	default:
		// Queue full: drop the request; the next launch re-observes.
		st.inflight.Store(false)
	}
	tc.mu.Unlock()
}

// PromoteSync recompiles mod at tier 1 immediately on the caller's
// goroutine (tests and the parity suite force promotions mid-run with
// it). A no-op for modules the controller has never seen.
func (tc *TierController) PromoteSync(mod *ir.Module) {
	if tc == nil {
		return
	}
	tc.mu.Lock()
	st := tc.states[mod]
	tc.mu.Unlock()
	if st == nil || st.tier.Load() > 0 {
		return
	}
	tc.promote(st)
}

// promote runs the tier-1 recompile of one module and hot-swaps the
// result. Concurrent promotions of the same module are benign (both
// produce equivalent programs; the cache keeps the last).
func (tc *TierController) promote(st *tierState) {
	guide := tc.guideFor(st)
	start := time.Now()
	p := CompileModuleOpts(st.mod, CompileOpts{
		Opt:       true,
		WarpWidth: tc.opts.WarpWidth,
		Profile:   guide,
	})
	elapsed := time.Since(start).Nanoseconds()
	SwapProgram(p)
	st.tier.Store(int32(p.Tier()))
	// Drop the tier-0 counts: the ordinal-seeded sampling phase and the
	// stale *compiledFn block tables of the replaced program must not
	// skew (or pin) anything the new program's profiles feed.
	for _, k := range st.kernels {
		tc.prof.ResetKernel(k)
	}
	st.inflight.Store(false)
	tc.promotions.Add(1)
	tc.mu.Lock()
	sink := tc.sink
	tc.mu.Unlock()
	if sink != nil {
		sink(TierEvent{Kernels: st.kernels, Tier: p.Tier(), CompileNs: elapsed})
	}
}

// guideFor builds the profile guide from the controller profiler's
// snapshots of this module's kernels.
func (tc *TierController) guideFor(st *tierState) *ProfileGuide {
	mine := make(map[string]bool, len(st.kernels))
	for _, k := range st.kernels {
		mine[k] = true
	}
	var snaps []KernelProfileSnapshot
	for _, s := range tc.prof.Snapshot() {
		if mine[s.Kernel] {
			snaps = append(snaps, s)
		}
	}
	return GuideFromSnapshots(snaps)
}

// Close stops the background workers and waits for in-flight
// promotions to finish. Observe becomes a no-op afterwards.
func (tc *TierController) Close() {
	if tc == nil {
		return
	}
	tc.mu.Lock()
	if tc.closed {
		tc.mu.Unlock()
		return
	}
	tc.closed = true
	tc.mu.Unlock()
	close(tc.jobs)
	tc.wg.Wait()
}
