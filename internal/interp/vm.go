package interp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ir"
)

// This file is the bytecode VM and its execution engine:
//
//   - work-items execute over flat register files with an explicit frame
//     stack, so a work-item suspends at a barrier at ANY call depth by
//     saving (pc, frames) — no goroutine per work-item;
//   - the work-items of one group run cooperatively in local-id order,
//     yielding only at barriers (one "round" between barriers replaces
//     the old cyclic-barrier rendezvous);
//   - work-groups are independent by construction and run in parallel on
//     a bounded worker pool, cutting goroutine count per launch from
//     Global work-items to O(NumCPU);
//   - per-frame register files, per-group local regions and per-item
//     private allocas come from pools and bump arenas, so repeated
//     sliced launches on pooled machines stop allocating per slice.
//
// Semantics are shared with the reference tree-walker (exec.go) through
// the common binOp/cmpOp/castOp/evalMath/load/store helpers; the Parboil
// differential parity suite holds the two engines byte-identical.

type wiStatus uint8

const (
	wiRunning wiStatus = iota
	wiBarrier          // suspended at a work-group barrier
	wiDone             // returned from the kernel frame
)

// vmFrame is one suspended or active function activation. regp is the
// pooled register-file pointer; it returns to the pool verbatim when
// the frame pops.
type vmFrame struct {
	cf   *compiledFn
	regp *[]Value
	pc   int32
	dst  int32 // caller register receiving the return value (-1: none)
}

// wiState is the full execution state of one work-item: a stack of
// frames plus its local id. Suspending at a barrier is just returning
// with the stack intact.
type wiState struct {
	frames []vmFrame
	lid    [3]int64
	status wiStatus
	steps  int64 // batched instruction count not yet flushed to the launch budget
}

// arena bump-allocates private and local regions for the groups one
// worker runs. Regions are never recycled within a launch (a dangling
// pointer into a dead frame's alloca reads exactly what the reference
// engine would read), but the backing chunks amortize allocation and
// arrive pre-zeroed.
type arena struct {
	buf     []byte
	regions []Region
}

const arenaChunk = 64 << 10

func (a *arena) alloc(size int64, space ir.AddrSpace) *Region {
	if size > int64(len(a.buf)) {
		n := int64(arenaChunk)
		if size > n {
			n = size
		}
		a.buf = make([]byte, n)
	}
	b := a.buf[:size:size]
	a.buf = a.buf[size:]
	if len(a.regions) == 0 {
		a.regions = make([]Region, 64)
	}
	r := &a.regions[0]
	a.regions = a.regions[1:]
	*r = Region{Bytes: b, Space: space}
	return r
}

// groupRunner is one worker's reusable scratch: work-item states, the
// per-group local-region table and the alloca arena. Runners are pooled
// across launches and machines.
type groupRunner struct {
	items  []wiState
	locals []*Region
	ar     arena
}

var runnerPool = sync.Pool{New: func() any { return new(groupRunner) }}

// vmGroup is the execution context of one work-group.
type vmGroup struct {
	l      *launchCtx
	group  [3]int64
	locals []*Region
	ar     *arena

	// prof is non-nil when this group was sampled for execution
	// profiling: exec defers to the counting loop in vm_profile.go.
	prof *groupProfile

	// faultWI is the work-item a warp-mode fault is attributed to
	// (warp.go); the scalar round loop tracks its own current item.
	faultWI *wiState
}

// stepBatch is how many instructions a work-item executes between
// flushes to the launch-global instruction budget.
const stepBatch = 4096

// launchVM runs the kernel's work-groups on persistent workers: the
// claim loop pulls work-group linear indices from an atomic cursor and
// runs them to completion. The launching goroutine always runs a claim
// loop itself; up to workers-1 helpers are borrowed from the machine's
// WorkerPool (no goroutine is ever spawned per launch — tiny slices on
// pooled machines used to pay GOMAXPROCS spawns each). The first
// faulting group (in linear order) wins error reporting, as under the
// old sequential group loop.
func (m *Machine) launchVM(fn *ir.Function, args []Value, locals []localArg, nd NDRange) error {
	prog := m.Program()
	kcf := prog.fns[fn.Name]
	if kcf == nil {
		return fmt.Errorf("interp: kernel %q not compiled", fn.Name)
	}
	l := &launchCtx{m: m, fn: fn, args: args, locals: locals, nd: nd, ng: nd.NumGroups(), prog: prog, kcf: kcf, maxSteps: m.maxSteps()}
	total := l.ng[0] * l.ng[1] * l.ng[2]
	if p := m.Profiler; p != nil {
		l.prof = p
		l.kp = p.kernel(fn.Name)
		// Rotate which group of the grid gets sampled: the cumulative
		// group counter advances by the same amount per launch, so
		// launches whose group count divides the sampling period would
		// always profile the same groups of the grid. The phase is
		// seeded from the launch ordinal and the launch's group count,
		// walking the sample point across the grid over repeats.
		c := l.kp.launches.Add(1) - 1
		l.profPhase = (c * (total/2 + 1)) % p.every
	}
	defer l.flushWarpStats()
	workers := int64(runtime.GOMAXPROCS(0))
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		gr := runnerPool.Get().(*groupRunner)
		defer runnerPool.Put(gr)
		for i := int64(0); i < total; i++ {
			if err := l.runGroupVM(gr, delinearize(i, l.ng)); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		abort   atomic.Bool
		mu      sync.Mutex
		bestIdx = int64(-1)
		bestErr error
		wg      sync.WaitGroup
	)
	claim := func() {
		gr := runnerPool.Get().(*groupRunner)
		defer runnerPool.Put(gr)
		for !abort.Load() {
			i := next.Add(1) - 1
			if i >= total {
				return
			}
			if err := l.runGroupVM(gr, delinearize(i, l.ng)); err != nil {
				mu.Lock()
				if bestIdx < 0 || i < bestIdx {
					bestIdx, bestErr = i, err
				}
				mu.Unlock()
				abort.Store(true)
			}
		}
	}
	pool := m.Workers
	if pool == nil {
		pool = defaultWorkers()
	}
	for w := int64(1); w < workers; w++ {
		wg.Add(1)
		if !pool.TrySubmit(func() { defer wg.Done(); claim() }) {
			// Every worker is busy with other launches; their claim
			// loops drain those first, so run this launch here instead
			// of queueing behind them.
			wg.Done()
			break
		}
	}
	claim()
	wg.Wait()
	return bestErr
}

func delinearize(i int64, ng [3]int64) [3]int64 {
	return [3]int64{i % ng[0], (i / ng[0]) % ng[1], i / (ng[0] * ng[1])}
}

// i32Bin is the inline integer core of the fused superinstructions.
// Only BinKinds with a specialized i32 opcode reach it — tryFuse gates
// on specBin — so div/rem (which trap) never land here and the switch
// needs no fallback. Small enough to inline into the dispatch loop.
func i32Bin(k ir.BinKind, a, b int64) int64 {
	switch k {
	case ir.Add:
		return int64(int32(a + b))
	case ir.Sub:
		return int64(int32(a - b))
	case ir.Mul:
		return int64(int32(a * b))
	case ir.And:
		return int64(int32(a & b))
	case ir.Or:
		return int64(int32(a | b))
	default: // ir.Xor — fusableI32Bin admits nothing else
		return int64(int32(a ^ b))
	}
}

// i32Cmp is the matching inline comparison: tryFuse admits only the
// fast integer predicates (fastIntPred), so the switch is exhaustive.
func i32Cmp(p ir.CmpPred, a, b int64) bool {
	switch p {
	case ir.IEQ:
		return a == b
	case ir.INE:
		return a != b
	case ir.ILT:
		return a < b
	case ir.ILE:
		return a <= b
	case ir.IGT:
		return a > b
	default: // ir.IGE
		return a >= b
	}
}

// fastBin is binOp over register pointers: identical semantics (the
// parity suite holds the two engines byte-identical), but the operands
// stay in place instead of being copied through a call frame.
func fastBin(k ir.BinKind, kind ir.Kind, x, y *Value) Value {
	if k >= ir.FAdd {
		var r float64
		switch k {
		case ir.FAdd:
			r = x.F + y.F
		case ir.FSub:
			r = x.F - y.F
		case ir.FMul:
			r = x.F * y.F
		case ir.FDiv:
			r = x.F / y.F
		}
		if kind == ir.F32 {
			r = float64(float32(r))
		}
		return Value{K: kind, F: r}
	}
	var r int64
	switch k {
	case ir.Add:
		r = x.I + y.I
	case ir.Sub:
		r = x.I - y.I
	case ir.Mul:
		r = x.I * y.I
	case ir.SDiv:
		if y.I == 0 {
			panic(trap{"integer division by zero"})
		}
		r = x.I / y.I
	case ir.SRem:
		if y.I == 0 {
			panic(trap{"integer remainder by zero"})
		}
		r = x.I % y.I
	case ir.And:
		r = x.I & y.I
	case ir.Or:
		r = x.I | y.I
	case ir.Xor:
		r = x.I ^ y.I
	case ir.Shl:
		r = x.I << uint64(y.I&63)
	case ir.AShr:
		r = x.I >> uint64(y.I&63)
	}
	switch kind {
	case ir.Bool:
		r &= 1
	case ir.I32:
		r = int64(int32(r))
	}
	return Value{K: kind, I: r}
}

// fastCmp is cmpOp over register pointers, returning the bare verdict.
func fastCmp(p ir.CmpPred, x, y *Value) bool {
	if !p.IsFloatPred() && x.K != ir.Pointer {
		xi, yi := x.I, y.I
		switch p {
		case ir.IEQ:
			return xi == yi
		case ir.INE:
			return xi != yi
		case ir.ILT:
			return xi < yi
		case ir.ILE:
			return xi <= yi
		case ir.IGT:
			return xi > yi
		case ir.IGE:
			return xi >= yi
		}
	}
	return cmpOp(p, *x, *y).Bool()
}

// runGroupVM executes one work-group cooperatively: every live work-item
// is resumed once per round and runs until its next barrier (or until it
// returns); when the round ends, all live items have arrived, which IS
// the barrier release. Completed items count as arrived at every later
// barrier, so a group whose items retire at different loop trip counts
// drains instead of deadlocking.
func (l *launchCtx) runGroupVM(gr *groupRunner, group [3]int64) error {
	nd := l.nd
	size := int(nd.WGSize())
	if cap(gr.items) < size {
		gr.items = make([]wiState, size)
	}
	gr.items = gr.items[:size]
	nslots := len(l.prog.localSizes)
	if cap(gr.locals) < nslots {
		gr.locals = make([]*Region, nslots)
	}
	gr.locals = gr.locals[:nslots]
	clear(gr.locals)
	g := &vmGroup{l: l, group: group, locals: gr.locals, ar: &gr.ar}
	if p := l.prof; p != nil {
		// Sample 1 in every groups. The phase is seeded from the launch
		// geometry (see launchVM), so repeated identical launches do not
		// keep profiling the same group of the grid; short launches on a
		// sparse profiler still pay nothing.
		if n := l.kp.groupsSeen.Add(1); (n+l.profPhase)%p.every == 0 {
			g.prof = p.newGroupProfile()
		}
	}

	// Materialize host-declared local arguments: one region per group,
	// patched over the LocalArgV placeholder in every item's registers.
	var largs [8]Value
	argPatch := largs[:0]
	for _, la := range l.locals {
		r := g.ar.alloc(la.size, ir.Local)
		argPatch = append(argPatch, Value{K: ir.Pointer, P: Ptr{R: r}})
	}

	i := 0
	for lz := int64(0); lz < nd.Local[2]; lz++ {
		for ly := int64(0); ly < nd.Local[1]; ly++ {
			for lx := int64(0); lx < nd.Local[0]; lx++ {
				wi := &gr.items[i]
				i++
				wi.lid = [3]int64{lx, ly, lz}
				wi.status = wiRunning
				wi.steps = 0
				regp := l.kcf.getRegs()
				copy(*regp, l.args)
				for pi, la := range l.locals {
					(*regp)[la.idx] = argPatch[pi]
				}
				wi.frames = append(wi.frames[:0], vmFrame{cf: l.kcf, regp: regp, pc: 0, dst: -1})
			}
		}
	}

	if ww := l.prog.warpWidth; ww > 1 && size > 1 && len(l.kcf.wmode) > 0 {
		return l.runGroupWarp(gr, g, size, ww, argPatch)
	}

	live := size
	for live > 0 {
		for i := range gr.items {
			wi := &gr.items[i]
			if wi.status == wiDone {
				continue
			}
			if err := g.resume(wi); err != nil {
				gid := [3]int64{
					group[0]*nd.Local[0] + wi.lid[0],
					group[1]*nd.Local[1] + wi.lid[1],
					group[2]*nd.Local[2] + wi.lid[2],
				}
				g.release(gr)
				if l.kp != nil {
					// Faults are counted on every group, sampled or not;
					// a sampled group's partial counts still flush.
					l.kp.faults.Add(1)
					if g.prof != nil {
						l.kp.flush(g.prof)
					}
				}
				return fmt.Errorf("interp: work-item global id (%d,%d,%d): %w", gid[0], gid[1], gid[2], err)
			}
			if wi.status == wiDone {
				live--
			}
		}
	}
	if g.prof != nil {
		l.kp.flush(g.prof)
	}
	return nil
}

// release returns the frames of every unfinished work-item after a fault
// so pooled register files are not pinned by the abandoned group.
func (g *vmGroup) release(gr *groupRunner) {
	for i := range gr.items {
		wi := &gr.items[i]
		for f := range wi.frames {
			wi.frames[f].cf.putRegs(wi.frames[f].regp)
			wi.frames[f] = vmFrame{}
		}
		wi.frames = wi.frames[:0]
	}
}

// resume runs a work-item until its next suspension point, converting
// execution faults (traps) into errors.
func (g *vmGroup) resume(wi *wiState) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(trap); ok {
				err = t
				return
			}
			err = fmt.Errorf("interp: panic: %v", r)
		}
	}()
	g.exec(wi)
	return nil
}

// exec is the dispatch loop. It caches the top frame in locals and only
// touches the frame stack on call, return and barrier. Sampled groups
// divert to the counting twin in vm_profile.go here — one branch per
// resume, not per instruction, so the unprofiled hot loop is untouched.
func (g *vmGroup) exec(wi *wiState) {
	if g.prof != nil {
		g.execProf(wi)
		return
	}
	l := g.l
	m := l.m
	top := len(wi.frames) - 1
	cf := wi.frames[top].cf
	code := cf.code
	regs := *wi.frames[top].regp
	pc := wi.frames[top].pc
	steps := wi.steps

	for {
		in := &code[pc]
		pc++
		steps++
		if steps >= stepBatch {
			l.addSteps(steps)
			steps = 0
		}
		switch in.op {
		case opAlloca:
			r := g.ar.alloc(in.imm, ir.AddrSpace(in.sub))
			regs[in.dst] = Value{K: ir.Pointer, P: Ptr{R: r}}
		case opAllocaLocal:
			r := g.locals[in.a]
			if r == nil {
				r = g.ar.alloc(in.imm, ir.Local)
				g.locals[in.a] = r
			}
			regs[in.dst] = Value{K: ir.Pointer, P: Ptr{R: r}}
		case opLoad:
			regs[in.dst] = m.load(kindTypes[in.kind], regs[in.a].P)
		case opStore:
			m.store(kindTypes[in.kind], regs[in.a], regs[in.b].P)
		case opGEP:
			base := regs[in.a].P
			if base.IsNull() {
				panic(trap{"gep on null pointer"})
			}
			regs[in.dst] = Value{K: ir.Pointer, P: Ptr{R: base.R, Off: base.Off + regs[in.b].I*in.imm}}
		case opGEPConst:
			base := regs[in.a].P
			if base.IsNull() {
				panic(trap{"gep on null pointer"})
			}
			regs[in.dst] = Value{K: ir.Pointer, P: Ptr{R: base.R, Off: base.Off + in.imm}}
		case opBin:
			// The arithmetic is inlined rather than delegated to the
			// shared binOp helper: after mem2reg the hot loops are almost
			// pure register arithmetic, and marshalling two 48-byte
			// Values through a call dominated the dispatch cost.
			regs[in.dst] = fastBin(ir.BinKind(in.sub), in.kind, &regs[in.a], &regs[in.b])
		case opCmp:
			regs[in.dst] = BoolV(fastCmp(ir.CmpPred(in.sub), &regs[in.a], &regs[in.b]))
		case opMove:
			regs[in.dst] = regs[in.a]
		case opAddI32:
			regs[in.dst] = Value{K: ir.I32, I: int64(int32(regs[in.a].I + regs[in.b].I))}
		case opSubI32:
			regs[in.dst] = Value{K: ir.I32, I: int64(int32(regs[in.a].I - regs[in.b].I))}
		case opMulI32:
			regs[in.dst] = Value{K: ir.I32, I: int64(int32(regs[in.a].I * regs[in.b].I))}
		case opAndI32:
			regs[in.dst] = Value{K: ir.I32, I: int64(int32(regs[in.a].I & regs[in.b].I))}
		case opOrI32:
			regs[in.dst] = Value{K: ir.I32, I: int64(int32(regs[in.a].I | regs[in.b].I))}
		case opXorI32:
			regs[in.dst] = Value{K: ir.I32, I: int64(int32(regs[in.a].I ^ regs[in.b].I))}
		case opAddI64:
			regs[in.dst] = Value{K: ir.I64, I: regs[in.a].I + regs[in.b].I}
		case opAddF32:
			regs[in.dst] = Value{K: ir.F32, F: float64(float32(regs[in.a].F + regs[in.b].F))}
		case opSubF32:
			regs[in.dst] = Value{K: ir.F32, F: float64(float32(regs[in.a].F - regs[in.b].F))}
		case opMulF32:
			regs[in.dst] = Value{K: ir.F32, F: float64(float32(regs[in.a].F * regs[in.b].F))}
		case opDivF32:
			regs[in.dst] = Value{K: ir.F32, F: float64(float32(regs[in.a].F / regs[in.b].F))}
		case opCmpJump:
			if fastCmp(ir.CmpPred(in.sub), &regs[in.a], &regs[in.b]) {
				pc = in.c
			} else {
				pc = int32(in.imm)
			}
		case opBinBin:
			t := i32Bin(ir.BinKind(in.sub), regs[in.a].I, regs[in.b].I)
			var r int64
			if in.imm&bbSwapped != 0 {
				r = i32Bin(ir.BinKind(in.imm&0xff), regs[in.c].I, t)
			} else {
				r = i32Bin(ir.BinKind(in.imm&0xff), t, regs[in.c].I)
			}
			regs[in.dst] = Value{K: ir.I32, I: r}
		case opBinCmpJump:
			// The bin result write is kept: unlike the other fusions the
			// bin may have further uses (the induction variable).
			v := i32Bin(ir.BinKind(in.sub), regs[in.a].I, regs[in.b].I)
			regs[in.dst] = Value{K: ir.I32, I: v}
			x, y := v, regs[in.args[1]].I
			if in.args[0]&bcjSwapped != 0 {
				x, y = y, x
			}
			if i32Cmp(ir.CmpPred(in.args[0]&0xffff), x, y) {
				pc = in.c
			} else {
				pc = int32(in.imm)
			}
		case opBinStore:
			m.store(kindTypes[in.kind], binOp(ir.BinKind(in.sub), kindTypes[in.kind], regs[in.a], regs[in.b]), regs[in.c].P)
		case opLoadBinStore:
			t := kindTypes[in.kind]
			v := m.load(t, regs[in.a].P)
			x := regs[in.b]
			if in.sub&lbsSwapped != 0 {
				v, x = x, v
			}
			m.store(t, binOp(ir.BinKind(in.sub&^lbsSwapped), t, v, x), regs[in.c].P)
		case opLoadIdx:
			base := regs[in.a].P
			if base.IsNull() {
				panic(trap{"gep on null pointer"})
			}
			regs[in.dst] = m.load(kindTypes[in.kind], Ptr{R: base.R, Off: base.Off + regs[in.b].I*in.imm})
		case opLoadOff:
			base := regs[in.a].P
			if base.IsNull() {
				panic(trap{"gep on null pointer"})
			}
			regs[in.dst] = m.load(kindTypes[in.kind], Ptr{R: base.R, Off: base.Off + in.imm})
		case opCast:
			regs[in.dst] = castOp(ir.CastKind(in.sub), kindTypes[in.kind], regs[in.a])
		case opSelect:
			if regs[in.a].Bool() {
				regs[in.dst] = regs[in.b]
			} else {
				regs[in.dst] = regs[in.c]
			}
		case opAtomic:
			regs[in.dst] = m.atomicRMW(ir.AtomicKind(in.sub), kindTypes[in.kind], regs[in.a].P, regs[in.b])
		case opBarrier:
			wi.frames[top].pc = pc
			wi.status = wiBarrier
			wi.steps = steps
			return
		case opCall:
			if top+1 > maxCallDepth {
				panic(trap{"call depth exceeded (runaway recursion?)"})
			}
			wi.frames[top].pc = pc
			callee := in.fn
			cregp := callee.getRegs()
			cregs := *cregp
			for ai, ar := range in.args {
				cregs[ai] = regs[ar]
			}
			wi.frames = append(wi.frames, vmFrame{cf: callee, regp: cregp, pc: 0, dst: in.dst})
			top++
			cf, code, regs, pc = callee, callee.code, cregs, 0
		case opWI:
			dim := in.imm
			if in.a >= 0 {
				dim = regs[in.a].I
				if dim < 0 || dim > 2 {
					dim = 0
				}
			}
			var v Value
			switch in.sub {
			case wiGlobalID:
				v = LongV(g.group[dim]*l.nd.Local[dim] + wi.lid[dim])
			case wiLocalID:
				v = LongV(wi.lid[dim])
			case wiGroupID:
				v = LongV(g.group[dim])
			case wiNumGroups:
				v = LongV(l.ng[dim])
			case wiLocalSize:
				v = LongV(l.nd.Local[dim])
			case wiGlobalSize:
				v = LongV(l.nd.Global[dim])
			case wiGlobalOffset:
				v = LongV(0)
			case wiWorkDim:
				v = IntV(int64(l.nd.Dims))
			}
			regs[in.dst] = v
		case opMath:
			x := regs[in.a].F
			var y float64
			if in.b >= 0 {
				y = regs[in.b].F
			}
			regs[in.dst] = evalMath(in.sub, in.kind, x, y)
		case opJump:
			pc = int32(in.imm)
		case opCondJump:
			if regs[in.a].Bool() {
				pc = in.b
			} else {
				pc = in.c
			}
		case opRet:
			var rv Value
			if in.a >= 0 {
				rv = regs[in.a]
			}
			cf.putRegs(wi.frames[top].regp)
			dst := wi.frames[top].dst
			wi.frames[top] = vmFrame{}
			wi.frames = wi.frames[:top]
			top--
			if top < 0 {
				wi.status = wiDone
				wi.steps = steps
				return
			}
			fr := &wi.frames[top]
			cf, code, regs, pc = fr.cf, fr.cf.code, *fr.regp, fr.pc
			if dst >= 0 {
				regs[dst] = rv
			}
		case opTrap:
			panic(trap{in.msg})
		}
	}
}
