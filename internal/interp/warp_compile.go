package interp

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/passes"
)

// Warp dispatch modes: one byte per bytecode instruction of a kernel,
// telling the warp execution loop (warp.go) how to run it while the
// warp's control flow is still uniform.
const (
	// wmSpill leaves vector mode: the warp's live lanes materialize
	// scalar work-item state at this pc and re-execute the instruction
	// on the per-item path (divergent branches, calls, traps).
	wmSpill uint8 = iota
	// wmOnce executes the instruction once per warp: its destination
	// (if any) is a uniform register homed in the warp's shared file,
	// and uniform operands read from there (the rare divergent-homed
	// operand — the phi-cycle scratch — reads lane 0, whose value is
	// warp-invariant whenever the analysis proved the result uniform).
	wmOnce
	// wmLane executes the instruction once per live lane, reading
	// uniform operands from the shared file and divergent ones from
	// the lane's own register file.
	wmLane
	// wmBarrier suspends the whole warp at a work-group barrier —
	// arrival is counted once per warp, not once per lane.
	wmBarrier
	// wmRet retires every live lane of the warp (kernel top-frame
	// return; calls never run in vector mode, so there is no caller).
	wmRet
)

// buildWarpTables derives the warp execution tables of a compiled
// kernel from the uniformity analysis: the per-register uniformity
// (register homes), the per-instruction dispatch mode, and the barrier
// resume pcs where a spilled warp may re-form. Register numbering is
// repeatable (ir.NumberFunction is deterministic), so the analysis maps
// onto the already-lowered code.
func (cf *compiledFn) buildWarpTables() {
	fn := cf.fn
	u := passes.AnalyzeUniformity(fn)
	nb := ir.NumberFunction(fn)

	uniform := make([]bool, cf.nregs)
	for _, p := range fn.Params {
		if i, ok := nb.IndexOf(p); ok {
			uniform[i] = true
		}
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.HasResult() {
				if i, ok := nb.IndexOf(in); ok {
					uniform[i] = u.ValueUniform(in)
				}
			}
		}
	}
	for i := cf.constBase; i < cf.constBase+len(cf.consts); i++ {
		uniform[i] = true
	}
	// A phi-cycle scratch slot (past the constant tail) stays divergent:
	// it shuttles both uniform and divergent edge copies.

	// Per-block control-uniformity, aligned with blockStarts. The edge
	// stub region holds only moves and jumps for edges out of branches;
	// divergent branches spill before reaching their stubs, so the
	// region counts as uniform.
	blkU := make([]bool, len(cf.blockStarts))
	for i, b := range fn.Blocks {
		if i < len(blkU) {
			blkU[i] = u.BlockUniform(b)
		}
	}
	if len(blkU) > len(fn.Blocks) {
		blkU[len(fn.Blocks)] = true
	}
	pcUniform := func(pc int32) bool {
		i := sort.Search(len(cf.blockStarts), func(i int) bool { return cf.blockStarts[i] > pc }) - 1
		return i >= 0 && blkU[i]
	}

	wmode := make([]uint8, len(cf.code))
	ru := func(r int32) bool { return r >= 0 && uniform[r] }
	for pc := range cf.code {
		in := &cf.code[pc]
		var m uint8
		switch in.op {
		case opCall, opTrap:
			m = wmSpill
		case opRet:
			m = wmRet
		case opBarrier:
			m = wmBarrier
			if !pcUniform(int32(pc)) {
				m = wmSpill
			}
		case opJump:
			m = wmOnce
		case opCondJump:
			m = wmOnce
			if !ru(in.a) {
				m = wmSpill
			}
		case opCmpJump:
			m = wmOnce
			if !ru(in.a) || !ru(in.b) {
				m = wmSpill
			}
		case opBinCmpJump:
			// The fused bin writes a register too, so the destination
			// must be uniform along with every compare operand. tryFuse
			// only emits this when the uniformity analysis agrees, but
			// the table stays defensive.
			m = wmOnce
			if !ru(in.a) || !ru(in.b) || !ru(in.args[1]) || !ru(in.dst) {
				m = wmSpill
			}
		case opStore:
			// A store of a uniform value through a uniform pointer in a
			// control-uniform block: every lane writes the same bytes to
			// the same place, so one write is byte-equivalent.
			m = wmLane
			if ru(in.a) && ru(in.b) && pcUniform(int32(pc)) {
				m = wmOnce
			}
		case opBinStore:
			m = wmLane
			if ru(in.a) && ru(in.b) && ru(in.c) && pcUniform(int32(pc)) {
				m = wmOnce
			}
		case opLoadBinStore, opAtomic:
			// The loaded/old value is per-lane by definition.
			m = wmLane
		default:
			// Value-producing instructions follow their destination's
			// home: uniform results compute once on the shared file.
			m = wmLane
			if ru(in.dst) {
				m = wmOnce
			}
		}
		wmode[pc] = m
	}

	// Spilled warps re-form at barriers in control-uniform blocks: all
	// lanes arrive with a single frame at the same resume pc.
	reform := make(map[int32]bool)
	for pc := range cf.code {
		if cf.code[pc].op == opBarrier && wmode[pc] == wmBarrier {
			reform[int32(pc)+1] = true
		}
	}

	var uregs []int32
	for i, ok := range uniform {
		if ok && i < cf.constBase {
			uregs = append(uregs, int32(i))
		}
	}
	cf.wmode = wmode
	cf.uniform = uniform
	cf.uniformRegs = uregs
	cf.reformPC = reform
}
