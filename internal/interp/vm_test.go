package interp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ir"
)

// engines runs the test body once per execution engine.
func engines(t *testing.T, f func(t *testing.T, eng Engine)) {
	t.Helper()
	t.Run("vm", func(t *testing.T) { f(t, EngineVM) })
	t.Run("treewalk", func(t *testing.T) { f(t, EngineTreeWalk) })
}

func compileEngine(t *testing.T, src string, eng Engine) *Machine {
	t.Helper()
	m := compile(t, src)
	m.Engine = eng
	return m
}

// TestVMBarrierInLoop drives a barrier inside a loop body: work-items
// must stay in lockstep per iteration (the scan reads values its
// neighbors wrote in the PREVIOUS iteration), which fails if barrier
// resumption restarts or skips work-item state.
func TestVMBarrierInLoop(t *testing.T) {
	const src = `
#define WG 32
kernel void scan(global const int* in, global int* out)
{
    local int buf[2 * WG];
    int lid = (int)get_local_id(0);
    int cur = 0;
    buf[lid] = in[get_global_id(0)];
    barrier(1);
    int d;
    for (d = 1; d < WG; d <<= 1) {
        int nxt = 1 - cur;
        if (lid >= d)
            buf[nxt * WG + lid] = buf[cur * WG + lid] + buf[cur * WG + lid - d];
        else
            buf[nxt * WG + lid] = buf[cur * WG + lid];
        cur = nxt;
        barrier(1);
    }
    out[get_global_id(0)] = buf[cur * WG + lid];
}
`
	run := func(eng Engine) []int32 {
		m := compileEngine(t, src, eng)
		const n, wg = 128, 32
		in := m.NewRegion(n*4, ir.Global)
		out := m.NewRegion(n*4, ir.Global)
		iv := make([]int32, n)
		for i := range iv {
			iv[i] = int32(i%7 + 1)
		}
		in.WriteInt32s(0, iv)
		args := []Value{{K: ir.Pointer, P: Ptr{R: in}}, {K: ir.Pointer, P: Ptr{R: out}}}
		if err := m.Launch("scan", args, ND1(n, wg)); err != nil {
			t.Fatalf("launch: %v", err)
		}
		return out.ReadInt32s(0, n)
	}
	vm := run(EngineVM)
	ref := run(EngineTreeWalk)
	for i := range ref {
		if vm[i] != ref[i] {
			t.Fatalf("out[%d]: vm %d, tree-walker %d", i, vm[i], ref[i])
		}
	}
	// Independent check on one group: inclusive prefix sums.
	sum := int32(0)
	for i := 0; i < 32; i++ {
		sum += int32(i%7 + 1)
		if vm[i] != sum {
			t.Fatalf("scan[%d] = %d, want %d", i, vm[i], sum)
		}
	}
}

// TestVMDivergentBranch sends work-items down different control-flow
// paths (including loops with data-dependent trip counts) and compares
// engines.
func TestVMDivergentBranch(t *testing.T) {
	const src = `
kernel void div(global int* out)
{
    int i = (int)get_global_id(0);
    int acc = 0;
    if (i % 3 == 0) {
        int j;
        for (j = 0; j < i; ++j) acc += j;
    } else if (i % 3 == 1) {
        acc = -i;
    } else {
        int j = i;
        while (j > 0) { acc += 2; j >>= 1; }
    }
    out[i] = acc;
}
`
	var outs [2][]int32
	for e, eng := range []Engine{EngineVM, EngineTreeWalk} {
		m := compileEngine(t, src, eng)
		const n = 96
		out := m.NewRegion(n*4, ir.Global)
		if err := m.Launch("div", []Value{{K: ir.Pointer, P: Ptr{R: out}}}, ND1(n, 32)); err != nil {
			t.Fatalf("launch: %v", err)
		}
		outs[e] = out.ReadInt32s(0, n)
	}
	for i := range outs[0] {
		if outs[0][i] != outs[1][i] {
			t.Fatalf("out[%d]: vm %d, tree-walker %d", i, outs[0][i], outs[1][i])
		}
	}
}

// TestVMBarrierInHelperCall puts the barrier inside a helper function:
// the VM must suspend a work-item with a non-trivial frame stack (the
// shape the JIT-transformed dyn_sched wrapper relies on when the
// computation function keeps its original barriers).
func TestVMBarrierInHelperCall(t *testing.T) {
	const src = `
#define WG 16
void exchange(local int* buf, int lid)
{
    int v = buf[lid];
    barrier(1);
    buf[(lid + 1) % WG] = v;
    barrier(1);
}
kernel void rot(global int* data)
{
    local int buf[WG];
    int lid = (int)get_local_id(0);
    buf[lid] = data[get_global_id(0)];
    barrier(1);
    exchange(buf, lid);
    data[get_global_id(0)] = buf[lid];
}
`
	engines(t, func(t *testing.T, eng Engine) {
		m := compileEngine(t, src, eng)
		const n, wg = 64, 16
		data := m.NewRegion(n*4, ir.Global)
		iv := make([]int32, n)
		for i := range iv {
			iv[i] = int32(i)
		}
		data.WriteInt32s(0, iv)
		if err := m.Launch("rot", []Value{{K: ir.Pointer, P: Ptr{R: data}}}, ND1(n, wg)); err != nil {
			t.Fatalf("launch: %v", err)
		}
		got := data.ReadInt32s(0, n)
		for i := range got {
			g, l := i/wg, i%wg
			want := int32(g*wg + (l-1+wg)%wg) // each group rotated by one
			if got[i] != want {
				t.Fatalf("data[%d] = %d, want %d", i, got[i], want)
			}
		}
	})
}

// TestWorkItemFaultReportsGlobalID: the launch error must carry the
// faulting work-item's global id, and with several groups the first
// faulting group (in linear order) must win.
func TestWorkItemFaultReportsGlobalID(t *testing.T) {
	const src = `
kernel void f(global int* out, int bad)
{
    int i = (int)get_global_id(0);
    out[i] = 7 / (i - bad); /* traps exactly at i == bad */
}
`
	engines(t, func(t *testing.T, eng Engine) {
		m := compileEngine(t, src, eng)
		out := m.NewRegion(64*4, ir.Global)
		args := []Value{{K: ir.Pointer, P: Ptr{R: out}}, IntV(37)}
		err := m.Launch("f", args, ND1(64, 8))
		if err == nil {
			t.Fatal("expected a trap")
		}
		if !strings.Contains(err.Error(), "(37,0,0)") {
			t.Errorf("error does not name the faulting global id: %v", err)
		}
		if !strings.Contains(err.Error(), "division by zero") {
			t.Errorf("error lost the underlying fault: %v", err)
		}
	})
}

// TestErrorDrainPrefersRealFault: when a trapping work-item poisons the
// barrier and unwinds its whole group, the reported error must be the
// genuine fault, not a collateral poison unwind (the old code read one
// error nondeterministically and dropped the rest).
func TestErrorDrainPrefersRealFault(t *testing.T) {
	const src = `
kernel void f(global int* out, int bad)
{
    int i = (int)get_local_id(0);
    barrier(1);
    out[i] = 7 / (i - bad); /* one item traps, siblings hit the next barrier */
    barrier(1);
    out[i] += 1;
}
`
	engines(t, func(t *testing.T, eng Engine) {
		for trial := 0; trial < 8; trial++ {
			m := compileEngine(t, src, eng)
			out := m.NewRegion(32*4, ir.Global)
			args := []Value{{K: ir.Pointer, P: Ptr{R: out}}, IntV(5)}
			err := m.Launch("f", args, ND1(32, 32))
			if err == nil {
				t.Fatal("expected a trap")
			}
			if !strings.Contains(err.Error(), "division by zero") {
				t.Fatalf("trial %d: collateral error reported instead of the fault: %v", trial, err)
			}
			if !strings.Contains(err.Error(), "(5,0,0)") {
				t.Fatalf("trial %d: wrong work-item blamed: %v", trial, err)
			}
		}
	})
}

// TestLaunchGlobalStepBudget: the instruction budget is shared across
// call frames, so a kernel that spreads its work over many helper
// invocations (each individually under the old per-frame budget) still
// traps.
func TestLaunchGlobalStepBudget(t *testing.T) {
	const src = `
int burn(int n)
{
    int acc = 0;
    int j;
    for (j = 0; j < n; ++j) acc += j;
    return acc;
}
kernel void f(global int* out)
{
    int acc = 0;
    int i;
    for (i = 0; i < 64; ++i) acc += burn(2000);
    out[0] = acc;
}
`
	engines(t, func(t *testing.T, eng Engine) {
		m := compileEngine(t, src, eng)
		// Each burn() frame executes ~10k instructions — far below the
		// limit — but the launch total is ~64x that.
		m.MaxSteps = 100_000
		out := m.NewRegion(8, ir.Global)
		err := m.Launch("f", []Value{{K: ir.Pointer, P: Ptr{R: out}}}, ND1(1, 1))
		if err == nil || !strings.Contains(err.Error(), "instruction budget exceeded") {
			t.Fatalf("launch-global budget not enforced: %v", err)
		}
		// With an adequate budget the same launch completes.
		m2 := compileEngine(t, src, eng)
		m2.MaxSteps = 10_000_000
		out2 := m2.NewRegion(8, ir.Global)
		if err := m2.Launch("f", []Value{{K: ir.Pointer, P: Ptr{R: out2}}}, ND1(1, 1)); err != nil {
			t.Fatalf("budget trapped a legitimate launch: %v", err)
		}
	})
}

// TestVMPooledLaunchSteadyState: repeated launches on one machine must
// reuse register files, runner scratch and arena chunks instead of
// allocating per work-item — the satellite that makes sliced launches
// on MachinePool machines allocation-quiet.
func TestVMPooledLaunchSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	m := compile(t, `
kernel void vadd(global const float* a, global const float* b, global float* c)
{
    int i = (int)get_global_id(0);
    c[i] = a[i] + b[i];
}
`)
	const n = 1024
	a := m.NewRegion(n*4, ir.Global)
	b := m.NewRegion(n*4, ir.Global)
	c := m.NewRegion(n*4, ir.Global)
	args := []Value{{K: ir.Pointer, P: Ptr{R: a}}, {K: ir.Pointer, P: Ptr{R: b}}, {K: ir.Pointer, P: Ptr{R: c}}}
	launch := func() {
		if err := m.Launch("vadd", args, ND1(n, 64)); err != nil {
			t.Fatal(err)
		}
	}
	launch() // warm pools and the compiled-program cache
	avg := testing.AllocsPerRun(20, launch)
	// 1024 work-items over 16 groups: without pooling this is >1000
	// allocations (one register file per item at minimum). The bound
	// leaves room for worker bookkeeping and occasional pool misses.
	if avg > 200 {
		t.Errorf("steady-state launch allocates too much: %.0f allocs per launch", avg)
	}
}

// TestVMParityPointerStores: pointers stored to memory and reloaded
// (lazily registered regions) must behave identically on both engines.
func TestVMParityPointerStores(t *testing.T) {
	const src = `
kernel void p(global int* data, global int* out, int n)
{
    global int* cur = data;
    global int* end = data + n;
    int sum = 0;
    while (cur != end) {
        sum += *cur;
        cur = cur + 1;
    }
    if (cur == end) sum += 1000;
    if (cur != data) sum += 100;
    out[0] = sum;
}
`
	var got [2]int32
	for e, eng := range []Engine{EngineVM, EngineTreeWalk} {
		m := compileEngine(t, src, eng)
		const n = 16
		data := m.NewRegion(n*4, ir.Global)
		out := m.NewRegion(4, ir.Global)
		iv := make([]int32, n)
		for i := range iv {
			iv[i] = int32(i)
		}
		data.WriteInt32s(0, iv)
		args := []Value{{K: ir.Pointer, P: Ptr{R: data}}, {K: ir.Pointer, P: Ptr{R: out}}, IntV(n)}
		if err := m.Launch("p", args, ND1(1, 1)); err != nil {
			t.Fatalf("launch: %v", err)
		}
		got[e] = out.ReadInt32s(0, 1)[0]
	}
	want := int32(120 + 1000 + 100)
	if got[0] != want || got[1] != want {
		t.Fatalf("pointer walk: vm %d, tree-walker %d, want %d", got[0], got[1], want)
	}
}

// TestCompiledProgramShared: pooled machines over the same module must
// resolve the same compiled program, and Reset must not drop it.
func TestCompiledProgramShared(t *testing.T) {
	mod := compileOrDie(t, `kernel void k(global int* out) { out[0] = 1; }`)
	m1, m2 := NewMachine(mod), NewMachine(mod)
	if m1.Program() != m2.Program() {
		t.Error("machines over one module compiled different programs")
	}
	p := m1.Program()
	m1.Reset()
	if m1.Program() != p {
		t.Error("Reset dropped the compiled program")
	}
}

// TestVMParity3DRuntimeDims runs a 3-D launch whose work-item builtins
// take a loop-carried (non-constant) dimension argument — the path
// where the compiler cannot fold the dim into the instruction.
func TestVMParity3DRuntimeDims(t *testing.T) {
	const src = `
kernel void dims(global long* out)
{
    int d;
    long acc = 0;
    for (d = 0; d < 3; ++d)
        acc = acc * 100 + get_global_id(d) + get_local_size(d) + get_num_groups(d);
    long i = (get_global_id(2) * get_global_size(1) + get_global_id(1)) * get_global_size(0) + get_global_id(0);
    out[i] = acc + get_work_dim() * 1000000;
}
`
	nd := NDRange{Dims: 3, Global: [3]int64{4, 4, 2}, Local: [3]int64{2, 2, 1}}
	var outs [2][]int64
	for e, eng := range []Engine{EngineVM, EngineTreeWalk} {
		m := compileEngine(t, src, eng)
		out := m.NewRegion(4*4*2*8, ir.Global)
		if err := m.Launch("dims", []Value{{K: ir.Pointer, P: Ptr{R: out}}}, nd); err != nil {
			t.Fatalf("launch: %v", err)
		}
		outs[e] = out.ReadInt64s(0, 32)
	}
	for i := range outs[0] {
		if outs[0][i] != outs[1][i] {
			t.Fatalf("out[%d]: vm %d, tree-walker %d", i, outs[0][i], outs[1][i])
		}
	}
}

// TestVMParityLargeMixed runs a kernel exercising most opcodes (casts,
// selects, atomics, math, 2-D ids) on both engines and compares the
// raw output bytes.
func TestVMParityLargeMixed(t *testing.T) {
	const src = `
kernel void mix(global float* f, global int* c, int w)
{
    int x = (int)get_global_id(0);
    int y = (int)get_global_id(1);
    int i = y * w + x;
    float v = sqrt((float)(i + 1)) + pow(2.0f, (float)(i % 5));
    f[i] = (i % 2 == 0) ? v : -v;
    long big = (long)i * 1103515245 + 12345;
    atomic_add(&c[i % 8], (int)(big % 97));
    atomic_max(&c[8 + i % 4], i);
}
`
	var outs [2][]byte
	for e, eng := range []Engine{EngineVM, EngineTreeWalk} {
		m := compileEngine(t, src, eng)
		const w, h = 16, 8
		f := m.NewRegion(w*h*4, ir.Global)
		c := m.NewRegion(12*4, ir.Global)
		args := []Value{{K: ir.Pointer, P: Ptr{R: f}}, {K: ir.Pointer, P: Ptr{R: c}}, IntV(w)}
		if err := m.Launch("mix", args, ND2(w, h, 4, 4)); err != nil {
			t.Fatalf("launch: %v", err)
		}
		outs[e] = append(append([]byte(nil), f.Bytes...), c.Bytes...)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatal("mixed-opcode kernel differs between engines")
	}
}
