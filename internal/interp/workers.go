package interp

import (
	"runtime"
	"sync"
)

// WorkerPool is a persistent set of goroutines that execute work-group
// batches for VM launches. Before it existed, every Launch spawned up to
// GOMAXPROCS fresh goroutines; for the sliced execution engine — whose
// slices can be a handful of small work-groups — the spawn cost rivaled
// the work. A pool is attached to a Machine (opencl.MachinePool owns
// one per platform and seeds it on Acquire); machines without one share
// a lazily started process-wide default.
//
// Tasks are self-sufficient group-claim loops (they pull group indices
// from the launch's atomic cursor until it runs dry), so the pool never
// needs to guarantee placement: TrySubmit hands a task to an idle worker
// if there is one, and the launching goroutine always runs the claim
// loop itself too. A fully busy pool therefore degrades to inline
// execution instead of queueing or deadlocking.
type WorkerPool struct {
	tasks chan func()

	mu     sync.Mutex
	closed bool
}

// NewWorkerPool starts a pool of n persistent workers (n < 1 means
// GOMAXPROCS).
func NewWorkerPool(n int) *WorkerPool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &WorkerPool{tasks: make(chan func())}
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

func (p *WorkerPool) worker() {
	for f := range p.tasks {
		f()
	}
}

// TrySubmit hands the task to an idle worker, reporting false (without
// running it) when every worker is busy or the pool is closed.
func (p *WorkerPool) TrySubmit(f func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- f:
		return true
	default:
		return false
	}
}

// Close stops the workers once their current tasks finish. Subsequent
// TrySubmit calls report false.
func (p *WorkerPool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
}

// defaultWorkers is the shared pool for machines not owned by a
// platform machine pool.
var (
	defaultWorkersOnce sync.Once
	defaultWorkersPool *WorkerPool
)

func defaultWorkers() *WorkerPool {
	defaultWorkersOnce.Do(func() { defaultWorkersPool = NewWorkerPool(0) })
	return defaultWorkersPool
}
