// Package interp executes IR modules the way an OpenCL device would run
// native kernel code: an NDRange of work-groups, work-items running
// concurrently within a group (one goroutine each), work-group barriers,
// atomics, and byte-addressed memory split into regions (buffers, local
// scratchpads, private allocas).
//
// The interpreter is the functional half of the device substitute: the
// timing half lives in internal/sim. It is used to verify that the accelOS
// kernel transformation preserves semantics (the transformed dyn_sched
// kernel must produce bit-identical buffers).
package interp

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/ir"
)

// Region is a contiguous block of byte-addressable memory. Pointers are
// (region, offset) pairs; storing a pointer to memory encodes the region's
// registry ID.
type Region struct {
	ID    int
	Bytes []byte
	Space ir.AddrSpace
}

// Ptr is a pointer value: a region plus a byte offset.
type Ptr struct {
	R   *Region
	Off int64
}

// IsNull reports whether the pointer is null.
func (p Ptr) IsNull() bool { return p.R == nil }

// Value is a runtime value: one of the scalar kinds or a pointer.
type Value struct {
	K ir.Kind
	I int64
	F float64
	P Ptr
}

// IntV returns an i32 value.
func IntV(v int64) Value { return Value{K: ir.I32, I: v} }

// LongV returns an i64 value.
func LongV(v int64) Value { return Value{K: ir.I64, I: v} }

// BoolV returns an i1 value.
func BoolV(b bool) Value {
	v := int64(0)
	if b {
		v = 1
	}
	return Value{K: ir.Bool, I: v}
}

// FloatV returns a float value.
func FloatV(v float64) Value { return Value{K: ir.F32, F: v} }

// DoubleV returns a double value.
func DoubleV(v float64) Value { return Value{K: ir.F64, F: v} }

// PtrV returns a pointer value.
func PtrV(p Ptr, space ir.AddrSpace) Value {
	return Value{K: ir.Pointer, P: p}
}

// localArgMagic tags a Value produced by LocalArgV. The sentinel never
// reaches kernel code: Launch replaces it with a fresh per-work-group
// local region before any work-item runs.
const localArgMagic = -0x10ca1a59

// LocalArgV returns a local-memory argument placeholder of the given
// byte size (the host API's clSetKernelArg(size, NULL) form). At launch,
// every work-group receives its own zeroed local region of that size in
// place of the placeholder, shared by the group's work-items.
func LocalArgV(size int64) Value {
	return Value{K: ir.Pointer, I: localArgMagic, P: Ptr{Off: size}}
}

// localArgSize reports whether v is a LocalArgV placeholder and, if so,
// its requested size.
func localArgSize(v Value) (int64, bool) {
	if v.K == ir.Pointer && v.P.R == nil && v.I == localArgMagic {
		return v.P.Off, true
	}
	return 0, false
}

// Bool reports the truthiness of an integer value.
func (v Value) Bool() bool { return v.I != 0 }

// Machine owns the memory registry and executes kernel launches over a
// module.
type Machine struct {
	Mod *ir.Module

	// Engine selects the execution engine: the bytecode VM (default) or
	// the tree-walking reference interpreter.
	Engine Engine

	// Workers is the persistent worker set VM launches borrow parallel
	// group runners from (opencl.MachinePool seeds it per platform).
	// Nil machines share a process-wide default pool.
	Workers *WorkerPool

	mu      sync.Mutex
	regions []*Region

	// MaxWorkItems bounds a single launch as a safety net against
	// runaway NDRanges in tests. Zero means no limit.
	MaxWorkItems int64

	// MaxSteps bounds the total instructions one Launch may execute
	// across all its work-items and call frames. Zero means the default
	// budget (defaultMaxSteps).
	MaxSteps int64

	// prog is the compiled bytecode of Mod, resolved lazily through the
	// shared program cache. Machines are owned by one launch at a time
	// (the pool hands them out exclusively), so no lock is needed.
	prog *Prog

	// Profiler, when set, collects sampled execution profiles for VM
	// launches on this machine (see NewProfiler; the tree-walking engine
	// ignores it). Like prog, the field is unlocked because a machine is
	// owned by one launch at a time; the profiler itself is safe to share
	// across machines.
	Profiler *Profiler

	// WarpStats, when set, receives per-launch warp execution statistics
	// (warps formed, lane occupancy, divergence spills) from VM launches
	// that ran in warp mode. Like Profiler, it is per-launch-exclusive on
	// the machine and may be shared across machines if the sink itself is
	// thread-safe.
	WarpStats WarpStatsSink

	// Name labels the machine in trace output (opencl.MachinePool assigns
	// "mach-N"); empty for anonymous machines.
	Name string

	// Tier, when set, is notified after every launch (TierController.
	// Observe) so hot kernels get promoted to an optimized recompile.
	// Per-launch-exclusive like Profiler; the controller is shared.
	Tier *TierController

	// interrupt, when set, aborts the launch executing on the machine at
	// its next budget flush (see Interrupt); cleared by Reset.
	interrupt atomic.Pointer[string]
}

// Interrupt requests that the launch currently executing on the machine
// (and any later one, until Reset) abort mid-slice: the next instruction
// budget flush panics an execution trap carrying msg, which the engine
// recovers into the launch error. This is the watchdog's lever against a
// kernel stuck inside one slice — a slice-boundary Cancel never lands if
// the slice itself does not terminate.
func (m *Machine) Interrupt(msg string) {
	if msg == "" {
		msg = "machine interrupted"
	}
	m.interrupt.Store(&msg)
}

// Interrupted reports whether an interrupt is pending on the machine.
func (m *Machine) Interrupted() bool { return m.interrupt.Load() != nil }

// checkInterrupt panics the pending interrupt as an execution trap, if
// one is set. It runs on the budget-flush path (once per stepBatch
// instructions per work-item), so both engines observe interrupts
// promptly without a per-instruction atomic.
func (m *Machine) checkInterrupt() {
	if msg := m.interrupt.Load(); msg != nil {
		panic(trap{*msg})
	}
}

// Program returns the machine's compiled bytecode, compiling the module
// through the shared cache on first use. Pooled machines keep it across
// Reset, so sliced launches and re-plans reuse the compiled form.
func (m *Machine) Program() *Prog {
	if m.prog == nil {
		m.prog = SharedProgram(m.Mod)
	}
	return m.prog
}

// UseProgram seeds the machine with an already-compiled program (the
// opencl layer caches one per built Program). Programs for a different
// module are ignored.
func (m *Machine) UseProgram(p *Prog) {
	if p != nil && p.Mod == m.Mod {
		m.prog = p
	}
}

// Atomic read-modify-writes must serialize across machines, not per
// machine: with zero-copy buffer binding, concurrent launches on
// separate machines can target the same bound bytes through distinct
// Region objects, so per-machine (or per-region) locking would silently
// break their atomicity. A single global mutex would instead serialize
// every tenant's scheduling dequeues; the lock is therefore striped by
// the backing array, so only launches genuinely sharing memory contend.
const atomicStripes = 64

var atomicMus [atomicStripes]sync.Mutex

// atomicLock returns the stripe lock for the pointer's backing array.
func atomicLock(p Ptr) *sync.Mutex {
	var addr uintptr
	if p.R != nil {
		addr = uintptr(unsafe.Pointer(unsafe.SliceData(p.R.Bytes)))
	}
	return &atomicMus[(addr>>6)%atomicStripes]
}

// NewMachine returns a machine for the module.
func NewMachine(mod *ir.Module) *Machine {
	m := &Machine{Mod: mod}
	// Region ID 0 is reserved so that a zero word never decodes to a
	// valid pointer.
	m.regions = append(m.regions, nil)
	return m
}

// NewRegion allocates a zeroed region of the given size.
func (m *Machine) NewRegion(size int64, space ir.AddrSpace) *Region {
	return m.BindRegion(make([]byte, size), space)
}

// BindRegion registers a region backed by caller-owned bytes: loads and
// stores go straight through to the slice, with no copy in either
// direction. This is how the host runtime maps device buffers into the
// machine — the interpreter's equivalent of the GPU reading accelerator
// memory in place.
func (m *Machine) BindRegion(bytes []byte, space ir.AddrSpace) *Region {
	r := &Region{Bytes: bytes, Space: space}
	m.registerRegion(r)
	return r
}

// registerRegion assigns the region an ID in the machine's registry so
// pointers into it can be encoded as memory words. Host-visible regions
// register eagerly; the VM's arena-allocated allocas register lazily,
// on the first encode — most never need an ID at all.
func (m *Machine) registerRegion(r *Region) {
	m.mu.Lock()
	if r.ID == 0 {
		r.ID = len(m.regions)
		m.regions = append(m.regions, r)
	}
	m.mu.Unlock()
}

// Reset drops every region from the registry so a pooled machine can be
// reused without accumulating dead regions (and without keeping bound
// buffer bytes alive). Pointers stored into surviving memory before the
// reset become dangling, exactly as across separate machines.
func (m *Machine) Reset() {
	m.interrupt.Store(nil)
	m.mu.Lock()
	m.regions = m.regions[:1]
	m.mu.Unlock()
}

// regionByID resolves an encoded region ID.
func (m *Machine) regionByID(id int) *Region {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id <= 0 || id >= len(m.regions) {
		return nil
	}
	return m.regions[id]
}

const ptrOffBits = 40

// encodePtr packs a pointer into a 64-bit word for in-memory storage,
// registering the target region on first encode.
func (m *Machine) encodePtr(p Ptr) uint64 {
	if p.R == nil {
		return 0
	}
	if p.R.ID == 0 {
		m.registerRegion(p.R)
	}
	if p.Off < 0 || p.Off >= 1<<ptrOffBits {
		panic(trap{fmt.Sprintf("pointer offset %d out of encodable range", p.Off)})
	}
	return uint64(p.R.ID)<<ptrOffBits | uint64(p.Off)
}

// decodePtr unpacks a stored pointer word.
func (m *Machine) decodePtr(w uint64) Ptr {
	if w == 0 {
		return Ptr{}
	}
	id := int(w >> ptrOffBits)
	off := int64(w & (1<<ptrOffBits - 1))
	r := m.regionByID(id)
	if r == nil {
		panic(trap{fmt.Sprintf("load of dangling pointer word %#x", w)})
	}
	return Ptr{R: r, Off: off}
}

// trap is an execution fault (out-of-bounds access, division by zero, ...).
type trap struct{ msg string }

func (t trap) Error() string { return "interp: " + t.msg }

func checkBounds(p Ptr, size int64) {
	if p.IsNull() {
		panic(trap{"null pointer dereference"})
	}
	if p.Off < 0 || p.Off+size > int64(len(p.R.Bytes)) {
		panic(trap{fmt.Sprintf("out-of-bounds access: offset %d size %d in region of %d bytes", p.Off, size, len(p.R.Bytes))})
	}
}

// load reads a typed value from memory.
func (m *Machine) load(t *ir.Type, p Ptr) Value {
	size := t.Size()
	checkBounds(p, size)
	b := p.R.Bytes[p.Off:]
	switch t.Kind {
	case ir.Bool:
		return Value{K: ir.Bool, I: int64(b[0] & 1)}
	case ir.I32:
		return Value{K: ir.I32, I: int64(int32(binary.LittleEndian.Uint32(b)))}
	case ir.I64:
		return Value{K: ir.I64, I: int64(binary.LittleEndian.Uint64(b))}
	case ir.F32:
		return Value{K: ir.F32, F: float64(math.Float32frombits(binary.LittleEndian.Uint32(b)))}
	case ir.F64:
		return Value{K: ir.F64, F: math.Float64frombits(binary.LittleEndian.Uint64(b))}
	case ir.Pointer:
		return Value{K: ir.Pointer, P: m.decodePtr(binary.LittleEndian.Uint64(b))}
	}
	panic(trap{fmt.Sprintf("load of unsupported type %s", t)})
}

// store writes a typed value to memory.
func (m *Machine) store(t *ir.Type, v Value, p Ptr) {
	size := t.Size()
	checkBounds(p, size)
	b := p.R.Bytes[p.Off:]
	switch t.Kind {
	case ir.Bool:
		b[0] = byte(v.I & 1)
	case ir.I32:
		binary.LittleEndian.PutUint32(b, uint32(v.I))
	case ir.I64:
		binary.LittleEndian.PutUint64(b, uint64(v.I))
	case ir.F32:
		binary.LittleEndian.PutUint32(b, math.Float32bits(float32(v.F)))
	case ir.F64:
		binary.LittleEndian.PutUint64(b, math.Float64bits(v.F))
	case ir.Pointer:
		binary.LittleEndian.PutUint64(b, m.encodePtr(v.P))
	default:
		panic(trap{fmt.Sprintf("store of unsupported type %s", t)})
	}
}

// Buffer helpers for host code (the mini OpenCL runtime).

// WriteInt32s copies host data into a region at a byte offset.
func (r *Region) WriteInt32s(off int64, data []int32) {
	for i, v := range data {
		binary.LittleEndian.PutUint32(r.Bytes[off+int64(i)*4:], uint32(v))
	}
}

// ReadInt32s copies data out of a region.
func (r *Region) ReadInt32s(off int64, n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(r.Bytes[off+int64(i)*4:]))
	}
	return out
}

// WriteInt64s copies host data into a region.
func (r *Region) WriteInt64s(off int64, data []int64) {
	for i, v := range data {
		binary.LittleEndian.PutUint64(r.Bytes[off+int64(i)*8:], uint64(v))
	}
}

// ReadInt64s copies data out of a region.
func (r *Region) ReadInt64s(off int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(r.Bytes[off+int64(i)*8:]))
	}
	return out
}

// WriteFloat32s copies host data into a region.
func (r *Region) WriteFloat32s(off int64, data []float32) {
	for i, v := range data {
		binary.LittleEndian.PutUint32(r.Bytes[off+int64(i)*4:], math.Float32bits(v))
	}
}

// ReadFloat32s copies data out of a region.
func (r *Region) ReadFloat32s(off int64, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(r.Bytes[off+int64(i)*4:]))
	}
	return out
}

// barrier is a reusable (cyclic) synchronization barrier for the
// work-items of one work-group (tree-walking engine only; the VM
// suspends work-items cooperatively instead).
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
	dead  bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// barrierPool recycles barriers across work-groups and launches; a
// barrier is only returned after every work-item goroutine has joined,
// so resetting its state is safe.
var barrierPool = sync.Pool{New: func() any { return newBarrier(0) }}

func getBarrier(n int) *barrier {
	b := barrierPool.Get().(*barrier)
	b.n, b.count, b.gen, b.dead = n, 0, 0, false
	return b
}

func putBarrier(b *barrier) { barrierPool.Put(b) }

// poisonMsg marks the collateral unwind of work-items whose sibling
// trapped; error draining prefers the genuine fault over these.
const poisonMsg = "barrier poisoned by sibling work-item fault"

func isPoison(err error) bool {
	t, ok := err.(trap)
	return ok && t.msg == poisonMsg
}

// await blocks until all n work-items arrive. If the barrier has been
// poisoned (a sibling work-item trapped), it panics to unwind this
// work-item too.
func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		panic(trap{poisonMsg})
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen && !b.dead {
		b.cond.Wait()
	}
	if b.dead {
		panic(trap{poisonMsg})
	}
}

// poison wakes all waiters with a fault so a trapped work-group unwinds
// instead of deadlocking.
func (b *barrier) poison() {
	b.mu.Lock()
	b.dead = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
