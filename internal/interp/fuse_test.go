package interp

import (
	"testing"
	"time"

	"repro/internal/clc"
	"repro/internal/ir"
	"repro/internal/passes"
)

// opts used across the fusion tests: fuseOnly isolates the lowering
// fusion from the O1 IR pipeline; o0 is the fully unoptimized baseline.
var (
	fuseOnly = CompileOpts{}
	o0       = CompileOpts{Disable: []string{"fuse"}}
)

func countVMOps(cf *compiledFn, op vmOp) int {
	n := 0
	for _, in := range cf.code {
		if in.op == op {
			n++
		}
	}
	return n
}

func compileKernel(t *testing.T, src, name string, opts CompileOpts) (*ir.Module, *Prog) {
	t.Helper()
	mod, err := clc.Compile(src, name)
	if err != nil {
		t.Fatal(err)
	}
	return mod, CompileModuleOpts(mod, opts)
}

// runSpinOnce executes a 1-item kernel writing to out[0..n) and returns
// the int32 results.
func runKernel(t *testing.T, mod *ir.Module, p *Prog, name string, n int64) []int32 {
	t.Helper()
	m := NewMachine(mod)
	m.UseProgram(p)
	out := m.NewRegion(n*4, ir.Global)
	args := []Value{{K: ir.Pointer, P: Ptr{R: out}}}
	if err := m.Launch(name, args, ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	return out.ReadInt32s(0, int(n))
}

// TestFuseLoadBinStore: the accumulate idiom `mem op= x` lowers to one
// opLoadBinStore, and the fused form computes the same bytes as the
// unfused one.
func TestFuseLoadBinStore(t *testing.T) {
	src := `
kernel void f(global int* out)
{
    out[0] = 3;
    int i;
    for (i = 0; i < 10; ++i) out[0] += i;
}
`
	mod, p := compileKernel(t, src, "f", fuseOnly)
	if n := countVMOps(p.fns["f"], opLoadBinStore); n == 0 {
		t.Error("no opLoadBinStore emitted for the accumulate idiom")
	}
	mod0, p0 := compileKernel(t, src, "f", o0)
	got := runKernel(t, mod, p, "f", 1)
	want := runKernel(t, mod0, p0, "f", 1)
	if got[0] != want[0] {
		t.Errorf("fused=%d unfused=%d", got[0], want[0])
	}
	if want[0] != 48 {
		t.Errorf("reference result %d, want 48", want[0])
	}
}

// TestFuseCmpJump: a loop's cmp+condbr pair lowers to opCmpJump with no
// free-standing opCmp left for the single-use predicate.
func TestFuseCmpJump(t *testing.T) {
	src := `
kernel void f(global int* out)
{
    int acc = 0;
    int i;
    for (i = 0; i < 7; ++i) acc += 2;
    out[0] = acc;
}
`
	mod, p := compileKernel(t, src, "f", DefaultCompileOpts)
	cf := p.fns["f"]
	if n := countVMOps(cf, opCmpJump); n == 0 {
		t.Error("no opCmpJump emitted for the loop test")
	}
	if n := countVMOps(cf, opCmp); n != 0 {
		t.Errorf("%d free-standing opCmp remain beside the fused form", n)
	}
	got := runKernel(t, mod, p, "f", 1)
	if got[0] != 14 {
		t.Errorf("fused loop computed %d, want 14", got[0])
	}
}

// TestFuseGEPLoad: subscript reads fuse into opLoadIdx (register index)
// or opLoadOff (constant index).
func TestFuseGEPLoad(t *testing.T) {
	src := `
kernel void f(global int* out)
{
    int i;
    for (i = 1; i < 8; ++i) out[i] = out[i - 1] + out[0];
}
`
	// The constant-index form needs constfold to collapse the sext'd
	// subscript first, so compile with the full pipeline.
	mod, p := compileKernel(t, src, "f", DefaultCompileOpts)
	cf := p.fns["f"]
	if countVMOps(cf, opLoadIdx) == 0 {
		t.Error("no opLoadIdx emitted for out[i-1]")
	}
	if countVMOps(cf, opLoadOff) == 0 {
		t.Error("no opLoadOff emitted for out[0]")
	}
	mod0, p0 := compileKernel(t, src, "f", o0)
	m := NewMachine(mod)
	m.UseProgram(p)
	out := m.NewRegion(8*4, ir.Global)
	out.WriteInt32s(0, []int32{1, 0, 0, 0, 0, 0, 0, 0})
	if err := m.Launch("f", []Value{{K: ir.Pointer, P: Ptr{R: out}}}, ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	m0 := NewMachine(mod0)
	m0.UseProgram(p0)
	out0 := m0.NewRegion(8*4, ir.Global)
	out0.WriteInt32s(0, []int32{1, 0, 0, 0, 0, 0, 0, 0})
	if err := m0.Launch("f", []Value{{K: ir.Pointer, P: Ptr{R: out0}}}, ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	got, want := out.ReadInt32s(0, 8), out0.ReadInt32s(0, 8)
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("out[%d]: fused=%d unfused=%d", i, got[i], want[i])
		}
	}
}

// TestFuseBinStore: a computed value stored once (not reloaded) fuses
// into opBinStore.
func TestFuseBinStore(t *testing.T) {
	m := ir.NewModule("bs")
	f := m.NewFunction("bs", ir.VoidT,
		&ir.Param{Nam: "out", Ty: ir.PointerTo(ir.I32T, ir.Global), Idx: 0},
		&ir.Param{Nam: "x", Ty: ir.I32T, Idx: 1},
		&ir.Param{Nam: "y", Ty: ir.I32T, Idx: 2})
	f.Kernel = true
	b := ir.NewBuilder(f)
	// Use xor so the specialization table stays out of the way of the
	// shape check... (xor IS specialized; sub distinguishes nothing
	// here — opBinStore carries the kind itself).
	sum := b.Bin(ir.Xor, f.Params[1], f.Params[2])
	b.Store(sum, f.Params[0])
	b.Ret(nil)
	p := CompileModuleOpts(m, CompileOpts{})
	if countVMOps(p.fns["bs"], opBinStore) != 1 {
		t.Fatal("bin+store pair did not fuse")
	}
	mach := NewMachine(m)
	mach.UseProgram(p)
	out := mach.NewRegion(4, ir.Global)
	args := []Value{{K: ir.Pointer, P: Ptr{R: out}}, IntV(0b1100), IntV(0b1010)}
	if err := mach.Launch("bs", args, ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := out.ReadInt32s(0, 1)[0]; got != 0b0110 {
		t.Errorf("fused xor-store wrote %b, want 110", got)
	}
}

// TestFuseMultiUseBlocked: a value with a second consumer must NOT
// fuse — the intermediate register write is observable.
func TestFuseMultiUseBlocked(t *testing.T) {
	m := ir.NewModule("mu")
	f := m.NewFunction("mu", ir.VoidT,
		&ir.Param{Nam: "out", Ty: ir.PointerTo(ir.I32T, ir.Global), Idx: 0},
		&ir.Param{Nam: "x", Ty: ir.I32T, Idx: 1})
	f.Kernel = true
	b := ir.NewBuilder(f)
	sum := b.Bin(ir.Xor, f.Params[1], f.Params[1])
	b.Store(sum, f.Params[0]) // candidate pair
	gep := b.GEP(f.Params[0], ir.CI(1))
	b.Store(sum, gep) // second use of sum
	b.Ret(nil)
	p := CompileModuleOpts(m, CompileOpts{})
	cf := p.fns["mu"]
	if countVMOps(cf, opBinStore) != 0 {
		t.Error("multi-use bin fused into opBinStore; second store now reads a stale register")
	}
}

// TestPhiLoweringSwap: two phis that exchange values around a loop form
// a parallel-copy cycle; the lowered moves must go through the scratch
// register, not clobber one side.
func TestPhiLoweringSwap(t *testing.T) {
	m := ir.NewModule("swap")
	f := m.NewFunction("swap", ir.VoidT,
		&ir.Param{Nam: "out", Ty: ir.PointerTo(ir.I32T, ir.Global), Idx: 0},
		&ir.Param{Nam: "n", Ty: ir.I32T, Idx: 1})
	f.Kernel = true
	b := ir.NewBuilder(f)
	entry := b.Cur
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(head)
	b.SetInsert(head)
	i := b.Phi(ir.I32T)
	x := b.Phi(ir.I32T)
	y := b.Phi(ir.I32T)
	cond := b.Cmp(ir.ILT, i, f.Params[1])
	b.CondBr(cond, body, exit)
	b.SetInsert(body)
	i2 := b.Bin(ir.Add, i, ir.CI(1))
	b.Br(head)
	i.AddIncoming(ir.CI(0), entry)
	i.AddIncoming(i2, body)
	x.AddIncoming(ir.CI(11), entry)
	x.AddIncoming(y, body) // x <- y and y <- x: a genuine swap cycle
	y.AddIncoming(ir.CI(22), entry)
	y.AddIncoming(x, body)
	b.SetInsert(exit)
	b.Store(x, f.Params[0])
	g := b.GEP(f.Params[0], ir.CI(1))
	b.Store(y, g)
	b.Ret(nil)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	// Compile WITHOUT the O1 pipeline (the IR is already SSA) so the
	// phis reach the lowering as written.
	p := CompileModuleOpts(m, CompileOpts{})
	run := func(n int32) (int32, int32) {
		mach := NewMachine(m)
		mach.UseProgram(p)
		out := mach.NewRegion(8, ir.Global)
		if err := mach.Launch("swap", []Value{{K: ir.Pointer, P: Ptr{R: out}}, IntV(int64(n))}, ND1(1, 1)); err != nil {
			t.Fatal(err)
		}
		r := out.ReadInt32s(0, 2)
		return r[0], r[1]
	}
	if x0, y0 := run(0); x0 != 11 || y0 != 22 {
		t.Errorf("0 swaps: got (%d,%d), want (11,22)", x0, y0)
	}
	if x1, y1 := run(1); x1 != 22 || y1 != 11 {
		t.Errorf("1 swap: got (%d,%d), want (22,11)", x1, y1)
	}
	if x2, y2 := run(2); x2 != 11 || y2 != 22 {
		t.Errorf("2 swaps: got (%d,%d), want (11,22)", x2, y2)
	}
}

// TestTreeWalkerPhi: the reference engine executes SSA-form IR (phis
// included) identically to the VM.
func TestTreeWalkerPhi(t *testing.T) {
	src := `
kernel void f(global int* out)
{
    int acc = 0;
    int i;
    for (i = 0; i < 9; ++i) acc += i ^ 3;
    out[0] = acc;
}
`
	mod, err := clc.Compile(src, "f")
	if err != nil {
		t.Fatal(err)
	}
	// Optimize once, in place, so BOTH engines execute the same
	// phi-form IR: the VM through its lowering, the tree-walker by
	// interpreting the phis directly (the semantics in exec.go).
	if err := passes.RunO1(mod); err != nil {
		t.Fatal(err)
	}
	p := CompileModuleOpts(mod, CompileOpts{})

	vm := NewMachine(mod)
	vm.UseProgram(p)
	outVM := vm.NewRegion(4, ir.Global)
	if err := vm.Launch("f", []Value{{K: ir.Pointer, P: Ptr{R: outVM}}}, ND1(1, 1)); err != nil {
		t.Fatal(err)
	}

	tw := NewMachine(mod)
	tw.Engine = EngineTreeWalk
	outTW := tw.NewRegion(4, ir.Global)
	if err := tw.Launch("f", []Value{{K: ir.Pointer, P: Ptr{R: outTW}}}, ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	a, b := outVM.ReadInt32s(0, 1)[0], outTW.ReadInt32s(0, 1)[0]
	if a != b {
		t.Errorf("vm=%d treewalk=%d", a, b)
	}
}

// TestWorkerPool: tasks run, a busy pool rejects instead of queueing,
// and Close is idempotent.
func TestWorkerPool(t *testing.T) {
	p := NewWorkerPool(2)
	done := make(chan int, 2)
	block := make(chan struct{})
	// Handoff is rendezvous-based: a freshly started worker needs a
	// moment to reach its receive, so retry briefly.
	submit := func(f func()) bool {
		for i := 0; i < 1000; i++ {
			if p.TrySubmit(f) {
				return true
			}
			time.Sleep(time.Millisecond)
		}
		return false
	}
	if !submit(func() { <-block; done <- 1 }) {
		t.Fatal("idle pool rejected a task")
	}
	if !submit(func() { <-block; done <- 2 }) {
		t.Fatal("second worker rejected a task")
	}
	if p.TrySubmit(func() {}) {
		t.Error("fully busy pool accepted a task (it would queue, not run)")
	}
	close(block)
	<-done
	<-done
	p.Close()
	if p.TrySubmit(func() {}) {
		t.Error("closed pool accepted a task")
	}
	p.Close() // idempotent
}
