package interp

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the VM execution-profile collector: optional per-opcode
// and per-block dynamic frequencies plus per-kernel instruction, barrier
// and fault totals — the measurement layer tiered (profile-guided)
// execution needs. Profiling is sampled at work-group granularity: a
// profiled group runs a separate dispatch loop (vm_profile.go) with
// counting hooks, every other group runs the unmodified hot loop, so the
// overhead scales with 1/SampleEvery instead of with the counting cost.
// Faults are counted on every group, sampled or not.

// numOps sizes per-opcode count tables (opBinCmpJump is the last opcode).
const numOps = int(opBinCmpJump) + 1

// opNames names every vmOp for profile dumps; keep in sync with the
// opcode enum in compile.go.
var opNames = [numOps]string{
	opAlloca:       "alloca",
	opAllocaLocal:  "alloca.local",
	opLoad:         "load",
	opStore:        "store",
	opGEP:          "gep",
	opGEPConst:     "gep.const",
	opBin:          "bin",
	opCmp:          "cmp",
	opCast:         "cast",
	opSelect:       "select",
	opAtomic:       "atomic",
	opBarrier:      "barrier",
	opCall:         "call",
	opWI:           "wi",
	opMath:         "math",
	opJump:         "jump",
	opCondJump:     "condjump",
	opRet:          "ret",
	opTrap:         "trap",
	opMove:         "move",
	opCmpJump:      "cmp+jump",
	opBinStore:     "bin+store",
	opLoadBinStore: "load+bin+store",
	opLoadIdx:      "gep+load",
	opLoadOff:      "gepconst+load",
	opAddI32:       "add.i32",
	opSubI32:       "sub.i32",
	opMulI32:       "mul.i32",
	opAndI32:       "and.i32",
	opOrI32:        "or.i32",
	opXorI32:       "xor.i32",
	opAddI64:       "add.i64",
	opAddF32:       "add.f32",
	opSubF32:       "sub.f32",
	opMulF32:       "mul.f32",
	opDivF32:       "div.f32",
	opBinBin:       "bin+bin",
	opBinCmpJump:   "bin+cmp+jump",
}

// defaultSampleEvery is the sampling period when ProfileOptions leaves
// it zero: one work-group in 64 runs the counting loop, which keeps the
// overhead on dispatch-bound benchmarks well under the 3% CI budget.
const defaultSampleEvery = 64

// ProfileOptions configures a Profiler.
type ProfileOptions struct {
	// PerOpcode collects dynamic opcode frequencies.
	PerOpcode bool
	// PerBlock collects basic-block entry counts per compiled function.
	PerBlock bool
	// SampleEvery profiles one work-group in N (0: defaultSampleEvery;
	// 1: every group — exact counts, full counting overhead).
	SampleEvery int64
}

// Profiler collects VM execution profiles for the launches of the
// machines it is installed on (Machine.Profiler; the opencl.MachinePool
// seeds it across a platform's pooled machines). Only the bytecode VM
// engine is profiled; the tree-walking reference engine ignores it.
type Profiler struct {
	opts  ProfileOptions
	every int64

	mu      sync.Mutex
	kernels map[string]*KernelProfile
}

// NewProfiler returns a profiler with the given options.
func NewProfiler(opts ProfileOptions) *Profiler {
	every := opts.SampleEvery
	if every <= 0 {
		every = defaultSampleEvery
	}
	return &Profiler{opts: opts, every: every, kernels: make(map[string]*KernelProfile)}
}

// kernel returns (creating on first use) the per-kernel aggregate.
func (p *Profiler) kernel(name string) *KernelProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	kp := p.kernels[name]
	if kp == nil {
		kp = &KernelProfile{name: name}
		p.kernels[name] = kp
	}
	return kp
}

// KernelProfile aggregates the sampled groups of one kernel. Group and
// fault counters are atomic (every group touches them); the sampled
// aggregates are flushed under the mutex once per sampled group.
type KernelProfile struct {
	name       string
	groupsSeen atomic.Int64
	launches   atomic.Int64 // seeds the per-launch sampling phase
	faults     atomic.Int64

	// Warp execution stats, aggregated per retired launch (every launch,
	// not only sampled groups): warps formed, lanes across them,
	// divergence spills and barrier re-formations.
	warps       atomic.Int64
	warpLanes   atomic.Int64
	warpSpills  atomic.Int64
	warpReforms atomic.Int64

	mu            sync.Mutex
	groupsSampled int64
	instrs        int64
	barriers      int64
	opcodes       [numOps]int64
	blocks        map[*compiledFn][]int64
}

// groupProfile is the per-sampled-group scratch the profiled dispatch
// loop counts into — plain non-atomic fields owned by one worker, merged
// into the KernelProfile when the group retires.
type groupProfile struct {
	perOp    bool
	perBlock bool
	instrs   int64
	barriers int64
	opcodes  [numOps]int64
	blocks   map[*compiledFn][]int64
}

func (p *Profiler) newGroupProfile() *groupProfile {
	gp := &groupProfile{perOp: p.opts.PerOpcode, perBlock: p.opts.PerBlock}
	if gp.perBlock {
		gp.blocks = make(map[*compiledFn][]int64, 4)
	}
	return gp
}

// enterBlock attributes a control transfer to the basic block containing
// pc. Jump threading can land transfers mid-block, so the containing
// block is found by binary search over the sorted block-start table; pcs
// in the edge-stub region past the last block attribute to its
// "(edge-copies)" pseudo-block.
func (gp *groupProfile) enterBlock(cf *compiledFn, pc int32) {
	starts := cf.blockStarts
	if len(starts) == 0 {
		return
	}
	i := sort.Search(len(starts), func(i int) bool { return starts[i] > pc }) - 1
	if i < 0 {
		return
	}
	hits := gp.blocks[cf]
	if hits == nil {
		hits = make([]int64, len(starts))
		gp.blocks[cf] = hits
	}
	hits[i]++
}

// enterBlockN is enterBlock weighted by the live-lane count: the warp
// dispatch loop (warp.go) attributes one entry per lane so sampled
// block counts stay engine-invariant.
func (gp *groupProfile) enterBlockN(cf *compiledFn, pc int32, n int64) {
	starts := cf.blockStarts
	if len(starts) == 0 {
		return
	}
	i := sort.Search(len(starts), func(i int) bool { return starts[i] > pc }) - 1
	if i < 0 {
		return
	}
	hits := gp.blocks[cf]
	if hits == nil {
		hits = make([]int64, len(starts))
		gp.blocks[cf] = hits
	}
	hits[i] += n
}

// flush merges one retired sampled group into the kernel aggregate.
func (kp *KernelProfile) flush(gp *groupProfile) {
	kp.mu.Lock()
	kp.groupsSampled++
	kp.instrs += gp.instrs
	kp.barriers += gp.barriers
	if gp.perOp {
		for i, n := range gp.opcodes {
			kp.opcodes[i] += n
		}
	}
	if gp.perBlock {
		if kp.blocks == nil {
			kp.blocks = make(map[*compiledFn][]int64, len(gp.blocks))
		}
		for cf, hits := range gp.blocks {
			dst := kp.blocks[cf]
			if dst == nil {
				dst = make([]int64, len(hits))
				kp.blocks[cf] = dst
			}
			for i, n := range hits {
				dst[i] += n
			}
		}
	}
	kp.mu.Unlock()
}

// OpcodeCount is one opcode's sampled dynamic frequency.
type OpcodeCount struct {
	Name  string
	Count int64
}

// BlockCount is one basic block's sampled entry count.
type BlockCount struct {
	Fn    string
	Block string
	Hits  int64
}

// KernelProfileSnapshot is the exported view of one kernel's profile.
type KernelProfileSnapshot struct {
	Kernel      string
	SampleEvery int64
	Groups      int64         // work-groups executed (sampled or not)
	Sampled     int64         // work-groups that ran the counting loop
	Instrs      int64         // instructions in sampled groups
	Barriers    int64         // barrier suspensions in sampled groups
	Faults      int64         // faulting groups (counted unsampled)
	Warps       int64         // warps formed (all groups, warp mode only)
	WarpLanes   int64         // lanes across formed warps (occupancy numerator)
	WarpSpills  int64         // divergence fallbacks onto the scalar path
	WarpReforms int64         // barrier re-formations back into vector dispatch
	Opcodes     []OpcodeCount // nonzero counts, descending
	Blocks      []BlockCount  // nonzero entry counts, descending
}

// ResetKernel discards one kernel's accumulated profile, including its
// launch ordinal (which seeds the sampling phase). The tier controller
// calls it after a hot-swap so tier-1 decisions, if a further promotion
// is ever added, would not be skewed by stale tier-0 counts — and so
// stale *compiledFn block tables from the replaced program do not pin
// the old code alive.
func (p *Profiler) ResetKernel(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	delete(p.kernels, name)
	p.mu.Unlock()
}

// KernelInstrEstimate returns the estimated total dynamic instruction
// count for one kernel (sampled count scaled by the sampling period),
// without building a full snapshot — the tier controller's hotness test
// runs on the launch path.
func (p *Profiler) KernelInstrEstimate(name string) int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	kp := p.kernels[name]
	p.mu.Unlock()
	if kp == nil {
		return 0
	}
	kp.mu.Lock()
	n := kp.instrs
	kp.mu.Unlock()
	return n * p.every
}

// Snapshot returns the per-kernel profiles, sorted by kernel name.
func (p *Profiler) Snapshot() []KernelProfileSnapshot {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	kps := make([]*KernelProfile, 0, len(p.kernels))
	for _, kp := range p.kernels {
		kps = append(kps, kp)
	}
	p.mu.Unlock()
	sort.Slice(kps, func(i, j int) bool { return kps[i].name < kps[j].name })

	out := make([]KernelProfileSnapshot, 0, len(kps))
	for _, kp := range kps {
		s := KernelProfileSnapshot{
			Kernel:      kp.name,
			SampleEvery: p.every,
			Groups:      kp.groupsSeen.Load(),
			Faults:      kp.faults.Load(),
			Warps:       kp.warps.Load(),
			WarpLanes:   kp.warpLanes.Load(),
			WarpSpills:  kp.warpSpills.Load(),
			WarpReforms: kp.warpReforms.Load(),
		}
		kp.mu.Lock()
		s.Sampled = kp.groupsSampled
		s.Instrs = kp.instrs
		s.Barriers = kp.barriers
		for op, n := range kp.opcodes {
			if n > 0 {
				s.Opcodes = append(s.Opcodes, OpcodeCount{Name: opNames[op], Count: n})
			}
		}
		for cf, hits := range kp.blocks {
			for b, n := range hits {
				if n > 0 {
					s.Blocks = append(s.Blocks, BlockCount{Fn: cf.fn.Name, Block: cf.blockNames[b], Hits: n})
				}
			}
		}
		kp.mu.Unlock()
		sort.SliceStable(s.Opcodes, func(i, j int) bool { return s.Opcodes[i].Count > s.Opcodes[j].Count })
		sort.SliceStable(s.Blocks, func(i, j int) bool {
			if s.Blocks[i].Hits != s.Blocks[j].Hits {
				return s.Blocks[i].Hits > s.Blocks[j].Hits
			}
			if s.Blocks[i].Fn != s.Blocks[j].Fn {
				return s.Blocks[i].Fn < s.Blocks[j].Fn
			}
			return s.Blocks[i].Block < s.Blocks[j].Block
		})
		out = append(out, s)
	}
	return out
}

// Dump writes a human-readable profile report.
func (p *Profiler) Dump(w io.Writer) {
	snaps := p.Snapshot()
	if len(snaps) == 0 {
		fmt.Fprintln(w, "no kernels profiled")
		return
	}
	for _, s := range snaps {
		fmt.Fprintf(w, "kernel %s: groups %d (sampled %d, 1 in %d), instrs %d, barriers %d, faults %d\n",
			s.Kernel, s.Groups, s.Sampled, s.SampleEvery, s.Instrs, s.Barriers, s.Faults)
		if s.Warps > 0 {
			fmt.Fprintf(w, "  warps: %d (avg %.1f lanes), divergence fallbacks %d, re-forms %d\n",
				s.Warps, float64(s.WarpLanes)/float64(s.Warps), s.WarpSpills, s.WarpReforms)
		}
		if len(s.Opcodes) > 0 {
			fmt.Fprintf(w, "  opcodes:\n")
			for _, oc := range s.Opcodes {
				fmt.Fprintf(w, "    %-16s %12d (%.1f%%)\n", oc.Name, oc.Count, 100*float64(oc.Count)/float64(s.Instrs))
			}
		}
		if len(s.Blocks) > 0 {
			fmt.Fprintf(w, "  blocks:\n")
			for _, bc := range s.Blocks {
				fmt.Fprintf(w, "    %-32s %12d\n", bc.Fn+"/"+bc.Block, bc.Hits)
			}
		}
	}
}
