package interp

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/ir"
)

// This file is the bytecode compiler: a one-time, per-function pass that
// numbers every ir.Value into a dense register slot (ir.NumberFunction)
// and lowers basic blocks into a flat []instr array with pre-resolved
// operands — register indices instead of map lookups, constants folded
// into a prefilled tail of the register file, callees and builtins bound
// at compile time, and branch targets as pc offsets. The VM (vm.go)
// dispatches over this form; the tree-walking interpreter in exec.go is
// kept as the semantic reference.

// vmOp is a VM opcode. The set is deliberately finer-grained than
// ir.Opcode where pre-resolution pays: builtin calls split into
// work-item, math and IR-function calls, and constant-index GEPs fold
// the scaled offset.
type vmOp uint8

const (
	opAlloca      vmOp = iota // dst = fresh private region of imm bytes (space in sub)
	opAllocaLocal             // dst = work-group local region, slot a, imm bytes
	opLoad                    // dst = load kind from regs[a]
	opStore                   // store regs[a] (kind) to regs[b]
	opGEP                     // dst = regs[a] + regs[b].I*imm
	opGEPConst                // dst = regs[a] + imm (pre-scaled constant index)
	opBin                     // dst = binop sub(regs[a], regs[b]), result kind
	opCmp                     // dst = cmp sub(regs[a], regs[b])
	opCast                    // dst = cast sub(regs[a]) to kind
	opSelect                  // dst = regs[a] ? regs[b] : regs[c]
	opAtomic                  // dst = atomic sub on regs[a] with regs[b] (operand kind)
	opBarrier                 // work-group barrier: suspend the work-item
	opCall                    // dst = call fn(regs[args...])
	opWI                      // dst = work-item builtin sub; dim = a<0 ? imm : regs[a].I
	opMath                    // dst = math builtin sub(regs[a][, regs[b]]) at kind
	opJump                    // pc = imm
	opCondJump                // pc = regs[a] ? b : c
	opRet                     // return regs[a] (a < 0: void)
	opTrap                    // execution fault with msg
)

// Work-item builtin codes (opWI sub).
const (
	wiGlobalID uint8 = iota
	wiLocalID
	wiGroupID
	wiNumGroups
	wiLocalSize
	wiGlobalSize
	wiGlobalOffset
	wiWorkDim
)

var wiBuiltins = map[string]uint8{
	"get_global_id":     wiGlobalID,
	"get_local_id":      wiLocalID,
	"get_group_id":      wiGroupID,
	"get_num_groups":    wiNumGroups,
	"get_local_size":    wiLocalSize,
	"get_global_size":   wiGlobalSize,
	"get_global_offset": wiGlobalOffset,
	"get_work_dim":      wiWorkDim,
}

// instr is one VM instruction. dst/a/b/c are register-file indices (-1
// where unused); imm carries sizes, pre-scaled offsets and jump targets.
type instr struct {
	op   vmOp
	sub  uint8   // BinKind / CmpPred / CastKind / AtomicKind / builtin code / AddrSpace
	kind ir.Kind // operand or result kind where the operation is typed
	dst  int32
	a    int32
	b    int32
	c    int32
	imm  int64
	fn   *compiledFn // opCall target
	args []int32     // opCall argument registers
	msg  string      // opTrap message
}

// compiledFn is the compiled form of one IR function: flat code over a
// register file of nregs Values, of which [0, nparams) are the incoming
// arguments and [constBase, nregs) are prefilled constants.
type compiledFn struct {
	fn        *ir.Function
	code      []instr
	nparams   int
	constBase int
	nregs     int
	consts    []Value

	// regPool recycles register files across frames and launches; files
	// are cleared on Get so stale values (and the regions they pin) do
	// not leak between activations.
	regPool sync.Pool
}

// getRegs returns a cleared register file with the constant tail
// prefilled. The pooled pointer travels with the frame and goes back
// verbatim in putRegs, so frame push/pop allocates nothing.
func (cf *compiledFn) getRegs() *[]Value {
	p := cf.regPool.Get().(*[]Value)
	regs := *p
	clear(regs)
	copy(regs[cf.constBase:], cf.consts)
	return p
}

func (cf *compiledFn) putRegs(p *[]Value) {
	cf.regPool.Put(p)
}

// Prog is a compiled module: the unit the VM executes and the unit the
// host layers cache (opencl.Program keeps one per built program; pooled
// machines resolve theirs through SharedProgram).
type Prog struct {
	Mod *ir.Module

	fns map[string]*compiledFn

	// localSizes assigns every local-space alloca in the module a dense
	// work-group slot; sizes are static (element size × count), so a
	// group's local regions are carved without locks.
	localSizes []int64
}

// CompileModule lowers every defined function of the module to bytecode.
// The module must not be mutated afterwards (callees are resolved to
// compiled-function pointers at this point).
func CompileModule(mod *ir.Module) *Prog {
	p := &Prog{Mod: mod, fns: make(map[string]*compiledFn)}
	// Two phases so calls can reference functions defined later.
	for _, f := range mod.Funcs {
		if !f.IsDecl() {
			p.fns[f.Name] = &compiledFn{fn: f}
		}
	}
	for _, f := range mod.Funcs {
		if !f.IsDecl() {
			p.compileFn(p.fns[f.Name])
		}
	}
	return p
}

// SharedProgram returns the compiled form of mod from a bounded global
// cache, compiling on first use. The bound mirrors the machine pool's
// module cap: a long-lived daemon JITs a module per application program,
// and an unbounded cache would pin every retired module forever.
const maxCachedProgs = 64

var (
	progMu    sync.Mutex
	progCache = make(map[*ir.Module]*Prog)
)

func SharedProgram(mod *ir.Module) *Prog {
	progMu.Lock()
	defer progMu.Unlock()
	if p := progCache[mod]; p != nil {
		return p
	}
	p := CompileModule(mod)
	if len(progCache) >= maxCachedProgs {
		for k := range progCache {
			delete(progCache, k)
			break
		}
	}
	progCache[mod] = p
	return p
}

// constKey dedups constants by kind and bits.
type constKey struct {
	kind ir.Kind
	i    int64
	f    float64
}

type fnCompiler struct {
	prog *Prog
	cf   *compiledFn
	nb   *ir.Numbering

	constRegs map[constKey]int32
	consts    []Value

	blockPC map[*ir.Block]int32
	code    []instr
}

func (p *Prog) compileFn(cf *compiledFn) {
	fn := cf.fn
	c := &fnCompiler{
		prog:      p,
		cf:        cf,
		nb:        ir.NumberFunction(fn),
		constRegs: make(map[constKey]int32),
		blockPC:   make(map[*ir.Block]int32),
	}
	// Pass 1: block pc offsets. Every IR instruction lowers to exactly
	// one VM instruction; unterminated blocks get a trailing trap so
	// execution cannot silently fall through into the next block.
	pc := int32(0)
	for _, b := range fn.Blocks {
		c.blockPC[b] = pc
		pc += int32(len(b.Instrs))
		if !b.Terminated() {
			pc++
		}
	}
	c.code = make([]instr, 0, pc)
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			c.emit(in)
		}
		if !b.Terminated() {
			c.code = append(c.code, instr{op: opTrap, msg: fmt.Sprintf("fell off unterminated block in %s", fn.Name)})
		}
	}
	cf.code = c.code
	cf.nparams = len(fn.Params)
	cf.constBase = c.nb.NumValues()
	cf.consts = c.consts
	cf.nregs = cf.constBase + len(c.consts)
	n := cf.nregs
	cf.regPool.New = func() any {
		s := make([]Value, n)
		return &s
	}
}

// reg resolves an operand to its register index, interning constants.
// The second result is false for values the function does not define
// (invalid IR); the caller lowers the whole instruction to a trap,
// preserving the tree-walker's use-of-undefined-value fault.
func (c *fnCompiler) reg(v ir.Value) (int32, bool) {
	switch k := v.(type) {
	case *ir.ConstInt:
		return c.constReg(constKey{kind: k.Ty.Kind, i: k.V}, Value{K: k.Ty.Kind, I: k.V}), true
	case *ir.ConstFloat:
		return c.constReg(constKey{kind: k.Ty.Kind, f: k.V}, Value{K: k.Ty.Kind, F: k.V}), true
	case *ir.ConstNull:
		return c.constReg(constKey{kind: ir.Pointer}, Value{K: ir.Pointer}), true
	}
	return c.nb.IndexOf(v)
}

func (c *fnCompiler) constReg(key constKey, v Value) int32 {
	if r, ok := c.constRegs[key]; ok {
		return r
	}
	r := int32(c.nb.NumValues() + len(c.consts))
	c.consts = append(c.consts, v)
	c.constRegs[key] = r
	return r
}

// regs resolves all operands; ok is false if any is undefined.
func (c *fnCompiler) regs(vs []ir.Value) ([]int32, bool) {
	out := make([]int32, len(vs))
	for i, v := range vs {
		r, ok := c.reg(v)
		if !ok {
			return nil, false
		}
		out[i] = r
	}
	return out, true
}

func (c *fnCompiler) dst(in *ir.Instr) int32 {
	if !in.HasResult() {
		return -1
	}
	r, _ := c.nb.IndexOf(in)
	return r
}

func (c *fnCompiler) emit(in *ir.Instr) {
	undef := func(v ir.Value) {
		c.code = append(c.code, instr{op: opTrap, msg: fmt.Sprintf("use of undefined value %s", v.Ident())})
	}
	ops, ok := c.regs(in.Args)
	if !ok {
		for _, v := range in.Args {
			if _, defined := c.reg(v); !defined {
				undef(v)
				return
			}
		}
	}
	switch in.Op {
	case ir.OpAlloca:
		size := in.AllocaElem.Size() * in.AllocaCount
		if in.AllocaSpace == ir.Local {
			slot := int32(len(c.prog.localSizes))
			c.prog.localSizes = append(c.prog.localSizes, size)
			c.code = append(c.code, instr{op: opAllocaLocal, dst: c.dst(in), a: slot, imm: size})
			return
		}
		c.code = append(c.code, instr{op: opAlloca, dst: c.dst(in), sub: uint8(in.AllocaSpace), imm: size})
	case ir.OpLoad:
		c.code = append(c.code, instr{op: opLoad, dst: c.dst(in), a: ops[0], kind: in.Ty.Kind})
	case ir.OpStore:
		c.code = append(c.code, instr{op: opStore, a: ops[0], b: ops[1], kind: in.Args[0].Type().Kind})
	case ir.OpGEP:
		elem := in.Ty.Elem.Size()
		if cv, isConst := ir.ConstIntValue(in.Args[1]); isConst {
			c.code = append(c.code, instr{op: opGEPConst, dst: c.dst(in), a: ops[0], imm: cv * elem})
			return
		}
		c.code = append(c.code, instr{op: opGEP, dst: c.dst(in), a: ops[0], b: ops[1], imm: elem})
	case ir.OpBin:
		c.code = append(c.code, instr{op: opBin, dst: c.dst(in), a: ops[0], b: ops[1], sub: uint8(in.BinK), kind: in.Ty.Kind})
	case ir.OpCmp:
		c.code = append(c.code, instr{op: opCmp, dst: c.dst(in), a: ops[0], b: ops[1], sub: uint8(in.CmpK)})
	case ir.OpCast:
		c.code = append(c.code, instr{op: opCast, dst: c.dst(in), a: ops[0], sub: uint8(in.CastK), kind: in.Ty.Kind})
	case ir.OpSelect:
		c.code = append(c.code, instr{op: opSelect, dst: c.dst(in), a: ops[0], b: ops[1], c: ops[2]})
	case ir.OpAtomic:
		c.code = append(c.code, instr{op: opAtomic, dst: c.dst(in), a: ops[0], b: ops[1], sub: uint8(in.AtomK), kind: in.Args[1].Type().Kind})
	case ir.OpBarrier:
		c.code = append(c.code, instr{op: opBarrier})
	case ir.OpCall:
		c.emitCall(in, ops)
	case ir.OpBr:
		c.code = append(c.code, instr{op: opJump, imm: int64(c.blockPC[in.Then])})
	case ir.OpCondBr:
		c.code = append(c.code, instr{op: opCondJump, a: ops[0], b: c.blockPC[in.Then], c: c.blockPC[in.Else]})
	case ir.OpRet:
		r := int32(-1)
		if len(in.Args) > 0 {
			r = ops[0]
		}
		c.code = append(c.code, instr{op: opRet, a: r})
	default:
		c.code = append(c.code, instr{op: opTrap, msg: fmt.Sprintf("unsupported opcode %d", in.Op)})
	}
}

// emitCall pre-binds the callee: defined functions become direct opCall
// to their compiled form; declarations resolve to work-item or math
// builtin opcodes with names, dims and kinds resolved now instead of per
// execution.
func (c *fnCompiler) emitCall(in *ir.Instr, ops []int32) {
	callee := c.prog.Mod.Lookup(in.Callee)
	if callee == nil {
		c.code = append(c.code, instr{op: opTrap, msg: fmt.Sprintf("call to unknown function %q", in.Callee)})
		return
	}
	if !callee.IsDecl() {
		c.code = append(c.code, instr{op: opCall, dst: c.dst(in), fn: c.prog.fns[callee.Name], args: ops})
		return
	}
	name := in.Callee
	if code, ok := wiBuiltins[name]; ok {
		// Dimension argument: constants fold into imm (with the same
		// clamp the reference engine applies); non-constants read a
		// register at runtime; pointer or absent arguments mean dim 0.
		ins := instr{op: opWI, dst: c.dst(in), sub: code, a: -1}
		if len(in.Args) == 1 && in.Args[0].Type().Kind != ir.Pointer {
			if cv, isConst := ir.ConstIntValue(in.Args[0]); isConst {
				if cv < 0 || cv > 2 {
					cv = 0
				}
				ins.imm = cv
			} else {
				ins.a = ops[0]
			}
		}
		c.code = append(c.code, ins)
		return
	}
	if strings.HasPrefix(name, "__clc_") {
		op, kind, err := parseMathBuiltin(name)
		if err != "" {
			c.code = append(c.code, instr{op: opTrap, msg: err})
			return
		}
		ins := instr{op: opMath, dst: c.dst(in), sub: op, kind: kind, a: ops[0], b: -1}
		if len(ops) > 1 {
			ins.b = ops[1]
		}
		c.code = append(c.code, ins)
		return
	}
	c.code = append(c.code, instr{op: opTrap, msg: fmt.Sprintf("unknown builtin %q", name)})
}

// kindTypes maps a value kind back to a type singleton for the shared
// load/store/binop helpers (which only inspect Kind and Size).
var kindTypes = func() [ir.Pointer + 1]*ir.Type {
	var t [ir.Pointer + 1]*ir.Type
	t[ir.Void] = ir.VoidT
	t[ir.Bool] = ir.BoolT
	t[ir.I32] = ir.I32T
	t[ir.I64] = ir.I64T
	t[ir.F32] = ir.F32T
	t[ir.F64] = ir.F64T
	t[ir.Pointer] = ir.PointerTo(ir.I64T, ir.Global)
	return t
}()
